// Tests for TxnClient: isolation-level mechanics (buffering, cut caches,
// MAV required vectors), delta increments, abort semantics, history
// observation, and the non-HAT modes.

#include <gtest/gtest.h>

#include "hat/adya/phenomena.h"
#include "hat/adya/recorder.h"
#include "hat/client/sync_client.h"
#include "hat/cluster/deployment.h"
#include "hat/common/codec.h"

namespace hat::client {
namespace {

using cluster::Deployment;
using cluster::DeploymentOptions;

class ClientTest : public ::testing::Test {
 protected:
  void Build(DeploymentOptions opts = DeploymentOptions::SingleDatacenter(),
             uint64_t seed = 11) {
    sim_ = std::make_unique<sim::Simulation>(seed);
    opts.server.durable = false;
    deployment_ = std::make_unique<Deployment>(*sim_, opts);
  }
  SyncClient Client(ClientOptions opts = {}) {
    return SyncClient(*sim_, deployment_->AddClient(opts));
  }
  void Settle(sim::Duration d = 2 * sim::kSecond) {
    sim_->RunUntil(sim_->Now() + d);
  }
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<Deployment> deployment_;
};

TEST_F(ClientTest, BufferedWritesInvisibleUntilCommit) {
  Build();
  auto writer = Client();
  auto reader = Client();
  writer.Begin();
  writer.Write("k", "dirty");
  // Reader sees nothing while the writer's txn is open (Read Committed).
  reader.Begin();
  EXPECT_FALSE(reader.Read("k")->found);
  ASSERT_TRUE(reader.Commit().ok());
  ASSERT_TRUE(writer.Commit().ok());
  Settle();
  reader.Begin();
  EXPECT_EQ(reader.Read("k")->value, "dirty");
  ASSERT_TRUE(reader.Commit().ok());
}

TEST_F(ClientTest, ReadUncommittedExposesDirtyWrites) {
  Build();
  ClientOptions ru;
  ru.isolation = IsolationLevel::kReadUncommitted;
  auto writer = Client(ru);
  auto reader = Client();
  writer.Begin();
  writer.Write("k", "dirty");
  Settle();  // dirty write propagates before commit
  reader.Begin();
  auto rv = reader.Read("k");
  EXPECT_TRUE(rv->found);
  EXPECT_EQ(rv->value, "dirty");
  ASSERT_TRUE(reader.Commit().ok());
  writer.Abort();  // the dirty write stays — G1a in action
  reader.Begin();
  EXPECT_TRUE(reader.Read("k")->found);
  ASSERT_TRUE(reader.Commit().ok());
}

TEST_F(ClientTest, AbortDiscardsBufferedWrites) {
  Build();
  auto c = Client();
  c.Begin();
  c.Write("k", "never");
  c.Abort();
  Settle();
  c.Begin();
  EXPECT_FALSE(c.Read("k")->found);
  ASSERT_TRUE(c.Commit().ok());
}

TEST_F(ClientTest, TransactionReadsItsOwnBufferedPut) {
  Build();
  auto c = Client();
  c.Begin();
  c.Write("k", "mine");
  EXPECT_EQ(c.Read("k")->value, "mine");
  ASSERT_TRUE(c.Commit().ok());
}

TEST_F(ClientTest, TransactionReadsItsOwnBufferedIncrement) {
  Build();
  auto c = Client();
  c.Begin();
  c.Write("ctr", EncodeInt64Value(10));
  ASSERT_TRUE(c.Commit().ok());
  Settle();
  c.Begin();
  c.Increment("ctr", 5);
  EXPECT_EQ(*c.ReadInt("ctr"), 15);
  ASSERT_TRUE(c.Commit().ok());
  Settle();
  c.Begin();
  EXPECT_EQ(*c.ReadInt("ctr"), 15);
  ASSERT_TRUE(c.Commit().ok());
}

TEST_F(ClientTest, PutThenIncrementFoldsIntoOnePut) {
  Build();
  auto c = Client();
  c.Begin();
  c.Write("ctr", EncodeInt64Value(100));
  c.Increment("ctr", 7);
  ASSERT_TRUE(c.Commit().ok());
  Settle();
  c.Begin();
  EXPECT_EQ(*c.ReadInt("ctr"), 107);
  ASSERT_TRUE(c.Commit().ok());
}

TEST_F(ClientTest, ItemCutRereadsAreStable) {
  Build();
  ClientOptions ici;
  ici.isolation = IsolationLevel::kItemCut;
  auto c = Client(ici);
  auto other = Client();

  other.Begin();
  other.Write("k", "v1");
  ASSERT_TRUE(other.Commit().ok());
  Settle();

  c.Begin();
  EXPECT_EQ(c.Read("k")->value, "v1");
  // Concurrent overwrite lands...
  other.Begin();
  other.Write("k", "v2");
  ASSERT_TRUE(other.Commit().ok());
  Settle();
  // ...but the cut holds.
  EXPECT_EQ(c.Read("k")->value, "v1");
  ASSERT_TRUE(c.Commit().ok());
  EXPECT_GT(c.underlying().stats().cache_hits, 0u);

  // Read Committed (no cut) observes the change.
  ClientOptions rc;
  auto c2 = Client(rc);
  c2.Begin();
  EXPECT_EQ(c2.Read("k")->value, "v2");
  ASSERT_TRUE(c2.Commit().ok());
}

TEST_F(ClientTest, PredicateCutOverlappingScansAgree) {
  Build();
  ClientOptions pci;
  pci.predicate_cut = true;
  auto c = Client(pci);
  auto other = Client();

  other.Begin();
  other.Write("item1", "a");
  ASSERT_TRUE(other.Commit().ok());
  Settle();

  c.Begin();
  auto first = c.Scan("item0", "item9");
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 1u);

  // A phantom appears...
  other.Begin();
  other.Write("item2", "b");
  ASSERT_TRUE(other.Commit().ok());
  Settle();

  // ...but the predicate cut hides it.
  auto second = c.Scan("item0", "item9");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->size(), 1u);
  ASSERT_TRUE(c.Commit().ok());

  // Without predicate-cut the phantom is visible.
  auto c2 = Client();
  c2.Begin();
  auto plain = c2.Scan("item0", "item9");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->size(), 2u);
  ASSERT_TRUE(c2.Commit().ok());
}

TEST_F(ClientTest, MavMetadataBytesGrowWithTxnSize) {
  Build();
  ClientOptions mav;
  mav.isolation = IsolationLevel::kMonotonicAtomicView;
  auto c = Client(mav);
  c.Begin();
  c.Write("a", "1");
  ASSERT_TRUE(c.Commit().ok());
  uint64_t small = c.underlying().stats().metadata_bytes;
  c.Begin();
  for (int i = 0; i < 16; i++) c.Write("key" + std::to_string(i), "v");
  ASSERT_TRUE(c.Commit().ok());
  uint64_t large = c.underlying().stats().metadata_bytes - small;
  EXPECT_GT(large, 16 * small);
}

TEST_F(ClientTest, MasterModeReadsLatestWrite) {
  Build();
  ClientOptions master;
  master.mode = SystemMode::kMaster;
  auto a = Client(master);
  auto b = Client(master);
  a.Begin();
  a.Write("k", "v1");
  ASSERT_TRUE(a.Commit().ok());
  // No settle needed: the master serializes — reads see the latest
  // immediately (single-key linearizability).
  b.Begin();
  EXPECT_EQ(b.Read("k")->value, "v1");
  ASSERT_TRUE(b.Commit().ok());
}

TEST_F(ClientTest, QuorumModeReadsOwnQuorumWrite) {
  Build();
  ClientOptions quorum;
  quorum.mode = SystemMode::kQuorum;
  auto a = Client(quorum);
  auto b = Client(quorum);
  a.Begin();
  a.Write("k", "v1");
  ASSERT_TRUE(a.Commit().ok());
  // Regular register semantics: overlapping quorums see the write.
  b.Begin();
  EXPECT_EQ(b.Read("k")->value, "v1");
  ASSERT_TRUE(b.Commit().ok());
}

TEST_F(ClientTest, EmptyCommitSucceeds) {
  Build();
  auto c = Client();
  c.Begin();
  EXPECT_TRUE(c.Commit().ok());
  EXPECT_EQ(c.underlying().stats().txns_committed, 1u);
}

TEST_F(ClientTest, StatsCountOutcomes) {
  Build();
  auto c = Client();
  c.Begin();
  c.Write("a", "1");
  ASSERT_TRUE(c.Commit().ok());
  c.Begin();
  c.Abort();
  const auto& stats = c.underlying().stats();
  EXPECT_EQ(stats.txns_committed, 1u);
  EXPECT_EQ(stats.txns_aborted_internal, 1u);
  EXPECT_EQ(stats.writes, 1u);
}

TEST_F(ClientTest, ObserverRecordsCommittedHistory) {
  Build();
  adya::HistoryRecorder recorder;
  auto c = Client();
  c.underlying().set_observer(&recorder);
  c.Begin();
  c.Write("x", "1");
  ASSERT_TRUE(c.Commit().ok());
  Settle();
  c.Begin();
  EXPECT_TRUE(c.Read("x")->found);
  ASSERT_TRUE(c.Commit().ok());
  auto history = recorder.Finish();
  ASSERT_EQ(history.size(), 2u);
  auto report = adya::Analyze(history);
  EXPECT_TRUE(report.ReadCommitted());
  EXPECT_EQ(report.Summary(), "(none)");
}

TEST_F(ClientTest, ObserverMarksAbortedTransactions) {
  Build();
  adya::HistoryRecorder recorder;
  ClientOptions ru;
  ru.isolation = IsolationLevel::kReadUncommitted;
  auto writer = Client(ru);
  writer.underlying().set_observer(&recorder);
  auto reader = Client();
  reader.underlying().set_observer(&recorder);

  writer.Begin();
  writer.Write("x", "doomed");
  Settle();
  reader.Begin();
  EXPECT_TRUE(reader.Read("x")->found);
  ASSERT_TRUE(reader.Commit().ok());
  writer.Abort();

  auto report = adya::Analyze(recorder.Finish());
  EXPECT_TRUE(report.g1a) << "reader observed an aborted write";
}

TEST_F(ClientTest, LockingModeSerializesConcurrentRmw) {
  Build();
  ClientOptions lk;
  lk.mode = SystemMode::kLocking;
  auto a = Client(lk);
  auto b = Client(lk);
  a.Begin();
  a.Write("x", EncodeInt64Value(0));
  ASSERT_TRUE(a.Commit().ok());
  Settle();

  int committed = 0;
  for (int i = 0; i < 10; i++) {
    SyncClient& c = (i % 2 == 0) ? a : b;
    Status s;
    do {
      c.Begin();
      auto v = c.ReadInt("x");
      if (!v.ok()) {
        s = v.status();
        continue;
      }
      c.Write("x", EncodeInt64Value(*v + 1));
      s = c.Commit();
    } while (!s.ok());
    committed++;
  }
  Settle();
  a.Begin();
  EXPECT_EQ(*a.ReadInt("x"), committed);
  ASSERT_TRUE(a.Commit().ok());
}

TEST_F(ClientTest, NonStickyReadsRotateAcrossClusters) {
  Build(DeploymentOptions::TwoRegions());
  ClientOptions opts;
  opts.sticky = false;
  opts.home_cluster = 0;
  auto c = Client(opts);
  // Write via cluster 0, then partition cluster 0 away; a non-sticky read
  // falls over to cluster 1 and still completes (with possibly stale data).
  c.Begin();
  c.Write("k", "v");
  ASSERT_TRUE(c.Commit().ok());
  Settle();
  // Cut only the link from the client to its home replica: the non-sticky
  // client retries elsewhere.
  deployment_->network().CutLink(c.underlying().id(),
                                 deployment_->ReplicaInCluster("k", 0));
  c.Begin();
  auto rv = c.Read("k");
  ASSERT_TRUE(rv.ok());
  EXPECT_TRUE(rv->found);
  ASSERT_TRUE(c.Commit().ok());
  EXPECT_GT(c.underlying().stats().read_retries, 0u);
}

TEST_F(ClientTest, StickyClientBlocksRatherThanFailOver) {
  Build(DeploymentOptions::TwoRegions());
  ClientOptions opts;
  opts.sticky = true;
  opts.home_cluster = 0;
  opts.op_timeout = 1 * sim::kSecond;
  opts.rpc_timeout = 200 * sim::kMillisecond;
  auto c = Client(opts);
  deployment_->network().CutLink(c.underlying().id(),
                                 deployment_->ReplicaInCluster("k", 0));
  c.Begin();
  auto rv = c.Read("k");
  EXPECT_FALSE(rv.ok()) << "sticky client must not silently fail over";
  c.Abort();
}

TEST_F(ClientTest, BatchedCommitCoalescesPutsAndPreservesReplies) {
  Build();
  ClientOptions opts;
  opts.batch_max = 8;
  auto writer = Client(opts);
  auto reader = Client();
  writer.Begin();
  // 16 keys across 5 servers: the commit's parallel puts must coalesce at
  // least one multi-op envelope per server.
  for (int i = 0; i < 16; i++) {
    writer.Write("bk" + std::to_string(i), "v" + std::to_string(i));
  }
  ASSERT_TRUE(writer.Commit().ok());
  const auto& cs = writer.underlying().stats();
  EXPECT_GT(cs.batches_sent, 0u);
  EXPECT_GT(cs.batched_ops, cs.batches_sent)
      << "a batch is only counted when it carries more than one op";
  EXPECT_GT(deployment_->TotalServerStats().client_batches, 0u);
  Settle();
  // Per-op reply semantics survived the demux: every write is durable and
  // readable with its own value.
  reader.Begin();
  for (int i = 0; i < 16; i++) {
    auto rv = reader.Read("bk" + std::to_string(i));
    ASSERT_TRUE(rv.ok());
    ASSERT_TRUE(rv->found) << "bk" << i;
    EXPECT_EQ(rv->value, "v" + std::to_string(i));
  }
  ASSERT_TRUE(reader.Commit().ok());
}

TEST_F(ClientTest, BatchingDisabledByDefaultSendsPlainOps) {
  Build();
  auto c = Client();  // batch_max = 1
  c.Begin();
  for (int i = 0; i < 8; i++) {
    c.Write("k" + std::to_string(i), "v");
  }
  ASSERT_TRUE(c.Commit().ok());
  EXPECT_EQ(c.underlying().stats().batches_sent, 0u);
  EXPECT_EQ(deployment_->TotalServerStats().client_batches, 0u);
}

TEST_F(ClientTest, AdaptiveBatchWaitClosesEnvelopeWhenLaneIdle) {
  Build();
  const sim::Duration kWait = 50 * sim::kMillisecond;

  // Fixed wait window, idle server: a lone read eats the whole window.
  ClientOptions fixed;
  fixed.batch_max = 8;
  fixed.batch_max_wait_us = kWait;
  auto slow = Client(fixed);
  slow.Begin();
  sim::SimTime t0 = sim_->Now();
  ASSERT_TRUE(slow.Read("k").ok());
  EXPECT_GE(sim_->Now() - t0, kWait) << "fixed window adds its full length";
  slow.Abort();

  // Adaptive: nothing in flight to the target, so the envelope closes at
  // instant-end and the read costs only the round trip.
  ClientOptions adaptive = fixed;
  adaptive.adaptive_batch_wait = true;
  auto fast = Client(adaptive);
  fast.Begin();
  t0 = sim_->Now();
  ASSERT_TRUE(fast.Read("k").ok());
  EXPECT_LT(sim_->Now() - t0, kWait / 2) << "idle lane must not wait";
  EXPECT_GT(fast.underlying().stats().adaptive_early_closes, 0u);
  fast.Abort();
}

TEST_F(ClientTest, AdaptiveBatchWaitPreservesBatchedCommitSemantics) {
  Build();
  ClientOptions opts;
  opts.batch_max = 8;
  opts.batch_max_wait_us = 200;
  opts.adaptive_batch_wait = true;
  auto writer = Client(opts);
  writer.Begin();
  for (int i = 0; i < 16; i++) {
    writer.Write("ak" + std::to_string(i), "av" + std::to_string(i));
  }
  ASSERT_TRUE(writer.Commit().ok());
  // A commit's parallel puts are issued in one simulation instant, so the
  // instant-end early close still coalesces them into multi-op envelopes.
  const auto& cs = writer.underlying().stats();
  EXPECT_GT(cs.batches_sent, 0u);
  EXPECT_GT(cs.batched_ops, cs.batches_sent);
  Settle();
  auto reader = Client();
  reader.Begin();
  for (int i = 0; i < 16; i++) {
    auto rv = reader.Read("ak" + std::to_string(i));
    ASSERT_TRUE(rv.ok());
    ASSERT_TRUE(rv->found) << "ak" << i;
    EXPECT_EQ(rv->value, "av" + std::to_string(i));
  }
  ASSERT_TRUE(reader.Commit().ok());
}

TEST_F(ClientTest, BatchedQuorumCommitStillReachesAllReplicas) {
  Build();
  ClientOptions opts;
  opts.mode = SystemMode::kQuorum;
  opts.batch_max = 8;
  auto writer = Client(opts);
  writer.Begin();
  for (int i = 0; i < 8; i++) {
    writer.Write("qk" + std::to_string(i), "qv" + std::to_string(i));
  }
  ASSERT_TRUE(writer.Commit().ok());
  auto reader = Client(opts);
  reader.Begin();
  for (int i = 0; i < 8; i++) {
    auto rv = reader.Read("qk" + std::to_string(i));
    ASSERT_TRUE(rv.ok());
    ASSERT_TRUE(rv->found) << "qk" << i;
    EXPECT_EQ(rv->value, "qv" + std::to_string(i));
  }
  ASSERT_TRUE(reader.Commit().ok());
}

}  // namespace
}  // namespace hat::client
