// Unit tests for hat/common: Status/Result, RNG & distributions, CRC32,
// histograms, codecs.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "hat/common/codec.h"
#include "hat/common/crc32.h"
#include "hat/common/histogram.h"
#include "hat/common/result.h"
#include "hat/common/rng.h"
#include "hat/common/status.h"

namespace hat {
namespace {

// --------------------------- Status / Result ------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key missing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "key missing");
  EXPECT_EQ(s.ToString(), "NotFound: key missing");
}

TEST(StatusTest, RetryabilityClassification) {
  EXPECT_TRUE(Status::Timeout().IsRetryable());
  EXPECT_TRUE(Status::Unavailable().IsRetryable());
  EXPECT_TRUE(Status::Aborted().IsRetryable());
  EXPECT_FALSE(Status::InternalAbort().IsRetryable());
  EXPECT_FALSE(Status::Corruption("x").IsRetryable());
  EXPECT_FALSE(Status().IsRetryable());
}

TEST(StatusTest, CopiesShareRepresentation) {
  Status a = Status::IoError("disk gone");
  Status b = a;
  EXPECT_EQ(b.message(), "disk gone");
  EXPECT_EQ(b.code(), StatusCode::kIoError);
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 10; c++) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

Result<int> Doubler(Result<int> in) {
  HAT_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_TRUE(Doubler(Status::Timeout()).status().IsTimeout());
}

// --------------------------------- RNG ------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; i++) {
    if (a.NextUint64() == b.NextUint64()) same++;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(10);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; i++) seen.insert(rng.NextBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; i++) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(12);
  for (int i = 0; i < 10000; i++) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; i++) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(14);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; i++) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, LognormalMeanMatchesFormula) {
  Rng rng(15);
  double sigma = 0.25;
  double mu = -sigma * sigma / 2;  // unit-mean configuration
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; i++) sum += rng.NextLognormal(mu, sigma);
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(77);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; i++) {
    if (a.NextUint64() == b.NextUint64()) same++;
  }
  EXPECT_LT(same, 2);
}

TEST(ZipfianTest, SkewsTowardLowRanks) {
  Rng rng(16);
  ZipfianGenerator zipf(1000, 0.99);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) counts[zipf.Next(rng)]++;
  // Rank 0 should dominate rank 500 heavily.
  EXPECT_GT(counts[0], 100 * std::max(counts[500], 1));
  for (const auto& [rank, n] : counts) EXPECT_LT(rank, 1000u);
}

TEST(ZipfianTest, UniformWhenThetaNearZero) {
  Rng rng(17);
  ZipfianGenerator zipf(100, 0.01);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) counts[zipf.Next(rng)]++;
  EXPECT_LT(counts[0], 4 * counts[50]);
}

// -------------------------------- CRC32 -----------------------------------

TEST(Crc32Test, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283 (iSCSI test vector).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32c(""), 0u); }

TEST(Crc32Test, DetectsBitFlip) {
  std::string data(100, 'a');
  uint32_t before = Crc32c(data);
  data[50] ^= 1;
  EXPECT_NE(before, Crc32c(data));
}

TEST(Crc32Test, MaskRoundTrips) {
  for (uint32_t v : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(v)), v);
    EXPECT_NE(MaskCrc(v), v);
  }
}

// ------------------------------ Histogram ---------------------------------

TEST(HistogramTest, EmptyIsZeroed) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
}

TEST(HistogramTest, MeanAndExtremes) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(HistogramTest, PercentileWithinResolution) {
  Histogram h;
  for (int i = 1; i <= 10000; i++) h.Record(i);
  // 1% relative resolution.
  EXPECT_NEAR(h.Percentile(0.5), 5000, 5000 * 0.02);
  EXPECT_NEAR(h.Percentile(0.99), 9900, 9900 * 0.02);
  EXPECT_NEAR(h.Percentile(1.0), 10000, 10000 * 0.02);
}

TEST(HistogramTest, MergeEqualsCombinedRecording) {
  Histogram a, b, combined;
  Rng rng(18);
  for (int i = 0; i < 1000; i++) {
    double v = rng.NextExponential(100);
    (i % 2 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.Mean(), combined.Mean(), 1e-9);
  EXPECT_NEAR(a.Percentile(0.9), combined.Percentile(0.9), 1e-9);
}

TEST(HistogramTest, CdfMonotone) {
  Histogram h;
  Rng rng(19);
  for (int i = 0; i < 10000; i++) h.Record(rng.NextLognormal(3, 1));
  auto cdf = h.Cdf();
  ASSERT_FALSE(cdf.empty());
  for (size_t i = 1; i < cdf.size(); i++) {
    EXPECT_GT(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(HistogramTest, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 10; i++) h.Record(42);
  EXPECT_NEAR(h.Stddev(), 0, 1e-6);
}

TEST(HistogramTest, EmptyPercentileIsZeroForAnyQuantile) {
  // Contract: empty histograms read 0 everywhere (never NaN or stale) —
  // the sampler plots windowed p95s and relies on quiet windows being 0.
  Histogram h;
  for (double q : {-1.0, 0.0, 0.25, 0.5, 0.95, 1.0, 2.0}) {
    EXPECT_EQ(h.Percentile(q), 0) << "q=" << q;
  }
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Stddev(), 0);
}

TEST(HistogramTest, DeltaSinceIsolatesTheWindow) {
  Histogram cum;
  for (int i = 0; i < 100; i++) cum.Record(10);
  Histogram snap = cum;  // sampler keeps the previous cumulative snapshot
  for (int i = 0; i < 50; i++) cum.Record(1000);

  Histogram window = cum.DeltaSince(snap);
  EXPECT_EQ(window.count(), 50u);
  // Only the new observations (1000s) are in the window; the old 10s must
  // not leak in. Bucket representatives carry ~1% error.
  EXPECT_NEAR(window.Percentile(0.5), 1000, 1000 * 0.02);
  EXPECT_GT(window.min(), 500);
  EXPECT_NEAR(window.Mean(), 1000, 1000 * 0.02);
}

TEST(HistogramTest, DeltaSinceEmptyWindowIsEmpty) {
  Histogram cum;
  for (int i = 0; i < 7; i++) cum.Record(3.5);
  Histogram window = cum.DeltaSince(cum);
  EXPECT_EQ(window.count(), 0u);
  EXPECT_EQ(window.Percentile(0.95), 0);
}

TEST(HistogramTest, DeltaSinceOfFreshHistogramIsIdentity) {
  Histogram cum;
  for (int i = 1; i <= 1000; i++) cum.Record(i);
  Histogram window = cum.DeltaSince(Histogram());
  EXPECT_EQ(window.count(), cum.count());
  EXPECT_NEAR(window.Percentile(0.95), cum.Percentile(0.95),
              cum.Percentile(0.95) * 0.02);
}

// -------------------------------- Codec -----------------------------------

TEST(CodecTest, FixedRoundTrip) {
  std::string s;
  PutFixed32(&s, 0xdeadbeef);
  PutFixed64(&s, 0x0123456789abcdefULL);
  EXPECT_EQ(DecodeFixed32(s.data()), 0xdeadbeefu);
  EXPECT_EQ(DecodeFixed64(s.data() + 4), 0x0123456789abcdefULL);
}

TEST(CodecTest, VarintRoundTrip) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 1ULL << 32,
                     ~0ULL}) {
    std::string s;
    PutVarint64(&s, v);
    std::string_view in(s);
    auto decoded = GetVarint64(&in);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodecTest, VarintTruncatedFails) {
  std::string s;
  PutVarint64(&s, 1ULL << 40);
  s.pop_back();
  std::string_view in(s);
  EXPECT_FALSE(GetVarint64(&in).has_value());
}

TEST(CodecTest, LengthPrefixedRoundTrip) {
  std::string s;
  PutLengthPrefixed(&s, "hello");
  PutLengthPrefixed(&s, "");
  PutLengthPrefixed(&s, std::string(300, 'z'));
  std::string_view in(s);
  EXPECT_EQ(*GetLengthPrefixed(&in), "hello");
  EXPECT_EQ(*GetLengthPrefixed(&in), "");
  EXPECT_EQ(GetLengthPrefixed(&in)->size(), 300u);
  EXPECT_TRUE(in.empty());
}

TEST(CodecTest, LengthPrefixedOverrunFails) {
  std::string s;
  PutVarint32(&s, 100);  // claims 100 bytes, provides none
  std::string_view in(s);
  EXPECT_FALSE(GetLengthPrefixed(&in).has_value());
}

TEST(CodecTest, Int64ValueRoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{42},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(DecodeInt64Value(EncodeInt64Value(v)), v);
  }
}

// Wire-facing varint bounds: every 7-bit-group boundary (2^7k - 1, 2^7k)
// round-trips with the expected canonical length, and the strict decoders
// reject overlong (padded or out-of-width) and truncated encodings.

TEST(CodecTest, Varint64AllGroupBoundaries) {
  for (int k = 1; k <= 9; k++) {
    const uint64_t edge = uint64_t{1} << (7 * k);
    for (uint64_t v : {edge - 1, edge}) {
      std::string s;
      PutVarint64(&s, v);
      EXPECT_EQ(s.size(), static_cast<size_t>(v < edge ? k : k + 1)) << v;
      EXPECT_EQ(s.size(), VarintLength(v)) << v;
      std::string_view in(s);
      auto d = GetVarint64(&in);
      ASSERT_TRUE(d.has_value()) << v;
      EXPECT_EQ(*d, v);
      EXPECT_TRUE(in.empty());
    }
  }
  std::string s;
  PutVarint64(&s, ~0ULL);
  EXPECT_EQ(s.size(), 10u);
  std::string_view in(s);
  EXPECT_EQ(GetVarint64(&in), ~0ULL);
}

TEST(CodecTest, Varint32AllGroupBoundaries) {
  for (int k = 1; k <= 4; k++) {
    const uint64_t edge = uint64_t{1} << (7 * k);
    for (uint64_t v64 : {edge - 1, edge}) {
      const uint32_t v = static_cast<uint32_t>(v64);
      std::string s;
      PutVarint32(&s, v);
      EXPECT_EQ(s.size(), VarintLength(v)) << v;
      std::string_view in(s);
      auto d = GetVarint32(&in);
      ASSERT_TRUE(d.has_value()) << v;
      EXPECT_EQ(*d, v);
      EXPECT_TRUE(in.empty());
    }
  }
  std::string s;
  PutVarint32(&s, ~0u);
  EXPECT_EQ(s.size(), 5u);
  std::string_view in(s);
  EXPECT_EQ(GetVarint32(&in), ~0u);
}

TEST(CodecTest, VarintRejectsOverlongPadding) {
  // 0 encoded in two bytes (80 00), 1 in three (81 80 00): decodable values
  // with non-canonical trailing zero groups must be rejected.
  for (const std::string s :
       {std::string("\x80\x00", 2), std::string("\x81\x80\x00", 3),
        std::string("\xff\x00", 2)}) {
    std::string_view in32(s), in64(s);
    EXPECT_FALSE(GetVarint32(&in32).has_value());
    EXPECT_FALSE(GetVarint64(&in64).has_value());
  }
}

TEST(CodecTest, VarintRejectsOutOfWidthBits) {
  // 5-byte 32-bit varint whose final byte sets bits 32+ (max legal is 0x0f).
  std::string s("\xff\xff\xff\xff\x1f", 5);
  std::string_view in(s);
  EXPECT_FALSE(GetVarint32(&in).has_value());
  std::string ok("\xff\xff\xff\xff\x0f", 5);
  std::string_view in_ok(ok);
  EXPECT_EQ(GetVarint32(&in_ok), ~0u);

  // 10-byte 64-bit varint whose final byte sets bits 64+ (max legal 0x01).
  std::string s64(10, '\xff');
  s64[9] = '\x02';
  std::string_view in64(s64);
  EXPECT_FALSE(GetVarint64(&in64).has_value());
  s64[9] = '\x01';
  std::string_view in64_ok(s64);
  EXPECT_EQ(GetVarint64(&in64_ok), ~0ULL);
}

TEST(CodecTest, VarintRejectsTruncationAtEveryLength) {
  for (uint64_t v : {uint64_t{300}, uint64_t{1} << 21, uint64_t{1} << 42,
                     ~uint64_t{0}}) {
    std::string s;
    PutVarint64(&s, v);
    for (size_t cut = 0; cut < s.size(); cut++) {
      std::string_view in(s.data(), cut);
      EXPECT_FALSE(GetVarint64(&in).has_value()) << v << " cut " << cut;
    }
  }
}

TEST(CodecTest, VarintRejectsTooManyContinuations) {
  std::string s(11, '\x80');  // 11 continuation bytes, never terminates
  std::string_view in32(s), in64(s);
  EXPECT_FALSE(GetVarint32(&in32).has_value());
  EXPECT_FALSE(GetVarint64(&in64).has_value());
}

TEST(CodecTest, Varint32ArrayRoundTrip) {
  std::vector<uint32_t> v = {0, 1, 127, 128, 1u << 20, ~0u};
  std::string s;
  PutVarint32Array(&s, v.data(), v.size());
  std::string_view in(s);
  std::vector<uint32_t> out;
  ASSERT_TRUE(GetVarint32Array(&in, &out));
  EXPECT_EQ(out, v);
  EXPECT_TRUE(in.empty());
}

TEST(CodecTest, Fixed64ArrayRoundTrip) {
  std::vector<uint64_t> v = {0, ~0ULL, 0x0123456789abcdefULL};
  std::string s;
  PutFixed64Array(&s, v.data(), v.size());
  std::string_view in(s);
  std::vector<uint64_t> out;
  ASSERT_TRUE(GetFixed64Array(&in, &out));
  EXPECT_EQ(out, v);
  EXPECT_TRUE(in.empty());
}

TEST(CodecTest, ArraysRejectHostileCounts) {
  std::string s;
  PutVarint32(&s, 1000000);  // claims a million elements, provides none
  std::string_view in32(s), in64(s);
  std::vector<uint32_t> out32;
  std::vector<uint64_t> out64;
  EXPECT_FALSE(GetVarint32Array(&in32, &out32));
  EXPECT_FALSE(GetFixed64Array(&in64, &out64));
  EXPECT_TRUE(out32.empty());
  EXPECT_TRUE(out64.empty());
}

TEST(CodecTest, Int64ValueRejectsWrongSize) {
  EXPECT_FALSE(DecodeInt64Value("short").has_value());
  EXPECT_FALSE(DecodeInt64Value("123456789").has_value());
}

}  // namespace
}  // namespace hat
