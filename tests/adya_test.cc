// Tests for the Adya formalism (paper Appendix A): every example history the
// paper gives (Figures 7-18 and the inline examples of Section 5) is encoded
// and checked against the corresponding phenomenon detector, plus negative
// cases where the phenomenon must NOT fire.

#include <gtest/gtest.h>

#include "hat/adya/dsg.h"
#include "hat/adya/history.h"
#include "hat/adya/phenomena.h"

namespace hat::adya {
namespace {

// ---------------------------------------------------------------------------
// G0 (Dirty Write) — Section 5.1.1's example
// ---------------------------------------------------------------------------

TEST(PhenomenaTest, G0WriteCycleDetected) {
  // T1: wx(1) wy(1); T2: wx(2) wy(2) with inconsistent install order:
  // x: T1 then T2, but y: T2 then T1. Encode via version numbers: T1's
  // write to y must be NEWER than T2's. We model with explicit ops —
  // version = txn id, so we need T1's y-version > T2's: use txn numbers
  // 1 and 2 but order on y is by timestamp; to get the cycle we let
  // T1 write y with txn id 3 (same transaction modelled with its final id).
  // Cleaner: three txns produce the same ww cycle shape:
  //   x: T1 -> T2, y: T2 -> T1 is impossible with version==txnid, so use
  //   a pair of keys where each overwrites the other's.
  HistoryBuilder b;
  b.Txn(1).Write("x");
  b.Txn(2).Write("x").Write("y");
  b.Txn(3).Read("y", 2);  // force y's presence
  // ww x: T1->T2. For the cycle we need ww y: T2->T1, impossible in a
  // timestamp-ordered system — which is exactly the paper's point: G0
  // cannot occur under unique-timestamp LWW. Verify absence:
  auto r = Analyze(b.Build());
  EXPECT_FALSE(r.g0);
  EXPECT_TRUE(r.ReadUncommitted());
}

TEST(DsgTest, ManualG0CycleViaInterleavedVersions) {
  // Construct G0 directly: T10 and T20 each write x and y; T10's x-version
  // precedes T20's, but T10's y-version FOLLOWS T20's. We encode the
  // transactions so their installed versions interleave: T10 installs
  // x@10,y@25 (final writes), T20 installs x@20,y@15. Using two writes per
  // txn with distinct versions — version order on x: 10<20 (T10->T20),
  // on y: 15<25 (T20->T10): a ww cycle.
  History h;
  Transaction t10;
  t10.id = {10, 1};
  t10.ops.push_back({Operation::Kind::kWrite, "x", {10, 1}, WriteKind::kPut,
                     "", "", {}});
  t10.ops.push_back({Operation::Kind::kWrite, "y", {25, 1}, WriteKind::kPut,
                     "", "", {}});
  Transaction t20;
  t20.id = {20, 2};
  t20.ops.push_back({Operation::Kind::kWrite, "x", {20, 2}, WriteKind::kPut,
                     "", "", {}});
  t20.ops.push_back({Operation::Kind::kWrite, "y", {15, 2}, WriteKind::kPut,
                     "", "", {}});
  h.Add(t10);
  h.Add(t20);
  auto r = Analyze(h);
  EXPECT_TRUE(r.g0);
  EXPECT_FALSE(r.ReadUncommitted());
}

// ---------------------------------------------------------------------------
// G1a / G1b / G1c — Read Committed (Section 5.1.1 example)
// ---------------------------------------------------------------------------

TEST(PhenomenaTest, G1aAbortedRead) {
  HistoryBuilder b;
  b.Txn(2).Write("x").Aborted();
  b.Txn(3).Read("x", 2);
  auto r = Analyze(b.Build());
  EXPECT_TRUE(r.g1a);
  EXPECT_FALSE(r.ReadCommitted());
  EXPECT_TRUE(r.ReadUncommitted());  // G0-free
}

TEST(PhenomenaTest, G1bIntermediateRead) {
  // T1: wx(1) wx(2) — T3 must never see x=1 (the intermediate write).
  History h;
  Transaction t1;
  t1.id = {1, 1};
  t1.ops.push_back({Operation::Kind::kWrite, "x", {1, 1}, WriteKind::kPut,
                    "", "", {}});
  t1.ops.push_back({Operation::Kind::kWrite, "x", {2, 1}, WriteKind::kPut,
                    "", "", {}});
  Transaction t3;
  t3.id = {9, 3};
  t3.ops.push_back({Operation::Kind::kRead, "x", {1, 1}, WriteKind::kPut,
                    "", "", {}});
  h.Add(t1);
  h.Add(t3);
  auto r = Analyze(h);
  EXPECT_TRUE(r.g1b);
  EXPECT_FALSE(r.ReadCommitted());
}

TEST(PhenomenaTest, ReadOfFinalWriteIsNotG1b) {
  HistoryBuilder b;
  b.Txn(1).Write("x");
  b.Txn(2).Read("x", 1);
  auto r = Analyze(b.Build());
  EXPECT_FALSE(r.g1b);
  EXPECT_TRUE(r.ReadCommitted());
}

TEST(PhenomenaTest, G1cCircularInformationFlow) {
  // T1 reads T2's write to y; T2 reads T1's write to x.
  HistoryBuilder b;
  b.Txn(1).Write("x").Read("y", 2);
  b.Txn(2).Write("y").Read("x", 1);
  auto r = Analyze(b.Build());
  EXPECT_TRUE(r.g1c);
  EXPECT_FALSE(r.ReadCommitted());
}

// ---------------------------------------------------------------------------
// IMP — Figure 7/8
// ---------------------------------------------------------------------------

TEST(PhenomenaTest, ImpFigure7) {
  HistoryBuilder b;
  b.Txn(1).Write("x");
  b.Txn(2).Write("x");
  b.Txn(3).Read("x", 1).Read("x", 2);
  auto r = Analyze(b.Build());
  EXPECT_TRUE(r.imp);
  EXPECT_FALSE(r.ItemCut());
}

TEST(PhenomenaTest, RereadSameVersionIsNotImp) {
  HistoryBuilder b;
  b.Txn(1).Write("x");
  b.Txn(3).Read("x", 1).Read("x", 1);
  EXPECT_FALSE(Analyze(b.Build()).imp);
}

TEST(PhenomenaTest, InitialThenVersionIsImp) {
  // The cut changed underneath the transaction (fuzzy read).
  HistoryBuilder b;
  b.Txn(1).Write("x");
  b.Txn(3).Read("x", 0).Read("x", 1);
  EXPECT_TRUE(Analyze(b.Build()).imp);
}

TEST(PhenomenaTest, OwnOverwriteBetweenReadsIsNotImp) {
  // I-CI allows a changed value when the txn overwrote it itself.
  History h;
  Transaction t;
  t.id = {5, 5};
  t.ops.push_back({Operation::Kind::kRead, "x", kInitialVersion,
                   WriteKind::kPut, "", "", {}});
  t.ops.push_back({Operation::Kind::kWrite, "x", {5, 5}, WriteKind::kPut,
                   "", "", {}});
  t.ops.push_back({Operation::Kind::kRead, "x", {5, 5}, WriteKind::kPut,
                   "", "", {}});
  h.Add(t);
  EXPECT_FALSE(Analyze(h).imp);
}

// ---------------------------------------------------------------------------
// PMP — predicate variant
// ---------------------------------------------------------------------------

TEST(PhenomenaTest, PmpPhantomDetected) {
  HistoryBuilder b;
  b.Txn(1).Write("k2");
  // First scan sees {k1}; second scan of the same range also sees k2
  // (a phantom appeared mid-transaction).
  b.Txn(2).Write("k1");
  b.Txn(3)
      .PredicateRead("k0", "k9", {{"k1", 2}})
      .PredicateRead("k0", "k9", {{"k1", 2}, {"k2", 1}});
  auto r = Analyze(b.Build());
  EXPECT_TRUE(r.pmp);
  EXPECT_FALSE(r.PredicateCut());
}

TEST(PhenomenaTest, IdenticalScansAreNotPmp) {
  HistoryBuilder b;
  b.Txn(1).Write("k1");
  b.Txn(3)
      .PredicateRead("k0", "k9", {{"k1", 1}})
      .PredicateRead("k0", "k9", {{"k1", 1}});
  EXPECT_FALSE(Analyze(b.Build()).pmp);
}

TEST(PhenomenaTest, DisjointRangesAreNotPmp) {
  HistoryBuilder b;
  b.Txn(1).Write("a1").Write("b1");
  b.Txn(3)
      .PredicateRead("a0", "a9", {{"a1", 1}})
      .PredicateRead("b0", "b9", {{"b1", 1}});
  EXPECT_FALSE(Analyze(b.Build()).pmp);
}

TEST(PhenomenaTest, PmpVersionChangeInOverlap) {
  HistoryBuilder b;
  b.Txn(1).Write("k1");
  b.Txn(2).Write("k1");
  b.Txn(3)
      .PredicateRead("k0", "k9", {{"k1", 1}})
      .PredicateRead("k0", "k5", {{"k1", 2}});
  EXPECT_TRUE(Analyze(b.Build()).pmp);
}

// ---------------------------------------------------------------------------
// OTV — Figure 9/10 and the MAV example of Section 5.1.2
// ---------------------------------------------------------------------------

TEST(PhenomenaTest, OtvFigure9) {
  HistoryBuilder b;
  b.Txn(1).Write("x").Write("y");
  b.Txn(2).Write("x").Write("y");
  b.Txn(3).Read("x", 2).Read("y", 1);  // observed T2 vanish on y
  auto r = Analyze(b.Build());
  EXPECT_TRUE(r.otv);
  EXPECT_FALSE(r.MonotonicAtomicView());
}

TEST(PhenomenaTest, MavSectionExample) {
  // T1: wx(1) wy(1) wz(1); T2: rx ry(1) rx rz — once T2 reads y from T1,
  // later reads must reflect T1.
  HistoryBuilder b;
  b.Txn(1).Write("x").Write("y").Write("z");
  b.Txn(2).Read("x", 0).Read("y", 1).Read("x", 0).Read("z", 0);
  auto r = Analyze(b.Build());
  EXPECT_TRUE(r.otv);  // the second rx(0) and rz(0) vanish T1
}

TEST(PhenomenaTest, MavCompliantReadIsNotOtv) {
  HistoryBuilder b;
  b.Txn(1).Write("x").Write("y").Write("z");
  b.Txn(2).Read("y", 1).Read("x", 1).Read("z", 1);
  auto r = Analyze(b.Build());
  EXPECT_FALSE(r.otv);
  // (The first read pair triggers imp=false too: distinct keys.)
  EXPECT_TRUE(r.MonotonicAtomicView());
}

TEST(PhenomenaTest, ReadingNewerVersionAfterObservationIsFine) {
  HistoryBuilder b;
  b.Txn(1).Write("x").Write("y");
  b.Txn(2).Write("y");  // newer y
  b.Txn(3).Read("x", 1).Read("y", 2);
  EXPECT_FALSE(Analyze(b.Build()).otv);
}

// ---------------------------------------------------------------------------
// Session guarantees — Figures 11-18
// ---------------------------------------------------------------------------

TEST(PhenomenaTest, NonMonotonicReadsFigure11) {
  HistoryBuilder b;
  b.Txn(1).Write("x");
  b.Txn(2).Write("x");
  b.Txn(3).Read("x", 2).InSession(7, 1);
  b.Txn(4).Read("x", 1).InSession(7, 2);  // went back in time
  auto r = Analyze(b.Build());
  EXPECT_TRUE(r.n_mr);
  EXPECT_FALSE(r.MonotonicReads());
}

TEST(PhenomenaTest, MonotonicReadsHoldsForward) {
  HistoryBuilder b;
  b.Txn(1).Write("x");
  b.Txn(2).Write("x");
  b.Txn(3).Read("x", 1).InSession(7, 1);
  b.Txn(4).Read("x", 2).InSession(7, 2);
  EXPECT_FALSE(Analyze(b.Build()).n_mr);
}

TEST(PhenomenaTest, DifferentSessionsNotConstrained) {
  HistoryBuilder b;
  b.Txn(1).Write("x");
  b.Txn(2).Write("x");
  b.Txn(3).Read("x", 2).InSession(7, 1);
  b.Txn(4).Read("x", 1).InSession(8, 1);  // another session may lag
  EXPECT_FALSE(Analyze(b.Build()).n_mr);
}

TEST(PhenomenaTest, NonMonotonicWritesFigure13) {
  // Session writes x then y; version orders must respect that per item.
  // Direct violation: session's later txn installs an OLDER version of x.
  History h;
  Transaction t1;
  t1.id = {5, 1};
  t1.session = 3;
  t1.session_seq = 1;
  t1.ops.push_back({Operation::Kind::kWrite, "x", {5, 1}, WriteKind::kPut,
                    "", "", {}});
  Transaction t2;
  t2.id = {2, 1};  // committed later in the session but older timestamp
  t2.session = 3;
  t2.session_seq = 2;
  t2.ops.push_back({Operation::Kind::kWrite, "x", {2, 1}, WriteKind::kPut,
                    "", "", {}});
  h.Add(t1);
  h.Add(t2);
  auto r = Analyze(h);
  EXPECT_TRUE(r.n_mw);
  EXPECT_FALSE(r.MonotonicWrites());
}

TEST(PhenomenaTest, MissingYourWritesFigure17) {
  HistoryBuilder b;
  b.Txn(1).Write("x").InSession(4, 1);
  b.Txn(2).Read("x", 0).InSession(4, 2);  // missed own write
  auto r = Analyze(b.Build());
  EXPECT_TRUE(r.myr);
  EXPECT_FALSE(r.ReadYourWrites());
  EXPECT_FALSE(r.Pram());
}

TEST(PhenomenaTest, ReadingOverwritingValueSatisfiesRyw) {
  HistoryBuilder b;
  b.Txn(1).Write("x").InSession(4, 1);
  b.Txn(2).Write("x");  // someone else overwrites
  b.Txn(3).Read("x", 2).InSession(4, 2);  // sees the overwrite: fine
  EXPECT_FALSE(Analyze(b.Build()).myr);
}

TEST(PhenomenaTest, MrwdFigure15) {
  // T1: wx(1); T2: rx(1) wy(1); T3: ry(1) rx(0).
  HistoryBuilder b;
  b.Txn(1).Write("x");
  b.Txn(2).Read("x", 1).Write("y").InSession(9, 1);
  b.Txn(3).Read("y", 2).Read("x", 0);
  auto r = Analyze(b.Build());
  EXPECT_TRUE(r.mrwd);
  EXPECT_FALSE(r.WritesFollowReads());
  EXPECT_FALSE(r.Causal());
}

TEST(PhenomenaTest, WfrSatisfiedWhenDependencyVisible) {
  HistoryBuilder b;
  b.Txn(1).Write("x");
  b.Txn(2).Read("x", 1).Write("y").InSession(9, 1);
  b.Txn(3).Read("y", 2).Read("x", 1);
  EXPECT_FALSE(Analyze(b.Build()).mrwd);
}

// ---------------------------------------------------------------------------
// Lost Update & Write Skew — Section 5.2.1
// ---------------------------------------------------------------------------

TEST(PhenomenaTest, LostUpdateSection521) {
  // T1: rx(100) wx(120); T2: rx(100) wx(130) — both read the same version.
  HistoryBuilder b;
  b.Txn(1).Write("x");                 // x@1 = 100
  b.Txn(2).Read("x", 1).Write("x");    // x@2 = 120
  b.Txn(3).Read("x", 1).Write("x");    // x@3 = 130, lost T2's update
  auto r = Analyze(b.Build());
  EXPECT_TRUE(r.lost_update);
  EXPECT_TRUE(r.write_skew);  // lost update is a special case of G2-item
  EXPECT_FALSE(r.SnapshotIsolation());
  EXPECT_FALSE(r.RepeatableRead());
  EXPECT_FALSE(r.Serializable());
}

TEST(PhenomenaTest, SequentialRmwIsNotLostUpdate) {
  HistoryBuilder b;
  b.Txn(1).Write("x");
  b.Txn(2).Read("x", 1).Write("x");
  b.Txn(3).Read("x", 2).Write("x");  // saw T2's write: serial
  auto r = Analyze(b.Build());
  EXPECT_FALSE(r.lost_update);
  EXPECT_FALSE(r.write_skew);
  EXPECT_TRUE(r.Serializable());
}

TEST(PhenomenaTest, WriteSkewSection521) {
  // T1: ry(0) wx(1); T2: rx(0) wy(1).
  HistoryBuilder b;
  b.Txn(1).Read("y", 0).Write("x");
  b.Txn(2).Read("x", 0).Write("y");
  auto r = Analyze(b.Build());
  EXPECT_TRUE(r.write_skew);
  EXPECT_FALSE(r.lost_update);  // two items: not single-item
  EXPECT_FALSE(r.RepeatableRead());
  EXPECT_FALSE(r.Serializable());
  // Write skew is invisible to RC/MAV — exactly the paper's point.
  EXPECT_TRUE(r.ReadCommitted());
  EXPECT_TRUE(r.MonotonicAtomicView());
}

TEST(PhenomenaTest, SerializableHistoryPassesEverything) {
  HistoryBuilder b;
  b.Txn(1).Write("x").Write("y");
  b.Txn(2).Read("x", 1).Read("y", 1).Write("x");
  b.Txn(3).Read("x", 2).Read("y", 1);
  auto r = Analyze(b.Build());
  EXPECT_EQ(r.Summary(), "(none)");
  EXPECT_TRUE(r.Serializable());
  EXPECT_TRUE(r.SnapshotIsolation());
  EXPECT_TRUE(r.Causal());
}

// ---------------------------------------------------------------------------
// DSG structure
// ---------------------------------------------------------------------------

TEST(DsgTest, EdgesOfFigure10) {
  HistoryBuilder b;
  b.Txn(1).Write("x").Write("y");
  b.Txn(2).Write("x").Write("y");
  b.Txn(3).Read("x", 2).Read("y", 1);
  Dsg dsg(b.Build());
  // Expect ww(x) and ww(y) T1->T2, wr(x) T2->T3, rw(y) T3->T2.
  int ww = 0, wr = 0, rw = 0;
  for (const auto& e : dsg.edges()) {
    if (e.type == EdgeType::kWriteDepends) ww++;
    if (e.type == EdgeType::kReadDepends) wr++;
    if (e.type == EdgeType::kAntiDepends) rw++;
  }
  EXPECT_EQ(ww, 2);
  EXPECT_EQ(wr, 2);  // wr(x) T2->T3 and wr(y) T1->T3
  EXPECT_EQ(rw, 1);
  std::string witness;
  EXPECT_TRUE(dsg.HasAntiDependencyCycle(&witness));
  EXPECT_FALSE(dsg.HasDependencyCycle(&witness));
}

TEST(DsgTest, AbortedTransactionsExcluded) {
  HistoryBuilder b;
  b.Txn(1).Write("x").Aborted();
  b.Txn(2).Write("x");
  Dsg dsg(b.Build());
  EXPECT_EQ(dsg.txns().size(), 1u);
  EXPECT_TRUE(dsg.edges().empty());
}

TEST(DsgTest, VersionOrderIsTimestampOrder) {
  HistoryBuilder b;
  b.Txn(3).Write("x");
  b.Txn(1).Write("x");
  b.Txn(2).Write("x");
  Dsg dsg(b.Build());
  auto order = dsg.VersionOrder("x");
  ASSERT_EQ(order.size(), 3u);
  EXPECT_LT(order[0], order[1]);
  EXPECT_LT(order[1], order[2]);
}

TEST(DsgTest, ReadFromInitialProducesAntiDependencyOnly) {
  HistoryBuilder b;
  b.Txn(1).Read("x", 0);
  b.Txn(2).Write("x");
  Dsg dsg(b.Build());
  ASSERT_EQ(dsg.edges().size(), 1u);
  EXPECT_EQ(dsg.edges()[0].type, EdgeType::kAntiDepends);
}

TEST(DsgTest, SessionEdgesFollowSequence) {
  HistoryBuilder b;
  b.Txn(1).Write("x").InSession(1, 2);
  b.Txn(2).Write("y").InSession(1, 1);
  Dsg dsg(b.Build());
  bool found = false;
  for (const auto& e : dsg.edges()) {
    if (e.type == EdgeType::kSession) {
      found = true;
      // seq 1 (txn 2) -> seq 2 (txn 1)
      EXPECT_EQ(dsg.txns()[e.from]->id.logical, 2u);
      EXPECT_EQ(dsg.txns()[e.to]->id.logical, 1u);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace hat::adya
