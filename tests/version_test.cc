// Unit tests for the multi-version store: LWW registers, delta folding,
// convergence under permuted delivery, bounded reads, GC, serialization.

#include <gtest/gtest.h>

#include <algorithm>

#include "hat/common/codec.h"
#include "hat/common/rng.h"
#include "hat/version/sharded_store.h"
#include "hat/version/versioned_store.h"
#include "hat/version/wire.h"

namespace hat::version {
namespace {

WriteRecord Put(const Key& k, const Value& v, uint64_t logical,
                uint32_t client = 1) {
  WriteRecord w;
  w.key = k;
  w.value = v;
  w.ts = {logical, client};
  return w;
}

WriteRecord Delta(const Key& k, int64_t d, uint64_t logical,
                  uint32_t client = 1) {
  WriteRecord w;
  w.key = k;
  w.value = EncodeInt64Value(d);
  w.kind = WriteKind::kDelta;
  w.ts = {logical, client};
  return w;
}

TEST(TimestampTest, TotalOrder) {
  Timestamp a{1, 5}, b{2, 1}, c{1, 6};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_LT(c, b);
  EXPECT_TRUE(kInitialVersion < a);
  EXPECT_TRUE(kInitialVersion.IsZero());
}

TEST(VersionedStoreTest, EmptyReadsNotFound) {
  VersionedStore store;
  EXPECT_FALSE(store.Read("x").found);
  EXPECT_FALSE(store.LatestTimestamp("x").has_value());
}

TEST(VersionedStoreTest, LastWriterWins) {
  VersionedStore store;
  store.Apply(Put("x", "old", 1));
  store.Apply(Put("x", "new", 2));
  auto rv = store.Read("x");
  EXPECT_TRUE(rv.found);
  EXPECT_EQ(rv.value, "new");
  EXPECT_EQ(rv.ts, (Timestamp{2, 1}));
}

TEST(VersionedStoreTest, LwwIndependentOfArrivalOrder) {
  VersionedStore store;
  store.Apply(Put("x", "new", 2));
  store.Apply(Put("x", "old", 1));  // arrives late
  EXPECT_EQ(store.Read("x").value, "new");
}

TEST(VersionedStoreTest, ClientIdBreaksTies) {
  VersionedStore store;
  store.Apply(Put("x", "a", 5, /*client=*/1));
  store.Apply(Put("x", "b", 5, /*client=*/2));
  EXPECT_EQ(store.Read("x").value, "b");
}

TEST(VersionedStoreTest, DuplicateApplyIsIdempotent) {
  VersionedStore store;
  EXPECT_TRUE(store.Apply(Put("x", "v", 1)));
  EXPECT_FALSE(store.Apply(Put("x", "v", 1)));
  EXPECT_EQ(store.VersionCountFor("x"), 1u);
}

TEST(VersionedStoreTest, DeltasFoldOntoBase) {
  VersionedStore store;
  store.Apply(Put("bal", EncodeInt64Value(100), 1));
  store.Apply(Delta("bal", 20, 2));
  store.Apply(Delta("bal", -5, 3));
  EXPECT_EQ(DecodeInt64Value(store.Read("bal").value), 115);
}

TEST(VersionedStoreTest, PutResetsDeltaAccumulation) {
  VersionedStore store;
  store.Apply(Put("bal", EncodeInt64Value(100), 1));
  store.Apply(Delta("bal", 50, 2));
  store.Apply(Put("bal", EncodeInt64Value(0), 3));  // reset
  store.Apply(Delta("bal", 7, 4));
  EXPECT_EQ(DecodeInt64Value(store.Read("bal").value), 7);
}

TEST(VersionedStoreTest, DeltaOnlyKeyStartsFromZero) {
  VersionedStore store;
  store.Apply(Delta("ctr", 3, 1));
  store.Apply(Delta("ctr", 4, 2));
  EXPECT_EQ(DecodeInt64Value(store.Read("ctr").value), 7);
}

TEST(VersionedStoreTest, ConvergencePropertyRandomPermutations) {
  // The paper's convergence guarantee (Section 5.1.4): replicas that receive
  // the same set of writes in any order agree.
  Rng rng(42);
  for (int trial = 0; trial < 50; trial++) {
    std::vector<WriteRecord> writes;
    for (int i = 1; i <= 20; i++) {
      if (rng.NextBool(0.6)) {
        writes.push_back(Put("k", "v" + std::to_string(i), i,
                             1 + i % 3));
      } else {
        writes.push_back(
            Delta("k", rng.NextInRange(-10, 10), i, 1 + i % 3));
      }
    }
    VersionedStore replica_a, replica_b;
    for (const auto& w : writes) replica_a.Apply(w);
    // Shuffle.
    for (size_t i = writes.size(); i > 1; i--) {
      std::swap(writes[i - 1], writes[rng.NextBelow(i)]);
    }
    for (const auto& w : writes) replica_b.Apply(w);
    auto a = replica_a.Read("k");
    auto b = replica_b.Read("k");
    EXPECT_EQ(a.value, b.value) << "trial " << trial;
    EXPECT_EQ(a.ts, b.ts);
  }
}

TEST(VersionedStoreTest, BoundedReadSeesSnapshot) {
  VersionedStore store;
  store.Apply(Put("x", "v1", 1));
  store.Apply(Put("x", "v2", 5));
  store.Apply(Put("x", "v3", 9));
  EXPECT_EQ(store.Read("x", Timestamp{5, 1}).value, "v2");
  EXPECT_EQ(store.Read("x", Timestamp{4, 99}).value, "v1");
  EXPECT_FALSE(store.Read("x", Timestamp{0, 1}).found);
}

TEST(VersionedStoreTest, ReadAtLeast) {
  VersionedStore store;
  store.Apply(Put("x", "v1", 1));
  EXPECT_FALSE(store.ReadAtLeast("x", Timestamp{2, 0}).has_value());
  store.Apply(Put("x", "v2", 3));
  auto rv = store.ReadAtLeast("x", Timestamp{2, 0});
  ASSERT_TRUE(rv.has_value());
  EXPECT_EQ(rv->value, "v2");
}

TEST(VersionedStoreTest, ScanReturnsSortedRange) {
  VersionedStore store;
  store.Apply(Put("b", "2", 1));
  store.Apply(Put("a", "1", 1));
  store.Apply(Put("d", "4", 1));
  store.Apply(Put("c", "3", 1));
  auto items = store.Scan("b", "d");
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].first, "b");
  EXPECT_EQ(items[1].first, "c");
}

TEST(VersionedStoreTest, VersionsAfterForAntiEntropy) {
  VersionedStore store;
  store.Apply(Put("x", "v1", 1));
  store.Apply(Put("x", "v2", 2));
  store.Apply(Put("x", "v3", 3));
  auto missing = store.VersionsAfter("x", Timestamp{1, 1});
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0].value, "v2");
  EXPECT_EQ(missing[1].value, "v3");
}

TEST(VersionedStoreTest, DigestListsLatestPerKey) {
  VersionedStore store;
  store.Apply(Put("a", "1", 1));
  store.Apply(Put("a", "2", 7));
  store.Apply(Put("b", "1", 3));
  auto digest = store.Digest();
  ASSERT_EQ(digest.size(), 2u);
  EXPECT_EQ(digest[0], (std::pair<Key, Timestamp>{"a", {7, 1}}));
  EXPECT_EQ(digest[1], (std::pair<Key, Timestamp>{"b", {3, 1}}));
}

TEST(VersionedStoreTest, GcPreservesVisibleValue) {
  VersionedStore store;
  store.Apply(Put("bal", EncodeInt64Value(10), 1));
  store.Apply(Delta("bal", 5, 2));
  store.Apply(Delta("bal", 5, 3));
  store.Apply(Delta("bal", 1, 9));
  int64_t before = *DecodeInt64Value(store.Read("bal").value);
  size_t dropped = store.GarbageCollect("bal", Timestamp{9, 0});
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(*DecodeInt64Value(store.Read("bal").value), before);
  EXPECT_LE(store.VersionCountFor("bal"), 2u);
}

TEST(VersionedStoreTest, GcKeepsNewerVersionsIntact) {
  VersionedStore store;
  for (int i = 1; i <= 10; i++) {
    store.Apply(Put("x", "v" + std::to_string(i), i));
  }
  store.GarbageCollect("x", Timestamp{8, 0});
  EXPECT_EQ(store.Read("x").value, "v10");
  EXPECT_EQ(store.Read("x", Timestamp{8, 1}).value, "v8");
}

TEST(VersionedStoreTest, SibsAndDepsSurviveFold) {
  VersionedStore store;
  WriteRecord w = Put("x", "v", 4);
  w.sibs = {"x", "y", "z"};
  w.deps = {{"a", {1, 1}}};
  store.Apply(w);
  auto rv = store.Read("x");
  EXPECT_EQ(rv.sibs, (std::vector<Key>{"x", "y", "z"}));
  ASSERT_EQ(rv.deps.size(), 1u);
  EXPECT_EQ(rv.deps[0].key, "a");
}

TEST(VersionedStoreTest, NthNewestTimestamp) {
  VersionedStore store;
  for (uint64_t i = 1; i <= 5; i++) {
    store.Apply(Put("x", "v" + std::to_string(i), i));
  }
  EXPECT_EQ(store.NthNewestTimestamp("x", 0), (Timestamp{5, 1}));
  EXPECT_EQ(store.NthNewestTimestamp("x", 4), (Timestamp{1, 1}));
  EXPECT_FALSE(store.NthNewestTimestamp("x", 5).has_value());
  EXPECT_FALSE(store.NthNewestTimestamp("absent", 0).has_value());
}

TEST(VersionedStoreTest, NewestPutTimestampSkipsDeltas) {
  VersionedStore store;
  store.Apply(Put("x", EncodeInt64Value(1), 1));
  store.Apply(Delta("x", 1, 2));
  store.Apply(Put("x", EncodeInt64Value(5), 3));
  store.Apply(Delta("x", 1, 4));
  store.Apply(Delta("x", 1, 5));
  EXPECT_EQ(store.NewestPutTimestamp("x"), (Timestamp{3, 1}));
  // Bounded search: the put is 3rd from the top.
  EXPECT_FALSE(store.NewestPutWithin("x", 2).has_value());
  EXPECT_EQ(store.NewestPutWithin("x", 3), (Timestamp{3, 1}));
  EXPECT_FALSE(store.NewestPutTimestamp("absent").has_value());
}

TEST(VersionedStoreTest, DropVersionsBeforePreservesValue) {
  VersionedStore store;
  store.Apply(Put("x", EncodeInt64Value(10), 1));
  store.Apply(Put("x", EncodeInt64Value(20), 2));
  store.Apply(Delta("x", 5, 3));
  int64_t before = *DecodeInt64Value(store.Read("x").value);
  // Dropping below the newest Put is always safe.
  EXPECT_EQ(store.DropVersionsBefore("x", Timestamp{2, 1}), 1u);
  EXPECT_EQ(*DecodeInt64Value(store.Read("x").value), before);
  EXPECT_EQ(store.VersionCountFor("x"), 2u);
  EXPECT_EQ(store.DropVersionsBefore("x", Timestamp{1, 0}), 0u);
}

TEST(VersionedStoreTest, DropBeforeIsConvergenceSafeWithLateArrivals) {
  // Replica A GCs below its newest Put; a late delta older than that Put
  // then arrives at both replicas. They must still agree.
  VersionedStore a, b;
  auto late_delta = Delta("x", 7, 2);
  a.Apply(Put("x", EncodeInt64Value(0), 1));
  b.Apply(Put("x", EncodeInt64Value(0), 1));
  a.Apply(Delta("x", 1, 4));
  b.Apply(Delta("x", 1, 4));
  a.Apply(Put("x", EncodeInt64Value(100), 3));
  b.Apply(Put("x", EncodeInt64Value(100), 3));
  a.DropVersionsBefore("x", *a.NewestPutTimestamp("x"));
  // The late delta (ts 2 < put ts 3) arrives everywhere afterwards.
  a.Apply(late_delta);
  b.Apply(late_delta);
  EXPECT_EQ(a.Read("x").value, b.Read("x").value);
  EXPECT_EQ(*DecodeInt64Value(a.Read("x").value), 101);
}

// --------------------------- fold cache ------------------------------------

TEST(FoldCacheTest, WarmCacheTracksColdFoldUnderRandomTraffic) {
  // Property: a store that is read after every Apply (warm fold cache,
  // exercising the incremental-append path) must agree with a store that
  // receives the same writes but is only folded cold at each checkpoint.
  Rng rng(7);
  for (int trial = 0; trial < 20; trial++) {
    VersionedStore warm, cold;
    std::vector<WriteRecord> writes;
    for (int i = 1; i <= 40; i++) {
      // Mix in-order appends with out-of-order (invalidating) inserts and
      // non-numeric Puts under Deltas.
      uint64_t logical = rng.NextBool(0.7)
                             ? static_cast<uint64_t>(100 + i)
                             : 1 + rng.NextBelow(99);
      WriteRecord w = rng.NextBool(0.5)
                          ? Put("k", rng.NextBool(0.8)
                                         ? EncodeInt64Value(rng.NextInRange(
                                               -100, 100))
                                         : Value("not-a-number"),
                                logical, 1 + i % 3)
                          : Delta("k", rng.NextInRange(-10, 10), logical,
                                  1 + i % 3);
      writes.push_back(w);
      warm.Apply(w);
      auto warm_rv = warm.Read("k");  // warms/extends the cache every step
      VersionedStore fresh;
      for (const auto& replay : writes) fresh.Apply(replay);
      auto cold_rv = fresh.Read("k");
      EXPECT_EQ(warm_rv.value, cold_rv.value) << "trial " << trial
                                              << " step " << i;
      EXPECT_EQ(warm_rv.ts, cold_rv.ts);
    }
  }
}

TEST(FoldCacheTest, OutOfOrderDeltaInvalidatesCachedFold) {
  VersionedStore store;
  store.Apply(Delta("ctr", 2, 2));
  store.Apply(Delta("ctr", 4, 4));
  EXPECT_EQ(DecodeInt64Value(store.Read("ctr").value), 6);  // cache warm
  store.Apply(Delta("ctr", 3, 3));  // lands in the middle of the chain
  EXPECT_EQ(DecodeInt64Value(store.Read("ctr").value), 9);
}

TEST(FoldCacheTest, LatePutBelowCachedDeltasRefoldsCorrectly) {
  VersionedStore store;
  store.Apply(Delta("ctr", 5, 4));
  EXPECT_EQ(DecodeInt64Value(store.Read("ctr").value), 5);
  store.Apply(Put("ctr", EncodeInt64Value(100), 3));  // late base
  EXPECT_EQ(DecodeInt64Value(store.Read("ctr").value), 105);
}

TEST(FoldCacheTest, GcInvalidatesCachedFold) {
  VersionedStore store;
  store.Apply(Put("bal", EncodeInt64Value(10), 1));
  store.Apply(Delta("bal", 5, 2));
  store.Apply(Delta("bal", 1, 3));
  int64_t before = *DecodeInt64Value(store.Read("bal").value);  // warm
  store.GarbageCollect("bal", Timestamp{3, 0});
  EXPECT_EQ(*DecodeInt64Value(store.Read("bal").value), before);
  store.Apply(Put("x", EncodeInt64Value(1), 1));
  store.Apply(Put("x", EncodeInt64Value(2), 2));
  EXPECT_EQ(store.Read("x").ts, (Timestamp{2, 1}));  // warm
  store.DropVersionsBefore("x", Timestamp{2, 1});
  EXPECT_EQ(*DecodeInt64Value(store.Read("x").value), 2);
}

// ------------------------- bucketed digest ---------------------------------

TEST(BucketDigestTest, HashesAreOrderIndependent) {
  VersionedStore a, b;
  std::vector<WriteRecord> writes;
  for (int i = 0; i < 50; i++) {
    writes.push_back(Put("key" + std::to_string(i % 17), "v", 1 + i));
  }
  for (const auto& w : writes) a.Apply(w);
  for (auto it = writes.rbegin(); it != writes.rend(); ++it) b.Apply(*it);
  EXPECT_EQ(a.BucketHashes(), b.BucketHashes());
}

TEST(BucketDigestTest, DifferingLatestVersionFlipsExactlyItsBucket) {
  VersionedStore a, b;
  for (int i = 0; i < 100; i++) {
    auto w = Put("key" + std::to_string(i), "v", 5);
    a.Apply(w);
    b.Apply(w);
  }
  EXPECT_EQ(a.BucketHashes(), b.BucketHashes());
  a.Apply(Put("key42", "newer", 9));
  auto ha = a.BucketHashes(), hb = b.BucketHashes();
  size_t diffs = 0;
  for (size_t i = 0; i < ha.size(); i++) diffs += ha[i] != hb[i];
  EXPECT_EQ(diffs, 1u);
  EXPECT_NE(ha[a.BucketOf("key42")], hb[b.BucketOf("key42")]);
}

TEST(BucketDigestTest, OlderVersionArrivalLeavesHashUntouched) {
  VersionedStore a, b;
  a.Apply(Put("k", "new", 9));
  b.Apply(Put("k", "new", 9));
  a.Apply(Put("k", "old", 2));  // does not change k's latest
  EXPECT_EQ(a.BucketHashes(), b.BucketHashes());
}

TEST(BucketDigestTest, GcPreservesBucketHashes) {
  VersionedStore store, fresh;
  for (int i = 1; i <= 10; i++) {
    store.Apply(Put("k", "v" + std::to_string(i), i));
  }
  fresh.Apply(Put("k", "v10", 10));
  store.DropVersionsBefore("k", Timestamp{10, 1});
  EXPECT_EQ(store.BucketHashes(), fresh.BucketHashes());
}

TEST(BucketDigestTest, ForEachLatestInBucketPartitionsTheKeyspace) {
  VersionedStore store;
  for (int i = 0; i < 200; i++) {
    store.Apply(Put("key" + std::to_string(i), "v", 1 + i));
  }
  size_t seen = 0;
  for (size_t b = 0; b < store.digest_buckets(); b++) {
    store.ForEachLatestInBucket(
        b, [&](const Key& key, const Timestamp& ts) {
          EXPECT_EQ(store.BucketOf(key), b);
          EXPECT_EQ(store.LatestTimestamp(key), ts);
          seen++;
        });
    EXPECT_EQ(store.BucketKeyCount(b) > 0, store.BucketHash(b) != 0);
  }
  EXPECT_EQ(seen, store.KeyCount());
}

TEST(BucketDigestTest, SameTimestampBumpsOnTwoKeysDoNotCancel) {
  // Regression: with an XOR-separable entry hash, updating two same-bucket
  // keys between the same pair of timestamps cancels (the delta F(old) ^
  // F(new) is key-independent) and the diverged bucket reads as in-sync.
  // Force every key into one bucket to make collisions certain.
  VersionedStore a(1), b(1);
  for (int i = 0; i < 8; i++) {
    auto w = Put("key" + std::to_string(i), "v", 10);
    a.Apply(w);
    b.Apply(w);
  }
  EXPECT_EQ(a.BucketHash(0), b.BucketHash(0));
  // Exactly two keys move 10 -> 77 on one replica only.
  a.Apply(Put("key2", "newer", 77));
  a.Apply(Put("key5", "newer", 77));
  EXPECT_NE(a.BucketHash(0), b.BucketHash(0))
      << "two same-ts updates must not cancel out of the bucket hash";
  EXPECT_NE(a.TopHash(), b.TopHash());
}

TEST(BucketDigestTest, BucketCountIsARuntimeKnob) {
  VersionedStore store(8);
  EXPECT_EQ(store.digest_buckets(), 8u);
  for (int i = 0; i < 200; i++) {
    store.Apply(Put("key" + std::to_string(i), "v", 1 + i));
  }
  EXPECT_EQ(store.BucketHashes().size(), 8u);
  size_t seen = 0;
  for (size_t b = 0; b < store.digest_buckets(); b++) {
    store.ForEachLatestInBucket(b, [&](const Key& key, const Timestamp&) {
      EXPECT_EQ(store.BucketOf(key), b);
      seen++;
    });
  }
  EXPECT_EQ(seen, store.KeyCount());
  // Same writes, same bucket count: identical hashes regardless of the
  // default-sized store's view of the world.
  VersionedStore twin(8);
  for (int i = 0; i < 200; i++) {
    twin.Apply(Put("key" + std::to_string(i), "v", 1 + i));
  }
  EXPECT_EQ(store.BucketHashes(), twin.BucketHashes());
}

TEST(BucketDigestTest, TopHashSummarizesTheStore) {
  VersionedStore a(64), b(64);
  for (int i = 0; i < 100; i++) {
    auto w = Put("key" + std::to_string(i), "v", 5);
    a.Apply(w);
    b.Apply(w);
  }
  EXPECT_EQ(a.TopHash(), b.TopHash());
  a.Apply(Put("key42", "newer", 9));
  EXPECT_NE(a.TopHash(), b.TopHash());
  b.Apply(Put("key42", "newer", 9));
  EXPECT_EQ(a.TopHash(), b.TopHash());
  // Old-version arrivals do not move any latest entry, so no change.
  a.Apply(Put("key42", "stale", 2));
  EXPECT_EQ(a.TopHash(), b.TopHash());
}

// ----------------------------- sharded store -------------------------------

TEST(ShardedStoreTest, RoutingPartitionsTheKeyspace) {
  ShardedStore store(ShardedStore::Options{4, 64, 1});
  ASSERT_EQ(store.shard_count(), 4u);
  for (int i = 0; i < 400; i++) {
    store.Apply(Put("key" + std::to_string(i), "v", 1 + i));
  }
  size_t total = 0;
  bool multiple_used = false;
  for (size_t s = 0; s < store.shard_count(); s++) {
    store.shard(s).ForEachLatest([&](const Key& key, const Timestamp&) {
      EXPECT_EQ(store.ShardIndexOf(key), s);
    });
    total += store.shard(s).KeyCount();
    if (s > 0 && store.shard(s).KeyCount() > 0) multiple_used = true;
  }
  EXPECT_EQ(total, 400u);
  EXPECT_TRUE(multiple_used) << "FNV routing should spread keys";
}

TEST(ShardedStoreTest, StrideComposesWithServerPlacement) {
  // stride = servers-per-cluster: the local shard of a key must be
  // (Fnv1a64 % (shards x stride)) / stride, and the server-level placement
  // (Fnv1a64 % stride) must be untouched by the shard count.
  constexpr size_t kStride = 5, kShards = 3;
  ShardedStore store(ShardedStore::Options{kShards, 64, kStride});
  for (int i = 0; i < 300; i++) {
    Key key = "key" + std::to_string(i);
    uint64_t h = Fnv1a64(key.data(), key.size());
    EXPECT_EQ(store.ShardIndexOf(key), (h % (kShards * kStride)) / kStride);
    EXPECT_LT(store.ShardIndexOf(key), kShards);
  }
}

TEST(ShardedStoreTest, MatchesFlatStoreOnShuffledWriteStream) {
  // The sharded data plane is a pure re-partitioning: a ShardedStore and a
  // flat VersionedStore fed the same shuffled write stream must agree on
  // every fold, latest timestamp, and scan result.
  hat::Rng rng(2024);
  std::vector<WriteRecord> stream;
  for (int i = 0; i < 60; i++) {
    Key key = "key" + std::to_string(i % 23);
    if (rng.NextBool(0.5)) {
      stream.push_back(Put(key, "v" + std::to_string(i), 1 + i));
    } else {
      stream.push_back(Delta(key, rng.NextInRange(-5, 5), 1 + i));
    }
  }
  for (int round = 0; round < 5; round++) {
    // Fisher-Yates shuffle; deterministic via the fixture Rng.
    for (size_t i = stream.size() - 1; i > 0; i--) {
      std::swap(stream[i], stream[rng.NextBelow(i + 1)]);
    }
    VersionedStore flat;
    ShardedStore sharded(ShardedStore::Options{4, 32, 3});
    for (const auto& w : stream) {
      flat.Apply(w);
      sharded.Apply(w);
    }
    EXPECT_EQ(sharded.KeyCount(), flat.KeyCount());
    EXPECT_EQ(sharded.VersionCount(), flat.VersionCount());
    for (int i = 0; i < 23; i++) {
      Key key = "key" + std::to_string(i);
      auto f = flat.Read(key);
      auto s = sharded.Read(key);
      EXPECT_EQ(s.found, f.found) << key;
      EXPECT_EQ(s.value, f.value) << key;
      EXPECT_EQ(s.ts, f.ts) << key;
      EXPECT_EQ(sharded.LatestTimestamp(key), flat.LatestTimestamp(key));
    }
    auto flat_scan = flat.Scan("", "\xff");
    auto sharded_scan = sharded.Scan("", "\xff");
    ASSERT_EQ(sharded_scan.size(), flat_scan.size());
    for (size_t i = 0; i < flat_scan.size(); i++) {
      EXPECT_EQ(sharded_scan[i].first, flat_scan[i].first) << i;
      EXPECT_EQ(sharded_scan[i].second.value, flat_scan[i].second.value);
      EXPECT_EQ(sharded_scan[i].second.ts, flat_scan[i].second.ts);
    }
  }
}

TEST(ShardedStoreTest, ScanMergesShardsInKeyOrder) {
  ShardedStore store(ShardedStore::Options{4, 32, 1});
  for (int i = 0; i < 100; i++) {
    store.Apply(Put("key" + std::to_string(i), "v", 1 + i));
  }
  Key prev;
  size_t n = 0;
  store.ScanVisit("", "\xff", std::nullopt,
                  [&](const Key& key, ReadVersion) {
                    if (n > 0) EXPECT_LT(prev, key);
                    prev = key;
                    n++;
                  });
  EXPECT_EQ(n, 100u);
}

TEST(ShardedStoreTest, ShardHashesLocalizeADiff) {
  ShardedStore a(ShardedStore::Options{4, 32, 1});
  ShardedStore b(ShardedStore::Options{4, 32, 1});
  for (int i = 0; i < 200; i++) {
    auto w = Put("key" + std::to_string(i), "v", 5);
    a.Apply(w);
    b.Apply(w);
  }
  EXPECT_EQ(a.ShardHashes(), b.ShardHashes());
  a.Apply(Put("key7", "newer", 9));
  auto ha = a.ShardHashes(), hb = b.ShardHashes();
  size_t diffs = 0;
  for (size_t s = 0; s < ha.size(); s++) diffs += ha[s] != hb[s];
  EXPECT_EQ(diffs, 1u);
  EXPECT_NE(ha[a.ShardIndexOf("key7")], hb[b.ShardIndexOf("key7")]);
}

TEST(ShardedStoreTest, GcFrontiersAreShardLocal) {
  // GC on one shard's key must not disturb any other shard's version sets
  // or digest state.
  ShardedStore store(ShardedStore::Options{3, 32, 1});
  for (int i = 0; i < 30; i++) {
    Key key = "key" + std::to_string(i);
    for (int v = 1; v <= 4; v++) {
      store.Apply(Put(key, "v" + std::to_string(v), v));
    }
  }
  Key victim = "key0";
  size_t victim_shard = store.ShardIndexOf(victim);
  std::vector<uint64_t> before = store.ShardHashes();
  EXPECT_EQ(store.DropVersionsBefore(victim, Timestamp{4, 1}), 3u);
  std::vector<uint64_t> after = store.ShardHashes();
  // Dropping non-latest versions leaves every latest entry alone — all
  // shard summaries unchanged — and only the victim's shard lost versions.
  EXPECT_EQ(after, before);
  for (size_t s = 0; s < store.shard_count(); s++) {
    size_t expect = store.shard(s).KeyCount() * 4 -
                    (s == victim_shard ? 3 : 0);
    EXPECT_EQ(store.shard(s).VersionCount(), expect) << s;
  }
}

// ------------------------------- wire -------------------------------------

TEST(WireTest, WriteRecordRoundTrip) {
  WriteRecord w;
  w.key = "the-key";
  w.value = "payload with \0 byte";
  w.kind = WriteKind::kDelta;
  w.ts = {123456789, 42};
  w.sibs = {"a", "b", "the-key"};
  w.deps = {{"x", {9, 9}}, {"y", {8, 8}}};
  auto decoded = DecodeWriteRecord(w.key, EncodeWriteRecord(w));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, w.key);
  EXPECT_EQ(decoded->value, w.value);
  EXPECT_EQ(decoded->kind, w.kind);
  EXPECT_EQ(decoded->ts, w.ts);
  EXPECT_EQ(decoded->sibs, w.sibs);
  ASSERT_EQ(decoded->deps.size(), 2u);
  EXPECT_EQ(decoded->deps[1].key, "y");
}

TEST(WireTest, DecodeRejectsTruncation) {
  WriteRecord w;
  w.key = "k";
  w.value = "v";
  w.ts = {1, 1};
  w.sibs = {"k", "other"};
  std::string enc = EncodeWriteRecord(w);
  EXPECT_FALSE(DecodeWriteRecord("k", enc.substr(0, 5)).has_value());
}

TEST(WireTest, StorageKeyRoundTrip) {
  auto parsed = ParseStorageKey(StorageKeyFor("mykey", {77, 3}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, "mykey");
  EXPECT_EQ(parsed->second, (Timestamp{77, 3}));
}

TEST(KeyInternerTest, DenseIdsAndStableViews) {
  KeyInterner keys;
  std::vector<std::string_view> views;
  for (int i = 0; i < 1000; i++) {
    std::string k = "key" + std::to_string(i);
    EXPECT_EQ(keys.Find(k), KeyInterner::kNotFound);
    EXPECT_EQ(keys.Intern(k), static_cast<KeyInterner::KeyId>(i));
    EXPECT_EQ(keys.Intern(k), static_cast<KeyInterner::KeyId>(i));
    views.push_back(keys.KeyOf(i));
  }
  EXPECT_EQ(keys.size(), 1000u);
  // Views taken before many table growths still read the original bytes.
  for (int i = 0; i < 1000; i++) {
    EXPECT_EQ(views[i], "key" + std::to_string(i));
    EXPECT_EQ(keys.HashOf(i), Fnv1a64(views[i].data(), views[i].size()));
  }
}

TEST(KeyInternerTest, EmptyKeyIsAKey) {
  KeyInterner keys;
  EXPECT_EQ(keys.Intern(""), 0u);
  EXPECT_EQ(keys.Find(""), 0u);
  EXPECT_EQ(keys.KeyOf(0), "");
}

TEST(RecordArenaTest, DeadByteAccountingGatesCompaction) {
  RecordArena arena;
  std::string blob(1024, 'x');
  for (int i = 0; i < 600; i++) arena.Store(blob);
  EXPECT_EQ(arena.stored_bytes(), 600u * 1024u);
  EXPECT_FALSE(arena.ShouldCompact());
  // Majority dead + past the floor -> compact.
  arena.NoteDead(400 * 1024);
  EXPECT_TRUE(arena.ShouldCompact());
  EXPECT_EQ(arena.live_bytes(), 200u * 1024u);
}

TEST(VersionedStoreTest, ApproximateBytesReturnsToBaselineAfterGc) {
  // The bloated store applies a long history (with sibling metadata, so
  // per-record and fold-cache accounting both matter), reads to warm the
  // fold cache, then drops the shadowed prefix. A control store that only
  // ever saw the surviving suffix must report the identical byte figure —
  // i.e. GC refunds exactly what the dropped records charged.
  VersionedStore bloated;
  for (uint64_t t = 1; t <= 64; t++) {
    WriteRecord w = Put("x", "value" + std::to_string(t), t);
    w.sibs = {"x", "sibling"};
    bloated.Apply(w);
    bloated.Apply(Delta("y", 1, t));
  }
  ASSERT_TRUE(bloated.Read("x").found);  // warm the fold cache
  ASSERT_TRUE(bloated.Read("y").found);
  EXPECT_EQ(bloated.DropVersionsBefore("x", Timestamp{64, 1}), 63u);
  EXPECT_EQ(bloated.DropVersionsBefore("y", Timestamp{64, 1}), 63u);

  VersionedStore control;
  WriteRecord survivor = Put("x", "value64", 64);
  survivor.sibs = {"x", "sibling"};
  control.Apply(survivor);
  control.Apply(Delta("y", 1, 64));
  EXPECT_EQ(bloated.Read("x").value, control.Read("x").value);
  EXPECT_EQ(bloated.Read("y").value, control.Read("y").value);
  // Same live records, same warmed caches -> byte-identical accounting.
  EXPECT_EQ(bloated.ApproximateBytes(), control.ApproximateBytes());
}

TEST(FoldCacheTest, OutOfOrderApplyAfterGcMatchesFreshFold) {
  // Regression for the memo/GC interaction: GC rewrites the chain (folded
  // synthetic Put), a later out-of-order insert below the cached fold must
  // invalidate the memo, and the re-fold must agree with a control store
  // that folds the same post-GC version set from scratch.
  VersionedStore store;
  store.Apply(Put("x", EncodeInt64Value(100), 1));
  for (uint64_t t = 2; t <= 6; t++) store.Apply(Delta("x", 1, t));
  ASSERT_TRUE(store.Read("x").found);  // warm
  store.GarbageCollect("x", Timestamp{4, 1});
  ASSERT_TRUE(store.Read("x").found);  // re-warm over the rewritten chain

  // Late delta lands *between* the synthetic base Put and the cached tail.
  store.Apply(Delta("x", 1000, 4, /*client=*/9));

  VersionedStore fresh;
  for (const WriteRecord& w : store.Versions("x")) fresh.Apply(w);
  EXPECT_EQ(store.Read("x").value, fresh.Read("x").value);
  EXPECT_EQ(DecodeInt64Value(store.Read("x").value),
            DecodeInt64Value(fresh.Read("x").value));
  EXPECT_EQ(*DecodeInt64Value(store.Read("x").value), 100 + 5 + 1000);
}

TEST(VersionedStoreTest, ScanOrderSurvivesInterleavedInterning) {
  // The ordered-id index is rebuilt lazily; interleaving scans with batches
  // of out-of-order key arrivals exercises the sorted-prefix + tail merge.
  VersionedStore store;
  const char* batches[] = {"mm", "cc", "zz", "aa", "qq", "bb", "ee", "nn"};
  std::vector<std::string> seen;
  for (const char* k : batches) {
    store.Apply(Put(k, "v", 1));
    seen.clear();
    store.ScanVisit("", "~", std::nullopt,
                    [&seen](const Key& key, ReadVersion) {
                      seen.push_back(key);
                    });
    ASSERT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  }
  EXPECT_EQ(seen.size(), 8u);
}

}  // namespace
}  // namespace hat::version
