// End-to-end integration tests: full deployments, real client/server
// message flows, partitions, and the availability claims of Sections 4-5.

#include <gtest/gtest.h>

#include "hat/client/sync_client.h"
#include "hat/cluster/deployment.h"
#include "hat/common/codec.h"

namespace hat {
namespace {

using client::ClientOptions;
using client::IsolationLevel;
using client::SyncClient;
using client::SystemMode;
using cluster::Deployment;
using cluster::DeploymentOptions;

class IntegrationTest : public ::testing::Test {
 protected:
  void Build(DeploymentOptions opts, uint64_t seed = 7) {
    sim_ = std::make_unique<sim::Simulation>(seed);
    // Tests do not need modeled durability charges.
    opts.server.durable = false;
    deployment_ = std::make_unique<Deployment>(*sim_, opts);
  }

  SyncClient Client(ClientOptions opts) {
    return SyncClient(*sim_, deployment_->AddClient(opts));
  }

  /// Runs the simulation for `d` of virtual time (anti-entropy etc.).
  void Settle(sim::Duration d = 2 * sim::kSecond) {
    sim_->RunUntil(sim_->Now() + d);
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<Deployment> deployment_;
};

TEST_F(IntegrationTest, ReadCommittedWriteThenRead) {
  Build(DeploymentOptions::SingleDatacenter());
  ClientOptions opts;
  opts.isolation = IsolationLevel::kReadCommitted;
  auto c = Client(opts);

  c.Begin();
  c.Write("greeting", "hello");
  ASSERT_TRUE(c.Commit().ok());

  c.Begin();
  auto rv = c.Read("greeting");
  ASSERT_TRUE(rv.ok());
  EXPECT_TRUE(rv->found);
  EXPECT_EQ(rv->value, "hello");
  ASSERT_TRUE(c.Commit().ok());
}

TEST_F(IntegrationTest, ReadsSeeNothingBeforeFirstWrite) {
  Build(DeploymentOptions::SingleDatacenter());
  auto c = Client(ClientOptions{});
  c.Begin();
  auto rv = c.Read("absent");
  ASSERT_TRUE(rv.ok());
  EXPECT_FALSE(rv->found);
  c.Abort();
}

TEST_F(IntegrationTest, AntiEntropyConvergesAcrossClusters) {
  Build(DeploymentOptions::TwoRegions());
  ClientOptions writer_opts;
  writer_opts.home_cluster = 0;
  auto writer = Client(writer_opts);

  writer.Begin();
  writer.Write("k", "v1");
  ASSERT_TRUE(writer.Commit().ok());
  Settle();

  ClientOptions reader_opts;
  reader_opts.home_cluster = 1;  // other datacenter
  auto reader = Client(reader_opts);
  reader.Begin();
  auto rv = reader.Read("k");
  ASSERT_TRUE(rv.ok());
  EXPECT_TRUE(rv->found);
  EXPECT_EQ(rv->value, "v1");
  ASSERT_TRUE(reader.Commit().ok());
}

TEST_F(IntegrationTest, HatCommitsDuringPartitionMasterDoesNot) {
  Build(DeploymentOptions::TwoRegions());
  ClientOptions hat_opts;
  hat_opts.home_cluster = 0;
  hat_opts.op_timeout = 3 * sim::kSecond;
  hat_opts.rpc_timeout = 500 * sim::kMillisecond;
  auto hat_client = Client(hat_opts);

  ClientOptions master_opts = hat_opts;
  master_opts.mode = SystemMode::kMaster;
  auto master_client = Client(master_opts);

  deployment_->PartitionClusters(0, 1);

  // HAT: transactional availability — commits against the local cluster.
  int hat_committed = 0;
  for (int i = 0; i < 8; i++) {
    hat_client.Begin();
    hat_client.Write("key" + std::to_string(i), "v");
    if (hat_client.Commit().ok()) hat_committed++;
  }
  EXPECT_EQ(hat_committed, 8);

  // Master: keys mastered in the remote cluster are unavailable.
  int master_failed = 0;
  int attempts = 0;
  for (int i = 0; i < 8; i++) {
    Key key = "key" + std::to_string(i);
    if (deployment_->MasterOf(key) ==
        deployment_->ReplicaInCluster(key, 0)) {
      continue;  // mastered locally; would succeed
    }
    attempts++;
    master_client.Begin();
    master_client.Write(key, "v");
    Status s = master_client.Commit();
    if (s.IsUnavailable() || s.IsTimeout()) master_failed++;
  }
  ASSERT_GT(attempts, 0);
  EXPECT_EQ(master_failed, attempts);

  // After healing, anti-entropy reconciles both sides.
  deployment_->Heal();
  Settle(3 * sim::kSecond);
  ClientOptions reader_opts;
  reader_opts.home_cluster = 1;
  auto reader = Client(reader_opts);
  reader.Begin();
  auto rv = reader.Read("key0");
  ASSERT_TRUE(rv.ok());
  EXPECT_TRUE(rv->found);
  ASSERT_TRUE(reader.Commit().ok());
}

TEST_F(IntegrationTest, LockingPreventsLostUpdate) {
  Build(DeploymentOptions::SingleDatacenter());
  ClientOptions opts;
  opts.mode = SystemMode::kLocking;
  auto c1 = Client(opts);
  auto c2 = Client(opts);

  // Seed the counter.
  c1.Begin();
  c1.Write("counter", EncodeInt64Value(100));
  ASSERT_TRUE(c1.Commit().ok());
  Settle();

  // Sequential read-modify-writes through locks preserve both updates.
  for (SyncClient* c : {&c1, &c2}) {
    Status s;
    do {
      c->Begin();
      auto v = c->ReadInt("counter");
      ASSERT_TRUE(v.ok());
      c->Write("counter", EncodeInt64Value(*v + 10));
      s = c->Commit();
    } while (!s.ok());  // wait-die may abort; retry
  }
  Settle();
  c1.Begin();
  auto final_value = c1.ReadInt("counter");
  ASSERT_TRUE(final_value.ok());
  EXPECT_EQ(*final_value, 120);
  ASSERT_TRUE(c1.Commit().ok());
}

TEST_F(IntegrationTest, CommutativeIncrementsMergeAcrossPartition) {
  Build(DeploymentOptions::TwoRegions());
  ClientOptions a_opts;
  a_opts.home_cluster = 0;
  auto a = Client(a_opts);
  ClientOptions b_opts;
  b_opts.home_cluster = 1;
  auto b = Client(b_opts);

  a.Begin();
  a.Write("balance", EncodeInt64Value(1000));
  ASSERT_TRUE(a.Commit().ok());
  Settle();

  deployment_->PartitionClusters(0, 1);
  a.Begin();
  a.Increment("balance", 20);
  ASSERT_TRUE(a.Commit().ok());
  b.Begin();
  b.Increment("balance", 30);
  ASSERT_TRUE(b.Commit().ok());

  deployment_->Heal();
  Settle(3 * sim::kSecond);

  // Both increments survive: commutative updates avoid Lost Update
  // (Section 6, footnote 4).
  a.Begin();
  auto va = a.ReadInt("balance");
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(*va, 1050);
  ASSERT_TRUE(a.Commit().ok());
  b.Begin();
  auto vb = b.ReadInt("balance");
  ASSERT_TRUE(vb.ok());
  EXPECT_EQ(*vb, 1050);
  ASSERT_TRUE(b.Commit().ok());
}

TEST_F(IntegrationTest, MavAtomicVisibilityAppendixBExample) {
  // T1: w_x(1) w_y(1); T2: r_x(1) -> r_y must be >= T1's write.
  Build(DeploymentOptions::TwoRegions());
  ClientOptions w_opts;
  w_opts.isolation = IsolationLevel::kMonotonicAtomicView;
  w_opts.home_cluster = 0;
  auto writer = Client(w_opts);

  writer.Begin();
  writer.Write("x", "1");
  writer.Write("y", "1");
  ASSERT_TRUE(writer.Commit().ok());
  Settle(3 * sim::kSecond);

  ClientOptions r_opts = w_opts;
  r_opts.home_cluster = 1;
  auto reader = Client(r_opts);
  reader.Begin();
  auto x = reader.Read("x");
  ASSERT_TRUE(x.ok());
  if (x->found) {
    auto y = reader.Read("y");
    ASSERT_TRUE(y.ok());
    EXPECT_TRUE(y->found) << "MAV: observed T1 via x, y must be visible";
    EXPECT_EQ(y->value, "1");
  }
  ASSERT_TRUE(reader.Commit().ok());
}

TEST_F(IntegrationTest, QuorumUnavailableWhenMajorityUnreachable) {
  Build(DeploymentOptions::TwoRegions());  // 2 replicas; majority = 2
  ClientOptions opts;
  opts.mode = SystemMode::kQuorum;
  opts.home_cluster = 0;
  opts.op_timeout = 2 * sim::kSecond;
  opts.rpc_timeout = 500 * sim::kMillisecond;
  auto c = Client(opts);

  c.Begin();
  c.Write("q", "1");
  ASSERT_TRUE(c.Commit().ok());

  deployment_->PartitionClusters(0, 1);
  c.Begin();
  c.Write("q", "2");
  Status s = c.Commit();
  EXPECT_FALSE(s.ok()) << "writes need both replicas with n=2";
}

}  // namespace
}  // namespace hat
