// Direct unit tests for server::MavCoordinator, constructed without a
// ReplicaServer: NOTIFY traffic is captured by the SendFn and gossip by the
// GossipFn, so the Appendix B pending/good protocol is driven by hand.

#include "hat/server/mav_coordinator.h"

#include <gtest/gtest.h>

#include <vector>

#include "tests/test_util.h"

namespace hat::server {
namespace {

class MavCoordinatorTest : public ::testing::Test {
 protected:
  static constexpr net::NodeId kSelf = 1;
  static constexpr net::NodeId kPeer = 2;

  void MakeCoordinator(std::vector<net::NodeId> replicas = {kSelf, kPeer},
                       MavCoordinator::Options opts = {}) {
    partitioner_ = std::make_unique<FixedPartitioner>(std::move(replicas));
    mav_ = std::make_unique<MavCoordinator>(
        sim_, kSelf, partitioner_.get(), good_, persistence_, opts,
        [this](net::NodeId to, net::Message m, obs::TraceContext) {
          notifies_.emplace_back(to, std::get<net::NotifyRequest>(m));
        },
        [this](const WriteRecord& w, net::NodeId, obs::TraceContext) {
          gossiped_.push_back(w);
        },
        [](const Key&) {});
  }

  WriteRecord MakeWrite(const Key& key, uint64_t logical,
                        std::vector<Key> sibs) {
    WriteRecord w;
    w.key = key;
    w.value = "v";
    w.ts = {logical, 7};
    w.sibs = std::move(sibs);
    return w;
  }

  sim::Simulation sim_{1};
  std::unique_ptr<FixedPartitioner> partitioner_;
  version::ShardedStore good_;
  PersistenceManager persistence_{""};  // disabled: pure in-memory protocol
  std::unique_ptr<MavCoordinator> mav_;
  std::vector<std::pair<net::NodeId, net::NotifyRequest>> notifies_;
  std::vector<WriteRecord> gossiped_;
};

TEST_F(MavCoordinatorTest, SelfOnlyReplicaPromotesImmediately) {
  MakeCoordinator({kSelf});
  mav_->Install(MakeWrite("k", 10, {"k"}), /*gossip=*/true);
  EXPECT_TRUE(good_.Contains("k", {10, 7}));
  EXPECT_EQ(mav_->stats().promotions, 1u);
  EXPECT_EQ(mav_->PendingWriteCount(), 0u);
}

TEST_F(MavCoordinatorTest, PendingUntilPeerAcks) {
  MakeCoordinator();
  mav_->Install(MakeWrite("k", 10, {"k"}), /*gossip=*/true);
  // Our own ack went out to the peer; the write stays hidden.
  ASSERT_EQ(notifies_.size(), 1u);
  EXPECT_EQ(notifies_[0].first, kPeer);
  EXPECT_FALSE(good_.Contains("k", {10, 7}));
  EXPECT_EQ(mav_->PendingWriteCount(), 1u);
  EXPECT_NE(mav_->PendingVersion("k", {10, 7}), nullptr);
  // Peer's ack arrives: pending-stable -> promoted.
  mav_->HandleNotify(net::NotifyRequest{{10, 7}, kPeer});
  EXPECT_TRUE(good_.Contains("k", {10, 7}));
  EXPECT_EQ(mav_->PendingWriteCount(), 0u);
  EXPECT_EQ(mav_->PendingVersion("k", {10, 7}), nullptr);
}

TEST_F(MavCoordinatorTest, AcksOnlyAfterAllLocalSiblingsArrive) {
  MakeCoordinator();
  mav_->Install(MakeWrite("a", 10, {"a", "b"}), /*gossip=*/true);
  // "b" is also replicated here (FixedPartitioner replicates every key
  // everywhere) and has not arrived: no ack may be broadcast yet.
  EXPECT_TRUE(notifies_.empty());
  mav_->Install(MakeWrite("b", 10, {"a", "b"}), /*gossip=*/true);
  ASSERT_EQ(notifies_.size(), 1u);
  mav_->HandleNotify(net::NotifyRequest{{10, 7}, kPeer});
  EXPECT_TRUE(good_.Contains("a", {10, 7}));
  EXPECT_TRUE(good_.Contains("b", {10, 7}));
  EXPECT_EQ(mav_->stats().promotions, 1u);
}

TEST_F(MavCoordinatorTest, EarlyAckCountsTowardPromotion) {
  MakeCoordinator();
  // The peer's NOTIFY races ahead of the write itself.
  mav_->HandleNotify(net::NotifyRequest{{10, 7}, kPeer});
  EXPECT_EQ(mav_->PendingWriteCount(), 0u);
  mav_->Install(MakeWrite("k", 10, {"k"}), /*gossip=*/true);
  // Install finds the early ack and, with our own, promotes at once.
  EXPECT_TRUE(good_.Contains("k", {10, 7}));
}

TEST_F(MavCoordinatorTest, LateAckForPromotedTxnIsAnswered) {
  MakeCoordinator();
  mav_->Install(MakeWrite("k", 10, {"k"}), /*gossip=*/true);
  mav_->HandleNotify(net::NotifyRequest{{10, 7}, kPeer});
  ASSERT_TRUE(good_.Contains("k", {10, 7}));
  notifies_.clear();
  // A healed replica re-notifies after we dropped ack state: answer it so it
  // can promote too.
  mav_->HandleNotify(net::NotifyRequest{{10, 7}, kPeer});
  ASSERT_EQ(notifies_.size(), 1u);
  EXPECT_EQ(notifies_[0].first, kPeer);
  EXPECT_EQ(notifies_[0].second.sender, kSelf);
}

TEST_F(MavCoordinatorTest, StalePendingDroppedButStillAcked) {
  MakeCoordinator();
  good_.Apply(MakeWrite("k", 50, {}));  // newer good version exists
  mav_->Install(MakeWrite("k", 40, {"k"}), /*gossip=*/true);
  EXPECT_EQ(mav_->stats().stale_pending_dropped, 1u);
  EXPECT_EQ(mav_->PendingVersion("k", {40, 7}), nullptr);
  // The ack still went out so siblings elsewhere can promote.
  ASSERT_EQ(notifies_.size(), 1u);
}

TEST_F(MavCoordinatorTest, RenotifyRebroadcastsUntilAcked) {
  MavCoordinator::Options opts;
  opts.renotify_interval = 100 * sim::kMillisecond;
  MakeCoordinator({kSelf, kPeer}, opts);
  mav_->Start();
  mav_->Install(MakeWrite("k", 10, {"k"}), /*gossip=*/true);
  size_t initial = notifies_.size();
  sim_.RunUntil(sim::kSecond);
  EXPECT_GT(notifies_.size(), initial) << "renotify must re-broadcast";
  for (const auto& [to, req] : notifies_) {
    EXPECT_EQ(to, kPeer);
    EXPECT_EQ(req.ts, (Timestamp{10, 7}));
  }
  // Once acked, the rebroadcast stops.
  mav_->HandleNotify(net::NotifyRequest{{10, 7}, kPeer});
  size_t settled = notifies_.size();
  sim_.RunUntil(2 * sim::kSecond);
  EXPECT_EQ(notifies_.size(), settled);
}

TEST_F(MavCoordinatorTest, DuplicateInstallIsIdempotent) {
  MakeCoordinator();
  WriteRecord w = MakeWrite("k", 10, {"k"});
  mav_->Install(w, /*gossip=*/true);
  mav_->Install(w, /*gossip=*/true);  // anti-entropy redundancy
  EXPECT_EQ(mav_->PendingWriteCount(), 1u);
  EXPECT_EQ(gossiped_.size(), 1u);
}

TEST_F(MavCoordinatorTest, ClearDropsPendingState) {
  MakeCoordinator();
  mav_->Install(MakeWrite("k", 10, {"k"}), /*gossip=*/true);
  mav_->Clear();
  EXPECT_EQ(mav_->PendingWriteCount(), 0u);
  EXPECT_EQ(mav_->PendingVersion("k", {10, 7}), nullptr);
}

}  // namespace
}  // namespace hat::server
