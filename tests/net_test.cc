// Unit tests for the simulated network: the Table 1 latency model,
// partitions, RPC timeouts.

#include <gtest/gtest.h>

#include "hat/net/network.h"
#include "hat/net/rpc.h"
#include "hat/net/topology.h"

namespace hat::net {
namespace {

TEST(TopologyTest, CrossRegionMatchesTable1c) {
  EXPECT_DOUBLE_EQ(CrossRegionRttMs(Region::kCalifornia, Region::kOregon),
                   22.5);
  EXPECT_DOUBLE_EQ(CrossRegionRttMs(Region::kSaoPaulo, Region::kSingapore),
                   362.8);
  EXPECT_DOUBLE_EQ(CrossRegionRttMs(Region::kVirginia, Region::kIreland),
                   107.9);
  // Symmetry.
  for (int a = 0; a < kNumRegions; a++) {
    for (int b = 0; b < kNumRegions; b++) {
      EXPECT_DOUBLE_EQ(
          CrossRegionRttMs(static_cast<Region>(a), static_cast<Region>(b)),
          CrossRegionRttMs(static_cast<Region>(b), static_cast<Region>(a)));
    }
  }
}

TEST(TopologyTest, IntraAzMatchesTable1a) {
  Topology topo;
  // us-east-b (az 0), hosts H1..H3.
  NodeId h1 = topo.AddNode({Region::kVirginia, 0, 0});
  NodeId h2 = topo.AddNode({Region::kVirginia, 0, 1});
  NodeId h3 = topo.AddNode({Region::kVirginia, 0, 2});
  EXPECT_DOUBLE_EQ(topo.BaseRttUs(h1, h2), 550.0);
  EXPECT_DOUBLE_EQ(topo.BaseRttUs(h1, h3), 560.0);
  EXPECT_DOUBLE_EQ(topo.BaseRttUs(h2, h3), 500.0);
}

TEST(TopologyTest, CrossAzMatchesTable1b) {
  Topology topo;
  NodeId b = topo.AddNode({Region::kVirginia, 0, 0});
  NodeId c = topo.AddNode({Region::kVirginia, 1, 0});
  NodeId d = topo.AddNode({Region::kVirginia, 2, 0});
  EXPECT_DOUBLE_EQ(topo.BaseRttUs(b, c), 1080.0);
  EXPECT_DOUBLE_EQ(topo.BaseRttUs(b, d), 3120.0);
  EXPECT_DOUBLE_EQ(topo.BaseRttUs(c, d), 3570.0);
}

TEST(TopologyTest, SampledMeanTracksBaseRtt) {
  Topology topo;
  NodeId a = topo.AddNode({Region::kCalifornia, 0, 0});
  NodeId b = topo.AddNode({Region::kOregon, 0, 0});
  Rng rng(1);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    sum += static_cast<double>(topo.SampleOneWayUs(a, b, rng));
  }
  // One-way mean should be ~ RTT/2 = 11250us, within a few percent.
  EXPECT_NEAR(sum / n, 11250.0, 11250.0 * 0.03);
}

TEST(TopologyTest, JitterHasLongTail) {
  Topology topo;
  NodeId a = topo.AddNode({Region::kSaoPaulo, 0, 0});
  NodeId b = topo.AddNode({Region::kSingapore, 0, 0});
  Rng rng(2);
  double base = topo.BaseRttUs(a, b) / 2;
  int above = 0;
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    if (topo.SampleOneWayUs(a, b, rng) > 1.5 * base) above++;
  }
  // Some but not most samples land far out in the tail.
  EXPECT_GT(above, 0);
  EXPECT_LT(above, n / 4);
}

TEST(TopologyTest, LoopbackIsFast) {
  Topology topo;
  NodeId a = topo.AddNode({Region::kVirginia, 0, 0});
  Rng rng(3);
  EXPECT_EQ(topo.SampleOneWayUs(a, a, rng), topo.options().loopback_us);
}

// ------------------------------ Network -----------------------------------

class TestSink : public MessageSink {
 public:
  void OnMessage(Envelope env) override { received.push_back(std::move(env)); }
  std::vector<Envelope> received;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(5) {
    Topology topo;
    a_ = topo.AddNode({Region::kVirginia, 0, 0});
    b_ = topo.AddNode({Region::kVirginia, 0, 1});
    c_ = topo.AddNode({Region::kOregon, 0, 0});
    net_ = std::make_unique<Network>(sim_, std::move(topo));
    net_->Register(a_, &sink_a_);
    net_->Register(b_, &sink_b_);
    net_->Register(c_, &sink_c_);
  }

  void Send(NodeId from, NodeId to) {
    net_->Send(Envelope{from, to, 0, false, PingRequest{}});
  }

  sim::Simulation sim_;
  std::unique_ptr<Network> net_;
  NodeId a_, b_, c_;
  TestSink sink_a_, sink_b_, sink_c_;
};

TEST_F(NetworkTest, DeliversWithLatency) {
  Send(a_, b_);
  EXPECT_TRUE(sink_b_.received.empty());
  sim_.Run();
  ASSERT_EQ(sink_b_.received.size(), 1u);
  EXPECT_EQ(sink_b_.received[0].from, a_);
  EXPECT_GT(sim_.Now(), 0u);  // took nonzero time
}

TEST_F(NetworkTest, PartitionDropsMessages) {
  net_->SetPartitions({{a_}, {b_, c_}});
  Send(a_, b_);
  Send(b_, c_);  // same side: delivered
  sim_.Run();
  EXPECT_TRUE(sink_b_.received.empty());
  EXPECT_EQ(sink_c_.received.size(), 1u);
  EXPECT_EQ(net_->stats().dropped_partition, 1u);
}

TEST_F(NetworkTest, NodesOutsideGroupsShareImplicitGroup) {
  net_->SetPartitions({{a_}});
  EXPECT_FALSE(net_->Reachable(a_, b_));
  EXPECT_TRUE(net_->Reachable(b_, c_));
}

TEST_F(NetworkTest, CutAndRestoreLink) {
  net_->CutLink(a_, b_);
  EXPECT_FALSE(net_->Reachable(a_, b_));
  EXPECT_FALSE(net_->Reachable(b_, a_));
  EXPECT_TRUE(net_->Reachable(a_, c_));
  net_->RestoreLink(b_, a_);
  EXPECT_TRUE(net_->Reachable(a_, b_));
}

TEST_F(NetworkTest, IsolateCutsEverything) {
  net_->Isolate(b_);
  EXPECT_FALSE(net_->Reachable(a_, b_));
  EXPECT_FALSE(net_->Reachable(c_, b_));
  EXPECT_TRUE(net_->Reachable(a_, c_));
}

TEST_F(NetworkTest, HealRestoresAll) {
  net_->SetPartitions({{a_}, {b_}});
  net_->CutLink(a_, c_);
  net_->HealAll();
  EXPECT_TRUE(net_->Reachable(a_, b_));
  EXPECT_TRUE(net_->Reachable(a_, c_));
}

TEST_F(NetworkTest, SelfSendAlwaysReachable) {
  net_->Isolate(a_);
  EXPECT_TRUE(net_->Reachable(a_, a_));
  Send(a_, a_);
  sim_.Run();
  EXPECT_EQ(sink_a_.received.size(), 1u);
}

// -------------------------------- RPC -------------------------------------

class EchoNode : public RpcNode {
 public:
  using RpcNode::RpcNode;
  void HandleMessage(const Envelope& env) override {
    requests++;
    if (respond) Reply(env, PingResponse{});
  }
  int requests = 0;
  bool respond = true;
};

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : sim_(6) {
    Topology topo;
    NodeId a = topo.AddNode({Region::kVirginia, 0, 0});
    NodeId b = topo.AddNode({Region::kVirginia, 0, 1});
    net_ = std::make_unique<Network>(sim_, std::move(topo));
    client_ = std::make_unique<EchoNode>(sim_, *net_, a);
    server_ = std::make_unique<EchoNode>(sim_, *net_, b);
  }
  sim::Simulation sim_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<EchoNode> client_, server_;
};

TEST_F(RpcTest, RequestResponse) {
  bool got = false;
  client_->Call(server_->id(), PingRequest{}, sim::kSecond,
                [&](Status s, const Message* m) {
                  EXPECT_TRUE(s.ok());
                  ASSERT_NE(m, nullptr);
                  EXPECT_TRUE(std::holds_alternative<PingResponse>(*m));
                  got = true;
                });
  sim_.Run();
  EXPECT_TRUE(got);
  EXPECT_EQ(server_->requests, 1);
}

TEST_F(RpcTest, TimeoutFiresWhenNoResponse) {
  server_->respond = false;
  bool timed_out = false;
  client_->Call(server_->id(), PingRequest{}, 100 * sim::kMillisecond,
                [&](Status s, const Message* m) {
                  EXPECT_TRUE(s.IsTimeout());
                  EXPECT_EQ(m, nullptr);
                  timed_out = true;
                });
  sim_.Run();
  EXPECT_TRUE(timed_out);
}

TEST_F(RpcTest, TimeoutFiresAcrossPartition) {
  net_->CutLink(client_->id(), server_->id());
  bool timed_out = false;
  client_->Call(server_->id(), PingRequest{}, 100 * sim::kMillisecond,
                [&](Status s, const Message*) {
                  timed_out = s.IsTimeout();
                });
  sim_.Run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(server_->requests, 0);
}

TEST_F(RpcTest, CallbackFiresExactlyOnce) {
  int fires = 0;
  client_->Call(server_->id(), PingRequest{}, sim::kSecond,
                [&](Status, const Message*) { fires++; });
  sim_.Run();
  EXPECT_EQ(fires, 1);
}

TEST_F(RpcTest, OneWayNeedsNoResponse) {
  client_->SendOneWay(server_->id(), PingRequest{});
  sim_.Run();
  EXPECT_EQ(server_->requests, 1);
}

TEST(WireBytesTest, GrowsWithPayload) {
  PutRequest small;
  small.write.key = "k";
  small.write.value = "v";
  PutRequest large = small;
  large.write.value = std::string(1024, 'x');
  EXPECT_GT(WireBytes(Message{large}), WireBytes(Message{small}) + 1000);
}

TEST(WireBytesTest, CountsSiblingMetadata) {
  PutRequest base;
  base.write.key = "k";
  PutRequest with_sibs = base;
  for (int i = 0; i < 16; i++) {
    with_sibs.write.sibs.push_back("user000000" + std::to_string(i));
  }
  EXPECT_GT(WireBytes(Message{with_sibs}), WireBytes(Message{base}) + 100);
}

}  // namespace
}  // namespace hat::net
