// PlacementMap and explicit-placement ShardedStore tests: epoch-0 must
// reproduce the historical stride arithmetic bit-for-bit (the
// backward-compatibility bar for the live-migration subsystem), epochs
// bump monotonically on reassignment, and the store's logical-slot
// addressing (TrySlotOfKey / Attach / Detach) keeps slot indices stable.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hat/cluster/deployment.h"
#include "hat/cluster/placement.h"
#include "hat/common/rng.h"
#include "hat/version/sharded_store.h"

namespace hat::cluster {
namespace {

using version::ShardedStore;

TEST(PlacementMapTest, EpochZeroReproducesStrideArithmeticForRandomKeys) {
  // The backward-compat property: for 10k random keys and a spread of
  // cluster shapes, epoch-0 placement routing equals the historical
  // Fnv1a64(key) % L -> l % servers_per_cluster arithmetic.
  struct Shape {
    int clusters, spc, sps;
  };
  for (const Shape& shape : std::vector<Shape>{
           {1, 2, 1}, {2, 3, 2}, {2, 5, 4}, {3, 2, 8}, {5, 7, 3}}) {
    PlacementMap pm(shape.clusters, shape.spc, shape.sps);
    EXPECT_EQ(pm.epoch(), 0u);
    int L = shape.spc * shape.sps;
    ASSERT_EQ(pm.num_logical_shards(), L);
    Rng rng(0x9e3779b9 ^ static_cast<uint64_t>(L));
    for (int i = 0; i < 10000; i++) {
      Key key = "key-" + std::to_string(rng.NextUint64());
      int logical = static_cast<int>(Fnv1a64(key.data(), key.size()) %
                                     static_cast<uint64_t>(L));
      for (int c = 0; c < shape.clusters; c++) {
        ASSERT_EQ(pm.Owner(c, logical), logical % shape.spc)
            << "shape " << shape.spc << "x" << shape.sps << " key " << key;
      }
    }
  }
}

TEST(PlacementMapTest, EpochZeroDeploymentRoutingMatchesStrideArithmetic) {
  // End to end through a real Deployment: placement-driven routing equals
  // the classic ShardOf arithmetic for every key while no migration ran.
  sim::Simulation sim(11);
  auto opts = DeploymentOptions::TwoRegions();
  opts.servers_per_cluster = 3;
  opts.server.shards_per_server = 4;
  Deployment deployment(sim, opts);
  EXPECT_EQ(deployment.PlacementEpoch(), 0u);
  Rng rng(77);
  for (int i = 0; i < 10000; i++) {
    Key key = "k" + std::to_string(rng.NextUint64());
    for (int c = 0; c < deployment.NumClusters(); c++) {
      ASSERT_EQ(deployment.ReplicaInCluster(key, c),
                deployment.ServerId(c, deployment.ShardOf(key)))
          << key;
    }
    // The server that hosts the key must agree it owns it.
    net::NodeId id = deployment.ReplicaInCluster(key, 0);
    EXPECT_TRUE(deployment.server(id).good().OwnsKey(key)) << key;
    EXPECT_EQ(deployment.server(id).good().LogicalShardOfKey(key),
              static_cast<uint32_t>(deployment.LogicalShardOf(key)));
  }
}

TEST(PlacementMapTest, OwnedByListsTheStrideLayoutAscending) {
  PlacementMap pm(2, 3, 2);  // L = 6
  EXPECT_EQ(pm.OwnedBy(0, 0), (std::vector<uint32_t>{0, 3}));
  EXPECT_EQ(pm.OwnedBy(0, 1), (std::vector<uint32_t>{1, 4}));
  EXPECT_EQ(pm.OwnedBy(1, 2), (std::vector<uint32_t>{2, 5}));
}

TEST(PlacementMapTest, SetOwnerBumpsEpochOncePerChange) {
  PlacementMap pm(2, 3, 2);
  EXPECT_EQ(pm.SetOwner(0, 4, 1), 0u) << "no-op keeps the epoch";
  EXPECT_EQ(pm.SetOwner(0, 4, 2), 1u);
  EXPECT_EQ(pm.Owner(0, 4), 2);
  EXPECT_EQ(pm.Owner(1, 4), 1) << "other clusters are untouched";
  EXPECT_EQ(pm.SetOwner(1, 0, 2), 2u);
  EXPECT_EQ(pm.OwnedBy(0, 2), (std::vector<uint32_t>{2, 4, 5}));
}

// ---------------------------------------------------------------------------
// Explicit-placement ShardedStore
// ---------------------------------------------------------------------------

ShardedStore ExplicitStore(std::vector<uint32_t> owned, size_t stride) {
  ShardedStore::Options opts;
  opts.shards = owned.size();
  opts.digest_buckets = 16;
  opts.stride = stride;
  opts.logical_shards = std::move(owned);
  return ShardedStore(opts);
}

WriteRecord Write(const Key& key, uint64_t ts) {
  WriteRecord w;
  w.key = key;
  w.value = "v";
  w.ts = Timestamp{ts, 1};
  return w;
}

/// A key landing in logical shard `want` of `modulus` total.
Key KeyInShard(uint32_t want, uint64_t modulus, int salt = 0) {
  for (int i = 0;; i++) {
    Key k = "s" + std::to_string(salt) + "-" + std::to_string(i);
    if (Fnv1a64(k.data(), k.size()) % modulus == want) return k;
  }
}

TEST(ShardedStoreExplicitTest, SlotOfKeyMatchesImplicitArithmetic) {
  // Explicit stride layout {1, 4, 7} (slot 1 of a 3-server cluster, 3
  // shards/server) must address exactly like the implicit arithmetic.
  ShardedStore store = ExplicitStore({1, 4, 7}, 3);
  EXPECT_TRUE(store.explicit_placement());
  EXPECT_EQ(store.num_logical_shards(), 9u);
  Rng rng(5);
  int owned_seen = 0;
  for (int i = 0; i < 5000; i++) {
    Key key = "key" + std::to_string(rng.NextUint64());
    uint32_t logical =
        static_cast<uint32_t>(Fnv1a64(key.data(), key.size()) % 9);
    auto slot = store.TrySlotOfKey(key);
    if (logical % 3 == 1) {
      ASSERT_TRUE(slot.has_value()) << key;
      EXPECT_EQ(*slot, logical / 3) << "implicit local index preserved";
      owned_seen++;
    } else {
      EXPECT_FALSE(slot.has_value()) << key;
    }
  }
  EXPECT_GT(owned_seen, 1000);
}

TEST(ShardedStoreExplicitTest, AttachAndDetachKeepSlotIndicesStable) {
  ShardedStore store = ExplicitStore({1, 4, 7}, 3);
  // Attach logical shard 0 (migrating in from slot-0's server).
  size_t staged = store.AttachShard(0);
  EXPECT_EQ(staged, 3u) << "appended after existing slots";
  EXPECT_EQ(store.AttachShard(0), 3u) << "idempotent";
  EXPECT_EQ(store.LogicalTagOfSlot(3), 0u);

  Key mine = KeyInShard(0, 9);
  EXPECT_TRUE(store.OwnsKey(mine));
  EXPECT_TRUE(store.Apply(Write(mine, 10)));
  EXPECT_EQ(store.shard(3).VersionCount(), 1u);

  // Detach logical 4: its slot empties but indices do not shift.
  Key theirs = KeyInShard(4, 9);
  ASSERT_TRUE(store.Apply(Write(theirs, 11)));
  store.DetachShard(4);
  EXPECT_FALSE(store.OwnsKey(theirs));
  EXPECT_EQ(store.LogicalTagOfSlot(1), ShardedStore::kNoShard);
  EXPECT_EQ(store.shard(1).VersionCount(), 0u);
  EXPECT_EQ(store.LogicalTagOfSlot(2), 7u) << "slot 2 still hosts logical 7";
  EXPECT_TRUE(store.OwnsKey(mine)) << "attached shard unaffected";
  EXPECT_EQ(store.shard_count(), 4u);
}

TEST(ShardedStoreExplicitTest, ImplicitModeOwnsEveryKey) {
  ShardedStore::Options opts;
  opts.shards = 4;
  opts.stride = 2;
  ShardedStore store(opts);
  EXPECT_FALSE(store.explicit_placement());
  Rng rng(9);
  for (int i = 0; i < 1000; i++) {
    Key key = "k" + std::to_string(rng.NextUint64());
    EXPECT_TRUE(store.OwnsKey(key));
    EXPECT_EQ(store.ShardIndexOf(key),
              (Fnv1a64(key.data(), key.size()) % 8) / 2);
  }
}

}  // namespace
}  // namespace hat::cluster
