// Direct unit tests for server::AntiEntropyEngine, constructed without a
// ReplicaServer: outgoing messages are captured by the SendFn, incoming
// records by the InstallFn.

#include "hat/server/anti_entropy_engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "tests/test_util.h"

namespace hat::server {
namespace {

struct Sent {
  net::NodeId to;
  net::Message msg;
};

class AntiEntropyTest : public ::testing::Test {
 protected:
  static constexpr net::NodeId kSelf = 1;
  static constexpr net::NodeId kPeer = 2;

  void MakeEngine(AntiEntropyEngine::Options opts = {}) {
    engine_ = std::make_unique<AntiEntropyEngine>(
        sim_, kSelf, &partitioner_, good_, opts,
        [this](net::NodeId to, net::Message m) {
          sent_.push_back(Sent{to, std::move(m)});
        },
        [this](const WriteRecord& w, net::PutMode, net::NodeId) {
          installed_.push_back(w);
        });
  }

  WriteRecord MakeWrite(const Key& key, uint64_t logical) {
    WriteRecord w;
    w.key = key;
    w.value = "v";
    w.ts = {logical, 7};
    return w;
  }

  std::vector<const net::AntiEntropyBatch*> SentBatches() {
    std::vector<const net::AntiEntropyBatch*> out;
    for (const auto& s : sent_) {
      if (const auto* b = std::get_if<net::AntiEntropyBatch>(&s.msg)) {
        out.push_back(b);
      }
    }
    return out;
  }

  sim::Simulation sim_{1};
  FixedPartitioner partitioner_{{kSelf, kPeer, 3}};
  version::VersionedStore good_;
  std::unique_ptr<AntiEntropyEngine> engine_;
  std::vector<Sent> sent_;
  std::vector<WriteRecord> installed_;
};

TEST_F(AntiEntropyTest, FlushBatchesRespectSizeCap) {
  AntiEntropyEngine::Options opts;
  opts.batch_max = 4;
  MakeEngine(opts);
  engine_->Start();
  for (uint64_t i = 0; i < 10; i++) {
    engine_->Enqueue(MakeWrite("k" + std::to_string(i), 10 + i),
                     net::PutMode::kEventual, /*except=*/0);
  }
  sim_.RunUntil(opts.flush_interval * 2);
  auto batches = SentBatches();
  // 10 writes, 2 peers, cap 4 -> 3 batches per peer.
  ASSERT_EQ(batches.size(), 6u);
  for (const auto* b : batches) EXPECT_LE(b->writes.size(), 4u);
  EXPECT_EQ(engine_->stats().records_out, 20u);
}

TEST_F(AntiEntropyTest, EnqueueSkipsSelfAndOrigin) {
  MakeEngine();
  engine_->Start();
  engine_->Enqueue(MakeWrite("k", 10), net::PutMode::kEventual,
                   /*except=*/kPeer);
  sim_.RunUntil(100 * sim::kMillisecond);
  for (const auto& s : sent_) {
    EXPECT_NE(s.to, kSelf);
    EXPECT_NE(s.to, kPeer) << "origin must not receive its own write back";
  }
  EXPECT_EQ(SentBatches().size(), 1u);  // only node 3
}

TEST_F(AntiEntropyTest, ModeChangesSplitBatches) {
  MakeEngine();
  engine_->Start();
  engine_->Enqueue(MakeWrite("a", 1), net::PutMode::kEventual, 0);
  engine_->Enqueue(MakeWrite("b", 2), net::PutMode::kMav, 0);
  engine_->Enqueue(MakeWrite("c", 3), net::PutMode::kEventual, 0);
  sim_.RunUntil(100 * sim::kMillisecond);
  auto batches = SentBatches();
  ASSERT_EQ(batches.size(), 6u);  // 3 mode runs x 2 peers
  for (const auto* b : batches) EXPECT_EQ(b->writes.size(), 1u);
}

TEST_F(AntiEntropyTest, DuplicateBatchesInstallOnce) {
  MakeEngine();
  net::AntiEntropyBatch batch;
  batch.batch_id = 42;
  batch.writes.push_back(MakeWrite("k", 10));
  engine_->HandleBatch(batch, kPeer);
  engine_->HandleBatch(batch, kPeer);  // retransmit
  EXPECT_EQ(installed_.size(), 1u);
  EXPECT_EQ(engine_->stats().batches_in, 2u);
  EXPECT_EQ(engine_->stats().records_in, 1u);
  // Both deliveries are acked so the sender stops retransmitting.
  size_t acks = 0;
  for (const auto& s : sent_) {
    if (std::holds_alternative<net::AntiEntropyAck>(s.msg)) acks++;
  }
  EXPECT_EQ(acks, 2u);
}

TEST_F(AntiEntropyTest, UnackedBatchesRetransmitWithExponentialBackoff) {
  AntiEntropyEngine::Options opts;
  opts.flush_interval = 1 * sim::kMillisecond;
  opts.retry_interval = 100 * sim::kMillisecond;
  MakeEngine(opts);
  engine_->Start();
  engine_->Enqueue(MakeWrite("k", 10), net::PutMode::kEventual, 3);
  // Never ack. Transmissions: t~1ms (initial), then backoff 100ms, 200ms,
  // 400ms... — by 800ms we expect exactly 1 + 3 sends to kPeer.
  sim_.RunUntil(790 * sim::kMillisecond);
  EXPECT_EQ(SentBatches().size(), 4u);
  // An ack stops the retransmissions entirely.
  const auto* last = SentBatches().back();
  engine_->HandleAck(net::AntiEntropyAck{last->batch_id});
  size_t before = SentBatches().size();
  sim_.RunUntil(5 * sim::kSecond);
  EXPECT_EQ(SentBatches().size(), before);
}

TEST_F(AntiEntropyTest, DigestAnswersOnlyMissingVersions) {
  MakeEngine();
  WriteRecord shared = MakeWrite("a", 10);
  WriteRecord newer = MakeWrite("b", 20);
  good_.Apply(shared);
  good_.Apply(newer);
  // Peer advertises: same version of "a", older version of "b".
  net::DigestRequest req;
  req.latest = {{"a", {10, 7}}, {"b", {5, 7}}};
  req.reply_allowed = true;
  engine_->HandleDigest(req, kPeer);
  auto batches = SentBatches();
  ASSERT_EQ(batches.size(), 1u);
  ASSERT_EQ(batches[0]->writes.size(), 1u);
  EXPECT_EQ(batches[0]->writes[0].key, "b");
  EXPECT_EQ(engine_->stats().records_out, 1u);
}

TEST_F(AntiEntropyTest, DigestReverseRoundWhenInitiatorHasMore) {
  MakeEngine();
  good_.Apply(MakeWrite("a", 10));
  // Peer advertises a key we lack entirely: we respond with our own digest
  // (reply_allowed=false) so it pushes the difference back — one round only.
  net::DigestRequest req;
  req.latest = {{"z", {30, 7}}};
  req.reply_allowed = true;
  engine_->HandleDigest(req, kPeer);
  size_t digests = 0;
  for (const auto& s : sent_) {
    if (const auto* d = std::get_if<net::DigestRequest>(&s.msg)) {
      EXPECT_FALSE(d->reply_allowed);
      EXPECT_EQ(s.to, kPeer);
      digests++;
    }
  }
  EXPECT_EQ(digests, 1u);
}

TEST_F(AntiEntropyTest, DigestSyncTickTargetsAPeerReplica) {
  AntiEntropyEngine::Options opts;
  opts.digest_sync_interval = 50 * sim::kMillisecond;
  MakeEngine(opts);
  engine_->Start();
  good_.Apply(MakeWrite("k", 10));
  sim_.RunUntil(sim::kSecond);
  size_t digests = 0;
  for (const auto& s : sent_) {
    if (std::holds_alternative<net::DigestRequest>(s.msg)) {
      EXPECT_NE(s.to, kSelf);
      digests++;
    }
  }
  EXPECT_GT(digests, 0u);
}

TEST_F(AntiEntropyTest, DisabledPushNeverFlushes) {
  AntiEntropyEngine::Options opts;
  opts.push_enabled = false;
  MakeEngine(opts);
  engine_->Start();
  engine_->Enqueue(MakeWrite("k", 10), net::PutMode::kEventual, 0);
  sim_.RunUntil(sim::kSecond);
  EXPECT_TRUE(SentBatches().empty());
}

TEST_F(AntiEntropyTest, BucketedTickSendsHashesNotEntries) {
  AntiEntropyEngine::Options opts;
  opts.digest_sync_interval = 50 * sim::kMillisecond;
  opts.bucketed_digest = true;
  MakeEngine(opts);
  engine_->Start();
  good_.Apply(MakeWrite("k", 10));
  sim_.RunUntil(200 * sim::kMillisecond);
  size_t bucket_digests = 0;
  for (const auto& s : sent_) {
    EXPECT_FALSE(std::holds_alternative<net::DigestRequest>(s.msg))
        << "bucketed ticks must not ship per-key digests";
    if (const auto* bd = std::get_if<net::BucketDigest>(&s.msg)) {
      EXPECT_EQ(bd->hashes.size(), version::VersionedStore::kDigestBuckets);
      bucket_digests++;
    }
  }
  EXPECT_GT(bucket_digests, 0u);
  EXPECT_GT(engine_->stats().digest_ticks, 0u);
  EXPECT_EQ(engine_->stats().digest_entries_out, 0u);
}

TEST_F(AntiEntropyTest, MatchingBucketHashesEndTheProtocol) {
  MakeEngine();
  good_.Apply(MakeWrite("k", 10));
  // A peer with identical state sends identical hashes: no round 2 at all.
  engine_->HandleBucketDigest(net::BucketDigest{good_.BucketHashes()}, kPeer);
  EXPECT_TRUE(sent_.empty());
}

TEST_F(AntiEntropyTest, BucketDigestRepliesScopedToMismatchedBuckets) {
  MakeEngine();
  good_.Apply(MakeWrite("a", 10));
  good_.Apply(MakeWrite("b", 20));
  // Peer state: missing "b" but otherwise identical.
  version::VersionedStore peer;
  peer.Apply(MakeWrite("a", 10));
  engine_->HandleBucketDigest(net::BucketDigest{peer.BucketHashes()}, kPeer);
  ASSERT_EQ(sent_.size(), 1u);
  const auto* req = std::get_if<net::DigestRequest>(&sent_[0].msg);
  ASSERT_NE(req, nullptr);
  EXPECT_TRUE(req->reply_allowed);
  ASSERT_FALSE(req->buckets.empty());
  size_t b_bucket = version::VersionedStore::DigestBucketOf("b");
  bool covers_b = false;
  for (uint32_t b : req->buckets) {
    if (b == b_bucket) covers_b = true;
  }
  EXPECT_TRUE(covers_b);
  // Entries are our keys in the mismatched buckets only — and each entry
  // must belong to an advertised bucket.
  for (const auto& [k, ts] : req->latest) {
    bool in_scope = false;
    for (uint32_t b : req->buckets) {
      if (version::VersionedStore::DigestBucketOf(k) == b) in_scope = true;
    }
    EXPECT_TRUE(in_scope) << k;
  }
}

TEST_F(AntiEntropyTest, ScopedDigestBackfillsOnlyThoseBuckets) {
  MakeEngine();
  good_.Apply(MakeWrite("a", 10));
  good_.Apply(MakeWrite("b", 20));
  // Round-2 request scoped to b's bucket from a peer that has nothing there.
  net::DigestRequest req;
  req.buckets = {
      static_cast<uint32_t>(version::VersionedStore::DigestBucketOf("b"))};
  engine_->HandleDigest(req, kPeer);
  auto batches = SentBatches();
  size_t shipped = 0;
  for (const auto* batch : batches) {
    for (const auto& w : batch->writes) {
      EXPECT_EQ(version::VersionedStore::DigestBucketOf(w.key),
                version::VersionedStore::DigestBucketOf("b"));
      shipped++;
    }
  }
  EXPECT_GE(shipped, 1u);
}

TEST_F(AntiEntropyTest, BucketedSyncTransmitsDiffNotDataset) {
  // The acceptance bar for the bucketed protocol: a sync over a 100k-key
  // store with a 50-write diff must ship asymptotically fewer digest
  // entries than the flat all-keys digest, while still repairing the diff.
  constexpr size_t kKeys = 100000;
  constexpr size_t kDiff = 50;
  MakeEngine();
  version::VersionedStore peer;  // the out-of-date replica
  for (size_t i = 0; i < kKeys; i++) {
    auto w = MakeWrite("key" + std::to_string(i), 10);
    good_.Apply(w);
    peer.Apply(w);
  }
  for (size_t i = 0; i < kDiff; i++) {
    good_.Apply(MakeWrite("key" + std::to_string(i * 1999), 77));
  }

  // Round 1: the peer's hashes arrive; we answer with scoped digests.
  engine_->HandleBucketDigest(net::BucketDigest{peer.BucketHashes()}, kPeer);
  ASSERT_EQ(sent_.size(), 1u);
  const auto& scoped = std::get<net::DigestRequest>(sent_[0].msg);
  EXPECT_EQ(engine_->stats().digest_entries_out, scoped.latest.size());
  // Flat protocol ships one entry per key; bucketed ships only the
  // mismatched buckets' populations (~ diff x keys-per-bucket).
  EXPECT_LE(scoped.latest.size(), kKeys / 10);
  EXPECT_LT(net::WireBytes(net::Message{scoped}) +
                net::WireBytes(net::Message{net::BucketDigest{
                    peer.BucketHashes()}}),
            net::WireBytes(net::Message{net::DigestRequest{good_.Digest()}}));

  // Round 2 (as the peer's engine would run it): feed the scoped digest to
  // an engine owning the peer store; it must back-fill exactly the diff.
  std::vector<Sent> peer_sent;
  AntiEntropyEngine peer_engine(
      sim_, kPeer, &partitioner_, peer, AntiEntropyEngine::Options{},
      [&peer_sent](net::NodeId to, net::Message m) {
        peer_sent.push_back(Sent{to, std::move(m)});
      },
      [&peer](const WriteRecord& w, net::PutMode, net::NodeId) {
        peer.Apply(w);
      });
  // The scoped request carries OUR entries; the peer answers with what we
  // are missing (nothing) and, seeing it lacks data, sends its own scoped
  // digest back — which we answer with the 50 records.
  peer_engine.HandleDigest(scoped, kSelf);
  const net::DigestRequest* reverse = nullptr;
  for (const auto& s : peer_sent) {
    ASSERT_FALSE(std::holds_alternative<net::AntiEntropyBatch>(s.msg))
        << "peer has nothing we lack; no records should flow to us";
    if (const auto* d = std::get_if<net::DigestRequest>(&s.msg)) reverse = d;
  }
  ASSERT_NE(reverse, nullptr);
  EXPECT_FALSE(reverse->reply_allowed);
  engine_->HandleDigest(*reverse, kPeer);
  size_t repaired = 0;
  for (const auto* batch : SentBatches()) repaired += batch->writes.size();
  EXPECT_EQ(repaired, kDiff);
  EXPECT_EQ(engine_->stats().records_out, kDiff);
  for (const auto& s : sent_) {
    if (const auto* batch = std::get_if<net::AntiEntropyBatch>(&s.msg)) {
      for (const auto& w : batch->writes) peer.Apply(w);
    }
  }
  EXPECT_EQ(peer.VersionCount(), good_.VersionCount());
  EXPECT_EQ(peer.BucketHashes(), good_.BucketHashes());
}

TEST_F(AntiEntropyTest, DigestRepliesCappedByBytes) {
  AntiEntropyEngine::Options opts;
  opts.batch_max = 1000;           // count cap out of the way
  opts.batch_max_bytes = 4 * 1024; // bytes cap drives the splits
  MakeEngine(opts);
  for (int i = 0; i < 16; i++) {
    WriteRecord w = MakeWrite("big" + std::to_string(i), 10);
    w.value.assign(1024, 'x');
    good_.Apply(w);
  }
  net::DigestRequest req;  // empty: the peer has nothing
  engine_->HandleDigest(req, kPeer);
  auto batches = SentBatches();
  ASSERT_GE(batches.size(), 4u);
  size_t total = 0;
  for (const auto* batch : batches) {
    EXPECT_LE(net::WireBytes(net::Message{*batch}),
              opts.batch_max_bytes + 2048)  // one record may overshoot
        << "reply batches must respect the byte cap";
    total += batch->writes.size();
  }
  EXPECT_EQ(total, 16u);
}

TEST_F(AntiEntropyTest, ClearDropsOutboxesAndInflight) {
  MakeEngine();
  engine_->Start();
  engine_->Enqueue(MakeWrite("k", 10), net::PutMode::kEventual, 0);
  engine_->Clear();  // crash before the first flush
  sim_.RunUntil(sim::kSecond);
  EXPECT_TRUE(SentBatches().empty());
}

}  // namespace
}  // namespace hat::server
