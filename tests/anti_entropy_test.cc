// Direct unit tests for server::AntiEntropyEngine, constructed without a
// ReplicaServer: outgoing messages are captured by the SendFn, incoming
// records by the InstallFn.

#include "hat/server/anti_entropy_engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "tests/test_util.h"

namespace hat::server {
namespace {

struct Sent {
  net::NodeId to;
  net::Message msg;
};

class AntiEntropyTest : public ::testing::Test {
 protected:
  static constexpr net::NodeId kSelf = 1;
  static constexpr net::NodeId kPeer = 2;

  void MakeEngine(AntiEntropyEngine::Options opts = {}) {
    engine_ = std::make_unique<AntiEntropyEngine>(
        sim_, kSelf, &partitioner_, good_, opts,
        [this](net::NodeId to, net::Message m) {
          sent_.push_back(Sent{to, std::move(m)});
        },
        [this](const WriteRecord& w, net::PutMode) { installed_.push_back(w); });
  }

  WriteRecord MakeWrite(const Key& key, uint64_t logical) {
    WriteRecord w;
    w.key = key;
    w.value = "v";
    w.ts = {logical, 7};
    return w;
  }

  std::vector<const net::AntiEntropyBatch*> SentBatches() {
    std::vector<const net::AntiEntropyBatch*> out;
    for (const auto& s : sent_) {
      if (const auto* b = std::get_if<net::AntiEntropyBatch>(&s.msg)) {
        out.push_back(b);
      }
    }
    return out;
  }

  sim::Simulation sim_{1};
  FixedPartitioner partitioner_{{kSelf, kPeer, 3}};
  version::VersionedStore good_;
  std::unique_ptr<AntiEntropyEngine> engine_;
  std::vector<Sent> sent_;
  std::vector<WriteRecord> installed_;
};

TEST_F(AntiEntropyTest, FlushBatchesRespectSizeCap) {
  AntiEntropyEngine::Options opts;
  opts.batch_max = 4;
  MakeEngine(opts);
  engine_->Start();
  for (uint64_t i = 0; i < 10; i++) {
    engine_->Enqueue(MakeWrite("k" + std::to_string(i), 10 + i),
                     net::PutMode::kEventual, /*except=*/0);
  }
  sim_.RunUntil(opts.flush_interval * 2);
  auto batches = SentBatches();
  // 10 writes, 2 peers, cap 4 -> 3 batches per peer.
  ASSERT_EQ(batches.size(), 6u);
  for (const auto* b : batches) EXPECT_LE(b->writes.size(), 4u);
  EXPECT_EQ(engine_->stats().records_out, 20u);
}

TEST_F(AntiEntropyTest, EnqueueSkipsSelfAndOrigin) {
  MakeEngine();
  engine_->Start();
  engine_->Enqueue(MakeWrite("k", 10), net::PutMode::kEventual,
                   /*except=*/kPeer);
  sim_.RunUntil(100 * sim::kMillisecond);
  for (const auto& s : sent_) {
    EXPECT_NE(s.to, kSelf);
    EXPECT_NE(s.to, kPeer) << "origin must not receive its own write back";
  }
  EXPECT_EQ(SentBatches().size(), 1u);  // only node 3
}

TEST_F(AntiEntropyTest, ModeChangesSplitBatches) {
  MakeEngine();
  engine_->Start();
  engine_->Enqueue(MakeWrite("a", 1), net::PutMode::kEventual, 0);
  engine_->Enqueue(MakeWrite("b", 2), net::PutMode::kMav, 0);
  engine_->Enqueue(MakeWrite("c", 3), net::PutMode::kEventual, 0);
  sim_.RunUntil(100 * sim::kMillisecond);
  auto batches = SentBatches();
  ASSERT_EQ(batches.size(), 6u);  // 3 mode runs x 2 peers
  for (const auto* b : batches) EXPECT_EQ(b->writes.size(), 1u);
}

TEST_F(AntiEntropyTest, DuplicateBatchesInstallOnce) {
  MakeEngine();
  net::AntiEntropyBatch batch;
  batch.batch_id = 42;
  batch.writes.push_back(MakeWrite("k", 10));
  engine_->HandleBatch(batch, kPeer);
  engine_->HandleBatch(batch, kPeer);  // retransmit
  EXPECT_EQ(installed_.size(), 1u);
  EXPECT_EQ(engine_->stats().batches_in, 2u);
  EXPECT_EQ(engine_->stats().records_in, 1u);
  // Both deliveries are acked so the sender stops retransmitting.
  size_t acks = 0;
  for (const auto& s : sent_) {
    if (std::holds_alternative<net::AntiEntropyAck>(s.msg)) acks++;
  }
  EXPECT_EQ(acks, 2u);
}

TEST_F(AntiEntropyTest, UnackedBatchesRetransmitWithExponentialBackoff) {
  AntiEntropyEngine::Options opts;
  opts.flush_interval = 1 * sim::kMillisecond;
  opts.retry_interval = 100 * sim::kMillisecond;
  MakeEngine(opts);
  engine_->Start();
  engine_->Enqueue(MakeWrite("k", 10), net::PutMode::kEventual, 3);
  // Never ack. Transmissions: t~1ms (initial), then backoff 100ms, 200ms,
  // 400ms... — by 800ms we expect exactly 1 + 3 sends to kPeer.
  sim_.RunUntil(790 * sim::kMillisecond);
  EXPECT_EQ(SentBatches().size(), 4u);
  // An ack stops the retransmissions entirely.
  const auto* last = SentBatches().back();
  engine_->HandleAck(net::AntiEntropyAck{last->batch_id});
  size_t before = SentBatches().size();
  sim_.RunUntil(5 * sim::kSecond);
  EXPECT_EQ(SentBatches().size(), before);
}

TEST_F(AntiEntropyTest, DigestAnswersOnlyMissingVersions) {
  MakeEngine();
  WriteRecord shared = MakeWrite("a", 10);
  WriteRecord newer = MakeWrite("b", 20);
  good_.Apply(shared);
  good_.Apply(newer);
  // Peer advertises: same version of "a", older version of "b".
  net::DigestRequest req;
  req.latest = {{"a", {10, 7}}, {"b", {5, 7}}};
  req.reply_allowed = true;
  engine_->HandleDigest(req, kPeer);
  auto batches = SentBatches();
  ASSERT_EQ(batches.size(), 1u);
  ASSERT_EQ(batches[0]->writes.size(), 1u);
  EXPECT_EQ(batches[0]->writes[0].key, "b");
  EXPECT_EQ(engine_->stats().records_out, 1u);
}

TEST_F(AntiEntropyTest, DigestReverseRoundWhenInitiatorHasMore) {
  MakeEngine();
  good_.Apply(MakeWrite("a", 10));
  // Peer advertises a key we lack entirely: we respond with our own digest
  // (reply_allowed=false) so it pushes the difference back — one round only.
  net::DigestRequest req;
  req.latest = {{"z", {30, 7}}};
  req.reply_allowed = true;
  engine_->HandleDigest(req, kPeer);
  size_t digests = 0;
  for (const auto& s : sent_) {
    if (const auto* d = std::get_if<net::DigestRequest>(&s.msg)) {
      EXPECT_FALSE(d->reply_allowed);
      EXPECT_EQ(s.to, kPeer);
      digests++;
    }
  }
  EXPECT_EQ(digests, 1u);
}

TEST_F(AntiEntropyTest, DigestSyncTickTargetsAPeerReplica) {
  AntiEntropyEngine::Options opts;
  opts.digest_sync_interval = 50 * sim::kMillisecond;
  MakeEngine(opts);
  engine_->Start();
  good_.Apply(MakeWrite("k", 10));
  sim_.RunUntil(sim::kSecond);
  size_t digests = 0;
  for (const auto& s : sent_) {
    if (std::holds_alternative<net::DigestRequest>(s.msg)) {
      EXPECT_NE(s.to, kSelf);
      digests++;
    }
  }
  EXPECT_GT(digests, 0u);
}

TEST_F(AntiEntropyTest, ClearDropsOutboxesAndInflight) {
  MakeEngine();
  engine_->Start();
  engine_->Enqueue(MakeWrite("k", 10), net::PutMode::kEventual, 0);
  engine_->Clear();  // crash before the first flush
  sim_.RunUntil(sim::kSecond);
  EXPECT_TRUE(SentBatches().empty());
}

}  // namespace
}  // namespace hat::server
