// Direct unit tests for server::AntiEntropyEngine, constructed without a
// ReplicaServer: outgoing messages are captured by the SendFn, incoming
// records by the InstallFn.

#include "hat/server/anti_entropy_engine.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "tests/test_util.h"

namespace hat::server {
namespace {

struct Sent {
  net::NodeId to;
  net::Message msg;
};

class AntiEntropyTest : public ::testing::Test {
 protected:
  static constexpr net::NodeId kSelf = 1;
  static constexpr net::NodeId kPeer = 2;

  void MakeEngine(AntiEntropyEngine::Options opts = {}) {
    engine_ = std::make_unique<AntiEntropyEngine>(
        sim_, kSelf, &partitioner_, good_, opts,
        [this](net::NodeId to, net::Message m, obs::TraceContext) {
          sent_.push_back(Sent{to, std::move(m)});
        },
        [this](const WriteRecord& w, net::PutMode, net::NodeId, obs::TraceContext) {
          installed_.push_back(w);
        });
  }

  WriteRecord MakeWrite(const Key& key, uint64_t logical) {
    WriteRecord w;
    w.key = key;
    w.value = "v";
    w.ts = {logical, 7};
    return w;
  }

  std::vector<const net::AntiEntropyBatch*> SentBatches() {
    std::vector<const net::AntiEntropyBatch*> out;
    for (const auto& s : sent_) {
      if (const auto* b = std::get_if<net::AntiEntropyBatch>(&s.msg)) {
        out.push_back(b);
      }
    }
    return out;
  }

  sim::Simulation sim_{1};
  FixedPartitioner partitioner_{{kSelf, kPeer, 3}};
  version::ShardedStore good_;  // one shard, default buckets
  std::unique_ptr<AntiEntropyEngine> engine_;
  std::vector<Sent> sent_;
  std::vector<WriteRecord> installed_;
};

TEST_F(AntiEntropyTest, FlushBatchesRespectSizeCap) {
  AntiEntropyEngine::Options opts;
  opts.batch_max = 4;
  MakeEngine(opts);
  engine_->Start();
  for (uint64_t i = 0; i < 10; i++) {
    engine_->Enqueue(MakeWrite("k" + std::to_string(i), 10 + i),
                     net::PutMode::kEventual, /*except=*/0);
  }
  sim_.RunUntil(opts.flush_interval * 2);
  auto batches = SentBatches();
  // 10 writes, 2 peers, cap 4 -> 3 batches per peer.
  ASSERT_EQ(batches.size(), 6u);
  for (const auto* b : batches) EXPECT_LE(b->writes.size(), 4u);
  EXPECT_EQ(engine_->stats().records_out, 20u);
}

TEST_F(AntiEntropyTest, EnqueueSkipsSelfAndOrigin) {
  MakeEngine();
  engine_->Start();
  engine_->Enqueue(MakeWrite("k", 10), net::PutMode::kEventual,
                   /*except=*/kPeer);
  sim_.RunUntil(100 * sim::kMillisecond);
  for (const auto& s : sent_) {
    EXPECT_NE(s.to, kSelf);
    EXPECT_NE(s.to, kPeer) << "origin must not receive its own write back";
  }
  EXPECT_EQ(SentBatches().size(), 1u);  // only node 3
}

TEST_F(AntiEntropyTest, ModeChangesSplitBatches) {
  MakeEngine();
  engine_->Start();
  engine_->Enqueue(MakeWrite("a", 1), net::PutMode::kEventual, 0);
  engine_->Enqueue(MakeWrite("b", 2), net::PutMode::kMav, 0);
  engine_->Enqueue(MakeWrite("c", 3), net::PutMode::kEventual, 0);
  sim_.RunUntil(100 * sim::kMillisecond);
  auto batches = SentBatches();
  ASSERT_EQ(batches.size(), 6u);  // 3 mode runs x 2 peers
  for (const auto* b : batches) EXPECT_EQ(b->writes.size(), 1u);
}

TEST_F(AntiEntropyTest, DuplicateBatchesInstallOnce) {
  MakeEngine();
  net::AntiEntropyBatch batch;
  batch.batch_id = 42;
  batch.writes.push_back(MakeWrite("k", 10));
  engine_->HandleBatch(batch, kPeer);
  engine_->HandleBatch(batch, kPeer);  // retransmit
  EXPECT_EQ(installed_.size(), 1u);
  EXPECT_EQ(engine_->stats().batches_in, 2u);
  EXPECT_EQ(engine_->stats().records_in, 1u);
  // Both deliveries are acked so the sender stops retransmitting.
  size_t acks = 0;
  for (const auto& s : sent_) {
    if (std::holds_alternative<net::AntiEntropyAck>(s.msg)) acks++;
  }
  EXPECT_EQ(acks, 2u);
}

TEST_F(AntiEntropyTest, UnackedBatchesRetransmitWithExponentialBackoff) {
  AntiEntropyEngine::Options opts;
  opts.flush_interval = 1 * sim::kMillisecond;
  opts.retry_interval = 100 * sim::kMillisecond;
  MakeEngine(opts);
  engine_->Start();
  engine_->Enqueue(MakeWrite("k", 10), net::PutMode::kEventual, 3);
  // Never ack. Transmissions: t~1ms (initial), then backoff 100ms, 200ms,
  // 400ms... — by 800ms we expect exactly 1 + 3 sends to kPeer.
  sim_.RunUntil(790 * sim::kMillisecond);
  EXPECT_EQ(SentBatches().size(), 4u);
  // An ack stops the retransmissions entirely.
  const auto* last = SentBatches().back();
  engine_->HandleAck(net::AntiEntropyAck{last->batch_id});
  size_t before = SentBatches().size();
  sim_.RunUntil(5 * sim::kSecond);
  EXPECT_EQ(SentBatches().size(), before);
}

TEST_F(AntiEntropyTest, DigestAnswersOnlyMissingVersions) {
  MakeEngine();
  WriteRecord shared = MakeWrite("a", 10);
  WriteRecord newer = MakeWrite("b", 20);
  good_.Apply(shared);
  good_.Apply(newer);
  // Peer advertises: same version of "a", older version of "b".
  net::DigestRequest req;
  req.latest = {{"a", {10, 7}}, {"b", {5, 7}}};
  req.reply_allowed = true;
  engine_->HandleDigest(req, kPeer);
  auto batches = SentBatches();
  ASSERT_EQ(batches.size(), 1u);
  ASSERT_EQ(batches[0]->writes.size(), 1u);
  EXPECT_EQ(batches[0]->writes[0].key, "b");
  EXPECT_EQ(engine_->stats().records_out, 1u);
}

TEST_F(AntiEntropyTest, DigestReverseRoundWhenInitiatorHasMore) {
  MakeEngine();
  good_.Apply(MakeWrite("a", 10));
  // Peer advertises a key we lack entirely: we respond with our own digest
  // (reply_allowed=false) so it pushes the difference back — one round only.
  net::DigestRequest req;
  req.latest = {{"z", {30, 7}}};
  req.reply_allowed = true;
  engine_->HandleDigest(req, kPeer);
  size_t digests = 0;
  for (const auto& s : sent_) {
    if (const auto* d = std::get_if<net::DigestRequest>(&s.msg)) {
      EXPECT_FALSE(d->reply_allowed);
      EXPECT_EQ(s.to, kPeer);
      digests++;
    }
  }
  EXPECT_EQ(digests, 1u);
}

TEST_F(AntiEntropyTest, DigestSyncTickTargetsAPeerReplica) {
  AntiEntropyEngine::Options opts;
  opts.digest_sync_interval = 50 * sim::kMillisecond;
  MakeEngine(opts);
  engine_->Start();
  good_.Apply(MakeWrite("k", 10));
  sim_.RunUntil(sim::kSecond);
  size_t digests = 0;
  for (const auto& s : sent_) {
    if (std::holds_alternative<net::DigestRequest>(s.msg)) {
      EXPECT_NE(s.to, kSelf);
      digests++;
    }
  }
  EXPECT_GT(digests, 0u);
}

TEST_F(AntiEntropyTest, DisabledPushNeverFlushes) {
  AntiEntropyEngine::Options opts;
  opts.push_enabled = false;
  MakeEngine(opts);
  engine_->Start();
  engine_->Enqueue(MakeWrite("k", 10), net::PutMode::kEventual, 0);
  sim_.RunUntil(sim::kSecond);
  EXPECT_TRUE(SentBatches().empty());
}

TEST_F(AntiEntropyTest, BucketedTickSendsShardHashesNotEntries) {
  AntiEntropyEngine::Options opts;
  opts.digest_sync_interval = 50 * sim::kMillisecond;
  opts.bucketed_digest = true;
  MakeEngine(opts);
  engine_->Start();
  good_.Apply(MakeWrite("k", 10));
  sim_.RunUntil(200 * sim::kMillisecond);
  size_t shard_digests = 0;
  for (const auto& s : sent_) {
    EXPECT_FALSE(std::holds_alternative<net::DigestRequest>(s.msg))
        << "bucketed ticks must not ship per-key digests";
    EXPECT_FALSE(std::holds_alternative<net::BucketDigest>(s.msg))
        << "round 0 ships shard summaries, not bucket hashes";
    if (const auto* sd = std::get_if<net::ShardDigest>(&s.msg)) {
      EXPECT_EQ(sd->hashes.size(), good_.shard_count());
      shard_digests++;
    }
  }
  EXPECT_GT(shard_digests, 0u);
  EXPECT_GT(engine_->stats().digest_ticks, 0u);
  EXPECT_EQ(engine_->stats().digest_entries_out, 0u);
}

TEST_F(AntiEntropyTest, MatchingShardHashesEndTheProtocol) {
  MakeEngine();
  good_.Apply(MakeWrite("k", 10));
  // A peer with identical state sends identical shard summaries: silence.
  engine_->HandleShardDigest(net::ShardDigest{good_.ShardHashes()}, kPeer);
  EXPECT_TRUE(sent_.empty());
}

TEST_F(AntiEntropyTest, MatchingBucketHashesEndTheProtocol) {
  MakeEngine();
  good_.Apply(MakeWrite("k", 10));
  // A peer with identical state sends identical hashes: no round 2 at all.
  engine_->HandleBucketDigest(
      net::BucketDigest{good_.shard(0).BucketHashes()}, kPeer);
  EXPECT_TRUE(sent_.empty());
}

TEST_F(AntiEntropyTest, MismatchedShardSummaryPullsItsBucketHashes) {
  MakeEngine();
  good_.Apply(MakeWrite("a", 10));
  version::ShardedStore peer;  // missing "a"
  engine_->HandleShardDigest(net::ShardDigest{peer.ShardHashes()}, kPeer);
  ASSERT_EQ(sent_.size(), 1u);
  const auto* bd = std::get_if<net::BucketDigest>(&sent_[0].msg);
  ASSERT_NE(bd, nullptr);
  EXPECT_EQ(bd->shard, 0u);
  EXPECT_EQ(bd->hashes, good_.shard(0).BucketHashes());
}

TEST_F(AntiEntropyTest, BucketDigestRepliesScopedToMismatchedBuckets) {
  MakeEngine();
  good_.Apply(MakeWrite("a", 10));
  good_.Apply(MakeWrite("b", 20));
  // Peer state: missing "b" but otherwise identical.
  version::ShardedStore peer;
  peer.Apply(MakeWrite("a", 10));
  engine_->HandleBucketDigest(
      net::BucketDigest{peer.shard(0).BucketHashes()}, kPeer);
  ASSERT_EQ(sent_.size(), 1u);
  const auto* req = std::get_if<net::DigestRequest>(&sent_[0].msg);
  ASSERT_NE(req, nullptr);
  EXPECT_TRUE(req->reply_allowed);
  ASSERT_FALSE(req->buckets.empty());
  size_t b_bucket = good_.shard(0).BucketOf("b");
  bool covers_b = false;
  for (uint32_t b : req->buckets) {
    if (b == b_bucket) covers_b = true;
  }
  EXPECT_TRUE(covers_b);
  // Entries are our keys in the mismatched buckets only — and each entry
  // must belong to an advertised bucket.
  for (const auto& [k, ts] : req->latest) {
    bool in_scope = false;
    for (uint32_t b : req->buckets) {
      if (good_.shard(0).BucketOf(k) == b) in_scope = true;
    }
    EXPECT_TRUE(in_scope) << k;
  }
}

TEST_F(AntiEntropyTest, ScopedDigestBackfillsOnlyThoseBuckets) {
  MakeEngine();
  good_.Apply(MakeWrite("a", 10));
  good_.Apply(MakeWrite("b", 20));
  // Bucket-scoped request for b's bucket from a peer that has nothing there.
  net::DigestRequest req;
  req.buckets = {static_cast<uint32_t>(good_.shard(0).BucketOf("b"))};
  engine_->HandleDigest(req, kPeer);
  auto batches = SentBatches();
  size_t shipped = 0;
  for (const auto* batch : batches) {
    for (const auto& w : batch->writes) {
      EXPECT_EQ(good_.shard(0).BucketOf(w.key), good_.shard(0).BucketOf("b"));
      shipped++;
    }
  }
  EXPECT_GE(shipped, 1u);
}

TEST_F(AntiEntropyTest, BucketedSyncTransmitsDiffNotDataset) {
  // The acceptance bar for the bucketed protocol: a sync over a 100k-key
  // store with a 50-write diff must ship asymptotically fewer digest
  // entries than the flat all-keys digest, while still repairing the diff.
  constexpr size_t kKeys = 100000;
  constexpr size_t kDiff = 50;
  MakeEngine();
  version::ShardedStore peer;  // the out-of-date replica
  for (size_t i = 0; i < kKeys; i++) {
    auto w = MakeWrite("key" + std::to_string(i), 10);
    good_.Apply(w);
    peer.Apply(w);
  }
  for (size_t i = 0; i < kDiff; i++) {
    good_.Apply(MakeWrite("key" + std::to_string(i * 1999), 77));
  }

  // Round 1: the peer's hashes arrive; we answer with scoped digests.
  engine_->HandleBucketDigest(
      net::BucketDigest{peer.shard(0).BucketHashes()}, kPeer);
  ASSERT_EQ(sent_.size(), 1u);
  const auto& scoped = std::get<net::DigestRequest>(sent_[0].msg);
  EXPECT_EQ(engine_->stats().digest_entries_out, scoped.latest.size());
  // Flat protocol ships one entry per key; bucketed ships only the
  // mismatched buckets' populations (~ diff x keys-per-bucket).
  EXPECT_LE(scoped.latest.size(), kKeys / 10);
  EXPECT_LT(net::WireBytes(net::Message{scoped}) +
                net::WireBytes(net::Message{net::BucketDigest{
                    peer.shard(0).BucketHashes()}}),
            net::WireBytes(net::Message{net::DigestRequest{good_.Digest()}}));

  // Round 2 (as the peer's engine would run it): feed the scoped digest to
  // an engine owning the peer store; it must back-fill exactly the diff.
  std::vector<Sent> peer_sent;
  AntiEntropyEngine peer_engine(
      sim_, kPeer, &partitioner_, peer, AntiEntropyEngine::Options{},
      [&peer_sent](net::NodeId to, net::Message m, obs::TraceContext) {
        peer_sent.push_back(Sent{to, std::move(m)});
      },
      [&peer](const WriteRecord& w, net::PutMode, net::NodeId, obs::TraceContext) {
        peer.Apply(w);
      });
  // The scoped request carries OUR entries; the peer answers with what we
  // are missing (nothing) and, seeing it lacks data, sends its own scoped
  // digest back — which we answer with the 50 records.
  peer_engine.HandleDigest(scoped, kSelf);
  const net::DigestRequest* reverse = nullptr;
  for (const auto& s : peer_sent) {
    ASSERT_FALSE(std::holds_alternative<net::AntiEntropyBatch>(s.msg))
        << "peer has nothing we lack; no records should flow to us";
    if (const auto* d = std::get_if<net::DigestRequest>(&s.msg)) reverse = d;
  }
  ASSERT_NE(reverse, nullptr);
  EXPECT_FALSE(reverse->reply_allowed);
  engine_->HandleDigest(*reverse, kPeer);
  size_t repaired = 0;
  for (const auto* batch : SentBatches()) repaired += batch->writes.size();
  EXPECT_EQ(repaired, kDiff);
  EXPECT_EQ(engine_->stats().records_out, kDiff);
  for (const auto& s : sent_) {
    if (const auto* batch = std::get_if<net::AntiEntropyBatch>(&s.msg)) {
      for (const auto& w : batch->writes) peer.Apply(w);
    }
  }
  EXPECT_EQ(peer.VersionCount(), good_.VersionCount());
  EXPECT_EQ(peer.shard(0).BucketHashes(), good_.shard(0).BucketHashes());
}

TEST(ShardedAntiEntropyTest, HotShardRepairShipsThatShardsHashesOnly) {
  // Acceptance bar for the sharded protocol: with shards_per_server > 1, a
  // digest-repair round for a diff confined to one shard must ship round-1
  // bucket hashes for that shard only — cold shards cost one 8-byte summary
  // each, never a bucket-hash vector or a key walk.
  constexpr size_t kShards = 8;
  constexpr size_t kBuckets = 64;
  constexpr size_t kKeys = 4000;
  sim::Simulation sim{1};
  FixedPartitioner partitioner{{1, 2}};
  version::ShardedStore::Options store_opts{kShards, kBuckets, 1};
  version::ShardedStore ours(store_opts);  // up to date
  version::ShardedStore peer(store_opts);  // stale replica
  for (size_t i = 0; i < kKeys; i++) {
    WriteRecord w;
    w.key = "key" + std::to_string(i);
    w.value = "v";
    w.ts = {10, 7};
    ours.Apply(w);
    peer.Apply(w);
  }
  // The diff: 10 newer writes, all landing in one (hot) shard.
  size_t hot = ours.ShardIndexOf("key0");
  size_t updated = 0;
  for (size_t i = 0; i < kKeys && updated < 10; i++) {
    Key key = "key" + std::to_string(i);
    if (ours.ShardIndexOf(key) != hot) continue;
    WriteRecord w;
    w.key = key;
    w.value = "newer";
    w.ts = {77, 7};
    ours.Apply(w);
    updated++;
  }
  ASSERT_EQ(updated, 10u);

  struct Sent {
    net::NodeId to;
    net::Message msg;
  };
  std::vector<Sent> ours_sent, peer_sent;
  AntiEntropyEngine ours_engine(
      sim, 1, &partitioner, ours, AntiEntropyEngine::Options{},
      [&ours_sent](net::NodeId to, net::Message m, obs::TraceContext) {
        ours_sent.push_back(Sent{to, std::move(m)});
      },
      [](const WriteRecord&, net::PutMode, net::NodeId, obs::TraceContext) {});
  AntiEntropyEngine peer_engine(
      sim, 2, &partitioner, peer, AntiEntropyEngine::Options{},
      [&peer_sent](net::NodeId to, net::Message m, obs::TraceContext) {
        peer_sent.push_back(Sent{to, std::move(m)});
      },
      [&peer](const WriteRecord& w, net::PutMode, net::NodeId, obs::TraceContext) {
        peer.Apply(w);
      });

  // Round 0 (as the peer's tick would run): peer's shard summaries reach us.
  ours_engine.HandleShardDigest(net::ShardDigest{peer.ShardHashes()}, 2);
  // Round 1: exactly one BucketDigest — the hot shard's — crosses the wire.
  ASSERT_EQ(ours_sent.size(), 1u);
  const auto* bd = std::get_if<net::BucketDigest>(&ours_sent[0].msg);
  ASSERT_NE(bd, nullptr);
  EXPECT_EQ(bd->shard, hot);
  EXPECT_EQ(bd->hashes.size(), kBuckets);
  // Cold shards never hash: total round-1 digest traffic is one shard's
  // bucket vector, not kShards of them.
  EXPECT_LT(ours_engine.stats().digest_bytes_out,
            (kShards * kBuckets * 8) / 2);
  EXPECT_EQ(ours_engine.stats().digest_entries_out, 0u);

  // Round 2: the peer advertises per-key digests for mismatched buckets of
  // the hot shard only.
  peer_engine.HandleBucketDigest(*bd, 1);
  ASSERT_EQ(peer_sent.size(), 1u);
  const auto* scoped = std::get_if<net::DigestRequest>(&peer_sent[0].msg);
  ASSERT_NE(scoped, nullptr);
  EXPECT_EQ(scoped->shard, hot);
  for (const auto& [k, ts] : scoped->latest) {
    EXPECT_EQ(peer.ShardIndexOf(k), hot) << k;
  }
  // Entries shipped ~ mismatched buckets' population, a sliver of the
  // keyspace (the flat protocol would pay kKeys entries).
  EXPECT_EQ(peer_engine.stats().digest_entries_out, scoped->latest.size());
  EXPECT_LT(scoped->latest.size(), kKeys / 4);

  // Round 3: we back-fill exactly the diff; the peer converges.
  ours_engine.HandleDigest(*scoped, 2);
  size_t repaired = 0;
  for (const auto& s : ours_sent) {
    if (const auto* batch = std::get_if<net::AntiEntropyBatch>(&s.msg)) {
      for (const auto& w : batch->writes) {
        peer.Apply(w);
        repaired++;
      }
    }
  }
  EXPECT_EQ(repaired, 10u);
  EXPECT_EQ(peer.ShardHashes(), ours.ShardHashes());
}

TEST_F(AntiEntropyTest, DigestRepliesCappedByBytes) {
  AntiEntropyEngine::Options opts;
  opts.batch_max = 1000;           // count cap out of the way
  opts.batch_max_bytes = 4 * 1024; // bytes cap drives the splits
  MakeEngine(opts);
  for (int i = 0; i < 16; i++) {
    WriteRecord w = MakeWrite("big" + std::to_string(i), 10);
    w.value.assign(1024, 'x');
    good_.Apply(w);
  }
  net::DigestRequest req;  // empty: the peer has nothing
  engine_->HandleDigest(req, kPeer);
  auto batches = SentBatches();
  ASSERT_GE(batches.size(), 4u);
  size_t total = 0;
  for (const auto* batch : batches) {
    EXPECT_LE(net::WireBytes(net::Message{*batch}),
              opts.batch_max_bytes + 2048)  // one record may overshoot
        << "reply batches must respect the byte cap";
    total += batch->writes.size();
  }
  EXPECT_EQ(total, 16u);
}

TEST_F(AntiEntropyTest, BatchIdCounterWrapStaysInOwnIdSpace) {
  AntiEntropyEngine::Options opts;
  opts.flush_interval = 1 * sim::kMillisecond;
  MakeEngine(opts);
  // Position the counter at the last value of its 40-bit field so the next
  // two flushes straddle the wrap.
  engine_->SetNextBatchIdForTest((uint64_t{1} << 40) - 1);
  engine_->Start();
  engine_->Enqueue(MakeWrite("k1", 10), net::PutMode::kEventual, /*except=*/3);
  sim_.RunUntil(5 * sim::kMillisecond);
  engine_->Enqueue(MakeWrite("k2", 11), net::PutMode::kEventual, /*except=*/3);
  sim_.RunUntil(10 * sim::kMillisecond);
  auto batches = SentBatches();
  ASSERT_EQ(batches.size(), 2u);
  // An unmasked increment past 2^40 would carry into the node-id bits and
  // forge an id in node kSelf+1's namespace (so receivers' dedupe sets could
  // silently swallow that node's fresh batches). The masked counter wraps
  // within our own field instead.
  EXPECT_EQ(batches[0]->batch_id >> 40, static_cast<uint64_t>(kSelf));
  EXPECT_EQ(batches[1]->batch_id >> 40, static_cast<uint64_t>(kSelf));
  EXPECT_NE(batches[0]->batch_id, batches[1]->batch_id);
  EXPECT_EQ(batches[1]->batch_id & ((uint64_t{1} << 40) - 1), 0u);
}

TEST_F(AntiEntropyTest, DedupeMemoryRotationsAreCountedAndKeepRecentIds) {
  MakeEngine();
  net::AntiEntropyBatch batch;
  for (uint64_t i = 0; i < 4096; i++) {
    batch.batch_id = (uint64_t{9} << 40) | i;
    engine_->HandleBatch(batch, kPeer);
  }
  EXPECT_EQ(engine_->stats().dedupe_rotations, 1u);
  EXPECT_EQ(engine_->stats().dupes_suppressed, 0u);
  // Recent ids survive the rotation into the previous generation: a
  // retransmit of the id that triggered it is still seen as a duplicate.
  batch.batch_id = (uint64_t{9} << 40) | 4095;
  engine_->HandleBatch(batch, kPeer);
  EXPECT_EQ(engine_->stats().dupes_suppressed, 1u);
}

TEST_F(AntiEntropyTest, UntaggedDefaultKeepsLegacySinglePeerOutbox) {
  // With shard_lane_batching off (default), batches carry no shard tag and
  // writes for any key share one outbox per peer — the pre-tagging wire
  // format and batch boundaries.
  AntiEntropyEngine::Options opts;
  opts.batch_max = 64;
  MakeEngine(opts);
  engine_->Start();
  for (int i = 0; i < 8; i++) {
    engine_->Enqueue(MakeWrite("k" + std::to_string(i), 10 + i),
                     net::PutMode::kEventual, /*except=*/3);
  }
  sim_.RunUntil(opts.flush_interval * 2);
  auto batches = SentBatches();
  ASSERT_EQ(batches.size(), 1u);  // one outbox, one flush, one peer
  EXPECT_EQ(batches[0]->shard, net::kNoShardTag);
  EXPECT_EQ(batches[0]->writes.size(), 8u);
}

TEST(ShardLaneBatchingTest, BatchesAreShardHomogeneousAndTagged) {
  constexpr size_t kShards = 4;
  sim::Simulation sim{1};
  FixedPartitioner partitioner{{1, 2}};
  version::ShardedStore good(version::ShardedStore::Options{kShards, 8, 1});
  std::vector<Sent> sent;
  AntiEntropyEngine::Options opts;
  opts.shard_lane_batching = true;
  AntiEntropyEngine engine(
      sim, 1, &partitioner, good, opts,
      [&sent](net::NodeId to, net::Message m, obs::TraceContext) {
        sent.push_back(Sent{to, std::move(m)});
      },
      [](const WriteRecord&, net::PutMode, net::NodeId, obs::TraceContext) {});
  engine.Start();
  for (int i = 0; i < 32; i++) {
    WriteRecord w;
    w.key = "key" + std::to_string(i);
    w.value = "v";
    w.ts = {static_cast<uint64_t>(10 + i), 7};
    engine.Enqueue(w, net::PutMode::kEventual, /*except=*/0);
  }
  sim.RunUntil(opts.flush_interval * 2);
  std::set<uint32_t> shards_seen;
  size_t batches = 0;
  for (const auto& s : sent) {
    const auto* b = std::get_if<net::AntiEntropyBatch>(&s.msg);
    if (b == nullptr) continue;
    batches++;
    ASSERT_NE(b->shard, net::kNoShardTag);
    shards_seen.insert(b->shard);
    for (const auto& w : b->writes) {
      EXPECT_EQ(good.LogicalShardOfKey(w.key), b->shard)
          << "batches must be shard-homogeneous";
    }
  }
  // 32 keys across 4 logical shards: per-(peer, shard) outboxes yield one
  // batch per populated shard, not one mixed batch per peer.
  EXPECT_GT(batches, 1u);
  EXPECT_GT(shards_seen.size(), 1u);
  EXPECT_EQ(engine.stats().batches_out, batches);
}

TEST(ShardLaneBatchingTest, DroppedTaggedBatchRetransmitsSameShardAndDedupes) {
  sim::Simulation sim{1};
  FixedPartitioner partitioner{{1, 2}};
  version::ShardedStore::Options store_opts{4, 8, 1};
  version::ShardedStore sender_store(store_opts);
  version::ShardedStore receiver_store(store_opts);
  AntiEntropyEngine::Options opts;
  opts.shard_lane_batching = true;
  opts.flush_interval = 1 * sim::kMillisecond;
  opts.retry_interval = 100 * sim::kMillisecond;
  std::vector<Sent> sent;
  AntiEntropyEngine sender(
      sim, 1, &partitioner, sender_store, opts,
      [&sent](net::NodeId to, net::Message m, obs::TraceContext) {
        sent.push_back(Sent{to, std::move(m)});
      },
      [](const WriteRecord&, net::PutMode, net::NodeId, obs::TraceContext) {});
  std::vector<WriteRecord> installed;
  AntiEntropyEngine receiver(
      sim, 2, &partitioner, receiver_store, opts,
      [](net::NodeId, net::Message, obs::TraceContext) {},  // acks dropped
      [&installed](const WriteRecord& w, net::PutMode, net::NodeId, obs::TraceContext) {
        installed.push_back(w);
      });
  sender.Start();
  WriteRecord w;
  w.key = "k";
  w.value = "v";
  w.ts = {10, 7};
  sender.Enqueue(w, net::PutMode::kEventual, /*except=*/0);
  // Initial transmission goes out (and is "dropped" — never acked) ...
  sim.RunUntil(10 * sim::kMillisecond);
  std::vector<const net::AntiEntropyBatch*> batches;
  for (const auto& s : sent) {
    if (const auto* b = std::get_if<net::AntiEntropyBatch>(&s.msg)) {
      batches.push_back(b);
    }
  }
  ASSERT_EQ(batches.size(), 1u);
  uint32_t tag = batches[0]->shard;
  ASSERT_NE(tag, net::kNoShardTag);
  // ... so the retry timer retransmits: same batch id, same shard tag —
  // the receiver charges the retry to the same executor lane.
  sim.RunUntil(250 * sim::kMillisecond);
  batches.clear();
  for (const auto& s : sent) {
    if (const auto* b = std::get_if<net::AntiEntropyBatch>(&s.msg)) {
      batches.push_back(b);
    }
  }
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(sender.stats().retransmits, 1u);
  EXPECT_EQ(batches[1]->batch_id, batches[0]->batch_id);
  EXPECT_EQ(batches[1]->shard, tag);
  // Both copies eventually arrive: the duplicate is suppressed, the record
  // installs exactly once.
  receiver.HandleBatch(*batches[0], 1);
  receiver.HandleBatch(*batches[1], 1);
  EXPECT_EQ(installed.size(), 1u);
  EXPECT_EQ(receiver.stats().dupes_suppressed, 1u);
}

TEST_F(AntiEntropyTest, ClearDropsOutboxesAndInflight) {
  MakeEngine();
  engine_->Start();
  engine_->Enqueue(MakeWrite("k", 10), net::PutMode::kEventual, 0);
  engine_->Clear();  // crash before the first flush
  sim_.RunUntil(sim::kSecond);
  EXPECT_TRUE(SentBatches().empty());
}

}  // namespace
}  // namespace hat::server
