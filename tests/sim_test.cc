// Unit tests for the discrete-event simulation core.

#include <gtest/gtest.h>

#include <vector>

#include "hat/sim/simulation.h"

namespace hat::sim {
namespace {

TEST(SimulationTest, ProcessesEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.At(30, [&] { order.push_back(3); });
  sim.At(10, [&] { order.push_back(1); });
  sim.At(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30u);
}

TEST(SimulationTest, EqualTimestampsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    sim.At(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; i++) EXPECT_EQ(order[i], i);
}

TEST(SimulationTest, AfterIsRelative) {
  Simulation sim;
  SimTime fired_at = 0;
  sim.At(100, [&] {
    // Scheduled from within an event: relative to current time.
  });
  sim.RunUntil(100);
  sim.After(50, [&] { fired_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(fired_at, 150u);
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) sim.After(10, recurse);
  };
  sim.After(10, recurse);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), 50u);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  EventId id = sim.At(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CancelTwiceIsNoop) {
  Simulation sim;
  EventId id = sim.At(10, [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(99999));
}

TEST(SimulationTest, RunUntilStopsAtLimit) {
  Simulation sim;
  int fired = 0;
  sim.At(10, [&] { fired++; });
  sim.At(20, [&] { fired++; });
  sim.At(30, [&] { fired++; });
  EXPECT_EQ(sim.RunUntil(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 20u);
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulationTest, RunUntilAdvancesClockToHorizon) {
  Simulation sim;
  sim.RunUntil(1000);
  EXPECT_EQ(sim.Now(), 1000u);
}

TEST(SimulationTest, StepProcessesExactlyOne) {
  Simulation sim;
  int fired = 0;
  sim.At(10, [&] { fired++; });
  sim.At(20, [&] { fired++; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulationTest, IdleReflectsLiveEvents) {
  Simulation sim;
  EXPECT_TRUE(sim.Idle());
  EventId id = sim.At(10, [] {});
  EXPECT_FALSE(sim.Idle());
  sim.Cancel(id);
  EXPECT_TRUE(sim.Idle());
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulation sim(seed);
    std::vector<uint64_t> values;
    for (int i = 0; i < 10; i++) {
      sim.After(sim.rng().NextBelow(100) + 1,
                [&values, &sim] { values.push_back(sim.Now()); });
    }
    sim.Run();
    return values;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(SimulationTest, EventCountTracked) {
  Simulation sim;
  for (int i = 0; i < 7; i++) sim.At(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

}  // namespace
}  // namespace hat::sim
