// Property-based verification of the paper's central claims (Table 3):
// for each isolation / session / mode configuration, run randomized
// concurrent workloads (with and without partitions) through the real
// client/server stack, record the Adya history, and assert that exactly the
// phenomena the configuration must prohibit are absent.
//
// These tests are the executable form of Section 5: "HAT-compliant levels
// prevent their defining anomalies while remaining available".

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hat/adya/phenomena.h"
#include "hat/adya/recorder.h"
#include "hat/client/txn_client.h"
#include "hat/cluster/deployment.h"
#include "hat/common/rng.h"

namespace hat {
namespace {

using client::ClientOptions;
using client::IsolationLevel;
using client::SystemMode;
using client::TxnClient;
using cluster::Deployment;
using cluster::DeploymentOptions;

/// Drives `clients` through random register transactions concurrently
/// (asynchronously interleaved on the simulator), optionally injecting a
/// cluster partition for the middle third of the run.
class RandomWorkload {
 public:
  struct Options {
    int num_clients = 4;
    int txns_per_client = 40;
    int num_keys = 8;
    int ops_per_txn = 4;
    double read_fraction = 0.5;
    bool inject_partition = false;
    uint64_t seed = 1;
  };

  RandomWorkload(Deployment& deployment, Options options,
                 ClientOptions client_options)
      : deployment_(deployment), options_(options), rng_(options.seed) {
    for (int i = 0; i < options.num_clients; i++) {
      ClientOptions copts = client_options;
      copts.home_cluster = i % deployment.NumClusters();
      // Keep timeouts short so partition runs terminate quickly.
      copts.op_timeout = 3 * sim::kSecond;
      copts.rpc_timeout = 500 * sim::kMillisecond;
      clients_.push_back(&deployment.AddClient(copts));
      clients_.back()->set_observer(&recorder_);
      rngs_.push_back(rng_.Fork(100 + i));
    }
  }

  adya::History Run() {
    auto& sim = deployment_.simulation();
    for (size_t i = 0; i < clients_.size(); i++) {
      remaining_.push_back(options_.txns_per_client);
      StartTxn(i);
    }
    if (options_.inject_partition && deployment_.NumClusters() >= 2) {
      sim.After(2 * sim::kSecond, [this]() {
        deployment_.PartitionClusters(0, 1);
      });
      sim.After(10 * sim::kSecond, [this]() { deployment_.Heal(); });
    }
    // Generous horizon; loops stop when every client finishes its quota.
    sim.RunUntil(sim.Now() + 600 * sim::kSecond);
    // Drain anti-entropy so later assertions about convergence hold.
    sim.RunUntil(sim.Now() + 5 * sim::kSecond);
    return recorder_.Finish();
  }

 private:
  Key KeyAt(int i) const { return "reg" + std::to_string(i); }

  void StartTxn(size_t c) {
    if (remaining_[c] == 0) return;
    remaining_[c]--;
    clients_[c]->Begin();
    RunOp(c, 0);
  }

  void RunOp(size_t c, int op) {
    TxnClient* client = clients_[c];
    if (op >= options_.ops_per_txn) {
      client->Commit([this, c](Status) { StartTxn(c); });
      return;
    }
    Key key = KeyAt(static_cast<int>(rngs_[c].NextBelow(options_.num_keys)));
    if (rngs_[c].NextDouble() < options_.read_fraction) {
      client->Read(key, [this, c, op](Status s, ReadVersion) {
        if (!s.ok()) {
          clients_[c]->Abort();
          StartTxn(c);
          return;
        }
        RunOp(c, op + 1);
      });
    } else {
      // Unique value per write: the version timestamp identifies it.
      client->Write(key, "v" + std::to_string(rngs_[c].NextUint64() % 1000));
      RunOp(c, op + 1);
    }
  }

  Deployment& deployment_;
  Options options_;
  Rng rng_;
  std::vector<TxnClient*> clients_;
  std::vector<Rng> rngs_;
  std::vector<int> remaining_;
  adya::HistoryRecorder recorder_;
};

struct PropertyCase {
  const char* name;
  IsolationLevel isolation;
  SystemMode mode;
  bool pram = false;   // MR+RYW+sticky
  bool wfr = false;
  bool predicate_cut = false;
};

class IsolationPropertyTest
    : public ::testing::TestWithParam<std::tuple<PropertyCase, bool, int>> {};

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<PropertyCase, bool, int>>&
        info) {
  const auto& [c, partition, seed] = info.param;
  std::string name = c.name;
  name += partition ? "_partitioned" : "_healthy";
  name += "_seed" + std::to_string(seed);
  return name;
}

TEST_P(IsolationPropertyTest, ProhibitedPhenomenaAbsent) {
  const auto& [config, partition, seed] = GetParam();
  // Non-HAT modes cannot make progress during a partition; skip that combo
  // (their unavailability is asserted in integration_test).
  if (partition && config.mode != SystemMode::kHat) GTEST_SKIP();

  sim::Simulation sim(static_cast<uint64_t>(seed) * 7919 + 13);
  auto dopts = DeploymentOptions::TwoRegions();
  dopts.server.durable = false;
  Deployment deployment(sim, dopts);

  ClientOptions copts;
  copts.isolation = config.isolation;
  copts.mode = config.mode;
  copts.predicate_cut = config.predicate_cut;
  if (config.pram) copts.EnablePram();
  if (config.wfr) copts.writes_follow_reads = true;

  RandomWorkload::Options wopts;
  wopts.seed = static_cast<uint64_t>(seed);
  wopts.inject_partition = partition;
  RandomWorkload workload(deployment, wopts, copts);
  adya::History history = workload.Run();
  ASSERT_GT(history.size(), 20u) << "workload made no progress";
  auto report = adya::Analyze(history);

  // Everything this repo builds keeps per-item writes totally ordered, so
  // G0 can never occur (Section 5.1.1).
  EXPECT_TRUE(report.ReadUncommitted()) << report.Summary();

  if (config.isolation >= IsolationLevel::kReadCommitted) {
    EXPECT_TRUE(report.ReadCommitted()) << report.Summary();
  }
  if (config.isolation >= IsolationLevel::kItemCut) {
    EXPECT_TRUE(report.ItemCut()) << report.Summary();
  }
  if (config.isolation >= IsolationLevel::kMonotonicAtomicView) {
    EXPECT_TRUE(report.MonotonicAtomicView()) << report.Summary();
  }
  if (config.pram) {
    EXPECT_TRUE(report.Pram()) << report.Summary();
  }
  if (config.pram && config.wfr) {
    EXPECT_TRUE(report.Causal()) << report.Summary();
  }
  if (config.mode == SystemMode::kLocking) {
    EXPECT_TRUE(report.Serializable()) << report.Summary();
    EXPECT_TRUE(report.SnapshotIsolation()) << report.Summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Taxonomy, IsolationPropertyTest,
    ::testing::Combine(
        ::testing::Values(
            PropertyCase{"RU", IsolationLevel::kReadUncommitted,
                         SystemMode::kHat},
            PropertyCase{"RC", IsolationLevel::kReadCommitted,
                         SystemMode::kHat},
            PropertyCase{"ICI", IsolationLevel::kItemCut, SystemMode::kHat},
            PropertyCase{"MAV", IsolationLevel::kMonotonicAtomicView,
                         SystemMode::kHat},
            PropertyCase{"PRAM", IsolationLevel::kReadCommitted,
                         SystemMode::kHat, /*pram=*/true},
            PropertyCase{"Causal", IsolationLevel::kMonotonicAtomicView,
                         SystemMode::kHat, /*pram=*/true, /*wfr=*/true},
            PropertyCase{"Master", IsolationLevel::kReadCommitted,
                         SystemMode::kMaster},
            PropertyCase{"Locking", IsolationLevel::kItemCut,
                         SystemMode::kLocking}),
        ::testing::Bool(),        // inject partition
        ::testing::Values(1, 2, 3)),
    CaseName);

// ---------------------------------------------------------------------------
// Negative properties: weak levels DO exhibit the anomalies stronger levels
// prevent (the taxonomy's separations are real, not vacuous).
// ---------------------------------------------------------------------------

TEST(IsolationSeparationTest, HatLevelsCannotPreventLostUpdate) {
  // Run an RMW-heavy workload at MAV (the strongest HAT level): Lost Update
  // must occur — Section 5.2.1's impossibility made empirical. Note the
  // *system* never loses convergence; the anomaly is semantic.
  sim::Simulation sim(1234);
  auto dopts = DeploymentOptions::TwoRegions();
  dopts.server.durable = false;
  Deployment deployment(sim, dopts);
  adya::HistoryRecorder recorder;

  ClientOptions copts;
  copts.isolation = IsolationLevel::kMonotonicAtomicView;
  std::vector<TxnClient*> clients;
  for (int i = 0; i < 4; i++) {
    ClientOptions opts = copts;
    opts.home_cluster = i % 2;
    clients.push_back(&deployment.AddClient(opts));
    clients.back()->set_observer(&recorder);
  }

  // Concurrent read-modify-write on one register.
  int remaining = 25;
  std::function<void(int)> loop = [&](int c) {
    if (remaining-- <= 0) return;
    TxnClient* client = clients[c];
    client->Begin();
    client->Read("counter", [&, c, client](Status s, ReadVersion rv) {
      if (!s.ok()) {
        client->Abort();
        loop(c);
        return;
      }
      client->Write("counter", rv.value + "+1");
      client->Commit([&, c](Status) { loop(c); });
    });
  };
  for (int c = 0; c < 4; c++) loop(c);
  sim.RunUntil(sim.Now() + 120 * sim::kSecond);

  auto report = adya::Analyze(recorder.Finish());
  EXPECT_TRUE(report.lost_update)
      << "concurrent RMWs on one key must exhibit Lost Update under HATs";
  EXPECT_TRUE(report.MonotonicAtomicView()) << report.Summary();
}

TEST(IsolationSeparationTest, ReadCommittedDoesNotGiveItemCut) {
  // Under RC (no cut), rereading a hot key while writers churn must
  // eventually observe two versions in one transaction (IMP).
  sim::Simulation sim(777);
  auto dopts = DeploymentOptions::SingleDatacenter();
  dopts.server.durable = false;
  Deployment deployment(sim, dopts);
  adya::HistoryRecorder recorder;

  ClientOptions reader_opts;
  reader_opts.isolation = IsolationLevel::kReadCommitted;
  TxnClient& reader = deployment.AddClient(reader_opts);
  reader.set_observer(&recorder);
  ClientOptions writer_opts;
  writer_opts.home_cluster = 1;
  TxnClient& writer = deployment.AddClient(writer_opts);

  int writes = 200;
  std::function<void()> write_loop = [&]() {
    if (writes-- <= 0) return;
    writer.Begin();
    writer.Write("hot", "w" + std::to_string(writes));
    writer.Commit([&](Status) { write_loop(); });
  };
  int reads = 60;
  std::function<void()> read_loop = [&]() {
    if (reads-- <= 0) return;
    reader.Begin();
    reader.Read("hot", [&](Status, ReadVersion) {
      // Linger so the writer can slip a new version in between rereads.
      sim.After(50 * sim::kMillisecond, [&]() {
        reader.Read("hot", [&](Status, ReadVersion) {
          reader.Commit([&](Status) { read_loop(); });
        });
      });
    });
  };
  write_loop();
  read_loop();
  sim.RunUntil(sim.Now() + 300 * sim::kSecond);

  auto report = adya::Analyze(recorder.Finish());
  EXPECT_TRUE(report.imp) << "RC rereads should be fuzzy";
}

TEST(IsolationSeparationTest, ReadCommittedDoesNotGiveMav) {
  // Multi-key atomic writes read under plain RC from another cluster must
  // eventually be observed half-applied (OTV / read skew).
  sim::Simulation sim(4242);
  auto dopts = DeploymentOptions::TwoRegions();
  dopts.server.durable = false;
  Deployment deployment(sim, dopts);
  adya::HistoryRecorder recorder;

  ClientOptions writer_opts;  // RC writer: no sibling metadata
  writer_opts.home_cluster = 0;
  TxnClient& writer = deployment.AddClient(writer_opts);
  writer.set_observer(&recorder);
  ClientOptions reader_opts;
  reader_opts.home_cluster = 1;
  TxnClient& reader = deployment.AddClient(reader_opts);
  reader.set_observer(&recorder);

  int rounds = 150;
  std::function<void()> write_loop = [&]() {
    if (rounds-- <= 0) return;
    writer.Begin();
    std::string v = std::to_string(rounds);
    writer.Write("pair_a", v);
    writer.Write("pair_b", v);
    writer.Commit([&](Status) { write_loop(); });
  };
  int reads = 150;
  std::function<void()> read_loop = [&]() {
    if (reads-- <= 0) return;
    reader.Begin();
    reader.Read("pair_a", [&](Status, ReadVersion) {
      reader.Read("pair_b", [&](Status, ReadVersion) {
        reader.Commit([&](Status) { read_loop(); });
      });
    });
  };
  write_loop();
  read_loop();
  sim.RunUntil(sim.Now() + 300 * sim::kSecond);

  auto report = adya::Analyze(recorder.Finish());
  EXPECT_TRUE(report.otv)
      << "RC readers must observe atomicity violations that MAV would hide";
}

// ---------------------------------------------------------------------------
// Convergence: replicas agree after quiescence, regardless of partitions.
// ---------------------------------------------------------------------------

class ConvergenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ConvergenceTest, ReplicasConvergeAfterHeal) {
  sim::Simulation sim(static_cast<uint64_t>(GetParam()) * 31 + 5);
  auto dopts = DeploymentOptions::TwoRegions();
  dopts.server.durable = false;
  Deployment deployment(sim, dopts);

  ClientOptions copts;
  RandomWorkload::Options wopts;
  wopts.seed = static_cast<uint64_t>(GetParam());
  wopts.inject_partition = true;
  wopts.num_keys = 6;
  RandomWorkload workload(deployment, wopts, copts);
  workload.Run();
  sim.RunUntil(sim.Now() + 10 * sim::kSecond);

  // Every pair of replicas of every register agrees on the folded value.
  for (int k = 0; k < wopts.num_keys; k++) {
    Key key = "reg" + std::to_string(k);
    auto replicas = deployment.ReplicasOf(key);
    auto first = deployment.server(replicas[0]).good().Read(key);
    for (size_t r = 1; r < replicas.size(); r++) {
      auto other = deployment.server(replicas[r]).good().Read(key);
      EXPECT_EQ(first.found, other.found) << key;
      EXPECT_EQ(first.value, other.value) << key;
      EXPECT_EQ(first.ts, other.ts) << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace hat
