// Tests for the workload generators (YCSB, TPC-C) and the harness drivers.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "hat/harness/driver.h"
#include "hat/harness/table.h"
#include "hat/workload/tpcc.h"
#include "hat/workload/ycsb.h"

namespace hat::workload {
namespace {

TEST(YcsbTest, KeyNamesAreStable) {
  EXPECT_EQ(YcsbGenerator::KeyFor(0), "user0000000000");
  EXPECT_EQ(YcsbGenerator::KeyFor(42), "user0000000042");
}

TEST(YcsbTest, TxnShapeMatchesOptions) {
  YcsbOptions opts;
  opts.ops_per_txn = 8;
  opts.num_keys = 100;
  YcsbGenerator gen(opts);
  Rng rng(1);
  auto txn = gen.NextTxn(rng);
  EXPECT_EQ(txn.ops.size(), 8u);
  for (const auto& op : txn.ops) {
    EXPECT_EQ(op.key.substr(0, 4), "user");
  }
}

TEST(YcsbTest, ReadFractionApproximatelyHonored) {
  YcsbOptions opts;
  opts.read_fraction = 0.8;
  YcsbGenerator gen(opts);
  Rng rng(2);
  int reads = 0, total = 0;
  for (int i = 0; i < 2000; i++) {
    for (const auto& op : gen.NextTxn(rng).ops) {
      reads += op.is_read;
      total++;
    }
  }
  EXPECT_NEAR(static_cast<double>(reads) / total, 0.8, 0.02);
}

TEST(YcsbTest, AllWriteAndAllReadExtremes) {
  Rng rng(3);
  for (double f : {0.0, 1.0}) {
    YcsbOptions opts;
    opts.read_fraction = f;
    YcsbGenerator gen(opts);
    for (int i = 0; i < 50; i++) {
      for (const auto& op : gen.NextTxn(rng).ops) {
        EXPECT_EQ(op.is_read, f == 1.0);
      }
    }
  }
}

TEST(YcsbTest, ZipfianSkewsKeys) {
  YcsbOptions opts;
  opts.distribution = KeyDistribution::kZipfian;
  opts.num_keys = 1000;
  YcsbGenerator gen(opts);
  Rng rng(4);
  std::map<Key, int> counts;
  for (int i = 0; i < 3000; i++) {
    for (const auto& op : gen.NextTxn(rng).ops) counts[op.key]++;
  }
  int max_count = 0;
  for (const auto& [k, n] : counts) max_count = std::max(max_count, n);
  // The hottest key should be far above the uniform expectation (~24).
  EXPECT_GT(max_count, 200);
}

TEST(YcsbTest, ValuesSizedAndTagged) {
  YcsbOptions opts;
  opts.value_size = 128;
  YcsbGenerator gen(opts);
  Value v1 = gen.MakeValue(7);
  Value v2 = gen.MakeValue(8);
  EXPECT_EQ(v1.size(), 128u);
  EXPECT_NE(v1, v2);
}

// --------------------------------- TPC-C ----------------------------------

TEST(TpccTest, KeysAreWellFormedAndDistinct) {
  std::set<Key> keys = {
      TpccKeys::WarehouseYtd(1),       TpccKeys::DistrictYtd(1, 2),
      TpccKeys::DistrictNextOid(1, 2), TpccKeys::CustomerBalance(1, 2, 3),
      TpccKeys::CustomerPayCount(1, 2, 3),
      TpccKeys::CustomerLastOrder(1, 2, 3),
      TpccKeys::Stock(1, 4),           TpccKeys::ItemPrice(4),
      TpccKeys::Order(1, 2, "o1"),     TpccKeys::NewOrderMarker(1, 2, "o1"),
      TpccKeys::OrderLine(1, 2, "o1", 0),
      TpccKeys::History(1, 2, 3, 99)};
  EXPECT_EQ(keys.size(), 12u);
}

TEST(TpccTest, NewOrderPrefixCoversMarkers) {
  Key marker = TpccKeys::NewOrderMarker(1, 2, "oid9");
  Key prefix = TpccKeys::NewOrderPrefix(1, 2);
  EXPECT_EQ(marker.substr(0, prefix.size()), prefix);
  EXPECT_EQ(marker.substr(prefix.size()), "oid9");
}

TEST(TpccTest, OrderRecordRoundTrip) {
  int c = 0, n = 0;
  int64_t t = 0;
  ASSERT_TRUE(DecodeOrderRecord(EncodeOrderRecord(12, 5, 990), &c, &n, &t));
  EXPECT_EQ(c, 12);
  EXPECT_EQ(n, 5);
  EXPECT_EQ(t, 990);
  EXPECT_FALSE(DecodeOrderRecord("garbage", &c, &n, &t));
}

TEST(TpccTest, GeneratorRespectsConfigBounds) {
  TpccConfig config;
  config.warehouses = 3;
  config.districts_per_warehouse = 4;
  config.customers_per_district = 5;
  config.items = 10;
  config.max_order_lines = 3;
  TpccGenerator gen(config);
  Rng rng(5);
  for (int i = 0; i < 500; i++) {
    auto no = gen.MakeNewOrder(rng);
    EXPECT_LT(no.w, 3);
    EXPECT_LT(no.d, 4);
    EXPECT_LT(no.c, 5);
    EXPECT_GE(no.lines.size(), 1u);
    EXPECT_LE(no.lines.size(), 3u);
    for (auto [item, qty] : no.lines) {
      EXPECT_LT(item, 10);
      EXPECT_GE(qty, 1);
      EXPECT_LE(qty, 10);
    }
    auto pay = gen.MakePayment(rng);
    EXPECT_GT(pay.amount, 0);
  }
}

// ------------------------------ harness -----------------------------------

TEST(TablePrinterTest, NumFormatting) {
  EXPECT_EQ(harness::TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(harness::TablePrinter::Num(1000, 0), "1000");
}

TEST(DriverTest, YcsbDriverMeasuresThroughput) {
  sim::Simulation sim(51);
  auto dopts = cluster::DeploymentOptions::SingleDatacenter();
  dopts.server.durable = false;
  cluster::Deployment deployment(sim, dopts);

  YcsbOptions wopts;
  wopts.num_keys = 100;
  wopts.value_size = 64;
  harness::YcsbDriver driver(deployment, wopts, client::ClientOptions{},
                             /*num_clients=*/8, /*seed=*/9);
  driver.Preload();
  auto result = driver.Run(sim::kSecond, 5 * sim::kSecond);
  EXPECT_GT(result.committed, 100u);
  EXPECT_EQ(result.unavailable, 0u);
  EXPECT_GT(result.TxnsPerSecond(), 0.0);
  EXPECT_GT(result.txn_latency_ms.Mean(), 0.0);
  EXPECT_EQ(result.ops_committed, result.committed * 8);
}

TEST(DriverTest, DeterministicAcrossIdenticalRuns) {
  auto run = [](uint64_t seed) {
    sim::Simulation sim(seed);
    auto dopts = cluster::DeploymentOptions::SingleDatacenter();
    dopts.server.durable = false;
    cluster::Deployment deployment(sim, dopts);
    YcsbOptions wopts;
    wopts.num_keys = 50;
    wopts.value_size = 64;
    harness::YcsbDriver driver(deployment, wopts, client::ClientOptions{}, 4,
                               7);
    driver.Preload();
    return driver.Run(sim::kSecond, 3 * sim::kSecond).committed;
  };
  EXPECT_EQ(run(33), run(33));
}

TEST(DriverTest, MavSlowerThanEventualButComparable) {
  auto run = [](client::IsolationLevel iso) {
    sim::Simulation sim(52);
    auto dopts = cluster::DeploymentOptions::SingleDatacenter();
    cluster::Deployment deployment(sim, dopts);
    YcsbOptions wopts;
    wopts.num_keys = 500;
    client::ClientOptions copts;
    copts.isolation = iso;
    harness::YcsbDriver driver(deployment, wopts, copts, 64, 7);
    driver.Preload();
    return driver.Run(sim::kSecond, 5 * sim::kSecond).TxnsPerSecond();
  };
  double eventual = run(client::IsolationLevel::kReadUncommitted);
  double mav = run(client::IsolationLevel::kMonotonicAtomicView);
  EXPECT_GT(mav, 0.3 * eventual);
  EXPECT_LT(mav, eventual);
}

}  // namespace
}  // namespace hat::workload
