// Live shard migration tests: a logical shard moved between servers of a
// cluster mid-workload must conserve data (version sets and folds equal to
// a never-migrated control), lose or duplicate zero client operations
// (counter sums), stay bit-reproducible under a fixed seed, survive
// crashes of either end of the transfer, and leave a tombstoned keyspace
// plus an updated manifest behind. The manifest fail-fast guard
// (refusing recovery under a reshaped keyspace) is covered here too.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "hat/client/sync_client.h"
#include "hat/cluster/deployment.h"
#include "hat/cluster/placement.h"
#include "hat/common/codec.h"

namespace hat::cluster {
namespace {

namespace fs = std::filesystem;
using client::ClientOptions;
using client::SyncClient;

constexpr int kSpc = 3;          // servers per cluster
constexpr int kSps = 2;          // shards per server
constexpr int kLogical = kSpc * kSps;
constexpr uint32_t kShard = 1;   // the shard every test migrates
constexpr int kFromSlot = 1;     // kShard % kSpc
constexpr int kToSlot = 2;

/// A key landing in logical shard `want` (of kLogical), distinct per salt.
Key KeyInShard(uint32_t want, const std::string& salt, int n) {
  for (int i = 0;; i++) {
    Key k = salt + "-" + std::to_string(n) + "-" + std::to_string(i);
    if (Fnv1a64(k.data(), k.size()) % kLogical == want) return k;
  }
}

class MigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("hatkv_migration_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::remove_all(dir_);
  }
  void TearDown() override {
    deployment_.reset();
    coordinator_.reset();
    fs::remove_all(dir_);
  }

  void Build(uint64_t seed, bool durable, const std::string& subdir) {
    deployment_.reset();
    coordinator_.reset();
    sim_ = std::make_unique<sim::Simulation>(seed);
    auto opts = DeploymentOptions::TwoRegions();
    opts.servers_per_cluster = kSpc;
    opts.server.shards_per_server = kSps;
    opts.server.digest_buckets = 32;
    opts.server.digest_sync_interval = 250 * sim::kMillisecond;
    opts.server.max_versions_per_key = 0;  // exact version-set comparison
    opts.server.ae_batch_max = 16;  // many snapshot chunks -> crashable mid-stream
    if (durable) {
      opts.server.durable = true;
      opts.server.storage_dir = (dir_ / subdir).string();
    }
    deployment_ = std::make_unique<Deployment>(*sim_, opts);
    coordinator_ = std::make_unique<RebalanceCoordinator>(*deployment_);
  }

  server::ReplicaServer& ServerAt(int cluster, int slot) {
    return deployment_->server(deployment_->ServerId(cluster, slot));
  }

  /// `rounds` transactions from one cluster-0 client: a fresh put into the
  /// migrating shard, a rewrite of a rotating key in it, an increment of a
  /// rotating counter in it, and a put into some other shard. Every commit
  /// must succeed (zero lost operations is part of the bar).
  void RunWorkload(int rounds) {
    SyncClient client(*sim_, deployment_->AddClient({}));
    for (int r = 0; r < rounds; r++) {
      client.Begin();
      client.Write(KeyInShard(kShard, "fresh", r), "f" + std::to_string(r));
      client.Write(KeyInShard(kShard, "hot", r % 5),
                   "h" + std::to_string(r));
      client.Increment(KeyInShard(kShard, "ctr", r % 3), 1);
      client.Write(KeyInShard((kShard + 2) % kLogical, "other", r),
                   "o" + std::to_string(r));
      ASSERT_TRUE(client.Commit().ok()) << "round " << r;
    }
  }

  void Settle(sim::Duration d = 8 * sim::kSecond) {
    sim_->RunUntil(sim_->Now() + d);
  }

  /// Full observable state of the migrating shard plus a workload-wide
  /// fold fingerprint. Cross-run comparison is modulo timestamps: a
  /// migration overlapping the workload legitimately perturbs operation
  /// timing and hence commit timestamps, so conservation means the same
  /// (kind, value) version sequences, folds, and counter sums — while
  /// *within* one run every replica must agree timestamp-exactly, which
  /// Capture asserts directly.
  struct Snapshot {
    // key -> per-cluster (kind/value version list, in timestamp order).
    std::map<Key, std::vector<std::vector<std::string>>> versions;
    std::map<Key, Value> folds;  // folded read at the cluster-0 owner
    std::map<Key, int64_t> counters;
    bool operator==(const Snapshot&) const = default;
  };

  Snapshot Capture(int rounds) {
    Snapshot out;
    std::vector<Key> keys;
    for (int r = 0; r < rounds; r++) {
      keys.push_back(KeyInShard(kShard, "fresh", r));
      keys.push_back(KeyInShard((kShard + 2) % kLogical, "other", r));
    }
    for (int i = 0; i < 5; i++) keys.push_back(KeyInShard(kShard, "hot", i));
    std::vector<Key> counters;
    for (int i = 0; i < 3; i++) {
      counters.push_back(KeyInShard(kShard, "ctr", i));
    }
    for (const Key& key : keys) {
      auto& per_cluster = out.versions[key];
      std::vector<std::string> exact_per_cluster;  // with timestamps
      for (int c = 0; c < deployment_->NumClusters(); c++) {
        const auto& store =
            deployment_->server(deployment_->ReplicaInCluster(key, c)).good();
        std::vector<std::string> versions;
        std::string exact;
        for (const WriteRecord& w : store.Versions(key)) {
          versions.push_back(std::to_string(static_cast<int>(w.kind)) + "/" +
                             w.value);
          exact += w.ts.ToString() + "/" + w.value + ";";
        }
        per_cluster.push_back(std::move(versions));
        exact_per_cluster.push_back(std::move(exact));
      }
      // Replica agreement within this run is timestamp-exact.
      for (size_t c = 1; c < exact_per_cluster.size(); c++) {
        EXPECT_EQ(exact_per_cluster[c], exact_per_cluster[0])
            << key << " diverged between clusters 0 and " << c;
      }
      auto rv =
          deployment_->server(deployment_->ReplicaInCluster(key, 0)).good()
              .Read(key);
      out.folds[key] = rv.value;
    }
    for (const Key& key : counters) {
      auto rv =
          deployment_->server(deployment_->ReplicaInCluster(key, 0)).good()
              .Read(key);
      out.counters[key] = DecodeInt64Value(rv.value).value_or(-1);
    }
    return out;
  }

  static int counter_;
  fs::path dir_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<RebalanceCoordinator> coordinator_;
};

int MigrationTest::counter_ = 0;

TEST_F(MigrationTest, MigrationConservesDataUnderConcurrentWorkload) {
  constexpr int kRounds = 120;
  constexpr uint64_t kSeed = 1234;

  // Control: same seed, same workload, no migration.
  Build(kSeed, /*durable=*/false, "control");
  RunWorkload(kRounds);
  Settle();
  Snapshot control = Capture(kRounds);

  // Migrated run: move kShard from slot 1 to slot 2 of cluster 0 while the
  // workload runs (100ms lands well inside the workload's span).
  Build(kSeed, /*durable=*/false, "migrated");
  coordinator_->ScheduleMigration(0, kShard, kToSlot,
                                  100 * sim::kMillisecond);
  RunWorkload(kRounds);
  sim::SimTime workload_end = sim_->Now();
  Settle();
  EXPECT_LT(coordinator_->stats().started_at, workload_end)
      << "migration must overlap the workload";
  ASSERT_TRUE(coordinator_->Done()) << "migration must complete mid-workload";
  Snapshot migrated = Capture(kRounds);

  // Routing flipped: cluster 0 now serves the shard from the destination.
  Key probe = KeyInShard(kShard, "fresh", 0);
  EXPECT_EQ(deployment_->ReplicaInCluster(probe, 0),
            deployment_->ServerId(0, kToSlot));
  EXPECT_GE(deployment_->PlacementEpoch(), 1u);
  EXPECT_EQ(coordinator_->stats().cutover_epoch,
            deployment_->PlacementEpoch());
  EXPECT_GT(coordinator_->stats().snapshot_records, 0u);

  // Conservation: identical version sets at every replica, identical folds,
  // exact counter sums (no lost or duplicated increments).
  EXPECT_EQ(migrated.versions, control.versions);
  EXPECT_EQ(migrated.folds, control.folds);
  EXPECT_EQ(migrated.counters, control.counters);
  for (const auto& [key, sum] : migrated.counters) {
    EXPECT_EQ(sum, kRounds / 3) << key;  // 120 rounds over 3 counters
  }

  // Source let go: the shard is detached there, and stale-epoch client
  // retries were actually exercised somewhere along the way.
  EXPECT_FALSE(ServerAt(0, kFromSlot).good().SlotOfLogical(kShard));
  EXPECT_TRUE(ServerAt(0, kToSlot).good().SlotOfLogical(kShard).has_value());
}

TEST_F(MigrationTest, FixedSeedIsBitReproducibleWithMigrationEnabled) {
  constexpr int kRounds = 60;
  auto run = [this]() {
    Build(99, /*durable=*/false, "repro");
    coordinator_->ScheduleMigration(0, kShard, kToSlot,
                                    250 * sim::kMillisecond);
    RunWorkload(kRounds);
    Settle();
    EXPECT_TRUE(coordinator_->Done());
    return std::tuple(Capture(kRounds), sim_->events_processed(),
                      coordinator_->stats().cutover_at,
                      deployment_->TotalServerStats().ae_records_out);
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(std::get<0>(first), std::get<0>(second));
  EXPECT_EQ(std::get<1>(first), std::get<1>(second)) << "event count drifted";
  EXPECT_EQ(std::get<2>(first), std::get<2>(second)) << "cutover time drifted";
  EXPECT_EQ(std::get<3>(first), std::get<3>(second));
}

TEST_F(MigrationTest, SourceCrashMidSnapshotRestartsAndCompletes) {
  Build(7, /*durable=*/true, "srccrash");
  // Preload enough shard-kShard data that the snapshot stream spans many
  // chunks, then crash the source mid-stream.
  {
    SyncClient client(*sim_, deployment_->AddClient({}));
    for (int r = 0; r < 40; r++) {
      client.Begin();
      for (int j = 0; j < 5; j++) {
        client.Write(KeyInShard(kShard, "bulk", r * 5 + j), "v");
      }
      ASSERT_TRUE(client.Commit().ok());
    }
  }
  Settle(2 * sim::kSecond);

  sim::SimTime start = sim_->Now() + 100 * sim::kMillisecond;
  coordinator_->ScheduleMigration(0, kShard, kToSlot, start);
  sim_->RunUntil(start + 2 * sim::kMillisecond);  // a few chunks in
  ASSERT_FALSE(coordinator_->Done());

  auto& source = ServerAt(0, kFromSlot);
  source.Crash();
  ASSERT_TRUE(source.RecoverFromStorage().ok());
  Settle();

  EXPECT_TRUE(coordinator_->Done());
  EXPECT_GE(coordinator_->stats().restarts, 1u);
  const auto& dest = ServerAt(0, kToSlot).good();
  auto slot = dest.SlotOfLogical(kShard);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(dest.shard(*slot).VersionCount(), 200u) << "all bulk records";
  EXPECT_FALSE(ServerAt(0, kFromSlot).good().SlotOfLogical(kShard));
}

TEST_F(MigrationTest, DestinationCrashMidSnapshotRestartsAndCompletes) {
  Build(8, /*durable=*/true, "dstcrash");
  {
    SyncClient client(*sim_, deployment_->AddClient({}));
    for (int r = 0; r < 40; r++) {
      client.Begin();
      for (int j = 0; j < 5; j++) {
        client.Write(KeyInShard(kShard, "bulk", r * 5 + j), "v");
      }
      ASSERT_TRUE(client.Commit().ok());
    }
  }
  Settle(2 * sim::kSecond);

  sim::SimTime start = sim_->Now() + 100 * sim::kMillisecond;
  coordinator_->ScheduleMigration(0, kShard, kToSlot, start);
  sim_->RunUntil(start + 2 * sim::kMillisecond);
  ASSERT_FALSE(coordinator_->Done());

  auto& dest_server = ServerAt(0, kToSlot);
  dest_server.Crash();
  ASSERT_TRUE(dest_server.RecoverFromStorage().ok());
  Settle();

  EXPECT_TRUE(coordinator_->Done());
  EXPECT_GE(coordinator_->stats().restarts, 1u);
  auto slot = dest_server.good().SlotOfLogical(kShard);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(dest_server.good().shard(*slot).VersionCount(), 200u);
}

TEST_F(MigrationTest, DestinationCrashDuringCatchupRestartsStream) {
  // Losing the destination *after* the snapshot completed must restart the
  // stream, never cut routing over onto a server whose staged copy is gone.
  Build(11, /*durable=*/true, "dstcatchup");
  {
    SyncClient client(*sim_, deployment_->AddClient({}));
    for (int r = 0; r < 40; r++) {
      client.Begin();
      for (int j = 0; j < 5; j++) {
        client.Write(KeyInShard(kShard, "bulk", r * 5 + j), "v");
      }
      ASSERT_TRUE(client.Commit().ok());
    }
  }
  Settle(2 * sim::kSecond);

  coordinator_->ScheduleMigration(0, kShard, kToSlot,
                                  sim_->Now() + 50 * sim::kMillisecond);
  while (coordinator_->phase() != RebalanceCoordinator::Phase::kCatchup) {
    ASSERT_TRUE(sim_->Step()) << "never reached the catch-up phase";
  }
  auto& dest_server = ServerAt(0, kToSlot);
  dest_server.Crash();
  ASSERT_TRUE(dest_server.RecoverFromStorage().ok());
  Settle();

  EXPECT_TRUE(coordinator_->Done());
  EXPECT_GE(coordinator_->stats().restarts, 1u);
  auto slot = dest_server.good().SlotOfLogical(kShard);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(dest_server.good().shard(*slot).VersionCount(), 200u);
  EXPECT_FALSE(ServerAt(0, kFromSlot).good().SlotOfLogical(kShard));
}

TEST_F(MigrationTest, DestinationRecoversMigratedShardFromManifest) {
  // After cutover the destination's manifest includes the migrated shard;
  // a later crash + recovery must rebuild it (data included), while the
  // source's tombstoned keyspace stays gone.
  Build(9, /*durable=*/true, "manifest");
  {
    SyncClient client(*sim_, deployment_->AddClient({}));
    for (int r = 0; r < 30; r++) {
      client.Begin();
      client.Write(KeyInShard(kShard, "persist", r), "p" + std::to_string(r));
      ASSERT_TRUE(client.Commit().ok());
    }
  }
  Settle(2 * sim::kSecond);
  coordinator_->ScheduleMigration(0, kShard, kToSlot, sim_->Now());
  Settle();
  ASSERT_TRUE(coordinator_->Done());

  auto& dest_server = ServerAt(0, kToSlot);
  dest_server.Crash();
  {
    // Ownership shape survives the crash; the data does not.
    auto slot = dest_server.good().SlotOfLogical(kShard);
    ASSERT_TRUE(slot.has_value());
    EXPECT_EQ(dest_server.good().shard(*slot).VersionCount(), 0u);
  }
  ASSERT_TRUE(dest_server.RecoverFromStorage().ok());
  auto slot = dest_server.good().SlotOfLogical(kShard);
  ASSERT_TRUE(slot.has_value()) << "manifest restores migrated ownership";
  EXPECT_EQ(dest_server.good().shard(*slot).VersionCount(), 30u);
  for (int r = 0; r < 30; r++) {
    Key key = KeyInShard(kShard, "persist", r);
    EXPECT_EQ(dest_server.good().Read(key).value, "p" + std::to_string(r));
  }

  // Source: crash + recovery must NOT resurrect the tombstoned shard.
  auto& source = ServerAt(0, kFromSlot);
  source.Crash();
  ASSERT_TRUE(source.RecoverFromStorage().ok());
  EXPECT_FALSE(source.good().SlotOfLogical(kShard));
  for (int r = 0; r < 30; r++) {
    EXPECT_FALSE(source.good().OwnsKey(KeyInShard(kShard, "persist", r)));
  }
}

TEST_F(MigrationTest, RecoveryRefusesReshapedKeyspace) {
  // The fail-fast manifest guard: a keyspace written under one
  // {shards_per_server, stride} must not silently replay under another.
  Build(10, /*durable=*/true, "guard");
  {
    SyncClient client(*sim_, deployment_->AddClient({}));
    client.Begin();
    client.Write("guard-key", "guard-value");
    ASSERT_TRUE(client.Commit().ok());
  }
  Settle(2 * sim::kSecond);

  // Reopen the same directories with a different shards_per_server.
  deployment_.reset();
  coordinator_.reset();
  sim_ = std::make_unique<sim::Simulation>(10);
  auto opts = DeploymentOptions::TwoRegions();
  opts.servers_per_cluster = kSpc;
  opts.server.shards_per_server = kSps + 2;  // reshaped!
  opts.server.durable = true;
  opts.server.storage_dir = (dir_ / "guard").string();
  deployment_ = std::make_unique<Deployment>(*sim_, opts);

  // The server holding the data is the one the *old* shape routed to (the
  // new shape may route the key elsewhere — exactly the scrambling hazard).
  Key key = "guard-key";
  int old_slot =
      static_cast<int>(Fnv1a64(key.data(), key.size()) % kLogical) % kSpc;
  Status s =
      deployment_->server(deployment_->ServerId(0, old_slot))
          .RecoverFromStorage();
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

}  // namespace
}  // namespace hat::cluster
