// Tests for hat/obs: generic stats merging over VisitFields, the metrics
// registry + sim-clock sampler (including late registration), the tracer
// ring buffers and deterministic sampling, the exporters, and an
// end-to-end traced MAV run whose span tree must hang together.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "hat/client/options.h"
#include "hat/cluster/deployment.h"
#include "hat/harness/driver.h"
#include "hat/obs/export.h"
#include "hat/obs/registry.h"
#include "hat/obs/sampler.h"
#include "hat/obs/trace.h"
#include "hat/server/replica_server.h"
#include "hat/sim/simulation.h"

namespace hat::obs {
namespace {

// ------------------------------ MergeStats ---------------------------------

TEST(MergeStatsTest, TwoKnownServerStatsSumFieldForField) {
  server::ServerStats a;
  a.gets = 10;
  a.puts = 3;
  a.ae_records_in = 7;
  a.wal_group_commits = 2;
  a.busy_us = 1.5;
  a.lane_busy_us = {100.0, 200.0};
  a.lane_queue_depth = {1, 2};
  a.queue_wait_us.Record(50);

  server::ServerStats b;
  b.gets = 5;
  b.scans = 4;
  b.ae_records_in = 1;
  b.busy_us = 2.25;
  b.lane_busy_us = {10.0, 20.0, 30.0};  // more lanes than a: dst must grow
  b.lane_queue_depth = {0, 0, 9};
  b.queue_wait_us.Record(70);
  b.queue_wait_us.Record(90);

  server::ServerStats total;
  MergeStats(total, a);
  MergeStats(total, b);

  EXPECT_EQ(total.gets, 15u);
  EXPECT_EQ(total.puts, 3u);
  EXPECT_EQ(total.scans, 4u);
  EXPECT_EQ(total.ae_records_in, 8u);
  EXPECT_EQ(total.wal_group_commits, 2u);
  EXPECT_DOUBLE_EQ(total.busy_us, 3.75);
  ASSERT_EQ(total.lane_busy_us.size(), 3u);
  EXPECT_DOUBLE_EQ(total.lane_busy_us[0], 110.0);
  EXPECT_DOUBLE_EQ(total.lane_busy_us[1], 220.0);
  EXPECT_DOUBLE_EQ(total.lane_busy_us[2], 30.0);
  ASSERT_EQ(total.lane_queue_depth.size(), 3u);
  EXPECT_EQ(total.lane_queue_depth[2], 9u);
  EXPECT_EQ(total.queue_wait_us.count(), 3u);
  // Untouched fields stay zero.
  EXPECT_EQ(total.mav_promotions, 0u);
  EXPECT_EQ(total.exec_tasks, 0u);
}

TEST(MergeStatsTest, FieldCountsMatchTheStructs) {
  // 33 scalars + 2 lane vectors + 1 histogram; ClientStats is 14 scalars.
  // The sizeof static_asserts next to each VisitFields enforce "every
  // field is listed"; this pins the expected census so a silent VisitFields
  // rewrite shows up here too.
  EXPECT_EQ(CountStatsFields<server::ServerStats>(), 36u);
  EXPECT_EQ(CountStatsFields<client::ClientStats>(), 14u);
}

TEST(MergeStatsTest, ClientStatsMerge) {
  client::ClientStats a, b;
  a.txns_committed = 11;
  a.reads = 40;
  b.txns_committed = 9;
  b.batches_sent = 5;
  client::ClientStats total;
  MergeStats(total, a);
  MergeStats(total, b);
  EXPECT_EQ(total.txns_committed, 20u);
  EXPECT_EQ(total.reads, 40u);
  EXPECT_EQ(total.batches_sent, 5u);
}

// ------------------------------- Registry ----------------------------------

TEST(RegistryTest, SourcesReadLiveValues) {
  Registry reg;
  uint64_t counter = 0;
  double gauge = 0;
  Histogram hist;
  reg.AddCounter("c", {1, -1, "t"}, [&]() { return double(counter); });
  reg.AddGauge("g", {1, 2, "t"}, [&]() { return gauge; });
  reg.AddHistogram("h", {1, -1, "t"}, [&]() -> const Histogram& {
    return hist;
  });
  ASSERT_EQ(reg.size(), 3u);
  counter = 42;
  gauge = -1.5;
  hist.Record(7);
  EXPECT_DOUBLE_EQ(reg.metrics()[0].value(), 42.0);
  EXPECT_DOUBLE_EQ(reg.metrics()[1].value(), -1.5);
  EXPECT_EQ(reg.metrics()[2].histogram().count(), 1u);
  EXPECT_EQ(reg.metrics()[1].labels.lane, 2);
  EXPECT_EQ(reg.metrics()[0].kind, MetricKind::kCounter);
  EXPECT_EQ(reg.metrics()[1].kind, MetricKind::kGauge);
  EXPECT_EQ(reg.metrics()[2].kind, MetricKind::kHistogram);
}

TEST(RegistryTest, AddStatsRegistersScalarsAndHistogramsSkipsVectors) {
  Registry reg;
  server::ServerStats stats;
  reg.AddStats<server::ServerStats>(
      "server.", {3, -1, "server"},
      [&stats]() -> const server::ServerStats& { return stats; });
  // 33 scalar counters + 1 histogram; the two lane vectors are skipped
  // (registered per lane by the deployment, where the lane label is known).
  EXPECT_EQ(reg.size(), 34u);
  stats.gets = 17;
  bool found = false;
  for (const auto& m : reg.metrics()) {
    if (m.name == "server.gets") {
      found = true;
      EXPECT_DOUBLE_EQ(m.value(), 17.0);
      EXPECT_EQ(m.labels.server, 3);
    }
    EXPECT_NE(m.name, "server.lane_busy_us");
  }
  EXPECT_TRUE(found);
}

// -------------------------------- Sampler ----------------------------------

TEST(SamplerTest, CountersBecomeIntervalDeltas) {
  sim::Simulation sim(1);
  Registry reg;
  uint64_t counter = 0;
  reg.AddCounter("c", {}, [&]() { return double(counter); });
  Sampler::Options opts;
  opts.period = 10 * sim::kMillisecond;
  Sampler sampler(sim, reg, opts);
  counter = 100;  // pre-start activity must not pollute the first interval
  sampler.Start();
  sim.After(5 * sim::kMillisecond, [&]() { counter += 7; });
  sim.After(15 * sim::kMillisecond, [&]() { counter += 3; });
  sim.RunUntil(35 * sim::kMillisecond);
  sampler.Stop();
  ASSERT_EQ(sampler.times().size(), 3u);
  ASSERT_EQ(sampler.series().size(), 1u);
  EXPECT_DOUBLE_EQ(sampler.series()[0][0], 7.0);   // [0, 10ms)
  EXPECT_DOUBLE_EQ(sampler.series()[0][1], 3.0);   // [10, 20ms)
  EXPECT_DOUBLE_EQ(sampler.series()[0][2], 0.0);   // quiet interval
}

TEST(SamplerTest, HistogramsBecomeWindowedP95) {
  sim::Simulation sim(1);
  Registry reg;
  Histogram hist;
  reg.AddHistogram("h", {}, [&]() -> const Histogram& { return hist; });
  Sampler::Options opts;
  opts.period = 10 * sim::kMillisecond;
  Sampler sampler(sim, reg, opts);
  sampler.Start();
  sim.After(2 * sim::kMillisecond, [&]() { hist.RecordMany(100, 50); });
  sim.After(12 * sim::kMillisecond, [&]() { hist.RecordMany(9000, 50); });
  sim.RunUntil(25 * sim::kMillisecond);
  sampler.Stop();
  ASSERT_EQ(sampler.times().size(), 2u);
  // Each window's p95 reflects only that window's observations.
  EXPECT_NEAR(sampler.series()[0][0], 100, 100 * 0.02);
  EXPECT_NEAR(sampler.series()[0][1], 9000, 9000 * 0.02);
}

TEST(SamplerTest, LateRegistrationBackfillsZeros) {
  sim::Simulation sim(1);
  Registry reg;
  uint64_t early = 0, late = 0;
  reg.AddCounter("early", {}, [&]() { return double(early); });
  Sampler::Options opts;
  opts.period = 10 * sim::kMillisecond;
  Sampler sampler(sim, reg, opts);
  sampler.Start();
  // Two ticks in, a new metric appears (a client added to a live
  // deployment) with history on its counter.
  sim.After(25 * sim::kMillisecond, [&]() {
    late = 500;
    reg.AddCounter("late", {}, [&]() { return double(late); });
  });
  sim.After(32 * sim::kMillisecond, [&]() { late += 4; });
  sim.RunUntil(45 * sim::kMillisecond);
  sampler.Stop();
  ASSERT_EQ(sampler.times().size(), 4u);
  ASSERT_EQ(sampler.series().size(), 2u);
  ASSERT_EQ(sampler.series()[1].size(), 4u) << "rows must stay parallel";
  EXPECT_DOUBLE_EQ(sampler.series()[1][0], 0.0);  // backfilled
  EXPECT_DOUBLE_EQ(sampler.series()[1][1], 0.0);  // backfilled
  // First live tick (30ms) baselines at the join value — the pre-join 500
  // must not appear as a delta spike; the 35ms +4 lands in [30, 40ms).
  EXPECT_DOUBLE_EQ(sampler.series()[1][2], 0.0);
  EXPECT_DOUBLE_EQ(sampler.series()[1][3], 4.0);
}

// -------------------------------- Tracer -----------------------------------

TEST(TracerTest, RingWrapKeepsNewestAndCountsDropped) {
  Tracer::Options opts;
  opts.ring_capacity = 4;
  Tracer tracer(opts);
  tracer.set_enabled(true);
  for (uint64_t i = 1; i <= 6; i++) {
    Span s;
    s.trace_id = 1;
    s.span_id = i;
    s.node = 0;
    tracer.Record(s);
  }
  std::vector<Span> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  // Oldest-first within the ring: 3, 4, 5, 6 survive.
  EXPECT_EQ(spans.front().span_id, 3u);
  EXPECT_EQ(spans.back().span_id, 6u);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  Span s;
  s.trace_id = 1;
  tracer.Record(s);  // enabled() false: must no-op
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_FALSE(tracer.ShouldSampleTxn());
}

TEST(TracerTest, SampleEveryNthIsCounterBasedAndDeterministic) {
  Tracer::Options opts;
  opts.sample_every = 3;
  Tracer tracer(opts);
  tracer.set_enabled(true);
  std::vector<bool> pattern;
  for (int i = 0; i < 9; i++) pattern.push_back(tracer.ShouldSampleTxn());
  EXPECT_EQ(pattern, std::vector<bool>(
                         {true, false, false, true, false, false, true,
                          false, false}));
}

TEST(TracerTest, ChildOfStaysInTraceWithFreshSpanId) {
  Tracer tracer;
  TraceContext root{tracer.NewTraceId(), tracer.NewSpanId()};
  TraceContext child = tracer.ChildOf(root);
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_NE(child.span_id, root.span_id);
  EXPECT_TRUE(child.active());
  EXPECT_FALSE(TraceContext{}.active());
}

TEST(TracerTest, SpansGroupedByNodeInIdOrder) {
  Tracer tracer;
  tracer.set_enabled(true);
  for (uint32_t node : {5u, 2u, 5u, 9u}) {
    Span s;
    s.trace_id = 1;
    s.node = node;
    tracer.Record(s);
  }
  std::vector<Span> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].node, 2u);
  EXPECT_EQ(spans[1].node, 5u);
  EXPECT_EQ(spans[2].node, 5u);
  EXPECT_EQ(spans[3].node, 9u);
}

// ------------------------------- Exporters ---------------------------------

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ExportTest, ChromeTraceContainsEventsAndParses) {
  std::vector<Span> spans;
  Span dur;
  dur.trace_id = 1;
  dur.span_id = 2;
  dur.kind = SpanKind::kExecute;
  dur.node = 3;
  dur.lane = 1;
  dur.core = 0;
  dur.start_us = 100;
  dur.end_us = 250;
  spans.push_back(dur);
  Span instant;
  instant.kind = SpanKind::kCheckpoint;
  instant.node = 3;
  instant.start_us = instant.end_us = 400;
  spans.push_back(instant);

  std::string path = testing::TempDir() + "/obs_chrome_trace.json";
  ASSERT_TRUE(WriteChromeTrace(path, spans));
  std::string doc = ReadAll(path);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);  // duration event
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);  // instant event
  EXPECT_NE(doc.find("execute"), std::string::npos);
  EXPECT_NE(doc.find("checkpoint"), std::string::npos);
  // Crude but effective structural check: braces/brackets balance.
  long depth = 0;
  for (char c : doc) {
    if (c == '{' || c == '[') depth++;
    if (c == '}' || c == ']') depth--;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::remove(path.c_str());
}

TEST(ExportTest, MetricsJsonCarriesTimesAndSeries) {
  sim::Simulation sim(1);
  Registry reg;
  uint64_t counter = 0;
  reg.AddCounter("test.counter", {2, -1, "fam"},
                 [&]() { return double(counter); });
  Sampler::Options opts;
  opts.period = 10 * sim::kMillisecond;
  Sampler sampler(sim, reg, opts);
  sampler.Start();
  sim.After(5 * sim::kMillisecond, [&]() { counter = 6; });
  sim.RunUntil(22 * sim::kMillisecond);
  sampler.Stop();

  std::string path = testing::TempDir() + "/obs_metrics.json";
  ASSERT_TRUE(WriteMetricsJson(path, sampler));
  std::string doc = ReadAll(path);
  EXPECT_NE(doc.find("\"test.counter\""), std::string::npos);
  EXPECT_NE(doc.find("\"t_us\""), std::string::npos);
  EXPECT_NE(doc.find("\"fam\""), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------- end-to-end traced deployment -----------------------

/// A small traced MAV run; keeps the deployment alive so tests can inspect
/// the tracer and sampler after the run.
struct TracedRun {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<cluster::Deployment> deployment;
  std::vector<Span> spans;
};

TracedRun TracedMavRun(client::ClientOptions copts) {
  TracedRun run;
  run.sim = std::make_unique<sim::Simulation>(42);
  auto opts = cluster::DeploymentOptions::TwoRegions();
  opts.servers_per_cluster = 2;
  opts.server.shards_per_server = 2;
  run.deployment = std::make_unique<cluster::Deployment>(*run.sim, opts);
  cluster::ObsConfig obs_config;
  obs_config.tracing = true;
  obs_config.sampling = true;
  run.deployment->EnableObservability(obs_config);

  workload::YcsbOptions wl;
  wl.num_keys = 200;
  wl.value_size = 32;
  wl.read_fraction = 0.5;
  wl.ops_per_txn = 4;
  harness::YcsbDriver driver(*run.deployment, wl, copts, /*num_clients=*/4,
                             /*seed=*/7);
  driver.Preload();
  driver.Run(50 * sim::kMillisecond, 200 * sim::kMillisecond);
  run.spans = run.deployment->tracer()->Spans();
  return run;
}

TEST(TracedDeploymentTest, MavCommitSpanTreeHangsTogether) {
  client::ClientOptions copts;
  copts.isolation = client::IsolationLevel::kMonotonicAtomicView;
  TracedRun run = TracedMavRun(copts);
  cluster::Deployment* deployment = run.deployment.get();
  const std::vector<Span>& spans = run.spans;
  ASSERT_FALSE(spans.empty());

  std::set<SpanKind> kinds;
  for (const Span& s : spans) {
    kinds.insert(s.kind);
    EXPECT_GE(s.end_us, s.start_us) << "span timestamps must be monotone";
  }
  // The full MAV write path must be represented.
  for (SpanKind k :
       {SpanKind::kTxn, SpanKind::kCommit, SpanKind::kRpcFlight,
        SpanKind::kQueueWait, SpanKind::kExecute, SpanKind::kWalCommit,
        SpanKind::kMavAckWait, SpanKind::kAeApply}) {
    EXPECT_TRUE(kinds.count(k)) << "missing span kind " << SpanKindName(k);
  }

  // Span-tree structure. Parent ids come in two flavours: recorded spans
  // (the kTxn root) and envelope/context identities that exist only as
  // edges (an RPC's context id is the parent of the server-side work it
  // causes, but is not itself a recorded span). What must hold: every
  // kCommit span's parent is its trace's recorded kTxn root, roots are
  // roots (parent 0, span_id present), and no span parents itself.
  std::map<uint64_t, const Span*> roots;
  for (const Span& s : spans) {
    if (s.kind == SpanKind::kTxn) {
      EXPECT_EQ(s.parent_id, 0u) << "kTxn must be a root span";
      roots[s.trace_id] = &s;
    }
    if (s.trace_id != 0) {
      EXPECT_NE(s.parent_id, s.span_id) << "span must not parent itself";
    }
  }
  ASSERT_FALSE(roots.empty());
  size_t checked_commits = 0;
  for (const Span& s : spans) {
    if (s.kind != SpanKind::kCommit) continue;
    auto it = roots.find(s.trace_id);
    if (it == roots.end()) continue;  // root evicted or txn in flight
    EXPECT_EQ(s.parent_id, it->second->span_id)
        << "kCommit must hang off its transaction's root span";
    // The commit phase nests inside the transaction interval.
    EXPECT_GE(s.start_us, it->second->start_us);
    EXPECT_LE(s.end_us, it->second->end_us);
    checked_commits++;
  }
  EXPECT_GT(checked_commits, 0u);

  // Server-side spans sit within the sim-time frame of the run.
  for (const Span& s : spans) {
    EXPECT_LE(s.end_us, 1000 * sim::kMillisecond);
  }

  // The sampler ran alongside and its rows stayed parallel.
  ASSERT_NE(deployment->sampler(), nullptr);
  EXPECT_GE(deployment->sampler()->times().size(), 10u);
  for (const auto& row : deployment->sampler()->series()) {
    EXPECT_EQ(row.size(), deployment->sampler()->times().size());
  }
}

TEST(TracedDeploymentTest, BatchedClientRecordsBatchWaitSpans) {
  client::ClientOptions copts;
  copts.isolation = client::IsolationLevel::kReadCommitted;
  copts.batch_max = 8;
  copts.batch_max_wait_us = 200;
  TracedRun run = TracedMavRun(copts);
  size_t batch_waits = 0;
  for (const Span& s : run.spans) {
    if (s.kind == SpanKind::kBatchWait) {
      batch_waits++;
      EXPECT_NE(s.trace_id, 0u);
      EXPECT_GE(s.end_us, s.start_us);
      EXPECT_GE(s.arg, 1u) << "kBatchWait arg carries the batch size";
    }
  }
  EXPECT_GT(batch_waits, 0u) << "batched client produced no kBatchWait spans";
}

TEST(TracedDeploymentTest, TracingIsDeterministicAcrossIdenticalRuns) {
  client::ClientOptions copts;
  copts.isolation = client::IsolationLevel::kMonotonicAtomicView;
  std::vector<Span> first = TracedMavRun(copts).spans;
  std::vector<Span> second = TracedMavRun(copts).spans;
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); i++) {
    EXPECT_EQ(first[i].trace_id, second[i].trace_id) << i;
    EXPECT_EQ(first[i].span_id, second[i].span_id) << i;
    EXPECT_EQ(static_cast<int>(first[i].kind),
              static_cast<int>(second[i].kind)) << i;
    EXPECT_EQ(first[i].start_us, second[i].start_us) << i;
    EXPECT_EQ(first[i].end_us, second[i].end_us) << i;
  }
}

}  // namespace
}  // namespace hat::obs
