// Shared helpers for subsystem-level unit tests that need a Partitioner but
// not a full Deployment.

#ifndef HAT_TESTS_TEST_UTIL_H_
#define HAT_TESTS_TEST_UTIL_H_

#include <vector>

#include "hat/server/partitioner.h"

namespace hat::server {

/// Every key is replicated on the same fixed set of nodes; the first node is
/// the master. Mirrors one shard of the paper's cluster-per-copy layout.
class FixedPartitioner : public Partitioner {
 public:
  explicit FixedPartitioner(std::vector<net::NodeId> replicas)
      : replicas_(std::move(replicas)) {}

  std::vector<net::NodeId> ReplicasOf(const Key&) const override {
    return replicas_;
  }
  net::NodeId MasterOf(const Key&) const override { return replicas_.front(); }

 private:
  std::vector<net::NodeId> replicas_;
};

}  // namespace hat::server

#endif  // HAT_TESTS_TEST_UTIL_H_
