// Session guarantee tests (Section 5.1.3): monotonic reads/writes, writes
// follow reads, read-your-writes, PRAM, causal — including the paper's
// impossibility argument that RYW requires stickiness (the T1/T2 partition
// scenario) and positive tests that the sticky implementations hold.

#include <gtest/gtest.h>

#include "hat/adya/phenomena.h"
#include "hat/adya/recorder.h"
#include "hat/client/sync_client.h"
#include "hat/cluster/deployment.h"

namespace hat::client {
namespace {

using cluster::Deployment;
using cluster::DeploymentOptions;

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(); }

  void Build(uint64_t seed = 21) {
    sim_ = std::make_unique<sim::Simulation>(seed);
    auto opts = DeploymentOptions::TwoRegions();
    opts.server.durable = false;
    deployment_ = std::make_unique<Deployment>(*sim_, opts);
  }
  SyncClient Client(ClientOptions opts) {
    return SyncClient(*sim_, deployment_->AddClient(opts));
  }
  void Settle(sim::Duration d = 2 * sim::kSecond) {
    sim_->RunUntil(sim_->Now() + d);
  }
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<Deployment> deployment_;
};

// ---------------------------------------------------------------------------
// Read Your Writes: the Section 5.1.3 impossibility scenario
// ---------------------------------------------------------------------------

// Severs all server-to-server links between clusters (clients unaffected).
void PartitionServerLinks(cluster::Deployment& deployment) {
  for (net::NodeId s0 : deployment.ClusterServers(0)) {
    for (net::NodeId s1 : deployment.ClusterServers(1)) {
      deployment.network().CutLink(s0, s1);
    }
  }
}

TEST_F(SessionTest, RywViolatedWithoutStickinessUnderPartition) {
  // The paper's Section 5.1.3 scenario: T1: wx(1) executes against a
  // server partitioned from the rest; the network topology then changes and
  // the client can only reach a different replica for T2: rx(a).
  ClientOptions opts;
  opts.sticky = false;
  opts.home_cluster = 0;
  opts.read_your_writes = false;
  auto c = Client(opts);

  PartitionServerLinks(*deployment_);
  c.Begin();
  c.Write("x", "1");
  ASSERT_TRUE(c.Commit().ok()) << "transactional availability during partition";

  // Topology change: the client loses cluster 0 and can only reach the
  // (stale) cluster 1.
  for (net::NodeId s0 : deployment_->ClusterServers(0)) {
    deployment_->network().CutLink(c.underlying().id(), s0);
  }
  c.underlying().mutable_options().home_cluster = 1;
  c.Begin();
  auto rv = c.Read("x");
  ASSERT_TRUE(rv.ok());
  EXPECT_FALSE(rv->found) << "non-sticky read missed the session's write";
  ASSERT_TRUE(c.Commit().ok());
}

TEST_F(SessionTest, RywHeldWithStickiness) {
  ClientOptions opts;
  opts.sticky = true;
  opts.home_cluster = 0;
  opts.read_your_writes = true;
  auto c = Client(opts);

  deployment_->PartitionClusters(0, 1);
  c.Begin();
  c.Write("x", "1");
  ASSERT_TRUE(c.Commit().ok());
  c.Begin();
  auto rv = c.Read("x");
  ASSERT_TRUE(rv.ok());
  EXPECT_TRUE(rv->found);
  EXPECT_EQ(rv->value, "1");
  ASSERT_TRUE(c.Commit().ok());
}

TEST_F(SessionTest, RywFloorForcesFreshReadAfterReroute) {
  // With the RYW flag on, a re-routed (non-sticky) client does not return
  // stale data: it retries until the floor is met or times out — under an
  // indefinite partition that is unavailability, the paper's point.
  ClientOptions opts;
  opts.sticky = false;
  opts.home_cluster = 0;
  opts.read_your_writes = true;
  opts.op_timeout = 1 * sim::kSecond;
  opts.rpc_timeout = 200 * sim::kMillisecond;
  auto c = Client(opts);

  PartitionServerLinks(*deployment_);
  c.Begin();
  c.Write("x", "1");
  ASSERT_TRUE(c.Commit().ok());
  for (net::NodeId s0 : deployment_->ClusterServers(0)) {
    deployment_->network().CutLink(c.underlying().id(), s0);
  }
  c.underlying().mutable_options().home_cluster = 1;
  c.Begin();
  auto rv = c.Read("x");
  // Either the client found a replica with its write (impossible here) or
  // it refused to violate RYW.
  EXPECT_FALSE(rv.ok());
  c.Abort();
}

// ---------------------------------------------------------------------------
// Monotonic Reads
// ---------------------------------------------------------------------------

TEST_F(SessionTest, MonotonicReadsPreventTimeTravel) {
  // Session reads fresh data from cluster 0, then is re-routed to a stale
  // cluster 1. Without MR the second read regresses; with MR it does not.
  for (bool mr : {false, true}) {
    Build(mr ? 31 : 32);
    ClientOptions writer_opts;
    writer_opts.home_cluster = 0;
    auto writer = Client(writer_opts);
    writer.Begin();
    writer.Write("x", "v1");
    ASSERT_TRUE(writer.Commit().ok());
    Settle();

    // Partition the clusters, then write v2 visible only in cluster 0.
    deployment_->PartitionClusters(0, 1);
    writer.Begin();
    writer.Write("x", "v2");
    ASSERT_TRUE(writer.Commit().ok());

    ClientOptions opts;
    opts.sticky = false;
    opts.home_cluster = 0;
    opts.monotonic_reads = mr;
    opts.op_timeout = 1 * sim::kSecond;
    opts.rpc_timeout = 200 * sim::kMillisecond;
    auto c = Client(opts);
    // The reader is NOT partitioned from either cluster (fresh client node
    // added after the partition call) — it can reach both.
    c.Begin();
    auto first = c.Read("x");
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(c.Commit().ok());
    if (first->value != "v2") continue;  // read went to the stale side

    c.underlying().mutable_options().home_cluster = 1;  // stale side next
    c.Begin();
    auto second = c.Read("x");
    if (mr) {
      // MR: the stale replica answers kNotYet; the non-sticky client
      // retries cluster 0 and still sees v2.
      ASSERT_TRUE(second.ok());
      EXPECT_EQ(second->value, "v2") << "monotonic reads violated";
    } else {
      ASSERT_TRUE(second.ok());
      EXPECT_EQ(second->value, "v1") << "expected regression without MR";
    }
    if (c.underlying().InTxn()) ASSERT_TRUE(c.Commit().ok());
  }
}

// ---------------------------------------------------------------------------
// Monotonic Writes
// ---------------------------------------------------------------------------

TEST_F(SessionTest, MonotonicWritesHoldByConstruction) {
  // Per-client timestamps are monotonic, and per-item version order is the
  // timestamp order, so a session's writes are never reordered.
  ClientOptions opts;
  opts.home_cluster = 0;
  auto c = Client(opts);
  adya::HistoryRecorder recorder;
  c.underlying().set_observer(&recorder);
  for (int i = 0; i < 5; i++) {
    c.Begin();
    c.Write("x", "v" + std::to_string(i));
    ASSERT_TRUE(c.Commit().ok());
  }
  Settle();
  c.Begin();
  EXPECT_EQ(c.Read("x")->value, "v4");
  ASSERT_TRUE(c.Commit().ok());
  auto report = adya::Analyze(recorder.Finish());
  EXPECT_TRUE(report.MonotonicWrites());
}

// ---------------------------------------------------------------------------
// Writes Follow Reads / causal
// ---------------------------------------------------------------------------

TEST_F(SessionTest, WritesFollowReadsViaDependencies) {
  // Session A writes x. Session B reads x then writes y (with WFR).
  // Session C (causal) reads y; its subsequent read of x must see A's write.
  ClientOptions a_opts;
  a_opts.home_cluster = 0;
  auto a = Client(a_opts);
  a.Begin();
  a.Write("x", "from-a");
  ASSERT_TRUE(a.Commit().ok());
  Settle();

  ClientOptions b_opts;
  b_opts.home_cluster = 0;
  b_opts.writes_follow_reads = true;
  auto b = Client(b_opts);
  b.Begin();
  ASSERT_TRUE(b.Read("x")->found);
  b.Write("y", "from-b");
  ASSERT_TRUE(b.Commit().ok());
  Settle();

  ClientOptions c_opts;
  c_opts.home_cluster = 1;
  c_opts.writes_follow_reads = true;
  auto c = Client(c_opts);
  c.Begin();
  auto y = c.Read("y");
  ASSERT_TRUE(y.ok());
  if (y->found) {
    auto x = c.Read("x");
    ASSERT_TRUE(x.ok());
    EXPECT_TRUE(x->found) << "WFR: y is visible, so its dependency x must be";
    EXPECT_EQ(x->value, "from-a");
  }
  ASSERT_TRUE(c.Commit().ok());
}

TEST_F(SessionTest, CausalSessionNeverSeesEffectBeforeCause) {
  // Full causal config on all clients; run a causal chain across clusters
  // with anti-entropy delays and verify via the Adya checker.
  adya::HistoryRecorder recorder;
  ClientOptions causal;
  causal.EnableCausal();
  causal.home_cluster = 0;
  auto a = Client(causal);
  a.underlying().set_observer(&recorder);
  ClientOptions causal1 = causal;
  causal1.home_cluster = 1;
  auto b = Client(causal1);
  b.underlying().set_observer(&recorder);

  for (int round = 0; round < 5; round++) {
    a.Begin();
    a.Write("chain" + std::to_string(round), "a" + std::to_string(round));
    ASSERT_TRUE(a.Commit().ok());
    Settle(500 * sim::kMillisecond);
    b.Begin();
    auto rv = b.Read("chain" + std::to_string(round));
    ASSERT_TRUE(rv.ok());
    b.Write("echo" + std::to_string(round),
            rv->found ? "saw" : "missed");
    ASSERT_TRUE(b.Commit().ok());
    Settle(500 * sim::kMillisecond);
  }
  auto report = adya::Analyze(recorder.Finish());
  EXPECT_TRUE(report.Causal()) << report.Summary();
}

TEST_F(SessionTest, NewSessionResetsFloors) {
  ClientOptions opts;
  opts.EnablePram();
  opts.home_cluster = 0;
  auto c = Client(opts);
  c.Begin();
  c.Write("x", "v1");
  ASSERT_TRUE(c.Commit().ok());
  EXPECT_EQ(c.underlying().session_id(), 1u);
  c.NewSession();
  EXPECT_EQ(c.underlying().session_id(), 2u);
  // A fresh session has no RYW obligation; reads may be stale but must
  // still complete.
  c.Begin();
  auto rv = c.Read("x");
  ASSERT_TRUE(rv.ok());
  ASSERT_TRUE(c.Commit().ok());
}

// ---------------------------------------------------------------------------
// PRAM composition
// ---------------------------------------------------------------------------

TEST_F(SessionTest, PramSessionHistoryIsClean) {
  adya::HistoryRecorder recorder;
  ClientOptions pram;
  pram.EnablePram();
  pram.home_cluster = 0;
  auto c = Client(pram);
  c.underlying().set_observer(&recorder);
  for (int i = 0; i < 10; i++) {
    c.Begin();
    if (i % 2 == 0) {
      c.Write("k" + std::to_string(i % 3), "v" + std::to_string(i));
    } else {
      ASSERT_TRUE(c.Read("k" + std::to_string(i % 3)).ok());
    }
    ASSERT_TRUE(c.Commit().ok());
  }
  auto report = adya::Analyze(recorder.Finish());
  EXPECT_TRUE(report.Pram()) << report.Summary();
}

}  // namespace
}  // namespace hat::client
