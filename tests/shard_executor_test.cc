// Unit tests for server::ShardExecutor — the deterministic lanes x cores
// queueing model — plus integration tests pinning the properties the rest
// of the repo depends on: bit-identical reproducibility under
// cores_per_server > 1, capacity-normalized utilization, and executor
// counters surfacing through ServerStats.

#include <gtest/gtest.h>

#include <vector>

#include "hat/cluster/deployment.h"
#include "hat/net/rpc.h"
#include "hat/server/shard_executor.h"

namespace hat::server {
namespace {

using cluster::Deployment;
using cluster::DeploymentOptions;

class ShardExecutorTest : public ::testing::Test {
 protected:
  ShardExecutor Make(size_t shards, size_t cores, double dispatch_us = 0) {
    return ShardExecutor(sim_, ShardExecutor::Options{shards, cores,
                                                      dispatch_us});
  }
  sim::Simulation sim_{1};
};

TEST_F(ShardExecutorTest, SingleCoreSerializesEvenAcrossLanes) {
  auto ex = Make(4, 1);
  EXPECT_EQ(ex.Submit(0, 100, nullptr), 100u);
  EXPECT_EQ(ex.Submit(1, 100, nullptr), 200u);  // different lane, same core
  EXPECT_EQ(ex.Submit(ex.global_lane(), 50, nullptr), 250u);
}

TEST_F(ShardExecutorTest, CrossShardWorkOverlapsUpToCoreCount) {
  auto ex = Make(4, 2);
  EXPECT_EQ(ex.Submit(0, 100, nullptr), 100u);
  EXPECT_EQ(ex.Submit(1, 100, nullptr), 100u);  // second core
  // Both cores busy until 100: the third lane queues for a core.
  EXPECT_EQ(ex.Submit(2, 100, nullptr), 200u);
}

TEST_F(ShardExecutorTest, SameLaneSerializesDespiteFreeCores) {
  auto ex = Make(2, 8);
  EXPECT_EQ(ex.Submit(0, 100, nullptr), 100u);
  EXPECT_EQ(ex.Submit(0, 100, nullptr), 200u);  // FIFO per lane
  EXPECT_EQ(ex.Submit(1, 100, nullptr), 100u);  // other lane unaffected
}

TEST_F(ShardExecutorTest, DispatchChargedOnlyOnMultiCoreShardLanes) {
  auto single = Make(2, 1, /*dispatch_us=*/7);
  EXPECT_EQ(single.Submit(0, 100, nullptr), 100u);  // C = 1: no handoff
  EXPECT_EQ(single.stats().dispatches, 0u);

  auto multi = Make(2, 2, /*dispatch_us=*/7);
  EXPECT_EQ(multi.Submit(0, 100, nullptr), 107u);
  EXPECT_EQ(multi.stats().dispatches, 1u);
  // The global lane is the receive path itself: never dispatched.
  EXPECT_EQ(multi.Submit(multi.global_lane(), 100, nullptr), 100u);
  EXPECT_EQ(multi.stats().dispatches, 1u);
}

TEST_F(ShardExecutorTest, SubmitAllCompletesAtLastLane) {
  auto ex = Make(4, 4);
  bool done = false;
  sim::SimTime end = ex.SubmitAll({{0, 100}, {1, 300}, {2, 50}},
                                  [&done]() { done = true; });
  EXPECT_EQ(end, 300u);
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim_.Now(), 300u);
}

TEST_F(ShardExecutorTest, EmptyPlanCompletesImmediately) {
  auto ex = Make(2, 2);
  bool done = false;
  EXPECT_EQ(ex.SubmitAll({}, [&done]() { done = true; }), sim_.Now());
  sim_.Run();
  EXPECT_TRUE(done);
}

TEST_F(ShardExecutorTest, QueueWaitMeasuresLaneAndCoreContention) {
  auto ex = Make(2, 1);
  ex.Submit(0, 100, nullptr);
  ex.Submit(1, 50, nullptr);  // waits 100us for the core
  const auto& stats = ex.stats();
  EXPECT_EQ(stats.queue_wait_us.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.queue_wait_us.min(), 0);
  // Log-bucketed histogram: the 100us wait lands within 1% of 100.
  EXPECT_NEAR(stats.queue_wait_us.max(), 100, 1.5);
}

TEST_F(ShardExecutorTest, PerLaneBusyAndTotalsAgree) {
  auto ex = Make(2, 2);
  ex.Submit(0, 100, nullptr);
  ex.Submit(1, 40, nullptr);
  ex.Submit(ex.global_lane(), 10, nullptr);
  const auto& stats = ex.stats();
  ASSERT_EQ(stats.lane_busy_us.size(), 3u);
  EXPECT_DOUBLE_EQ(stats.lane_busy_us[0], 100);
  EXPECT_DOUBLE_EQ(stats.lane_busy_us[1], 40);
  EXPECT_DOUBLE_EQ(stats.lane_busy_us[2], 10);
  EXPECT_DOUBLE_EQ(stats.busy_us, 150);
  EXPECT_EQ(stats.tasks, 3u);
}

TEST_F(ShardExecutorTest, UtilizationNormalizesByCoreCount) {
  auto ex = Make(4, 4);
  for (size_t lane = 0; lane < 4; lane++) ex.Submit(lane, 100, nullptr);
  // 400us of work on 4 cores over a 100us window: fully busy, not 4x busy.
  EXPECT_DOUBLE_EQ(ex.UtilizationOver(100), 1.0);
  EXPECT_DOUBLE_EQ(ex.LaneUtilizationOver(0, 100), 1.0);
  EXPECT_DOUBLE_EQ(ex.LaneUtilizationOver(ex.global_lane(), 100), 0.0);
}

TEST_F(ShardExecutorTest, QueueDepthTracksBookedBacklogPerLane) {
  auto ex = Make(2, 1);
  EXPECT_EQ(ex.QueueDepth(0), 0u);
  ex.Submit(0, 100, nullptr);   // completes at t=100
  ex.Submit(0, 50, nullptr);    // completes at t=150
  ex.Submit(1, 50, nullptr);    // queued behind the core, completes at t=200
  EXPECT_EQ(ex.QueueDepth(0), 2u);
  EXPECT_EQ(ex.QueueDepth(1), 1u);
  EXPECT_EQ(ex.QueueDepth(ex.global_lane()), 0u);
  sim_.RunUntil(120);
  EXPECT_EQ(ex.QueueDepth(0), 1u) << "the 100us task has completed";
  sim_.RunUntil(200);
  EXPECT_EQ(ex.QueueDepth(0), 0u) << "drained lane reads depth 0";
  EXPECT_EQ(ex.QueueDepth(1), 0u);
}

TEST_F(ShardExecutorTest, QueueDepthSurvivesResetAndDepthSurfacesInStats) {
  auto ex = Make(1, 1);
  ex.Submit(0, 1000, nullptr);
  EXPECT_EQ(ex.QueueDepth(0), 1u);
  ex.Reset();  // crash: the booked backlog is gone with the frontiers
  EXPECT_EQ(ex.QueueDepth(0), 0u);
}

TEST_F(ShardExecutorTest, AddLaneAppendsAfterGlobalLane) {
  auto ex = Make(2, 2);
  ASSERT_EQ(ex.lane_count(), 3u);
  size_t added = ex.AddLane();  // a migrated-in shard's lane
  EXPECT_EQ(added, 3u) << "the global lane stays pinned at index shards";
  EXPECT_EQ(ex.global_lane(), 2u);
  EXPECT_EQ(ex.lane_count(), 4u);
  // The added lane behaves like any shard lane: FIFO and dispatch-charged.
  EXPECT_EQ(ex.Submit(added, 100, nullptr), 100u);
  EXPECT_EQ(ex.Submit(added, 100, nullptr), 200u);
  EXPECT_EQ(ex.QueueDepth(added), 2u);
  const auto& stats = ex.stats();
  ASSERT_EQ(stats.lane_busy_us.size(), 4u);
  EXPECT_DOUBLE_EQ(stats.lane_busy_us[added], 200);
}

TEST_F(ShardExecutorTest, MakespanShrinksLinearlyWithCores) {
  // The tentpole property, asserted at the model level: M tasks spread
  // evenly over C lanes on C cores finish in 1/C of the single-core
  // makespan — same-shard work serializes, cross-shard work overlaps.
  constexpr size_t kTasks = 64;
  constexpr double kCost = 100;
  for (size_t c : {2u, 4u, 8u}) {
    auto baseline = Make(c, 1);
    auto scaled = Make(c, c);
    sim::SimTime base_end = 0, scaled_end = 0;
    for (size_t i = 0; i < kTasks; i++) {
      base_end = baseline.Submit(i % c, kCost, nullptr);
      scaled_end = scaled.Submit(i % c, kCost, nullptr);
    }
    EXPECT_EQ(base_end, kTasks * 100) << c;
    EXPECT_EQ(scaled_end, kTasks * 100 / c) << c;
  }
}

TEST_F(ShardExecutorTest, ResetFreesLanesAndCores) {
  auto ex = Make(2, 1);
  ex.Submit(0, 1000, nullptr);
  ex.Reset();  // crash: queued work dies with the process
  EXPECT_EQ(ex.Submit(0, 100, nullptr), sim_.Now() + 100);
  EXPECT_DOUBLE_EQ(ex.stats().busy_us, 1100);  // stats survive, like crashes
}

// ---------------------------------------------------------------------------
// Integration: the executor behind a ReplicaServer deployment.
// ---------------------------------------------------------------------------

/// A test probe node that can issue raw RPCs to servers.
class Probe : public net::RpcNode {
 public:
  using net::RpcNode::RpcNode;
  void HandleMessage(const net::Envelope&) override {}
};

WriteRecord MakeWrite(const Key& key, const Value& value, uint64_t logical) {
  WriteRecord w;
  w.key = key;
  w.value = value;
  w.ts = {logical, 7};
  return w;
}

/// Everything a run can legitimately differ in: event counts, executor
/// accounting (exact doubles), protocol counters, and folded reads.
struct RunFingerprint {
  uint64_t events = 0;
  std::vector<double> busy;
  std::vector<double> lane_busy;
  std::vector<uint64_t> counters;
  std::vector<std::string> folds;

  bool operator==(const RunFingerprint&) const = default;
};

/// Drives a fixed concurrent workload (client puts + MAV puts + gets fanned
/// out with no waiting, plus digest repair ticking underneath) on a
/// multi-core multi-shard deployment and fingerprints the outcome.
RunFingerprint RunOnce(uint64_t seed) {
  sim::Simulation sim(seed);
  DeploymentOptions opts;
  opts.clusters = {{net::Region::kVirginia, 0}, {net::Region::kVirginia, 1}};
  opts.servers_per_cluster = 2;
  opts.server.shards_per_server = 4;
  opts.server.cores_per_server = 4;
  opts.server.digest_buckets = 64;
  opts.server.digest_sync_interval = 200 * sim::kMillisecond;
  Deployment deployment(sim, opts);
  net::NodeId probe_id = deployment.network().topology().AddNode(
      {net::Region::kVirginia, 0, 999});
  Probe probe(sim, deployment.network(), probe_id);

  for (uint64_t i = 0; i < 200; i++) {
    Key key = "key" + std::to_string(i);
    net::PutRequest put;
    put.write = MakeWrite(key, "v" + std::to_string(i), 10 + i);
    put.mode = i % 3 == 0 ? net::PutMode::kMav : net::PutMode::kEventual;
    if (put.mode == net::PutMode::kMav) put.write.sibs = {key};
    probe.Call(deployment.ReplicaInCluster(key, i % 2), put, 5 * sim::kSecond,
               [](Status, const net::Message*) {});
    net::GetRequest get;
    get.key = "key" + std::to_string(i / 2);
    probe.Call(deployment.ReplicaInCluster(get.key, (i + 1) % 2), get,
               5 * sim::kSecond, [](Status, const net::Message*) {});
  }
  sim.RunUntil(sim.Now() + 3 * sim::kSecond);

  RunFingerprint fp;
  fp.events = sim.events_processed();
  for (size_t s = 0; s < deployment.ServerCount(); s++) {
    const ServerStats& st =
        deployment.server(static_cast<net::NodeId>(s)).stats();
    fp.busy.push_back(st.busy_us);
    fp.busy.push_back(st.queue_wait_us.sum());
    fp.lane_busy.insert(fp.lane_busy.end(), st.lane_busy_us.begin(),
                        st.lane_busy_us.end());
    for (uint64_t c : {st.gets, st.puts, st.ae_records_in, st.ae_records_out,
                       st.mav_promotions, st.exec_tasks, st.exec_dispatches,
                       st.queue_wait_us.count()}) {
      fp.counters.push_back(c);
    }
  }
  for (uint64_t i = 0; i < 200; i++) {
    Key key = "key" + std::to_string(i);
    for (net::NodeId r : deployment.ReplicasOf(key)) {
      auto rv = deployment.server(r).good().Read(key);
      fp.folds.push_back(rv.found ? rv.value : "<none>");
    }
  }
  return fp;
}

TEST(ShardExecutorDeterminismTest, SameSeedSameExecutionWithManyCores) {
  // The executor must not break reproducibility: two runs of the same seed
  // with cores_per_server > 1 and shards_per_server > 1 agree bit for bit
  // on event counts, every executor counter, and every folded value.
  RunFingerprint a = RunOnce(11);
  RunFingerprint b = RunOnce(11);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.busy, b.busy);  // exact double equality, no tolerance
  EXPECT_EQ(a.lane_busy, b.lane_busy);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.folds, b.folds);
  EXPECT_TRUE(a == b);

  // And a different seed genuinely perturbs the execution (the fingerprint
  // is not vacuously constant).
  RunFingerprint c = RunOnce(12);
  EXPECT_FALSE(a == c);
}

TEST(ShardExecutorDeploymentTest, ExecutorCountersSurfaceThroughStats) {
  sim::Simulation sim(3);
  DeploymentOptions opts;
  opts.clusters = {{net::Region::kVirginia, 0}};
  opts.server.shards_per_server = 2;
  opts.server.cores_per_server = 2;
  Deployment deployment(sim, opts);
  net::NodeId probe_id = deployment.network().topology().AddNode(
      {net::Region::kVirginia, 0, 999});
  Probe probe(sim, deployment.network(), probe_id);

  for (uint64_t i = 0; i < 40; i++) {
    net::PutRequest put;
    put.write = MakeWrite("key" + std::to_string(i), "v", 10 + i);
    probe.Call(deployment.ReplicaInCluster(put.write.key, 0), put,
               5 * sim::kSecond, [](Status, const net::Message*) {});
  }
  sim.RunUntil(sim.Now() + sim::kSecond);

  ServerStats total = deployment.TotalServerStats();
  EXPECT_EQ(total.puts, 40u);
  EXPECT_EQ(total.exec_tasks, 40u);  // single replica: no gossip traffic
  EXPECT_EQ(total.exec_dispatches, 40u);  // every put crossed to a shard lane
  ASSERT_EQ(total.lane_busy_us.size(), 3u);  // 2 shard lanes + global
  double lane_sum = 0;
  for (double lane : total.lane_busy_us) lane_sum += lane;
  EXPECT_DOUBLE_EQ(lane_sum, total.busy_us);
  EXPECT_EQ(total.queue_wait_us.count(), 40u);  // one charge per put
}

TEST(ShardExecutorDeploymentTest, ServerUtilizationIsCapacityNormalized) {
  for (size_t cores : {1u, 4u}) {
    sim::Simulation sim(3);
    DeploymentOptions opts;
    opts.clusters = {{net::Region::kVirginia, 0}};
    opts.servers_per_cluster = 1;
    opts.server.shards_per_server = 4;
    opts.server.cores_per_server = cores;
    Deployment deployment(sim, opts);
    net::NodeId probe_id = deployment.network().topology().AddNode(
        {net::Region::kVirginia, 0, 999});
    Probe probe(sim, deployment.network(), probe_id);
    for (uint64_t i = 0; i < 50; i++) {
      net::PutRequest put;
      put.write = MakeWrite("key" + std::to_string(i), "v", 10 + i);
      probe.Call(0, put, 5 * sim::kSecond, [](Status, const net::Message*) {});
    }
    sim.RunUntil(sim.Now() + sim::kSecond);

    const auto& server = deployment.server(0);
    sim::SimTime elapsed = sim.Now();
    double busy = server.stats().busy_us;
    // busy / (cores x elapsed), so a C-core server reports utilization in
    // [0, 1] instead of busy-time-per-wall-time (which can exceed 1).
    EXPECT_DOUBLE_EQ(server.UtilizationOver(elapsed),
                     busy / (static_cast<double>(cores) *
                             static_cast<double>(elapsed)));
    EXPECT_LE(server.UtilizationOver(elapsed), 1.0);
    double lane_sum = 0;
    for (size_t lane = 0; lane < 5; lane++) {
      lane_sum += server.LaneUtilizationOver(lane, elapsed);
    }
    EXPECT_NEAR(lane_sum * static_cast<double>(elapsed), busy, 1e-6);
  }
}

}  // namespace
}  // namespace hat::server
