// Direct unit tests for server::PersistenceManager: good/pending write-through
// round trips a real LocalStore, without a ReplicaServer in the loop.

#include "hat/server/persistence_manager.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

namespace hat::server {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& name) {
    path_ = fs::temp_directory_path() /
            ("hatkv_persist_" + name + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  fs::path path_;
};

WriteRecord MakeWrite(const Key& key, uint64_t logical, const Value& value) {
  WriteRecord w;
  w.key = key;
  w.value = value;
  w.ts = {logical, 7};
  w.sibs = {key, "sibling"};
  return w;
}

struct Recovered {
  std::vector<WriteRecord> good;
  std::vector<WriteRecord> pending;
};

Recovered Recover(PersistenceManager& pm) {
  Recovered out;
  Status s =
      pm.Recover([&](const WriteRecord& w) { out.good.push_back(w); },
                 [&](const WriteRecord& w) { out.pending.push_back(w); });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST(PersistenceManagerTest, DisabledManagerIsInert) {
  PersistenceManager pm("");
  EXPECT_FALSE(pm.enabled());
  pm.PersistGood(MakeWrite("k", 1, "v"));   // must not crash
  pm.PersistPending(MakeWrite("k", 2, "v"));
  pm.ErasePersistedPending(MakeWrite("k", 2, "v"));
  Status s = pm.Recover([](const WriteRecord&) {}, [](const WriteRecord&) {});
  EXPECT_FALSE(s.ok());
}

TEST(PersistenceManagerTest, GoodAndPendingSurviveReopen) {
  TempDir dir("roundtrip");
  {
    PersistenceManager pm(dir.path());
    ASSERT_TRUE(pm.enabled());
    pm.PersistGood(MakeWrite("a", 1, "va"));
    pm.PersistPending(MakeWrite("b", 2, "vb"));
  }
  PersistenceManager pm(dir.path());
  Recovered r = Recover(pm);
  ASSERT_EQ(r.good.size(), 1u);
  EXPECT_EQ(r.good[0].key, "a");
  EXPECT_EQ(r.good[0].value, "va");
  EXPECT_EQ(r.good[0].ts, (Timestamp{1, 7}));
  EXPECT_EQ(r.good[0].sibs, (std::vector<Key>{"a", "sibling"}));
  ASSERT_EQ(r.pending.size(), 1u);
  EXPECT_EQ(r.pending[0].key, "b");
}

TEST(PersistenceManagerTest, ErasePendingRemovesOnlyThatVersion) {
  TempDir dir("erase");
  PersistenceManager pm(dir.path());
  WriteRecord keep = MakeWrite("k", 1, "keep");
  WriteRecord gone = MakeWrite("k", 2, "gone");
  pm.PersistPending(keep);
  pm.PersistPending(gone);
  pm.ErasePersistedPending(gone);
  Recovered r = Recover(pm);
  ASSERT_EQ(r.pending.size(), 1u);
  EXPECT_EQ(r.pending[0].value, "keep");
}

TEST(PersistenceManagerTest, PromotionMovesPendingToGood) {
  TempDir dir("promote");
  PersistenceManager pm(dir.path());
  WriteRecord w = MakeWrite("k", 3, "v");
  pm.PersistPending(w);
  // Promotion path: good copy written, pending copy erased.
  pm.PersistGood(w);
  pm.ErasePersistedPending(w);
  Recovered r = Recover(pm);
  EXPECT_TRUE(r.pending.empty());
  ASSERT_EQ(r.good.size(), 1u);
  EXPECT_EQ(r.good[0].ts, (Timestamp{3, 7}));
}

TEST(PersistenceManagerTest, RecoveryCallbacksMayPersistAgain) {
  TempDir dir("reentrant");
  PersistenceManager pm(dir.path());
  pm.PersistPending(MakeWrite("k", 1, "v"));
  // A pending record re-entering the MAV pipeline persists itself again
  // mid-recovery; the scan must not observe its own writes.
  size_t seen = 0;
  Status s = pm.Recover([](const WriteRecord&) {},
                        [&](const WriteRecord& w) {
                          seen++;
                          pm.PersistPending(w);
                        });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(seen, 1u);
}

}  // namespace
}  // namespace hat::server
