// Direct unit tests for server::PersistenceManager: good/pending write-through
// round trips a real LocalStore, without a ReplicaServer in the loop.

#include "hat/server/persistence_manager.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

namespace hat::server {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& name) {
    path_ = fs::temp_directory_path() /
            ("hatkv_persist_" + name + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  fs::path path_;
};

WriteRecord MakeWrite(const Key& key, uint64_t logical, const Value& value) {
  WriteRecord w;
  w.key = key;
  w.value = value;
  w.ts = {logical, 7};
  w.sibs = {key, "sibling"};
  return w;
}

struct Recovered {
  std::vector<std::pair<size_t, WriteRecord>> good;
  std::vector<std::pair<size_t, WriteRecord>> pending;
};

Recovered Recover(PersistenceManager& pm, size_t shard_count = 1) {
  Recovered out;
  Status s = pm.Recover(
      shard_count,
      [&](size_t shard, const WriteRecord& w) {
        out.good.emplace_back(shard, w);
      },
      [&](size_t shard, const WriteRecord& w) {
        out.pending.emplace_back(shard, w);
      });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST(PersistenceManagerTest, DisabledManagerIsInert) {
  PersistenceManager pm("");
  EXPECT_FALSE(pm.enabled());
  pm.PersistGood(0, MakeWrite("k", 1, "v"));  // must not crash
  pm.PersistPending(0, MakeWrite("k", 2, "v"));
  pm.ErasePersistedPending(0, MakeWrite("k", 2, "v"));
  Status s = pm.Recover(1, [](size_t, const WriteRecord&) {},
                        [](size_t, const WriteRecord&) {});
  EXPECT_FALSE(s.ok());
}

TEST(PersistenceManagerTest, GoodAndPendingSurviveReopen) {
  TempDir dir("roundtrip");
  {
    PersistenceManager pm(dir.path());
    ASSERT_TRUE(pm.enabled());
    pm.PersistGood(0, MakeWrite("a", 1, "va"));
    pm.PersistPending(0, MakeWrite("b", 2, "vb"));
  }
  PersistenceManager pm(dir.path());
  Recovered r = Recover(pm);
  ASSERT_EQ(r.good.size(), 1u);
  EXPECT_EQ(r.good[0].second.key, "a");
  EXPECT_EQ(r.good[0].second.value, "va");
  EXPECT_EQ(r.good[0].second.ts, (Timestamp{1, 7}));
  EXPECT_EQ(r.good[0].second.sibs, (std::vector<Key>{"a", "sibling"}));
  ASSERT_EQ(r.pending.size(), 1u);
  EXPECT_EQ(r.pending[0].second.key, "b");
}

TEST(PersistenceManagerTest, ErasePendingRemovesOnlyThatVersion) {
  TempDir dir("erase");
  PersistenceManager pm(dir.path());
  WriteRecord keep = MakeWrite("k", 1, "keep");
  WriteRecord gone = MakeWrite("k", 2, "gone");
  pm.PersistPending(0, keep);
  pm.PersistPending(0, gone);
  pm.ErasePersistedPending(0, gone);
  Recovered r = Recover(pm);
  ASSERT_EQ(r.pending.size(), 1u);
  EXPECT_EQ(r.pending[0].second.value, "keep");
}

TEST(PersistenceManagerTest, PromotionMovesPendingToGood) {
  TempDir dir("promote");
  PersistenceManager pm(dir.path());
  WriteRecord w = MakeWrite("k", 3, "v");
  pm.PersistPending(0, w);
  // Promotion path: good copy written, pending copy erased.
  pm.PersistGood(0, w);
  pm.ErasePersistedPending(0, w);
  Recovered r = Recover(pm);
  EXPECT_TRUE(r.pending.empty());
  ASSERT_EQ(r.good.size(), 1u);
  EXPECT_EQ(r.good[0].second.ts, (Timestamp{3, 7}));
}

TEST(PersistenceManagerTest, RecoveryCallbacksMayPersistAgain) {
  TempDir dir("reentrant");
  PersistenceManager pm(dir.path());
  pm.PersistPending(0, MakeWrite("k", 1, "v"));
  // A pending record re-entering the MAV pipeline persists itself again
  // mid-recovery; the scan must not observe its own writes.
  size_t seen = 0;
  Status s = pm.Recover(1, [](size_t, const WriteRecord&) {},
                        [&](size_t, const WriteRecord& w) {
                          seen++;
                          pm.PersistPending(0, w);
                        });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(seen, 1u);
}

TEST(PersistenceManagerTest, ShardKeyspacesAreDisjoint) {
  // Records persisted under different shards recover shard by shard: a
  // RecoverShard replays exactly its shard's records, and the full Recover
  // tags each record with the shard it was persisted under.
  TempDir dir("shards");
  PersistenceManager pm(dir.path());
  pm.PersistGood(0, MakeWrite("a", 1, "v0"));
  pm.PersistGood(1, MakeWrite("b", 2, "v1"));
  pm.PersistGood(2, MakeWrite("c", 3, "v2"));
  pm.PersistPending(1, MakeWrite("d", 4, "p1"));

  std::vector<Key> shard1_good, shard1_pending;
  ASSERT_TRUE(pm.RecoverShard(
                    1,
                    [&](const WriteRecord& w) {
                      shard1_good.push_back(w.key);
                    },
                    [&](const WriteRecord& w) {
                      shard1_pending.push_back(w.key);
                    })
                  .ok());
  EXPECT_EQ(shard1_good, (std::vector<Key>{"b"}));
  EXPECT_EQ(shard1_pending, (std::vector<Key>{"d"}));

  Recovered all = Recover(pm, /*shard_count=*/3);
  ASSERT_EQ(all.good.size(), 3u);
  for (const auto& [shard, w] : all.good) {
    if (w.key == "a") {
      EXPECT_EQ(shard, 0u);
    } else if (w.key == "b") {
      EXPECT_EQ(shard, 1u);
    } else if (w.key == "c") {
      EXPECT_EQ(shard, 2u);
    }
  }
  ASSERT_EQ(all.pending.size(), 1u);
  EXPECT_EQ(all.pending[0].first, 1u);
  // A Recover scoped to fewer shards replays only those prefixes.
  Recovered partial = Recover(pm, /*shard_count=*/1);
  ASSERT_EQ(partial.good.size(), 1u);
  EXPECT_EQ(partial.good[0].second.key, "a");
}

TEST(PersistenceManagerTest, CheckpointBoundsRecoveryToTail) {
  TempDir dir("checkpoint");
  PersistenceManager pm(dir.path());
  // A long good history for one key plus a survivor for another.
  std::vector<WriteRecord> live;
  for (uint64_t t = 1; t <= 20; t++) pm.PersistGood(0, MakeWrite("a", t, "v"));
  pm.PersistGood(0, MakeWrite("b", 1, "vb"));
  // In-memory GC kept only the newest version of "a"; checkpoint snapshots
  // exactly the live set.
  live.push_back(MakeWrite("a", 20, "v"));
  live.push_back(MakeWrite("b", 1, "vb"));
  ASSERT_TRUE(pm.CheckpointShard(0, /*epoch=*/3,
                                 [&](const auto& sink) {
                                   for (const auto& w : live) sink(w);
                                 })
                  .ok());
  auto marker = pm.ReadCheckpointMarker(0);
  ASSERT_TRUE(marker.ok());
  EXPECT_EQ(marker->epoch, 3u);
  EXPECT_EQ(marker->records, 2u);

  // Tail written after the checkpoint.
  pm.PersistGood(0, MakeWrite("a", 21, "v21"));

  Recovered r = Recover(pm);
  // 2 checkpoint records + 1 tail record — not the 21-version history.
  ASSERT_EQ(r.good.size(), 3u);
  EXPECT_EQ(pm.recover_stats().checkpoint_records, 2u);
  EXPECT_EQ(pm.recover_stats().tail_records, 1u);
}

TEST(PersistenceManagerTest, RecheckpointDropsDeadVersions) {
  TempDir dir("recheckpoint");
  PersistenceManager pm(dir.path());
  auto checkpoint = [&](std::vector<WriteRecord> live) {
    ASSERT_TRUE(pm.CheckpointShard(0, 0,
                                   [&](const auto& sink) {
                                     for (const auto& w : live) sink(w);
                                   })
                    .ok());
  };
  checkpoint({MakeWrite("a", 1, "v1"), MakeWrite("a", 2, "v2")});
  // Version (a, 1) died (GC) before the second checkpoint: its old
  // checkpoint record must not resurface on recovery.
  checkpoint({MakeWrite("a", 2, "v2"), MakeWrite("c", 5, "vc")});
  Recovered r = Recover(pm);
  ASSERT_EQ(r.good.size(), 2u);
  EXPECT_EQ(r.good[0].second.key, "a");
  EXPECT_EQ(r.good[0].second.ts, (Timestamp{2, 7}));
  EXPECT_EQ(r.good[1].second.key, "c");
}

TEST(PersistenceManagerTest, CheckpointSurvivesReopenAndErase) {
  TempDir dir("checkpoint_reopen");
  {
    PersistenceManager pm(dir.path());
    pm.PersistGood(0, MakeWrite("a", 1, "va"));
    ASSERT_TRUE(pm.CheckpointShard(0, 1,
                                   [&](const auto& sink) {
                                     sink(MakeWrite("a", 1, "va"));
                                   })
                    .ok());
    EXPECT_TRUE(pm.HasShardData());  // checkpoint records count as data
  }
  PersistenceManager pm(dir.path());
  Recovered r = Recover(pm);
  ASSERT_EQ(r.good.size(), 1u);
  EXPECT_EQ(r.good[0].second.value, "va");
  // EraseShard tombstones the checkpoint keyspace and its marker too.
  ASSERT_TRUE(pm.EraseShard(0).ok());
  EXPECT_FALSE(pm.HasShardData());
  EXPECT_FALSE(pm.ReadCheckpointMarker(0).ok());
  Recovered empty = Recover(pm);
  EXPECT_TRUE(empty.good.empty());
}

}  // namespace
}  // namespace hat::server
