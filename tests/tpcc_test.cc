// TPC-C application tests (paper Section 6.2): four of five transactions
// run correctly as HATs; sequential ID assignment and Delivery idempotence
// require unavailable coordination; MAV maintains the cross-table integrity
// constraints (Consistency Condition 1, order/order-line foreign keys).

#include <gtest/gtest.h>

#include <set>

#include "hat/client/sync_client.h"
#include "hat/cluster/deployment.h"
#include "hat/common/codec.h"
#include "hat/harness/driver.h"
#include "hat/workload/tpcc.h"

namespace hat::workload {
namespace {

using client::ClientOptions;
using client::IsolationLevel;
using client::SyncClient;
using client::SystemMode;
using cluster::Deployment;
using cluster::DeploymentOptions;

class TpccSystemTest : public ::testing::Test {
 protected:
  void Build(uint64_t seed = 61, bool single_datacenter = false) {
    sim_ = std::make_unique<sim::Simulation>(seed);
    auto dopts = single_datacenter ? DeploymentOptions::SingleDatacenter()
                                   : DeploymentOptions::TwoRegions();
    dopts.server.durable = false;
    deployment_ = std::make_unique<Deployment>(*sim_, dopts);
  }

  TpccConfig SmallConfig() {
    TpccConfig config;
    config.warehouses = 1;
    config.districts_per_warehouse = 2;
    config.customers_per_district = 5;
    config.items = 20;
    return config;
  }

  void Populate(const TpccConfig& config) {
    ClientOptions opts;
    auto& loader_client = deployment_->AddClient(opts);
    SyncClient loader(*sim_, loader_client);
    ASSERT_TRUE(PopulateTpcc(loader, config).ok());
    Settle();
  }

  SyncClient Client(ClientOptions opts = {}) {
    return SyncClient(*sim_, deployment_->AddClient(opts));
  }

  void Settle(sim::Duration d = 2 * sim::kSecond) {
    sim_->RunUntil(sim_->Now() + d);
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<Deployment> deployment_;
};

TEST_F(TpccSystemTest, PopulateSeedsCatalogAndStock) {
  Build();
  auto config = SmallConfig();
  Populate(config);
  auto c = Client();
  c.Begin();
  EXPECT_EQ(*c.ReadInt(TpccKeys::Stock(0, 3)), config.initial_stock);
  EXPECT_GT(*c.ReadInt(TpccKeys::ItemPrice(3)), 0);
  EXPECT_EQ(*c.ReadInt(TpccKeys::WarehouseYtd(0)), 0);
  ASSERT_TRUE(c.Commit().ok());
}

TEST_F(TpccSystemTest, NewOrderPlacesOrderWithLinesAndMarker) {
  Build();
  auto config = SmallConfig();
  Populate(config);

  ClientOptions mav;
  mav.isolation = IsolationLevel::kMonotonicAtomicView;
  auto& txn_client = deployment_->AddClient(mav);
  TpccExecutor exec(txn_client, config);

  NewOrderParams params;
  params.w = 0;
  params.d = 1;
  params.c = 2;
  params.lines = {{3, 2}, {4, 1}};
  NewOrderResult result;
  bool done = false;
  exec.NewOrder(params, [&](NewOrderResult r) {
    result = std::move(r);
    done = true;
  });
  while (!done && sim_->Step()) {
  }
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(result.oid.empty());
  Settle();

  auto c = Client();
  c.Begin();
  auto order = c.Read(TpccKeys::Order(0, 1, result.oid));
  ASSERT_TRUE(order.ok());
  ASSERT_TRUE(order->found);
  int cust = 0, lines = 0;
  int64_t total = 0;
  ASSERT_TRUE(DecodeOrderRecord(order->value, &cust, &lines, &total));
  EXPECT_EQ(cust, 2);
  EXPECT_EQ(lines, 2);
  EXPECT_GT(total, 0);
  auto marker = c.Read(TpccKeys::NewOrderMarker(0, 1, result.oid));
  ASSERT_TRUE(marker.ok());
  EXPECT_EQ(marker->value, "pending");
  // Stock decremented (or restocked per the rule).
  EXPECT_NE(*c.ReadInt(TpccKeys::Stock(0, 3)), 0);
  ASSERT_TRUE(c.Commit().ok());
}

TEST_F(TpccSystemTest, PaymentMaintainsConsistencyCondition1) {
  // Consistency Condition 1: warehouse YTD == sum of district YTDs.
  // Payments are commutative deltas, so the condition holds even with
  // concurrent clients across clusters — on every replica after quiescence.
  Build();
  auto config = SmallConfig();
  Populate(config);

  harness::TpccMix mix;
  mix.new_order = 0;
  mix.payment = 100;
  mix.order_status = mix.delivery = mix.stock_level = 0;
  ClientOptions copts;
  harness::TpccDriver driver(*deployment_, config, mix, copts,
                             /*num_clients=*/6, /*seed=*/3);
  auto result = driver.Run(sim::kSecond, 10 * sim::kSecond);
  ASSERT_GT(result.workload.committed, 50u);
  Settle(5 * sim::kSecond);

  auto c = Client();
  c.Begin();
  int64_t w_ytd = *c.ReadInt(TpccKeys::WarehouseYtd(0));
  int64_t district_sum = 0;
  for (int d = 0; d < config.districts_per_warehouse; d++) {
    district_sum += *c.ReadInt(TpccKeys::DistrictYtd(0, d));
  }
  EXPECT_GT(w_ytd, 0);
  EXPECT_EQ(w_ytd, district_sum);
  ASSERT_TRUE(c.Commit().ok());
}

TEST_F(TpccSystemTest, HatOrderIdsUniqueButNotSequential) {
  Build();
  auto config = SmallConfig();
  config.sequential_order_ids = false;  // HAT-compatible IDs
  Populate(config);

  harness::TpccMix mix;
  mix.new_order = 100;
  mix.payment = mix.order_status = mix.delivery = mix.stock_level = 0;
  ClientOptions copts;
  copts.isolation = IsolationLevel::kMonotonicAtomicView;
  harness::TpccDriver driver(*deployment_, config, mix, copts, 6, 5);
  auto result = driver.Run(sim::kSecond, 10 * sim::kSecond);
  ASSERT_GT(result.orders_placed, 50u);
  EXPECT_EQ(result.duplicate_order_ids, 0u)
      << "timestamp-derived IDs must be unique";
}

TEST_F(TpccSystemTest, SequentialIdsViolatedUnderHat) {
  // TPC-C-compliant sequential IDs need Lost Update prevention; under HAT
  // isolation concurrent New-Orders double-assign IDs (Section 6.2).
  Build();
  auto config = SmallConfig();
  config.districts_per_warehouse = 1;  // maximize counter contention
  config.sequential_order_ids = true;
  Populate(config);

  harness::TpccMix mix;
  mix.new_order = 100;
  mix.payment = mix.order_status = mix.delivery = mix.stock_level = 0;
  ClientOptions copts;
  harness::TpccDriver driver(*deployment_, config, mix, copts, 6, 7);
  auto result = driver.Run(sim::kSecond, 10 * sim::kSecond);
  ASSERT_GT(result.orders_placed, 20u);
  EXPECT_GT(result.duplicate_order_ids, 0u)
      << "expected duplicate sequential IDs under HAT execution";
}

TEST_F(TpccSystemTest, SequentialIdsCorrectUnderLocking) {
  // In-datacenter deployment: locking New-Orders take ~10 lock round trips
  // each, which over the WAN is seconds per transaction — the very cost the
  // paper quantifies. Correctness of sequential assignment is a local
  // question.
  Build(61, /*single_datacenter=*/true);
  auto config = SmallConfig();
  config.districts_per_warehouse = 1;
  config.sequential_order_ids = true;
  Populate(config);

  harness::TpccMix mix;
  mix.new_order = 100;
  mix.payment = mix.order_status = mix.delivery = mix.stock_level = 0;
  ClientOptions copts;
  copts.mode = SystemMode::kLocking;
  harness::TpccDriver driver(*deployment_, config, mix, copts, 4, 9);
  auto result = driver.Run(sim::kSecond, 10 * sim::kSecond);
  ASSERT_GT(result.orders_placed, 10u);
  EXPECT_EQ(result.duplicate_order_ids, 0u);
  EXPECT_LE(result.max_id_gap, 1) << "sequential IDs must not skip";
}

TEST_F(TpccSystemTest, DeliveryDoubleDeliversUnderHat) {
  // Delivery is non-monotonic: concurrent deliveries of one district both
  // observe the same pending order (Lost Update on the marker) and
  // double-bill (Section 6.2's idempotence discussion).
  Build();
  auto config = SmallConfig();
  config.districts_per_warehouse = 1;
  Populate(config);

  harness::TpccMix mix;
  mix.new_order = 40;
  mix.payment = 0;
  mix.order_status = 0;
  mix.delivery = 60;
  mix.stock_level = 0;
  ClientOptions copts;
  harness::TpccDriver driver(*deployment_, config, mix, copts, 8, 11);
  auto result = driver.Run(sim::kSecond, 20 * sim::kSecond);
  ASSERT_GT(result.deliveries, 10u);
  EXPECT_GT(result.duplicate_deliveries, 0u)
      << "expected double delivery under concurrent HAT execution";
}

TEST_F(TpccSystemTest, MavPreventsForeignKeyAnomalies) {
  // Order-Status under MAV: if the order row is visible, its order lines
  // must be too (atomic multi-key visibility). Under RC they can be torn.
  for (bool mav : {true, false}) {
    Build(mav ? 71 : 72);
    auto config = SmallConfig();
    Populate(config);

    harness::TpccMix mix;
    mix.new_order = 60;
    mix.payment = 0;
    mix.order_status = 40;
    mix.delivery = mix.stock_level = 0;
    ClientOptions copts;
    copts.isolation = mav ? IsolationLevel::kMonotonicAtomicView
                          : IsolationLevel::kReadCommitted;
    harness::TpccDriver driver(*deployment_, config, mix, copts, 8,
                               mav ? 13 : 14);
    auto result = driver.Run(sim::kSecond, 20 * sim::kSecond);
    ASSERT_GT(result.order_status_checks, 20u);
    if (mav) {
      EXPECT_EQ(result.fk_violations, 0u)
          << "MAV must never show an order without its lines";
    }
    // RC violations are timing-dependent; we only require that MAV is clean
    // (the RC run shares the code path, demonstrating the mechanism is MAV).
  }
}

TEST_F(TpccSystemTest, ReadOnlyTransactionsRunDuringPartition) {
  // Order-Status and Stock-Level are read-only and HAT-safe: they commit
  // even while the clusters are partitioned.
  Build();
  auto config = SmallConfig();
  Populate(config);
  deployment_->PartitionClusters(0, 1);

  ClientOptions copts;
  copts.op_timeout = 3 * sim::kSecond;
  copts.rpc_timeout = 500 * sim::kMillisecond;
  auto& txn_client = deployment_->AddClient(copts);
  TpccExecutor exec(txn_client, config);

  bool done = false;
  OrderStatusResult os_result;
  exec.OrderStatus(0, 0, 1, [&](OrderStatusResult r) {
    os_result = std::move(r);
    done = true;
  });
  while (!done && sim_->Step()) {
  }
  EXPECT_TRUE(os_result.status.ok());

  done = false;
  Status sl_status;
  exec.StockLevel(0, 0, [&](Status s, int) {
    sl_status = std::move(s);
    done = true;
  });
  while (!done && sim_->Step()) {
  }
  EXPECT_TRUE(sl_status.ok());
}

TEST_F(TpccSystemTest, FullMixRunsCleanlyUnderMav) {
  Build();
  auto config = SmallConfig();
  Populate(config);
  harness::TpccMix mix;  // standard 45/43/4/4/4
  ClientOptions copts;
  copts.isolation = IsolationLevel::kMonotonicAtomicView;
  harness::TpccDriver driver(*deployment_, config, mix, copts, 8, 17);
  auto result = driver.Run(sim::kSecond, 15 * sim::kSecond);
  EXPECT_GT(result.workload.committed, 100u);
  EXPECT_EQ(result.workload.unavailable, 0u);
  EXPECT_GT(result.orders_placed, 0u);
  EXPECT_EQ(result.duplicate_order_ids, 0u);
}

}  // namespace
}  // namespace hat::workload
