// Fault-injection tests: flapping partitions, asymmetric link failures,
// server crashes mid-workload, and randomized link chaos — verifying the
// paper's availability and convergence claims hold under messier failure
// patterns than a single clean partition.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "hat/adya/phenomena.h"
#include "hat/adya/recorder.h"
#include "hat/client/txn_client.h"
#include "hat/cluster/deployment.h"
#include "hat/common/rng.h"

namespace hat {
namespace {

using client::ClientOptions;
using client::IsolationLevel;
using client::TxnClient;
using cluster::Deployment;
using cluster::DeploymentOptions;

/// Closed-loop register workload over `clients`, recording a history.
class FaultWorkload {
 public:
  FaultWorkload(Deployment& deployment, ClientOptions base, int num_clients,
                uint64_t seed)
      : deployment_(deployment), rng_(seed) {
    for (int i = 0; i < num_clients; i++) {
      ClientOptions opts = base;
      opts.home_cluster = i % deployment.NumClusters();
      opts.op_timeout = 3 * sim::kSecond;
      opts.rpc_timeout = 400 * sim::kMillisecond;
      clients_.push_back(&deployment.AddClient(opts));
      clients_.back()->set_observer(&recorder_);
      rngs_.push_back(rng_.Fork(i));
      remaining_.push_back(40);
    }
  }

  void Start() {
    for (size_t c = 0; c < clients_.size(); c++) Loop(c);
  }

  adya::History Finish() { return recorder_.Finish(); }

  uint64_t committed() const {
    uint64_t n = 0;
    for (const auto* c : clients_) n += c->stats().txns_committed;
    return n;
  }
  uint64_t unavailable() const {
    uint64_t n = 0;
    for (const auto* c : clients_) n += c->stats().txns_unavailable;
    return n;
  }

 private:
  void Loop(size_t c) {
    if (remaining_[c]-- <= 0) return;
    TxnClient* client = clients_[c];
    client->Begin();
    Key key = "reg" + std::to_string(rngs_[c].NextBelow(6));
    if (rngs_[c].NextBool(0.5)) {
      client->Read(key, [this, c, client, key](Status s, ReadVersion) {
        if (!s.ok()) {
          client->Abort();
          Loop(c);
          return;
        }
        client->Write(key, "v" + std::to_string(rngs_[c].NextUint64() % 997));
        client->Commit([this, c](Status) { Loop(c); });
      });
    } else {
      client->Write(key, "v" + std::to_string(rngs_[c].NextUint64() % 997));
      client->Commit([this, c](Status) { Loop(c); });
    }
  }

  Deployment& deployment_;
  Rng rng_;
  std::vector<TxnClient*> clients_;
  std::vector<Rng> rngs_;
  std::vector<int> remaining_;
  adya::HistoryRecorder recorder_;
};

void ExpectConverged(Deployment& deployment, int num_keys) {
  for (int k = 0; k < num_keys; k++) {
    Key key = "reg" + std::to_string(k);
    auto replicas = deployment.ReplicasOf(key);
    auto first = deployment.server(replicas[0]).good().Read(key);
    for (size_t r = 1; r < replicas.size(); r++) {
      auto other = deployment.server(replicas[r]).good().Read(key);
      EXPECT_EQ(first.value, other.value) << key << " replica " << r;
      EXPECT_EQ(first.ts, other.ts) << key << " replica " << r;
    }
  }
}

TEST(FaultsTest, FlappingPartitionsNeverBlockStickyClients) {
  sim::Simulation sim(501);
  auto dopts = DeploymentOptions::TwoRegions();
  dopts.server.durable = false;
  Deployment deployment(sim, dopts);

  ClientOptions opts;  // sticky RC
  FaultWorkload workload(deployment, opts, 4, 501);
  workload.Start();

  // Four partition/heal cycles while the workload runs.
  for (int cycle = 0; cycle < 4; cycle++) {
    sim.After((1 + 2 * cycle) * sim::kSecond,
              [&deployment]() { deployment.PartitionClusters(0, 1); });
    sim.After((2 + 2 * cycle) * sim::kSecond,
              [&deployment]() { deployment.Heal(); });
  }
  sim.RunUntil(sim.Now() + 120 * sim::kSecond);
  sim.RunUntil(sim.Now() + 5 * sim::kSecond);  // quiesce

  EXPECT_EQ(workload.committed(), 4u * 40u)
      << "sticky HAT clients must commit every transaction through flaps";
  EXPECT_EQ(workload.unavailable(), 0u);
  ExpectConverged(deployment, 6);
  auto report = adya::Analyze(workload.Finish());
  EXPECT_TRUE(report.ReadCommitted()) << report.Summary();
}

TEST(FaultsTest, AsymmetricLinkCutsStillConverge) {
  // Cut only *some* cross-cluster links: gossip must route around via
  // retransmission once the cuts heal; clients never notice.
  sim::Simulation sim(502);
  auto dopts = DeploymentOptions::TwoRegions();
  dopts.server.durable = false;
  Deployment deployment(sim, dopts);

  // Sever half the cross-cluster links only.
  auto c0 = deployment.ClusterServers(0);
  auto c1 = deployment.ClusterServers(1);
  for (size_t i = 0; i < c0.size(); i++) {
    for (size_t j = 0; j < c1.size(); j++) {
      if ((i + j) % 2 == 0) deployment.network().CutLink(c0[i], c1[j]);
    }
  }

  ClientOptions opts;
  FaultWorkload workload(deployment, opts, 4, 502);
  workload.Start();
  sim.RunUntil(sim.Now() + 60 * sim::kSecond);
  EXPECT_EQ(workload.committed(), 4u * 40u);

  deployment.Heal();
  sim.RunUntil(sim.Now() + 5 * sim::kSecond);
  ExpectConverged(deployment, 6);
}

TEST(FaultsTest, CrashedServerRepopulatesViaDigestSync) {
  sim::Simulation sim(503);
  auto dopts = DeploymentOptions::TwoRegions();
  dopts.server.durable = false;
  dopts.server.digest_sync_interval = 500 * sim::kMillisecond;
  Deployment deployment(sim, dopts);

  ClientOptions opts;
  FaultWorkload workload(deployment, opts, 4, 503);
  workload.Start();
  sim.RunUntil(sim.Now() + 3 * sim::kSecond);

  // Crash one server of cluster 0 mid-workload (all volatile state lost).
  net::NodeId victim = deployment.ClusterServers(0)[1];
  deployment.server(victim).Crash();

  sim.RunUntil(sim.Now() + 120 * sim::kSecond);
  sim.RunUntil(sim.Now() + 10 * sim::kSecond);  // digest rounds

  EXPECT_EQ(workload.committed(), 4u * 40u)
      << "a crashed replica must not block HAT clients (others answer)";
  ExpectConverged(deployment, 6);
}

class LinkChaosTest : public ::testing::TestWithParam<int> {};

TEST_P(LinkChaosTest, RandomCutsEventuallyConverge) {
  sim::Simulation sim(600 + static_cast<uint64_t>(GetParam()));
  auto dopts = DeploymentOptions::TwoRegions();
  dopts.server.durable = false;
  Deployment deployment(sim, dopts);

  ClientOptions opts;
  opts.isolation = IsolationLevel::kMonotonicAtomicView;
  FaultWorkload workload(deployment, opts, 4, 600 + GetParam());
  workload.Start();

  // Chaos: every 500ms, randomly cut or restore one cross-cluster link.
  auto chaos_rng = std::make_shared<Rng>(900 + GetParam());
  auto chaos = std::make_shared<std::function<void()>>();
  auto* sim_ptr = &sim;
  auto* dep_ptr = &deployment;
  int chaos_ticks = 20;
  *chaos = [sim_ptr, dep_ptr, chaos_rng, chaos, &chaos_ticks]() {
    if (chaos_ticks-- <= 0) {
      dep_ptr->Heal();
      return;
    }
    auto c0 = dep_ptr->ClusterServers(0);
    auto c1 = dep_ptr->ClusterServers(1);
    net::NodeId a = c0[chaos_rng->NextBelow(c0.size())];
    net::NodeId b = c1[chaos_rng->NextBelow(c1.size())];
    if (chaos_rng->NextBool(0.6)) {
      dep_ptr->network().CutLink(a, b);
    } else {
      dep_ptr->network().RestoreLink(a, b);
    }
    sim_ptr->After(500 * sim::kMillisecond, [chaos]() { (*chaos)(); });
  };
  sim.After(sim::kSecond, [chaos]() { (*chaos)(); });

  sim.RunUntil(sim.Now() + 200 * sim::kSecond);
  sim.RunUntil(sim.Now() + 10 * sim::kSecond);

  EXPECT_EQ(workload.committed(), 4u * 40u);
  ExpectConverged(deployment, 6);
  auto report = adya::Analyze(workload.Finish());
  EXPECT_TRUE(report.MonotonicAtomicView()) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkChaosTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace hat
