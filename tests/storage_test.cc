// Unit tests for the storage engine substrate: WAL framing/replay, sorted
// tables, the LocalStore (memtable + runs + recovery), including a
// model-based property test against std::map.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>

#include "hat/common/rng.h"
#include "hat/storage/local_store.h"
#include "hat/storage/table.h"
#include "hat/storage/wal.h"

namespace hat::storage {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& name) {
    path_ = fs::temp_directory_path() /
            ("hatkv_test_" + name + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string path() const { return path_.string(); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

// --------------------------------- WAL ------------------------------------

TEST(WalTest, AppendAndReplay) {
  TempDir dir("wal1");
  std::string path = dir.File("wal.log");
  {
    auto w = WalWriter::Open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append("first").ok());
    ASSERT_TRUE(w->Append("second").ok());
    ASSERT_TRUE(w->Sync().ok());
  }
  std::vector<std::string> records;
  auto n = WalReplay(path, [&](std::string_view p) {
    records.emplace_back(p);
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(records, (std::vector<std::string>{"first", "second"}));
}

TEST(WalTest, MissingFileReplaysNothing) {
  TempDir dir("wal2");
  auto n = WalReplay(dir.File("absent.log"), [](std::string_view) {});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(WalTest, AppendAfterReopenPreservesOldRecords) {
  TempDir dir("wal3");
  std::string path = dir.File("wal.log");
  {
    auto w = WalWriter::Open(path);
    ASSERT_TRUE(w->Append("a").ok());
    ASSERT_TRUE(w->Sync().ok());
  }
  {
    auto w = WalWriter::Open(path);
    ASSERT_TRUE(w->Append("b").ok());
    ASSERT_TRUE(w->Sync().ok());
  }
  int count = 0;
  ASSERT_TRUE(WalReplay(path, [&](std::string_view) { count++; }).ok());
  EXPECT_EQ(count, 2);
}

TEST(WalTest, TornTailIsDiscarded) {
  TempDir dir("wal4");
  std::string path = dir.File("wal.log");
  {
    auto w = WalWriter::Open(path);
    ASSERT_TRUE(w->Append("intact").ok());
    ASSERT_TRUE(w->Append("to-be-torn").ok());
    ASSERT_TRUE(w->Sync().ok());
  }
  // Tear the last record: truncate 3 bytes.
  auto size = fs::file_size(path);
  fs::resize_file(path, size - 3);
  std::vector<std::string> records;
  auto n = WalReplay(path, [&](std::string_view p) {
    records.emplace_back(p);
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(records, std::vector<std::string>{"intact"});
}

TEST(WalTest, CorruptPayloadStopsReplay) {
  TempDir dir("wal5");
  std::string path = dir.File("wal.log");
  {
    auto w = WalWriter::Open(path);
    ASSERT_TRUE(w->Append("good").ok());
    ASSERT_TRUE(w->Append("evil-payload").ok());
    ASSERT_TRUE(w->Sync().ok());
  }
  // Flip one byte inside the second record's payload.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-3, std::ios::end);
  f.put('X');
  f.close();
  int count = 0;
  ASSERT_TRUE(WalReplay(path, [&](std::string_view) { count++; }).ok());
  EXPECT_EQ(count, 1);
}

TEST(WalTest, EmptyPayloadAllowed) {
  TempDir dir("wal6");
  std::string path = dir.File("wal.log");
  auto w = WalWriter::Open(path);
  ASSERT_TRUE(w->Append("").ok());
  ASSERT_TRUE(w->Sync().ok());
  int count = 0;
  ASSERT_TRUE(WalReplay(path, [&](std::string_view p) {
                EXPECT_TRUE(p.empty());
                count++;
              }).ok());
  EXPECT_EQ(count, 1);
}

// -------------------------------- Table -----------------------------------

TEST(TableTest, BuildAndPointLookup) {
  TempDir dir("tbl1");
  std::string path = dir.File("t.tbl");
  {
    auto b = TableBuilder::Create(path);
    ASSERT_TRUE(b.ok());
    for (int i = 0; i < 100; i++) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%04d", i);
      ASSERT_TRUE(b->Add(key, "value" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(b->Finish().ok());
  }
  auto r = TableReader::Open(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->entries(), 100u);
  EXPECT_EQ(*r->Get("key0042"), "value42");
  EXPECT_EQ(*r->Get("key0000"), "value0");
  EXPECT_EQ(*r->Get("key0099"), "value99");
  EXPECT_TRUE(r->Get("key0100").status().IsNotFound());
  EXPECT_TRUE(r->Get("aaa").status().IsNotFound());
  EXPECT_TRUE(r->Get("zzz").status().IsNotFound());
}

TEST(TableTest, RejectsOutOfOrderKeys) {
  TempDir dir("tbl2");
  auto b = TableBuilder::Create(dir.File("t.tbl"));
  ASSERT_TRUE(b->Add("b", "1").ok());
  EXPECT_FALSE(b->Add("a", "2").ok());
  EXPECT_FALSE(b->Add("b", "3").ok());  // duplicates rejected too
}

TEST(TableTest, ScanRange) {
  TempDir dir("tbl3");
  std::string path = dir.File("t.tbl");
  {
    auto b = TableBuilder::Create(path);
    for (char c = 'a'; c <= 'z'; c++) {
      ASSERT_TRUE(b->Add(std::string(1, c), std::string(1, c)).ok());
    }
    ASSERT_TRUE(b->Finish().ok());
  }
  auto r = TableReader::Open(path);
  std::string seen;
  ASSERT_TRUE(r->Scan("d", "h", [&](std::string_view k, std::string_view) {
                seen += k;
              }).ok());
  EXPECT_EQ(seen, "defg");
}

TEST(TableTest, EmptyTableRoundTrips) {
  TempDir dir("tbl4");
  std::string path = dir.File("t.tbl");
  {
    auto b = TableBuilder::Create(path);
    ASSERT_TRUE(b->Finish().ok());
  }
  auto r = TableReader::Open(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->entries(), 0u);
  EXPECT_TRUE(r->Get("x").status().IsNotFound());
}

TEST(TableTest, DetectsBadMagic) {
  TempDir dir("tbl5");
  std::string path = dir.File("t.tbl");
  std::ofstream(path, std::ios::binary) << std::string(64, 'j');
  EXPECT_TRUE(TableReader::Open(path).status().IsCorruption());
}

TEST(TableTest, DetectsCorruptIndex) {
  TempDir dir("tbl6");
  std::string path = dir.File("t.tbl");
  {
    auto b = TableBuilder::Create(path);
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(
          b->Add("key" + std::to_string(100 + i), "v").ok());
    }
    ASSERT_TRUE(b->Finish().ok());
  }
  // Corrupt a byte in the index region (just before the footer).
  auto size = fs::file_size(path);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(static_cast<std::streamoff>(size - 28 - 4));
  f.put('~');
  f.close();
  EXPECT_TRUE(TableReader::Open(path).status().IsCorruption());
}

// ------------------------------ LocalStore --------------------------------

TEST(LocalStoreTest, PutGetDelete) {
  TempDir dir("db1");
  auto db = LocalStore::Open(dir.path());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Put("k1", "v1").ok());
  ASSERT_TRUE((*db)->Put("k2", "v2").ok());
  EXPECT_EQ(*(*db)->Get("k1"), "v1");
  ASSERT_TRUE((*db)->Delete("k1").ok());
  EXPECT_TRUE((*db)->Get("k1").status().IsNotFound());
  EXPECT_EQ(*(*db)->Get("k2"), "v2");
}

TEST(LocalStoreTest, OverwriteKeepsLatest) {
  TempDir dir("db2");
  auto db = LocalStore::Open(dir.path());
  ASSERT_TRUE((*db)->Put("k", "old").ok());
  ASSERT_TRUE((*db)->Put("k", "new").ok());
  EXPECT_EQ(*(*db)->Get("k"), "new");
}

TEST(LocalStoreTest, RecoversFromWalAfterReopen) {
  TempDir dir("db3");
  {
    auto db = LocalStore::Open(dir.path());
    ASSERT_TRUE((*db)->Put("persisted", "yes").ok());
    ASSERT_TRUE((*db)->Delete("gone").ok());
    // No flush: data only in WAL + memtable; the destructor does not flush.
  }
  auto db = LocalStore::Open(dir.path());
  ASSERT_TRUE(db.ok());
  EXPECT_GT((*db)->stats().wal_records_replayed, 0u);
  EXPECT_EQ(*(*db)->Get("persisted"), "yes");
  EXPECT_TRUE((*db)->Get("gone").status().IsNotFound());
}

TEST(LocalStoreTest, FlushCreatesRunAndDataSurvives) {
  TempDir dir("db4");
  auto db = LocalStore::Open(dir.path());
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(
        (*db)->Put("key" + std::to_string(1000 + i), "v" + std::to_string(i))
            .ok());
  }
  ASSERT_TRUE((*db)->Flush().ok());
  EXPECT_EQ((*db)->run_count(), 1u);
  EXPECT_EQ(*(*db)->Get("key1042"), "v42");
}

TEST(LocalStoreTest, TombstoneShadowsOlderRun) {
  TempDir dir("db5");
  auto db = LocalStore::Open(dir.path());
  ASSERT_TRUE((*db)->Put("k", "v").ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Delete("k").ok());
  ASSERT_TRUE((*db)->Flush().ok());
  EXPECT_TRUE((*db)->Get("k").status().IsNotFound());
  // Reopen: run order must be preserved.
  db = LocalStore::Open(dir.path());
  EXPECT_TRUE((*db)->Get("k").status().IsNotFound());
}

TEST(LocalStoreTest, CompactMergesRuns) {
  TempDir dir("db6");
  auto db = LocalStore::Open(dir.path());
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 20; i++) {
      ASSERT_TRUE((*db)->Put("key" + std::to_string(i),
                             "round" + std::to_string(round))
                      .ok());
    }
    ASSERT_TRUE((*db)->Flush().ok());
  }
  ASSERT_TRUE((*db)->Delete("key0").ok());
  ASSERT_TRUE((*db)->Compact().ok());
  EXPECT_EQ((*db)->run_count(), 1u);
  EXPECT_TRUE((*db)->Get("key0").status().IsNotFound());
  EXPECT_EQ(*(*db)->Get("key7"), "round2");
}

TEST(LocalStoreTest, ScanMergesMemtableAndRuns) {
  TempDir dir("db7");
  auto db = LocalStore::Open(dir.path());
  ASSERT_TRUE((*db)->Put("a", "1").ok());
  ASSERT_TRUE((*db)->Put("b", "old").ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Put("b", "new").ok());  // memtable overrides run
  ASSERT_TRUE((*db)->Put("c", "3").ok());
  ASSERT_TRUE((*db)->Delete("a").ok());      // tombstone in memtable
  std::map<std::string, std::string> seen;
  ASSERT_TRUE((*db)->Scan("", "", [&](std::string_view k, std::string_view v) {
                seen.emplace(k, v);
              }).ok());
  EXPECT_EQ(seen, (std::map<std::string, std::string>{{"b", "new"},
                                                      {"c", "3"}}));
}

TEST(LocalStoreTest, AutomaticFlushAtThreshold) {
  TempDir dir("db8");
  LocalStoreOptions opts;
  opts.memtable_flush_bytes = 1024;
  auto db = LocalStore::Open(dir.path(), opts);
  for (int i = 0; i < 64; i++) {
    ASSERT_TRUE((*db)->Put("key" + std::to_string(i),
                           std::string(64, 'v'))
                    .ok());
  }
  EXPECT_GT((*db)->run_count(), 0u);
  EXPECT_EQ(*(*db)->Get("key63"), std::string(64, 'v'));
}

TEST(LocalStoreTest, ModelBasedRandomOps) {
  TempDir dir("db9");
  LocalStoreOptions opts;
  opts.memtable_flush_bytes = 2048;  // force frequent flushes
  auto db = LocalStore::Open(dir.path(), opts);
  std::map<std::string, std::string> model;
  Rng rng(99);
  for (int i = 0; i < 3000; i++) {
    std::string key = "k" + std::to_string(rng.NextBelow(200));
    double dice = rng.NextDouble();
    if (dice < 0.55) {
      std::string value = "v" + std::to_string(rng.NextUint64() % 100000);
      ASSERT_TRUE((*db)->Put(key, value).ok());
      model[key] = value;
    } else if (dice < 0.8) {
      ASSERT_TRUE((*db)->Delete(key).ok());
      model.erase(key);
    } else if (dice < 0.95) {
      auto got = (*db)->Get(key);
      auto expected = model.find(key);
      if (expected == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(got.ok()) << key;
        EXPECT_EQ(*got, expected->second);
      }
    } else if (dice < 0.98) {
      ASSERT_TRUE((*db)->Flush().ok());
    } else {
      ASSERT_TRUE((*db)->Compact().ok());
    }
  }
  // Final full scan agrees with the model.
  std::map<std::string, std::string> seen;
  ASSERT_TRUE((*db)->Scan("", "", [&](std::string_view k, std::string_view v) {
                seen.emplace(k, v);
              }).ok());
  EXPECT_EQ(seen, model);
}

TEST(LocalStoreTest, ModelSurvivesReopen) {
  TempDir dir("db10");
  std::map<std::string, std::string> model;
  Rng rng(100);
  for (int round = 0; round < 3; round++) {
    auto db = LocalStore::Open(dir.path());
    ASSERT_TRUE(db.ok());
    // Verify model after reopen.
    for (const auto& [k, v] : model) {
      auto got = (*db)->Get(k);
      ASSERT_TRUE(got.ok()) << k;
      EXPECT_EQ(*got, v);
    }
    for (int i = 0; i < 500; i++) {
      std::string key = "k" + std::to_string(rng.NextBelow(100));
      if (rng.NextBool(0.7)) {
        std::string value = "r" + std::to_string(round) + "-" +
                            std::to_string(i);
        ASSERT_TRUE((*db)->Put(key, value).ok());
        model[key] = value;
      } else {
        ASSERT_TRUE((*db)->Delete(key).ok());
        model.erase(key);
      }
    }
    if (round == 1) ASSERT_TRUE((*db)->Flush().ok());
  }
}

}  // namespace
}  // namespace hat::storage
