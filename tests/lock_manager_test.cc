// Direct unit tests for server::LockManager: grant/queue/wait-die decisions
// exercised without a ReplicaServer, network, or simulation — responses are
// captured by the Responder callback.

#include "hat/server/lock_manager.h"

#include <gtest/gtest.h>

#include <vector>

namespace hat::server {
namespace {

struct Response {
  Timestamp txn;
  bool granted;
  bool must_abort;
};

class LockManagerTest : public ::testing::Test {
 protected:
  LockManagerTest()
      : locks_([this](const net::Envelope& env, const net::LockResponse& r) {
          const auto& req = std::get<net::LockRequest>(env.msg);
          responses_.push_back(Response{req.txn, r.granted, r.must_abort});
        }) {}

  net::Envelope Request(const Key& key, bool exclusive, Timestamp txn) {
    net::Envelope env;
    env.from = 1;
    env.rpc_id = ++next_rpc_;
    env.msg = net::LockRequest{key, exclusive, txn};
    return env;
  }

  /// Issues a request and returns the immediate response, if any.
  std::optional<Response> Acquire(const Key& key, bool exclusive,
                                  Timestamp txn) {
    size_t before = responses_.size();
    net::Envelope env = Request(key, exclusive, txn);
    locks_.Acquire(env, std::get<net::LockRequest>(env.msg));
    if (responses_.size() == before) return std::nullopt;  // queued
    return responses_.back();
  }

  void Release(std::vector<Key> keys, Timestamp txn) {
    locks_.Release(net::UnlockRequest{std::move(keys), txn});
  }

  LockManager locks_;
  std::vector<Response> responses_;
  uint64_t next_rpc_ = 0;
};

TEST_F(LockManagerTest, SharedLocksCoexist) {
  EXPECT_TRUE(Acquire("k", false, {1, 1})->granted);
  EXPECT_TRUE(Acquire("k", false, {2, 2})->granted);
  EXPECT_EQ(locks_.stats().granted, 2u);
  EXPECT_EQ(locks_.stats().deaths, 0u);
}

TEST_F(LockManagerTest, YoungerConflictingRequesterDies) {
  EXPECT_TRUE(Acquire("k", false, {1, 1})->granted);
  auto resp = Acquire("k", true, {5, 5});  // younger writer vs older reader
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->granted);
  EXPECT_TRUE(resp->must_abort);
  EXPECT_EQ(locks_.stats().deaths, 1u);
}

TEST_F(LockManagerTest, OlderRequesterQueuesAndIsGrantedOnRelease) {
  EXPECT_TRUE(Acquire("k", true, {10, 1})->granted);
  // Older (smaller ts) waits rather than dying: no immediate response.
  EXPECT_FALSE(Acquire("k", true, {1, 2}).has_value());
  EXPECT_EQ(locks_.stats().queued, 1u);
  Release({"k"}, {10, 1});
  ASSERT_EQ(responses_.size(), 2u);
  EXPECT_TRUE(responses_.back().granted);
  EXPECT_EQ(responses_.back().txn, (Timestamp{1, 2}));
}

TEST_F(LockManagerTest, WaitQueueGrantsInFifoOrderUpToFirstExclusive) {
  EXPECT_TRUE(Acquire("k", true, {10, 1})->granted);
  // Three older waiters: S, X, S — all older than the holder and than every
  // exclusive waiter ahead of them (wait-die lets them queue).
  EXPECT_FALSE(Acquire("k", false, {3, 1}).has_value());
  EXPECT_FALSE(Acquire("k", true, {2, 1}).has_value());
  EXPECT_FALSE(Acquire("k", false, {1, 1}).has_value());
  Release({"k"}, {10, 1});
  // FIFO: the shared waiter at the head is granted; the exclusive waiter
  // behind it stays queued until that shared holder releases too.
  ASSERT_EQ(responses_.size(), 2u);
  EXPECT_EQ(responses_.back().txn, (Timestamp{3, 1}));
  EXPECT_TRUE(responses_.back().granted);
  Release({"k"}, {3, 1});
  ASSERT_EQ(responses_.size(), 3u);
  EXPECT_EQ(responses_.back().txn, (Timestamp{2, 1}));
  EXPECT_TRUE(responses_.back().granted);
  // The trailing shared waiter was blocked behind the X all along.
  Release({"k"}, {2, 1});
  ASSERT_EQ(responses_.size(), 4u);
  EXPECT_EQ(responses_.back().txn, (Timestamp{1, 1}));
  EXPECT_TRUE(responses_.back().granted);
}

TEST_F(LockManagerTest, NewSharedRequestDoesNotOvertakeQueuedWriter) {
  EXPECT_TRUE(Acquire("k", false, {5, 1})->granted);
  // Older writer queues behind the reader.
  EXPECT_FALSE(Acquire("k", true, {2, 1}).has_value());
  // A younger reader now conflicts with the queued writer and dies instead
  // of overtaking it (starvation protection).
  auto resp = Acquire("k", false, {7, 1});
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->must_abort);
}

TEST_F(LockManagerTest, ReentrantAndUpgradeGrants) {
  EXPECT_TRUE(Acquire("k", true, {3, 3})->granted);
  EXPECT_TRUE(Acquire("k", true, {3, 3})->granted);   // re-entrant X
  EXPECT_TRUE(Acquire("k", false, {3, 3})->granted);  // S under own X
  Release({"k"}, {3, 3});
  EXPECT_TRUE(Acquire("k", false, {4, 4})->granted);
  EXPECT_TRUE(Acquire("k", true, {4, 4})->granted);  // sole-S upgrade
}

TEST_F(LockManagerTest, ReleasePurgesAbortedWaiter) {
  EXPECT_TRUE(Acquire("k", true, {10, 1})->granted);
  EXPECT_FALSE(Acquire("k", true, {1, 2}).has_value());
  // The waiter's transaction aborts elsewhere and releases: it must leave
  // the queue without ever being granted.
  Release({"k"}, {1, 2});
  Release({"k"}, {10, 1});
  EXPECT_EQ(responses_.size(), 1u);
  EXPECT_EQ(locks_.LockedKeyCount(), 0u);
}

TEST_F(LockManagerTest, NoWaitAbortsWhereWaitDieQueues) {
  // The exact scenario wait-die queues on (an *older* requester conflicting
  // with a younger holder) must abort immediately under NO_WAIT: nothing
  // ever waits, so there is no hold-and-wait edge to deadlock through.
  std::vector<Response> responses;
  LockManager no_wait(
      [&responses](const net::Envelope& env, const net::LockResponse& r) {
        const auto& req = std::get<net::LockRequest>(env.msg);
        responses.push_back(Response{req.txn, r.granted, r.must_abort});
      },
      LockPolicy::kNoWait);

  net::Envelope holder = Request("k", true, {10, 1});
  no_wait.Acquire(holder, std::get<net::LockRequest>(holder.msg));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses.back().granted);

  // Wait-die baseline queues this older request (see
  // OlderRequesterQueuesAndIsGrantedOnRelease); no-wait must answer
  // must_abort on the spot instead.
  net::Envelope older = Request("k", true, {1, 2});
  no_wait.Acquire(older, std::get<net::LockRequest>(older.msg));
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses.back().granted);
  EXPECT_TRUE(responses.back().must_abort);
  EXPECT_EQ(no_wait.stats().queued, 0u);
  EXPECT_EQ(no_wait.stats().deaths, 1u);

  // Non-conflicting requests still grant, and a release frees the key
  // immediately (no waiter bookkeeping to unwind).
  no_wait.Release(net::UnlockRequest{{"k"}, {10, 1}});
  net::Envelope retry = Request("k", true, {1, 2});
  no_wait.Acquire(retry, std::get<net::LockRequest>(retry.msg));
  EXPECT_TRUE(responses.back().granted);
}

TEST_F(LockManagerTest, ClearDropsLocksButKeepsStats) {
  EXPECT_TRUE(Acquire("k", true, {3, 3})->granted);
  locks_.Clear();
  EXPECT_EQ(locks_.LockedKeyCount(), 0u);
  EXPECT_EQ(locks_.stats().granted, 1u);
  // After a crash the table is empty: a younger txn can lock immediately.
  EXPECT_TRUE(Acquire("k", true, {9, 9})->granted);
}

}  // namespace
}  // namespace hat::server
