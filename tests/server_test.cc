// Unit tests for ReplicaServer: queueing model, MAV pending/good promotion,
// anti-entropy retransmission, lock manager (wait-die), pending GC, version
// GC.

#include <gtest/gtest.h>

#include "hat/cluster/deployment.h"
#include "hat/net/rpc.h"

namespace hat::server {
namespace {

using cluster::Deployment;
using cluster::DeploymentOptions;

/// A test probe node that can issue raw RPCs to servers.
class Probe : public net::RpcNode {
 public:
  using net::RpcNode::RpcNode;
  void HandleMessage(const net::Envelope&) override {}

  /// Synchronous RPC helper: drives the sim until the response arrives.
  Result<net::Message> CallSync(net::NodeId to, net::Message req,
                                sim::Duration timeout = 5 * sim::kSecond) {
    bool done = false;
    Status status;
    net::Message response;
    Call(to, std::move(req), timeout,
         [&](Status s, const net::Message* m) {
           status = std::move(s);
           if (m) response = *m;
           done = true;
         });
    while (!done && sim_.Step()) {
    }
    if (!status.ok()) return status;
    return response;
  }
};

class ServerTest : public ::testing::Test {
 protected:
  void Build(int clusters = 2, int servers_per_cluster = 2) {
    sim_ = std::make_unique<sim::Simulation>(3);
    DeploymentOptions opts;
    for (int i = 0; i < clusters; i++) {
      opts.clusters.push_back(
          {net::Region::kVirginia, static_cast<uint8_t>(i)});
    }
    opts.servers_per_cluster = servers_per_cluster;
    opts.server.durable = false;
    deployment_ = std::make_unique<Deployment>(*sim_, opts);
    net::NodeId probe_id = deployment_->network().topology().AddNode(
        {net::Region::kVirginia, 0, 999});
    probe_ = std::make_unique<Probe>(*sim_, deployment_->network(), probe_id);
  }

  WriteRecord MakeWrite(const Key& key, const Value& value, uint64_t logical,
                        std::vector<Key> sibs = {}) {
    WriteRecord w;
    w.key = key;
    w.value = value;
    w.ts = {logical, 7};
    w.sibs = std::move(sibs);
    return w;
  }

  net::GetResponse Get(net::NodeId server, const Key& key,
                       std::optional<Timestamp> required = std::nullopt) {
    net::GetRequest req;
    req.key = key;
    req.required = required;
    auto resp = probe_->CallSync(server, req);
    EXPECT_TRUE(resp.ok());
    return std::get<net::GetResponse>(*resp);
  }

  bool Put(net::NodeId server, const WriteRecord& w, net::PutMode mode) {
    net::PutRequest req;
    req.write = w;
    req.mode = mode;
    auto resp = probe_->CallSync(server, req);
    if (!resp.ok()) return false;
    return std::get<net::PutResponse>(*resp).ok;
  }

  void Settle(sim::Duration d = 2 * sim::kSecond) {
    sim_->RunUntil(sim_->Now() + d);
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<Probe> probe_;
};

TEST_F(ServerTest, EventualPutVisibleImmediately) {
  Build();
  net::NodeId replica = deployment_->ReplicaInCluster("k", 0);
  ASSERT_TRUE(Put(replica, MakeWrite("k", "v", 10), net::PutMode::kEventual));
  auto resp = Get(replica, "k");
  EXPECT_TRUE(resp.found);
  EXPECT_EQ(resp.value, "v");
}

TEST_F(ServerTest, EventualPutGossipsToAllReplicas) {
  Build();
  auto replicas = deployment_->ReplicasOf("k");
  ASSERT_TRUE(
      Put(replicas[0], MakeWrite("k", "v", 10), net::PutMode::kEventual));
  Settle();
  for (net::NodeId r : replicas) {
    EXPECT_TRUE(deployment_->server(r).good().Contains("k", {10, 7}))
        << "replica " << r;
  }
}

TEST_F(ServerTest, MavWritePendingUntilAllSiblingsStable) {
  Build();
  // Two sibling keys on (likely) different shards.
  Key kx = "x-key", ky = "y-key";
  auto wx = MakeWrite(kx, "1", 20, {kx, ky});
  auto wy = MakeWrite(ky, "1", 20, {kx, ky});
  net::NodeId rx = deployment_->ReplicaInCluster(kx, 0);

  // Deliver only the x write: no replica can assemble the full sibling set,
  // so x must stay out of good everywhere.
  ASSERT_TRUE(Put(rx, wx, net::PutMode::kMav));
  Settle();
  auto resp = Get(rx, kx);
  EXPECT_FALSE(resp.found) << "write revealed before pending-stable";
  EXPECT_GT(deployment_->server(rx).PendingCount(), 0u);

  // Deliver the sibling: now the transaction becomes pending-stable and is
  // revealed on every replica of both keys.
  net::NodeId ry = deployment_->ReplicaInCluster(ky, 0);
  ASSERT_TRUE(Put(ry, wy, net::PutMode::kMav));
  Settle();
  EXPECT_TRUE(Get(rx, kx).found);
  EXPECT_TRUE(Get(ry, ky).found);
  for (net::NodeId r : deployment_->ReplicasOf(kx)) {
    EXPECT_TRUE(deployment_->server(r).good().Contains(kx, {20, 7}));
  }
  EXPECT_GT(deployment_->TotalServerStats().mav_promotions, 0u);
}

TEST_F(ServerTest, MavRequiredReadServedFromPending) {
  Build();
  Key kx = "x-key", ky = "y-key";
  auto wx = MakeWrite(kx, "1", 20, {kx, ky});
  net::NodeId rx = deployment_->ReplicaInCluster(kx, 0);
  ASSERT_TRUE(Put(rx, wx, net::PutMode::kMav));
  Settle(200 * sim::kMillisecond);

  // Plain read: hidden. Required read at the exact pending timestamp: served
  // from pending (Appendix B GET).
  EXPECT_FALSE(Get(rx, kx).found);
  auto resp = Get(rx, kx, Timestamp{20, 7});
  EXPECT_EQ(resp.code, net::GetCode::kOk);
  EXPECT_TRUE(resp.found);
  EXPECT_EQ(resp.value, "1");
}

TEST_F(ServerTest, MavRequiredReadNotYetWhenUnknown) {
  Build();
  net::NodeId r = deployment_->ReplicaInCluster("k", 0);
  auto resp = Get(r, "k", Timestamp{99, 1});
  EXPECT_EQ(resp.code, net::GetCode::kNotYet);
}

TEST_F(ServerTest, MavPromotionSurvivesPartitionAfterHeal) {
  Build();
  Key kx = "x-key", ky = "y-key";
  net::NodeId rx0 = deployment_->ReplicaInCluster(kx, 0);
  net::NodeId ry0 = deployment_->ReplicaInCluster(ky, 0);

  deployment_->PartitionClusters(0, 1);
  ASSERT_TRUE(
      Put(rx0, MakeWrite(kx, "1", 30, {kx, ky}), net::PutMode::kMav));
  ASSERT_TRUE(
      Put(ry0, MakeWrite(ky, "1", 30, {kx, ky}), net::PutMode::kMav));
  Settle();
  // Cluster 1 replicas unreachable: cannot be pending-stable yet.
  EXPECT_FALSE(Get(rx0, kx).found);

  deployment_->Heal();
  Settle(3 * sim::kSecond);
  // Anti-entropy retransmits + re-notifies: promotion completes everywhere.
  EXPECT_TRUE(Get(rx0, kx).found);
  net::NodeId rx1 = deployment_->ReplicaInCluster(kx, 1);
  EXPECT_TRUE(deployment_->server(rx1).good().Contains(kx, {30, 7}));
}

TEST_F(ServerTest, StalePendingDroppedButStillAcked) {
  Build();
  Key kx = "x-key";
  net::NodeId rx = deployment_->ReplicaInCluster(kx, 0);
  // Newer good version first.
  ASSERT_TRUE(Put(rx, MakeWrite(kx, "new", 50), net::PutMode::kEventual));
  Settle();
  // Older single-key MAV write arrives late: dropped as stale.
  ASSERT_TRUE(Put(rx, MakeWrite(kx, "old", 40, {kx}), net::PutMode::kMav));
  Settle();
  EXPECT_EQ(Get(rx, kx).value, "new");
  EXPECT_GT(deployment_->server(rx).stats().stale_pending_dropped, 0u);
}

TEST_F(ServerTest, AntiEntropyRetransmitsThroughPartition) {
  Build();
  net::NodeId r0 = deployment_->ReplicaInCluster("k", 0);
  net::NodeId r1 = deployment_->ReplicaInCluster("k", 1);
  deployment_->PartitionClusters(0, 1);
  ASSERT_TRUE(Put(r0, MakeWrite("k", "v", 60), net::PutMode::kEventual));
  Settle();
  EXPECT_FALSE(deployment_->server(r1).good().Contains("k", {60, 7}));
  deployment_->Heal();
  Settle(3 * sim::kSecond);
  EXPECT_TRUE(deployment_->server(r1).good().Contains("k", {60, 7}));
}

TEST_F(ServerTest, DuplicateAntiEntropyBatchesAreIdempotent) {
  Build();
  net::NodeId r0 = deployment_->ReplicaInCluster("k", 0);
  ASSERT_TRUE(Put(r0, MakeWrite("k", "v", 70), net::PutMode::kEventual));
  // Let retransmissions happen (ack might be slow); state must stay single.
  Settle(5 * sim::kSecond);
  net::NodeId r1 = deployment_->ReplicaInCluster("k", 1);
  EXPECT_EQ(deployment_->server(r1).good().VersionCountFor("k"), 1u);
}

TEST_F(ServerTest, VersionGcBoundsPerKeyVersions) {
  Build();
  net::NodeId r = deployment_->ReplicaInCluster("k", 0);
  for (uint64_t i = 1; i <= 50; i++) {
    ASSERT_TRUE(Put(r, MakeWrite("k", "v" + std::to_string(i), 100 + i),
                    net::PutMode::kEventual));
  }
  Settle();
  EXPECT_LE(deployment_->server(r).good().VersionCountFor("k"), 9u);
  EXPECT_EQ(Get(r, "k").value, "v50");
}

TEST_F(ServerTest, ServiceTimeQueuesRequests) {
  Build(1, 1);
  net::NodeId r = deployment_->ReplicaInCluster("k", 0);
  // Issue many puts; the server is a single service center so busy time
  // accumulates at least #puts * put cost.
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(Put(r, MakeWrite("k" + std::to_string(i), "v", 200 + i),
                    net::PutMode::kEventual));
  }
  const auto& stats = deployment_->server(r).stats();
  EXPECT_EQ(stats.puts, 50u);
  EXPECT_GE(stats.busy_us, 50 * 80.0);  // >= 50 puts at base cost
}

TEST_F(ServerTest, ScanResultSizeDelaysItsOwnReply) {
  // Regression: the per-item scan charge used to be added to busy_until_
  // *after* the Reply was already scheduled, so a huge scan never delayed
  // its own response. The per-item cost is now part of the task producing
  // the reply: a 1000-item scan must reply measurably later than a 1-item
  // scan (999 extra items at scan_item_us each).
  Build(1, 1);
  net::NodeId r = deployment_->ReplicaInCluster("scan0000", 0);
  char key[16];
  for (int i = 0; i < 1000; i++) {
    std::snprintf(key, sizeof(key), "scan%04d", i);
    deployment_->server(r).InstallForTest(MakeWrite(key, "v", 10 + i));
  }

  auto scan = [&](const Key& lo, const Key& hi, size_t expect_items) {
    net::ScanRequest req;
    req.lo = lo;
    req.hi = hi;
    sim::SimTime start = sim_->Now();
    auto resp = probe_->CallSync(r, req, 30 * sim::kSecond);
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(std::get<net::ScanResponse>(*resp).items.size(), expect_items);
    return sim_->Now() - start;
  };

  sim::Duration small = scan("scan0000", "scan0001", 1);
  Settle(100 * sim::kMillisecond);  // fully drain before the big scan
  sim::Duration large = scan("scan0000", "scan9999", 1000);
  // 999 extra items x 5us = ~5ms of extra service time in the reply path
  // (network jitter between the two RPCs is far smaller).
  EXPECT_GT(large, small + 4 * sim::kMillisecond)
      << "large=" << large << "us small=" << small << "us";
}

// ------------------------------ lock manager ------------------------------

class LockTest : public ServerTest {
 protected:
  net::LockResponse Lock(net::NodeId server, const Key& key, bool exclusive,
                         Timestamp txn) {
    net::LockRequest req;
    req.key = key;
    req.exclusive = exclusive;
    req.txn = txn;
    auto resp = probe_->CallSync(server, req, 500 * sim::kMillisecond);
    if (!resp.ok()) return net::LockResponse{false, false};  // queued
    return std::get<net::LockResponse>(*resp);
  }
  void Unlock(net::NodeId server, std::vector<Key> keys, Timestamp txn) {
    net::UnlockRequest req;
    req.keys = std::move(keys);
    req.txn = txn;
    probe_->SendOneWay(server, std::move(req));
    Settle(100 * sim::kMillisecond);
  }
};

TEST_F(LockTest, SharedLocksCoexist) {
  Build();
  net::NodeId s = deployment_->MasterOf("k");
  EXPECT_TRUE(Lock(s, "k", false, {1, 1}).granted);
  EXPECT_TRUE(Lock(s, "k", false, {2, 2}).granted);
}

TEST_F(LockTest, ExclusiveConflictsWithShared) {
  Build();
  net::NodeId s = deployment_->MasterOf("k");
  EXPECT_TRUE(Lock(s, "k", false, {1, 1}).granted);
  // Younger writer dies (wait-die).
  auto resp = Lock(s, "k", true, {5, 5});
  EXPECT_FALSE(resp.granted);
  EXPECT_TRUE(resp.must_abort);
  EXPECT_GT(deployment_->server(s).stats().lock_deaths, 0u);
}

TEST_F(LockTest, OlderWriterWaitsAndIsGrantedOnUnlock) {
  Build();
  net::NodeId s = deployment_->MasterOf("k");
  EXPECT_TRUE(Lock(s, "k", false, {10, 1}).granted);
  // Older (smaller ts) waits: the RPC times out (queued, not denied).
  bool got_response = false;
  net::LockRequest req;
  req.key = "k";
  req.exclusive = true;
  req.txn = {1, 2};
  probe_->Call(s, req, 10 * sim::kSecond,
               [&](Status st, const net::Message* m) {
                 got_response = true;
                 ASSERT_TRUE(st.ok());
                 EXPECT_TRUE(std::get<net::LockResponse>(*m).granted);
               });
  Settle(500 * sim::kMillisecond);
  EXPECT_FALSE(got_response);
  Unlock(s, {"k"}, {10, 1});
  Settle(500 * sim::kMillisecond);
  EXPECT_TRUE(got_response);
}

TEST_F(LockTest, ReentrantGrant) {
  Build();
  net::NodeId s = deployment_->MasterOf("k");
  EXPECT_TRUE(Lock(s, "k", true, {3, 3}).granted);
  EXPECT_TRUE(Lock(s, "k", true, {3, 3}).granted);
  EXPECT_TRUE(Lock(s, "k", false, {3, 3}).granted);
}

TEST_F(LockTest, SoleSharedHolderUpgrades) {
  Build();
  net::NodeId s = deployment_->MasterOf("k");
  EXPECT_TRUE(Lock(s, "k", false, {3, 3}).granted);
  EXPECT_TRUE(Lock(s, "k", true, {3, 3}).granted);  // upgrade
  // Another shared request now conflicts.
  auto resp = Lock(s, "k", false, {9, 9});
  EXPECT_FALSE(resp.granted);
}

TEST_F(LockTest, UnlockReleasesAndCleans) {
  Build();
  net::NodeId s = deployment_->MasterOf("k");
  EXPECT_TRUE(Lock(s, "k", true, {3, 3}).granted);
  Unlock(s, {"k"}, {3, 3});
  EXPECT_TRUE(Lock(s, "k", true, {9, 9}).granted);
}

// --------------------------- digest anti-entropy ---------------------------

TEST_F(ServerTest, DigestSyncRepairsWritesPushNeverDelivered) {
  sim_ = std::make_unique<sim::Simulation>(3);
  DeploymentOptions opts;
  opts.clusters = {{net::Region::kVirginia, 0}, {net::Region::kVirginia, 1}};
  opts.servers_per_cluster = 2;
  opts.server.durable = false;
  opts.server.digest_sync_interval = 300 * sim::kMillisecond;
  deployment_ = std::make_unique<Deployment>(*sim_, opts);

  // Install directly at one replica, bypassing the push outbox entirely —
  // modelling a write whose gossip state died with a crashed process.
  net::NodeId r0 = deployment_->ReplicaInCluster("k", 0);
  net::NodeId r1 = deployment_->ReplicaInCluster("k", 1);
  deployment_->server(r0).InstallForTest(MakeWrite("k", "v", 90));
  Settle(3 * sim::kSecond);
  EXPECT_TRUE(deployment_->server(r1).good().Contains("k", {90, 7}))
      << "digest exchange must back-fill the missing write";
}

TEST_F(ServerTest, WithoutDigestSyncOrphanWritesStayLocal) {
  Build();  // digest_sync_interval = 0 (default)
  net::NodeId r0 = deployment_->ReplicaInCluster("k", 0);
  net::NodeId r1 = deployment_->ReplicaInCluster("k", 1);
  deployment_->server(r0).InstallForTest(MakeWrite("k", "v", 90));
  Settle(3 * sim::kSecond);
  EXPECT_FALSE(deployment_->server(r1).good().Contains("k", {90, 7}))
      << "push-only anti-entropy cannot know about bypassed installs";
}

TEST_F(ServerTest, DigestSyncOnlySendsMissingVersions) {
  sim_ = std::make_unique<sim::Simulation>(4);
  DeploymentOptions opts;
  opts.clusters = {{net::Region::kVirginia, 0}, {net::Region::kVirginia, 1}};
  opts.servers_per_cluster = 1;
  opts.server.durable = false;
  opts.server.digest_sync_interval = 200 * sim::kMillisecond;
  deployment_ = std::make_unique<Deployment>(*sim_, opts);
  net::NodeId r0 = deployment_->ReplicaInCluster("k", 0);
  net::NodeId r1 = deployment_->ReplicaInCluster("k", 1);
  // Both replicas share the same newest version; digest rounds should not
  // ship it back and forth.
  deployment_->server(r0).InstallForTest(MakeWrite("k", "v", 90));
  deployment_->server(r1).InstallForTest(MakeWrite("k", "v", 90));
  Settle(2 * sim::kSecond);
  EXPECT_EQ(deployment_->TotalServerStats().ae_records_out, 0u);
}

TEST_F(ServerTest, GossipEchoSuppressedInTwoReplicaCluster) {
  Build();  // 2 clusters -> every key has exactly 2 replicas
  net::NodeId r0 = deployment_->ReplicaInCluster("k", 0);
  ASSERT_TRUE(Put(r0, MakeWrite("k", "v", 10), net::PutMode::kEventual));
  Settle();
  // One write, one peer: exactly one record crosses the wire. Before echo
  // suppression the receiver re-gossiped it back to its sender and
  // records_out double-counted every write.
  EXPECT_EQ(deployment_->TotalServerStats().ae_records_out, 1u);
  net::NodeId r1 = deployment_->ReplicaInCluster("k", 1);
  EXPECT_TRUE(deployment_->server(r1).good().Contains("k", {10, 7}));
}

TEST_F(ServerTest, MavGossipEchoSuppressedToo) {
  Build();
  net::NodeId r0 = deployment_->ReplicaInCluster("k", 0);
  ASSERT_TRUE(Put(r0, MakeWrite("k", "v", 10, {"k"}), net::PutMode::kMav));
  Settle();
  EXPECT_EQ(deployment_->TotalServerStats().ae_records_out, 1u);
}

TEST_F(ServerTest, CrashedReplicaReconvergesViaBucketedRepairAlone) {
  // Push outboxes are disabled, so bucketed digest repair is the only
  // propagation mechanism: after a crash wipes one replica, periodic ticks
  // must rebuild identical version sets and folded values from the peer.
  sim_ = std::make_unique<sim::Simulation>(5);
  DeploymentOptions opts;
  opts.clusters = {{net::Region::kVirginia, 0}, {net::Region::kVirginia, 1}};
  opts.servers_per_cluster = 1;
  opts.server.durable = false;
  opts.server.ae_push_enabled = false;
  opts.server.digest_sync_interval = 200 * sim::kMillisecond;
  opts.server.max_versions_per_key = 0;  // keep exact version sets comparable
  deployment_ = std::make_unique<Deployment>(*sim_, opts);
  net::NodeId r0 = deployment_->ReplicaInCluster("key0", 0);
  net::NodeId r1 = deployment_->ReplicaInCluster("key0", 1);
  for (uint64_t i = 0; i < 300; i++) {
    auto w = MakeWrite("key" + std::to_string(i), "v", 10 + i);
    deployment_->server(r0).InstallForTest(w);
    deployment_->server(r1).InstallForTest(w);
  }
  deployment_->server(r1).Crash();
  ASSERT_EQ(deployment_->server(r1).good().VersionCount(), 0u);

  Settle(3 * sim::kSecond);  // a handful of digest ticks
  const auto& s0 = deployment_->server(r0).good();
  const auto& s1 = deployment_->server(r1).good();
  EXPECT_EQ(s1.VersionCount(), s0.VersionCount());
  EXPECT_EQ(s1.KeyCount(), s0.KeyCount());
  for (uint64_t i = 0; i < 300; i++) {
    Key k = "key" + std::to_string(i);
    EXPECT_EQ(s1.Read(k).value, s0.Read(k).value) << k;
    EXPECT_EQ(s1.Read(k).ts, s0.Read(k).ts) << k;
  }
  // And the repair was digest-driven, not push-driven.
  EXPECT_EQ(deployment_->TotalServerStats().ae_records_out, 300u);
  EXPECT_GT(deployment_->TotalServerStats().ae_digest_ticks, 0u);
}

TEST_F(ServerTest, MultiShardReplicaReconvergesShardByShard) {
  // End-to-end sharded repair over the simulated network: a crashed
  // multi-shard replica is rebuilt by periodic shard-digest ticks alone
  // (push disabled), and the cold-shard savings show up in the digest
  // byte counters.
  sim_ = std::make_unique<sim::Simulation>(5);
  DeploymentOptions opts;
  opts.clusters = {{net::Region::kVirginia, 0}, {net::Region::kVirginia, 1}};
  opts.servers_per_cluster = 1;
  opts.server.durable = false;
  opts.server.ae_push_enabled = false;
  opts.server.digest_sync_interval = 200 * sim::kMillisecond;
  opts.server.max_versions_per_key = 0;  // keep exact version sets comparable
  opts.server.shards_per_server = 4;
  opts.server.digest_buckets = 64;
  deployment_ = std::make_unique<Deployment>(*sim_, opts);
  net::NodeId r0 = deployment_->ReplicaInCluster("key0", 0);
  net::NodeId r1 = deployment_->ReplicaInCluster("key0", 1);
  for (uint64_t i = 0; i < 300; i++) {
    auto w = MakeWrite("key" + std::to_string(i), "v", 10 + i);
    deployment_->server(r0).InstallForTest(w);
    deployment_->server(r1).InstallForTest(w);
  }
  deployment_->server(r1).Crash();
  ASSERT_EQ(deployment_->server(r1).good().VersionCount(), 0u);

  Settle(3 * sim::kSecond);  // a handful of digest ticks
  const auto& s0 = deployment_->server(r0).good();
  const auto& s1 = deployment_->server(r1).good();
  ASSERT_EQ(s1.shard_count(), 4u);
  EXPECT_EQ(s1.VersionCount(), s0.VersionCount());
  EXPECT_EQ(s1.ShardHashes(), s0.ShardHashes());
  for (size_t s = 0; s < 4; s++) {
    EXPECT_EQ(s1.shard(s).BucketHashes(), s0.shard(s).BucketHashes()) << s;
    EXPECT_GT(s1.shard(s).KeyCount(), 0u) << "all shards repopulated";
  }
  for (uint64_t i = 0; i < 300; i++) {
    Key k = "key" + std::to_string(i);
    EXPECT_EQ(s1.Read(k).value, s0.Read(k).value) << k;
    EXPECT_EQ(s1.Read(k).ts, s0.Read(k).ts) << k;
  }
  EXPECT_EQ(deployment_->TotalServerStats().ae_records_out, 300u);

  // Steady state after convergence: ticks exchange 4 shard summaries and
  // nothing else. Run another window and require the per-tick byte rate to
  // be summary-sized, far under one bucket vector per tick.
  auto before = deployment_->TotalServerStats();
  Settle(2 * sim::kSecond);
  auto after = deployment_->TotalServerStats();
  uint64_t ticks = after.ae_digest_ticks - before.ae_digest_ticks;
  uint64_t bytes = after.ae_digest_bytes_out - before.ae_digest_bytes_out;
  ASSERT_GT(ticks, 0u);
  EXPECT_LT(bytes / ticks, 64 * 8 / 2) << "in-sync ticks must stay at "
                                          "shard-summary cost, not bucket "
                                          "vectors";
}

// ------------------------------ crash/recovery ----------------------------

TEST_F(ServerTest, CrashLosesVolatileState) {
  Build();
  net::NodeId r = deployment_->ReplicaInCluster("k", 0);
  ASSERT_TRUE(Put(r, MakeWrite("k", "v", 80), net::PutMode::kEventual));
  Settle();  // let gossip propagate before the crash
  deployment_->server(r).Crash();
  EXPECT_FALSE(deployment_->server(r).good().Contains("k", {80, 7}));
  EXPECT_FALSE(Get(r, "k").found);
  // The other replica still has it — anti-entropy from the peer's inflight
  // retry may repopulate; verify the peer itself.
  net::NodeId r1 = deployment_->ReplicaInCluster("k", 1);
  Settle();
  EXPECT_TRUE(deployment_->server(r1).good().Contains("k", {80, 7}));
}

// ------------------------------ batched wire path -------------------------

TEST_F(ServerTest, ClientBatchAnswersEachOpInOrder) {
  Build();
  net::NodeId replica = deployment_->ReplicaInCluster("k", 0);
  net::ClientBatchRequest batch;
  net::PutRequest put;
  put.write = MakeWrite("k", "v", 10);
  put.mode = net::PutMode::kEventual;
  batch.ops.push_back(put);
  net::GetRequest get;
  get.key = "k";
  batch.ops.push_back(get);
  net::GetRequest miss;
  miss.key = "k";  // same key, but requiring a version the put didn't install
  miss.required = Timestamp{99, 7};
  batch.ops.push_back(miss);
  auto resp = probe_->CallSync(replica, batch);
  ASSERT_TRUE(resp.ok());
  const auto& r = std::get<net::ClientBatchResponse>(*resp);
  ASSERT_EQ(r.replies.size(), 3u);
  // Replies are positional and ops apply in order: the get observes the
  // batch's own preceding put.
  EXPECT_TRUE(std::get<net::PutResponse>(r.replies[0]).ok);
  const auto& g = std::get<net::GetResponse>(r.replies[1]);
  EXPECT_TRUE(g.found);
  EXPECT_EQ(g.value, "v");
  EXPECT_EQ(std::get<net::GetResponse>(r.replies[2]).code,
            net::GetCode::kNotYet);
  const auto& stats = deployment_->server(replica).stats();
  EXPECT_EQ(stats.client_batches, 1u);
  EXPECT_EQ(stats.client_batch_ops, 3u);
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.gets, 2u);
}

TEST_F(ServerTest, ShardLaneBatchingChargesAeBatchesToShardLanes) {
  sim_ = std::make_unique<sim::Simulation>(3);
  DeploymentOptions opts;
  opts.clusters = {{net::Region::kVirginia, 0}, {net::Region::kVirginia, 1}};
  opts.servers_per_cluster = 2;
  opts.server.durable = false;
  opts.server.shards_per_server = 4;
  opts.server.ae_shard_lane_batching = true;
  deployment_ = std::make_unique<Deployment>(*sim_, opts);
  net::NodeId probe_id = deployment_->network().topology().AddNode(
      {net::Region::kVirginia, 0, 999});
  probe_ = std::make_unique<Probe>(*sim_, deployment_->network(), probe_id);
  for (int i = 0; i < 16; i++) {
    Key key = "k" + std::to_string(i);
    ASSERT_TRUE(Put(deployment_->ReplicaInCluster(key, 0),
                    MakeWrite(key, "v", static_cast<uint64_t>(10 + i)),
                    net::PutMode::kEventual));
  }
  Settle();
  // Every push batch is shard-tagged and its receiver hosts the shard, so
  // all of them were charged to shard lanes instead of the global lane.
  const auto total = deployment_->TotalServerStats();
  EXPECT_GT(total.ae_batches_in, 0u);
  EXPECT_EQ(total.ae_shard_lane_batches, total.ae_batches_in);
  // And the writes still converged.
  for (int i = 0; i < 16; i++) {
    Key key = "k" + std::to_string(i);
    for (net::NodeId r : deployment_->ReplicasOf(key)) {
      EXPECT_TRUE(deployment_->server(r).good().Contains(
          key, {static_cast<uint64_t>(10 + i), 7}))
          << key << " replica " << r;
    }
  }
}

}  // namespace
}  // namespace hat::server
