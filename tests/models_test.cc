// Tests for the taxonomy (Table 3 / Figure 2) and the survey (Table 2).

#include <gtest/gtest.h>

#include "hat/models/survey.h"
#include "hat/models/taxonomy.h"

namespace hat::models {
namespace {

TEST(TaxonomyTest, Table3AvailabilityClasses) {
  // HA row.
  for (Model m : {Model::kReadUncommitted, Model::kReadCommitted,
                  Model::kMonotonicAtomicView, Model::kItemCutIsolation,
                  Model::kPredicateCutIsolation, Model::kWritesFollowReads,
                  Model::kMonotonicReads, Model::kMonotonicWrites}) {
    EXPECT_EQ(AvailabilityOf(m), Availability::kHighlyAvailable)
        << ModelShortName(m);
  }
  // Sticky row.
  for (Model m : {Model::kReadYourWrites, Model::kPram, Model::kCausal}) {
    EXPECT_EQ(AvailabilityOf(m), Availability::kSticky) << ModelShortName(m);
  }
  // Unavailable row.
  for (Model m :
       {Model::kCursorStability, Model::kSnapshotIsolation,
        Model::kRepeatableRead, Model::kOneCopySerializability,
        Model::kRecency, Model::kSafe, Model::kRegular,
        Model::kLinearizability, Model::kStrongOneCopySerializability}) {
    EXPECT_EQ(AvailabilityOf(m), Availability::kUnavailable)
        << ModelShortName(m);
  }
}

TEST(TaxonomyTest, UnavailabilityCausesMatchTable3Markers) {
  // CS†, SI†: lost update only.
  for (Model m : {Model::kCursorStability, Model::kSnapshotIsolation}) {
    auto cause = CauseOf(m);
    EXPECT_TRUE(cause.prevents_lost_update);
    EXPECT_FALSE(cause.requires_recency);
  }
  // RR†‡, 1SR†‡.
  for (Model m : {Model::kRepeatableRead, Model::kOneCopySerializability}) {
    auto cause = CauseOf(m);
    EXPECT_TRUE(cause.prevents_lost_update);
    EXPECT_TRUE(cause.prevents_write_skew);
    EXPECT_FALSE(cause.requires_recency);
  }
  // Recency/Safe/Regular/Linearizable: ⊕ only.
  for (Model m : {Model::kRecency, Model::kSafe, Model::kRegular,
                  Model::kLinearizability}) {
    auto cause = CauseOf(m);
    EXPECT_FALSE(cause.prevents_lost_update);
    EXPECT_TRUE(cause.requires_recency);
  }
  // Strong-1SR†‡⊕.
  auto strong = CauseOf(Model::kStrongOneCopySerializability);
  EXPECT_TRUE(strong.prevents_lost_update);
  EXPECT_TRUE(strong.prevents_write_skew);
  EXPECT_TRUE(strong.requires_recency);
}

TEST(TaxonomyTest, StrongOneSrEntailsEverything) {
  for (Model m : AllModels()) {
    EXPECT_TRUE(Entails(Model::kStrongOneCopySerializability, m))
        << "Strong-1SR must entail " << ModelShortName(m);
  }
}

TEST(TaxonomyTest, EntailmentIsReflexiveAndAntisymmetric) {
  EXPECT_EQ(ValidateTaxonomy(), "");
  for (Model m : AllModels()) EXPECT_TRUE(Entails(m, m));
}

TEST(TaxonomyTest, Figure2SpotChecks) {
  EXPECT_TRUE(Entails(Model::kReadCommitted, Model::kReadUncommitted));
  EXPECT_TRUE(Entails(Model::kMonotonicAtomicView, Model::kReadCommitted));
  EXPECT_TRUE(Entails(Model::kCausal, Model::kMonotonicAtomicView));
  EXPECT_TRUE(Entails(Model::kCausal, Model::kReadYourWrites));
  EXPECT_TRUE(Entails(Model::kPram, Model::kMonotonicReads));
  EXPECT_TRUE(Entails(Model::kSnapshotIsolation,
                      Model::kPredicateCutIsolation));
  EXPECT_TRUE(Entails(Model::kRepeatableRead, Model::kItemCutIsolation));
  EXPECT_TRUE(
      Entails(Model::kOneCopySerializability, Model::kReadCommitted));
  EXPECT_TRUE(Entails(Model::kLinearizability, Model::kSafe));

  // Famous incomparabilities.
  EXPECT_TRUE(Incomparable(Model::kSnapshotIsolation,
                           Model::kRepeatableRead));
  EXPECT_TRUE(Incomparable(Model::kCausal, Model::kSnapshotIsolation));
  EXPECT_TRUE(Incomparable(Model::kMonotonicAtomicView,
                           Model::kItemCutIsolation));
  EXPECT_TRUE(Incomparable(Model::kLinearizability,
                           Model::kOneCopySerializability));
}

TEST(TaxonomyTest, OneSrDoesNotEntailSessionGuarantees) {
  // Plain 1SR may reorder a session's transactions (no real-time order).
  EXPECT_FALSE(Entails(Model::kOneCopySerializability,
                       Model::kReadYourWrites));
  EXPECT_FALSE(Entails(Model::kOneCopySerializability, Model::kCausal));
}

TEST(TaxonomyTest, CombinedAvailabilityIsWorst) {
  EXPECT_EQ(CombinedAvailability(
                {Model::kReadCommitted, Model::kMonotonicAtomicView}),
            Availability::kHighlyAvailable);
  EXPECT_EQ(CombinedAvailability({Model::kReadCommitted,
                                  Model::kReadYourWrites}),
            Availability::kSticky);
  EXPECT_EQ(CombinedAvailability({Model::kCausal,
                                  Model::kSnapshotIsolation}),
            Availability::kUnavailable);
  EXPECT_EQ(CombinedAvailability({}), Availability::kHighlyAvailable);
}

TEST(TaxonomyTest, HatCombinationCountIs144) {
  // "the diagram depicts 144 possible HAT combinations" (Section 5.3).
  EXPECT_EQ(HatCombinationCount(), 144);
}

TEST(TaxonomyTest, NamesAreUnique) {
  std::set<std::string_view> names;
  for (Model m : AllModels()) {
    EXPECT_TRUE(names.insert(ModelShortName(m)).second)
        << ModelShortName(m);
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumModels));
}

// --------------------------------- Table 2 --------------------------------

TEST(SurveyTest, EighteenDatabases) {
  EXPECT_EQ(IsolationSurvey().size(), 18u);
}

TEST(SurveyTest, HeadlineNumbersMatchPaper) {
  // "only three out of 18 databases provided serializability by default,
  //  and eight did not provide serializability as an option at all."
  auto stats = ComputeSurveyStats();
  EXPECT_EQ(stats.total, 18);
  EXPECT_EQ(stats.serializable_by_default, 3);
  EXPECT_EQ(stats.serializable_unavailable, 8);
}

TEST(SurveyTest, SpotCheckRows) {
  const auto& rows = IsolationSurvey();
  auto find = [&rows](std::string_view name) -> const SurveyEntry* {
    for (const auto& r : rows) {
      if (r.database == name) return &r;
    }
    return nullptr;
  };
  const auto* oracle = find("Oracle 11g");
  ASSERT_NE(oracle, nullptr);
  EXPECT_EQ(oracle->default_level, SurveyLevel::kReadCommitted);
  EXPECT_EQ(oracle->maximum_level, SurveyLevel::kSnapshotIsolation);

  const auto* mysql = find("MySQL 5.6");
  ASSERT_NE(mysql, nullptr);
  EXPECT_EQ(mysql->default_level, SurveyLevel::kRepeatableRead);
  EXPECT_EQ(mysql->maximum_level, SurveyLevel::kSerializability);

  const auto* postgres = find("Postgres 9.2.2");
  ASSERT_NE(postgres, nullptr);
  EXPECT_EQ(postgres->default_level, SurveyLevel::kReadCommitted);
}

TEST(SurveyTest, MaximumAtLeastDefaultWhereComparable) {
  // Sanity: no database's maximum level is RC while defaulting to S.
  for (const auto& e : IsolationSurvey()) {
    if (e.default_level == SurveyLevel::kSerializability) {
      EXPECT_EQ(e.maximum_level, SurveyLevel::kSerializability)
          << e.database;
    }
  }
}

}  // namespace
}  // namespace hat::models
