// Durability and crash-recovery tests: replica servers persisting to a real
// LocalStore survive crashes; recovered MAV pending state resumes the
// Appendix B protocol.

#include <gtest/gtest.h>

#include <filesystem>

#include "hat/client/sync_client.h"
#include "hat/cluster/deployment.h"

namespace hat::server {
namespace {

namespace fs = std::filesystem;
using client::ClientOptions;
using client::IsolationLevel;
using client::SyncClient;
using cluster::Deployment;
using cluster::DeploymentOptions;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("hatkv_recovery_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::remove_all(dir_);
    sim_ = std::make_unique<sim::Simulation>(81);
    auto opts = DeploymentOptions::SingleDatacenter();
    opts.servers_per_cluster = 2;
    opts.server.durable = true;
    opts.server.storage_dir = dir_.string();
    deployment_ = std::make_unique<Deployment>(*sim_, opts);
  }
  void TearDown() override { fs::remove_all(dir_); }

  SyncClient Client(ClientOptions opts = {}) {
    return SyncClient(*sim_, deployment_->AddClient(opts));
  }
  void Settle(sim::Duration d = 2 * sim::kSecond) {
    sim_->RunUntil(sim_->Now() + d);
  }

  static int counter_;
  fs::path dir_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<Deployment> deployment_;
};

int RecoveryTest::counter_ = 0;

TEST_F(RecoveryTest, CommittedWritesSurviveCrashAndRecovery) {
  auto c = Client();
  c.Begin();
  c.Write("durable-key", "durable-value");
  ASSERT_TRUE(c.Commit().ok());
  Settle();

  net::NodeId r = deployment_->ReplicaInCluster("durable-key", 0);
  auto& server = deployment_->server(r);
  ASSERT_TRUE(server.good().Contains("durable-key",
                                     server.good().Read("durable-key").ts));
  server.Crash();
  EXPECT_FALSE(server.good().Read("durable-key").found);
  ASSERT_TRUE(server.RecoverFromStorage().ok());
  auto rv = server.good().Read("durable-key");
  EXPECT_TRUE(rv.found);
  EXPECT_EQ(rv.value, "durable-value");
}

TEST_F(RecoveryTest, RecoveredReplicaServesReads) {
  auto c = Client();
  c.Begin();
  for (int i = 0; i < 20; i++) {
    c.Write("key" + std::to_string(i), "value" + std::to_string(i));
  }
  ASSERT_TRUE(c.Commit().ok());
  Settle();

  // Crash and recover every server.
  for (size_t s = 0; s < deployment_->ServerCount(); s++) {
    deployment_->server(static_cast<net::NodeId>(s)).Crash();
    ASSERT_TRUE(deployment_->server(static_cast<net::NodeId>(s))
                    .RecoverFromStorage()
                    .ok());
  }
  c.Begin();
  for (int i = 0; i < 20; i++) {
    auto rv = c.Read("key" + std::to_string(i));
    ASSERT_TRUE(rv.ok());
    EXPECT_TRUE(rv->found) << i;
    EXPECT_EQ(rv->value, "value" + std::to_string(i));
  }
  ASSERT_TRUE(c.Commit().ok());
}

TEST_F(RecoveryTest, MavPendingStateRecovers) {
  // Install a MAV transaction whose promotion cannot complete (its sibling
  // replica is isolated), crash the replica, recover: the write must still
  // be pending (not visible), and promotion must complete after healing.
  ClientOptions mav;
  mav.isolation = IsolationLevel::kMonotonicAtomicView;
  mav.op_timeout = 3 * sim::kSecond;
  mav.rpc_timeout = 500 * sim::kMillisecond;

  // Two keys on different shards of cluster 0 (probe until hashes differ).
  Key ka = "alpha", kb;
  for (char suffix = 'a'; suffix <= 'z'; suffix++) {
    Key candidate = std::string("bravo-") + suffix;
    if (deployment_->ShardOf(candidate) != deployment_->ShardOf(ka)) {
      kb = candidate;
      break;
    }
  }
  ASSERT_FALSE(kb.empty());
  net::NodeId ra = deployment_->ReplicaInCluster(ka, 0);
  net::NodeId rb = deployment_->ReplicaInCluster(kb, 0);

  // Isolate kb's replica in cluster 1 so the ack set can never complete.
  net::NodeId rb1 = deployment_->ReplicaInCluster(kb, 1);
  deployment_->network().Isolate(rb1);

  auto c = Client(mav);
  c.Begin();
  c.Write(ka, "1");
  c.Write(kb, "1");
  ASSERT_TRUE(c.Commit().ok()) << "MAV commit is coordination-free";
  Settle();

  auto& server_a = deployment_->server(ra);
  EXPECT_FALSE(server_a.good().Read(ka).found) << "must not promote yet";
  EXPECT_GT(server_a.PendingCount(), 0u);

  // Crash + recover the replica holding the pending write.
  server_a.Crash();
  EXPECT_EQ(server_a.PendingCount(), 0u);
  ASSERT_TRUE(server_a.RecoverFromStorage().ok());
  EXPECT_GT(server_a.PendingCount(), 0u) << "pending state is durable";
  EXPECT_FALSE(server_a.good().Read(ka).found);

  // Heal: the recovered replica re-notifies and promotion completes.
  deployment_->network().HealAll();
  Settle(5 * sim::kSecond);
  EXPECT_TRUE(server_a.good().Read(ka).found);
  EXPECT_TRUE(deployment_->server(rb).good().Read(kb).found);
}

TEST_F(RecoveryTest, MultiShardServerRecoversPerShardState) {
  // A server hosting several logical shards persists each shard under its
  // own keyspace prefix; after a crash, per-shard replay must rebuild
  // version sets and folds identical to a never-crashed replica of the same
  // shards (the peer server in the other cluster).
  deployment_.reset();  // release the SetUp deployment's stores on dir_
  sim_ = std::make_unique<sim::Simulation>(83);
  auto opts = DeploymentOptions::SingleDatacenter();
  opts.servers_per_cluster = 2;
  opts.server.durable = true;
  opts.server.storage_dir = dir_.string();
  opts.server.shards_per_server = 3;
  opts.server.digest_buckets = 64;
  deployment_ = std::make_unique<Deployment>(*sim_, opts);

  auto c = Client();
  c.Begin();
  for (int i = 0; i < 40; i++) {
    c.Write("key" + std::to_string(i), "value" + std::to_string(i));
  }
  ASSERT_TRUE(c.Commit().ok());
  Settle();

  // Pick the cluster-0 server hosting key0's shard; its cluster-1
  // counterpart replicates exactly the same logical shards.
  net::NodeId crashed_id = deployment_->ReplicaInCluster("key0", 0);
  net::NodeId peer_id = deployment_->ReplicaInCluster("key0", 1);
  auto& crashed = deployment_->server(crashed_id);
  const auto& peer = deployment_->server(peer_id);
  ASSERT_EQ(crashed.good().shard_count(), 3u);
  ASSERT_GT(crashed.good().VersionCount(), 0u);

  crashed.Crash();
  ASSERT_EQ(crashed.good().VersionCount(), 0u);
  ASSERT_TRUE(crashed.RecoverFromStorage().ok());

  // Shard by shard: identical version sets (every exact (key, ts) present,
  // same counts) and identical folded reads.
  for (size_t s = 0; s < 3; s++) {
    const auto& mine = crashed.good().shard(s);
    const auto& theirs = peer.good().shard(s);
    EXPECT_EQ(mine.KeyCount(), theirs.KeyCount()) << "shard " << s;
    EXPECT_EQ(mine.VersionCount(), theirs.VersionCount()) << "shard " << s;
    EXPECT_EQ(mine.BucketHashes(), theirs.BucketHashes()) << "shard " << s;
    theirs.ForEachVersion([&](const WriteRecord& w) {
      EXPECT_TRUE(mine.Contains(w.key, w.ts)) << w.key;
    });
    theirs.ForEachLatest([&](const Key& key, const Timestamp&) {
      EXPECT_EQ(mine.Read(key).value, theirs.Read(key).value) << key;
      EXPECT_EQ(mine.Read(key).ts, theirs.Read(key).ts) << key;
    });
  }
  // And every key is still served with its committed value.
  for (int i = 0; i < 40; i++) {
    Key key = "key" + std::to_string(i);
    if (deployment_->ReplicaInCluster(key, 0) != crashed_id) continue;
    auto rv = crashed.good().Read(key);
    EXPECT_TRUE(rv.found) << key;
    EXPECT_EQ(rv.value, "value" + std::to_string(i)) << key;
  }
}

TEST_F(RecoveryTest, CheckpointBoundsReplayToTailAndPreservesState) {
  // A key overwritten 20 times leaves a 20-version good history on disk
  // while in-memory GC keeps only the newest max_versions_per_key. After a
  // checkpoint, recovery must replay the live snapshot plus the writes that
  // landed since — proportional to the tail, not the 20-version history —
  // and rebuild state identical to the pre-crash store.
  auto c = Client();
  for (int i = 0; i < 20; i++) {
    c.Begin();
    c.Write("hot", "v" + std::to_string(i));
    ASSERT_TRUE(c.Commit().ok());
  }
  Settle();

  net::NodeId id = deployment_->ReplicaInCluster("hot", 0);
  auto& server = deployment_->server(id);
  size_t live_at_checkpoint = server.good().VersionCountFor("hot");
  ASSERT_GT(live_at_checkpoint, 0u);
  ASSERT_LT(live_at_checkpoint, 20u) << "GC should have pruned the history";
  ASSERT_TRUE(server.CheckpointStorage().ok());

  // Post-checkpoint tail: a few writes to fresh keys.
  for (int i = 0; i < 3; i++) {
    c.Begin();
    c.Write("tail" + std::to_string(i), "t" + std::to_string(i));
    ASSERT_TRUE(c.Commit().ok());
  }
  Settle();

  // Capture the pre-crash state of every shard.
  std::vector<std::vector<WriteRecord>> before(server.good().shard_count());
  std::vector<std::vector<uint64_t>> hashes_before;
  for (size_t s = 0; s < server.good().shard_count(); s++) {
    server.good().shard(s).ForEachVersion(
        [&](const WriteRecord& w) { before[s].push_back(w); });
    hashes_before.push_back(server.good().shard(s).BucketHashes());
  }
  std::string hot_before = server.good().Read("hot").value;

  server.Crash();
  ASSERT_TRUE(server.RecoverFromStorage().ok());

  // Bit-identical per-shard state: every version back, same digests, same
  // folds.
  for (size_t s = 0; s < server.good().shard_count(); s++) {
    const auto& shard = server.good().shard(s);
    EXPECT_EQ(shard.VersionCount(), before[s].size()) << "shard " << s;
    EXPECT_EQ(shard.BucketHashes(), hashes_before[s]) << "shard " << s;
    for (const WriteRecord& w : before[s]) {
      EXPECT_TRUE(shard.Contains(w.key, w.ts)) << w.key;
    }
  }
  EXPECT_EQ(server.good().Read("hot").value, hot_before);
  EXPECT_EQ(server.good().Read("hot").value, "v19");

  // Bounded replay: the snapshot covers the GC'd live set and the tail is
  // the post-checkpoint writes — far less than the 20-version history a
  // full replay would walk.
  const RecoverStats& stats = server.persistence().recover_stats();
  EXPECT_EQ(stats.checkpoint_records, live_at_checkpoint);
  EXPECT_LE(stats.tail_records, 3u);
  EXPECT_LT(stats.checkpoint_records + stats.tail_records, 20u);
}

TEST_F(RecoveryTest, RecoveryIsIdempotent) {
  auto c = Client();
  c.Begin();
  c.Write("k", "v");
  ASSERT_TRUE(c.Commit().ok());
  Settle();
  net::NodeId r = deployment_->ReplicaInCluster("k", 0);
  auto& server = deployment_->server(r);
  server.Crash();
  ASSERT_TRUE(server.RecoverFromStorage().ok());
  ASSERT_TRUE(server.RecoverFromStorage().ok());  // double recovery: no-op
  EXPECT_EQ(server.good().VersionCountFor("k"), 1u);
}

TEST_F(RecoveryTest, UnsupportedWithoutStorageDir) {
  sim::Simulation sim(5);
  auto opts = DeploymentOptions::SingleDatacenter();
  opts.server.durable = false;  // no storage_dir
  Deployment deployment(sim, opts);
  Status s = deployment.server(0).RecoverFromStorage();
  EXPECT_EQ(s.code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace hat::server
