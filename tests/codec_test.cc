// Wire codec tests: every net::Message alternative round-trips byte-exact
// through encode/decode (randomized contents including empty and max-size
// strings), WireBytes() equals the real encoded frame size, frame-level
// corruption (flipped CRC, truncated length prefix, trailing garbage, bad
// enum bytes, reserved flags) is rejected without crashing, and the
// zero-copy views agree with the owning decoder while borrowing from the
// frame buffer.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <string_view>
#include <variant>

#include "hat/common/crc32.h"
#include "hat/common/rng.h"
#include "hat/net/codec.h"
#include "hat/net/message.h"

namespace hat::net {
namespace {

using codec::FrameStatus;

// ------------------------- randomized message data -------------------------

Key RandKey(Rng& rng) {
  // Bias toward short keys, include empty and long ones.
  const size_t lens[] = {0, 1, 8, 24, 200};
  size_t len = lens[rng.NextBelow(5)];
  Key k;
  for (size_t i = 0; i < len; i++) {
    k.push_back(static_cast<char>(rng.NextBelow(256)));
  }
  return k;
}

Value RandValue(Rng& rng) {
  const size_t lens[] = {0, 1, 64, 1024, 64 * 1024};
  size_t len = lens[rng.NextBelow(5)];
  Value v;
  v.reserve(len);
  for (size_t i = 0; i < len; i++) {
    v.push_back(static_cast<char>(rng.NextBelow(256)));
  }
  return v;
}

Timestamp RandTs(Rng& rng) {
  Timestamp t;
  t.logical = rng.NextBool(0.2) ? rng.NextUint64() : rng.NextBelow(1 << 20);
  t.client_id = static_cast<uint32_t>(rng.NextBelow(1 << 16));
  t.seq = static_cast<uint32_t>(rng.NextBelow(4));
  return t;
}

std::optional<Timestamp> RandOptTs(Rng& rng) {
  if (rng.NextBool(0.5)) return std::nullopt;
  return RandTs(rng);
}

std::vector<Key> RandSibs(Rng& rng) {
  std::vector<Key> sibs;
  size_t n = rng.NextBelow(5);
  for (size_t i = 0; i < n; i++) sibs.push_back(RandKey(rng));
  return sibs;
}

std::vector<Dependency> RandDeps(Rng& rng) {
  std::vector<Dependency> deps;
  size_t n = rng.NextBelow(4);
  for (size_t i = 0; i < n; i++) {
    deps.push_back(Dependency{RandKey(rng), RandTs(rng)});
  }
  return deps;
}

WriteRecord RandRecord(Rng& rng) {
  WriteRecord w;
  w.key = RandKey(rng);
  w.value = RandValue(rng);
  w.kind = rng.NextBool(0.2) ? WriteKind::kDelta : WriteKind::kPut;
  w.ts = RandTs(rng);
  w.sibs = RandSibs(rng);
  w.deps = RandDeps(rng);
  return w;
}

std::vector<WriteRecord> RandRecords(Rng& rng, size_t max) {
  std::vector<WriteRecord> v;
  size_t n = rng.NextBelow(max + 1);
  for (size_t i = 0; i < n; i++) v.push_back(RandRecord(rng));
  return v;
}

// One Fill overload per alternative: a new Message type without a filler
// fails this test's build, mirroring the codec's own exhaustive dispatch.
void Fill(PingRequest&, Rng&) {}
void Fill(PingResponse&, Rng&) {}
void Fill(PutRequest& m, Rng& rng) {
  m.write = RandRecord(rng);
  m.mode = rng.NextBool(0.5) ? PutMode::kMav : PutMode::kEventual;
}
void Fill(PutResponse& m, Rng& rng) {
  m.ok = rng.NextBool(0.5);
  m.wrong_shard = rng.NextBool(0.2);
}
void Fill(GetRequest& m, Rng& rng) {
  m.key = RandKey(rng);
  m.required = RandOptTs(rng);
  m.bound = RandOptTs(rng);
}
void Fill(GetResponse& m, Rng& rng) {
  m.code = static_cast<GetCode>(rng.NextBelow(4));
  m.found = rng.NextBool(0.7);
  m.value = RandValue(rng);
  m.ts = RandTs(rng);
  m.sibs = RandSibs(rng);
  m.deps = RandDeps(rng);
}
void Fill(ScanRequest& m, Rng& rng) {
  m.lo = RandKey(rng);
  m.hi = RandKey(rng);
  m.bound = RandOptTs(rng);
}
void Fill(ScanResponse& m, Rng& rng) {
  size_t n = rng.NextBelow(6);
  for (size_t i = 0; i < n; i++) {
    ScanResponse::Item it;
    it.key = RandKey(rng);
    it.value = RandValue(rng);
    it.ts = RandTs(rng);
    it.sibs = RandSibs(rng);
    m.items.push_back(std::move(it));
  }
}
void Fill(NotifyRequest& m, Rng& rng) {
  m.ts = RandTs(rng);
  m.sender = static_cast<NodeId>(rng.NextBelow(1 << 20));
}
void Fill(AntiEntropyBatch& m, Rng& rng) {
  m.batch_id = rng.NextUint64();
  m.writes = RandRecords(rng, 8);
  m.mode = rng.NextBool(0.3) ? PutMode::kMav : PutMode::kEventual;
  m.shard = rng.NextBool(0.5) ? kNoShardTag
                              : static_cast<uint32_t>(rng.NextBelow(64));
}
void Fill(AntiEntropyAck& m, Rng& rng) { m.batch_id = rng.NextUint64(); }
void Fill(DigestRequest& m, Rng& rng) {
  size_t n = rng.NextBelow(6);
  for (size_t i = 0; i < n; i++) m.latest.emplace_back(RandKey(rng), RandTs(rng));
  m.reply_allowed = rng.NextBool(0.5);
  size_t b = rng.NextBelow(4);
  for (size_t i = 0; i < b; i++) {
    m.buckets.push_back(static_cast<uint32_t>(rng.NextBelow(1024)));
  }
  m.shard = static_cast<uint32_t>(rng.NextBelow(64));
}
void Fill(BucketDigest& m, Rng& rng) {
  size_t n = rng.NextBelow(1025);
  for (size_t i = 0; i < n; i++) m.hashes.push_back(rng.NextUint64());
  m.shard = static_cast<uint32_t>(rng.NextBelow(64));
}
void Fill(ShardDigest& m, Rng& rng) {
  size_t n = rng.NextBelow(17);
  for (size_t i = 0; i < n; i++) m.hashes.push_back(rng.NextUint64());
  if (rng.NextBool(0.5)) {
    for (size_t i = 0; i < n; i++) {
      m.shards.push_back(static_cast<uint32_t>(rng.NextBelow(256)));
    }
  }
}
void Fill(LockRequest& m, Rng& rng) {
  m.key = RandKey(rng);
  m.exclusive = rng.NextBool(0.5);
  m.txn = RandTs(rng);
}
void Fill(LockResponse& m, Rng& rng) {
  m.granted = rng.NextBool(0.5);
  m.must_abort = rng.NextBool(0.2);
}
void Fill(UnlockRequest& m, Rng& rng) {
  m.keys = RandSibs(rng);
  m.txn = RandTs(rng);
}
void Fill(ShardSnapshotRequest& m, Rng& rng) {
  m.migration_id = rng.NextUint64();
  m.shard = static_cast<uint32_t>(rng.NextBelow(64));
}
void Fill(ShardSnapshotChunk& m, Rng& rng) {
  m.migration_id = rng.NextUint64();
  m.shard = static_cast<uint32_t>(rng.NextBelow(64));
  m.seq = static_cast<uint32_t>(rng.NextBelow(1 << 16));
  m.done = rng.NextBool(0.3);
  m.writes = RandRecords(rng, 8);
}
void Fill(ShardSnapshotAck& m, Rng& rng) {
  m.migration_id = rng.NextUint64();
  m.seq = static_cast<uint32_t>(rng.NextBelow(1 << 16));
  m.ok = rng.NextBool(0.9);
}
void Fill(ClientBatchRequest& m, Rng& rng) {
  size_t n = rng.NextBelow(6);
  for (size_t i = 0; i < n; i++) {
    if (rng.NextBool(0.5)) {
      PutRequest p;
      Fill(p, rng);
      m.ops.emplace_back(std::move(p));
    } else {
      GetRequest g;
      Fill(g, rng);
      m.ops.emplace_back(std::move(g));
    }
  }
}
void Fill(ClientBatchResponse& m, Rng& rng) {
  size_t n = rng.NextBelow(6);
  for (size_t i = 0; i < n; i++) {
    if (rng.NextBool(0.5)) {
      PutResponse p;
      Fill(p, rng);
      m.replies.emplace_back(std::move(p));
    } else {
      GetResponse g;
      Fill(g, rng);
      m.replies.emplace_back(std::move(g));
    }
  }
}

template <size_t... Is>
Message RandomMessageOfAltImpl(size_t index, Rng& rng,
                               std::index_sequence<Is...>) {
  Message out;
  (
      [&] {
        if (index != Is) return;
        std::variant_alternative_t<Is, Message> m{};
        Fill(m, rng);
        out = std::move(m);
      }(),
      ...);
  return out;
}

Message RandomMessageOfAlt(size_t index, Rng& rng) {
  return RandomMessageOfAltImpl(
      index, rng, std::make_index_sequence<std::variant_size_v<Message>>{});
}

Envelope RandomEnvelope(size_t alt, Rng& rng) {
  Envelope env;
  env.from = static_cast<NodeId>(rng.NextBelow(1 << 16));
  env.to = static_cast<NodeId>(rng.NextBelow(1 << 16));
  env.rpc_id = rng.NextBool(0.3) ? 0 : rng.NextUint64();
  env.is_response = rng.NextBool(0.5);
  env.msg = RandomMessageOfAlt(alt, rng);
  return env;
}

std::string EncodeToString(const Envelope& env) {
  std::string buf;
  codec::EncodeEnvelope(env, &buf);
  return buf;
}

// Re-frames a tampered payload with a correct CRC and length so body-level
// validation (not the CRC) is what rejects it.
std::string ReframePayload(std::string payload) {
  std::string frame;
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, MaskCrc(Crc32c(payload)));
  frame += payload;
  return frame;
}

std::string PayloadOf(const std::string& frame) {
  return frame.substr(codec::kFrameHeaderBytes);
}

// ----------------------------- round-trip ----------------------------------

TEST(WireCodecTest, EveryAlternativeRoundTripsByteExact) {
  Rng rng(0xc0dec);
  for (size_t alt = 0; alt < std::variant_size_v<Message>; alt++) {
    for (int iter = 0; iter < 40; iter++) {
      Envelope env = RandomEnvelope(alt, rng);
      std::string frame = EncodeToString(env);
      ASSERT_EQ(frame.size(), codec::EncodedFrameSize(env)) << "alt " << alt;

      Envelope back;
      ASSERT_TRUE(codec::DecodeEnvelope(frame, &back))
          << "alt " << alt << " iter " << iter;
      EXPECT_EQ(back.from, env.from);
      EXPECT_EQ(back.to, env.to);
      EXPECT_EQ(back.rpc_id, env.rpc_id);
      EXPECT_EQ(back.is_response, env.is_response);
      ASSERT_EQ(back.msg.index(), env.msg.index());
      // Byte-exact: canonical encoding makes re-encode equality equivalent
      // to field equality without requiring operator== on every struct.
      EXPECT_EQ(EncodeToString(back), frame) << "alt " << alt;
    }
  }
}

TEST(WireCodecTest, WireBytesEqualsRealEncodedSize) {
  Rng rng(0xb17e5);
  for (size_t alt = 0; alt < std::variant_size_v<Message>; alt++) {
    for (int iter = 0; iter < 20; iter++) {
      Envelope env = RandomEnvelope(alt, rng);
      EXPECT_EQ(WireBytes(env.msg), EncodeToString(env).size())
          << "alt " << alt;
    }
  }
}

TEST(WireCodecTest, WriteRecordWireBytesMatchesEmbeddedEncoding) {
  Rng rng(0x33);
  for (int iter = 0; iter < 50; iter++) {
    AntiEntropyBatch batch;
    batch.batch_id = 7;
    batch.writes.push_back(RandRecord(rng));
    AntiEntropyBatch empty = batch;
    empty.writes.clear();
    Envelope env{1, 2, 0, false, batch};
    Envelope env0{1, 2, 0, false, empty};
    // Adding one record grows the frame by exactly that record's bytes
    // (modulo the count varint, which grows 0->1 by 0 bytes here).
    EXPECT_EQ(EncodeToString(env).size() - EncodeToString(env0).size(),
              WriteRecordWireBytes(batch.writes[0]));
  }
}

TEST(WireCodecTest, ReusedBufferAccumulatesFrames) {
  Rng rng(0x99);
  std::string buf;
  std::vector<size_t> sizes;
  for (int i = 0; i < 5; i++) {
    Envelope env = RandomEnvelope(9 /* AntiEntropyBatch */, rng);
    sizes.push_back(codec::EncodedFrameSize(env));
    codec::EncodeEnvelope(env, &buf);
  }
  std::string_view stream(buf);
  for (int i = 0; i < 5; i++) {
    std::string_view payload;
    ASSERT_EQ(codec::ExtractFrame(&stream, &payload), FrameStatus::kOk);
    EXPECT_EQ(payload.size() + codec::kFrameHeaderBytes, sizes[i]);
  }
  EXPECT_TRUE(stream.empty());
}

// ----------------------------- framing -------------------------------------

TEST(WireCodecTest, PartialFramesNeedMore) {
  Rng rng(0x77);
  std::string frame = EncodeToString(RandomEnvelope(5, rng));
  for (size_t cut = 0; cut < frame.size(); cut++) {
    std::string_view stream(frame.data(), cut);
    std::string_view payload;
    EXPECT_EQ(codec::ExtractFrame(&stream, &payload), FrameStatus::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(stream.size(), cut) << "stream must be unchanged";
  }
}

TEST(WireCodecTest, FlippedByteAnywhereIsRejectedNeverCrashes) {
  Rng rng(0x1234);
  for (size_t alt = 0; alt < std::variant_size_v<Message>; alt++) {
    Envelope env = RandomEnvelope(alt, rng);
    std::string frame = EncodeToString(env);
    // Flip one byte at a sample of positions (every position for small
    // frames); decode must fail cleanly or — only if the flip landed in a
    // way that still forms a valid frame — never corrupt state.
    size_t step = frame.size() < 200 ? 1 : frame.size() / 97;
    for (size_t pos = 0; pos < frame.size(); pos += step) {
      std::string bad = frame;
      bad[pos] = static_cast<char>(bad[pos] ^ 0x20);
      Envelope out;
      codec::DecodeEnvelope(bad, &out);  // must not crash or throw
    }
  }
}

TEST(WireCodecTest, FlippedCrcByteRejected) {
  Rng rng(0x55);
  std::string frame = EncodeToString(RandomEnvelope(3, rng));
  frame[5] = static_cast<char>(frame[5] ^ 0x01);  // inside the CRC field
  std::string_view stream(frame);
  std::string_view payload;
  EXPECT_EQ(codec::ExtractFrame(&stream, &payload), FrameStatus::kBad);
}

TEST(WireCodecTest, TruncatedLengthPrefixRejectedOrStarved) {
  Rng rng(0x56);
  std::string frame = EncodeToString(RandomEnvelope(3, rng));
  // Length claims more than the stream will ever hold — kNeedMore from the
  // reader's perspective; an over-limit length is kBad outright.
  std::string bloated = frame;
  uint32_t huge = static_cast<uint32_t>(codec::kMaxFramePayloadBytes + 1);
  std::memcpy(bloated.data(), &huge, 4);
  std::string_view stream(bloated);
  std::string_view payload;
  EXPECT_EQ(codec::ExtractFrame(&stream, &payload), FrameStatus::kBad);

  uint32_t shy = 10;  // below the envelope-header minimum
  std::memcpy(bloated.data(), &shy, 4);
  stream = bloated;
  EXPECT_EQ(codec::ExtractFrame(&stream, &payload), FrameStatus::kBad);
}

TEST(WireCodecTest, TrailingGarbageAfterFrameRejectedByWholeFrameDecode) {
  Rng rng(0x57);
  std::string frame = EncodeToString(RandomEnvelope(0, rng));
  std::string extra = frame + "garbage";
  Envelope out;
  EXPECT_FALSE(codec::DecodeEnvelope(extra, &out));
  // The streaming API still peels the valid frame and leaves the garbage.
  std::string_view stream(extra);
  std::string_view payload;
  EXPECT_EQ(codec::ExtractFrame(&stream, &payload), FrameStatus::kOk);
  EXPECT_EQ(stream, "garbage");
}

TEST(WireCodecTest, TrailingBodyBytesInsidePayloadRejected) {
  Rng rng(0x58);
  std::string payload = PayloadOf(EncodeToString(RandomEnvelope(4, rng)));
  payload += '\0';  // overlong body
  Envelope out;
  EXPECT_FALSE(codec::DecodePayload(payload, &out));
  std::string frame = ReframePayload(payload);  // valid CRC over bad body
  EXPECT_FALSE(codec::DecodeEnvelope(frame, &out));
}

TEST(WireCodecTest, UnknownTagRejected) {
  Rng rng(0x59);
  std::string payload = PayloadOf(EncodeToString(RandomEnvelope(0, rng)));
  payload[0] = static_cast<char>(0xee);
  Envelope out;
  EXPECT_FALSE(codec::DecodeEnvelope(ReframePayload(payload), &out));
}

TEST(WireCodecTest, ReservedFlagBitsRejected) {
  Rng rng(0x5a);
  std::string payload = PayloadOf(EncodeToString(RandomEnvelope(0, rng)));
  payload[1] = static_cast<char>(payload[1] | 0x80);
  Envelope out;
  EXPECT_FALSE(codec::DecodeEnvelope(ReframePayload(payload), &out));
}

TEST(WireCodecTest, OutOfRangeEnumByteRejected) {
  PutRequest req;
  req.write.key = "k";
  req.write.value = "v";
  Envelope env{1, 2, 3, false, req};
  std::string payload = PayloadOf(EncodeToString(env));
  // Body starts after the envelope header; first body byte is the PutMode.
  payload[codec::kEnvelopeHeaderBytes] = 2;
  Envelope out;
  EXPECT_FALSE(codec::DecodeEnvelope(ReframePayload(payload), &out));
}

TEST(WireCodecTest, TruncationFuzzNeverCrashes) {
  Rng rng(0xf22);
  for (size_t alt = 0; alt < std::variant_size_v<Message>; alt++) {
    std::string payload = PayloadOf(EncodeToString(RandomEnvelope(alt, rng)));
    for (size_t cut = 0; cut <= payload.size();
         cut += payload.size() < 100 ? 1 : payload.size() / 61) {
      Envelope out;
      // A truncated body re-framed with a matching CRC: the body decoder
      // itself must reject it (except cut == full size, which is valid).
      bool decoded = codec::DecodeEnvelope(
          ReframePayload(payload.substr(0, cut)), &out);
      EXPECT_EQ(decoded, cut == payload.size()) << "cut " << cut;
    }
  }
}

// --------------------------- zero-copy views --------------------------------

TEST(WireCodecTest, AntiEntropyBatchViewMatchesOwningDecode) {
  Rng rng(0xae);
  for (int iter = 0; iter < 30; iter++) {
    AntiEntropyBatch batch;
    Fill(batch, rng);
    Envelope env{3, 4, 0, false, batch};
    std::string frame = EncodeToString(env);

    std::string_view stream(frame);
    std::string_view payload;
    ASSERT_EQ(codec::ExtractFrame(&stream, &payload), FrameStatus::kOk);
    codec::PayloadHeader hdr;
    codec::AntiEntropyBatchView view;
    ASSERT_TRUE(codec::GetAntiEntropyBatchView(payload, &hdr, &view));
    EXPECT_EQ(hdr.from, 3u);
    EXPECT_EQ(view.batch_id, batch.batch_id);
    EXPECT_EQ(view.mode, batch.mode);
    EXPECT_EQ(view.shard, batch.shard);
    ASSERT_EQ(view.nwrites, batch.writes.size());

    size_t i = 0;
    bool all = view.ForEachWrite([&](const codec::WriteRecordView& w) {
      const WriteRecord& want = batch.writes[i++];
      EXPECT_EQ(w.key, want.key);
      EXPECT_EQ(w.value, want.value);
      EXPECT_EQ(w.kind, want.kind);
      EXPECT_EQ(w.ts, want.ts);
      // The views are slices of the frame buffer, not copies.
      if (!w.key.empty()) {
        EXPECT_GE(w.key.data(), frame.data());
        EXPECT_LE(w.key.data() + w.key.size(), frame.data() + frame.size());
      }
      WriteRecord owned = w.ToOwned();
      EXPECT_EQ(owned.sibs, want.sibs);
      EXPECT_EQ(owned.deps, want.deps);
    });
    EXPECT_TRUE(all);
    EXPECT_EQ(i, batch.writes.size());
  }
}

TEST(WireCodecTest, SnapshotChunkViewMatchesOwningDecode) {
  Rng rng(0x5c);
  ShardSnapshotChunk chunk;
  Fill(chunk, rng);
  chunk.writes.push_back(RandRecord(rng));
  Envelope env{8, 9, 44, false, chunk};
  std::string frame = EncodeToString(env);

  std::string_view stream(frame);
  std::string_view payload;
  ASSERT_EQ(codec::ExtractFrame(&stream, &payload), FrameStatus::kOk);
  codec::PayloadHeader hdr;
  codec::ShardSnapshotChunkView view;
  ASSERT_TRUE(codec::GetShardSnapshotChunkView(payload, &hdr, &view));
  EXPECT_EQ(hdr.rpc_id, 44u);
  EXPECT_EQ(view.migration_id, chunk.migration_id);
  EXPECT_EQ(view.shard, chunk.shard);
  EXPECT_EQ(view.seq, chunk.seq);
  EXPECT_EQ(view.done, chunk.done);
  size_t i = 0;
  EXPECT_TRUE(view.ForEachWrite([&](const codec::WriteRecordView& w) {
    EXPECT_EQ(w.ToOwned().key, chunk.writes[i++].key);
  }));
  EXPECT_EQ(i, chunk.writes.size());
}

TEST(WireCodecTest, ViewRejectsWrongTag) {
  Envelope env{1, 2, 0, false, PingRequest{}};
  std::string frame = EncodeToString(env);
  std::string_view stream(frame);
  std::string_view payload;
  ASSERT_EQ(codec::ExtractFrame(&stream, &payload), FrameStatus::kOk);
  codec::PayloadHeader hdr;
  codec::AntiEntropyBatchView view;
  EXPECT_FALSE(codec::GetAntiEntropyBatchView(payload, &hdr, &view));
}

TEST(WireCodecTest, ViewRejectsTrailingRecordGarbage) {
  AntiEntropyBatch batch;
  batch.batch_id = 1;
  batch.writes.push_back(WriteRecord{"k", "v", WriteKind::kPut, {1, 2, 0},
                                     {}, {}});
  Envelope env{1, 2, 0, false, batch};
  std::string payload = PayloadOf(EncodeToString(env));
  payload += '\7';
  codec::PayloadHeader hdr;
  codec::AntiEntropyBatchView view;
  ASSERT_TRUE(codec::GetAntiEntropyBatchView(payload, &hdr, &view));
  EXPECT_FALSE(view.ForEachWrite([](const codec::WriteRecordView&) {}));
}

// --------------------------- traced envelopes ------------------------------

TEST(WireCodecTest, TracedEnvelopeRoundTripsContext) {
  Rng rng(0x7ace);
  for (size_t alt = 0; alt < std::variant_size_v<Message>; alt++) {
    Envelope env = RandomEnvelope(alt, rng);
    env.trace = obs::TraceContext{rng.NextUint64() | 1, rng.NextUint64()};
    std::string frame = EncodeToString(env);
    ASSERT_EQ(frame.size(), codec::EncodedFrameSize(env)) << "alt " << alt;

    Envelope back;
    ASSERT_TRUE(codec::DecodeEnvelope(frame, &back)) << "alt " << alt;
    EXPECT_EQ(back.trace.trace_id, env.trace.trace_id);
    EXPECT_EQ(back.trace.span_id, env.trace.span_id);
    EXPECT_EQ(back.rpc_id, env.rpc_id);
    EXPECT_EQ(EncodeToString(back), frame) << "alt " << alt;
  }
}

TEST(WireCodecTest, TraceBlockCostsExactlySixteenBytesAndOnlyWhenActive) {
  Rng rng(0x7acf);
  Envelope env = RandomEnvelope(2, rng);
  env.trace = {};
  std::string untraced = EncodeToString(env);

  Envelope traced_env = env;
  traced_env.trace = obs::TraceContext{42, 7};
  std::string traced = EncodeToString(traced_env);
  EXPECT_EQ(traced.size(), untraced.size() + codec::kTraceBlockBytes);

  // An inactive context leaves the frame byte-identical to the pre-trace
  // wire format — the figure-identity guarantee at the wire level.
  Envelope inactive = env;
  inactive.trace = obs::TraceContext{0, 99};  // trace_id 0 => inactive
  EXPECT_EQ(EncodeToString(inactive), untraced);

  Envelope back;
  ASSERT_TRUE(codec::DecodeEnvelope(untraced, &back));
  EXPECT_FALSE(back.trace.active());
}

TEST(WireCodecTest, TruncatedTraceBlockRejected) {
  Rng rng(0x7ad0);
  Envelope env = RandomEnvelope(0, rng);
  env.trace = obs::TraceContext{11, 22};
  std::string payload = PayloadOf(EncodeToString(env));
  // Keep the traced flag but cut the payload off inside the 16-byte trace
  // block: the header parser must reject it, never read past the end.
  for (size_t keep = 0; keep < codec::kTraceBlockBytes; keep += 5) {
    std::string cut = payload.substr(0, codec::kEnvelopeHeaderBytes + keep);
    Envelope out;
    EXPECT_FALSE(codec::DecodeEnvelope(ReframePayload(cut), &out))
        << "trace block cut to " << keep << " bytes";
  }
}

TEST(WireCodecTest, TracedFlagWithZeroTraceIdRejected) {
  Rng rng(0x7ad1);
  Envelope env = RandomEnvelope(0, rng);
  env.trace = obs::TraceContext{11, 22};
  std::string payload = PayloadOf(EncodeToString(env));
  // Zero the trace_id inside the trace block: flagged-but-inactive is a
  // malformed frame (an encoder never produces it).
  for (size_t i = 0; i < 8; i++) payload[codec::kEnvelopeHeaderBytes + i] = 0;
  Envelope out;
  EXPECT_FALSE(codec::DecodeEnvelope(ReframePayload(payload), &out));
}

}  // namespace
}  // namespace hat::net
