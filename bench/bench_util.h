// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures.

#ifndef HAT_BENCH_BENCH_UTIL_H_
#define HAT_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>

#include "hat/client/txn_client.h"
#include "hat/cluster/deployment.h"
#include "hat/harness/driver.h"
#include "hat/harness/table.h"

namespace hat::bench {

/// One YCSB measurement at a fixed configuration. Builds a fresh
/// deterministic deployment, preloads the keyspace, runs warmup + measure.
struct YcsbRun {
  cluster::DeploymentOptions deployment;
  client::ClientOptions client;
  workload::YcsbOptions workload;
  int num_clients = 100;
  uint64_t seed = 42;
  sim::Duration warmup = 1 * sim::kSecond;
  sim::Duration measure = 4 * sim::kSecond;

  harness::WorkloadResult Execute() const {
    sim::Simulation sim(seed);
    cluster::Deployment deployment_instance(sim, deployment);
    harness::YcsbDriver driver(deployment_instance, workload, client,
                               num_clients, seed ^ 0x9e37);
    driver.Preload();
    return driver.Run(warmup, measure);
  }
};

/// Default workload: the paper's YCSB configuration, with a 20k keyspace
/// (down from 100k purely to bound simulator memory; access is uniform so
/// contention behaviour is unchanged).
inline workload::YcsbOptions PaperYcsb() {
  workload::YcsbOptions opts;
  opts.num_keys = 20000;
  opts.value_size = 1024;
  opts.read_fraction = 0.5;
  opts.ops_per_txn = 8;
  return opts;
}

/// The four systems of Figure 3-6.
struct SystemConfig {
  std::string name;
  client::ClientOptions options;
};

inline std::vector<SystemConfig> PaperSystems() {
  using client::ClientOptions;
  using client::IsolationLevel;
  using client::SystemMode;
  std::vector<SystemConfig> systems;
  {
    ClientOptions eventual;  // last-writer-wins RU (paper: "eventual")
    eventual.isolation = IsolationLevel::kReadUncommitted;
    systems.push_back({"Eventual", eventual});
  }
  {
    ClientOptions rc;
    rc.isolation = IsolationLevel::kReadCommitted;
    systems.push_back({"RC", rc});
  }
  {
    ClientOptions mav;
    mav.isolation = IsolationLevel::kMonotonicAtomicView;
    systems.push_back({"MAV", mav});
  }
  {
    ClientOptions master;
    master.mode = SystemMode::kMaster;
    systems.push_back({"Master", master});
  }
  return systems;
}

}  // namespace hat::bench

#endif  // HAT_BENCH_BENCH_UTIL_H_
