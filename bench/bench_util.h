// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures.

#ifndef HAT_BENCH_BENCH_UTIL_H_
#define HAT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "hat/client/txn_client.h"
#include "hat/cluster/deployment.h"
#include "hat/harness/driver.h"
#include "hat/harness/table.h"
#include "hat/obs/export.h"

namespace hat::bench {

/// Observability knobs shared by the bench binaries. HAT_TRACE_OUT=<path>
/// samples transactions and writes a Chrome trace-event JSON (load it at
/// ui.perfetto.dev) at the end of the run; HAT_METRICS_OUT=<path> starts
/// the registry sampler and writes its time series. Both default off — the
/// default runs stay figure-identical to an uninstrumented build.
inline const char* TraceOutPath() { return std::getenv("HAT_TRACE_OUT"); }
inline const char* MetricsOutPath() { return std::getenv("HAT_METRICS_OUT"); }

/// Applies the env knobs to a deployment; call before the run starts.
/// `trace_sample_every` trades trace size for coverage (1 = every txn).
inline void EnableObsFromEnv(cluster::Deployment& deployment,
                             uint64_t trace_sample_every = 1) {
  cluster::ObsConfig config;
  config.tracing = TraceOutPath() != nullptr;
  config.trace_sample_every = trace_sample_every;
  config.sampling = MetricsOutPath() != nullptr;
  if (config.tracing || config.sampling) {
    deployment.EnableObservability(config);
  }
}

/// Exports whatever the env knobs asked for; call after the run. `extra`
/// carries bench-synthesized instant spans (e.g. the migration cutover).
inline void ExportObsFromEnv(cluster::Deployment& deployment,
                             const std::vector<obs::Span>& extra = {}) {
  if (const char* path = TraceOutPath()) {
    if (deployment.tracer() != nullptr &&
        obs::WriteChromeTrace(path, deployment.tracer()->Spans(), {}, extra)) {
      std::printf("Wrote Chrome trace to %s (%zu spans, %llu dropped)\n", path,
                  deployment.tracer()->span_count(),
                  static_cast<unsigned long long>(
                      deployment.tracer()->dropped()));
    }
  }
  if (const char* path = MetricsOutPath()) {
    if (deployment.sampler() != nullptr &&
        obs::WriteMetricsJson(path, *deployment.sampler())) {
      std::printf("Wrote metrics series to %s (%zu metrics x %zu samples)\n",
                  path, deployment.sampler()->registry().size(),
                  deployment.sampler()->times().size());
    }
  }
}

/// One YCSB measurement at a fixed configuration. Builds a fresh
/// deterministic deployment, preloads the keyspace, runs warmup + measure.
struct YcsbRun {
  cluster::DeploymentOptions deployment;
  client::ClientOptions client;
  workload::YcsbOptions workload;
  int num_clients = 100;
  uint64_t seed = 42;
  sim::Duration warmup = 1 * sim::kSecond;
  sim::Duration measure = 4 * sim::kSecond;

  /// `server_totals`, when non-null, receives the deployment-wide server
  /// counters at the end of the run (anti-entropy steady-state reporting);
  /// `elapsed_us`, when non-null, the virtual time the whole run spanned
  /// (preload + warmup + measure) — the denominator for utilization.
  harness::WorkloadResult Execute(server::ServerStats* server_totals = nullptr,
                                  sim::SimTime* elapsed_us = nullptr) const {
    sim::Simulation sim(seed);
    cluster::Deployment deployment_instance(sim, deployment);
    harness::YcsbDriver driver(deployment_instance, workload, client,
                               num_clients, seed ^ 0x9e37);
    driver.Preload();
    harness::WorkloadResult result = driver.Run(warmup, measure);
    if (server_totals) *server_totals = deployment_instance.TotalServerStats();
    if (elapsed_us) *elapsed_us = sim.Now();
    return result;
  }
};

/// True when the benchmark should run a reduced sweep (CI perf job); set via
/// the HAT_BENCH_QUICK environment variable.
inline bool QuickBench() { return std::getenv("HAT_BENCH_QUICK") != nullptr; }

/// Accumulates figure series and writes them as one JSON document to the
/// path named by HAT_BENCH_JSON (no-op when unset) — the machine-readable
/// throughput summary the CI perf job uploads as an artifact.
class JsonSummary {
 public:
  void Add(const std::string& figure, const harness::FigureSeries& fig) {
    figures_.emplace_back(figure, fig);
  }

  /// Writes the document; returns the path written or nullptr when disabled.
  const char* Flush() const {
    const char* path = std::getenv("HAT_BENCH_JSON");
    if (!path) return nullptr;
    FILE* out = std::fopen(path, "w");
    if (!out) return nullptr;
    std::fprintf(out, "{\n  \"figures\": [\n");
    for (size_t f = 0; f < figures_.size(); f++) {
      const auto& [name, fig] = figures_[f];
      std::fprintf(out, "    {\"name\": \"%s\", \"title\": \"%s\", \"x\": [",
                   name.c_str(), fig.title.c_str());
      for (size_t i = 0; i < fig.x.size(); i++) {
        std::fprintf(out, "%s%g", i ? ", " : "", fig.x[i]);
      }
      std::fprintf(out, "], \"series\": {");
      for (size_t s = 0; s < fig.series.size(); s++) {
        std::fprintf(out, "%s\"%s\": [", s ? ", " : "",
                     fig.series[s].first.c_str());
        for (size_t i = 0; i < fig.series[s].second.size(); i++) {
          std::fprintf(out, "%s%g", i ? ", " : "", fig.series[s].second[i]);
        }
        std::fprintf(out, "]");
      }
      std::fprintf(out, "}}%s\n", f + 1 < figures_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    return path;
  }

 private:
  std::vector<std::pair<std::string, harness::FigureSeries>> figures_;
};

/// Default workload: the paper's YCSB configuration, with a 20k keyspace
/// (down from 100k purely to bound simulator memory; access is uniform so
/// contention behaviour is unchanged).
inline workload::YcsbOptions PaperYcsb() {
  workload::YcsbOptions opts;
  opts.num_keys = 20000;
  opts.value_size = 1024;
  opts.read_fraction = 0.5;
  opts.ops_per_txn = 8;
  return opts;
}

/// The four systems of Figure 3-6.
struct SystemConfig {
  std::string name;
  client::ClientOptions options;
};

inline std::vector<SystemConfig> PaperSystems() {
  using client::ClientOptions;
  using client::IsolationLevel;
  using client::SystemMode;
  std::vector<SystemConfig> systems;
  {
    ClientOptions eventual;  // last-writer-wins RU (paper: "eventual")
    eventual.isolation = IsolationLevel::kReadUncommitted;
    systems.push_back({"Eventual", eventual});
  }
  {
    ClientOptions rc;
    rc.isolation = IsolationLevel::kReadCommitted;
    systems.push_back({"RC", rc});
  }
  {
    ClientOptions mav;
    mav.isolation = IsolationLevel::kMonotonicAtomicView;
    systems.push_back({"MAV", mav});
  }
  {
    ClientOptions master;
    master.mode = SystemMode::kMaster;
    systems.push_back({"Master", master});
  }
  return systems;
}

}  // namespace hat::bench

#endif  // HAT_BENCH_BENCH_UTIL_H_
