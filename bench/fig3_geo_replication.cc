// Regenerates Figure 3: YCSB average latency and total throughput versus
// number of closed-loop clients for Eventual / RC / MAV / Master, in three
// deployments:
//   A) two clusters within a single datacenter (us-east AZs),
//   B) two clusters across the continental US (Virginia + Oregon),
//   C) five clusters across the five lowest-cost EC2 regions.
//
// Beyond the paper's curves, each configuration reports the anti-entropy
// steady state (gossip records and digest entries shipped per committed
// transaction) — the data-plane overhead the O(diff) replica work targets.
// A final sweep (Figure 3D) re-runs the single-datacenter config with the
// client envelope batcher on: same workload, higher saturation throughput.
// Set HAT_BENCH_JSON=<path> to also write a machine-readable throughput
// summary (the CI perf artifact); HAT_BENCH_QUICK=1 runs a reduced sweep.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace hat::bench {
namespace {

void RunConfiguration(const char* title, const char* short_name,
                      cluster::DeploymentOptions deployment,
                      const std::vector<int>& client_counts,
                      sim::Duration measure, JsonSummary& json) {
  harness::Banner(title);
  auto systems = PaperSystems();

  harness::FigureSeries latency;
  latency.title = "Average transaction latency (ms)";
  latency.x_label = "clients";
  harness::FigureSeries throughput;
  throughput.title = "Total throughput (1000 txns/s)";
  throughput.x_label = "clients";
  harness::FigureSeries gossip;
  gossip.title = "Anti-entropy records shipped per committed txn";
  gossip.x_label = "clients";
  for (int n : client_counts) {
    latency.x.push_back(n);
    throughput.x.push_back(n);
    gossip.x.push_back(n);
  }

  for (const auto& system : systems) {
    std::vector<double> lat, thr, ae;
    for (int n : client_counts) {
      YcsbRun run;
      run.deployment = deployment;
      run.client = system.options;
      run.workload = PaperYcsb();
      run.num_clients = n;
      run.measure = measure;
      server::ServerStats servers;
      auto result = run.Execute(&servers);
      lat.push_back(result.txn_latency_ms.Mean());
      thr.push_back(result.TxnsPerSecond() / 1000.0);
      ae.push_back(result.committed > 0
                       ? static_cast<double>(servers.ae_records_out) /
                             static_cast<double>(result.committed)
                       : 0.0);
      std::fflush(stdout);
    }
    latency.series.emplace_back(system.name, lat);
    throughput.series.emplace_back(system.name, thr);
    gossip.series.emplace_back(system.name, ae);
  }
  latency.Print(stdout, 1);
  throughput.Print(stdout, 2);
  gossip.Print(stdout, 2);
  json.Add(std::string(short_name) + "_throughput_ktps", throughput);
  json.Add(std::string(short_name) + "_ae_records_per_txn", gossip);
}

}  // namespace
}  // namespace hat::bench

int main() {
  using namespace hat::bench;
  JsonSummary json;
  std::vector<int> clients =
      QuickBench() ? std::vector<int>{8, 64} : std::vector<int>{8, 64, 256,
                                                                1024};
  hat::sim::Duration measure =
      (QuickBench() ? 1 : 2) * hat::sim::kSecond;

  RunConfiguration(
      "Figure 3A: two clusters within a single datacenter (us-east)",
      "fig3a", hat::cluster::DeploymentOptions::SingleDatacenter(), clients,
      measure, json);
  std::printf(
      "\n(paper 3A: master ~2x the latency and ~half the throughput of\n"
      " eventual; RC ~= eventual; MAV ~75%% of eventual)\n");

  RunConfiguration(
      "Figure 3B: clusters in us-east (VA) and us-west-2 (OR)",
      "fig3b", hat::cluster::DeploymentOptions::TwoRegions(), clients,
      measure, json);
  std::printf(
      "\n(paper 3B: master latency ~300ms/txn — a 278-4257%% increase —\n"
      " while HAT configurations match the single-datacenter deployment)\n");

  std::vector<int> clients_c =
      QuickBench() ? std::vector<int>{64} : std::vector<int>{64, 256, 1024};
  RunConfiguration(
      "Figure 3C: five clusters (VA, CA, OR, IR, TO)",
      "fig3c", hat::cluster::DeploymentOptions::FiveRegions(), clients_c,
      measure, json);
  std::printf(
      "\n(paper 3C: master ~800ms/txn; MAV throughput halves versus\n"
      " eventual as all-to-all anti-entropy quadruples per-server work)\n");

  // ---- batched wire path: client group commit at saturation ----------------
  // Beyond the paper: the same single-datacenter YCSB with the client's
  // envelope batcher on (batch_max=8) and shard-lane anti-entropy batching
  // at the servers. A commit's parallel puts coalesce into one
  // ClientBatchRequest per server — one wire header, one WAL sync — so
  // saturation throughput must rise while the default-off curves above
  // stay byte-identical.
  hat::harness::Banner(
      "Figure 3D: client group commit (batch_max=8) vs unbatched, "
      "single datacenter, 1 server/cluster, RC");
  // Four points on the batching/latency trade-off. A 200us wait window
  // harvests more companions per envelope but, held unconditionally, adds
  // its full length to every op issued against an idle server — the
  // adaptive variant closes the envelope at instant-end whenever nothing is
  // in flight to the target, so low-load latency must track the wait-0
  // batcher while the wait-window coalescing survives under load.
  struct Fig3dConfig {
    const char* name;
    bool batch;
    hat::sim::Duration wait_us;
    bool adaptive;
  };
  const Fig3dConfig configs[] = {
      {"RC", false, 0, false},
      {"RC+batch", true, 0, false},
      {"RC+batch+wait", true, 200, false},
      {"RC+batch+adaptive", true, 200, true},
  };
  hat::harness::FigureSeries batched;
  batched.title = "Total throughput (1000 txns/s)";
  batched.x_label = "clients";
  hat::harness::FigureSeries batched_lat;
  batched_lat.title = "Average transaction latency (ms)";
  batched_lat.x_label = "clients";
  for (int n : clients) {
    batched.x.push_back(n);
    batched_lat.x.push_back(n);
  }
  for (const Fig3dConfig& cfg : configs) {
    std::vector<double> thr, lat;
    for (int n : clients) {
      YcsbRun run;
      run.deployment = hat::cluster::DeploymentOptions::SingleDatacenter();
      run.deployment.servers_per_cluster = 1;
      run.client.isolation = hat::client::IsolationLevel::kReadCommitted;
      if (cfg.batch) {
        run.client.batch_max = 8;
        run.client.batch_max_wait_us = cfg.wait_us;
        run.client.adaptive_batch_wait = cfg.adaptive;
        run.deployment.server.ae_shard_lane_batching = true;
      }
      run.workload = PaperYcsb();
      run.num_clients = n;
      run.measure = measure;
      auto result = run.Execute();
      thr.push_back(result.TxnsPerSecond() / 1000.0);
      lat.push_back(result.txn_latency_ms.Mean());
      std::fflush(stdout);
    }
    batched.series.emplace_back(cfg.name, thr);
    batched_lat.series.emplace_back(cfg.name, lat);
  }
  batched.Print(stdout, 2);
  batched_lat.Print(stdout, 3);
  json.Add("fig3d_batched_saturation_ktps", batched);
  json.Add("fig3d_batched_latency_ms", batched_lat);

  if (const char* path = json.Flush()) {
    std::printf("\nWrote JSON throughput summary to %s\n", path);
  }
  return 0;
}
