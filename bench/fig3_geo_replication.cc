// Regenerates Figure 3: YCSB average latency and total throughput versus
// number of closed-loop clients for Eventual / RC / MAV / Master, in three
// deployments:
//   A) two clusters within a single datacenter (us-east AZs),
//   B) two clusters across the continental US (Virginia + Oregon),
//   C) five clusters across the five lowest-cost EC2 regions.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace hat::bench {
namespace {

void RunConfiguration(const char* title,
                      cluster::DeploymentOptions deployment,
                      const std::vector<int>& client_counts,
                      sim::Duration measure) {
  harness::Banner(title);
  auto systems = PaperSystems();

  harness::FigureSeries latency;
  latency.title = "Average transaction latency (ms)";
  latency.x_label = "clients";
  harness::FigureSeries throughput;
  throughput.title = "Total throughput (1000 txns/s)";
  throughput.x_label = "clients";
  for (int n : client_counts) {
    latency.x.push_back(n);
    throughput.x.push_back(n);
  }

  for (const auto& system : systems) {
    std::vector<double> lat, thr;
    for (int n : client_counts) {
      YcsbRun run;
      run.deployment = deployment;
      run.client = system.options;
      run.workload = PaperYcsb();
      run.num_clients = n;
      run.measure = measure;
      auto result = run.Execute();
      lat.push_back(result.txn_latency_ms.Mean());
      thr.push_back(result.TxnsPerSecond() / 1000.0);
      std::fflush(stdout);
    }
    latency.series.emplace_back(system.name, lat);
    throughput.series.emplace_back(system.name, thr);
  }
  latency.Print(stdout, 1);
  throughput.Print(stdout, 2);
}

}  // namespace
}  // namespace hat::bench

int main() {
  using namespace hat::bench;
  std::vector<int> clients = {8, 64, 256, 1024};

  RunConfiguration(
      "Figure 3A: two clusters within a single datacenter (us-east)",
      hat::cluster::DeploymentOptions::SingleDatacenter(), clients,
      2 * hat::sim::kSecond);
  std::printf(
      "\n(paper 3A: master ~2x the latency and ~half the throughput of\n"
      " eventual; RC ~= eventual; MAV ~75%% of eventual)\n");

  RunConfiguration(
      "Figure 3B: clusters in us-east (VA) and us-west-2 (OR)",
      hat::cluster::DeploymentOptions::TwoRegions(), clients,
      2 * hat::sim::kSecond);
  std::printf(
      "\n(paper 3B: master latency ~300ms/txn — a 278-4257%% increase —\n"
      " while HAT configurations match the single-datacenter deployment)\n");

  std::vector<int> clients_c = {64, 256, 1024};
  RunConfiguration(
      "Figure 3C: five clusters (VA, CA, OR, IR, TO)",
      hat::cluster::DeploymentOptions::FiveRegions(), clients_c,
      2 * hat::sim::kSecond);
  std::printf(
      "\n(paper 3C: master ~800ms/txn; MAV throughput halves versus\n"
      " eventual as all-to-all anti-entropy quadruples per-server work)\n");
  return 0;
}
