// Google-benchmark microbenchmarks for the core in-memory machinery:
// multi-version store apply/read/fold, ShardExecutor scheduling overhead,
// DSG construction + cycle search, history analysis, network latency
// sampling, zipfian generation.

#include <benchmark/benchmark.h>

#include "hat/adya/phenomena.h"
#include "hat/common/codec.h"
#include "hat/common/crc32.h"
#include "hat/common/rng.h"
#include "hat/net/topology.h"
#include "hat/server/shard_executor.h"
#include "hat/version/versioned_store.h"

namespace hat {
namespace {

void BM_VersionedStoreApply(benchmark::State& state) {
  version::VersionedStore store;
  Rng rng(1);
  uint64_t logical = 1;
  for (auto _ : state) {
    WriteRecord w;
    w.key = "key" + std::to_string(rng.NextBelow(1000));
    w.value = "value";
    w.ts = {logical++, 1};
    benchmark::DoNotOptimize(store.Apply(w));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VersionedStoreApply);

void BM_VersionedStoreRead(benchmark::State& state) {
  version::VersionedStore store;
  for (uint64_t i = 0; i < 1000; i++) {
    for (uint64_t v = 0; v < static_cast<uint64_t>(state.range(0)); v++) {
      WriteRecord w;
      w.key = "key" + std::to_string(i);
      w.value = "value" + std::to_string(v);
      w.ts = {v + 1, 1};
      store.Apply(w);
    }
  }
  Rng rng(2);
  for (auto _ : state) {
    auto rv = store.Read("key" + std::to_string(rng.NextBelow(1000)));
    benchmark::DoNotOptimize(rv);
  }
}
BENCHMARK(BM_VersionedStoreRead)->Arg(1)->Arg(8)->Arg(64);

/// Workload-shape overhead shared by the apply/read benches above: key
/// construction + RNG, no store call. Subtract this from
/// BM_VersionedStoreApply / BM_VersionedStoreRead to isolate the
/// store-side cost when comparing across revisions.
void BM_KeyConstructionBaseline(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.NextBelow(1000));
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_KeyConstructionBaseline);

/// Apply over a large keyspace (100k distinct keys, single version each):
/// the interned-key hot path — one FNV probe + vector append — under real
/// cache pressure, vs BM_VersionedStoreApply's 1k-key working set.
void BM_VersionedStoreApplyLarge(benchmark::State& state) {
  version::VersionedStore store;
  Rng rng(1);
  uint64_t logical = 1;
  for (auto _ : state) {
    WriteRecord w;
    w.key = "key" + std::to_string(rng.NextBelow(100000));
    w.value = "value";
    w.ts = {logical++, 1};
    benchmark::DoNotOptimize(store.Apply(w));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VersionedStoreApplyLarge);

/// Bound-free reads over a large keyspace — the interner probe + cached
/// fold, with the 100k-key working set defeating the L2.
void BM_VersionedStoreReadLarge(benchmark::State& state) {
  version::VersionedStore store;
  for (uint64_t i = 0; i < 100000; i++) {
    WriteRecord w;
    w.key = "key" + std::to_string(i);
    w.value = "value";
    w.ts = {i + 1, 1};
    store.Apply(w);
  }
  Rng rng(2);
  for (auto _ : state) {
    auto rv = store.Read("key" + std::to_string(rng.NextBelow(100000)));
    benchmark::DoNotOptimize(rv);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VersionedStoreReadLarge);

/// Full-range streamed scan: per-item cost of the ordered-id index walk +
/// cached folds (the server-side predicate-read hot path).
void BM_VersionedStoreScanVisit(benchmark::State& state) {
  version::VersionedStore store;
  uint64_t n = static_cast<uint64_t>(state.range(0));
  for (uint64_t i = 0; i < n; i++) {
    WriteRecord w;
    w.key = "key" + std::to_string(i);
    w.value = "value";
    w.ts = {i + 1, 1};
    store.Apply(w);
  }
  size_t seen = 0;
  for (auto _ : state) {
    seen = 0;
    store.ScanVisit("", "~", std::nullopt,
                    [&seen](const Key&, ReadVersion) { seen++; });
    benchmark::DoNotOptimize(seen);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_VersionedStoreScanVisit)->Arg(1000)->Arg(100000);

version::VersionedStore MakeDeltaChain(uint64_t deltas) {
  version::VersionedStore store;
  WriteRecord base;
  base.key = "ctr";
  base.value = EncodeInt64Value(0);
  base.ts = {1, 1};
  store.Apply(base);
  for (uint64_t i = 2; i < 2 + deltas; i++) {
    WriteRecord d;
    d.key = "ctr";
    d.kind = WriteKind::kDelta;
    d.value = EncodeInt64Value(1);
    d.ts = {i, 1};
    store.Apply(d);
  }
  return store;
}

/// Steady-state read of a delta chain: after the first fold the per-key
/// memo serves every repeat in O(1) — the paper-motivated common case
/// (replicas read far more often than version sets change).
void BM_DeltaFold(benchmark::State& state) {
  auto store = MakeDeltaChain(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Read("ctr"));
  }
}
BENCHMARK(BM_DeltaFold)->Arg(4)->Arg(32)->Arg(64)->Arg(256);

/// The same read forced through a cold fold every iteration (a bounded read
/// ending one version below the newest cannot use the full-fold memo), i.e.
/// the per-read cost the whole data plane paid before fold caching. The
/// BM_DeltaFold/64 : BM_DeltaFoldUncached/64 ratio is the cached-read
/// speedup (acceptance bar: >= 5x on a 64-version chain).
void BM_DeltaFoldUncached(benchmark::State& state) {
  uint64_t deltas = static_cast<uint64_t>(state.range(0));
  auto store = MakeDeltaChain(deltas);
  Timestamp second_newest{deltas, 1};  // newest is {deltas + 1, 1}
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Read("ctr", second_newest));
  }
}
BENCHMARK(BM_DeltaFoldUncached)->Arg(4)->Arg(32)->Arg(64)->Arg(256);

/// Digest-bucket snapshot (round 1 of bucketed repair): constant work
/// regardless of keyspace size, versus Digest()'s per-key walk.
void BM_BucketHashes(benchmark::State& state) {
  version::VersionedStore store;
  for (uint64_t i = 0; i < static_cast<uint64_t>(state.range(0)); i++) {
    WriteRecord w;
    w.key = "key" + std::to_string(i);
    w.value = "value";
    w.ts = {i + 1, 1};
    store.Apply(w);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.BucketHashes());
  }
}
BENCHMARK(BM_BucketHashes)->Arg(1000)->Arg(100000);

void BM_FlatDigest(benchmark::State& state) {
  version::VersionedStore store;
  for (uint64_t i = 0; i < static_cast<uint64_t>(state.range(0)); i++) {
    WriteRecord w;
    w.key = "key" + std::to_string(i);
    w.value = "value";
    w.ts = {i + 1, 1};
    store.Apply(w);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Digest());
  }
}
BENCHMARK(BM_FlatDigest)->Arg(1000)->Arg(100000);

adya::History MakeHistory(int txns, int keys, uint64_t seed) {
  adya::HistoryBuilder b;
  Rng rng(seed);
  for (int t = 1; t <= txns; t++) {
    auto txn = b.Txn(static_cast<uint64_t>(t));
    for (int op = 0; op < 4; op++) {
      Key key = "k" + std::to_string(rng.NextBelow(keys));
      if (rng.NextBool(0.5)) {
        txn.Write(key);
      } else {
        txn.Read(key, rng.NextBelow(static_cast<uint64_t>(t)));
      }
    }
  }
  return b.Build();
}

void BM_DsgBuild(benchmark::State& state) {
  auto history = MakeHistory(static_cast<int>(state.range(0)), 32, 3);
  for (auto _ : state) {
    adya::Dsg dsg(history);
    benchmark::DoNotOptimize(dsg.edges().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DsgBuild)->Arg(100)->Arg(1000);

void BM_AnalyzeHistory(benchmark::State& state) {
  auto history = MakeHistory(static_cast<int>(state.range(0)), 32, 4);
  for (auto _ : state) {
    auto report = adya::Analyze(history);
    benchmark::DoNotOptimize(report.non_serializable);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnalyzeHistory)->Arg(100)->Arg(500);

/// ShardExecutor scheduling arithmetic alone (no completion events): the
/// fixed overhead every server message now pays to be placed on a lane and
/// a core. Arg is the core count (the core scan is the only O(C) part).
void BM_ShardExecutorBook(benchmark::State& state) {
  sim::Simulation sim(1);
  size_t cores = static_cast<size_t>(state.range(0));
  server::ShardExecutor ex(sim,
                           server::ShardExecutor::Options{16, cores, 2.0});
  size_t lane = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.Submit(lane, 1.0, nullptr));
    lane = (lane + 1) & 15;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardExecutorBook)->Arg(1)->Arg(8)->Arg(64);

/// End-to-end executor hot path: submit with a completion callback and
/// drain the simulator — scheduling arithmetic + event heap traffic, i.e.
/// what one HandleMessage costs before any protocol work.
void BM_ShardExecutorSubmitDrain(benchmark::State& state) {
  sim::Simulation sim(1);
  server::ShardExecutor ex(sim, server::ShardExecutor::Options{16, 8, 2.0});
  size_t lane = 0;
  size_t pending = 0;
  for (auto _ : state) {
    ex.Submit(lane, 1.0, []() {});
    lane = (lane + 1) & 15;
    if (++pending == 1024) {  // amortized drain keeps the heap bounded
      sim.Run();
      pending = 0;
    }
  }
  sim.Run();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardExecutorSubmitDrain);

void BM_LatencySample(benchmark::State& state) {
  net::Topology topo;
  net::NodeId a = topo.AddNode({net::Region::kVirginia, 0, 0});
  net::NodeId b = topo.AddNode({net::Region::kTokyo, 0, 0});
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.SampleOneWayUs(a, b, rng));
  }
}
BENCHMARK(BM_LatencySample);

void BM_Zipfian(benchmark::State& state) {
  ZipfianGenerator zipf(100000, 0.99);
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
}
BENCHMARK(BM_Zipfian);

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'z');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

}  // namespace
}  // namespace hat

BENCHMARK_MAIN();
