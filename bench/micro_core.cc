// Google-benchmark microbenchmarks for the core in-memory machinery:
// multi-version store apply/read/fold, DSG construction + cycle search,
// history analysis, network latency sampling, zipfian generation.

#include <benchmark/benchmark.h>

#include "hat/adya/phenomena.h"
#include "hat/common/codec.h"
#include "hat/common/crc32.h"
#include "hat/common/rng.h"
#include "hat/net/topology.h"
#include "hat/version/versioned_store.h"

namespace hat {
namespace {

void BM_VersionedStoreApply(benchmark::State& state) {
  version::VersionedStore store;
  Rng rng(1);
  uint64_t logical = 1;
  for (auto _ : state) {
    WriteRecord w;
    w.key = "key" + std::to_string(rng.NextBelow(1000));
    w.value = "value";
    w.ts = {logical++, 1};
    benchmark::DoNotOptimize(store.Apply(w));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VersionedStoreApply);

void BM_VersionedStoreRead(benchmark::State& state) {
  version::VersionedStore store;
  for (uint64_t i = 0; i < 1000; i++) {
    for (uint64_t v = 0; v < static_cast<uint64_t>(state.range(0)); v++) {
      WriteRecord w;
      w.key = "key" + std::to_string(i);
      w.value = "value" + std::to_string(v);
      w.ts = {v + 1, 1};
      store.Apply(w);
    }
  }
  Rng rng(2);
  for (auto _ : state) {
    auto rv = store.Read("key" + std::to_string(rng.NextBelow(1000)));
    benchmark::DoNotOptimize(rv);
  }
}
BENCHMARK(BM_VersionedStoreRead)->Arg(1)->Arg(8)->Arg(64);

void BM_DeltaFold(benchmark::State& state) {
  version::VersionedStore store;
  WriteRecord base;
  base.key = "ctr";
  base.value = EncodeInt64Value(0);
  base.ts = {1, 1};
  store.Apply(base);
  for (uint64_t i = 2; i < 2 + static_cast<uint64_t>(state.range(0)); i++) {
    WriteRecord d;
    d.key = "ctr";
    d.kind = WriteKind::kDelta;
    d.value = EncodeInt64Value(1);
    d.ts = {i, 1};
    store.Apply(d);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Read("ctr"));
  }
}
BENCHMARK(BM_DeltaFold)->Arg(4)->Arg(32)->Arg(256);

adya::History MakeHistory(int txns, int keys, uint64_t seed) {
  adya::HistoryBuilder b;
  Rng rng(seed);
  for (int t = 1; t <= txns; t++) {
    auto txn = b.Txn(static_cast<uint64_t>(t));
    for (int op = 0; op < 4; op++) {
      Key key = "k" + std::to_string(rng.NextBelow(keys));
      if (rng.NextBool(0.5)) {
        txn.Write(key);
      } else {
        txn.Read(key, rng.NextBelow(static_cast<uint64_t>(t)));
      }
    }
  }
  return b.Build();
}

void BM_DsgBuild(benchmark::State& state) {
  auto history = MakeHistory(static_cast<int>(state.range(0)), 32, 3);
  for (auto _ : state) {
    adya::Dsg dsg(history);
    benchmark::DoNotOptimize(dsg.edges().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DsgBuild)->Arg(100)->Arg(1000);

void BM_AnalyzeHistory(benchmark::State& state) {
  auto history = MakeHistory(static_cast<int>(state.range(0)), 32, 4);
  for (auto _ : state) {
    auto report = adya::Analyze(history);
    benchmark::DoNotOptimize(report.non_serializable);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnalyzeHistory)->Arg(100)->Arg(500);

void BM_LatencySample(benchmark::State& state) {
  net::Topology topo;
  net::NodeId a = topo.AddNode({net::Region::kVirginia, 0, 0});
  net::NodeId b = topo.AddNode({net::Region::kTokyo, 0, 0});
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.SampleOneWayUs(a, b, rng));
  }
}
BENCHMARK(BM_LatencySample);

void BM_Zipfian(benchmark::State& state) {
  ZipfianGenerator zipf(100000, 0.99);
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
}
BENCHMARK(BM_Zipfian);

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'z');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

}  // namespace
}  // namespace hat

BENCHMARK_MAIN();
