// Regenerates the Section 6.2 TPC-C application analysis as a measured
// experiment: runs the five-transaction TPC-C mix under (a) HAT execution
// with MAV + commutative updates and (b) master-based and locking execution,
// and reports the paper's compliance findings:
//   * Order-Status / Stock-Level: read-only, HAT-safe.
//   * Payment: commutative, HAT-safe; Consistency Condition 1 maintained.
//   * New-Order: unique IDs HAT-achievable; *sequential* IDs are lost-update
//     prone under HATs but exact under locking.
//   * Delivery: non-monotonic; double-delivers under HATs.
//   * Foreign keys (order -> order lines): maintained by MAV.

#include <cstdio>

#include "hat/client/sync_client.h"
#include "hat/cluster/deployment.h"
#include "hat/harness/driver.h"
#include "hat/harness/table.h"
#include "hat/workload/tpcc.h"

namespace hat::bench {
namespace {

struct TpccRunResult {
  harness::TpccResult result;
  int64_t w_ytd = 0;
  int64_t district_sum = 0;
  int negative_stock = 0;
};

TpccRunResult RunTpcc(client::ClientOptions copts, bool sequential_ids,
                      uint64_t seed) {
  sim::Simulation sim(seed);
  auto dopts = cluster::DeploymentOptions::TwoRegions();
  cluster::Deployment deployment(sim, dopts);

  workload::TpccConfig config;
  config.warehouses = 2;
  config.districts_per_warehouse = 4;
  config.customers_per_district = 20;
  config.items = 50;
  config.sequential_order_ids = sequential_ids;

  harness::TpccMix mix;  // standard 45/43/4/4/4
  harness::TpccDriver driver(deployment, config, mix, copts, 24, seed);
  TpccRunResult out;
  if (!driver.Populate().ok()) return out;
  out.result = driver.Run(sim::kSecond, 10 * sim::kSecond);
  sim.RunUntil(sim.Now() + 5 * sim::kSecond);  // quiesce anti-entropy

  // Invariant sweep.
  client::ClientOptions check_opts;
  check_opts.home_cluster = 0;
  client::SyncClient checker(sim, deployment.AddClient(check_opts));
  checker.Begin();
  for (int w = 0; w < config.warehouses; w++) {
    out.w_ytd += checker.ReadInt(workload::TpccKeys::WarehouseYtd(w))
                     .value_or(0);
    for (int d = 0; d < config.districts_per_warehouse; d++) {
      out.district_sum +=
          checker.ReadInt(workload::TpccKeys::DistrictYtd(w, d)).value_or(0);
    }
    for (int i = 0; i < config.items; i++) {
      if (checker.ReadInt(workload::TpccKeys::Stock(w, i)).value_or(0) < 0) {
        out.negative_stock++;
      }
    }
  }
  checker.Abort();
  return out;
}

}  // namespace
}  // namespace hat::bench

int main() {
  using namespace hat;
  using namespace hat::bench;
  using client::ClientOptions;
  using client::IsolationLevel;
  using client::SystemMode;

  harness::Banner("Section 6.2: TPC-C transactions under HAT vs non-HAT");

  struct Config {
    const char* name;
    ClientOptions options;
    bool sequential_ids;
  };
  ClientOptions hat_mav;
  hat_mav.isolation = IsolationLevel::kMonotonicAtomicView;
  ClientOptions hat_seq = hat_mav;
  ClientOptions master;
  master.mode = SystemMode::kMaster;
  ClientOptions locking;
  locking.mode = SystemMode::kLocking;

  Config configs[] = {
      {"HAT (MAV, ts-derived IDs)", hat_mav, false},
      {"HAT (MAV, sequential IDs)", hat_seq, true},
      {"Master (seq IDs)", master, true},
      {"Locking/2PL (seq IDs)", locking, true},
  };

  harness::TablePrinter table({"Configuration", "txns/s", "avg ms",
                               "orders", "dup IDs", "max gap", "dup deliv",
                               "FK viol", "CC1 holds", "neg stock"});
  for (const auto& config : configs) {
    auto run = RunTpcc(config.options, config.sequential_ids, 1302);
    const auto& r = run.result;
    table.AddRow(
        {config.name,
         harness::TablePrinter::Num(r.workload.TxnsPerSecond(), 0),
         harness::TablePrinter::Num(r.workload.txn_latency_ms.Mean(), 1),
         std::to_string(r.orders_placed),
         std::to_string(r.duplicate_order_ids),
         std::to_string(r.max_id_gap),
         std::to_string(r.duplicate_deliveries),
         std::to_string(r.fk_violations),
         run.w_ytd == run.district_sum ? "yes" : "NO",
         std::to_string(run.negative_stock)});
    std::fflush(stdout);
  }
  table.Print();

  std::printf(
      "\nPaper's findings reproduced:\n"
      " * four of five transactions execute as HATs; HAT throughput is an\n"
      "   order of magnitude above WAN master/locking execution\n"
      " * timestamp-derived order IDs are unique (dup IDs = 0) but not\n"
      "   sequential; TPC-C-compliant sequential IDs under HAT execution\n"
      "   exhibit Lost Update (dup IDs > 0), locking assigns them exactly\n"
      "   (dups = 0, gaps <= 1) at the price of unavailability\n"
      " * Delivery double-delivers under HATs (non-monotonic delete);\n"
      "   compensation or unavailable coordination is required\n"
      " * Consistency Condition 1 (w_ytd == sum d_ytd) holds via\n"
      "   commutative deltas + MAV atomic multi-key updates\n"
      " * MAV keeps order -> order-line foreign keys intact (FK viol = 0)\n");
  return 0;
}
