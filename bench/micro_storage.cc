// Google-benchmark microbenchmarks for the storage engine substrate:
// WAL append/sync, table build/lookup, LocalStore put/get, recovery replay.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "hat/common/rng.h"
#include "hat/server/persistence_manager.h"
#include "hat/storage/local_store.h"
#include "hat/storage/wal.h"

namespace hat::storage {
namespace {

namespace fs = std::filesystem;

std::string BenchDir(const std::string& tag) {
  auto dir = fs::temp_directory_path() / ("hatkv_bench_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void BM_WalAppend(benchmark::State& state) {
  std::string dir = BenchDir("wal");
  auto wal = WalWriter::Open(dir + "/wal.log");
  std::string payload(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal->Append(payload));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
  fs::remove_all(dir);
}
BENCHMARK(BM_WalAppend)->Arg(64)->Arg(1024)->Arg(8192);

void BM_WalAppendSync(benchmark::State& state) {
  std::string dir = BenchDir("walsync");
  auto wal = WalWriter::Open(dir + "/wal.log");
  std::string payload(1024, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal->Append(payload));
    benchmark::DoNotOptimize(wal->Sync());
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_WalAppendSync);

void BM_WalReplay(benchmark::State& state) {
  std::string dir = BenchDir("walreplay");
  std::string path = dir + "/wal.log";
  {
    auto wal = WalWriter::Open(path);
    std::string payload(256, 'y');
    for (int i = 0; i < state.range(0); i++) {
      (void)wal->Append(payload);
    }
    (void)wal->Sync();
  }
  for (auto _ : state) {
    uint64_t n = 0;
    auto result = WalReplay(path, [&n](std::string_view) { n++; });
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  fs::remove_all(dir);
}
BENCHMARK(BM_WalReplay)->Arg(1000)->Arg(10000);

void BM_LocalStorePut(benchmark::State& state) {
  std::string dir = BenchDir("put");
  LocalStoreOptions opts;
  opts.sync_writes = state.range(0) != 0;
  auto db = LocalStore::Open(dir, opts);
  Rng rng(1);
  std::string value(1024, 'v');
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*db)->Put("key" + std::to_string(i++ % 10000), value));
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_LocalStorePut)->Arg(0)->Arg(1);

void BM_LocalStoreGet(benchmark::State& state) {
  std::string dir = BenchDir("get");
  LocalStoreOptions opts;
  opts.sync_writes = false;
  auto db = LocalStore::Open(dir, opts);
  std::string value(1024, 'v');
  for (int i = 0; i < 10000; i++) {
    (void)(*db)->Put("key" + std::to_string(i), value);
  }
  (void)(*db)->Flush();
  Rng rng(2);
  for (auto _ : state) {
    auto r = (*db)->Get("key" + std::to_string(rng.NextBelow(10000)));
    benchmark::DoNotOptimize(r);
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_LocalStoreGet);

void BM_LocalStoreScan(benchmark::State& state) {
  std::string dir = BenchDir("scan");
  LocalStoreOptions opts;
  opts.sync_writes = false;
  auto db = LocalStore::Open(dir, opts);
  for (int i = 0; i < 10000; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    (void)(*db)->Put(key, "v");
  }
  (void)(*db)->Flush();
  for (auto _ : state) {
    int n = 0;
    (void)(*db)->Scan("key001000", "key002000",
                      [&n](std::string_view, std::string_view) { n++; });
    benchmark::DoNotOptimize(n);
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_LocalStoreScan);

// --- Recovery replay: full history vs checkpoint + tail ------------------
//
// Both benches persist the same write history (range(0) total good records
// spread over 100 keys), then measure a full PersistenceManager::Recover.
// The checkpointed variant snapshots the live set (newest version per key)
// and truncates the good log first, so its replay cost is proportional to
// live + tail instead of the whole history. Their ratio is the recovery
// speedup a checkpoint buys at that history depth.

server::PersistenceManager MakeHistory(const std::string& dir,
                                       int64_t records) {
  server::PersistenceManager pm(dir);
  for (int64_t i = 0; i < records; i++) {
    WriteRecord w;
    w.key = "key" + std::to_string(i % 100);
    w.value = "value" + std::to_string(i);
    w.ts = {static_cast<uint64_t>(i / 100 + 1), 1};
    pm.PersistGood(0, w);
  }
  return pm;
}

void BM_RecoverFullHistory(benchmark::State& state) {
  std::string dir = BenchDir("recover_full");
  auto pm = MakeHistory(dir, state.range(0));
  size_t replayed = 0;
  for (auto _ : state) {
    replayed = 0;
    auto s = pm.Recover(
        1, [&replayed](size_t, const WriteRecord&) { replayed++; },
        [](size_t, const WriteRecord&) {});
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(replayed));
  state.counters["replayed"] = static_cast<double>(replayed);
  fs::remove_all(dir);
}
BENCHMARK(BM_RecoverFullHistory)->Arg(1000)->Arg(10000);

void BM_RecoverCheckpointTail(benchmark::State& state) {
  std::string dir = BenchDir("recover_ckpt");
  auto pm = MakeHistory(dir, state.range(0));
  // Checkpoint the live set (newest version per key), then write a short
  // tail the way a server would keep accepting writes after checkpointing.
  uint64_t newest = static_cast<uint64_t>(state.range(0)) / 100;
  (void)pm.CheckpointShard(0, /*epoch=*/0, [&](const auto& sink) {
    for (int k = 0; k < 100; k++) {
      WriteRecord w;
      w.key = "key" + std::to_string(k);
      w.value = "live";
      w.ts = {newest, 1};
      sink(w);
    }
  });
  for (int i = 0; i < 100; i++) {
    WriteRecord w;
    w.key = "key" + std::to_string(i);
    w.value = "tail";
    w.ts = {newest + 1, 1};
    pm.PersistGood(0, w);
  }
  size_t replayed = 0;
  for (auto _ : state) {
    replayed = 0;
    auto s = pm.Recover(
        1, [&replayed](size_t, const WriteRecord&) { replayed++; },
        [](size_t, const WriteRecord&) {});
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(replayed));
  state.counters["replayed"] = static_cast<double>(replayed);
  fs::remove_all(dir);
}
BENCHMARK(BM_RecoverCheckpointTail)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace hat::storage

BENCHMARK_MAIN();
