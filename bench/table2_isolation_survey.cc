// Regenerates Table 2: default and maximum isolation levels for the 18
// ACID / NewSQL databases surveyed by the paper (January 2013), plus the
// paper's headline statistics.

#include <cstdio>

#include "hat/harness/table.h"
#include "hat/models/survey.h"
#include "hat/models/taxonomy.h"

int main() {
  using namespace hat::models;

  hat::harness::Banner(
      "Table 2: default and maximum isolation levels (ACID/NewSQL survey, "
      "January 2013)");
  hat::harness::TablePrinter table({"Database", "Default", "Maximum"});
  for (const auto& entry : IsolationSurvey()) {
    table.AddRow({std::string(entry.database),
                  std::string(SurveyLevelName(entry.default_level)),
                  std::string(SurveyLevelName(entry.maximum_level))});
  }
  table.Print();

  auto stats = ComputeSurveyStats();
  std::printf(
      "\n%d of %d databases provide serializability by default;\n"
      "%d do not offer serializability at all.\n"
      "(paper: 3 of 18 by default, 8 not at all)\n",
      stats.serializable_by_default, stats.total,
      stats.serializable_unavailable);

  std::printf(
      "\nHAT-compliance of the surveyed defaults (per Table 3):\n"
      "  RC default      -> achievable with high availability\n"
      "  RR/SI/CS/CR/S   -> require unavailable coordination\n");
  return 0;
}
