// Regenerates Figure 5: proportion of reads and writes versus throughput
// (VA + OR clusters). The paper: with all reads MAV is within 4.8% of
// eventual; with all writes within 33%; eventual's all-write throughput is
// ~3.9x lower than its all-read throughput.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace hat::bench;
  std::vector<double> write_fractions = {0.0, 0.25, 0.5, 0.75, 1.0};
  auto systems = PaperSystems();

  hat::harness::Banner(
      "Figure 5: write proportion vs throughput (1000 txns/s), VA+OR");
  hat::harness::FigureSeries fig;
  fig.title = "Total throughput (1000 txns/s)";
  fig.x_label = "write_pct";
  for (double f : write_fractions) fig.x.push_back(f * 100);

  for (const auto& system : systems) {
    std::vector<double> thr;
    for (double f : write_fractions) {
      YcsbRun run;
      run.deployment = hat::cluster::DeploymentOptions::TwoRegions();
      run.client = system.options;
      run.workload = PaperYcsb();
      run.workload.read_fraction = 1.0 - f;
      run.num_clients = 256;
      run.measure = 2 * hat::sim::kSecond;
      auto result = run.Execute();
      thr.push_back(result.TxnsPerSecond() / 1000.0);
    }
    fig.series.emplace_back(system.name, thr);
  }
  fig.Print(stdout, 2);

  // The paper also reports the Facebook-like 99.8% read point.
  {
    YcsbRun run;
    run.deployment = hat::cluster::DeploymentOptions::TwoRegions();
    run.workload = PaperYcsb();
    run.workload.read_fraction = 0.998;
    run.num_clients = 256;
    run.measure = 2 * hat::sim::kSecond;
    run.client = PaperSystems()[0].options;  // eventual
    double eventual = run.Execute().TxnsPerSecond();
    run.client = PaperSystems()[2].options;  // MAV
    double mav = run.Execute().TxnsPerSecond();
    std::printf("\nAt 99.8%% reads: MAV overhead vs eventual = %.1f%%\n",
                100.0 * (eventual - mav) / eventual);
  }
  std::printf(
      "\n(paper: MAV within 4.8%% of eventual at all-reads, within 33%% at\n"
      " all-writes; MAV incurs ~7%% overhead at 99.8%% reads)\n");
  return 0;
}
