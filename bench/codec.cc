// Benchmarks the binary wire codec (net::codec) and gates its invariants.
//
// Three parts, all reported to stdout and (via HAT_BENCH_JSON) the CI
// artifact:
//   1. Encode / decode throughput (GB/s and Mmsgs/s) on the three envelope
//      shapes that dominate wire traffic: AntiEntropyBatch (replication),
//      ClientBatchRequest (group commit), ShardSnapshotChunk (migration).
//      Decode is measured both owning (materialized Envelope) and zero-copy
//      (frame views) where a view type exists.
//   2. An allocation gate: the steady-state encode loop into a reused
//      buffer, and the zero-copy decode loop, must perform ZERO heap
//      allocations. Counted by overriding global operator new.
//   3. A round-trip coverage gate: every Message alternative must encode,
//      decode, and re-encode byte-exactly, and corrupted / truncated /
//      overlong frames must be rejected without crashing.
// The process exits nonzero if any gate fails, so the CI perf job doubles
// as a codec conformance check.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "bench/bench_util.h"
#include "hat/common/rng.h"
#include "hat/net/codec.h"
#include "hat/net/message.h"

// ---------------------------------------------------------------------------
// Heap allocation counter: every path through global operator new bumps
// g_allocs, so a loop whose before/after delta is zero provably never
// touched the heap. (Aligned overloads are left at their defaults; nothing
// in the codec uses over-aligned types.)

namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hat::bench {
namespace {

namespace codec = net::codec;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Realistic payloads. Values follow the paper's YCSB configuration (1 KiB);
// keys look like YCSB keys; a fraction of records carry MAV sibling and
// causal dependency metadata.

WriteRecord MakeRecord(Rng& rng, size_t value_bytes, bool with_meta) {
  WriteRecord w;
  w.key = "user" + std::to_string(10000000 + rng.NextBelow(90000000));
  w.value.resize(value_bytes);
  for (size_t i = 0; i < value_bytes; i += 61) {
    w.value[i] = static_cast<char>('a' + rng.NextBelow(26));
  }
  w.ts.logical = rng.NextUint64() >> 16;
  w.ts.client_id = static_cast<uint32_t>(rng.NextBelow(1024));
  w.ts.seq = static_cast<uint32_t>(rng.NextBelow(8));
  if (with_meta) {
    w.sibs = {w.key, "user" + std::to_string(rng.NextBelow(90000000))};
    Dependency d;
    d.key = "user" + std::to_string(rng.NextBelow(90000000));
    d.ts = Timestamp{w.ts.logical - 1, w.ts.client_id, 0};
    w.deps = {d};
  }
  return w;
}

net::Envelope Wrap(net::Message msg) {
  net::Envelope env;
  env.from = 1;
  env.to = 2;
  env.rpc_id = 77;
  env.msg = std::move(msg);
  return env;
}

net::Envelope MakeAntiEntropyEnvelope(Rng& rng, size_t records,
                                      size_t value_bytes) {
  net::AntiEntropyBatch b;
  b.batch_id = 424242;
  b.mode = net::PutMode::kEventual;
  b.shard = 5;
  for (size_t i = 0; i < records; i++) {
    b.writes.push_back(MakeRecord(rng, value_bytes, i % 4 == 0));
  }
  return Wrap(std::move(b));
}

net::Envelope MakeClientBatchEnvelope(Rng& rng, size_t ops,
                                      size_t value_bytes) {
  net::ClientBatchRequest cb;
  for (size_t i = 0; i < ops; i++) {
    if (i % 2 == 0) {
      net::PutRequest put;
      put.write = MakeRecord(rng, value_bytes, false);
      cb.ops.emplace_back(std::move(put));
    } else {
      net::GetRequest get;
      get.key = "user" + std::to_string(rng.NextBelow(90000000));
      if (i % 4 == 1) get.required = Timestamp{99, 3, 0};
      cb.ops.emplace_back(std::move(get));
    }
  }
  return Wrap(std::move(cb));
}

net::Envelope MakeSnapshotChunkEnvelope(Rng& rng, size_t records,
                                        size_t value_bytes) {
  net::ShardSnapshotChunk c;
  c.migration_id = 9;
  c.shard = 2;
  c.seq = 17;
  c.done = false;
  for (size_t i = 0; i < records; i++) {
    c.writes.push_back(MakeRecord(rng, value_bytes, false));
  }
  return Wrap(std::move(c));
}

// ---------------------------------------------------------------------------
// Throughput measurement.

struct LoopResult {
  double gbps = 0;
  double mmsgs = 0;
  uint64_t allocs = 0;  // heap allocations across the whole timed loop
};

template <typename Body>
LoopResult TimedLoop(size_t frame_bytes, double target_s, Body&& body) {
  // Untimed warmup pass populates buffer capacity and code caches.
  body();
  uint64_t iters = 0;
  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  double elapsed;
  do {
    for (int i = 0; i < 16; i++) body();
    iters += 16;
    elapsed = SecondsSince(t0);
  } while (elapsed < target_s);
  LoopResult r;
  r.gbps = static_cast<double>(iters) * static_cast<double>(frame_bytes) /
           elapsed / 1e9;
  r.mmsgs = static_cast<double>(iters) / elapsed / 1e6;
  r.allocs = g_allocs.load(std::memory_order_relaxed) - before;
  return r;
}

struct Scenario {
  const char* name;
  net::Envelope env;
  bool has_view;
};

// ---------------------------------------------------------------------------
// Round-trip / corruption coverage: one populated instance of every Message
// alternative. The static_assert pins the family size so adding an
// alternative without extending this list fails the build here too.

static_assert(std::variant_size_v<net::Message> == 22,
              "net::Message grew: add the new alternative to OneOfEach() "
              "so bench_codec keeps gating round-trip coverage");

std::vector<net::Envelope> OneOfEach(Rng& rng) {
  std::vector<net::Message> msgs;
  msgs.emplace_back(net::PingRequest{});
  msgs.emplace_back(net::PingResponse{});
  {
    net::PutRequest m;
    m.write = MakeRecord(rng, 48, true);
    m.mode = net::PutMode::kMav;
    msgs.emplace_back(std::move(m));
  }
  {
    net::PutResponse m;
    m.ok = true;
    msgs.emplace_back(m);
  }
  {
    net::GetRequest m;
    m.key = "k1";
    m.required = Timestamp{7, 1, 0};
    msgs.emplace_back(std::move(m));
  }
  {
    net::GetResponse m;
    m.found = true;
    m.value = "value";
    m.ts = Timestamp{9, 2, 1};
    m.sibs = {"a", "b"};
    Dependency d;
    d.key = "d";
    d.ts = Timestamp{3, 1, 0};
    m.deps = {d};
    msgs.emplace_back(std::move(m));
  }
  {
    net::ScanRequest m;
    m.lo = "a";
    m.hi = "z";
    m.bound = Timestamp{5, 0, 0};
    msgs.emplace_back(std::move(m));
  }
  {
    net::ScanResponse m;
    net::ScanResponse::Item item;
    item.key = "k";
    item.value = "v";
    item.ts = Timestamp{1, 2, 3};
    item.sibs = {"s"};
    m.items.push_back(std::move(item));
    msgs.emplace_back(std::move(m));
  }
  {
    net::NotifyRequest m;
    m.ts = Timestamp{11, 4, 0};
    m.sender = 6;
    msgs.emplace_back(m);
  }
  {
    net::AntiEntropyBatch m;
    m.batch_id = 3;
    m.writes = {MakeRecord(rng, 32, true), MakeRecord(rng, 32, false)};
    msgs.emplace_back(std::move(m));
  }
  msgs.emplace_back(net::AntiEntropyAck{42});
  {
    net::DigestRequest m;
    m.latest = {{"k", Timestamp{8, 1, 0}}};
    m.reply_allowed = false;
    m.buckets = {1, 2};
    m.shard = 3;
    msgs.emplace_back(std::move(m));
  }
  {
    net::BucketDigest m;
    m.hashes = {1, 2, 3};
    m.shard = 7;
    msgs.emplace_back(std::move(m));
  }
  {
    net::ShardDigest m;
    m.hashes = {11, 22};
    m.shards = {0, 1};
    msgs.emplace_back(std::move(m));
  }
  {
    net::LockRequest m;
    m.key = "k";
    m.exclusive = true;
    m.txn = Timestamp{13, 5, 0};
    msgs.emplace_back(std::move(m));
  }
  {
    net::LockResponse m;
    m.granted = true;
    msgs.emplace_back(m);
  }
  {
    net::UnlockRequest m;
    m.keys = {"k1", "k2"};
    m.txn = Timestamp{13, 5, 0};
    msgs.emplace_back(std::move(m));
  }
  {
    net::ShardSnapshotRequest m;
    m.migration_id = 9;
    m.shard = 2;
    msgs.emplace_back(m);
  }
  {
    net::ShardSnapshotChunk m;
    m.migration_id = 9;
    m.shard = 2;
    m.seq = 1;
    m.done = true;
    m.writes = {MakeRecord(rng, 32, false)};
    msgs.emplace_back(std::move(m));
  }
  {
    net::ShardSnapshotAck m;
    m.migration_id = 9;
    m.seq = 3;
    msgs.emplace_back(m);
  }
  {
    net::ClientBatchRequest m;
    net::PutRequest put;
    put.write = MakeRecord(rng, 32, false);
    m.ops.emplace_back(std::move(put));
    net::GetRequest get;
    get.key = "g";
    m.ops.emplace_back(std::move(get));
    msgs.emplace_back(std::move(m));
  }
  {
    net::ClientBatchResponse m;
    net::PutResponse pr;
    pr.ok = true;
    m.replies.emplace_back(pr);
    net::GetResponse gr;
    gr.found = true;
    gr.value = "v";
    gr.ts = Timestamp{4, 4, 0};
    m.replies.emplace_back(std::move(gr));
    msgs.emplace_back(std::move(m));
  }

  std::vector<net::Envelope> envs;
  for (auto& m : msgs) {
    net::Envelope env = Wrap(std::move(m));
    env.is_response = envs.size() % 2 == 1;
    envs.push_back(std::move(env));
  }
  return envs;
}

int g_failures = 0;

void Expect(bool cond, const char* what, size_t alt) {
  if (!cond) {
    g_failures++;
    std::fprintf(stderr, "FAIL (alternative %zu): %s\n", alt, what);
  }
}

void RunCoverageGate(bool quick) {
  Rng rng(0xf22);
  auto envs = OneOfEach(rng);
  std::set<size_t> seen;
  const int flips = quick ? 32 : 256;

  for (const auto& env : envs) {
    const size_t alt = env.msg.index();
    seen.insert(alt);

    std::string frame;
    codec::EncodeEnvelope(env, &frame);
    Expect(frame.size() == codec::EncodedFrameSize(env),
           "EncodedFrameSize disagrees with EncodeEnvelope", alt);

    // Round trip, byte-exact: canonical varints make re-encode equality
    // equivalent to field equality, with no operator== needed.
    net::Envelope out;
    Expect(codec::DecodeEnvelope(frame, &out), "decode of valid frame", alt);
    Expect(out.msg.index() == alt, "decoded alternative mismatch", alt);
    std::string again;
    codec::EncodeEnvelope(out, &again);
    Expect(again == frame, "re-encode not byte-exact", alt);

    // Every truncation must be rejected (and must not crash).
    for (size_t n = 0; n < frame.size(); n++) {
      net::Envelope sink;
      if (codec::DecodeEnvelope(std::string_view(frame.data(), n), &sink)) {
        Expect(false, "truncated frame accepted", alt);
        break;
      }
    }

    // Any single flipped byte must be rejected: payload flips are caught by
    // CRC, header flips by length/CRC mismatch.
    for (int i = 0; i < flips; i++) {
      std::string bad = frame;
      const size_t pos = rng.NextBelow(bad.size());
      bad[pos] = static_cast<char>(
          static_cast<unsigned char>(bad[pos]) ^
          static_cast<unsigned char>(1u << rng.NextBelow(8)));
      net::Envelope sink;
      if (codec::DecodeEnvelope(bad, &sink)) {
        Expect(false, "corrupted frame accepted", alt);
        break;
      }
    }

    // Overlong: trailing garbage after the frame, and a declared length
    // pointing past the available bytes, must both be rejected.
    {
      std::string padded = frame + '\x00';
      net::Envelope sink;
      Expect(!codec::DecodeEnvelope(padded, &sink),
             "trailing garbage accepted", alt);
      std::string stretched = frame;
      stretched[0] = static_cast<char>(
          static_cast<unsigned char>(stretched[0]) + 1);
      std::string_view stream = stretched;
      std::string_view payload;
      Expect(codec::ExtractFrame(&stream, &payload) != codec::FrameStatus::kOk,
             "overlong declared length accepted", alt);
    }
  }

  Expect(seen.size() == std::variant_size_v<net::Message>,
         "not every Message alternative was exercised", seen.size());
  std::printf("round-trip coverage: %zu/%zu alternatives, %d flips each: %s\n",
              seen.size(), std::variant_size_v<net::Message>, flips,
              g_failures == 0 ? "ok" : "FAILED");
}

}  // namespace
}  // namespace hat::bench

int main() {
  using namespace hat::bench;
  namespace codec = hat::net::codec;

  const bool quick = QuickBench();
  const double target_s = quick ? 0.05 : 0.4;
  hat::Rng rng(0x10a7);

  hat::harness::Banner("Wire codec throughput (net::codec)");
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      {"AntiEntropyBatch 64x1KiB", MakeAntiEntropyEnvelope(rng, 64, 1024),
       true});
  scenarios.push_back(
      {"ClientBatchRequest 8 ops", MakeClientBatchEnvelope(rng, 8, 1024),
       false});
  scenarios.push_back(
      {"ShardSnapshotChunk 128x1KiB",
       MakeSnapshotChunkEnvelope(rng, 128, 1024), true});

  hat::harness::FigureSeries gbps;
  gbps.title =
      "Codec throughput, GB/s (scenarios: 1=AntiEntropyBatch 64x1KiB, "
      "2=ClientBatchRequest 8 ops, 3=ShardSnapshotChunk 128x1KiB; "
      "decode_view is 0 where no view type exists)";
  gbps.x_label = "scenario";
  hat::harness::FigureSeries mmsgs;
  mmsgs.title = "Codec throughput, million envelopes/s (same scenarios)";
  mmsgs.x_label = "scenario";
  for (size_t i = 0; i < scenarios.size(); i++) {
    gbps.x.push_back(static_cast<double>(i + 1));
    mmsgs.x.push_back(static_cast<double>(i + 1));
  }

  std::vector<double> enc_gbps, dec_gbps, view_gbps, enc_mmsgs, dec_mmsgs;
  for (const Scenario& sc : scenarios) {
    const size_t frame_bytes = codec::EncodedFrameSize(sc.env);

    // Encode into one reused buffer — the hot path a sender runs. Must not
    // allocate once the buffer has reached capacity.
    std::string buf;
    LoopResult enc = TimedLoop(frame_bytes, target_s, [&] {
      buf.clear();
      codec::EncodeEnvelope(sc.env, &buf);
    });
    if (enc.allocs != 0) {
      g_failures++;
      std::fprintf(stderr,
                   "FAIL: steady-state encode of %s performed %llu heap "
                   "allocations (expected 0)\n",
                   sc.name, static_cast<unsigned long long>(enc.allocs));
    }

    // Owning decode: materializes strings/vectors; allocations expected.
    std::string frame = buf;
    uint64_t sink = 0;
    LoopResult dec = TimedLoop(frame_bytes, target_s, [&] {
      hat::net::Envelope out;
      if (!codec::DecodeEnvelope(frame, &out)) g_failures++;
      sink += out.msg.index();
    });

    // Zero-copy decode via frame views where the type has one; walks every
    // record and touches key/value lengths. Must not allocate at all.
    LoopResult view{};
    if (sc.has_view) {
      view = TimedLoop(frame_bytes, target_s, [&] {
        std::string_view stream = frame;
        std::string_view payload;
        if (codec::ExtractFrame(&stream, &payload) !=
            codec::FrameStatus::kOk) {
          g_failures++;
          return;
        }
        codec::PayloadHeader hdr;
        bool ok;
        auto touch = [&](const codec::WriteRecordView& w) {
          sink += w.key.size() + w.value.size() + w.ts.seq;
        };
        if (std::holds_alternative<hat::net::AntiEntropyBatch>(sc.env.msg)) {
          codec::AntiEntropyBatchView v;
          ok = codec::GetAntiEntropyBatchView(payload, &hdr, &v) &&
               v.ForEachWrite(touch);
        } else {
          codec::ShardSnapshotChunkView v;
          ok = codec::GetShardSnapshotChunkView(payload, &hdr, &v) &&
               v.ForEachWrite(touch);
        }
        if (!ok) g_failures++;
      });
      if (view.allocs != 0) {
        g_failures++;
        std::fprintf(stderr,
                     "FAIL: zero-copy decode of %s performed %llu heap "
                     "allocations (expected 0)\n",
                     sc.name, static_cast<unsigned long long>(view.allocs));
      }
    }
    if (sink == 0xdeadbeef) std::printf(" ");  // defeat dead-code elimination

    std::printf(
        "%-28s frame=%6zu B  encode %6.2f GB/s (%5.2f Mmsg/s, 0 allocs)  "
        "decode %6.2f GB/s  view %6.2f GB/s\n",
        sc.name, frame_bytes, enc.gbps, enc.mmsgs, dec.gbps, view.gbps);
    enc_gbps.push_back(enc.gbps);
    dec_gbps.push_back(dec.gbps);
    view_gbps.push_back(view.gbps);
    enc_mmsgs.push_back(enc.mmsgs);
    dec_mmsgs.push_back(dec.mmsgs);
  }
  gbps.series.emplace_back("encode", enc_gbps);
  gbps.series.emplace_back("decode_owning", dec_gbps);
  gbps.series.emplace_back("decode_view", view_gbps);
  mmsgs.series.emplace_back("encode", enc_mmsgs);
  mmsgs.series.emplace_back("decode_owning", dec_mmsgs);

  hat::harness::Banner("Round-trip and corruption coverage gate");
  RunCoverageGate(quick);

  JsonSummary json;
  json.Add("codec_gbps", gbps);
  json.Add("codec_mmsgs", mmsgs);
  if (const char* path = json.Flush()) {
    std::printf("\nWrote JSON throughput summary to %s\n", path);
  }

  if (g_failures != 0) {
    std::fprintf(stderr, "\nbench_codec: %d gate failure(s)\n", g_failures);
    return 1;
  }
  std::printf("\nbench_codec: all gates passed\n");
  return 0;
}
