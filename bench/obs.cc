// Benchmarks and gates the observability layer (hat::obs).
//
// Three parts, all reported to stdout and (via HAT_BENCH_JSON) the CI
// artifact:
//   1. Tracing-off overhead gate: the ShardExecutor Submit/Book hot loop is
//      timed with no tracer attached (the default every figure bench runs
//      at) and with a tracer attached but disabled (the branch-only cost a
//      deployment pays once EnableObservability has ever run). Thread CPU
//      time, min over many interleaved chunks per configuration; the
//      disabled configuration must stay within 2% of baseline or the
//      process exits nonzero.
//   2. A traced smoke run: a small two-cluster MAV deployment with tracing
//      and sampling on, verifying the span tree and the exporters end to
//      end (spans recorded, Chrome trace + metrics JSON written and
//      non-trivial).
//   3. Recording throughput: spans recorded per second into the ring buffer
//      (the cost ceiling for sample_every = 1 tracing).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "hat/obs/export.h"
#include "hat/obs/trace.h"
#include "hat/server/shard_executor.h"

namespace hat::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// -------------------------------------------------------------------------
// Part 1: tracing-off overhead on the ShardExecutor hot path
// -------------------------------------------------------------------------

/// Thread CPU time — immune to the wall-clock jitter a shared CI runner
/// injects (scheduler preemption, noisy neighbours).
double CpuNow() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// One timed chunk: `n` submits spread across the lanes of a fresh
/// executor, then a drain. Returns CPU seconds. `tracer` is attached first
/// when non-null (disabled — the branch cost under measurement).
double SubmitChunk(size_t n, obs::Tracer* tracer) {
  sim::Simulation sim(7);
  server::ShardExecutor::Options opts;
  opts.shards = 8;
  opts.cores = 4;
  server::ShardExecutor exec(sim, opts);
  if (tracer != nullptr) exec.set_tracer(tracer, /*node=*/0);
  double t0 = CpuNow();
  for (size_t i = 0; i < n; i++) {
    exec.Submit(i % exec.lane_count(), 1.0, nullptr);
  }
  sim.Run();
  return CpuNow() - t0;
}

int OverheadGate(JsonSummary& json) {
  const size_t kChunkSubmits = 100000;
  const int kChunks = QuickBench() ? 30 : 60;
  const double kMaxOverhead = 0.02;

  // Noise-robust statistic: many small chunks, strictly interleaved
  // (alternating which configuration runs first) so load drift hits both
  // equally, measured in thread CPU time, keeping the *minimum* chunk time
  // per configuration. The minimum converges on the undisturbed cost —
  // interference only ever adds time — so the ratio of minima isolates the
  // real per-submit branch cost from scheduler jitter. Shared runners can
  // still spike an entire measurement (frequency scaling hits CPU time
  // too), so the gate allows up to kAttempts independent measurements and
  // passes on the first clean one: a genuine regression fails every
  // attempt, a transient spike cannot survive three.
  const int kAttempts = 3;
  obs::Tracer disabled_tracer;  // never enabled: pure branch cost
  double base_mops = 0, disabled_mops = 0, overhead = 1e100;
  harness::Banner("obs: tracing-off overhead on ShardExecutor Submit");
  for (int attempt = 0; attempt < kAttempts && overhead > kMaxOverhead;
       attempt++) {
    double best_base = 1e100, best_disabled = 1e100;
    for (int c = 0; c < kChunks; c++) {
      if (c % 2 == 0) {
        best_base = std::min(best_base, SubmitChunk(kChunkSubmits, nullptr));
        best_disabled = std::min(best_disabled,
                                 SubmitChunk(kChunkSubmits, &disabled_tracer));
      } else {
        best_disabled = std::min(best_disabled,
                                 SubmitChunk(kChunkSubmits, &disabled_tracer));
        best_base = std::min(best_base, SubmitChunk(kChunkSubmits, nullptr));
      }
    }
    base_mops = static_cast<double>(kChunkSubmits) / best_base / 1e6;
    disabled_mops = static_cast<double>(kChunkSubmits) / best_disabled / 1e6;
    overhead = best_disabled / best_base - 1.0;
    std::printf("  attempt %d: base %.2f Msubmits/s, disabled %.2f Msubmits/s"
                " -> %+.2f%% (min of %d CPU-time chunks)\n",
                attempt + 1, base_mops, disabled_mops, 100.0 * overhead,
                kChunks);
  }
  std::printf("  overhead:             %+.2f%% (gate: <= %.0f%%)\n",
              100.0 * overhead, 100.0 * kMaxOverhead);

  harness::FigureSeries fig;
  fig.title = "ShardExecutor submit throughput (Msubmits/s)";
  fig.x = {0, 1};
  fig.x_label = "0 = no tracer, 1 = attached but disabled";
  fig.series.emplace_back("msubmits_per_s",
                          std::vector<double>{base_mops, disabled_mops});
  json.Add("obs_submit_overhead", fig);

  if (overhead > kMaxOverhead) {
    std::fprintf(stderr,
                 "FAIL: disabled-tracing overhead %.2f%% exceeds %.0f%%\n",
                 100.0 * overhead, 100.0 * kMaxOverhead);
    return 1;
  }
  return 0;
}

// -------------------------------------------------------------------------
// Part 2: traced + sampled smoke run through a real deployment
// -------------------------------------------------------------------------

int TracedSmokeRun(JsonSummary& json) {
  sim::Simulation sim(42);
  auto opts = cluster::DeploymentOptions::TwoRegions();
  opts.servers_per_cluster = 2;
  opts.server.shards_per_server = 2;
  cluster::Deployment deployment(sim, opts);

  cluster::ObsConfig obs_config;
  obs_config.tracing = true;
  obs_config.trace_sample_every = 1;
  obs_config.sampling = true;
  obs_config.sample_period = 10 * sim::kMillisecond;
  deployment.EnableObservability(obs_config);

  workload::YcsbOptions wl = PaperYcsb();
  wl.num_keys = 500;
  wl.value_size = 64;
  client::ClientOptions copts;
  copts.isolation = client::IsolationLevel::kMonotonicAtomicView;
  harness::YcsbDriver driver(deployment, wl, copts, /*num_clients=*/8,
                             /*seed=*/42 ^ 0x9e37);
  driver.Preload();
  harness::WorkloadResult result =
      driver.Run(100 * sim::kMillisecond, 400 * sim::kMillisecond);

  std::vector<obs::Span> spans = deployment.tracer()->Spans();
  std::set<obs::SpanKind> kinds;
  for (const obs::Span& s : spans) kinds.insert(s.kind);

  harness::Banner("obs: traced MAV smoke run (2x2 servers, 8 clients)");
  std::printf("  committed txns:  %llu\n  spans recorded:  %zu (%llu dropped)\n",
              static_cast<unsigned long long>(result.committed), spans.size(),
              static_cast<unsigned long long>(deployment.tracer()->dropped()));
  std::printf("  span kinds seen: ");
  for (obs::SpanKind k : kinds) std::printf("%s ", obs::SpanKindName(k));
  std::printf("\n  metrics sampled: %zu metrics x %zu ticks\n",
              deployment.sampler()->registry().size(),
              deployment.sampler()->times().size());

  int failures = 0;
  auto require = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      failures++;
    }
  };
  require(result.committed > 0, "smoke run committed no transactions");
  require(!spans.empty(), "traced run recorded no spans");
  require(kinds.count(obs::SpanKind::kTxn) != 0, "no kTxn root spans");
  require(kinds.count(obs::SpanKind::kQueueWait) != 0, "no kQueueWait spans");
  require(kinds.count(obs::SpanKind::kExecute) != 0, "no kExecute spans");
  require(kinds.count(obs::SpanKind::kRpcFlight) != 0, "no kRpcFlight spans");
  require(kinds.count(obs::SpanKind::kMavAckWait) != 0,
          "no kMavAckWait spans (MAV fan-in untraced)");
  for (const obs::Span& s : spans) {
    if (s.end_us < s.start_us) {
      require(false, "span with end_us < start_us");
      break;
    }
  }
  require(deployment.sampler()->times().size() >= 10,
          "sampler recorded fewer ticks than the run length implies");

  // Exporters must produce loadable output. Default paths land in the CWD
  // (the CI perf job uploads them); HAT_TRACE_OUT/HAT_METRICS_OUT override.
  const char* trace_path = TraceOutPath();
  const char* metrics_path = MetricsOutPath();
  std::string trace_out = trace_path ? trace_path : "obs_smoke_trace.json";
  std::string metrics_out =
      metrics_path ? metrics_path : "obs_smoke_metrics.json";
  require(obs::WriteChromeTrace(trace_out, spans),
          "WriteChromeTrace failed");
  require(obs::WriteMetricsJson(metrics_out, *deployment.sampler()),
          "WriteMetricsJson failed");
  std::printf("  wrote %s and %s\n", trace_out.c_str(), metrics_out.c_str());

  harness::FigureSeries fig;
  fig.title = "Traced smoke run";
  fig.x = {0};
  fig.series.emplace_back(
      "spans", std::vector<double>{static_cast<double>(spans.size())});
  fig.series.emplace_back(
      "span_kinds", std::vector<double>{static_cast<double>(kinds.size())});
  fig.series.emplace_back(
      "committed_txns",
      std::vector<double>{static_cast<double>(result.committed)});
  json.Add("obs_trace_smoke", fig);
  return failures;
}

// -------------------------------------------------------------------------
// Part 3: raw span-recording throughput
// -------------------------------------------------------------------------

void RecordThroughput(JsonSummary& json) {
  const size_t kSpans = QuickBench() ? 500000 : 2000000;
  obs::Tracer::Options topts;
  topts.ring_capacity = 1 << 14;
  obs::Tracer tracer(topts);
  tracer.set_enabled(true);
  obs::Span span;
  span.trace_id = 1;
  span.kind = obs::SpanKind::kExecute;
  span.node = 3;
  span.lane = 1;
  Clock::time_point t0 = Clock::now();
  for (size_t i = 0; i < kSpans; i++) {
    span.span_id = i + 1;
    span.start_us = i;
    span.end_us = i + 1;
    tracer.Record(span);
  }
  double secs = SecondsSince(t0);
  double mspans = static_cast<double>(kSpans) / secs / 1e6;
  harness::Banner("obs: span recording throughput (ring buffer)");
  std::printf("  %.2f Mspans/s (%zu spans, ring 16k, %llu evicted)\n", mspans,
              kSpans, static_cast<unsigned long long>(tracer.dropped()));

  harness::FigureSeries fig;
  fig.title = "Span recording throughput (Mspans/s)";
  fig.x = {0};
  fig.series.emplace_back("mspans_per_s", std::vector<double>{mspans});
  json.Add("obs_record_throughput", fig);
}

int Main() {
  JsonSummary json;
  int failures = 0;
  failures += OverheadGate(json);
  failures += TracedSmokeRun(json);
  RecordThroughput(json);
  if (const char* path = json.Flush()) {
    std::printf("\nWrote JSON summary to %s\n", path);
  }
  std::printf("\n%s\n", failures == 0 ? "ALL OBS GATES PASS" : "GATES FAILED");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace hat::bench

int main() { return hat::bench::Main(); }
