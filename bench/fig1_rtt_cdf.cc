// Regenerates Figure 1: CDFs of round-trip times for the slowest intra- and
// inter-availability-zone links compared against cross-region links
// (east-b:east-b, east-c:east-d, CA:OR, SI:SP).

#include <cstdio>
#include <memory>

#include "hat/common/histogram.h"
#include "hat/harness/table.h"
#include "hat/net/rpc.h"

namespace hat {
namespace {

class Pinger : public net::RpcNode {
 public:
  using net::RpcNode::RpcNode;
  void HandleMessage(const net::Envelope& env) override {
    Reply(env, net::PingResponse{});
  }
};

Histogram MeasureLink(const net::Location& a, const net::Location& b,
                      int samples, uint64_t seed) {
  sim::Simulation sim(seed);
  net::Topology topo;
  net::NodeId na = topo.AddNode(a);
  net::NodeId nb = topo.AddNode(b);
  net::Network network(sim, std::move(topo));
  Pinger pa(sim, network, na);
  Pinger pb(sim, network, nb);
  // Record in microseconds: the histogram's resolution is 1% above 1.0, so
  // sub-millisecond intra-AZ RTTs need the finer unit.
  Histogram rtt_us;
  for (int i = 0; i < samples; i++) {
    sim.At(static_cast<sim::Duration>(i) * sim::kSecond, [&, i]() {
      sim::SimTime sent = sim.Now();
      pa.Call(nb, net::PingRequest{}, 10 * sim::kSecond,
              [&, sent](Status s, const net::Message*) {
                if (s.ok()) {
                  rtt_us.Record(static_cast<double>(sim.Now() - sent));
                }
              });
    });
  }
  sim.Run();
  return rtt_us;
}

}  // namespace
}  // namespace hat

int main() {
  using hat::net::Location;
  using hat::net::Region;
  constexpr int kSamples = 5000;

  struct Link {
    const char* name;
    Location a, b;
  };
  // The four links Figure 1 plots.
  Link links[] = {
      {"east-b:east-b", {Region::kVirginia, 0, 0}, {Region::kVirginia, 0, 1}},
      {"east-c:east-d", {Region::kVirginia, 1, 0}, {Region::kVirginia, 2, 0}},
      {"CA:OR", {Region::kCalifornia, 0, 0}, {Region::kOregon, 0, 0}},
      {"SI:SP", {Region::kSingapore, 0, 0}, {Region::kSaoPaulo, 0, 0}},
  };

  hat::harness::Banner(
      "Figure 1: CDF of round-trip times (ms) for intra-AZ, cross-AZ, and "
      "cross-region links");
  std::printf("%-16s", "quantile");
  for (const auto& link : links) std::printf("%14s", link.name);
  std::printf("\n");

  hat::Histogram hists[4];
  for (int i = 0; i < 4; i++) {
    hists[i] = hat::MeasureLink(links[i].a, links[i].b, kSamples, 91 + i);
  }
  for (double q : {0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99,
                   0.999}) {
    std::printf("p%-15g", q * 100);
    for (auto& h : hists) std::printf("%14.2f", h.Percentile(q) / 1000.0);
    std::printf("\n");
  }
  std::printf(
      "\n(paper trend: intra-AZ ~0.5ms << cross-AZ ~1-4ms << cross-region\n"
      " 10^2ms; SP-SI mean 362.8ms with 95th percentile 649ms — long WAN "
      "tails)\n");
  std::printf("SI:SP mean=%.1fms p95=%.1fms\n", hists[3].Mean() / 1000.0,
              hists[3].Percentile(0.95) / 1000.0);
  return 0;
}
