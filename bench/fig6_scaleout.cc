// Regenerates Figure 6: scale-out. Two clusters (VA + OR); the number of
// servers per cluster sweeps 5..25 (total 10..50) with 15 YCSB clients per
// server. The paper: eventual and RC scale linearly (~5x from 10 to 50
// servers); MAV scales ~3.8x.
//
// Also reports the anti-entropy steady state per configuration (gossip
// records per committed txn) — echo suppression keeps this flat as servers
// are added, where the echoing data plane paid ~2x.
//
// A second sweep holds the server count fixed and raises
// shards_per_server: each server's data plane splits into independent
// VersionedStore shards (per-shard fold caches, digest buckets, GC
// frontiers), the layout Section 6.3 calls hash-partitioned — throughput
// must hold steady while per-shard state shrinks.
//
// A third sweep scales *within* one server: shards = cores = C on a
// ShardExecutor, offered load growing with C — saturation throughput must
// scale near-linearly in C (same-shard work serializes, cross-shard work
// overlaps) and the printed per-lane utilization shows what binds first
// (cores vs the global lane). The sweeps end with an end-to-end
// convergence check on a multi-shard deployment (real client commits,
// push + sharded digest repair, replica-equality assertion); a failure
// exits nonzero so CI catches it.
//
// HAT_BENCH_QUICK=1 runs a reduced sweep; HAT_BENCH_JSON=<path> writes the
// throughput summary.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "hat/client/sync_client.h"

namespace {

/// End-to-end sanity for the sharded data plane: commit through real
/// clients against a multi-shard deployment, settle, and require every
/// key's replicas to agree on the folded read. Returns the number of
/// divergent keys (0 = converged).
int MultiShardConvergenceCheck() {
  using namespace hat;
  constexpr int kKeys = 300;
  sim::Simulation sim(7);
  auto opts = cluster::DeploymentOptions::TwoRegions();
  opts.servers_per_cluster = 2;
  opts.server.shards_per_server = 4;
  opts.server.digest_buckets = 64;
  opts.server.digest_sync_interval = 200 * sim::kMillisecond;
  cluster::Deployment deployment(sim, opts);
  client::SyncClient client(sim, deployment.AddClient({}));
  for (int i = 0; i < kKeys; i++) {
    client.Begin();
    client.Write("key" + std::to_string(i), "value" + std::to_string(i));
    if (!client.Commit().ok()) return kKeys;  // commits must not fail
  }
  sim.RunUntil(sim.Now() + 5 * sim::kSecond);

  int divergent = 0;
  for (int i = 0; i < kKeys; i++) {
    Key key = "key" + std::to_string(i);
    auto replicas = deployment.ReplicasOf(key);
    auto first = deployment.server(replicas[0]).good().Read(key);
    bool ok = first.found && first.value == "value" + std::to_string(i);
    for (size_t r = 1; r < replicas.size() && ok; r++) {
      auto other = deployment.server(replicas[r]).good().Read(key);
      ok = other.found && other.value == first.value && other.ts == first.ts;
    }
    if (!ok) divergent++;
  }
  return divergent;
}

}  // namespace

int main() {
  using namespace hat::bench;
  std::vector<int> servers_per_cluster =
      QuickBench() ? std::vector<int>{5, 10} : std::vector<int>{5, 10, 15, 25};
  std::vector<int> shards_per_server =
      QuickBench() ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  // Figure 6 plots Eventual, RC, MAV (no master).
  auto systems = PaperSystems();
  systems.erase(systems.begin() + 3);

  hat::harness::Banner(
      "Figure 6: scale-out, total servers vs throughput (1000 txns/s), "
      "15 clients/server");
  hat::harness::FigureSeries fig;
  fig.title = "Total throughput (1000 txns/s)";
  fig.x_label = "servers";
  hat::harness::FigureSeries gossip;
  gossip.title = "Anti-entropy records shipped per committed txn";
  gossip.x_label = "servers";
  for (int spc : servers_per_cluster) {
    fig.x.push_back(spc * 2);
    gossip.x.push_back(spc * 2);
  }

  for (const auto& system : systems) {
    std::vector<double> thr, ae;
    for (int spc : servers_per_cluster) {
      YcsbRun run;
      run.deployment = hat::cluster::DeploymentOptions::TwoRegions();
      run.deployment.servers_per_cluster = spc;
      run.client = system.options;
      run.workload = PaperYcsb();
      run.num_clients = 15 * spc * 2;
      run.measure = (QuickBench() ? 1 : 2) * hat::sim::kSecond;
      hat::server::ServerStats servers;
      auto result = run.Execute(&servers);
      thr.push_back(result.TxnsPerSecond() / 1000.0);
      ae.push_back(result.committed > 0
                       ? static_cast<double>(servers.ae_records_out) /
                             static_cast<double>(result.committed)
                       : 0.0);
    }
    fig.series.emplace_back(system.name, thr);
    gossip.series.emplace_back(system.name, ae);
  }
  fig.Print(stdout, 2);
  gossip.Print(stdout, 2);

  for (auto& [name, values] : fig.series) {
    std::printf("%s scale-out %d -> %d servers: %.2fx\n", name.c_str(),
                servers_per_cluster.front() * 2,
                servers_per_cluster.back() * 2,
                values.back() / values.front());
  }
  std::printf(
      "\n(paper: eventual/RC ~5x, MAV ~3.8x — MAV suffers storage-layer\n"
      " contention; with memory-backed storage it reaches 4.25x)\n");

  // ---- intra-server shard sweep (fixed 10 servers) -------------------------

  hat::harness::Banner(
      "Figure 6b: shards per server vs throughput (1000 txns/s), "
      "10 servers, 15 clients/server");
  hat::harness::FigureSeries shard_fig;
  shard_fig.title = "Total throughput (1000 txns/s)";
  shard_fig.x_label = "shards/server";
  for (int sps : shards_per_server) shard_fig.x.push_back(sps);

  constexpr int kShardSweepSpc = 5;
  for (const auto& system : systems) {
    std::vector<double> thr;
    for (int sps : shards_per_server) {
      YcsbRun run;
      run.deployment = hat::cluster::DeploymentOptions::TwoRegions();
      run.deployment.servers_per_cluster = kShardSweepSpc;
      run.deployment.server.shards_per_server = static_cast<size_t>(sps);
      // Keep total digest state constant: B buckets spread over the shards.
      run.deployment.server.digest_buckets =
          hat::version::VersionedStore::kDefaultDigestBuckets /
          static_cast<size_t>(sps);
      run.client = system.options;
      run.workload = PaperYcsb();
      run.num_clients = 15 * kShardSweepSpc * 2;
      run.measure = (QuickBench() ? 1 : 2) * hat::sim::kSecond;
      auto result = run.Execute();
      thr.push_back(result.TxnsPerSecond() / 1000.0);
    }
    shard_fig.series.emplace_back(system.name, thr);
  }
  shard_fig.Print(stdout, 2);

  // ---- intra-server cores sweep (C shards x C cores, driven to saturation) --

  hat::harness::Banner(
      "Figure 6c: cores per server vs throughput (1000 txns/s), "
      "1 server/cluster, shards = cores = C, clients scale with C");
  std::vector<int> cores_per_server =
      QuickBench() ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  hat::harness::FigureSeries core_fig;
  core_fig.title = "Total throughput (1000 txns/s)";
  core_fig.x_label = "cores/server";
  for (int c : cores_per_server) core_fig.x.push_back(c);

  for (const auto& system : systems) {
    std::vector<double> thr;
    for (int c : cores_per_server) {
      YcsbRun run;
      run.deployment = hat::cluster::DeploymentOptions::TwoRegions();
      run.deployment.servers_per_cluster = 1;
      run.deployment.server.shards_per_server = static_cast<size_t>(c);
      run.deployment.server.cores_per_server = static_cast<size_t>(c);
      run.client = system.options;
      run.workload = PaperYcsb();
      int sweep_servers = static_cast<int>(run.deployment.clusters.size()) *
                          run.deployment.servers_per_cluster;
      // Closed-loop clients bound offered load, so it must grow with
      // capacity for the sweep to measure saturation throughput, not the
      // client count.
      run.num_clients = 30 * c * sweep_servers;
      run.measure = (QuickBench() ? 1 : 2) * hat::sim::kSecond;
      hat::server::ServerStats servers;
      hat::sim::SimTime elapsed = 0;
      auto result = run.Execute(&servers, &elapsed);
      thr.push_back(result.TxnsPerSecond() / 1000.0);

      // Saturation signals: capacity-normalized utilization and where the
      // time went — if the global lane's share grows with C, cross-shard
      // overhead is what caps the speedup. busy_us is summed over every
      // server, so the capacity is cores x servers x elapsed.
      double capacity = static_cast<double>(c) *
                        static_cast<double>(sweep_servers) *
                        static_cast<double>(elapsed);
      double global_share =
          servers.busy_us > 0 && !servers.lane_busy_us.empty()
              ? servers.lane_busy_us.back() / servers.busy_us
              : 0.0;
      std::printf(
          "  %-8s C=%d: %7.2f ktxn/s  util %.2f  global-lane share %4.1f%%  "
          "queue-wait p95 %.0fus\n",
          system.name.c_str(), c, result.TxnsPerSecond() / 1000.0,
          servers.busy_us / capacity, 100.0 * global_share,
          servers.queue_wait_us.Percentile(0.95));
    }
    core_fig.series.emplace_back(system.name, thr);
  }
  core_fig.Print(stdout, 2);

  for (auto& [name, values] : core_fig.series) {
    std::printf("%s intra-server speedup C=%d -> C=%d: %.2fx\n", name.c_str(),
                cores_per_server.front(), cores_per_server.back(),
                values.back() / values.front());
  }

  int divergent = MultiShardConvergenceCheck();
  std::printf("\nMulti-shard convergence check (4 shards/server): %s\n",
              divergent == 0 ? "PASS" : "FAIL");

  JsonSummary json;
  json.Add("fig6_throughput_ktps", fig);
  json.Add("fig6_ae_records_per_txn", gossip);
  json.Add("fig6_shard_scaleout_ktps", shard_fig);
  json.Add("fig6_core_scaleout_ktps", core_fig);
  if (const char* path = json.Flush()) {
    std::printf("\nWrote JSON throughput summary to %s\n", path);
  }
  if (divergent != 0) {
    std::fprintf(stderr, "%d keys diverged across replicas\n", divergent);
    return 1;
  }
  return 0;
}
