// Regenerates Figure 6: scale-out. Two clusters (VA + OR); the number of
// servers per cluster sweeps 5..25 (total 10..50) with 15 YCSB clients per
// server. The paper: eventual and RC scale linearly (~5x from 10 to 50
// servers); MAV scales ~3.8x.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace hat::bench;
  std::vector<int> servers_per_cluster = {5, 10, 15, 25};
  // Figure 6 plots Eventual, RC, MAV (no master).
  auto systems = PaperSystems();
  systems.erase(systems.begin() + 3);

  hat::harness::Banner(
      "Figure 6: scale-out, total servers vs throughput (1000 txns/s), "
      "15 clients/server");
  hat::harness::FigureSeries fig;
  fig.title = "Total throughput (1000 txns/s)";
  fig.x_label = "servers";
  for (int spc : servers_per_cluster) fig.x.push_back(spc * 2);

  for (const auto& system : systems) {
    std::vector<double> thr;
    for (int spc : servers_per_cluster) {
      YcsbRun run;
      run.deployment = hat::cluster::DeploymentOptions::TwoRegions();
      run.deployment.servers_per_cluster = spc;
      run.client = system.options;
      run.workload = PaperYcsb();
      run.num_clients = 15 * spc * 2;
      run.measure = 2 * hat::sim::kSecond;
      auto result = run.Execute();
      thr.push_back(result.TxnsPerSecond() / 1000.0);
    }
    fig.series.emplace_back(system.name, thr);
  }
  fig.Print(stdout, 2);

  for (auto& [name, values] : fig.series) {
    std::printf("%s scale-out 10 -> 50 servers: %.2fx\n", name.c_str(),
                values.back() / values.front());
  }
  std::printf(
      "\n(paper: eventual/RC ~5x, MAV ~3.8x — MAV suffers storage-layer\n"
      " contention; with memory-backed storage it reaches 4.25x)\n");
  return 0;
}
