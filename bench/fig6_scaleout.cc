// Regenerates Figure 6: scale-out. Two clusters (VA + OR); the number of
// servers per cluster sweeps 5..25 (total 10..50) with 15 YCSB clients per
// server. The paper: eventual and RC scale linearly (~5x from 10 to 50
// servers); MAV scales ~3.8x.
//
// Also reports the anti-entropy steady state per configuration (gossip
// records per committed txn) — echo suppression keeps this flat as servers
// are added, where the echoing data plane paid ~2x. HAT_BENCH_QUICK=1 runs
// a reduced sweep; HAT_BENCH_JSON=<path> writes the throughput summary.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace hat::bench;
  std::vector<int> servers_per_cluster =
      QuickBench() ? std::vector<int>{5, 10} : std::vector<int>{5, 10, 15, 25};
  // Figure 6 plots Eventual, RC, MAV (no master).
  auto systems = PaperSystems();
  systems.erase(systems.begin() + 3);

  hat::harness::Banner(
      "Figure 6: scale-out, total servers vs throughput (1000 txns/s), "
      "15 clients/server");
  hat::harness::FigureSeries fig;
  fig.title = "Total throughput (1000 txns/s)";
  fig.x_label = "servers";
  hat::harness::FigureSeries gossip;
  gossip.title = "Anti-entropy records shipped per committed txn";
  gossip.x_label = "servers";
  for (int spc : servers_per_cluster) {
    fig.x.push_back(spc * 2);
    gossip.x.push_back(spc * 2);
  }

  for (const auto& system : systems) {
    std::vector<double> thr, ae;
    for (int spc : servers_per_cluster) {
      YcsbRun run;
      run.deployment = hat::cluster::DeploymentOptions::TwoRegions();
      run.deployment.servers_per_cluster = spc;
      run.client = system.options;
      run.workload = PaperYcsb();
      run.num_clients = 15 * spc * 2;
      run.measure = (QuickBench() ? 1 : 2) * hat::sim::kSecond;
      hat::server::ServerStats servers;
      auto result = run.Execute(&servers);
      thr.push_back(result.TxnsPerSecond() / 1000.0);
      ae.push_back(result.committed > 0
                       ? static_cast<double>(servers.ae_records_out) /
                             static_cast<double>(result.committed)
                       : 0.0);
    }
    fig.series.emplace_back(system.name, thr);
    gossip.series.emplace_back(system.name, ae);
  }
  fig.Print(stdout, 2);
  gossip.Print(stdout, 2);

  for (auto& [name, values] : fig.series) {
    std::printf("%s scale-out %d -> %d servers: %.2fx\n", name.c_str(),
                servers_per_cluster.front() * 2,
                servers_per_cluster.back() * 2,
                values.back() / values.front());
  }
  std::printf(
      "\n(paper: eventual/RC ~5x, MAV ~3.8x — MAV suffers storage-layer\n"
      " contention; with memory-backed storage it reaches 4.25x)\n");

  JsonSummary json;
  json.Add("fig6_throughput_ktps", fig);
  json.Add("fig6_ae_records_per_txn", gossip);
  if (const char* path = json.Flush()) {
    std::printf("\nWrote JSON throughput summary to %s\n", path);
  }
  return 0;
}
