// Regenerates Figure 6: scale-out. Two clusters (VA + OR); the number of
// servers per cluster sweeps 5..25 (total 10..50) with 15 YCSB clients per
// server. The paper: eventual and RC scale linearly (~5x from 10 to 50
// servers); MAV scales ~3.8x.
//
// Also reports the anti-entropy steady state per configuration (gossip
// records per committed txn) — echo suppression keeps this flat as servers
// are added, where the echoing data plane paid ~2x.
//
// A second sweep holds the server count fixed and raises
// shards_per_server: each server's data plane splits into independent
// VersionedStore shards (per-shard fold caches, digest buckets, GC
// frontiers), the layout Section 6.3 calls hash-partitioned — throughput
// must hold steady while per-shard state shrinks.
//
// A third sweep scales *within* one server: shards = cores = C on a
// ShardExecutor, offered load growing with C — saturation throughput must
// scale near-linearly in C (same-shard work serializes, cross-shard work
// overlaps) and the printed per-lane utilization shows what binds first
// (cores vs the global lane). A final sweep re-runs the cores sweep for RC
// with shard-lane anti-entropy batching on vs off: tagged shard-homogeneous
// gossip batches are charged to the owning shard's lane, so the global-lane
// share of busy time must drop. The sweeps end with an end-to-end
// convergence check on a multi-shard deployment (real client commits,
// push + sharded digest repair, replica-equality assertion); a failure
// exits nonzero so CI catches it.
//
// `fig6_scaleout --migrate` runs the live-migration sweep instead: a
// zipfian workload heats one shard, the RebalanceCoordinator moves the
// hottest shard of cluster 0 to another server at T/2 while the clients
// keep committing, and the sweep prints the throughput dip, the p95
// latency around the cutover window, and the snapshot/catch-up volumes
// shipped — then verifies replica convergence (nonzero exit on
// divergence or on a migration that failed to complete).
//
// HAT_BENCH_QUICK=1 runs a reduced sweep; HAT_BENCH_JSON=<path> writes the
// throughput summary.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "hat/client/sync_client.h"
#include "hat/cluster/placement.h"

namespace {

/// End-to-end sanity for the sharded data plane: commit through real
/// clients against a multi-shard deployment, settle, and require every
/// key's replicas to agree on the folded read. Returns the number of
/// divergent keys (0 = converged).
int MultiShardConvergenceCheck() {
  using namespace hat;
  constexpr int kKeys = 300;
  sim::Simulation sim(7);
  auto opts = cluster::DeploymentOptions::TwoRegions();
  opts.servers_per_cluster = 2;
  opts.server.shards_per_server = 4;
  opts.server.digest_buckets = 64;
  opts.server.digest_sync_interval = 200 * sim::kMillisecond;
  cluster::Deployment deployment(sim, opts);
  client::SyncClient client(sim, deployment.AddClient({}));
  for (int i = 0; i < kKeys; i++) {
    client.Begin();
    client.Write("key" + std::to_string(i), "value" + std::to_string(i));
    if (!client.Commit().ok()) return kKeys;  // commits must not fail
  }
  sim.RunUntil(sim.Now() + 5 * sim::kSecond);

  int divergent = 0;
  for (int i = 0; i < kKeys; i++) {
    Key key = "key" + std::to_string(i);
    auto replicas = deployment.ReplicasOf(key);
    auto first = deployment.server(replicas[0]).good().Read(key);
    bool ok = first.found && first.value == "value" + std::to_string(i);
    for (size_t r = 1; r < replicas.size() && ok; r++) {
      auto other = deployment.server(replicas[r]).good().Read(key);
      ok = other.found && other.value == first.value && other.ts == first.ts;
    }
    if (!ok) divergent++;
  }
  return divergent;
}

// ---------------------------------------------------------------------------
// Live-migration sweep (--migrate)
// ---------------------------------------------------------------------------

/// One closed-loop YCSB client recording commits and latency per 100ms
/// window (the resolution the migration dip is measured at).
struct WindowedLoop {
  hat::client::TxnClient* client = nullptr;
  hat::workload::YcsbGenerator* gen = nullptr;
  hat::Rng rng{0};
  hat::sim::Simulation* sim = nullptr;
  hat::sim::SimTime start = 0, end = 0;
  hat::sim::Duration window = 100 * hat::sim::kMillisecond;
  std::vector<uint64_t>* committed = nullptr;       // per window
  std::vector<hat::Histogram>* latency = nullptr;   // per window, ms
  hat::workload::YcsbTxn txn;
  size_t op_index = 0;
  hat::sim::SimTime txn_start = 0;
  uint64_t tag = 0;

  void StartTxn() {
    if (sim->Now() >= end) return;
    txn = gen->NextTxn(rng);
    op_index = 0;
    txn_start = sim->Now();
    client->Begin();
    NextOp();
  }
  void NextOp() {
    if (op_index >= txn.ops.size()) {
      client->Commit([this](hat::Status s) { OnDone(std::move(s)); });
      return;
    }
    const hat::workload::YcsbOp& op = txn.ops[op_index++];
    if (op.is_read) {
      client->Read(op.key, [this](hat::Status s, hat::ReadVersion) {
        if (!s.ok()) {
          client->Abort();
          OnDone(std::move(s));
          return;
        }
        NextOp();
      });
    } else {
      client->Write(op.key, gen->MakeValue(tag++));
      NextOp();
    }
  }
  void OnDone(hat::Status s) {
    hat::sim::SimTime now = sim->Now();
    if (s.ok() && now >= start && now < end) {
      size_t w = static_cast<size_t>((now - start) / window);
      if (w < committed->size()) {
        (*committed)[w]++;
        (*latency)[w].Record(static_cast<double>(now - txn_start) / 1000.0);
      }
    }
    StartTxn();
  }
};

int MigrationSweep() {
  using namespace hat;
  using namespace hat::bench;
  const bool quick = QuickBench();
  const sim::Duration kWindow = 100 * sim::kMillisecond;
  const sim::Duration kWarmup = 1 * sim::kSecond;
  const sim::Duration kMeasure = (quick ? 3 : 6) * sim::kSecond;
  const int kClients = quick ? 18 : 30;

  sim::Simulation sim(42);
  auto opts = cluster::DeploymentOptions::TwoRegions();
  opts.servers_per_cluster = 3;
  opts.server.shards_per_server = 2;
  opts.server.digest_sync_interval = 250 * sim::kMillisecond;
  cluster::Deployment deployment(sim, opts);
  cluster::RebalanceCoordinator coordinator(deployment);
  EnableObsFromEnv(deployment);

  workload::YcsbOptions wl = PaperYcsb();
  wl.num_keys = 5000;
  wl.value_size = 256;
  wl.distribution = workload::KeyDistribution::kZipfian;  // heat one shard
  workload::YcsbGenerator gen(wl);
  for (uint64_t i = 0; i < wl.num_keys; i++) {
    WriteRecord w;
    w.key = workload::YcsbGenerator::KeyFor(i);
    w.value = gen.MakeValue(i);
    w.ts = Timestamp{1, 0xfffffffeu};
    for (net::NodeId r : deployment.ReplicasOf(w.key)) {
      deployment.server(r).InstallForTest(w);
    }
  }

  const sim::SimTime measure_start = kWarmup;
  const sim::SimTime measure_end = kWarmup + kMeasure;
  const size_t num_windows = kMeasure / kWindow;
  std::vector<uint64_t> committed(num_windows, 0);
  std::vector<Histogram> latency(num_windows);

  client::ClientOptions copts;  // RC over eventual replication
  copts.isolation = client::IsolationLevel::kReadCommitted;
  Rng seeder(42 ^ 0x9e37);
  std::vector<std::unique_ptr<WindowedLoop>> loops;
  for (int i = 0; i < kClients; i++) {
    client::ClientOptions per_client = copts;
    per_client.home_cluster = i % deployment.NumClusters();
    auto loop = std::make_unique<WindowedLoop>();
    loop->client = &deployment.AddClient(per_client);
    loop->gen = &gen;
    loop->rng = seeder.Fork(i);
    loop->sim = &sim;
    loop->start = measure_start;
    loop->end = measure_end;
    loop->window = kWindow;
    loop->committed = &committed;
    loop->latency = &latency;
    loops.push_back(std::move(loop));
  }
  for (auto& loop : loops) {
    sim.At(1, [raw = loop.get()]() { raw->StartTxn(); });
  }

  // At T/2, move the hottest shard of cluster 0 one server over.
  const sim::SimTime t_migrate = measure_start + kMeasure / 2;
  uint32_t moved_shard = 0;
  int from_slot = 0, to_slot = 0;
  sim.At(t_migrate, [&]() {
    moved_shard = coordinator.PickHottestShard(0);
    from_slot = deployment.placement().Owner(0, moved_shard);
    to_slot = (from_slot + 1) % deployment.ServersPerCluster();
    coordinator.ScheduleMigration(0, moved_shard, to_slot, sim.Now());
  });

  sim.RunUntil(measure_end);
  sim.RunUntil(sim.Now() + 4 * sim::kSecond);  // drain + converge

  // ---- report --------------------------------------------------------------
  hat::harness::Banner(
      "Figure 6d: live migration of the hottest shard at T/2 "
      "(zipfian YCSB, RC, 100ms windows)");
  const double window_s = static_cast<double>(kWindow) / sim::kSecond;
  hat::harness::FigureSeries fig;
  fig.title = "Throughput (1000 txns/s per 100ms window)";
  fig.x_label = "t (ms, migration at t=" +
                std::to_string(t_migrate / sim::kMillisecond) + "ms)";
  std::vector<double> thr;
  for (size_t w = 0; w < num_windows; w++) {
    fig.x.push_back(static_cast<double>(measure_start + w * kWindow) /
                    sim::kMillisecond);
    thr.push_back(static_cast<double>(committed[w]) / window_s / 1000.0);
  }
  fig.series.emplace_back("RC+migration", thr);
  fig.Print(stdout, 2);

  const size_t mig_window = (t_migrate - measure_start) / kWindow;
  double before = 0, dip = thr[mig_window];
  for (size_t w = 0; w < mig_window; w++) before += thr[w];
  before /= static_cast<double>(mig_window);
  for (size_t w = mig_window;
       w < std::min(num_windows, mig_window + 10); w++) {
    dip = std::min(dip, thr[w]);
  }
  Histogram base_lat, cutover_lat;
  const auto& stats = coordinator.stats();
  for (size_t w = 0; w < num_windows; w++) {
    sim::SimTime ws = measure_start + w * kWindow;
    if (ws < t_migrate) base_lat.Merge(latency[w]);
    if (stats.cutover_at != 0 && ws + kWindow > stats.cutover_at - kWindow &&
        ws < stats.cutover_at + 4 * kWindow) {
      cutover_lat.Merge(latency[w]);
    }
  }
  uint64_t wrong_shard = 0;
  for (const auto& loop : loops) {
    wrong_shard += loop->client->stats().wrong_shard_retries;
  }
  auto servers = deployment.TotalServerStats();
  std::printf(
      "\nmigrated logical shard %u: server slot %d -> %d of cluster 0\n"
      "  snapshot records shipped:   %llu\n"
      "  catch-up records shipped:   %llu\n"
      "  cutover epoch/time:         %llu @ %.0fms (drain done %.0fms)\n"
      "  throughput before / dip:    %.2f / %.2f ktxn/s (%.1f%% dip)\n"
      "  p95 latency before / cutover window: %.2f / %.2f ms\n"
      "  wrong-shard client retries: %llu   forwarded records: %llu\n"
      "  source lane queue depth now: %zu\n",
      moved_shard, from_slot, to_slot,
      static_cast<unsigned long long>(stats.snapshot_records),
      static_cast<unsigned long long>(stats.catchup_records),
      static_cast<unsigned long long>(stats.cutover_epoch),
      static_cast<double>(stats.cutover_at) / sim::kMillisecond,
      static_cast<double>(stats.finished_at) / sim::kMillisecond,
      before, dip, before > 0 ? 100.0 * (before - dip) / before : 0.0,
      base_lat.Percentile(0.95), cutover_lat.Percentile(0.95),
      static_cast<unsigned long long>(wrong_shard),
      static_cast<unsigned long long>(servers.forwarded_records),
      deployment.server(deployment.ServerId(0, from_slot))
          .ShardLaneQueueDepth(moved_shard));

  // ---- verify --------------------------------------------------------------
  int failures = 0;
  if (!coordinator.Done()) {
    std::fprintf(stderr, "migration did not complete\n");
    failures++;
  }
  // Replica convergence across every preloaded key (folded read equality).
  int divergent = 0;
  for (uint64_t i = 0; i < wl.num_keys; i++) {
    Key key = workload::YcsbGenerator::KeyFor(i);
    auto replicas = deployment.ReplicasOf(key);
    auto first = deployment.server(replicas[0]).good().Read(key);
    for (size_t r = 1; r < replicas.size(); r++) {
      auto other = deployment.server(replicas[r]).good().Read(key);
      if (other.ts != first.ts || other.value != first.value) {
        divergent++;
        break;
      }
    }
  }
  std::printf("\nPost-migration convergence check: %s (%d divergent keys)\n",
              divergent == 0 ? "PASS" : "FAIL", divergent);
  if (divergent != 0) failures++;

  JsonSummary json;
  json.Add("fig6_migration_window_ktps", fig);
  if (const char* path = json.Flush()) {
    std::printf("Wrote JSON migration summary to %s\n", path);
  }

  // Annotate the exported trace with the cutover instant the dip analysis
  // above keys on, so the Perfetto timeline shows *why* the windows around
  // it slowed down.
  std::vector<obs::Span> extra;
  if (stats.cutover_at != 0) {
    obs::Span cut;
    cut.kind = obs::SpanKind::kCutover;
    cut.node = deployment.ServerId(0, from_slot);
    cut.start_us = stats.cutover_at;
    cut.end_us = stats.cutover_at;
    cut.arg = moved_shard;
    extra.push_back(cut);
  }
  ExportObsFromEnv(deployment, extra);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--migrate") == 0) return MigrationSweep();
  }
  using namespace hat::bench;
  std::vector<int> servers_per_cluster =
      QuickBench() ? std::vector<int>{5, 10} : std::vector<int>{5, 10, 15, 25};
  std::vector<int> shards_per_server =
      QuickBench() ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  // Figure 6 plots Eventual, RC, MAV (no master).
  auto systems = PaperSystems();
  systems.erase(systems.begin() + 3);

  hat::harness::Banner(
      "Figure 6: scale-out, total servers vs throughput (1000 txns/s), "
      "15 clients/server");
  hat::harness::FigureSeries fig;
  fig.title = "Total throughput (1000 txns/s)";
  fig.x_label = "servers";
  hat::harness::FigureSeries gossip;
  gossip.title = "Anti-entropy records shipped per committed txn";
  gossip.x_label = "servers";
  for (int spc : servers_per_cluster) {
    fig.x.push_back(spc * 2);
    gossip.x.push_back(spc * 2);
  }

  for (const auto& system : systems) {
    std::vector<double> thr, ae;
    for (int spc : servers_per_cluster) {
      YcsbRun run;
      run.deployment = hat::cluster::DeploymentOptions::TwoRegions();
      run.deployment.servers_per_cluster = spc;
      run.client = system.options;
      run.workload = PaperYcsb();
      run.num_clients = 15 * spc * 2;
      run.measure = (QuickBench() ? 1 : 2) * hat::sim::kSecond;
      hat::server::ServerStats servers;
      auto result = run.Execute(&servers);
      thr.push_back(result.TxnsPerSecond() / 1000.0);
      ae.push_back(result.committed > 0
                       ? static_cast<double>(servers.ae_records_out) /
                             static_cast<double>(result.committed)
                       : 0.0);
    }
    fig.series.emplace_back(system.name, thr);
    gossip.series.emplace_back(system.name, ae);
  }
  fig.Print(stdout, 2);
  gossip.Print(stdout, 2);

  for (auto& [name, values] : fig.series) {
    std::printf("%s scale-out %d -> %d servers: %.2fx\n", name.c_str(),
                servers_per_cluster.front() * 2,
                servers_per_cluster.back() * 2,
                values.back() / values.front());
  }
  std::printf(
      "\n(paper: eventual/RC ~5x, MAV ~3.8x — MAV suffers storage-layer\n"
      " contention; with memory-backed storage it reaches 4.25x)\n");

  // ---- intra-server shard sweep (fixed 10 servers) -------------------------

  hat::harness::Banner(
      "Figure 6b: shards per server vs throughput (1000 txns/s), "
      "10 servers, 15 clients/server");
  hat::harness::FigureSeries shard_fig;
  shard_fig.title = "Total throughput (1000 txns/s)";
  shard_fig.x_label = "shards/server";
  for (int sps : shards_per_server) shard_fig.x.push_back(sps);

  constexpr int kShardSweepSpc = 5;
  for (const auto& system : systems) {
    std::vector<double> thr;
    for (int sps : shards_per_server) {
      YcsbRun run;
      run.deployment = hat::cluster::DeploymentOptions::TwoRegions();
      run.deployment.servers_per_cluster = kShardSweepSpc;
      run.deployment.server.shards_per_server = static_cast<size_t>(sps);
      // Keep total digest state constant: B buckets spread over the shards.
      run.deployment.server.digest_buckets =
          hat::version::VersionedStore::kDefaultDigestBuckets /
          static_cast<size_t>(sps);
      run.client = system.options;
      run.workload = PaperYcsb();
      run.num_clients = 15 * kShardSweepSpc * 2;
      run.measure = (QuickBench() ? 1 : 2) * hat::sim::kSecond;
      auto result = run.Execute();
      thr.push_back(result.TxnsPerSecond() / 1000.0);
    }
    shard_fig.series.emplace_back(system.name, thr);
  }
  shard_fig.Print(stdout, 2);

  // ---- intra-server cores sweep (C shards x C cores, driven to saturation) --

  hat::harness::Banner(
      "Figure 6c: cores per server vs throughput (1000 txns/s), "
      "1 server/cluster, shards = cores = C, clients scale with C");
  std::vector<int> cores_per_server =
      QuickBench() ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  hat::harness::FigureSeries core_fig;
  core_fig.title = "Total throughput (1000 txns/s)";
  core_fig.x_label = "cores/server";
  for (int c : cores_per_server) core_fig.x.push_back(c);

  for (const auto& system : systems) {
    std::vector<double> thr;
    for (int c : cores_per_server) {
      YcsbRun run;
      run.deployment = hat::cluster::DeploymentOptions::TwoRegions();
      run.deployment.servers_per_cluster = 1;
      run.deployment.server.shards_per_server = static_cast<size_t>(c);
      run.deployment.server.cores_per_server = static_cast<size_t>(c);
      run.client = system.options;
      run.workload = PaperYcsb();
      int sweep_servers = static_cast<int>(run.deployment.clusters.size()) *
                          run.deployment.servers_per_cluster;
      // Closed-loop clients bound offered load, so it must grow with
      // capacity for the sweep to measure saturation throughput, not the
      // client count.
      run.num_clients = 30 * c * sweep_servers;
      run.measure = (QuickBench() ? 1 : 2) * hat::sim::kSecond;
      hat::server::ServerStats servers;
      hat::sim::SimTime elapsed = 0;
      auto result = run.Execute(&servers, &elapsed);
      thr.push_back(result.TxnsPerSecond() / 1000.0);

      // Saturation signals: capacity-normalized utilization and where the
      // time went — if the global lane's share grows with C, cross-shard
      // overhead is what caps the speedup. busy_us is summed over every
      // server, so the capacity is cores x servers x elapsed.
      double capacity = static_cast<double>(c) *
                        static_cast<double>(sweep_servers) *
                        static_cast<double>(elapsed);
      double global_share =
          servers.busy_us > 0 && !servers.lane_busy_us.empty()
              ? servers.lane_busy_us.back() / servers.busy_us
              : 0.0;
      std::printf(
          "  %-8s C=%d: %7.2f ktxn/s  util %.2f  global-lane share %4.1f%%  "
          "queue-wait p95 %.0fus\n",
          system.name.c_str(), c, result.TxnsPerSecond() / 1000.0,
          servers.busy_us / capacity, 100.0 * global_share,
          servers.queue_wait_us.Percentile(0.95));
    }
    core_fig.series.emplace_back(system.name, thr);
  }
  core_fig.Print(stdout, 2);

  for (auto& [name, values] : core_fig.series) {
    std::printf("%s intra-server speedup C=%d -> C=%d: %.2fx\n", name.c_str(),
                cores_per_server.front(), cores_per_server.back(),
                values.back() / values.front());
  }

  // ---- batched wire path: global-lane share with shard-lane AE batching ----

  hat::harness::Banner(
      "Figure 6e: shard-lane anti-entropy batching vs the global lane "
      "(RC, 1 server/cluster, shards = cores = C)");
  hat::harness::FigureSeries batch_share_fig;
  batch_share_fig.title = "Global-lane share of server busy time (%)";
  batch_share_fig.x_label = "cores/server";
  for (int c : cores_per_server) batch_share_fig.x.push_back(c);
  for (int on = 0; on <= 1; on++) {
    std::vector<double> shares;
    for (int c : cores_per_server) {
      YcsbRun run;
      run.deployment = hat::cluster::DeploymentOptions::TwoRegions();
      run.deployment.servers_per_cluster = 1;
      run.deployment.server.shards_per_server = static_cast<size_t>(c);
      run.deployment.server.cores_per_server = static_cast<size_t>(c);
      run.deployment.server.ae_shard_lane_batching = (on != 0);
      run.client.isolation = hat::client::IsolationLevel::kReadCommitted;
      run.workload = PaperYcsb();
      run.num_clients = 30 * c * 2;
      run.measure = (QuickBench() ? 1 : 2) * hat::sim::kSecond;
      hat::server::ServerStats servers;
      auto result = run.Execute(&servers);
      double share = servers.busy_us > 0 && !servers.lane_busy_us.empty()
                         ? 100.0 * servers.lane_busy_us.back() /
                               servers.busy_us
                         : 0.0;
      shares.push_back(share);
      std::printf(
          "  RC%-12s C=%d: %7.2f ktxn/s  global-lane share %5.1f%%\n",
          on ? "+shard-lane" : "", c, result.TxnsPerSecond() / 1000.0,
          share);
    }
    batch_share_fig.series.emplace_back(on ? "RC+shard-lane" : "RC", shares);
  }
  batch_share_fig.Print(stdout, 1);

  int divergent = MultiShardConvergenceCheck();
  std::printf("\nMulti-shard convergence check (4 shards/server): %s\n",
              divergent == 0 ? "PASS" : "FAIL");

  JsonSummary json;
  json.Add("fig6_throughput_ktps", fig);
  json.Add("fig6_ae_records_per_txn", gossip);
  json.Add("fig6_shard_scaleout_ktps", shard_fig);
  json.Add("fig6_core_scaleout_ktps", core_fig);
  json.Add("fig6_batching_global_lane_share_pct", batch_share_fig);
  if (const char* path = json.Flush()) {
    std::printf("\nWrote JSON throughput summary to %s\n", path);
  }
  if (divergent != 0) {
    std::fprintf(stderr, "%d keys diverged across replicas\n", divergent);
    return 1;
  }
  return 0;
}
