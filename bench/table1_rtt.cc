// Regenerates Table 1: mean RTT times on EC2 (a) within an availability
// zone, (b) across availability zones, (c) cross-region — by running ping
// measurement traffic over the simulated network whose base latencies are
// the paper's published measurements.

#include <cstdio>
#include <memory>
#include <vector>

#include "hat/common/histogram.h"
#include "hat/harness/table.h"
#include "hat/net/rpc.h"

namespace hat {
namespace {

class Pinger : public net::RpcNode {
 public:
  using net::RpcNode::RpcNode;
  void HandleMessage(const net::Envelope& env) override {
    Reply(env, net::PingResponse{});
  }

  /// Measures `count` RTTs to `target` at 1s intervals (the paper pinged at
  /// 1s granularity for a week; we use a smaller deterministic sample).
  Histogram Measure(net::NodeId target, int count) {
    Histogram rtt_ms;
    for (int i = 0; i < count; i++) {
      sim_.At(sim_.Now() + static_cast<sim::Duration>(i) * sim::kSecond,
              [this, target, &rtt_ms]() {
                sim::SimTime sent = sim_.Now();
                Call(target, net::PingRequest{}, 10 * sim::kSecond,
                     [this, sent, &rtt_ms](Status s, const net::Message*) {
                       if (s.ok()) {
                         rtt_ms.Record(
                             static_cast<double>(sim_.Now() - sent) / 1000.0);
                       }
                     });
              });
    }
    sim_.Run();
    return rtt_ms;
  }
};

constexpr int kSamples = 2000;

void PrintTable1a(sim::Simulation& sim) {
  // Three hosts within us-east-b.
  net::Topology topo;
  std::vector<net::NodeId> hosts;
  for (int h = 0; h < 3; h++) {
    hosts.push_back(topo.AddNode({net::Region::kVirginia, 0,
                                  static_cast<uint16_t>(h)}));
  }
  net::Network network(sim, std::move(topo));
  std::vector<std::unique_ptr<Pinger>> pingers;
  for (net::NodeId h : hosts) {
    pingers.push_back(std::make_unique<Pinger>(sim, network, h));
  }
  harness::Banner("Table 1a: mean RTT within us-east-b AZ (ms)");
  harness::TablePrinter table({"", "H2", "H3"});
  for (int a = 0; a < 2; a++) {
    std::vector<std::string> row{"H" + std::to_string(a + 1)};
    for (int b = 1; b < 3; b++) {
      if (b <= a) {
        row.push_back("");
        continue;
      }
      Histogram h = pingers[a]->Measure(hosts[b], kSamples);
      row.push_back(harness::TablePrinter::Num(h.Mean(), 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("(paper: H1-H2 0.55, H1-H3 0.56, H2-H3 0.50)\n");
}

void PrintTable1b(sim::Simulation& sim) {
  net::Topology topo;
  std::vector<net::NodeId> azs;
  for (int az = 0; az < 3; az++) {
    azs.push_back(topo.AddNode({net::Region::kVirginia,
                                static_cast<uint8_t>(az), 0}));
  }
  net::Network network(sim, std::move(topo));
  std::vector<std::unique_ptr<Pinger>> pingers;
  for (net::NodeId n : azs) {
    pingers.push_back(std::make_unique<Pinger>(sim, network, n));
  }
  harness::Banner("Table 1b: mean RTT across us-east AZs (ms)");
  harness::TablePrinter table({"", "C", "D"});
  const char* names[] = {"B", "C", "D"};
  for (int a = 0; a < 2; a++) {
    std::vector<std::string> row{names[a]};
    for (int b = 1; b < 3; b++) {
      if (b <= a) {
        row.push_back("");
        continue;
      }
      Histogram h = pingers[a]->Measure(azs[b], kSamples);
      row.push_back(harness::TablePrinter::Num(h.Mean(), 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("(paper: B-C 1.08, B-D 3.12, C-D 3.57)\n");
}

void PrintTable1c(sim::Simulation& sim) {
  using net::Region;
  // Table 1c's row/column order.
  std::vector<Region> regions = {
      Region::kCalifornia, Region::kOregon,  Region::kVirginia,
      Region::kTokyo,      Region::kIreland, Region::kSydney,
      Region::kSaoPaulo,   Region::kSingapore};
  net::Topology topo;
  std::vector<net::NodeId> nodes;
  for (Region r : regions) nodes.push_back(topo.AddNode({r, 0, 0}));
  net::Network network(sim, std::move(topo));
  std::vector<std::unique_ptr<Pinger>> pingers;
  for (net::NodeId n : nodes) {
    pingers.push_back(std::make_unique<Pinger>(sim, network, n));
  }

  harness::Banner("Table 1c: mean cross-region RTT (ms)");
  std::vector<std::string> header{""};
  for (size_t c = 1; c < regions.size(); c++) {
    header.emplace_back(net::RegionName(regions[c]));
  }
  harness::TablePrinter table(std::move(header));
  for (size_t a = 0; a + 1 < regions.size(); a++) {
    std::vector<std::string> row{std::string(net::RegionName(regions[a]))};
    for (size_t b = 1; b < regions.size(); b++) {
      if (b <= a) {
        row.push_back("");
        continue;
      }
      Histogram h = pingers[a]->Measure(nodes[b], kSamples / 4);
      row.push_back(harness::TablePrinter::Num(h.Mean(), 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "(paper min: CA-OR 22.5; paper max: SP-SI 362.8; sampled means match\n"
      " the paper's measured values by construction — jitter preserves them)\n");
}

}  // namespace
}  // namespace hat

int main() {
  hat::sim::Simulation sim(1302);  // arXiv:1302.0309
  hat::PrintTable1a(sim);
  hat::PrintTable1b(sim);
  hat::PrintTable1c(sim);
  return 0;
}
