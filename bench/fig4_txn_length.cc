// Regenerates Figure 4: transaction length versus total throughput
// (operations/s) for Eventual / RC / MAV / Master across Virginia + Oregon
// clusters, plus MAV's per-transaction metadata overhead (the paper reports
// 34 bytes at length 1 up to 1898 bytes at length 128).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace hat::bench;
  std::vector<int> lengths = {1, 4, 16, 64, 128};
  auto systems = PaperSystems();

  hat::harness::Banner(
      "Figure 4: transaction length vs throughput (1000 ops/s), VA+OR");
  hat::harness::FigureSeries fig;
  fig.title = "Total throughput (1000 ops/s)";
  fig.x_label = "txn_len";
  for (int len : lengths) fig.x.push_back(len);

  std::vector<double> mav_metadata;
  for (const auto& system : systems) {
    std::vector<double> ops;
    for (int len : lengths) {
      YcsbRun run;
      run.deployment = hat::cluster::DeploymentOptions::TwoRegions();
      run.client = system.options;
      run.workload = PaperYcsb();
      run.workload.ops_per_txn = len;
      run.num_clients = 256;
      run.measure = 2 * hat::sim::kSecond;
      auto result = run.Execute();
      ops.push_back(result.OpsPerSecond() / 1000.0);
      if (system.name == "MAV") {
        mav_metadata.push_back(result.MetadataBytesPerTxn());
      }
    }
    fig.series.emplace_back(system.name, ops);
  }
  fig.Print(stdout, 1);

  std::printf("\nMAV metadata overhead (sibling list shipped per write):\n");
  for (size_t i = 0; i < lengths.size(); i++) {
    // Each write of an L-op 50/50 transaction carries ~L/2 sibling keys;
    // report per-write overhead (the unit of the paper's 34 -> 1898 bytes).
    double writes_per_txn = std::max(1.0, lengths[i] / 2.0);
    std::printf("  length %3d: %7.0f bytes/write\n", lengths[i],
                mav_metadata[i] / writes_per_txn);
  }
  std::printf(
      "\n(paper: eventual/RC/master flat with length; MAV decays — within\n"
      " 18%% of eventual at length 1, within 60%% at length 128; metadata\n"
      " 34 -> 1898 bytes)\n");
  return 0;
}
