// Batched wire path: prices the two batching layers against their
// defaults-off twins on otherwise identical deployments.
//
//   A) Shard-lane anti-entropy batching (ServerOptions::
//      ae_shard_lane_batching): per-(peer, shard) outboxes make every push
//      batch shard-homogeneous, so the receiver charges the batch header
//      and WAL group commit to the owning shard's executor lane instead of
//      the global lane. Reported: global-lane share of server busy time,
//      saturation throughput, and gossip records per committed txn across
//      the Figure 6c cores sweep.
//
//   B) Client group commit (ClientOptions::batch_max): a commit's parallel
//      puts bound for the same server coalesce into one ClientBatchRequest
//      — one wire header and one WAL sync for the whole envelope. Reported:
//      saturation throughput versus closed-loop clients, plus the achieved
//      ops-per-batch amortization.
//
// CI regression gate: batching-on must not ship >5% more anti-entropy
// records per committed txn than batching-off (the re-keyed outboxes remap
// batch boundaries, never the records themselves) — exits nonzero on
// violation, as it does if batching-on loses saturation throughput.
//
// HAT_BENCH_QUICK=1 runs a reduced sweep; HAT_BENCH_JSON=<path> writes the
// machine-readable summary (BENCH_batching.json in CI).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace hat::bench;
  const bool quick = QuickBench();
  const hat::sim::Duration measure = (quick ? 1 : 2) * hat::sim::kSecond;
  JsonSummary json;
  int failures = 0;

  // ---- A: shard-lane anti-entropy batching (Figure 6c topology) -----------
  hat::harness::Banner(
      "Batched wire path A: shard-lane anti-entropy batching, "
      "1 server/cluster, shards = cores = C, RC");
  std::vector<int> cores = quick ? std::vector<int>{2, 4}
                                 : std::vector<int>{2, 4, 8};
  hat::harness::FigureSeries share_fig;
  share_fig.title = "Global-lane share of server busy time (%)";
  share_fig.x_label = "cores/server";
  hat::harness::FigureSeries ae_thr_fig;
  ae_thr_fig.title = "Total throughput (1000 txns/s)";
  ae_thr_fig.x_label = "cores/server";
  for (int c : cores) {
    share_fig.x.push_back(c);
    ae_thr_fig.x.push_back(c);
  }

  // records-per-txn at the largest C, the regression gate's operands.
  double ae_per_txn[2] = {0, 0};
  double top_ktps[2] = {0, 0};
  double top_share[2] = {0, 0};
  double records_per_batch[2] = {0, 0};
  for (int on = 0; on <= 1; on++) {
    std::vector<double> shares, thrs;
    for (int c : cores) {
      YcsbRun run;
      run.deployment = hat::cluster::DeploymentOptions::TwoRegions();
      run.deployment.servers_per_cluster = 1;
      run.deployment.server.shards_per_server = static_cast<size_t>(c);
      run.deployment.server.cores_per_server = static_cast<size_t>(c);
      run.deployment.server.ae_shard_lane_batching = (on != 0);
      run.client.isolation = hat::client::IsolationLevel::kReadCommitted;
      run.workload = PaperYcsb();
      run.num_clients = 30 * c * 2;
      run.measure = measure;
      hat::server::ServerStats servers;
      auto result = run.Execute(&servers);
      double share = servers.busy_us > 0 && !servers.lane_busy_us.empty()
                         ? 100.0 * servers.lane_busy_us.back() /
                               servers.busy_us
                         : 0.0;
      shares.push_back(share);
      thrs.push_back(result.TxnsPerSecond() / 1000.0);
      if (c == cores.back()) {
        ae_per_txn[on] =
            result.committed > 0
                ? static_cast<double>(servers.ae_records_out) /
                      static_cast<double>(result.committed)
                : 0.0;
        top_ktps[on] = result.TxnsPerSecond() / 1000.0;
        top_share[on] = share;
        records_per_batch[on] =
            servers.ae_batches_out > 0
                ? static_cast<double>(servers.ae_records_out) /
                      static_cast<double>(servers.ae_batches_out)
                : 0.0;
      }
      std::printf(
          "  shard-lane %-3s C=%d: %7.2f ktxn/s  global-lane share %5.1f%%  "
          "ae %.2f rec/txn  %.1f rec/batch\n",
          on ? "ON" : "off", c, result.TxnsPerSecond() / 1000.0, share,
          result.committed > 0
              ? static_cast<double>(servers.ae_records_out) /
                    static_cast<double>(result.committed)
              : 0.0,
          servers.ae_batches_out > 0
              ? static_cast<double>(servers.ae_records_out) /
                    static_cast<double>(servers.ae_batches_out)
              : 0.0);
    }
    share_fig.series.emplace_back(on ? "RC+shard-lane" : "RC", shares);
    ae_thr_fig.series.emplace_back(on ? "RC+shard-lane" : "RC", thrs);
  }
  std::printf(
      "\nC=%d: global-lane share %.1f%% -> %.1f%%, %.2f -> %.2f ktxn/s, "
      "ae %.2f -> %.2f rec/txn (%.1f -> %.1f rec/batch)\n",
      cores.back(), top_share[0], top_share[1], top_ktps[0], top_ktps[1],
      ae_per_txn[0], ae_per_txn[1], records_per_batch[0],
      records_per_batch[1]);
  json.Add("batching_global_lane_share_pct", share_fig);
  json.Add("batching_ae_ktps", ae_thr_fig);

  if (ae_per_txn[1] > ae_per_txn[0] * 1.05) {
    std::fprintf(stderr,
                 "REGRESSION: shard-lane batching ships %.2f ae records/txn "
                 "vs %.2f off (>5%%)\n",
                 ae_per_txn[1], ae_per_txn[0]);
    failures++;
  }
  if (top_share[1] >= top_share[0]) {
    std::fprintf(stderr,
                 "REGRESSION: shard-lane batching did not reduce the "
                 "global-lane share (%.1f%% -> %.1f%%)\n",
                 top_share[0], top_share[1]);
    failures++;
  }

  // ---- B: client group commit saturation ----------------------------------
  hat::harness::Banner(
      "Batched wire path B: client group commit (batch_max=8), "
      "single datacenter, 1 server/cluster, RC");
  std::vector<int> clients = quick ? std::vector<int>{16, 64}
                                   : std::vector<int>{16, 64, 256};
  hat::harness::FigureSeries sat_fig;
  sat_fig.title = "Total throughput (1000 txns/s)";
  sat_fig.x_label = "clients";
  for (int n : clients) sat_fig.x.push_back(n);

  double sat_ktps[2] = {0, 0};
  for (int on = 0; on <= 1; on++) {
    std::vector<double> thrs;
    for (int n : clients) {
      YcsbRun run;
      run.deployment = hat::cluster::DeploymentOptions::SingleDatacenter();
      run.deployment.servers_per_cluster = 1;
      run.client.isolation = hat::client::IsolationLevel::kReadCommitted;
      if (on) {
        run.client.batch_max = 8;
        run.deployment.server.ae_shard_lane_batching = true;
      }
      run.workload = PaperYcsb();
      run.num_clients = n;
      run.measure = measure;
      hat::server::ServerStats servers;
      auto result = run.Execute(&servers);
      thrs.push_back(result.TxnsPerSecond() / 1000.0);
      if (n == clients.back()) sat_ktps[on] = result.TxnsPerSecond() / 1000.0;
      std::printf(
          "  group-commit %-3s clients=%-4d: %7.2f ktxn/s  "
          "%llu client batches (%.1f ops/batch)\n",
          on ? "ON" : "off", n, result.TxnsPerSecond() / 1000.0,
          static_cast<unsigned long long>(servers.client_batches),
          servers.client_batches > 0
              ? static_cast<double>(servers.client_batch_ops) /
                    static_cast<double>(servers.client_batches)
              : 0.0);
    }
    sat_fig.series.emplace_back(on ? "RC+batch" : "RC", thrs);
  }
  std::printf("\nsaturation at %d clients: %.2f -> %.2f ktxn/s (%.2fx)\n",
              clients.back(), sat_ktps[0], sat_ktps[1],
              sat_ktps[0] > 0 ? sat_ktps[1] / sat_ktps[0] : 0.0);
  json.Add("batching_client_saturation_ktps", sat_fig);

  if (sat_ktps[1] < sat_ktps[0]) {
    std::fprintf(stderr,
                 "REGRESSION: client group commit lost saturation "
                 "throughput (%.2f -> %.2f ktxn/s)\n",
                 sat_ktps[0], sat_ktps[1]);
    failures++;
  }

  if (const char* path = json.Flush()) {
    std::printf("\nWrote JSON batching summary to %s\n", path);
  }
  return failures == 0 ? 0 : 1;
}
