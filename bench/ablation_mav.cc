// Ablation study for the design choices DESIGN.md calls out around the
// Appendix B MAV algorithm:
//   1. anti-entropy flush interval (batching vs visibility latency),
//   2. pending-invalidation GC on/off (paper's optimization),
//   3. sticky vs random-cluster routing for HAT reads,
//   4. MAV vs RC vs eventual overhead at matched load (headline ratio).

#include <cstdio>

#include "bench/bench_util.h"

namespace hat::bench {
namespace {

harness::WorkloadResult RunWith(
    std::function<void(cluster::DeploymentOptions&)> tweak_deploy,
    std::function<void(client::ClientOptions&)> tweak_client,
    uint64_t seed = 7) {
  YcsbRun run;
  run.deployment = cluster::DeploymentOptions::TwoRegions();
  run.workload = PaperYcsb();
  run.workload.num_keys = 5000;
  run.num_clients = 256;
  run.measure = 2 * sim::kSecond;
  run.seed = seed;
  run.client.isolation = client::IsolationLevel::kMonotonicAtomicView;
  tweak_deploy(run.deployment);
  tweak_client(run.client);
  return run.Execute();
}

}  // namespace
}  // namespace hat::bench

int main() {
  using namespace hat;
  using namespace hat::bench;

  harness::Banner("Ablation 1: anti-entropy flush interval (MAV, VA+OR)");
  {
    harness::TablePrinter table(
        {"flush interval", "txns/s", "avg ms", "p95 ms"});
    for (sim::Duration interval :
         {sim::kMillisecond, 5 * sim::kMillisecond, 20 * sim::kMillisecond,
          100 * sim::kMillisecond}) {
      auto r = RunWith(
          [interval](cluster::DeploymentOptions& d) {
            d.server.ae_flush_interval = interval;
          },
          [](client::ClientOptions&) {});
      table.AddRow({std::to_string(interval / sim::kMillisecond) + " ms",
                    harness::TablePrinter::Num(r.TxnsPerSecond(), 0),
                    harness::TablePrinter::Num(r.txn_latency_ms.Mean(), 2),
                    harness::TablePrinter::Num(
                        r.txn_latency_ms.Percentile(0.95), 2)});
    }
    table.Print();
    std::printf("(larger batches amortize anti-entropy; visibility and MAV\n"
                " promotion lag grow with the interval)\n");
  }

  harness::Banner("Ablation 2: pending-invalidation GC (Appendix B)");
  {
    harness::TablePrinter table(
        {"gc_stale_pending", "txns/s", "stale dropped", "peak pending"});
    for (bool gc : {true, false}) {
      sim::Simulation sim(9);
      auto dopts = cluster::DeploymentOptions::TwoRegions();
      dopts.server.gc_stale_pending = gc;
      cluster::Deployment deployment(sim, dopts);
      client::ClientOptions copts;
      copts.isolation = client::IsolationLevel::kMonotonicAtomicView;
      auto workload = PaperYcsb();
      workload.num_keys = 500;  // hot keys => stale pendings arise
      harness::YcsbDriver driver(deployment, workload, copts, 256, 11);
      driver.Preload();
      auto r = driver.Run(sim::kSecond, 2 * sim::kSecond);
      auto stats = deployment.TotalServerStats();
      size_t pending = 0;
      for (size_t s = 0; s < deployment.ServerCount(); s++) {
        pending += deployment.server(static_cast<hat::net::NodeId>(s))
                       .PendingCount();
      }
      table.AddRow({gc ? "on" : "off",
                    harness::TablePrinter::Num(r.TxnsPerSecond(), 0),
                    std::to_string(stats.stale_pending_dropped),
                    std::to_string(pending)});
    }
    table.Print();
  }

  harness::Banner("Ablation 3: sticky vs random-cluster routing (RC, VA+OR)");
  {
    harness::TablePrinter table({"routing", "txns/s", "avg ms", "p95 ms"});
    for (bool sticky : {true, false}) {
      auto r = RunWith([](cluster::DeploymentOptions&) {},
                       [sticky](client::ClientOptions& c) {
                         c.isolation =
                             client::IsolationLevel::kReadCommitted;
                         c.sticky = sticky;
                         c.randomize_routing = !sticky;
                       });
      table.AddRow({sticky ? "sticky (local cluster)" : "random cluster",
                    harness::TablePrinter::Num(r.TxnsPerSecond(), 0),
                    harness::TablePrinter::Num(r.txn_latency_ms.Mean(), 2),
                    harness::TablePrinter::Num(
                        r.txn_latency_ms.Percentile(0.95), 2)});
    }
    table.Print();
    std::printf("(stickiness is not just a semantic device: it also keeps\n"
                " operations off the WAN)\n");
  }

  harness::Banner("Ablation 4: isolation-level overhead at matched load");
  {
    harness::TablePrinter table({"level", "txns/s", "relative"});
    double eventual_thr = 0;
    for (const auto& system : PaperSystems()) {
      if (system.name == "Master") continue;
      auto r = RunWith([](cluster::DeploymentOptions&) {},
                       [&system](client::ClientOptions& c) {
                         c = system.options;
                       });
      if (system.name == "Eventual") eventual_thr = r.TxnsPerSecond();
      table.AddRow({system.name,
                    harness::TablePrinter::Num(r.TxnsPerSecond(), 0),
                    harness::TablePrinter::Num(
                        100.0 * r.TxnsPerSecond() /
                            (eventual_thr > 0 ? eventual_thr : 1),
                        1) + "%"});
    }
    table.Print();
    std::printf("(paper: RC ~= eventual; MAV ~75%% of eventual in-DC)\n");
  }
  return 0;
}
