// Regenerates Table 3 and Figure 2: the classification of isolation /
// consistency models into highly available, sticky available, and
// unavailable — including the partial order, the 144-combination count, and
// a machine-checked availability experiment for each class: can a client at
// that model commit transactions while fully partitioned from other
// clusters?

#include <cstdio>
#include <string>

#include "hat/client/sync_client.h"
#include "hat/cluster/deployment.h"
#include "hat/harness/table.h"
#include "hat/models/taxonomy.h"

namespace hat {
namespace {

using client::ClientOptions;
using client::IsolationLevel;
using client::SystemMode;
using models::Availability;
using models::Model;

/// Returns true if a client configured at `opts` commits a write transaction
/// while its cluster is partitioned from the other cluster.
bool AvailableUnderPartition(ClientOptions opts) {
  sim::Simulation sim(303);
  auto dopts = cluster::DeploymentOptions::TwoRegions();
  dopts.server.durable = false;
  cluster::Deployment deployment(sim, dopts);
  opts.home_cluster = 0;
  opts.op_timeout = 2 * sim::kSecond;
  opts.rpc_timeout = 400 * sim::kMillisecond;
  client::SyncClient c(sim, deployment.AddClient(opts));
  deployment.PartitionClusters(0, 1);
  int committed = 0;
  for (int i = 0; i < 6; i++) {
    c.Begin();
    c.Write("avail-key-" + std::to_string(i), "v");
    if (c.Commit().ok()) committed++;
  }
  // Master mode: some keys are mastered locally; availability requires ALL
  // to commit.
  return committed == 6;
}

/// Experimental client configuration representing a model (where the model
/// is implementable by this prototype).
struct ModelExperiment {
  Model model;
  ClientOptions options;
  bool runnable = true;
};

std::vector<ModelExperiment> Experiments() {
  std::vector<ModelExperiment> out;
  auto add = [&out](Model m, auto configure) {
    ModelExperiment e;
    e.model = m;
    configure(e.options);
    out.push_back(e);
  };
  add(Model::kReadUncommitted, [](ClientOptions& o) {
    o.isolation = IsolationLevel::kReadUncommitted;
  });
  add(Model::kReadCommitted, [](ClientOptions& o) {
    o.isolation = IsolationLevel::kReadCommitted;
  });
  add(Model::kItemCutIsolation,
      [](ClientOptions& o) { o.isolation = IsolationLevel::kItemCut; });
  add(Model::kPredicateCutIsolation, [](ClientOptions& o) {
    o.isolation = IsolationLevel::kItemCut;
    o.predicate_cut = true;
  });
  add(Model::kMonotonicAtomicView, [](ClientOptions& o) {
    o.isolation = IsolationLevel::kMonotonicAtomicView;
  });
  add(Model::kMonotonicReads,
      [](ClientOptions& o) { o.monotonic_reads = true; });
  add(Model::kMonotonicWrites, [](ClientOptions&) {});
  add(Model::kWritesFollowReads,
      [](ClientOptions& o) { o.writes_follow_reads = true; });
  add(Model::kReadYourWrites, [](ClientOptions& o) {
    o.read_your_writes = true;
    o.sticky = true;
  });
  add(Model::kPram, [](ClientOptions& o) { o.EnablePram(); });
  add(Model::kCausal, [](ClientOptions& o) { o.EnableCausal(); });
  // Unavailable models implemented by the prototype's baselines:
  add(Model::kLinearizability,
      [](ClientOptions& o) { o.mode = SystemMode::kMaster; });
  add(Model::kOneCopySerializability,
      [](ClientOptions& o) { o.mode = SystemMode::kLocking; });
  add(Model::kRegular, [](ClientOptions& o) { o.mode = SystemMode::kQuorum; });
  return out;
}

}  // namespace
}  // namespace hat

int main() {
  using namespace hat;
  using namespace hat::models;

  harness::Banner("Table 3: HAT availability classification");
  harness::TablePrinter table(
      {"Model", "Class (paper)", "Cause", "Measured available?"});

  auto experiments = Experiments();
  for (Model m : AllModels()) {
    auto cause = CauseOf(m);
    std::string cause_str;
    if (cause.prevents_lost_update) cause_str += "lost-update ";
    if (cause.prevents_write_skew) cause_str += "write-skew ";
    if (cause.requires_recency) cause_str += "recency";
    std::string measured = "-";
    for (const auto& e : experiments) {
      if (e.model != m) continue;
      bool available = AvailableUnderPartition(e.options);
      measured = available ? "yes" : "no";
      // Sticky models are available *with* stickiness (our experiment is
      // sticky by construction).
      if (AvailabilityOf(m) == Availability::kSticky && available) {
        measured = "yes (sticky)";
      }
    }
    table.AddRow({std::string(ModelLongName(m)) + " (" +
                      std::string(ModelShortName(m)) + ")",
                  std::string(AvailabilityName(AvailabilityOf(m))),
                  cause_str.empty() ? "-" : cause_str, measured});
  }
  table.Print();

  harness::Banner("Figure 2: partial order of models (weaker -> stronger)");
  for (auto [weaker, stronger] : StrengthEdges()) {
    std::printf("  %-12s -> %s\n",
                std::string(ModelShortName(weaker)).c_str(),
                std::string(ModelShortName(stronger)).c_str());
  }
  std::printf("\nTaxonomy validation: %s\n",
              ValidateTaxonomy().empty() ? "consistent (acyclic, availability"
                                           " monotone along strength)"
                                         : ValidateTaxonomy().c_str());
  std::printf("HAT combinations depicted: %d (paper: 144)\n",
              HatCombinationCount());
  std::printf(
      "Compelling combinations (Section 5.3):\n"
      "  MAV + P-CI                      -> transactional snapshot reads\n"
      "  causal + MAV + P-CI (sticky)    -> causally consistent snapshots\n"
      "  RC + MR + RYW (sticky)          -> cheap default for sessions\n");
  return 0;
}
