// Quickstart: bring up a two-datacenter hatkv deployment, run transactions
// at Read Committed, read them back from the other side of the world.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "hat/client/sync_client.h"
#include "hat/cluster/deployment.h"

int main() {
  using namespace hat;

  // 1. A deterministic simulation: every run of this program produces the
  //    same output.
  sim::Simulation sim(/*seed=*/2013);

  // 2. Two clusters — full replicas of the database, five servers each —
  //    in Virginia and Oregon, with the paper's measured EC2 latencies.
  auto options = cluster::DeploymentOptions::TwoRegions();
  cluster::Deployment deployment(sim, options);
  std::printf("deployment: %d clusters x %d servers\n",
              deployment.NumClusters(), deployment.ServersPerCluster());

  // 3. A client in Virginia, Read Committed isolation (the most common
  //    default in practice — Table 2), sticky to its local cluster.
  client::ClientOptions client_options;
  client_options.isolation = client::IsolationLevel::kReadCommitted;
  client_options.home_cluster = 0;
  client::SyncClient alice(sim, deployment.AddClient(client_options));

  // 4. A read-write transaction. Writes buffer client-side and install at
  //    commit; no server ever sees uncommitted data.
  alice.Begin();
  alice.Write("user:alice:status", "hello from virginia");
  alice.Increment("user:alice:logins", 1);
  Status commit = alice.Commit();
  std::printf("alice commit: %s\n", commit.ToString().c_str());

  // 5. Let asynchronous anti-entropy replicate to Oregon (no client ever
  //    waited on that WAN link — that is the entire point of HATs).
  sim.RunUntil(sim.Now() + 2 * sim::kSecond);

  client::ClientOptions oregon = client_options;
  oregon.home_cluster = 1;
  client::SyncClient bob(sim, deployment.AddClient(oregon));
  bob.Begin();
  auto status_value = bob.Read("user:alice:status");
  auto logins = bob.ReadInt("user:alice:logins");
  std::printf("bob reads from oregon: status=\"%s\" logins=%lld\n",
              status_value.ok() && status_value->found
                  ? status_value->value.c_str()
                  : "(none)",
              logins.ok() ? static_cast<long long>(*logins) : -1);
  (void)bob.Commit();

  // 6. The headline: transactions stay available during a full partition.
  deployment.PartitionClusters(0, 1);
  alice.Begin();
  alice.Write("user:alice:status", "still writing during the partition");
  Status partitioned_commit = alice.Commit();
  std::printf("alice commit during partition: %s\n",
              partitioned_commit.ToString().c_str());

  deployment.Heal();
  sim.RunUntil(sim.Now() + 2 * sim::kSecond);
  bob.Begin();
  auto healed = bob.Read("user:alice:status");
  std::printf("bob after heal: \"%s\"\n",
              healed.ok() && healed->found ? healed->value.c_str() : "(none)");
  (void)bob.Commit();

  std::printf("\nNext steps: examples/session_guarantees, examples/tpcc_store,"
              "\nexamples/anomaly_explorer, examples/geo_latency_tour\n");
  return 0;
}
