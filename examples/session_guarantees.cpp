// Session guarantees in action (paper Sections 4.1 and 5.1.3):
//  * Read Your Writes fails for a re-routed client under a partition —
//    and stickiness repairs it.
//  * Monotonic Reads stops time-travel between replicas.
//  * Causal (sticky) sessions propagate dependencies across sessions.

#include <cstdio>

#include "hat/client/sync_client.h"
#include "hat/cluster/deployment.h"

using namespace hat;

namespace {

void Headline(const char* text) { std::printf("\n== %s ==\n", text); }

void DemoReadYourWrites() {
  Headline("Read Your Writes requires stickiness (Section 5.1.3)");
  sim::Simulation sim(1);
  auto dopts = cluster::DeploymentOptions::TwoRegions();
  cluster::Deployment deployment(sim, dopts);

  client::ClientOptions opts;
  opts.sticky = false;  // the client may be re-routed between operations
  opts.home_cluster = 0;
  client::SyncClient client(sim, deployment.AddClient(opts));

  // Partition the two clusters' servers from each other.
  for (net::NodeId a : deployment.ClusterServers(0)) {
    for (net::NodeId b : deployment.ClusterServers(1)) {
      deployment.network().CutLink(a, b);
    }
  }

  client.Begin();
  client.Write("inbox", "draft #1");
  std::printf("T1 w(inbox) against cluster 0: %s\n",
              client.Commit().ToString().c_str());

  // "The network topology changes": the client loses its datacenter and is
  // re-routed to the other, partitioned cluster.
  for (net::NodeId a : deployment.ClusterServers(0)) {
    deployment.network().CutLink(client.underlying().id(), a);
  }
  client.underlying().mutable_options().home_cluster = 1;
  client.Begin();
  auto read = client.Read("inbox");
  std::printf("T2 r(inbox) after re-route: %s\n",
              read.ok() ? (read->found ? read->value.c_str() : "(missing!)")
                        : read.status().ToString().c_str());
  client.Abort();
  std::printf("-> without stickiness the session lost its own write.\n");

  // A sticky client pinned to cluster 0 has no such problem.
  sim::Simulation sim2(2);
  cluster::Deployment deployment2(sim2, dopts);
  client::ClientOptions sticky;
  sticky.sticky = true;
  sticky.read_your_writes = true;
  sticky.home_cluster = 0;
  client::SyncClient pinned(sim2, deployment2.AddClient(sticky));
  deployment2.PartitionClusters(0, 1);
  pinned.Begin();
  pinned.Write("inbox", "draft #1");
  (void)pinned.Commit();
  pinned.Begin();
  auto sticky_read = pinned.Read("inbox");
  std::printf("sticky client, same scenario: %s\n",
              sticky_read.ok() && sticky_read->found
                  ? sticky_read->value.c_str()
                  : "(missing)");
  (void)pinned.Commit();
}

void DemoMonotonicReads() {
  Headline("Monotonic Reads prevents going back in time");
  sim::Simulation sim(3);
  auto dopts = cluster::DeploymentOptions::TwoRegions();
  cluster::Deployment deployment(sim, dopts);

  // A writer commits v1 everywhere, then v2 only to cluster 0 (partition).
  client::ClientOptions writer_opts;
  writer_opts.home_cluster = 0;
  client::SyncClient writer(sim, deployment.AddClient(writer_opts));
  writer.Begin();
  writer.Write("feed", "v1");
  (void)writer.Commit();
  sim.RunUntil(sim.Now() + 2 * sim::kSecond);
  deployment.PartitionClusters(0, 1);
  writer.Begin();
  writer.Write("feed", "v2");
  (void)writer.Commit();

  for (bool monotonic : {false, true}) {
    client::ClientOptions opts;
    opts.sticky = false;
    opts.home_cluster = 0;
    opts.monotonic_reads = monotonic;
    client::SyncClient reader(sim, deployment.AddClient(opts));
    reader.Begin();
    auto first = reader.Read("feed");
    (void)reader.Commit();
    reader.underlying().mutable_options().home_cluster = 1;  // stale side
    reader.Begin();
    auto second = reader.Read("feed");
    (void)reader.Commit();
    std::printf("MR %-3s: first=%s second=%s\n", monotonic ? "on" : "off",
                first.ok() && first->found ? first->value.c_str() : "-",
                second.ok() && second->found ? second->value.c_str() : "-");
  }
  std::printf("-> with MR the stale replica answers \"not yet\" and the\n"
              "   client retries a replica that has what it already saw.\n");
}

void DemoCausal() {
  Headline("Causal sessions: writes follow reads across sessions");
  sim::Simulation sim(4);
  auto dopts = cluster::DeploymentOptions::TwoRegions();
  cluster::Deployment deployment(sim, dopts);

  client::ClientOptions causal;
  causal.EnableCausal();
  causal.home_cluster = 0;
  client::SyncClient author(sim, deployment.AddClient(causal));

  author.Begin();
  author.Write("post:42", "HATs considered useful");
  (void)author.Commit();
  sim.RunUntil(sim.Now() + 2 * sim::kSecond);

  client::ClientOptions causal1 = causal;
  causal1.home_cluster = 1;
  client::SyncClient commenter(sim, deployment.AddClient(causal1));
  commenter.Begin();
  auto post = commenter.Read("post:42");
  commenter.Write("comment:42:1", "agreed!");
  (void)commenter.Commit();
  sim.RunUntil(sim.Now() + 2 * sim::kSecond);

  // A third session that sees the comment is guaranteed to see the post:
  // the comment carries its causal dependencies.
  client::SyncClient lurker(sim, deployment.AddClient(causal));
  lurker.Begin();
  auto comment = lurker.Read("comment:42:1");
  auto post_again = lurker.Read("post:42");
  (void)lurker.Commit();
  std::printf("comment visible: %s; post visible: %s\n",
              comment.ok() && comment->found ? "yes" : "no",
              post_again.ok() && post_again->found ? "yes" : "no");
  std::printf("-> no one ever sees a comment to a post that does not exist\n"
              "   (the \"writes follow reads\" guarantee).\n");
  (void)post;
}

}  // namespace

int main() {
  DemoReadYourWrites();
  DemoMonotonicReads();
  DemoCausal();
  return 0;
}
