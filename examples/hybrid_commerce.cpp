// Hybrid HAT / non-HAT application design — the paper's fourth takeaway:
// "for correct behavior, applications may require a combination of HAT and
// (ideally sparing use of) non-HAT isolation levels".
//
// An order service that needs TPC-C-style *sequential* invoice numbers (a
// Lost-Update-prone counter) but wants HAT latency for everything else:
//   * invoice numbers  -> tiny 2PL transaction on one counter (non-HAT)
//   * order payload    -> MAV transaction (HAT, atomic multi-key)
//   * account balances -> commutative increments (HAT, partition-safe)
// Compare against running *everything* under 2PL.

#include <cstdio>

#include "hat/client/sync_client.h"
#include "hat/cluster/deployment.h"
#include "hat/common/codec.h"
#include "hat/harness/table.h"

using namespace hat;

namespace {

struct Outcome {
  int orders = 0;
  double total_ms = 0;
  bool ids_sequential = true;
};

/// Places `n` orders; returns timing + ID-sequence integrity.
Outcome PlaceOrders(sim::Simulation& sim, client::SyncClient& counter_client,
                    client::SyncClient& data_client, int n,
                    const char* prefix) {
  Outcome out;
  int64_t last_id = 0;
  for (int i = 0; i < n; i++) {
    sim::SimTime start = sim.Now();

    // 1. Sequential invoice number: the only coordinated step. A one-key
    //    2PL transaction holds its lock for a single WAN round trip.
    int64_t invoice = 0;
    Status s;
    do {
      counter_client.Begin();
      auto v = counter_client.ReadInt("invoice:counter");
      if (!v.ok()) {
        counter_client.Abort();
        continue;
      }
      invoice = *v + 1;
      counter_client.Write("invoice:counter", EncodeInt64Value(invoice));
      s = counter_client.Commit();
    } while (!s.ok());
    // The two designs share one counter; judge sequentiality within the
    // phase (no gaps or duplicates after the first assignment).
    if (i > 0 && invoice != last_id + 1) out.ids_sequential = false;
    last_id = invoice;

    // 2. Everything else: HAT. Atomically visible order + lines via MAV,
    //    commutative balance update.
    data_client.Begin();
    std::string oid = std::string(prefix) + std::to_string(invoice);
    data_client.Write("order:" + oid, "payload");
    data_client.Write("order:" + oid + ":line:0", "item=7;qty=2");
    data_client.Write("order:" + oid + ":line:1", "item=9;qty=1");
    data_client.Increment("account:42:balance", -120);
    if (!data_client.Commit().ok()) continue;

    out.orders++;
    out.total_ms += static_cast<double>(sim.Now() - start) / 1000.0;
  }
  return out;
}

}  // namespace

int main() {
  sim::Simulation sim(1234);
  auto dopts = cluster::DeploymentOptions::TwoRegions();
  cluster::Deployment deployment(sim, dopts);

  // Seed the counter.
  client::ClientOptions seed_opts;
  seed_opts.mode = client::SystemMode::kLocking;
  client::SyncClient seeder(sim, deployment.AddClient(seed_opts));
  seeder.Begin();
  seeder.Write("invoice:counter", EncodeInt64Value(0));
  (void)seeder.Commit();
  sim.RunUntil(sim.Now() + sim::kSecond);

  harness::Banner(
      "Hybrid design: 2PL for the invoice counter, HATs for the rest");

  // Hybrid: a locking client just for the counter + a MAV client for data.
  client::ClientOptions lock_opts;
  lock_opts.mode = client::SystemMode::kLocking;
  lock_opts.home_cluster = 0;
  client::SyncClient counter_client(sim, deployment.AddClient(lock_opts));
  client::ClientOptions mav_opts;
  mav_opts.isolation = client::IsolationLevel::kMonotonicAtomicView;
  mav_opts.home_cluster = 0;
  client::SyncClient data_client(sim, deployment.AddClient(mav_opts));
  Outcome hybrid =
      PlaceOrders(sim, counter_client, data_client, 50, "H");

  // All-2PL: the same workload entirely under locking.
  client::SyncClient lock_data(sim, deployment.AddClient(lock_opts));
  client::SyncClient lock_counter(sim, deployment.AddClient(lock_opts));
  Outcome locked =
      PlaceOrders(sim, lock_counter, lock_data, 50, "L");

  harness::TablePrinter table(
      {"design", "orders", "avg ms/order", "sequential IDs"});
  table.AddRow({"hybrid (2PL counter + HAT data)",
                std::to_string(hybrid.orders),
                harness::TablePrinter::Num(hybrid.total_ms / hybrid.orders, 1),
                hybrid.ids_sequential ? "yes" : "no"});
  table.AddRow({"all-2PL",
                std::to_string(locked.orders),
                harness::TablePrinter::Num(locked.total_ms / locked.orders, 1),
                locked.ids_sequential ? "yes" : "no"});
  table.Print();

  std::printf(
      "\nThe hybrid pays one coordinated round trip per order (the counter)\n"
      "instead of locking every key it touches — and during a partition the\n"
      "HAT part keeps working:\n");
  deployment.PartitionClusters(0, 1);
  data_client.Begin();
  data_client.Increment("account:42:balance", 500);
  std::printf("  balance update during partition: %s\n",
              data_client.Commit().ToString().c_str());
  counter_client.Begin();
  auto v = counter_client.ReadInt("invoice:counter");
  std::printf("  invoice assignment during partition: %s (as the paper\n"
              "  predicts — the non-HAT slice is exactly what you lose)\n",
              v.ok() ? "Ok?!" : v.status().ToString().c_str());
  if (!v.ok()) counter_client.Abort();
  return 0;
}
