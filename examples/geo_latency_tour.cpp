// Geo-latency tour: what a single transaction costs from each region under
// HAT versus master execution — the "one to three orders of magnitude"
// headline of the paper, one client at a time.

#include <cstdio>

#include "hat/client/sync_client.h"
#include "hat/cluster/deployment.h"
#include "hat/harness/table.h"

using namespace hat;

int main() {
  sim::Simulation sim(77);
  auto dopts = cluster::DeploymentOptions::FiveRegions();
  cluster::Deployment deployment(sim, dopts);

  harness::Banner(
      "One 8-operation transaction from each region: HAT (local cluster) vs "
      "master (per-key home)");
  harness::TablePrinter table({"client region", "HAT RC (ms)",
                               "master (ms)", "ratio"});

  const char* region_names[] = {"Virginia", "California", "Oregon",
                                "Ireland", "Tokyo"};
  for (int cluster = 0; cluster < deployment.NumClusters(); cluster++) {
    double hat_ms = 0, master_ms = 0;
    for (int mode = 0; mode < 2; mode++) {
      client::ClientOptions opts;
      opts.home_cluster = cluster;
      if (mode == 1) opts.mode = client::SystemMode::kMaster;
      client::SyncClient client(sim, deployment.AddClient(opts));
      // Average over a few transactions.
      const int kTxns = 20;
      sim::SimTime start = sim.Now();
      for (int t = 0; t < kTxns; t++) {
        client.Begin();
        for (int op = 0; op < 8; op++) {
          Key key = "tour" + std::to_string(t * 8 + op);
          if (op % 2 == 0) {
            client.Write(key, "v");
          } else {
            (void)client.Read(key);
          }
        }
        (void)client.Commit();
      }
      double ms = static_cast<double>(sim.Now() - start) / 1000.0 / kTxns;
      (mode == 0 ? hat_ms : master_ms) = ms;
    }
    table.AddRow({region_names[cluster],
                  harness::TablePrinter::Num(hat_ms, 1),
                  harness::TablePrinter::Num(master_ms, 1),
                  harness::TablePrinter::Num(master_ms / hat_ms, 1) + "x"});
  }
  table.Print();
  std::printf(
      "\nHAT operations touch only the local cluster (sub-ms to few-ms);\n"
      "master routes each key to its global home, paying WAN round trips —\n"
      "the paper's 1-3 orders of magnitude.\n");
  return 0;
}
