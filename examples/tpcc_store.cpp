// A wholesale-warehouse application (TPC-C, paper Section 6.2) on hatkv:
// place orders, take payments, check status, deliver — at MAV isolation with
// commutative updates — and watch which business rules survive a partition.

#include <cstdio>

#include "hat/client/sync_client.h"
#include "hat/cluster/deployment.h"
#include "hat/workload/tpcc.h"

using namespace hat;
using workload::TpccConfig;
using workload::TpccExecutor;
using workload::TpccKeys;

namespace {

/// Runs one executor transaction to completion on the simulator.
template <typename Invoke>
void RunTxn(sim::Simulation& sim, Invoke&& invoke) {
  bool done = false;
  invoke(&done);
  while (!done && sim.Step()) {
  }
}

}  // namespace

int main() {
  sim::Simulation sim(66);
  auto dopts = cluster::DeploymentOptions::TwoRegions();
  cluster::Deployment deployment(sim, dopts);

  TpccConfig config;
  config.warehouses = 1;
  config.districts_per_warehouse = 2;
  config.customers_per_district = 10;
  config.items = 25;

  // Load the schema through a regular client.
  client::ClientOptions loader_opts;
  client::SyncClient loader(sim, deployment.AddClient(loader_opts));
  if (!workload::PopulateTpcc(loader, config).ok()) {
    std::printf("populate failed\n");
    return 1;
  }
  sim.RunUntil(sim.Now() + 2 * sim::kSecond);
  std::printf("warehouse loaded: %d districts, %d customers/district, %d "
              "items\n",
              config.districts_per_warehouse, config.customers_per_district,
              config.items);

  client::ClientOptions mav;
  mav.isolation = client::IsolationLevel::kMonotonicAtomicView;
  // Session guarantees so this clerk sees its own orders immediately
  // (MAV alone reveals a transaction only once it is pending-stable on
  // every replica — tens of milliseconds across the WAN).
  mav.EnablePram();
  auto& txn_client = deployment.AddClient(mav);
  TpccExecutor exec(txn_client, config);

  // --- New-Order ----------------------------------------------------------
  std::string oid;
  RunTxn(sim, [&](bool* done) {
    workload::NewOrderParams params;
    params.w = 0;
    params.d = 0;
    params.c = 3;
    params.lines = {{7, 3}, {12, 1}, {3, 5}};
    exec.NewOrder(params, [&, done](workload::NewOrderResult r) {
      std::printf("new-order: %s, id=%s (unique, timestamp-derived — the\n"
                  "  HAT-compatible compromise; sequential IDs would need\n"
                  "  unavailable coordination)\n",
                  r.status.ToString().c_str(), r.oid.c_str());
      oid = r.oid;
      *done = true;
    });
  });

  // --- Payment -------------------------------------------------------------
  RunTxn(sim, [&](bool* done) {
    workload::PaymentParams params;
    params.w = 0;
    params.d = 0;
    params.c = 3;
    params.amount = 250;
    exec.Payment(params, [&, done](Status s) {
      std::printf("payment: %s (all increments — commutative, HAT-safe)\n",
                  s.ToString().c_str());
      *done = true;
    });
  });

  // Let the order finish pending-stable promotion across the WAN before
  // other parties (the delivery truck) look for it.
  sim.RunUntil(sim.Now() + 2 * sim::kSecond);

  // --- Order-Status ---------------------------------------------------------
  RunTxn(sim, [&](bool* done) {
    exec.OrderStatus(0, 0, 3, [&, done](workload::OrderStatusResult r) {
      std::printf("order-status: %s, order found=%s, lines %d/%d visible, "
                  "balance=%lld\n",
                  r.status.ToString().c_str(), r.order_found ? "yes" : "no",
                  r.visible_lines, r.expected_lines,
                  static_cast<long long>(r.balance));
      std::printf("  (MAV guarantees the order never appears without its\n"
                  "   order lines — the foreign-key use case of §5.1.2)\n");
      *done = true;
    });
  });

  // --- Delivery --------------------------------------------------------------
  RunTxn(sim, [&](bool* done) {
    exec.Delivery({0, 0}, [&, done](workload::DeliveryResult r) {
      std::printf("delivery: %s, delivered order=%s\n",
                  r.status.ToString().c_str(),
                  r.oid.empty() ? "(none pending)" : r.oid.c_str());
      *done = true;
    });
  });

  // --- The partition test -----------------------------------------------------
  std::printf("\n-- partitioning the two datacenters --\n");
  deployment.PartitionClusters(0, 1);
  RunTxn(sim, [&](bool* done) {
    workload::PaymentParams params;
    params.w = 0;
    params.d = 1;
    params.c = 5;
    params.amount = 75;
    exec.Payment(params, [&, done](Status s) {
      std::printf("payment during partition: %s\n", s.ToString().c_str());
      *done = true;
    });
  });
  deployment.Heal();
  sim.RunUntil(sim.Now() + 3 * sim::kSecond);

  // Consistency Condition 1 after everything: w_ytd == sum(d_ytd).
  client::SyncClient checker(sim, deployment.AddClient(loader_opts));
  checker.Begin();
  int64_t w_ytd = checker.ReadInt(TpccKeys::WarehouseYtd(0)).value_or(-1);
  int64_t sum = 0;
  for (int d = 0; d < config.districts_per_warehouse; d++) {
    sum += checker.ReadInt(TpccKeys::DistrictYtd(0, d)).value_or(0);
  }
  checker.Abort();
  std::printf("\nConsistency Condition 1: warehouse ytd=%lld, district sum="
              "%lld -> %s\n",
              static_cast<long long>(w_ytd), static_cast<long long>(sum),
              w_ytd == sum ? "HOLDS" : "VIOLATED");
  std::printf("(commutative deltas + MAV keep it true across partitions;\n"
              " only sequential IDs and idempotent Delivery need more)\n");
  return 0;
}
