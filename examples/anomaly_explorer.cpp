// Anomaly explorer: runs the same contended workload at each isolation
// level, records an Adya history from the live execution, and prints which
// phenomena occurred — a hands-on tour of Table 3's separations.

#include <cstdio>
#include <functional>
#include <vector>

#include "hat/adya/phenomena.h"
#include "hat/adya/recorder.h"
#include "hat/client/txn_client.h"
#include "hat/cluster/deployment.h"
#include "hat/harness/table.h"

using namespace hat;

namespace {

/// A workload engineered to surface anomalies: concurrent read-modify-writes
/// on two registers, paired multi-key writes, and rereads.
adya::PhenomenaReport RunWorkload(client::ClientOptions base) {
  sim::Simulation sim(99);
  auto dopts = cluster::DeploymentOptions::TwoRegions();
  dopts.server.durable = false;
  cluster::Deployment deployment(sim, dopts);
  adya::HistoryRecorder recorder;

  std::vector<client::TxnClient*> clients;
  for (int i = 0; i < 6; i++) {
    client::ClientOptions opts = base;
    opts.home_cluster = i % 2;
    opts.op_timeout = 3 * sim::kSecond;
    clients.push_back(&deployment.AddClient(opts));
    clients.back()->set_observer(&recorder);
  }

  std::vector<int> remaining(clients.size(), 30);
  std::function<void(size_t)> loop = [&](size_t c) {
    if (remaining[c]-- <= 0) return;
    client::TxnClient* client = clients[c];
    client->Begin();
    switch (remaining[c] % 3) {
      case 0:  // read-modify-write on a hot register
        client->Read("hot", [&, c, client](Status s, ReadVersion rv) {
          if (!s.ok()) {
            client->Abort();
            loop(c);
            return;
          }
          client->Write("hot", rv.value + "*");
          client->Commit([&, c](Status) { loop(c); });
        });
        break;
      case 1:  // atomic pair write
        client->Write("left", std::to_string(remaining[c]));
        client->Write("right", std::to_string(remaining[c]));
        client->Commit([&, c](Status) { loop(c); });
        break;
      default:  // reread + cross-pair read
        client->Read("left", [&, c, client](Status, ReadVersion) {
          client->Read("right", [&, c, client](Status, ReadVersion) {
            client->Read("left", [&, c, client](Status, ReadVersion) {
              client->Commit([&, c](Status) { loop(c); });
            });
          });
        });
    }
  };
  for (size_t c = 0; c < clients.size(); c++) loop(c);
  sim.RunUntil(sim.Now() + 300 * sim::kSecond);
  return adya::Analyze(recorder.Finish());
}

}  // namespace

int main() {
  harness::Banner(
      "Anomaly explorer: which phenomena occur at each configuration?");

  struct Config {
    const char* name;
    std::function<void(client::ClientOptions&)> setup;
  };
  std::vector<Config> configs = {
      {"Read Uncommitted",
       [](client::ClientOptions& o) {
         o.isolation = client::IsolationLevel::kReadUncommitted;
       }},
      {"Read Committed",
       [](client::ClientOptions& o) {
         o.isolation = client::IsolationLevel::kReadCommitted;
       }},
      {"Item Cut (ANSI RR)",
       [](client::ClientOptions& o) {
         o.isolation = client::IsolationLevel::kItemCut;
       }},
      {"MAV",
       [](client::ClientOptions& o) {
         o.isolation = client::IsolationLevel::kMonotonicAtomicView;
       }},
      {"Causal + MAV (sticky)",
       [](client::ClientOptions& o) {
         o.isolation = client::IsolationLevel::kMonotonicAtomicView;
         o.EnableCausal();
       }},
      {"Master (linearizable keys)",
       [](client::ClientOptions& o) {
         o.mode = client::SystemMode::kMaster;
       }},
      {"Two-phase locking (1SR)",
       [](client::ClientOptions& o) {
         o.mode = client::SystemMode::kLocking;
         o.isolation = client::IsolationLevel::kItemCut;
       }},
  };

  harness::TablePrinter table({"Configuration", "Phenomena observed",
                               "RC?", "MAV?", "Serializable?"});
  for (const auto& config : configs) {
    client::ClientOptions opts;
    config.setup(opts);
    auto report = RunWorkload(opts);
    table.AddRow({config.name, report.Summary(),
                  report.ReadCommitted() ? "yes" : "no",
                  report.MonotonicAtomicView() ? "yes" : "no",
                  report.Serializable() ? "yes" : "no"});
    std::fflush(stdout);
  }
  table.Print();

  std::printf(
      "\nReading the table (paper Sections 5.1-5.2):\n"
      " * every HAT level shows LostUpdate/WriteSkew — preventing them is\n"
      "   provably incompatible with high availability;\n"
      " * each level removes exactly its own anomalies (G1*, IMP, OTV);\n"
      " * only the unavailable configurations are serializable.\n");
  return 0;
}
