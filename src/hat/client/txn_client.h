// TxnClient: the hatkv client library and the centre of this reproduction's
// public API.
//
// A TxnClient executes transactions (Begin / Read / Scan / Write / Increment
// / Commit / Abort) at a configurable point in the paper's taxonomy:
//
//   isolation:   Read Uncommitted, Read Committed, Item Cut (ANSI Repeatable
//                Read), Monotonic Atomic View (Appendix B algorithm)
//   sessions:    Monotonic Reads, Monotonic Writes (by construction), Read
//                Your Writes, Writes Follow Reads / causal (sticky)
//   mode:        HAT (any replica), master (per-key linearizable), quorum
//                (regular semantics), locking (serializable strict 2PL)
//
// All operations are asynchronous (the client is an actor on the simulated
// network); callers must issue at most one logical operation at a time per
// client. SyncClient (sync_client.h) provides a blocking facade for tests
// and examples.

#ifndef HAT_CLIENT_TXN_CLIENT_H_
#define HAT_CLIENT_TXN_CLIENT_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hat/client/observer.h"
#include "hat/client/options.h"
#include "hat/client/routing.h"
#include "hat/net/rpc.h"
#include "hat/obs/trace.h"
#include "hat/version/types.h"

namespace hat::client {

using ScanItem = net::ScanResponse::Item;

class TxnClient : public net::RpcNode {
 public:
  using ReadCallback = std::function<void(Status, ReadVersion)>;
  using ScanCallback = std::function<void(Status, std::vector<ScanItem>)>;
  using CommitCallback = std::function<void(Status)>;

  /// `id` must be a node registered with the network; `routing` must outlive
  /// the client.
  TxnClient(sim::Simulation& sim, net::Network& net, net::NodeId id,
            ClientOptions options, const Routing* routing);

  /// Starts a transaction. Must not already be in one.
  void Begin();

  /// Reads a key (sees the transaction's own buffered writes first).
  void Read(const Key& key, ReadCallback cb);

  /// Predicate read over [lo, hi).
  void Scan(const Key& lo, const Key& hi, ScanCallback cb);

  /// Buffers a put (Read Uncommitted sends immediately).
  void Write(const Key& key, Value value);

  /// Buffers a commutative numeric increment.
  void Increment(const Key& key, int64_t delta);

  /// Commits: installs buffered writes per the configured isolation/mode.
  void Commit(CommitCallback cb);

  /// Internal abort: discards buffered writes, releases locks.
  void Abort();

  /// Ends the session: session guarantee floors reset, session id advances.
  void NewSession();

  bool InTxn() const { return in_txn_; }
  const Timestamp& txn_ts() const { return txn_ts_; }
  const ClientOptions& options() const { return options_; }
  /// Options may be adjusted between transactions (not during one).
  ClientOptions& mutable_options() { return options_; }
  const ClientStats& stats() const { return stats_; }
  uint32_t session_id() const { return session_id_; }

  void set_observer(TxnObserver* observer) { observer_ = observer; }

  /// Attaches the deployment tracer. Transactions are sampled at Begin()
  /// (Tracer::Options::sample_every); a sampled transaction's envelopes all
  /// carry child contexts of its root span, so the whole distributed span
  /// tree shares one trace id.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 protected:
  void HandleMessage(const net::Envelope& env) override;

 private:
  struct BufferedWrite {
    WriteKind kind = WriteKind::kPut;
    Value value;        // Put payload
    int64_t delta = 0;  // accumulated increments (kDelta)
    bool has_put = false;
  };

  // --- timestamp/session helpers -----------------------------------------
  Timestamp NextTxnTimestamp();
  void BumpLamport(const Timestamp& observed) {
    if (observed.logical > lamport_) lamport_ = observed.logical;
  }
  std::optional<Timestamp> RequiredFor(const Key& key) const;
  void AbsorbReadMetadata(const Key& key, const Timestamp& ts,
                          const std::vector<Key>& sibs,
                          const std::vector<Dependency>& deps);

  // --- replica selection ---------------------------------------------------
  /// Candidate servers for an operation on `key`, in attempt order.
  std::vector<net::NodeId> TargetsFor(const Key& key) const;

  // --- envelope batching ---------------------------------------------------
  /// Issues one get/put RPC through the envelope batcher: with batching off
  /// (batch_max <= 1) this is exactly Call; with it on, consecutive ops
  /// bound for the same server coalesce into one ClientBatchRequest whose
  /// reply is demultiplexed back to each op's callback — so the retry /
  /// wrong-shard / session logic above the batcher is identical either way.
  void CallOp(net::NodeId target, net::Message msg, sim::Duration timeout,
              RpcCallback cb);
  /// Sends `target`'s queued ops now (size cap hit or wait timer fired).
  void FlushBatch(net::NodeId target);
  /// An envelope sent by FlushBatch completed (reply or timeout); drops the
  /// in-flight count the adaptive batcher uses as its idle-lane signal.
  void EnvelopeDone(net::NodeId target) {
    auto it = inflight_envelopes_.find(target);
    if (it != inflight_envelopes_.end() && --it->second == 0) {
      inflight_envelopes_.erase(it);
    }
  }

  // --- read paths ----------------------------------------------------------
  void ReadAttempt(Key key, std::vector<net::NodeId> targets, size_t attempt,
                   sim::SimTime deadline, ReadCallback cb);
  void QuorumRead(Key key, sim::SimTime deadline, ReadCallback cb);
  void LockingRead(Key key, sim::SimTime deadline, ReadCallback cb);
  void FinishRead(const Key& key, const net::GetResponse& resp,
                  ReadCallback cb);

  // --- write/commit paths ----------------------------------------------------
  WriteRecord MakeRecord(const Key& key, const BufferedWrite& bw,
                         const std::vector<Key>& sibs) const;
  void SendDirty(const Key& key, BufferedWrite bw);
  void PutWithRetry(WriteRecord w, net::PutMode mode,
                    std::vector<net::NodeId> targets, size_t attempt,
                    sim::SimTime deadline, std::function<void(Status)> done);
  void QuorumPut(WriteRecord w, sim::SimTime deadline,
                 std::function<void(Status)> done);
  void CommitWrites(CommitCallback cb);
  void LockingCommit(CommitCallback cb);
  void AcquireLock(Key key, bool exclusive, sim::SimTime deadline,
                   std::function<void(Status)> done);
  void ReleaseAllLocks();
  void FinishTxn(TxnOutcome outcome);

  ClientOptions options_;
  const Routing* routing_;
  TxnObserver* observer_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  /// Active while the current transaction is sampled: the root (kTxn) span's
  /// identity, parent of every span the transaction causes anywhere.
  obs::TraceContext txn_trace_;
  sim::SimTime txn_start_us_ = 0;
  /// Commit() entry time of the sampled transaction (0 = not yet in commit);
  /// FinishTxn turns it into the kCommit span.
  sim::SimTime commit_start_us_ = 0;
  ClientStats stats_;
  // Randomized (non-sticky) cluster selection. Seeded from the node id in
  // the constructor so clients don't make lock-stepped routing choices.
  mutable Rng route_rng_;

  // session state
  uint32_t session_id_ = 1;
  uint64_t session_seq_ = 0;
  uint64_t lamport_ = 0;
  uint64_t last_logical_ = 0;
  std::map<Key, Timestamp> session_floor_;  // MR / RYW / WFR-deps floors

  // per-transaction state
  bool in_txn_ = false;
  Timestamp txn_ts_;     ///< begin timestamp: txn identity, wait-die priority
  /// Version timestamp for installed writes, assigned at commit time (after
  /// every read has bumped the Lamport clock). This keeps all dependency
  /// edges pointing forward in timestamp order — buffered-commit Read
  /// Committed then prohibits G1c, and locking-mode version order agrees
  /// with the lock serialization order.
  Timestamp commit_ts_;
  std::map<Key, BufferedWrite> write_buffer_;
  std::map<Key, ReadVersion> read_cache_;        // item cut isolation
  struct CachedRange {
    Key lo, hi;
    std::vector<ScanItem> items;
  };
  std::vector<CachedRange> range_cache_;         // predicate cut isolation
  std::map<Key, Timestamp> mav_required_;        // Appendix B required vector
  std::vector<Key> held_locks_;                  // locking mode
  std::vector<WriteRecord> dirty_writes_;        // RU writes already sent
  uint32_t outstanding_dirty_ = 0;
  uint32_t dirty_seq_ = 0;  // per-txn ordinal for RU same-key rewrites
  uint64_t txn_epoch_ = 0;  // invalidates in-flight callbacks of older txns

  // envelope batcher state (per target server)
  struct PendingOp {
    net::Message msg;  // PutRequest or GetRequest
    sim::Duration timeout;
    RpcCallback cb;
    /// Enqueue time, for the kBatchWait span of sampled transactions.
    sim::SimTime enqueued_us = 0;
    /// The enqueuing transaction's root context (inactive when unsampled).
    /// Captured at enqueue so a flush that fires after the transaction ends
    /// still attributes the op to the right trace.
    obs::TraceContext trace;
  };
  struct TargetBatch {
    std::vector<PendingOp> ops;
    /// Bumped at each flush; a scheduled wait timer only flushes the batch
    /// generation it was armed for (a size-cap flush in between starts a
    /// fresh generation the timer must not cut short).
    uint64_t gen = 0;
    bool flush_scheduled = false;
  };
  std::map<net::NodeId, TargetBatch> batcher_;
  /// Envelopes issued through the batcher still awaiting reply/timeout, per
  /// target. Absent key = idle: with adaptive_batch_wait the batcher then
  /// closes new envelopes at instant-end instead of the full wait window.
  std::map<net::NodeId, uint32_t> inflight_envelopes_;
};

}  // namespace hat::client

#endif  // HAT_CLIENT_TXN_CLIENT_H_
