// TxnObserver: hook through which clients report the operations they perform
// and the versions they observe. hat::adya::HistoryRecorder implements this
// to build checkable Adya histories from live system executions.

#ifndef HAT_CLIENT_OBSERVER_H_
#define HAT_CLIENT_OBSERVER_H_

#include <vector>

#include "hat/net/message.h"
#include "hat/version/types.h"

namespace hat::client {

/// Items returned by predicate (range) reads.
using ScanItem = net::ScanResponse::Item;

enum class TxnOutcome : uint8_t {
  kCommitted = 0,
  /// Aborted by the transaction's own logic (internal abort).
  kAborted = 1,
  /// The system could not complete the transaction (timeout / external
  /// abort); `installed` lists writes that may nevertheless be visible.
  kFailed = 2,
};

class TxnObserver {
 public:
  virtual ~TxnObserver() = default;

  virtual void OnBegin(const Timestamp& txn, uint32_t client_id,
                       uint32_t session_id, uint64_t session_seq) = 0;
  virtual void OnRead(const Timestamp& txn, const Key& key,
                      const ReadVersion& version) = 0;
  virtual void OnScan(const Timestamp& txn, const Key& lo, const Key& hi,
                      const std::vector<ScanItem>& items) = 0;
  /// `installed` are the writes that were (or may have been) made visible.
  virtual void OnFinish(const Timestamp& txn, TxnOutcome outcome,
                        const std::vector<WriteRecord>& installed) = 0;
};

}  // namespace hat::client

#endif  // HAT_CLIENT_OBSERVER_H_
