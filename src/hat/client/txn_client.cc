#include "hat/client/txn_client.h"

#include <algorithm>
#include <cassert>

#include "hat/common/codec.h"

namespace hat::client {

namespace {
/// Aggregates N parallel sub-operations into one completion.
struct Barrier {
  int remaining = 0;
  Status first_error;
  std::function<void(Status)> done;

  void Arrive(const Status& s) {
    if (!s.ok() && first_error.ok()) first_error = s;
    if (--remaining == 0) done(first_error);
  }
};
}  // namespace

std::string_view IsolationLevelName(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kReadUncommitted: return "read-uncommitted";
    case IsolationLevel::kReadCommitted: return "read-committed";
    case IsolationLevel::kItemCut: return "item-cut";
    case IsolationLevel::kMonotonicAtomicView: return "mav";
  }
  return "?";
}

std::string_view SystemModeName(SystemMode mode) {
  switch (mode) {
    case SystemMode::kHat: return "hat";
    case SystemMode::kMaster: return "master";
    case SystemMode::kQuorum: return "quorum";
    case SystemMode::kLocking: return "locking";
  }
  return "?";
}

TxnClient::TxnClient(sim::Simulation& sim, net::Network& net, net::NodeId id,
                     ClientOptions options, const Routing* routing)
    : net::RpcNode(sim, net, id),
      options_(std::move(options)),
      routing_(routing),
      route_rng_(Fnv1a64(static_cast<uint64_t>(id)) ^ 0x9e3779b97f4a7c15ULL) {
}

void TxnClient::HandleMessage(const net::Envelope& env) {
  (void)env;  // Clients receive only RPC responses (handled by RpcNode).
}

// ---------------------------------------------------------------------------
// Timestamps, sessions, floors
// ---------------------------------------------------------------------------

Timestamp TxnClient::NextTxnTimestamp() {
  uint64_t logical =
      std::max({sim_.Now(), lamport_ + 1, last_logical_ + 1});
  last_logical_ = logical;
  return Timestamp{logical, id()};
}

std::optional<Timestamp> TxnClient::RequiredFor(const Key& key) const {
  // Non-HAT modes have their own recency story (master serializes per key).
  if (options_.mode != SystemMode::kHat) return std::nullopt;
  std::optional<Timestamp> req;
  auto mav = mav_required_.find(key);
  if (mav != mav_required_.end()) req = mav->second;
  auto floor = session_floor_.find(key);
  if (floor != session_floor_.end() &&
      (!req || floor->second > *req)) {
    req = floor->second;
  }
  return req;
}

void TxnClient::AbsorbReadMetadata(const Key& key, const Timestamp& ts,
                                   const std::vector<Key>& sibs,
                                   const std::vector<Dependency>& deps) {
  BumpLamport(ts);
  if (options_.monotonic_reads) {
    auto& floor = session_floor_[key];
    if (ts > floor) floor = ts;
  }
  if (options_.isolation == IsolationLevel::kMonotonicAtomicView) {
    for (const auto& sib : sibs) {
      auto& req = mav_required_[sib];
      if (ts > req) req = ts;
    }
  }
  if (options_.writes_follow_reads) {
    for (const auto& dep : deps) {
      auto& floor = session_floor_[dep.key];
      if (dep.ts > floor) floor = dep.ts;
    }
  }
}

void TxnClient::NewSession() {
  assert(!in_txn_);
  session_floor_.clear();
  session_id_++;
  session_seq_ = 0;
}

// ---------------------------------------------------------------------------
// Transaction lifecycle
// ---------------------------------------------------------------------------

void TxnClient::Begin() {
  assert(!in_txn_ && "one transaction at a time per client");
  in_txn_ = true;
  txn_epoch_++;
  txn_ts_ = NextTxnTimestamp();
  commit_ts_ = txn_ts_;  // re-assigned at commit time for buffered writes
  write_buffer_.clear();
  read_cache_.clear();
  range_cache_.clear();
  mav_required_.clear();
  dirty_writes_.clear();
  held_locks_.clear();
  outstanding_dirty_ = 0;
  dirty_seq_ = 0;
  session_seq_++;
  txn_trace_ = {};
  commit_start_us_ = 0;
  if (tracer_ != nullptr && tracer_->ShouldSampleTxn()) {
    txn_trace_ =
        obs::TraceContext{tracer_->NewTraceId(), tracer_->NewSpanId()};
    txn_start_us_ = sim_.Now();
  }
  if (observer_) observer_->OnBegin(txn_ts_, id(), session_id_, session_seq_);
}

void TxnClient::FinishTxn(TxnOutcome outcome) {
  in_txn_ = false;
  txn_epoch_++;
  switch (outcome) {
    case TxnOutcome::kCommitted:
      stats_.txns_committed++;
      break;
    case TxnOutcome::kAborted:
      stats_.txns_aborted_internal++;
      break;
    case TxnOutcome::kFailed:
      stats_.txns_unavailable++;
      break;
  }
  if (txn_trace_.active() && tracer_ != nullptr && tracer_->enabled()) {
    if (commit_start_us_ != 0) {
      obs::Span c;
      c.trace_id = txn_trace_.trace_id;
      c.span_id = tracer_->NewSpanId();
      c.parent_id = txn_trace_.span_id;
      c.kind = obs::SpanKind::kCommit;
      c.node = id();
      c.start_us = commit_start_us_;
      c.end_us = sim_.Now();
      c.arg = static_cast<uint64_t>(outcome);
      tracer_->Record(c);
    }
    // Root span last: it closes only once the outcome is known.
    obs::Span s;
    s.trace_id = txn_trace_.trace_id;
    s.span_id = txn_trace_.span_id;
    s.kind = obs::SpanKind::kTxn;
    s.node = id();
    s.start_us = txn_start_us_;
    s.end_us = sim_.Now();
    s.arg = static_cast<uint64_t>(outcome);
    tracer_->Record(s);
  }
  txn_trace_ = {};
  commit_start_us_ = 0;
}

void TxnClient::Abort() {
  if (!in_txn_) return;
  if (options_.mode == SystemMode::kLocking) ReleaseAllLocks();
  std::vector<WriteRecord> installed = dirty_writes_;  // RU leaks its writes
  FinishTxn(TxnOutcome::kAborted);
  if (observer_) observer_->OnFinish(txn_ts_, TxnOutcome::kAborted, installed);
}

// ---------------------------------------------------------------------------
// Replica selection
// ---------------------------------------------------------------------------

std::vector<net::NodeId> TxnClient::TargetsFor(const Key& key) const {
  switch (options_.mode) {
    case SystemMode::kMaster:
    case SystemMode::kLocking:
      return {routing_->MasterOf(key)};
    case SystemMode::kQuorum:
      return routing_->ReplicasOf(key);
    case SystemMode::kHat:
      break;
  }
  if (options_.sticky) {
    // Sticky availability: the session's continuity depends on staying with
    // its logical copy; never fail over.
    return {routing_->ReplicaInCluster(key, options_.home_cluster)};
  }
  // Non-sticky: rotate through clusters, starting from home (a locality-
  // aware balancer) or a random cluster (location-oblivious).
  std::vector<net::NodeId> targets;
  int n = routing_->NumClusters();
  int start = options_.home_cluster;
  if (options_.randomize_routing) {
    start = static_cast<int>(route_rng_.NextBelow(n));
  }
  for (int i = 0; i < n; i++) {
    targets.push_back(routing_->ReplicaInCluster(key, (start + i) % n));
  }
  return targets;
}

// ---------------------------------------------------------------------------
// Envelope batching
// ---------------------------------------------------------------------------

void TxnClient::CallOp(net::NodeId target, net::Message msg,
                       sim::Duration timeout, RpcCallback cb) {
  if (options_.batch_max <= 1) {
    obs::TraceContext env_trace;
    if (txn_trace_.active() && tracer_ != nullptr) {
      env_trace = tracer_->ChildOf(txn_trace_);
    }
    Call(target, std::move(msg), timeout, std::move(cb), env_trace);
    return;
  }
  TargetBatch& tb = batcher_[target];
  tb.ops.push_back(PendingOp{std::move(msg), timeout, std::move(cb),
                             sim_.Now(), txn_trace_});
  if (tb.ops.size() >= options_.batch_max) {
    FlushBatch(target);
    return;
  }
  if (!tb.flush_scheduled) {
    tb.flush_scheduled = true;
    // With batch_max_wait_us = 0 this still coalesces: equal-timestamp
    // events run in insertion order, so the flush fires after every op the
    // current synchronous burst enqueues (a commit's put loop, a quorum
    // fan-out) — batching them with zero added latency.
    sim::Duration wait = options_.batch_max_wait_us;
    if (wait > 0 && options_.adaptive_batch_wait &&
        inflight_envelopes_.find(target) == inflight_envelopes_.end()) {
      // Idle lane: this client has nothing outstanding at the target, so no
      // reply is due whose round-trip the wait could hide behind — holding
      // the envelope would convert the wait window straight into latency.
      // Close at instant-end (the synchronous burst still coalesces).
      wait = 0;
      stats_.adaptive_early_closes++;
    }
    sim_.After(wait, [this, target, gen = tb.gen]() {
      auto it = batcher_.find(target);
      if (it != batcher_.end() && it->second.gen == gen) {
        FlushBatch(target);
      }
    });
  }
}

void TxnClient::FlushBatch(net::NodeId target) {
  auto it = batcher_.find(target);
  if (it == batcher_.end() || it->second.ops.empty()) return;
  TargetBatch& tb = it->second;
  std::vector<PendingOp> ops = std::move(tb.ops);
  tb.ops.clear();
  tb.gen++;
  tb.flush_scheduled = false;

  inflight_envelopes_[target]++;

  // The envelope rides as a child of the first traced op's transaction; the
  // wait each op spent in the batcher becomes its own kBatchWait span.
  obs::TraceContext env_trace;
  if (tracer_ != nullptr && tracer_->enabled()) {
    for (const PendingOp& op : ops) {
      if (!op.trace.active()) continue;
      if (!env_trace.active()) env_trace = tracer_->ChildOf(op.trace);
      obs::Span s;
      s.trace_id = op.trace.trace_id;
      s.span_id = tracer_->NewSpanId();
      s.parent_id = op.trace.span_id;
      s.kind = obs::SpanKind::kBatchWait;
      s.node = id();
      s.start_us = op.enqueued_us;
      s.end_us = sim_.Now();
      s.arg = ops.size();
      tracer_->Record(s);
    }
  }

  if (ops.size() == 1) {
    // A lone op gains nothing from the envelope; send it plain (and skip
    // the server's batch-header charge).
    Call(target, std::move(ops.front().msg), ops.front().timeout,
         [this, target, cb = std::move(ops.front().cb)](
             Status s, const net::Message* m) {
           EnvelopeDone(target);
           cb(s, m);
         },
         env_trace);
    return;
  }

  net::ClientBatchRequest req;
  req.ops.reserve(ops.size());
  sim::Duration timeout = ops.front().timeout;
  auto cbs = std::make_shared<std::vector<RpcCallback>>();
  cbs->reserve(ops.size());
  for (PendingOp& op : ops) {
    timeout = std::min(timeout, op.timeout);
    if (auto* put = std::get_if<net::PutRequest>(&op.msg)) {
      req.ops.emplace_back(std::move(*put));
    } else {
      req.ops.emplace_back(std::move(std::get<net::GetRequest>(op.msg)));
    }
    cbs->push_back(std::move(op.cb));
  }
  stats_.batches_sent++;
  stats_.batched_ops += ops.size();
  Call(
      target, std::move(req), timeout,
      [this, target, cbs](Status s, const net::Message* m) {
        EnvelopeDone(target);
        // Demux: reply i belongs to op i. Each saved callback sees exactly
        // the (Status, Message*) a plain Call would have produced, so the
        // per-op retry and session logic upstream is unchanged.
        const net::ClientBatchResponse* resp =
           s.ok() && m != nullptr
              ? std::get_if<net::ClientBatchResponse>(m)
              : nullptr;
        if (resp == nullptr || resp->replies.size() != cbs->size()) {
          Status err = s.ok() ? Status::Corruption(
                                "malformed client batch response")
                          : s;
          for (auto& cb : *cbs) cb(err, nullptr);
          return;
        }
        for (size_t i = 0; i < cbs->size(); i++) {
          net::Message sub = std::visit(
            [](const auto& r) { return net::Message(r); },
            resp->replies[i]);
          (*cbs)[i](Status::Ok(), &sub);
        }
      },
      env_trace);
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

void TxnClient::Read(const Key& key, ReadCallback cb) {
  assert(in_txn_);
  stats_.reads++;

  // Per-transaction read-your-writes from the write buffer (Appendix B
  // client pseudocode). Buffered full Puts satisfy the read locally;
  // buffered increments are layered onto the stored value after the fetch.
  auto buffered = write_buffer_.find(key);
  if (buffered != write_buffer_.end() && buffered->second.has_put &&
      buffered->second.kind == WriteKind::kPut) {
    stats_.cache_hits++;
    ReadVersion rv;
    rv.found = true;
    rv.ts = txn_ts_;
    rv.value = buffered->second.value;
    cb(Status::Ok(), std::move(rv));
    return;
  }

  // Cut isolation: repeated reads come from the transaction's cut.
  if (options_.isolation >= IsolationLevel::kItemCut) {
    auto cached = read_cache_.find(key);
    if (cached != read_cache_.end()) {
      stats_.cache_hits++;
      if (observer_) observer_->OnRead(txn_ts_, key, cached->second);
      cb(Status::Ok(), cached->second);
      return;
    }
  }

  sim::SimTime deadline = sim_.Now() + options_.op_timeout;
  if (options_.mode == SystemMode::kQuorum) {
    QuorumRead(key, deadline, std::move(cb));
    return;
  }
  if (options_.mode == SystemMode::kLocking) {
    LockingRead(key, deadline, std::move(cb));
    return;
  }
  ReadAttempt(key, TargetsFor(key), 0, deadline, std::move(cb));
}

void TxnClient::ReadAttempt(Key key, std::vector<net::NodeId> targets,
                            size_t attempt, sim::SimTime deadline,
                            ReadCallback cb) {
  if (sim_.Now() >= deadline) {
    cb(Status::Unavailable("no reachable replica could serve the read"),
       ReadVersion{});
    return;
  }
  net::GetRequest req;
  req.key = key;
  req.required = RequiredFor(key);
  net::NodeId target = targets[attempt % targets.size()];
  sim::Duration timeout =
      std::min<sim::Duration>(options_.rpc_timeout, deadline - sim_.Now());
  uint64_t epoch = txn_epoch_;
  CallOp(target, req, timeout,
         [this, key = std::move(key), targets = std::move(targets), attempt,
          deadline, cb = std::move(cb), epoch](Status s,
                                               const net::Message* m) mutable {
         if (epoch != txn_epoch_) return;  // transaction moved on
         if (s.ok()) {
           const auto& resp = std::get<net::GetResponse>(*m);
           if (resp.code == net::GetCode::kOk) {
             FinishRead(key, resp, std::move(cb));
             return;
           }
           if (resp.code == net::GetCode::kWrongShard) {
             // Stale placement epoch: the shard migrated away from this
             // replica. Refresh the target list from live routing and
             // restart from its head so the retry lands at the new owner
             // (not the next rotation slot).
             stats_.wrong_shard_retries++;
             targets = TargetsFor(key);
             attempt = static_cast<size_t>(-1);  // next attempt indexes 0
           }
           // kNotYet: the replica has not seen our required version.
         }
         stats_.read_retries++;
         sim_.After(options_.retry_backoff,
                    [this, key = std::move(key), targets = std::move(targets),
                     attempt, deadline, cb = std::move(cb), epoch]() mutable {
                      if (epoch != txn_epoch_) return;
                      ReadAttempt(std::move(key), std::move(targets),
                                  attempt + 1, deadline, std::move(cb));
                    });
       });
}

void TxnClient::FinishRead(const Key& key, const net::GetResponse& resp,
                           ReadCallback cb) {
  ReadVersion rv;
  rv.found = resp.found;
  rv.value = resp.value;
  rv.ts = resp.ts;
  rv.sibs = resp.sibs;
  rv.deps = resp.deps;
  AbsorbReadMetadata(key, resp.ts, resp.sibs, resp.deps);
  if (options_.isolation >= IsolationLevel::kItemCut) {
    read_cache_[key] = rv;
  }
  if (observer_) observer_->OnRead(txn_ts_, key, rv);
  // Overlay the transaction's own buffered increments.
  auto buffered = write_buffer_.find(key);
  if (buffered != write_buffer_.end() &&
      buffered->second.kind == WriteKind::kDelta) {
    int64_t base = DecodeInt64Value(rv.value).value_or(0);
    rv.value = EncodeInt64Value(base + buffered->second.delta);
    rv.found = true;
  }
  cb(Status::Ok(), std::move(rv));
}

void TxnClient::QuorumRead(Key key, sim::SimTime deadline, ReadCallback cb) {
  auto replicas = routing_->ReplicasOf(key);
  int n = static_cast<int>(replicas.size());
  int majority = n / 2 + 1;
  struct QState {
    int successes = 0;
    int failures = 0;
    bool done = false;
    net::GetResponse best;
  };
  auto state = std::make_shared<QState>();
  uint64_t epoch = txn_epoch_;
  sim::Duration timeout =
      std::min<sim::Duration>(options_.rpc_timeout,
                              deadline > sim_.Now() ? deadline - sim_.Now()
                                                    : 1);
  for (net::NodeId r : replicas) {
    net::GetRequest req;
    req.key = key;
    CallOp(r, req, timeout,
           [this, key, deadline, cb, state, epoch, n, majority](
               Status s, const net::Message* m) mutable {
           if (state->done || epoch != txn_epoch_) return;
           if (s.ok() && std::get<net::GetResponse>(*m).code !=
                             net::GetCode::kWrongShard) {
             const auto& resp = std::get<net::GetResponse>(*m);
             state->successes++;
             if (resp.found &&
                 (!state->best.found || resp.ts > state->best.ts)) {
               state->best = resp;
             }
             if (state->successes >= majority) {
               state->done = true;
               FinishRead(key, state->best, std::move(cb));
               return;
             }
           } else {
             state->failures++;
           }
           if (n - state->failures < majority) {
             state->done = true;
             // Majority unreachable: retry the whole quorum or give up.
             if (sim_.Now() >= deadline) {
               cb(Status::Unavailable("quorum unreachable"), ReadVersion{});
             } else {
               stats_.read_retries++;
               sim_.After(options_.retry_backoff,
                          [this, key, deadline, cb = std::move(cb),
                           epoch]() mutable {
                            if (epoch != txn_epoch_) return;
                            QuorumRead(key, deadline, std::move(cb));
                          });
             }
           }
         });
  }
}

void TxnClient::LockingRead(Key key, sim::SimTime deadline, ReadCallback cb) {
  AcquireLock(key, /*exclusive=*/false, deadline,
              [this, key, deadline, cb = std::move(cb)](Status s) mutable {
                if (!s.ok()) {
                  cb(s, ReadVersion{});
                  return;
                }
                ReadAttempt(key, {routing_->MasterOf(key)}, 0, deadline,
                            std::move(cb));
              });
}

// ---------------------------------------------------------------------------
// Predicate (range) reads
// ---------------------------------------------------------------------------

void TxnClient::Scan(const Key& lo, const Key& hi, ScanCallback cb) {
  assert(in_txn_);
  stats_.scans++;

  if (options_.predicate_cut) {
    // Fully covered by a cached range: serve the cut.
    for (const auto& cached : range_cache_) {
      if (cached.lo <= lo && hi <= cached.hi) {
        stats_.cache_hits++;
        std::vector<ScanItem> items;
        for (const auto& it : cached.items) {
          if (it.key >= lo && it.key < hi) items.push_back(it);
        }
        if (observer_) observer_->OnScan(txn_ts_, lo, hi, items);
        cb(Status::Ok(), std::move(items));
        return;
      }
    }
  }

  net::ScanRequest req;
  req.lo = lo;
  req.hi = hi;
  sim::SimTime deadline = sim_.Now() + options_.op_timeout;
  uint64_t epoch = txn_epoch_;

  // Keys are hash-sharded across a cluster's servers, so a predicate read
  // scatter-gathers over every server of one cluster and merges.
  auto attempt = std::make_shared<std::function<void(size_t)>>();
  *attempt = [this, req, deadline, cb = std::move(cb), epoch,
              attempt](size_t try_no) mutable {
    if (sim_.Now() >= deadline) {
      cb(Status::Unavailable("scan: no reachable replica"), {});
      return;
    }
    int n = routing_->NumClusters();
    int cluster = options_.sticky
                      ? options_.home_cluster
                      : (options_.home_cluster + static_cast<int>(try_no)) % n;
    auto servers = routing_->ClusterServers(cluster);
    sim::Duration timeout = std::min<sim::Duration>(options_.rpc_timeout,
                                                    deadline - sim_.Now());
    struct Gather {
      size_t remaining;
      bool failed = false;
      std::vector<ScanItem> items;
    };
    auto gather = std::make_shared<Gather>();
    gather->remaining = servers.size();
    auto finish_shard = [this, cb, epoch, attempt, try_no, req, gather](
                            Status s, const net::Message* m) mutable {
      if (epoch != txn_epoch_) return;
      if (!s.ok()) gather->failed = true;
      if (s.ok() && m != nullptr) {
        const auto& resp = std::get<net::ScanResponse>(*m);
        for (const auto& item : resp.items) gather->items.push_back(item);
      }
      if (--gather->remaining > 0) return;
      if (gather->failed) {
        stats_.read_retries++;
        sim_.After(options_.retry_backoff,
                   [attempt, try_no]() { (*attempt)(try_no + 1); });
        return;
      }
      std::vector<ScanItem> items = std::move(gather->items);
      std::sort(items.begin(), items.end(),
                [](const ScanItem& a, const ScanItem& b) {
                  return a.key < b.key;
                });

      if (options_.predicate_cut) {
             // Overlay intersections with previously scanned ranges: inside
             // an overlap the cut (both presence and absence) wins.
             for (const auto& cached : range_cache_) {
               Key olo = std::max(req.lo, cached.lo);
               Key ohi = std::min(req.hi, cached.hi);
               if (olo >= ohi) continue;
               items.erase(std::remove_if(items.begin(), items.end(),
                                          [&](const ScanItem& it) {
                                            return it.key >= olo &&
                                                   it.key < ohi;
                                          }),
                           items.end());
               for (const auto& it : cached.items) {
                 if (it.key >= olo && it.key < ohi) items.push_back(it);
               }
             }
             std::sort(items.begin(), items.end(),
                       [](const ScanItem& a, const ScanItem& b) {
                         return a.key < b.key;
                       });
             range_cache_.push_back(CachedRange{req.lo, req.hi, items});
           }
           for (const auto& it : items) {
             AbsorbReadMetadata(it.key, it.ts, it.sibs, {});
             if (options_.isolation >= IsolationLevel::kItemCut) {
               ReadVersion rv;
               rv.found = true;
               rv.ts = it.ts;
               rv.value = it.value;
               rv.sibs = it.sibs;
               read_cache_.emplace(it.key, std::move(rv));
             }
           }
           if (observer_) observer_->OnScan(txn_ts_, req.lo, req.hi, items);
           cb(Status::Ok(), std::move(items));
    };
    for (net::NodeId server : servers) {
      Call(server, req, timeout, finish_shard);
    }
  };
  (*attempt)(0);
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

void TxnClient::Write(const Key& key, Value value) {
  assert(in_txn_);
  stats_.writes++;
  if (options_.isolation == IsolationLevel::kReadUncommitted) {
    BufferedWrite bw;
    bw.kind = WriteKind::kPut;
    bw.value = std::move(value);
    bw.has_put = true;
    SendDirty(key, std::move(bw));
    return;
  }
  BufferedWrite& bw = write_buffer_[key];
  bw.kind = WriteKind::kPut;
  bw.value = std::move(value);
  bw.has_put = true;
  bw.delta = 0;
}

void TxnClient::Increment(const Key& key, int64_t delta) {
  assert(in_txn_);
  stats_.writes++;
  if (options_.isolation == IsolationLevel::kReadUncommitted) {
    BufferedWrite bw;
    bw.kind = WriteKind::kDelta;
    bw.delta = delta;
    SendDirty(key, std::move(bw));
    return;
  }
  BufferedWrite& bw = write_buffer_[key];
  if (bw.has_put) {
    // Fold the increment into the buffered Put.
    int64_t base = DecodeInt64Value(bw.value).value_or(0);
    bw.value = EncodeInt64Value(base + delta);
  } else {
    bw.kind = WriteKind::kDelta;
    bw.delta += delta;
  }
}

WriteRecord TxnClient::MakeRecord(const Key& key, const BufferedWrite& bw,
                                  const std::vector<Key>& sibs) const {
  WriteRecord w;
  w.key = key;
  w.kind = bw.kind;
  w.value = bw.kind == WriteKind::kDelta ? EncodeInt64Value(bw.delta)
                                         : bw.value;
  w.ts = commit_ts_;
  w.sibs = sibs;
  if (options_.writes_follow_reads) {
    for (const auto& [k, ts] : session_floor_) {
      w.deps.push_back(Dependency{k, ts});
    }
  }
  return w;
}

void TxnClient::SendDirty(const Key& key, BufferedWrite bw) {
  // Read Uncommitted: writes install immediately with the *transaction's*
  // timestamp — the paper's G0-prevention mechanism ("marking each of a
  // transaction's writes with the same timestamp"). The seq ordinal keeps a
  // transaction's successive writes to one key distinct (observable as
  // Intermediate Reads, G1b) without perturbing cross-transaction order.
  WriteRecord w = MakeRecord(key, bw, /*sibs=*/{});
  w.ts = txn_ts_;
  w.ts.seq = ++dirty_seq_;
  dirty_writes_.push_back(w);
  outstanding_dirty_++;
  sim::SimTime deadline = sim_.Now() + options_.op_timeout;
  PutWithRetry(std::move(w), net::PutMode::kEventual, TargetsFor(key), 0,
               deadline, [this](Status) { outstanding_dirty_--; });
}

void TxnClient::PutWithRetry(WriteRecord w, net::PutMode mode,
                             std::vector<net::NodeId> targets, size_t attempt,
                             sim::SimTime deadline,
                             std::function<void(Status)> done) {
  if (sim_.Now() >= deadline) {
    done(Status::Unavailable("no reachable replica accepted the write"));
    return;
  }
  net::NodeId target = targets[attempt % targets.size()];
  sim::Duration timeout =
      std::min<sim::Duration>(options_.rpc_timeout, deadline - sim_.Now());
  stats_.metadata_bytes += w.SibBytes();
  net::PutRequest req;
  req.write = w;
  req.mode = mode;
  CallOp(target, std::move(req), timeout,
         [this, w = std::move(w), mode, targets = std::move(targets), attempt,
          deadline, done = std::move(done)](Status s,
                                            const net::Message* m) mutable {
         if (s.ok()) {
           const auto* resp = std::get_if<net::PutResponse>(m);
           if (resp == nullptr || resp->ok) {
             done(Status::Ok());
             return;
           }
           if (resp->wrong_shard) {
             // Stale placement epoch: refresh routing and retry from the
             // head of the new target list (the shard's new owner).
             stats_.wrong_shard_retries++;
             targets = TargetsFor(w.key);
             attempt = static_cast<size_t>(-1);  // next attempt indexes 0
           }
         }
         sim_.After(options_.retry_backoff,
                    [this, w = std::move(w), mode,
                     targets = std::move(targets), attempt, deadline,
                     done = std::move(done)]() mutable {
                      PutWithRetry(std::move(w), mode, std::move(targets),
                                   attempt + 1, deadline, std::move(done));
                    });
       });
}

void TxnClient::QuorumPut(WriteRecord w, sim::SimTime deadline,
                          std::function<void(Status)> done) {
  auto replicas = routing_->ReplicasOf(w.key);
  int n = static_cast<int>(replicas.size());
  int majority = n / 2 + 1;
  struct QState {
    int acks = 0;
    int failures = 0;
    bool done_flag = false;
  };
  auto state = std::make_shared<QState>();
  sim::Duration timeout =
      std::min<sim::Duration>(options_.rpc_timeout,
                              deadline > sim_.Now() ? deadline - sim_.Now()
                                                    : 1);
  stats_.metadata_bytes += w.SibBytes();
  for (net::NodeId r : replicas) {
    net::PutRequest req;
    req.write = w;
    req.mode = net::PutMode::kEventual;
    CallOp(r, std::move(req), timeout,
           [this, state, majority, n, w, deadline, done](
               Status s, const net::Message* m) mutable {
           if (state->done_flag) return;
           const auto* resp = s.ok() ? std::get_if<net::PutResponse>(m)
                                     : nullptr;
           if (s.ok() && (resp == nullptr || resp->ok)) {
             if (++state->acks >= majority) {
               state->done_flag = true;
               done(Status::Ok());
             }
           } else if (++state->failures > n - majority) {
             state->done_flag = true;
             if (sim_.Now() >= deadline) {
               done(Status::Unavailable("write quorum unreachable"));
             } else {
               sim_.After(options_.retry_backoff,
                          [this, w = std::move(w), deadline,
                           done = std::move(done)]() mutable {
                            QuorumPut(std::move(w), deadline,
                                      std::move(done));
                          });
             }
           }
         });
  }
}

// ---------------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------------

void TxnClient::Commit(CommitCallback cb) {
  assert(in_txn_);
  if (txn_trace_.active()) commit_start_us_ = sim_.Now();
  if (options_.mode == SystemMode::kLocking) {
    LockingCommit(std::move(cb));
    return;
  }
  if (options_.isolation == IsolationLevel::kReadUncommitted) {
    // Writes are already out; wait for their acknowledgments.
    auto wait = std::make_shared<std::function<void()>>();
    uint64_t epoch = txn_epoch_;
    *wait = [this, cb = std::move(cb), wait, epoch]() mutable {
      if (epoch != txn_epoch_) return;
      if (outstanding_dirty_ > 0) {
        sim_.After(sim::kMillisecond, [wait]() { (*wait)(); });
        return;
      }
      std::vector<WriteRecord> installed = dirty_writes_;
      FinishTxn(TxnOutcome::kCommitted);
      if (observer_) {
        observer_->OnFinish(txn_ts_, TxnOutcome::kCommitted, installed);
      }
      cb(Status::Ok());
    };
    (*wait)();
    return;
  }
  CommitWrites(std::move(cb));
}

void TxnClient::CommitWrites(CommitCallback cb) {
  // Commit point: versions install at a timestamp later than everything the
  // transaction observed.
  commit_ts_ = NextTxnTimestamp();
  std::vector<Key> sibs;
  bool mav = options_.isolation == IsolationLevel::kMonotonicAtomicView;
  if (mav) {
    sibs.reserve(write_buffer_.size());
    for (const auto& [k, bw] : write_buffer_) sibs.push_back(k);
  }
  std::vector<WriteRecord> records;
  records.reserve(write_buffer_.size());
  for (const auto& [k, bw] : write_buffer_) {
    records.push_back(MakeRecord(k, bw, sibs));
  }

  auto finalize = [this, records, cb = std::move(cb)](Status s) {
    if (s.ok()) {
      if (options_.read_your_writes) {
        for (const auto& w : records) {
          auto& floor = session_floor_[w.key];
          if (w.ts > floor) floor = w.ts;
        }
      }
      BumpLamport(commit_ts_);
      FinishTxn(TxnOutcome::kCommitted);
      if (observer_) {
        observer_->OnFinish(txn_ts_, TxnOutcome::kCommitted, records);
      }
      cb(Status::Ok());
    } else {
      // Some writes may have been installed; report honestly.
      FinishTxn(TxnOutcome::kFailed);
      if (observer_) {
        observer_->OnFinish(txn_ts_, TxnOutcome::kFailed, records);
      }
      cb(s);
    }
  };

  if (records.empty()) {
    finalize(Status::Ok());
    return;
  }

  sim::SimTime deadline = sim_.Now() + options_.op_timeout;
  auto barrier = std::make_shared<Barrier>();
  barrier->remaining = static_cast<int>(records.size());
  barrier->done = std::move(finalize);
  net::PutMode mode = mav ? net::PutMode::kMav : net::PutMode::kEventual;
  for (auto& w : records) {
    if (options_.mode == SystemMode::kQuorum) {
      QuorumPut(w, deadline, [barrier](Status s) { barrier->Arrive(s); });
    } else {
      PutWithRetry(w, mode, TargetsFor(w.key), 0, deadline,
                   [barrier](Status s) { barrier->Arrive(s); });
    }
  }
}

// ---------------------------------------------------------------------------
// Two-phase locking mode
// ---------------------------------------------------------------------------

void TxnClient::AcquireLock(Key key, bool exclusive, sim::SimTime deadline,
                            std::function<void(Status)> done) {
  if (sim_.Now() >= deadline) {
    done(Status::Unavailable("lock service unreachable"));
    return;
  }
  net::LockRequest req;
  req.key = key;
  req.exclusive = exclusive;
  req.txn = txn_ts_;
  sim::Duration timeout =
      std::min<sim::Duration>(options_.rpc_timeout, deadline - sim_.Now());
  uint64_t epoch = txn_epoch_;
  // Resolve the target before Call: the lambda captures `key` by move and
  // argument evaluation order is unspecified.
  net::NodeId lock_server = routing_->MasterOf(key);
  Call(lock_server, std::move(req), timeout,
       [this, key = std::move(key), exclusive, deadline,
        done = std::move(done), epoch](Status s,
                                       const net::Message* m) mutable {
         if (epoch != txn_epoch_) return;
         if (s.ok()) {
           const auto& resp = std::get<net::LockResponse>(*m);
           if (resp.granted) {
             held_locks_.push_back(key);
             done(Status::Ok());
           } else if (held_locks_.empty()) {
             // Wait-die victim on our FIRST lock: we hold nothing, so no
             // deadlock cycle can pass through this transaction — retry
             // until the holder releases (bounded by the op deadline)
             // instead of aborting a lock-free transaction. Typically the
             // holder's unlock is simply still in flight. The no-locks-held
             // premise is re-checked when the retry fires: a concurrent
             // grant in the interim means waiting would now be
             // wait-while-holding, so the abort must surface after all.
             sim_.After(options_.retry_backoff,
                        [this, key = std::move(key), exclusive, deadline,
                         done = std::move(done), epoch]() mutable {
                          if (epoch != txn_epoch_) return;
                          if (!held_locks_.empty()) {
                            done(Status::Aborted("wait-die"));
                            return;
                          }
                          AcquireLock(std::move(key), exclusive, deadline,
                                      std::move(done));
                        });
           } else {
             // Wait-die victim: external abort, caller should retry txn.
             done(Status::Aborted("wait-die"));
           }
           return;
         }
         // Timeout: lock may be queued server-side; retrying is safe
         // (re-entrant grants) until the op deadline.
         sim_.After(options_.retry_backoff,
                    [this, key = std::move(key), exclusive, deadline,
                     done = std::move(done), epoch]() mutable {
                      if (epoch != txn_epoch_) return;
                      AcquireLock(std::move(key), exclusive, deadline,
                                  std::move(done));
                    });
       });
}

void TxnClient::ReleaseAllLocks() {
  if (held_locks_.empty()) return;
  // Group keys by lock server.
  std::map<net::NodeId, std::vector<Key>> by_server;
  for (const auto& k : held_locks_) {
    by_server[routing_->MasterOf(k)].push_back(k);
  }
  for (auto& [server, keys] : by_server) {
    net::UnlockRequest req;
    req.keys = std::move(keys);
    req.txn = txn_ts_;
    SendOneWay(server, std::move(req));
  }
  held_locks_.clear();
}

void TxnClient::LockingCommit(CommitCallback cb) {
  // Growing phase for writes: X locks in sorted key order, sequentially.
  auto keys = std::make_shared<std::vector<Key>>();
  for (const auto& [k, bw] : write_buffer_) keys->push_back(k);
  sim::SimTime deadline = sim_.Now() + options_.op_timeout;

  auto fail = [this, cb](Status s) {
    ReleaseAllLocks();
    std::vector<WriteRecord> none;
    TxnOutcome outcome =
        s.IsAborted() ? TxnOutcome::kAborted : TxnOutcome::kFailed;
    if (s.IsAborted()) {
      // External abort: count separately from internal aborts.
      stats_.txns_aborted_external++;
      in_txn_ = false;
      txn_epoch_++;
    } else {
      FinishTxn(TxnOutcome::kFailed);
    }
    if (observer_) observer_->OnFinish(txn_ts_, outcome, none);
    cb(s);
  };

  auto install = [this, cb, deadline, fail]() {
    // Commit point: reached only with every lock held, so the timestamp
    // order of conflicting writes matches the lock serialization order.
    commit_ts_ = NextTxnTimestamp();
    std::vector<WriteRecord> records;
    for (const auto& [k, bw] : write_buffer_) {
      records.push_back(MakeRecord(k, bw, /*sibs=*/{}));
    }
    auto finalize = [this, records, cb, fail](Status s) {
      if (!s.ok()) {
        fail(s);
        return;
      }
      ReleaseAllLocks();
      BumpLamport(commit_ts_);
      FinishTxn(TxnOutcome::kCommitted);
      if (observer_) {
        observer_->OnFinish(txn_ts_, TxnOutcome::kCommitted, records);
      }
      cb(Status::Ok());
    };
    if (records.empty()) {
      finalize(Status::Ok());
      return;
    }
    auto barrier = std::make_shared<Barrier>();
    barrier->remaining = static_cast<int>(records.size());
    barrier->done = finalize;
    for (auto& w : records) {
      PutWithRetry(w, net::PutMode::kEventual, {routing_->MasterOf(w.key)}, 0,
                   deadline, [barrier](Status s) { barrier->Arrive(s); });
    }
  };

  auto acquire_next = std::make_shared<std::function<void(size_t)>>();
  *acquire_next = [this, keys, deadline, install, fail,
                   acquire_next](size_t i) {
    if (i >= keys->size()) {
      install();
      return;
    }
    AcquireLock((*keys)[i], /*exclusive=*/true, deadline,
                [i, install, fail, acquire_next](Status s) {
                  if (!s.ok()) {
                    fail(s);
                    return;
                  }
                  (*acquire_next)(i + 1);
                });
  };
  (*acquire_next)(0);
}

}  // namespace hat::client
