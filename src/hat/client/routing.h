// Routing: how clients find replicas. Implemented by cluster::Deployment.

#ifndef HAT_CLIENT_ROUTING_H_
#define HAT_CLIENT_ROUTING_H_

#include <vector>

#include "hat/net/topology.h"
#include "hat/version/types.h"

namespace hat::client {

class Routing {
 public:
  virtual ~Routing() = default;

  /// Number of clusters (full replica copies of the database).
  virtual int NumClusters() const = 0;

  /// The server replicating `key` inside a given cluster.
  virtual net::NodeId ReplicaInCluster(const Key& key, int cluster) const = 0;

  /// All replicas of `key` (one per cluster).
  virtual std::vector<net::NodeId> ReplicasOf(const Key& key) const = 0;

  /// The designated master replica of `key`.
  virtual net::NodeId MasterOf(const Key& key) const = 0;

  /// All servers of one cluster (predicate reads scatter-gather over them).
  virtual std::vector<net::NodeId> ClusterServers(int cluster) const = 0;
};

}  // namespace hat::client

#endif  // HAT_CLIENT_ROUTING_H_
