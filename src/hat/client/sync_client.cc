#include "hat/client/sync_client.h"

#include "hat/common/codec.h"

namespace hat::client {

int64_t SyncClient::DecodeInt64OrZero(const Value& v) {
  return DecodeInt64Value(v).value_or(0);
}

}  // namespace hat::client
