// SyncClient: blocking facade over TxnClient for tests and examples.
//
// Each call drives the simulation until the underlying asynchronous
// operation completes. Only valid in single-threaded control flows (the
// simulation is paused inside the caller); concurrent workloads should use
// TxnClient directly (see hat::harness).

#ifndef HAT_CLIENT_SYNC_CLIENT_H_
#define HAT_CLIENT_SYNC_CLIENT_H_

#include <utility>
#include <vector>

#include "hat/client/txn_client.h"
#include "hat/common/result.h"

namespace hat::client {

class SyncClient {
 public:
  SyncClient(sim::Simulation& sim, TxnClient& client)
      : sim_(sim), client_(client) {}

  void Begin() { client_.Begin(); }

  Result<ReadVersion> Read(const Key& key) {
    bool done = false;
    Status status;
    ReadVersion version;
    client_.Read(key, [&](Status s, ReadVersion rv) {
      status = std::move(s);
      version = std::move(rv);
      done = true;
    });
    Drive(done);
    if (!status.ok()) return status;
    return version;
  }

  /// Reads a key and decodes it as an int64 counter; 0 when absent.
  Result<int64_t> ReadInt(const Key& key) {
    auto rv = Read(key);
    if (!rv.ok()) return rv.status();
    if (!rv->found) return int64_t{0};
    return DecodeInt64OrZero(rv->value);
  }

  Result<std::vector<ScanItem>> Scan(const Key& lo, const Key& hi) {
    bool done = false;
    Status status;
    std::vector<ScanItem> items;
    client_.Scan(lo, hi, [&](Status s, std::vector<ScanItem> result) {
      status = std::move(s);
      items = std::move(result);
      done = true;
    });
    Drive(done);
    if (!status.ok()) return status;
    return items;
  }

  void Write(const Key& key, Value value) {
    client_.Write(key, std::move(value));
  }
  void Increment(const Key& key, int64_t delta) {
    client_.Increment(key, delta);
  }

  Status Commit() {
    bool done = false;
    Status status;
    client_.Commit([&](Status s) {
      status = std::move(s);
      done = true;
    });
    Drive(done);
    return status;
  }

  void Abort() { client_.Abort(); }
  void NewSession() { client_.NewSession(); }

  TxnClient& underlying() { return client_; }

 private:
  static int64_t DecodeInt64OrZero(const Value& v);

  void Drive(bool& done) {
    while (!done && sim_.Step()) {
    }
  }

  sim::Simulation& sim_;
  TxnClient& client_;
};

}  // namespace hat::client

#endif  // HAT_CLIENT_SYNC_CLIENT_H_
