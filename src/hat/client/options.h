// Client-side configuration: which point in the HAT taxonomy a session runs
// at (Table 3 / Figure 2), and which system architecture serves it.

#ifndef HAT_CLIENT_OPTIONS_H_
#define HAT_CLIENT_OPTIONS_H_

#include <cstdint>
#include <string_view>

#include "hat/sim/simulation.h"

namespace hat::client {

/// ACID isolation levels achievable (or used as building blocks) in a HAT
/// system (Section 5.1). Stronger session guarantees layer on top via
/// ClientOptions flags.
enum class IsolationLevel : uint8_t {
  /// PL-1: writes go out immediately with the transaction's timestamp;
  /// last-writer-wins total order per item prevents G0 (Dirty Write) but
  /// aborted/intermediate data is visible (G1a/G1b possible).
  kReadUncommitted = 0,
  /// PL-2: the client buffers writes until commit, so no transaction ever
  /// reads uncommitted data (prevents G1a, G1b, G1c).
  kReadCommitted = 1,
  /// ANSI Repeatable Read ("Item Cut Isolation"): Read Committed plus a
  /// client-side read cache, so re-reads return the same value (no IMP).
  kItemCut = 2,
  /// Monotonic Atomic View: Item Cut plus the Appendix B two-phase commit
  /// visibility algorithm — once any of a transaction's effects are
  /// observed, all are (no OTV). Writes carry sibling metadata.
  kMonotonicAtomicView = 3,
};

std::string_view IsolationLevelName(IsolationLevel level);

/// System architecture serving the client (Section 6.3).
enum class SystemMode : uint8_t {
  /// Highly available: any replica serves any operation.
  kHat = 0,
  /// All operations for a key go to its designated master replica
  /// (single-key linearizability; unavailable under partitions).
  kMaster = 1,
  /// Dynamo-style: operations go to all replicas, complete on a majority
  /// (regular register semantics; unavailable under majority loss).
  kQuorum = 2,
  /// Distributed strict two-phase locking at key masters (one-copy
  /// serializability; unavailable under partitions, external aborts under
  /// contention via wait-die).
  kLocking = 3,
};

std::string_view SystemModeName(SystemMode mode);

struct ClientOptions {
  IsolationLevel isolation = IsolationLevel::kReadCommitted;
  SystemMode mode = SystemMode::kHat;

  /// Sticky availability (Section 4.1): pin every operation to the home
  /// cluster's replicas. When false, attempts rotate across clusters
  /// starting from home — modelling clients that fail over when re-routed
  /// (and demonstrating why Read Your Writes requires stickiness).
  bool sticky = true;
  /// The cluster this client lives next to (and sticks to).
  int home_cluster = 0;
  /// With sticky=false: start each operation at a uniformly random cluster
  /// instead of home — a location-oblivious load balancer. Used by the
  /// routing ablation to price stickiness in WAN hops.
  bool randomize_routing = false;

  // --- session guarantees (Section 5.1.3) --------------------------------
  /// Reads never observe older versions than previously read (per item).
  bool monotonic_reads = false;
  /// Reads observe the session's own committed writes. Requires stickiness
  /// to be guaranteed under partitions (Section 5.1.3's impossibility).
  bool read_your_writes = false;
  /// Writes Follow Reads: committed writes carry the session's observed
  /// floors as causal dependencies; readers adopt them transitively.
  bool writes_follow_reads = false;
  // Monotonic Writes holds by construction: per-session timestamps are
  // monotonic and the version order is the timestamp order.

  /// Predicate Cut Isolation: cache predicate (range) reads for the
  /// transaction duration so overlapping re-scans agree (no PMP/phantoms).
  bool predicate_cut = false;

  // --- envelope batching --------------------------------------------------
  /// Coalesce up to this many consecutive same-server get/put operations
  /// into one ClientBatchRequest envelope: one wire header and (at the
  /// server) one WAL group commit for the whole batch, with per-op reply
  /// semantics preserved by demultiplexing. 1 (the default) disables
  /// batching — every operation is its own envelope, byte-identical to the
  /// unbatched client.
  size_t batch_max = 1;
  /// How long an operation may wait in the batcher for companions before
  /// its envelope flushes. 0 still coalesces operations issued in the same
  /// simulation instant (a commit's parallel puts, a Read Uncommitted write
  /// burst): the flush fires after the current event's synchronous burst,
  /// adding no latency.
  sim::Duration batch_max_wait_us = 0;
  /// Adaptive envelope close (meaningful with batch_max_wait_us > 0): when
  /// the client has no envelope in flight to the target server — the
  /// server's lane is idle as far as this client can observe — the batcher
  /// closes the envelope at the end of the current simulation instant
  /// instead of holding it the full wait window. Batching then adds zero
  /// latency at low load; under pipelined load (replies still outstanding,
  /// so the lane is busy anyway) the full window applies and coalescing is
  /// preserved.
  bool adaptive_batch_wait = false;

  // --- timeouts / retries -------------------------------------------------
  sim::Duration rpc_timeout = 2 * sim::kSecond;
  sim::Duration op_timeout = 10 * sim::kSecond;
  sim::Duration retry_backoff = 10 * sim::kMillisecond;

  /// Convenience: PRAM = monotonic reads + monotonic writes + read your
  /// writes; causal = PRAM + writes follow reads (both require stickiness).
  void EnablePram() {
    monotonic_reads = true;
    read_your_writes = true;
    sticky = true;
  }
  void EnableCausal() {
    EnablePram();
    writes_follow_reads = true;
  }
};

/// Per-client operation counters.
struct ClientStats {
  uint64_t txns_committed = 0;
  uint64_t txns_aborted_internal = 0;  ///< client/application chose to abort
  uint64_t txns_aborted_external = 0;  ///< system-induced (wait-die, ...)
  uint64_t txns_unavailable = 0;       ///< ops timed out (partition/master)
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t scans = 0;
  uint64_t read_retries = 0;     ///< replica fail-overs and kNotYet retries
  /// Operations answered kWrongShard by a server whose shard migrated away
  /// (stale placement epoch); each refreshed its routing and retried.
  uint64_t wrong_shard_retries = 0;
  uint64_t cache_hits = 0;       ///< cut-isolation reads served locally
  uint64_t metadata_bytes = 0;   ///< sibling/dependency bytes shipped
  /// Envelope batching: multi-op ClientBatchRequests sent, and the ops they
  /// carried (batched_ops / batches_sent = achieved amortization factor).
  /// Singleton flushes go out as plain ops and count in neither.
  uint64_t batches_sent = 0;
  uint64_t batched_ops = 0;
  /// Envelopes the adaptive batcher closed at instant-end because nothing
  /// was in flight to the target (idle-lane early closes).
  uint64_t adaptive_early_closes = 0;

  /// Field manifest for generic merging and metric registration (see
  /// obs::MergeStats / obs::Registry::AddStats). Keep in declaration order;
  /// the static_assert below fails compilation when a field is added
  /// without updating this list.
  template <typename V>
  static void VisitFields(V&& v) {
    v("txns_committed", &ClientStats::txns_committed);
    v("txns_aborted_internal", &ClientStats::txns_aborted_internal);
    v("txns_aborted_external", &ClientStats::txns_aborted_external);
    v("txns_unavailable", &ClientStats::txns_unavailable);
    v("reads", &ClientStats::reads);
    v("writes", &ClientStats::writes);
    v("scans", &ClientStats::scans);
    v("read_retries", &ClientStats::read_retries);
    v("wrong_shard_retries", &ClientStats::wrong_shard_retries);
    v("cache_hits", &ClientStats::cache_hits);
    v("metadata_bytes", &ClientStats::metadata_bytes);
    v("batches_sent", &ClientStats::batches_sent);
    v("batched_ops", &ClientStats::batched_ops);
    v("adaptive_early_closes", &ClientStats::adaptive_early_closes);
  }
};

static_assert(sizeof(ClientStats) == 14 * sizeof(uint64_t),
              "ClientStats changed: update ClientStats::VisitFields and this "
              "assert so generic merge/registration stays complete");

}  // namespace hat::client

#endif  // HAT_CLIENT_OPTIONS_H_
