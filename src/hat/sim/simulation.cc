#include "hat/sim/simulation.h"

#include <algorithm>
#include <cassert>

namespace hat::sim {

EventId Simulation::At(SimTime t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  if (t < now_) t = now_;
  EventId id = next_id_++;
  queue_.push(Event{t, next_seq_++, id, std::move(cb)});
  live_events_++;
  return id;
}

bool Simulation::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  if (!cancelled_.insert(id).second) return false;  // already cancelled
  if (live_events_ > 0) live_events_--;
  return true;
}

bool Simulation::IsCancelled(EventId id) {
  auto it = cancelled_.find(id);
  if (it == cancelled_.end()) return false;
  cancelled_.erase(it);
  return true;
}

bool Simulation::Step() {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    Event ev{top.time, top.seq, top.id, std::move(const_cast<Event&>(top).cb)};
    queue_.pop();
    if (IsCancelled(ev.id)) continue;
    live_events_--;
    now_ = ev.time;
    ev.cb();
    events_processed_++;
    return true;
  }
  return false;
}

uint64_t Simulation::Run(SimTime limit) {
  uint64_t processed = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.time > limit) break;
    Event ev{top.time, top.seq, top.id, std::move(const_cast<Event&>(top).cb)};
    queue_.pop();
    if (IsCancelled(ev.id)) continue;
    live_events_--;
    now_ = ev.time;
    ev.cb();
    processed++;
    events_processed_++;
  }
  if (queue_.empty() || queue_.top().time > limit) {
    // Advance the clock to the limit when asked to run to a horizon, so a
    // subsequent After() is relative to the horizon, matching wall-clock use.
    if (limit != std::numeric_limits<SimTime>::max()) {
      now_ = std::max(now_, limit);
    }
  }
  return processed;
}

}  // namespace hat::sim
