// Deterministic discrete-event simulation core.
//
// All distributed components in hatkv (servers, clients, the network) are
// actors scheduled on a single virtual clock. Events at equal timestamps are
// ordered by insertion sequence, so a given seed always produces an identical
// execution — the experiments in bench/ are exactly reproducible.

#ifndef HAT_SIM_SIMULATION_H_
#define HAT_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>
#include <vector>

#include "hat/common/rng.h"

namespace hat::sim {

/// Virtual time in microseconds since simulation start.
using SimTime = uint64_t;

/// Durations are also microseconds.
using Duration = uint64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * 1000;

/// Handle to a scheduled event; can be used to cancel it.
using EventId = uint64_t;

/// The event loop. Not thread-safe by design: determinism requires a single
/// driving thread.
class Simulation {
 public:
  using Callback = std::function<void()>;

  explicit Simulation(uint64_t seed = 42) : rng_(seed) {}

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `cb` at absolute virtual time `t` (>= Now()). Returns an id
  /// usable with Cancel().
  EventId At(SimTime t, Callback cb);

  /// Schedules `cb` after `delay` from now.
  EventId After(Duration delay, Callback cb) { return At(now_ + delay, std::move(cb)); }

  /// Cancels a pending event. Cancelling an already-fired or unknown event is
  /// a no-op. Returns true if the event was pending.
  bool Cancel(EventId id);

  /// Runs until the event queue drains or `limit` is reached (whichever is
  /// first). Returns the number of events processed.
  uint64_t Run(SimTime limit = std::numeric_limits<SimTime>::max());

  /// Runs until virtual time reaches `t` (events at exactly t are processed).
  uint64_t RunUntil(SimTime t) { return Run(t); }

  /// Processes exactly one event. Returns false if the queue is empty.
  /// Used by synchronous facades that need to run "until X happens".
  bool Step();

  /// Number of events processed since construction.
  uint64_t events_processed() const { return events_processed_; }

  /// True if no events remain.
  bool Idle() const { return live_events_ == 0; }

  /// Root RNG for the simulation; components should Fork() children from it
  /// at setup time so that adding a component does not perturb others.
  Rng& rng() { return rng_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // FIFO tie-break for equal timestamps
    EventId id;
    Callback cb;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;  // min-heap
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t events_processed_ = 0;
  uint64_t live_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  // Cancelled ids; tombstones lazily discarded when their event pops.
  std::unordered_set<EventId> cancelled_;
  Rng rng_;

  bool IsCancelled(EventId id);
};

}  // namespace hat::sim

#endif  // HAT_SIM_SIMULATION_H_
