#include "hat/obs/registry.h"

#include <utility>

namespace hat::obs {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

void Registry::AddCounter(std::string name, MetricLabels labels,
                          Source source) {
  metrics_.push_back(Metric{std::move(name), std::move(labels),
                            MetricKind::kCounter, std::move(source), nullptr});
}

void Registry::AddGauge(std::string name, MetricLabels labels, Source source) {
  metrics_.push_back(Metric{std::move(name), std::move(labels),
                            MetricKind::kGauge, std::move(source), nullptr});
}

void Registry::AddHistogram(std::string name, MetricLabels labels,
                            HistogramSource source) {
  metrics_.push_back(Metric{std::move(name), std::move(labels),
                            MetricKind::kHistogram, nullptr,
                            std::move(source)});
}

}  // namespace hat::obs
