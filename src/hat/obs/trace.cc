#include "hat/obs/trace.h"

namespace hat::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kTxn: return "txn";
    case SpanKind::kCommit: return "commit";
    case SpanKind::kBatchWait: return "batch_wait";
    case SpanKind::kRpcFlight: return "rpc_flight";
    case SpanKind::kQueueWait: return "queue_wait";
    case SpanKind::kExecute: return "execute";
    case SpanKind::kWalCommit: return "wal_commit";
    case SpanKind::kMavAckWait: return "mav_ack_wait";
    case SpanKind::kAeApply: return "ae_apply";
    case SpanKind::kCheckpoint: return "checkpoint";
    case SpanKind::kCutover: return "cutover";
  }
  return "?";
}

Tracer::Tracer(Options options) : options_(options) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  if (options_.sample_every == 0) options_.sample_every = 1;
}

void Tracer::Record(const Span& span) {
  if (!enabled_) return;
  if (rings_.size() <= span.node) rings_.resize(span.node + 1);
  Ring& ring = rings_[span.node];
  if (ring.spans.size() < options_.ring_capacity) {
    ring.spans.push_back(span);
    return;
  }
  // Ring full: overwrite the oldest slot.
  ring.spans[ring.head] = span;
  ring.head = (ring.head + 1) % ring.spans.size();
  ring.full = true;
  dropped_++;
}

std::vector<Span> Tracer::Spans() const {
  std::vector<Span> out;
  out.reserve(span_count());
  for (const Ring& ring : rings_) {
    if (!ring.full) {
      out.insert(out.end(), ring.spans.begin(), ring.spans.end());
      continue;
    }
    // Oldest-first: [head, end) then [0, head).
    out.insert(out.end(), ring.spans.begin() + static_cast<long>(ring.head),
               ring.spans.end());
    out.insert(out.end(), ring.spans.begin(),
               ring.spans.begin() + static_cast<long>(ring.head));
  }
  return out;
}

size_t Tracer::span_count() const {
  size_t n = 0;
  for (const Ring& ring : rings_) n += ring.spans.size();
  return n;
}

}  // namespace hat::obs
