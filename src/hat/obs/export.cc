#include "hat/obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <set>
#include <utility>

namespace hat::obs {

namespace {

/// Escapes a string for inclusion in a JSON string literal.
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  return out;
}

bool IsInstant(const Span& s) {
  return s.kind == SpanKind::kCheckpoint || s.kind == SpanKind::kCutover;
}

int32_t TrackOf(const Span& s) {
  if (s.lane >= 0) return s.lane;
  if (s.kind == SpanKind::kRpcFlight) return kNetTrack;
  return kClientTrack;
}

void EmitSpanEvent(FILE* out, const Span& s, int32_t tid, bool* first) {
  std::fprintf(out, "%s\n", *first ? "" : ",");
  *first = false;
  if (IsInstant(s)) {
    std::fprintf(out,
                 "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"p\",\"ts\":%" PRIu64
                 ",\"pid\":%u,\"tid\":%d,\"args\":{\"arg\":%" PRIu64 "}}",
                 SpanKindName(s.kind), s.start_us, s.node, tid, s.arg);
    return;
  }
  std::fprintf(out,
               "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%" PRIu64
               ",\"dur\":%" PRIu64 ",\"pid\":%u,\"tid\":%d,"
               "\"args\":{\"trace\":%" PRIu64 ",\"span\":%" PRIu64
               ",\"parent\":%" PRIu64 ",\"arg\":%" PRIu64 "}}",
               SpanKindName(s.kind), s.start_us,
               s.end_us >= s.start_us ? s.end_us - s.start_us : 0, s.node,
               tid, s.trace_id, s.span_id, s.parent_id, s.arg);
}

void EmitMeta(FILE* out, const char* what, uint32_t pid, int32_t tid,
              const std::string& name, bool* first) {
  std::fprintf(out, "%s\n", *first ? "" : ",");
  *first = false;
  if (tid < 0) {
    std::fprintf(out,
                 "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%u,"
                 "\"args\":{\"name\":\"%s\"}}",
                 what, pid, JsonEscape(name).c_str());
  } else {
    std::fprintf(out,
                 "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%u,\"tid\":%d,"
                 "\"args\":{\"name\":\"%s\"}}",
                 what, pid, tid, JsonEscape(name).c_str());
  }
}

std::string TrackName(int32_t tid) {
  if (tid == kNetTrack) return "net";
  if (tid >= kCoreTrackBase) {
    return "core " + std::to_string(tid - kCoreTrackBase);
  }
  if (tid == kClientTrack) return "ops";
  return "lane " + std::to_string(tid);
}

}  // namespace

bool WriteChromeTrace(const std::string& path, const std::vector<Span>& spans,
                      const ChromeTraceOptions& options,
                      const std::vector<Span>& extra) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  std::fprintf(out, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  std::set<std::pair<uint32_t, int32_t>> tracks;
  auto emit = [&](const Span& s) {
    int32_t tid = TrackOf(s);
    tracks.insert({s.node, tid});
    EmitSpanEvent(out, s, tid, &first);
    // Execute spans additionally render on the core's own track, so the
    // per-core view of the server shows what each core ran.
    if (s.kind == SpanKind::kExecute && s.core >= 0) {
      int32_t core_tid = kCoreTrackBase + s.core;
      tracks.insert({s.node, core_tid});
      EmitSpanEvent(out, s, core_tid, &first);
    }
  };
  for (const Span& s : spans) emit(s);
  for (const Span& s : extra) emit(s);
  // Track naming metadata: one process per node, one named thread per track.
  std::set<uint32_t> pids;
  for (const auto& [pid, tid] : tracks) pids.insert(pid);
  for (uint32_t pid : pids) {
    auto it = options.process_names.find(pid);
    std::string name =
        it != options.process_names.end() ? it->second
                                          : "node " + std::to_string(pid);
    EmitMeta(out, "process_name", pid, -1, name, &first);
  }
  for (const auto& [pid, tid] : tracks) {
    EmitMeta(out, "thread_name", pid, tid, TrackName(tid), &first);
  }
  std::fprintf(out, "\n]}\n");
  std::fclose(out);
  return true;
}

bool WriteMetricsJson(const std::string& path, const Sampler& sampler) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  std::fprintf(out, "{\n  \"period_us\": %" PRIu64 ",\n  \"t_us\": [",
               static_cast<uint64_t>(sampler.period()));
  const auto& times = sampler.times();
  for (size_t i = 0; i < times.size(); i++) {
    std::fprintf(out, "%s%" PRIu64, i ? ", " : "", times[i]);
  }
  std::fprintf(out, "],\n  \"series\": [");
  const auto& metrics = sampler.registry().metrics();
  const auto& series = sampler.series();
  bool first = true;
  for (size_t m = 0; m < metrics.size() && m < series.size(); m++) {
    const Registry::Metric& metric = metrics[m];
    std::fprintf(out, "%s\n    {\"name\": \"%s\", \"server\": %d, "
                 "\"lane\": %d, \"family\": \"%s\", \"kind\": \"%s\", "
                 "\"values\": [",
                 first ? "" : ",", JsonEscape(metric.name).c_str(),
                 metric.labels.server, metric.labels.lane,
                 JsonEscape(metric.labels.family).c_str(),
                 MetricKindName(metric.kind));
    first = false;
    for (size_t i = 0; i < series[m].size(); i++) {
      std::fprintf(out, "%s%g", i ? ", " : "", series[m][i]);
    }
    std::fprintf(out, "]}");
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  return true;
}

}  // namespace hat::obs
