// obs::Tracer — sim-clock distributed tracing for the simulated deployment.
//
// A sampled transaction carries a TraceContext{trace_id, span_id} on every
// envelope it causes (stamped into the wire format as an optional 16-byte
// block behind a codec flag bit — zero wire bytes when tracing is off), so
// one transaction yields a span tree spanning client envelope batching, RPC
// flight, shard-lane queue wait, core execution, WAL group commit, MAV ack
// fan-in, and anti-entropy propagation to each replica — all stamped with
// *simulation* timestamps, so a trace is a deterministic artifact of the
// seed, not of wall-clock noise.
//
// Spans record into per-node ring buffers (bounded memory; the newest spans
// win). Every instrumentation site is guarded by the HAT_OBS_SPAN macro:
// with tracing compiled in but disabled the cost is a null/enabled branch;
// compiling with -DHAT_OBS_DISABLE_TRACING removes the sites entirely.
// Recording itself performs no simulation events and consumes no RNG, so
// enabling tracing cannot perturb the simulated execution.

#ifndef HAT_OBS_TRACE_H_
#define HAT_OBS_TRACE_H_

#include <cstdint>
#include <vector>

#include "hat/obs/trace_context.h"
#include "hat/sim/simulation.h"

namespace hat::obs {

/// Span taxonomy (see README "Observability" for the full table).
enum class SpanKind : uint8_t {
  kTxn = 0,         ///< client: whole transaction (root span)
  kCommit = 1,      ///< client: commit phase (Commit() -> outcome)
  kBatchWait = 2,   ///< client: op waiting in the envelope batcher
  kRpcFlight = 3,   ///< network: one envelope's one-way flight
  kQueueWait = 4,   ///< server: work unit waiting for its lane + a core
  kExecute = 5,     ///< server: work unit in service (lane x core)
  kWalCommit = 6,   ///< server: WAL sync / group commit window
  kMavAckWait = 7,  ///< server: MAV install -> promotion (ack fan-in)
  kAeApply = 8,     ///< server: anti-entropy batch applied at a replica
  kCheckpoint = 9,  ///< instant: durable checkpoint taken
  kCutover = 10,    ///< instant: migration placement cutover
};

const char* SpanKindName(SpanKind kind);

/// One recorded interval (or instant, when start_us == end_us). trace_id 0
/// marks an untraced timeline event (checkpoint/cutover instants).
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  SpanKind kind = SpanKind::kTxn;
  uint32_t node = 0;   ///< recording node (server or client NodeId)
  int32_t lane = -1;   ///< executor lane, or -1 when not lane work
  int32_t core = -1;   ///< executor core, or -1 when not core work
  sim::SimTime start_us = 0;
  sim::SimTime end_us = 0;
  uint64_t arg = 0;    ///< kind-specific (record count, peer id, outcome...)
};

class Tracer {
 public:
  struct Options {
    /// Span capacity of each node's ring buffer (newest spans retained).
    size_t ring_capacity = 1 << 15;
    /// Trace every Nth transaction per client (1 = every transaction).
    /// Counter-based, not randomized: sampling consumes no RNG.
    uint64_t sample_every = 1;
  };

  Tracer() : Tracer(Options()) {}
  explicit Tracer(Options options);

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Deterministic transaction sampling: true for every sample_every-th
  /// call (the first call always samples).
  bool ShouldSampleTxn() {
    return enabled_ && (txn_counter_++ % options_.sample_every) == 0;
  }

  uint64_t NewTraceId() { return next_trace_id_++; }
  uint64_t NewSpanId() { return next_span_id_++; }
  /// A child context within `parent`'s trace (fresh span id).
  TraceContext ChildOf(const TraceContext& parent) {
    return TraceContext{parent.trace_id, NewSpanId()};
  }

  /// Records one span into `span.node`'s ring buffer. Callers should guard
  /// with HAT_OBS_SPAN (or check enabled()) — Record itself also no-ops
  /// when disabled so a stale pointer path stays safe.
  void Record(const Span& span);

  /// All retained spans, oldest-first per node, nodes in id order.
  std::vector<Span> Spans() const;
  /// Spans dropped to ring-buffer bounds (oldest-evicted count).
  uint64_t dropped() const { return dropped_; }
  size_t span_count() const;

 private:
  struct Ring {
    std::vector<Span> spans;  // capacity-bounded
    size_t head = 0;          // next write position once full
    bool full = false;
  };

  Options options_;
  bool enabled_ = false;
  uint64_t next_trace_id_ = 1;
  uint64_t next_span_id_ = 1;
  uint64_t txn_counter_ = 0;
  uint64_t dropped_ = 0;
  std::vector<Ring> rings_;  // indexed by node id, grown lazily
};

}  // namespace hat::obs

/// Instrumentation-site guard: a null/enabled branch when tracing is off,
/// nothing at all under -DHAT_OBS_DISABLE_TRACING.
#ifndef HAT_OBS_DISABLE_TRACING
#define HAT_OBS_TRACING_COMPILED 1
#define HAT_OBS_SPAN(tracer, ...)                            \
  do {                                                       \
    ::hat::obs::Tracer* hat_obs_t_ = (tracer);               \
    if (hat_obs_t_ != nullptr && hat_obs_t_->enabled()) {    \
      hat_obs_t_->Record(__VA_ARGS__);                       \
    }                                                        \
  } while (0)
#else
#define HAT_OBS_TRACING_COMPILED 0
#define HAT_OBS_SPAN(tracer, ...) \
  do {                            \
  } while (0)
#endif

#endif  // HAT_OBS_TRACE_H_
