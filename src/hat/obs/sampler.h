// obs::Sampler — sim-clock-driven registry snapshots into an in-memory
// time series.
//
// Every `period` of simulated time the sampler reads each registered metric:
// counters become per-interval deltas (rate = delta / period), gauges are
// stored raw, and histogram metrics become the *windowed* p95 — the p95 of
// only the observations recorded during the interval, computed by
// subtracting consecutive cumulative bucket snapshots
// (Histogram::DeltaSince). The result is the time-resolved view the
// end-of-run aggregates cannot give: per-lane utilization over time, queue
// depth over time, queue-wait p95 over time.
//
// Start() schedules simulation events, so a sampling run is NOT
// event-identical to an unsampled one — benches only start the sampler when
// HAT_METRICS_OUT asks for it, and the figure-identity guarantee applies to
// the default (unsampled) configuration.

#ifndef HAT_OBS_SAMPLER_H_
#define HAT_OBS_SAMPLER_H_

#include <vector>

#include "hat/common/histogram.h"
#include "hat/obs/registry.h"
#include "hat/sim/simulation.h"

namespace hat::obs {

class Sampler {
 public:
  struct Options {
    /// Snapshot cadence in simulated time.
    sim::Duration period = 10 * sim::kMillisecond;
    /// Stop growing the series after this many samples (memory bound).
    size_t max_samples = 1 << 16;
  };

  Sampler(sim::Simulation& sim, const Registry& registry, Options options);

  /// Schedules the repeating sample tick. Call at most once. Metrics
  /// registered after Start() join at the next tick (their series rows are
  /// zero-backfilled for the ticks they missed, keeping every row parallel
  /// to times()).
  void Start();
  void Stop() { stopped_ = true; }

  sim::Duration period() const { return options_.period; }
  /// Sample timestamps (one per tick), and per-metric series parallel to
  /// Registry::metrics() — series()[m][i] is metric m at times()[i].
  const std::vector<sim::SimTime>& times() const { return times_; }
  const std::vector<std::vector<double>>& series() const { return series_; }
  const Registry& registry() const { return registry_; }

 private:
  void Tick();

  sim::Simulation& sim_;
  const Registry& registry_;
  Options options_;
  bool started_ = false;
  bool stopped_ = false;
  std::vector<sim::SimTime> times_;
  std::vector<std::vector<double>> series_;
  std::vector<double> prev_value_;      // counters: last cumulative reading
  std::vector<Histogram> prev_hist_;    // histograms: last cumulative snapshot
};

}  // namespace hat::obs

#endif  // HAT_OBS_SAMPLER_H_
