#include "hat/obs/sampler.h"

namespace hat::obs {

Sampler::Sampler(sim::Simulation& sim, const Registry& registry,
                 Options options)
    : sim_(sim), registry_(registry), options_(options) {
  if (options_.period == 0) options_.period = sim::kMillisecond;
}

void Sampler::Start() {
  if (started_) return;
  started_ = true;
  const size_t n = registry_.size();
  series_.assign(n, {});
  prev_value_.assign(n, 0);
  prev_hist_.assign(n, Histogram());
  // Baseline the cumulative metrics at start time so the first interval's
  // deltas cover [start, start + period), not [beginning of time, ...).
  for (size_t m = 0; m < n; m++) {
    const Registry::Metric& metric = registry_.metrics()[m];
    if (metric.kind == MetricKind::kCounter) {
      prev_value_[m] = metric.value();
    } else if (metric.kind == MetricKind::kHistogram) {
      prev_hist_[m] = metric.histogram();
    }
  }
  sim_.After(options_.period, [this]() { Tick(); });
}

void Sampler::Tick() {
  if (stopped_ || times_.size() >= options_.max_samples) return;
  // Metrics registered after Start() (e.g. clients added to a live
  // deployment): open a series row back-filled with zeros for the ticks
  // they missed, and baseline their cumulative state at this tick.
  if (registry_.size() > series_.size()) {
    size_t old = series_.size();
    series_.resize(registry_.size(),
                   std::vector<double>(times_.size(), 0.0));
    prev_value_.resize(registry_.size(), 0);
    prev_hist_.resize(registry_.size(), Histogram());
    for (size_t m = old; m < registry_.size(); m++) {
      const Registry::Metric& metric = registry_.metrics()[m];
      if (metric.kind == MetricKind::kCounter) {
        prev_value_[m] = metric.value();
      } else if (metric.kind == MetricKind::kHistogram) {
        prev_hist_[m] = metric.histogram();
      }
    }
  }
  times_.push_back(sim_.Now());
  for (size_t m = 0; m < registry_.size(); m++) {
    const Registry::Metric& metric = registry_.metrics()[m];
    double v = 0;
    switch (metric.kind) {
      case MetricKind::kCounter: {
        double now_v = metric.value();
        v = now_v - prev_value_[m];
        prev_value_[m] = now_v;
        break;
      }
      case MetricKind::kGauge:
        v = metric.value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& cum = metric.histogram();
        Histogram window = cum.DeltaSince(prev_hist_[m]);
        v = window.Percentile(0.95);
        prev_hist_[m] = cum;
        break;
      }
    }
    series_[m].push_back(v);
  }
  sim_.After(options_.period, [this]() { Tick(); });
}

}  // namespace hat::obs
