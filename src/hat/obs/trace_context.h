// TraceContext — the trace identity carried on a net::Envelope. Split out
// of obs/trace.h so the message/codec layer can carry trace contexts
// without depending on the tracer (or the simulation clock).

#ifndef HAT_OBS_TRACE_CONTEXT_H_
#define HAT_OBS_TRACE_CONTEXT_H_

#include <cstdint>

namespace hat::obs {

/// Trace identity carried on a net::Envelope. trace_id 0 = not traced (the
/// default; adds zero wire bytes).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  ///< the sender-side span this hop descends from
  bool active() const { return trace_id != 0; }
};

}  // namespace hat::obs

#endif  // HAT_OBS_TRACE_CONTEXT_H_
