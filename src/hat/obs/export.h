// obs exporters: Chrome trace-event JSON (Perfetto-loadable) and a metrics
// time-series JSON.
//
// The Chrome trace maps the simulation onto Perfetto's process/thread
// model: each node (server or client) is a process, and within a server
// process each executor lane is a thread track (queue-wait and execute
// spans land there), each core is a synthetic track at tid 1000+core (the
// same execute span, viewed by where it ran), RPC flights ride a "net"
// track at tid 900, and client-side spans (txn root, commit, batch wait)
// live on tid 0. Checkpoints and migration cutovers are instant events.
// Timestamps are simulation microseconds verbatim.

#ifndef HAT_OBS_EXPORT_H_
#define HAT_OBS_EXPORT_H_

#include <map>
#include <string>
#include <vector>

#include "hat/obs/sampler.h"
#include "hat/obs/trace.h"

namespace hat::obs {

/// Synthetic track ids for spans that are not lane work.
inline constexpr int32_t kClientTrack = 0;
inline constexpr int32_t kNetTrack = 900;
inline constexpr int32_t kCoreTrackBase = 1000;

struct ChromeTraceOptions {
  /// Process (node) display names; nodes absent here render as "node N".
  std::map<uint32_t, std::string> process_names;
};

/// Writes `spans` (+ `extra`, e.g. cutover instants synthesized by a bench)
/// as one Chrome trace-event JSON document. Returns false on IO failure.
bool WriteChromeTrace(const std::string& path, const std::vector<Span>& spans,
                      const ChromeTraceOptions& options = {},
                      const std::vector<Span>& extra = {});

/// Writes the sampler's time series as JSON:
/// {"period_us": P, "t_us": [...], "series": [{name, server, lane, family,
/// kind, values: [...]}]}. Counter series hold per-interval deltas, gauge
/// series raw values, histogram series the windowed p95. Returns false on
/// IO failure.
bool WriteMetricsJson(const std::string& path, const Sampler& sampler);

}  // namespace hat::obs

#endif  // HAT_OBS_EXPORT_H_
