// obs::Registry — typed named metrics with (server, lane, family) labels.
//
// The registry does not own any counters: every metric reads its current
// value through a Source callback at sample time, so the hot paths keep
// bumping their existing plain-struct stats fields at zero extra cost and
// the registry is pure read-side plumbing. Stats structs participate by
// exposing a VisitFields member-pointer list (one line per field); from it
//  * Registry::AddStats registers every scalar field as a counter and every
//    Histogram field as a histogram metric ("fields register themselves"),
//  * MergeStats implements the generic field-for-field aggregation that
//    Deployment::TotalServerStats previously hand-rolled — a field present
//    in the struct but missing from VisitFields is the only way to get the
//    merge wrong, and the struct-size static_asserts next to each
//    VisitFields turn that omission into a compile error.

#ifndef HAT_OBS_REGISTRY_H_
#define HAT_OBS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "hat/common/histogram.h"

namespace hat::obs {

/// Metric labels. -1 = not applicable.
struct MetricLabels {
  int32_t server = -1;  ///< NodeId of the server/client the metric describes
  int32_t lane = -1;    ///< executor lane / logical shard
  std::string family;   ///< subsystem or message family ("ae", "client", ...)
};

enum class MetricKind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

const char* MetricKindName(MetricKind kind);

class Registry {
 public:
  /// Reads a metric's current value (called at each sampler tick).
  using Source = std::function<double()>;
  using HistogramSource = std::function<const Histogram&()>;

  struct Metric {
    std::string name;
    MetricLabels labels;
    MetricKind kind = MetricKind::kCounter;
    Source value;               // counters and gauges
    HistogramSource histogram;  // histogram metrics
  };

  /// Monotone cumulative count; the sampler stores per-interval deltas.
  void AddCounter(std::string name, MetricLabels labels, Source source);
  /// Point-in-time value; the sampler stores it raw.
  void AddGauge(std::string name, MetricLabels labels, Source source);
  /// Cumulative histogram; the sampler stores the windowed p95 (delta of
  /// bucket counts between consecutive snapshots).
  void AddHistogram(std::string name, MetricLabels labels,
                    HistogramSource source);

  /// Registers every field of a VisitFields-bearing stats struct: scalar
  /// fields become counters named `prefix` + field name, Histogram fields
  /// become histogram metrics. Vector fields are skipped (register them
  /// explicitly per lane, where the lane label is known). `get` is invoked
  /// at every sample so stats assembled on demand (ReplicaServer::stats())
  /// stay fresh.
  template <typename Stats>
  void AddStats(const std::string& prefix, MetricLabels labels,
                std::function<const Stats&()> get) {
    Stats::VisitFields([&](const char* name, auto field) {
      using F = std::decay_t<decltype(std::declval<const Stats&>().*field)>;
      if constexpr (std::is_arithmetic_v<F>) {
        AddCounter(prefix + name, labels, [get, field]() {
          return static_cast<double>(get().*field);
        });
      } else if constexpr (std::is_same_v<F, Histogram>) {
        AddHistogram(prefix + name, labels,
                     [get, field]() -> const Histogram& {
                       return get().*field;
                     });
      }
      // vectors: per-lane registration is the caller's job
    });
  }

  const std::vector<Metric>& metrics() const { return metrics_; }
  size_t size() const { return metrics_.size(); }

 private:
  std::vector<Metric> metrics_;
};

// --------------------------------------------------------------------------
// Generic stats merging over VisitFields
// --------------------------------------------------------------------------

namespace detail {
inline void MergeField(uint64_t& dst, const uint64_t& src) { dst += src; }
inline void MergeField(double& dst, const double& src) { dst += src; }
inline void MergeField(Histogram& dst, const Histogram& src) {
  dst.Merge(src);
}
template <typename T>
void MergeField(std::vector<T>& dst, const std::vector<T>& src) {
  if (dst.size() < src.size()) dst.resize(src.size(), T{});
  for (size_t i = 0; i < src.size(); i++) dst[i] += src[i];
}
}  // namespace detail

/// Field-for-field sum of `src` into `dst`, driven by Stats::VisitFields:
/// scalars add, vectors add element-wise (growing dst), histograms merge.
template <typename Stats>
void MergeStats(Stats& dst, const Stats& src) {
  Stats::VisitFields([&](const char*, auto field) {
    detail::MergeField(dst.*field, src.*field);
  });
}

/// Number of fields Stats::VisitFields enumerates (test hook).
template <typename Stats>
size_t CountStatsFields() {
  size_t n = 0;
  Stats::VisitFields([&](const char*, auto) { n++; });
  return n;
}

}  // namespace hat::obs

#endif  // HAT_OBS_REGISTRY_H_
