// MavCoordinator: the Appendix B Monotonic Atomic View machinery of one
// replica — the pending/good two-set installation protocol.
//
// Writes of a MAV transaction are held in `pending` (indexed by key for
// required-bound reads and by transaction timestamp for promotion), sibling
// replicas exchange NOTIFY acks, and once every replica of every sibling key
// has acked — pending-stable — the transaction's writes are revealed into
// the good set atomically per replica. A renotify timer re-broadcasts acks
// for still-pending transactions so partitions only delay, never prevent,
// promotion.
//
// The coordinator owns no network or disk: it reaches them through narrow
// callbacks (send a message, gossip a write, GC a key's versions) plus
// references to the shared ShardedStore and PersistenceManager, so it can
// be constructed and driven directly by unit tests. All of its good-set
// bookkeeping (duplicate suppression, pending invalidation, promotion) is
// per key and therefore shard-local: it consults only the owning shard's
// latest-timestamp index, never a cross-shard structure.

#ifndef HAT_SERVER_MAV_COORDINATOR_H_
#define HAT_SERVER_MAV_COORDINATOR_H_

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "hat/net/message.h"
#include "hat/obs/trace.h"
#include "hat/server/partitioner.h"
#include "hat/server/persistence_manager.h"
#include "hat/sim/simulation.h"
#include "hat/version/sharded_store.h"

namespace hat::server {

struct MavStats {
  uint64_t notifies = 0;
  uint64_t promotions = 0;
  uint64_t stale_pending_dropped = 0;
  uint64_t gets_from_pending = 0;
};

class MavCoordinator {
 public:
  struct Options {
    /// Drop pending writes older than the good version for their key
    /// (the "pending invalidation" optimization of Appendix B).
    bool gc_stale_pending = true;
    /// Re-broadcast pending-stable acks for still-pending transactions.
    sim::Duration renotify_interval = 500 * sim::kMillisecond;
  };
  /// Delivers a one-way message (NotifyRequest) to a peer replica. The
  /// trace context (inactive unless the triggering install was traced)
  /// stamps the outgoing envelope so ack fan-out stays on the span tree.
  using SendFn =
      std::function<void(net::NodeId, net::Message, obs::TraceContext)>;
  /// Hands a freshly accepted pending write to anti-entropy. `origin` is the
  /// peer the write arrived from (net::kNoPeer for local client writes), so
  /// re-gossip can exclude it instead of echoing the write straight back.
  using GossipFn = std::function<void(const WriteRecord&, net::NodeId origin,
                                      obs::TraceContext)>;
  /// Applies the owner's version-GC policy after a good-set insert.
  using GcFn = std::function<void(const Key&)>;

  MavCoordinator(sim::Simulation& sim, net::NodeId id,
                 const Partitioner* partitioner, version::ShardedStore& good,
                 PersistenceManager& persistence, Options options, SendFn send,
                 GossipFn gossip, GcFn gc_versions);

  /// Schedules the renotify timer (staggered by node id). Call once.
  void Start();

  /// Installs one MAV write: pending bookkeeping, ack broadcast, promotion
  /// check. `gossip` hands newly accepted writes to the GossipFn; every
  /// current caller (client puts, anti-entropy, recovery replay) passes true
  /// so re-entering writes keep propagating — pass false only from a path
  /// that provably must not re-enter anti-entropy. `origin` is forwarded to
  /// the GossipFn: the peer the write came from (net::kNoPeer otherwise).
  /// `trace`, when active, attaches the install to a sampled transaction:
  /// the txn's notify fan-out carries it and promotion records a
  /// kMavAckWait span covering install -> pending-stable.
  void Install(const WriteRecord& w, bool gossip,
               net::NodeId origin = net::kNoPeer,
               obs::TraceContext trace = {});

  /// Processes a NOTIFY ack from `req.sender` (Appendix B).
  void HandleNotify(const net::NotifyRequest& req);

  /// Exact pending version (key, ts), or nullptr. Counts a pending-read hit.
  const WriteRecord* PendingVersion(const Key& key, const Timestamp& ts);

  /// Number of pending writes held (promotion-indexed count).
  size_t PendingWriteCount() const;

  /// Drops all volatile MAV state (crash). Stats survive.
  void Clear();

  const MavStats& stats() const { return stats_; }

  /// Observability: promotion spans record under this tracer. nullptr off.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  /// Servers that must acknowledge a transaction before promotion: every
  /// replica of every sibling key.
  std::set<net::NodeId> AckSetFor(const std::vector<Key>& sibs) const;
  /// Sibling keys of `sibs` that this server replicates.
  std::vector<Key> LocalKeysOf(const std::vector<Key>& sibs) const;
  void MaybeAck(const Timestamp& ts);
  void MaybePromote(const Timestamp& ts);
  void RenotifyTick();

  sim::Simulation& sim_;
  net::NodeId id_;
  const Partitioner* partitioner_;
  version::ShardedStore& good_;
  PersistenceManager& persistence_;
  Options options_;
  SendFn send_;
  GossipFn gossip_;
  GcFn gc_versions_;
  MavStats stats_;
  obs::Tracer* tracer_ = nullptr;

  // Pending, indexed two ways: by key (for required-bound reads) and by
  // transaction timestamp (for promotion).
  std::map<Key, std::map<Timestamp, WriteRecord>> pending_by_key_;
  struct PendingTxn {
    std::vector<WriteRecord> writes;  // this server's sibling writes
    std::vector<Key> sibs;            // full txn key set
    std::set<net::NodeId> acks;       // distinct ack senders seen
    bool acked_by_self = false;       // we broadcast our ack already
    obs::TraceContext trace;          // set iff a traced install seeded it
    sim::SimTime installed_us = 0;    // first install time (ack-wait span)
  };
  std::map<Timestamp, PendingTxn> pending_txns_;
  // Acks that arrived before the first write of their transaction.
  std::map<Timestamp, std::set<net::NodeId>> early_acks_;
  // Transactions this server already promoted (bounded FIFO). A late ack
  // for a promoted transaction is answered with our own ack so replicas
  // that received the writes after a partition heal can still promote.
  std::set<Timestamp> promoted_;
  std::deque<Timestamp> promoted_fifo_;
};

}  // namespace hat::server

#endif  // HAT_SERVER_MAV_COORDINATOR_H_
