#include "hat/server/anti_entropy_engine.h"

#include <algorithm>
#include <set>
#include <utility>

namespace hat::server {

namespace {
constexpr size_t kAppliedBatchMemory = 4096;
constexpr sim::Duration kMaxBackoff = 8 * sim::kSecond;

using version::ShardedStore;
using version::VersionedStore;

/// Recomputes a peer's per-(shard, bucket) hashes from its flat per-key
/// digest. Matches VersionedStore's incremental maintenance by construction
/// (same entry hash, same XOR aggregation), so bucket-equal regions can be
/// skipped. Shard/bucket membership is pure key hashing, so our store's
/// topology buckets the peer's entries identically. Entries for shards we
/// do not host (the peer raced a live migration) are skipped — only their
/// owner can repair them.
std::vector<std::vector<uint64_t>> BucketHashesOfDigest(
    const ShardedStore& ours,
    const std::vector<std::pair<Key, Timestamp>>& latest) {
  std::vector<std::vector<uint64_t>> hashes(ours.shard_count());
  for (size_t s = 0; s < ours.shard_count(); s++) {
    hashes[s].assign(ours.shard(s).digest_buckets(), 0);
  }
  for (const auto& [key, ts] : latest) {
    auto s = ours.TrySlotOfKey(key);
    if (!s) continue;
    hashes[*s][ours.shard(*s).BucketOf(key)] ^=
        VersionedStore::DigestEntryHash(key, ts);
  }
  return hashes;
}
}  // namespace

AntiEntropyEngine::AntiEntropyEngine(sim::Simulation& sim, net::NodeId id,
                                     const Partitioner* partitioner,
                                     const version::ShardedStore& good,
                                     Options options, SendFn send,
                                     InstallFn install)
    : sim_(sim),
      id_(id),
      partitioner_(partitioner),
      good_(good),
      options_(options),
      send_(std::move(send)),
      install_(std::move(install)),
      rng_(Fnv1a64(static_cast<uint64_t>(id)) ^ 0x5e53a11e) {}

void AntiEntropyEngine::Start() {
  // Stagger recurring timers per server so deterministic runs do not
  // synchronize every server's background work on the same tick.
  if (options_.push_enabled) {
    sim::Duration offset = (id_ * 97) % options_.flush_interval + 1;
    sim_.After(offset, [this]() { FlushTick(); });
  }
  if (options_.digest_sync_interval > 0) {
    sim::Duration doffset = (id_ * 173) % options_.digest_sync_interval + 1;
    sim_.After(doffset, [this]() { DigestSyncTick(); });
  }
}

void AntiEntropyEngine::Enqueue(const WriteRecord& w, net::PutMode mode,
                                net::NodeId except, obs::TraceContext trace) {
  if (!options_.push_enabled) return;
  // Shard-lane batching splits each peer's outbox by the key's logical
  // shard so every flushed batch is shard-homogeneous (and tagged); with it
  // off, every key lands in the peer's single (peer, kNoShardTag) outbox —
  // the legacy topology, byte- and order-identical on the wire.
  uint32_t tag = options_.shard_lane_batching ? good_.LogicalShardOfKey(w.key)
                                              : net::kNoShardTag;
  for (net::NodeId peer : partitioner_->ReplicasOf(w.key)) {
    if (peer == id_ || peer == except) continue;
    outbox_[OutboxKey{peer, tag}].push_back(OutboxItem{w, mode, trace});
  }
}

void AntiEntropyEngine::FlushTick() {
  for (auto& [key, queue] : outbox_) {
    const auto& [peer, tag] = key;
    while (!queue.empty()) {
      net::AntiEntropyBatch batch;
      batch.batch_id = NextBatchId();
      batch.mode = queue.front().mode;
      batch.shard = tag;
      // The batch inherits the first traced item's context: one traced
      // write is enough to pull the whole batch flight into its span tree.
      obs::TraceContext trace;
      while (!queue.empty() && queue.front().mode == batch.mode &&
             batch.writes.size() < options_.batch_max) {
        if (!trace.active() && queue.front().trace.active()) {
          trace = queue.front().trace;
        }
        batch.writes.push_back(std::move(queue.front().write));
        queue.pop_front();
      }
      stats_.records_out += batch.writes.size();
      stats_.batches_out++;
      inflight_.emplace(batch.batch_id,
                        InFlightBatch{peer, batch, sim_.Now(),
                                      options_.retry_interval});
      send_(peer, std::move(batch), trace);
    }
  }
  // Retransmit stragglers (lost to partitions) with exponential backoff.
  // The retransmitted batch is the stored original — same id, same shard
  // tag — so a retry lands on the same executor lane as the first attempt.
  for (auto& [batch_id, flight] : inflight_) {
    if (sim_.Now() - flight.sent_at >= flight.backoff) {
      flight.sent_at = sim_.Now();
      flight.backoff = std::min(flight.backoff * 2, kMaxBackoff);
      stats_.retransmits++;
      send_(flight.peer, flight.batch, {});
    }
  }
  sim_.After(options_.flush_interval, [this]() { FlushTick(); });
}

void AntiEntropyEngine::HandleBatch(const net::AntiEntropyBatch& batch,
                                    net::NodeId from, obs::TraceContext trace) {
  stats_.batches_in++;
  send_(from, net::AntiEntropyAck{batch.batch_id}, {});
  if (applied_batches_.count(batch.batch_id) ||
      applied_batches_prev_.count(batch.batch_id)) {
    stats_.dupes_suppressed++;
    return;  // retransmit dupe
  }
  applied_batches_.insert(batch.batch_id);
  if (applied_batches_.size() >= kAppliedBatchMemory) {
    applied_batches_prev_ = std::move(applied_batches_);
    applied_batches_.clear();
    stats_.dedupe_rotations++;
  }
  for (const auto& w : batch.writes) {
    stats_.records_in++;
    install_(w, batch.mode, from, trace);
  }
}

std::vector<net::NodeId> AntiEntropyEngine::PeerReplicas() const {
  // Replicas share shards key-wise. With untouched cluster-per-copy
  // sharding every shard's peer set is the same, but once a shard migrated,
  // its replicas in other clusters differ from its host's other shards' —
  // so the peer pool is the union of each hosted shard's replica set (one
  // stored key per shard determines it). Ticks still pick one random peer;
  // shards it does not replicate simply drop out of that round's exchange.
  std::set<net::NodeId> peers;
  for (size_t s = 0; s < good_.shard_count(); s++) {
    if (const WriteRecord* w = good_.shard(s).AnyRecord()) {
      for (net::NodeId r : partitioner_->ReplicasOf(w->key)) {
        if (r != id_) peers.insert(r);
      }
    }
  }
  return std::vector<net::NodeId>(peers.begin(), peers.end());
}

void AntiEntropyEngine::DigestSyncTick() {
  auto peers = PeerReplicas();
  if (!peers.empty()) {
    net::NodeId peer = peers[rng_.NextBelow(peers.size())];
    stats_.digest_ticks++;
    if (options_.bucketed_digest) {
      // Round 0: one roll-up hash per shard. A fully in-sync peer answers
      // with silence; a diff confined to one shard pulls bucket hashes for
      // that shard only. Explicit-placement stores tag each hash with its
      // logical shard id so peers whose slot layouts diverged through live
      // migration still compare the right shards (and detached slots drop
      // out); implicit stores keep the untagged legacy format.
      net::ShardDigest digest;
      if (good_.explicit_placement()) {
        for (size_t s = 0; s < good_.shard_count(); s++) {
          uint32_t tag = good_.LogicalTagOfSlot(s);
          if (tag == version::ShardedStore::kNoShard) continue;
          digest.shards.push_back(tag);
          digest.hashes.push_back(good_.ShardTopHash(s));
        }
      } else {
        digest.hashes = good_.ShardHashes();
      }
      SendDigestMessage(peer, std::move(digest), /*entries=*/0);
    } else {
      net::DigestRequest digest;
      digest.latest = good_.Digest();
      SendDigestMessage(peer, std::move(digest), good_.KeyCount());
    }
  }
  sim_.After(options_.digest_sync_interval, [this]() { DigestSyncTick(); });
}

void AntiEntropyEngine::SendDigestMessage(net::NodeId to, net::Message msg,
                                          size_t entries) {
  stats_.digest_entries_out += entries;
  stats_.digest_bytes_out += net::WireBytes(msg);
  send_(to, std::move(msg), {});
}

void AntiEntropyEngine::HandleShardDigest(const net::ShardDigest& digest,
                                          net::NodeId from) {
  // Round 0 -> round 1: answer with our bucket hashes for each shard whose
  // roll-up summary disagrees; matching shards drop out of the protocol
  // before any of their bucket hashes are even serialized. Shards the
  // sender advertises but we do not host (live migration moved them) are
  // skipped — their owner repairs them.
  for (size_t i = 0; i < digest.hashes.size(); i++) {
    uint32_t tag = digest.shards.empty() ? static_cast<uint32_t>(i)
                                         : digest.shards[i];
    auto slot = good_.SlotOfLogical(tag);
    if (!slot) continue;
    if (digest.hashes[i] == good_.ShardTopHash(*slot)) continue;
    net::BucketDigest bd;
    bd.shard = tag;
    bd.hashes = good_.shard(*slot).BucketHashes();
    SendDigestMessage(from, std::move(bd), /*entries=*/0);
  }
}

void AntiEntropyEngine::HandleBucketDigest(const net::BucketDigest& digest,
                                           net::NodeId from) {
  // Round 1 -> round 2: advertise our per-key digests for the buckets whose
  // hashes disagree (either side missing or stale there); matching buckets
  // are in sync and drop out of the protocol entirely.
  auto slot = good_.SlotOfLogical(digest.shard);
  if (!slot) return;  // not hosted here (topology mismatch or migration)
  const VersionedStore& store = good_.shard(*slot);
  net::DigestRequest scoped;
  scoped.shard = digest.shard;
  size_t n = std::min(digest.hashes.size(), store.digest_buckets());
  for (size_t b = 0; b < n; b++) {
    if (digest.hashes[b] == store.BucketHash(b)) continue;
    scoped.buckets.push_back(static_cast<uint32_t>(b));
    store.ForEachLatestInBucket(b, [&](const Key& key, const Timestamp& ts) {
      scoped.latest.emplace_back(key, ts);
    });
  }
  if (scoped.buckets.empty()) return;  // shard fully in sync
  size_t entries = scoped.latest.size();
  SendDigestMessage(from, std::move(scoped), entries);
}

void AntiEntropyEngine::BackfillBucket(
    size_t shard, size_t bucket, const std::map<Key, Timestamp>& theirs,
    const std::function<void(const WriteRecord&)>& add) const {
  const VersionedStore& store = good_.shard(shard);
  store.ForEachLatestInBucket(
      bucket, [&](const Key& key, const Timestamp& ours) {
        auto it = theirs.find(key);
        if (it != theirs.end() && ours <= it->second) return;  // they have it
        Timestamp after = it == theirs.end() ? kInitialVersion : it->second;
        for (const WriteRecord& w : store.VersionsAfter(key, after)) add(w);
      });
}

void AntiEntropyEngine::HandleDigest(const net::DigestRequest& req,
                                     net::NodeId from) {
  // Send back every version the requester is missing, in bounded batches
  // (unacknowledged one-shot batches: the requester's next digest will
  // re-trigger anything lost). Work is confined to the digest's buckets:
  // (req.shard, req.buckets) for a scoped round-2 request; for a flat
  // digest, the requester's per-shard bucket hashes are recomputed from its
  // entries so in-sync buckets cost one comparison instead of a per-key
  // walk.
  const bool scoped = !req.buckets.empty();
  std::optional<size_t> scoped_slot =
      scoped ? good_.SlotOfLogical(req.shard) : std::optional<size_t>();
  if (scoped && !scoped_slot) return;  // not hosted (topology or migration)
  std::map<Key, Timestamp> theirs;
  for (const auto& [k, ts] : req.latest) theirs.emplace(k, ts);

  std::vector<std::pair<size_t, size_t>> mismatched;  // (slot, bucket)
  if (scoped) {
    for (uint32_t b : req.buckets) {
      if (b < good_.shard(*scoped_slot).digest_buckets()) {
        mismatched.emplace_back(*scoped_slot, b);
      }
    }
  } else {
    std::vector<std::vector<uint64_t>> their_hashes =
        BucketHashesOfDigest(good_, req.latest);
    for (size_t s = 0; s < good_.shard_count(); s++) {
      for (size_t b = 0; b < good_.shard(s).digest_buckets(); b++) {
        if (their_hashes[s][b] != good_.shard(s).BucketHash(b)) {
          mismatched.emplace_back(s, b);
        }
      }
    }
  }

  net::AntiEntropyBatch batch;
  batch.batch_id = NextBatchId();
  size_t batch_bytes = 0;
  auto flush = [this, from, &batch, &batch_bytes]() {
    if (batch.writes.empty()) return;
    stats_.records_out += batch.writes.size();
    stats_.batches_out++;
    uint32_t tag = batch.shard;
    send_(from, std::move(batch), {});
    batch = net::AntiEntropyBatch();
    batch.batch_id = NextBatchId();
    batch.shard = tag;
    batch_bytes = 0;
  };
  auto add = [this, &batch, &batch_bytes, &flush](const WriteRecord& w) {
    batch.writes.push_back(w);
    batch_bytes += net::WriteRecordWireBytes(w);
    if (batch.writes.size() >= options_.batch_max ||
        (options_.batch_max_bytes > 0 &&
         batch_bytes >= options_.batch_max_bytes)) {
      flush();
    }
  };
  // Repair batches stay shard-homogeneous too when shard-lane batching is
  // on: a scoped request already covers one shard; a flat walk flushes at
  // each slot boundary so each batch carries one shard's tag.
  if (options_.shard_lane_batching && scoped) batch.shard = req.shard;
  std::optional<size_t> tag_slot;
  for (const auto& [s, b] : mismatched) {
    if (options_.shard_lane_batching && !scoped && tag_slot != s) {
      flush();
      tag_slot = s;
      batch.shard = good_.LogicalTagOfSlot(s);
    }
    BackfillBucket(s, b, theirs, add);
  }
  flush();

  // Reverse direction: if the requester advertises data we lack, answer
  // with our own digest (one round only) so it pushes the difference back.
  // Only entries in mismatched buckets can differ, so only they are probed.
  if (req.reply_allowed) {
    // Flat-bitmap scope test: the requester's (often large) entry list is
    // probed once per entry, so the lookup must stay O(1).
    std::vector<std::vector<char>> in_scope(good_.shard_count());
    for (const auto& [s, b] : mismatched) {
      if (in_scope[s].empty()) {
        in_scope[s].assign(good_.shard(s).digest_buckets(), 0);
      }
      in_scope[s][b] = 1;
    }
    bool missing = false;
    for (const auto& [k, ts] : req.latest) {
      auto s = good_.TrySlotOfKey(k);
      if (!s || in_scope[*s].empty() ||
          !in_scope[*s][good_.shard(*s).BucketOf(k)]) {
        continue;
      }
      auto ours = good_.shard(*s).LatestTimestamp(k);
      if (!ours || *ours < ts) {
        missing = true;
        break;
      }
    }
    if (missing) {
      net::DigestRequest mine;
      mine.reply_allowed = false;
      if (scoped) {
        // Stay scoped: our entries for the same (shard, buckets).
        mine.shard = req.shard;
        mine.buckets = req.buckets;
        for (const auto& [s, b] : mismatched) {
          good_.shard(s).ForEachLatestInBucket(
              b, [&](const Key& key, const Timestamp& ts) {
                mine.latest.emplace_back(key, ts);
              });
        }
      } else {
        mine.latest = good_.Digest();
      }
      size_t entries = mine.latest.size();
      SendDigestMessage(from, std::move(mine), entries);
    }
  }
}

void AntiEntropyEngine::Clear() {
  outbox_.clear();
  inflight_.clear();
  applied_batches_.clear();
  applied_batches_prev_.clear();
}

}  // namespace hat::server
