#include "hat/server/anti_entropy_engine.h"

#include <algorithm>
#include <utility>

namespace hat::server {

namespace {
constexpr size_t kAppliedBatchMemory = 4096;
constexpr sim::Duration kMaxBackoff = 8 * sim::kSecond;
}  // namespace

AntiEntropyEngine::AntiEntropyEngine(sim::Simulation& sim, net::NodeId id,
                                     const Partitioner* partitioner,
                                     const version::VersionedStore& good,
                                     Options options, SendFn send,
                                     InstallFn install)
    : sim_(sim),
      id_(id),
      partitioner_(partitioner),
      good_(good),
      options_(options),
      send_(std::move(send)),
      install_(std::move(install)),
      rng_(Fnv1a64(static_cast<uint64_t>(id)) ^ 0x5e53a11e) {}

void AntiEntropyEngine::Start() {
  // Stagger recurring timers per server so deterministic runs do not
  // synchronize every server's background work on the same tick.
  sim::Duration offset = (id_ * 97) % options_.flush_interval + 1;
  sim_.After(offset, [this]() { FlushTick(); });
  if (options_.digest_sync_interval > 0) {
    sim::Duration doffset = (id_ * 173) % options_.digest_sync_interval + 1;
    sim_.After(doffset, [this]() { DigestSyncTick(); });
  }
}

void AntiEntropyEngine::Enqueue(const WriteRecord& w, net::PutMode mode,
                                net::NodeId except) {
  for (net::NodeId peer : partitioner_->ReplicasOf(w.key)) {
    if (peer == id_ || peer == except) continue;
    outbox_[peer].push_back(OutboxItem{w, mode});
  }
}

void AntiEntropyEngine::FlushTick() {
  for (auto& [peer, queue] : outbox_) {
    while (!queue.empty()) {
      net::AntiEntropyBatch batch;
      batch.batch_id = NextBatchId();
      batch.mode = queue.front().mode;
      while (!queue.empty() && queue.front().mode == batch.mode &&
             batch.writes.size() < options_.batch_max) {
        batch.writes.push_back(std::move(queue.front().write));
        queue.pop_front();
      }
      stats_.records_out += batch.writes.size();
      inflight_.emplace(batch.batch_id,
                        InFlightBatch{peer, batch, sim_.Now(),
                                      options_.retry_interval});
      send_(peer, std::move(batch));
    }
  }
  // Retransmit stragglers (lost to partitions) with exponential backoff.
  for (auto& [batch_id, flight] : inflight_) {
    if (sim_.Now() - flight.sent_at >= flight.backoff) {
      flight.sent_at = sim_.Now();
      flight.backoff = std::min(flight.backoff * 2, kMaxBackoff);
      send_(flight.peer, flight.batch);
    }
  }
  sim_.After(options_.flush_interval, [this]() { FlushTick(); });
}

void AntiEntropyEngine::HandleBatch(const net::AntiEntropyBatch& batch,
                                    net::NodeId from) {
  stats_.batches_in++;
  send_(from, net::AntiEntropyAck{batch.batch_id});
  if (applied_batches_.count(batch.batch_id)) return;  // retransmit dupe
  applied_batches_.insert(batch.batch_id);
  applied_batches_fifo_.push_back(batch.batch_id);
  if (applied_batches_fifo_.size() > kAppliedBatchMemory) {
    applied_batches_.erase(applied_batches_fifo_.front());
    applied_batches_fifo_.pop_front();
  }
  for (const auto& w : batch.writes) {
    stats_.records_in++;
    install_(w, batch.mode);
  }
}

std::vector<net::NodeId> AntiEntropyEngine::PeerReplicas() const {
  // Replicas share shards key-wise; with cluster-per-copy sharding, the
  // peers for every key this server holds are the same set, so any one
  // stored key determines it.
  std::set<net::NodeId> peers;
  if (const WriteRecord* w = good_.AnyRecord()) {
    for (net::NodeId r : partitioner_->ReplicasOf(w->key)) {
      if (r != id_) peers.insert(r);
    }
  }
  return std::vector<net::NodeId>(peers.begin(), peers.end());
}

void AntiEntropyEngine::DigestSyncTick() {
  auto peers = PeerReplicas();
  if (!peers.empty()) {
    net::NodeId peer = peers[rng_.NextBelow(peers.size())];
    net::DigestRequest digest;
    digest.latest = good_.Digest();
    send_(peer, std::move(digest));
  }
  sim_.After(options_.digest_sync_interval, [this]() { DigestSyncTick(); });
}

void AntiEntropyEngine::HandleDigest(const net::DigestRequest& req,
                                     net::NodeId from) {
  // Send back every version the requester is missing, in bounded batches
  // (unacknowledged one-shot batches: the requester's next digest will
  // re-trigger anything lost).
  std::map<Key, Timestamp> theirs;
  for (const auto& [k, ts] : req.latest) theirs.emplace(k, ts);
  net::AntiEntropyBatch batch;
  batch.batch_id = NextBatchId();
  auto flush = [this, from, &batch]() {
    if (batch.writes.empty()) return;
    stats_.records_out += batch.writes.size();
    send_(from, std::move(batch));
    batch = net::AntiEntropyBatch();
    batch.batch_id = NextBatchId();
  };
  good_.ForEachVersion([&](const WriteRecord& w) {
    auto it = theirs.find(w.key);
    if (it != theirs.end() && w.ts <= it->second) return;  // they have newer
    batch.writes.push_back(w);
    if (batch.writes.size() >= options_.batch_max) flush();
  });
  flush();

  // Reverse direction: if the initiator advertises data we lack, answer
  // with our own digest (one round only) so it pushes the difference back.
  if (req.reply_allowed) {
    bool missing = false;
    for (const auto& [k, ts] : req.latest) {
      auto ours = good_.LatestTimestamp(k);
      if (!ours || *ours < ts) {
        missing = true;
        break;
      }
    }
    if (missing) {
      net::DigestRequest mine;
      mine.latest = good_.Digest();
      mine.reply_allowed = false;
      send_(from, std::move(mine));
    }
  }
}

void AntiEntropyEngine::Clear() {
  outbox_.clear();
  inflight_.clear();
  applied_batches_.clear();
  applied_batches_fifo_.clear();
}

}  // namespace hat::server
