// ReplicaServer: one hatkv database server.
//
// A single server class implements every role the paper's evaluation needs:
//  * eventual / Read Committed installation (last-writer-wins registers),
//  * the Appendix B MAV algorithm (pending / good sets, pending-stable
//    notification, required-bound reads),
//  * all-to-all anti-entropy with reliable (retransmitted) outboxes,
//  * per-key master serving (single serialization point for the "master"
//    baseline; recency comes from routing),
//  * a strict two-phase-locking lock service with wait-die deadlock
//    avoidance (the "locking" baseline of Section 6.3),
//  * optional real durability via hat::storage::LocalStore (replicas can be
//    crashed and recovered in tests).
//
// Servers are single service centers: each incoming message is queued and
// charged a service demand (ServiceCosts), which produces the saturation and
// overhead behaviour of Figures 3-6.

#ifndef HAT_SERVER_REPLICA_SERVER_H_
#define HAT_SERVER_REPLICA_SERVER_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "hat/net/rpc.h"
#include "hat/server/partitioner.h"
#include "hat/server/service_costs.h"
#include "hat/storage/local_store.h"
#include "hat/version/versioned_store.h"

namespace hat::server {

struct ServerOptions {
  ServiceCosts costs;
  /// Charge WAL-sync service time on installs (the paper's servers write
  /// synchronously to LevelDB before responding).
  bool durable = true;
  /// Non-empty: persist installed writes to a LocalStore under this
  /// directory, enabling crash/recovery tests. Empty: modeled durability
  /// only (service-time charge, no real IO) — used by benchmarks.
  std::string storage_dir;
  /// Anti-entropy outbox flush cadence.
  sim::Duration ae_flush_interval = 5 * sim::kMillisecond;
  /// Retransmit unacknowledged anti-entropy batches after this long.
  sim::Duration ae_retry_interval = 250 * sim::kMillisecond;
  /// Re-broadcast MAV pending-stable acks for still-pending transactions
  /// (recovers promotions whose notifies were lost to a partition).
  sim::Duration renotify_interval = 500 * sim::kMillisecond;
  /// Digest-based repair: every interval, exchange per-key latest-version
  /// digests with one random peer replica and back-fill whatever it is
  /// missing. Catches writes whose push outbox was lost to a crash.
  /// 0 disables (benchmarks use push-only anti-entropy).
  sim::Duration digest_sync_interval = 0;
  /// Drop pending MAV writes older than the good version for their key
  /// (the "pending invalidation" optimization of Appendix B).
  bool gc_stale_pending = true;
  /// Max writes per anti-entropy batch.
  size_t ae_batch_max = 64;
  /// Garbage-collect old versions beyond this many per key (0 = unlimited).
  /// Old versions fold into a single base Put, preserving visible values
  /// (Section 5.1.2: "older versions can be asynchronously garbage
  /// collected").
  size_t max_versions_per_key = 8;
};

struct ServerStats {
  uint64_t gets = 0;
  uint64_t gets_not_yet = 0;  ///< required-bound reads answered kNotYet
  uint64_t gets_from_pending = 0;
  uint64_t puts = 0;
  uint64_t scans = 0;
  uint64_t notifies = 0;
  uint64_t ae_batches_in = 0;
  uint64_t ae_records_in = 0;
  uint64_t ae_records_out = 0;
  uint64_t mav_promotions = 0;
  uint64_t stale_pending_dropped = 0;
  uint64_t locks_granted = 0;
  uint64_t locks_queued = 0;
  uint64_t lock_deaths = 0;  ///< wait-die aborts issued
  double busy_us = 0;        ///< total service time consumed
};

class ReplicaServer : public net::RpcNode {
 public:
  ReplicaServer(sim::Simulation& sim, net::Network& net, net::NodeId id,
                ServerOptions options, const Partitioner* partitioner);

  /// Loads previously persisted state (storage_dir mode). Call before the
  /// simulation starts or after a simulated crash.
  Status RecoverFromStorage();

  /// Simulates a crash: wipes all volatile state (good/pending/acks/locks/
  /// outboxes). Durable state on disk survives for RecoverFromStorage().
  void Crash();

  const ServerStats& stats() const { return stats_; }
  const version::VersionedStore& good() const { return good_; }
  size_t PendingCount() const;

  /// Bootstrap/test hook: installs a version directly into the good set with
  /// no gossip, persistence, or service cost (dataset preloading).
  void InstallForTest(const WriteRecord& w) { good_.Apply(w); }

  /// Fraction of time this server was busy over the sim so far (utilization).
  double UtilizationOver(sim::SimTime elapsed) const {
    return elapsed == 0 ? 0 : stats_.busy_us / static_cast<double>(elapsed);
  }

 protected:
  void HandleMessage(const net::Envelope& env) override;

 private:
  void Process(const net::Envelope& env);
  double CostOf(const net::Message& msg) const;

  // --- write installation ---------------------------------------------
  void InstallEventual(const WriteRecord& w, bool gossip);
  void InstallMav(const WriteRecord& w, bool gossip);
  void MaybeGcVersions(const Key& key);
  void PersistWrite(const WriteRecord& w, bool pending);
  void EraseePersistedPending(const WriteRecord& w);

  // --- MAV machinery ----------------------------------------------------
  /// Servers that must acknowledge transaction `ts` before promotion:
  /// every replica of every sibling key.
  std::set<net::NodeId> AckSetFor(const std::vector<Key>& sibs) const;
  /// Sibling keys of `sibs` that this server replicates.
  std::vector<Key> LocalKeysOf(const std::vector<Key>& sibs) const;
  void MaybeAck(const Timestamp& ts);
  void MaybePromote(const Timestamp& ts);
  void HandleNotify(const net::NotifyRequest& req);
  void RenotifyTick();

  // --- anti-entropy -------------------------------------------------------
  void EnqueueGossip(const WriteRecord& w, net::PutMode mode,
                     net::NodeId except);
  void FlushOutboxes();
  void HandleAntiEntropy(const net::Envelope& env);
  void DigestSyncTick();
  void HandleDigest(const net::Envelope& env);
  /// All peer replicas this server shares any shard with (same shard index
  /// in the other clusters).
  std::vector<net::NodeId> PeerReplicas() const;

  // --- request handlers --------------------------------------------------
  void HandleGet(const net::Envelope& env);
  void HandleScan(const net::Envelope& env);
  void HandlePut(const net::Envelope& env);
  void HandleLock(const net::Envelope& env);
  void HandleUnlock(const net::Envelope& env);
  void GrantWaiters(const Key& key);

  ServerOptions options_;
  const Partitioner* partitioner_;
  ServerStats stats_;
  sim::SimTime busy_until_ = 0;
  Rng rng_{0};  // peer selection for digest sync

  version::VersionedStore good_;
  // MAV pending, indexed two ways: by key (for required-bound reads) and by
  // transaction timestamp (for promotion).
  std::map<Key, std::map<Timestamp, WriteRecord>> pending_by_key_;
  struct PendingTxn {
    std::vector<WriteRecord> writes;       // this server's sibling writes
    std::vector<Key> sibs;                 // full txn key set
    std::set<net::NodeId> acks;            // distinct ack senders seen
    bool acked_by_self = false;            // we broadcast our ack already
  };
  std::map<Timestamp, PendingTxn> pending_txns_;
  // Acks that arrived before the first write of their transaction.
  std::map<Timestamp, std::set<net::NodeId>> early_acks_;
  // Transactions this server already promoted (bounded FIFO). A late ack
  // for a promoted transaction is answered with our own ack so replicas
  // that received the writes after a partition heal can still promote.
  std::set<Timestamp> promoted_;
  std::deque<Timestamp> promoted_fifo_;

  // Anti-entropy outboxes.
  struct OutboxItem {
    WriteRecord write;
    net::PutMode mode;
  };
  std::map<net::NodeId, std::deque<OutboxItem>> outbox_;
  struct InFlightBatch {
    net::NodeId peer;
    net::AntiEntropyBatch batch;
    sim::SimTime sent_at;
    /// Exponential backoff: doubles per retransmission (capped), so slow
    /// acks under load do not trigger duplicate-processing storms.
    sim::Duration backoff;
  };
  std::map<uint64_t, InFlightBatch> inflight_;
  uint64_t next_batch_id_ = 1;
  // Batches already applied (dedupe against retransmits), bounded FIFO.
  std::deque<uint64_t> applied_batches_fifo_;
  std::set<uint64_t> applied_batches_;

  // Lock table (strict 2PL, wait-die on priority = txn timestamp age).
  struct Waiter {
    Timestamp txn;
    bool exclusive;
    net::Envelope request;  // replied to on grant
  };
  struct LockState {
    std::optional<Timestamp> x_holder;
    std::set<Timestamp> s_holders;
    std::deque<Waiter> waiters;
  };
  std::map<Key, LockState> locks_;

  std::unique_ptr<storage::LocalStore> disk_;
};

}  // namespace hat::server

#endif  // HAT_SERVER_REPLICA_SERVER_H_
