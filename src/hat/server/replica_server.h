// ReplicaServer: one hatkv database server — a thin dispatcher over four
// composable subsystems:
//
//  * MavCoordinator     — the Appendix B MAV algorithm (pending/good sets,
//                         pending-stable notification, promotion, renotify),
//  * AntiEntropyEngine  — reliable push outboxes with retransmission plus
//                         optional digest-based repair,
//  * LockManager        — strict two-phase locking with wait-die (the
//                         "locking" baseline of Section 6.3),
//  * PersistenceManager — optional real durability via storage::LocalStore
//                         (replicas can be crashed and recovered in tests),
//  * ShardMigrator      — live logical-shard migration mechanics (snapshot
//                         streaming, digest catch-up, staging/promotion,
//                         detach + tombstone), driven by the cluster-level
//                         RebalanceCoordinator.
//
// Placement-aware serving: when ServerOptions::owned_logical_shards is set
// (deployments), the server knows exactly which logical shards it hosts.
// An operation for a shard that migrated away is answered kWrongShard so a
// stale-epoch client refreshes its routing and retries at the new owner;
// late anti-entropy records for such a shard are re-pushed ("forwarded")
// through the placement-aware outbox instead of being dropped.
//
// The server itself only routes envelopes, charges service demands
// (ServiceCosts — producing the saturation/overhead behaviour of
// Figures 3-6), answers reads from the shared data plane, and installs
// eventual/Read-Committed writes. The data plane is a ShardedStore: N
// independent VersionedStore shards (ServerOptions::shards_per_server),
// each with its own fold cache, digest buckets, GC frontier, and
// persistence keyspace — installs and reads route to the owning shard,
// anti-entropy digests repair shard by shard, and recovery replays shard
// by shard. Everything protocol-specific lives in the subsystems, which
// are independently constructible and unit-tested; future scenarios can
// swap an anti-entropy strategy or lock manager without touching the
// dispatcher.
//
// Service time runs on a ShardExecutor: each incoming message is classified
// into a plan of (lane, cost) units — gets/puts to the owning shard's lane,
// anti-entropy record application to each touched shard's lane, batch
// overhead / locks / notifies / round-0 digests to the global lane — and
// the plan executes on ServerOptions::cores_per_server cores. Same-shard
// work serializes, cross-shard work overlaps up to the core count, and
// cores_per_server = 1 reproduces the old single-service-center model
// exactly (per-message demands are unchanged; only their lane routing is
// new). Recovery replay is charged shard by shard to the replayed shard's
// lane, so a multi-core server recovers its shards in parallel.

#ifndef HAT_SERVER_REPLICA_SERVER_H_
#define HAT_SERVER_REPLICA_SERVER_H_

#include <string>
#include <vector>

#include "hat/common/histogram.h"
#include "hat/net/rpc.h"
#include "hat/server/anti_entropy_engine.h"
#include "hat/server/lock_manager.h"
#include "hat/server/mav_coordinator.h"
#include "hat/server/partitioner.h"
#include "hat/server/persistence_manager.h"
#include "hat/server/service_costs.h"
#include "hat/server/shard_executor.h"
#include "hat/server/shard_migrator.h"
#include "hat/version/sharded_store.h"

namespace hat::server {

struct ServerOptions {
  ServiceCosts costs;
  /// Number of local data-plane shards (independent VersionedStore
  /// instances) this server hosts. Replicas exchanging digests must agree.
  size_t shards_per_server = 1;
  /// Execution slots of this server's ShardExecutor: how many lanes can be
  /// in service simultaneously. 1 (the default) reproduces the old
  /// single-service-center queueing exactly; C > 1 lets cross-shard work
  /// overlap, so a server with shards_per_server >= cores_per_server scales
  /// its saturation throughput near-linearly in C (Figure 6 cores sweep).
  size_t cores_per_server = 1;
  /// Digest buckets per shard (VersionedStore's round-1 granularity).
  /// Shrink for small per-shard stores so a bucket exchange stops paying
  /// the full default. Replicas exchanging digests must agree.
  size_t digest_buckets = version::VersionedStore::kDefaultDigestBuckets;
  /// Shard placement stride (ShardedStore::Options::stride). Deployments
  /// set this to servers_per_cluster so server- and shard-level hash
  /// placement compose; standalone servers leave it at 1.
  size_t shard_placement_stride = 1;
  /// Explicit logical-shard ownership (size shards_per_server, one logical
  /// shard id per local slot). Deployments fill it from the PlacementMap so
  /// servers can detect keys they do not own (kWrongShard after a live
  /// migration); empty keeps the historical implicit stride arithmetic,
  /// under which every key is owned.
  std::vector<uint32_t> owned_logical_shards;
  /// Stop-and-wait resend timeout for migration snapshot chunks.
  sim::Duration migration_chunk_timeout = 500 * sim::kMillisecond;
  /// Cadence of source-side migration catch-up digest rounds.
  sim::Duration migration_catchup_interval = 50 * sim::kMillisecond;
  /// Conflicting-lock resolution for the locking baseline.
  LockPolicy lock_policy = LockPolicy::kWaitDie;
  /// Charge WAL-sync service time on installs (the paper's servers write
  /// synchronously to LevelDB before responding).
  bool durable = true;
  /// Non-empty: persist installed writes to a LocalStore under this
  /// directory, enabling crash/recovery tests. Empty: modeled durability
  /// only (service-time charge, no real IO) — used by benchmarks.
  std::string storage_dir;
  /// Anti-entropy outbox flush cadence.
  sim::Duration ae_flush_interval = 5 * sim::kMillisecond;
  /// Retransmit unacknowledged anti-entropy batches after this long.
  sim::Duration ae_retry_interval = 250 * sim::kMillisecond;
  /// Re-broadcast MAV pending-stable acks for still-pending transactions
  /// (recovers promotions whose notifies were lost to a partition).
  sim::Duration renotify_interval = 500 * sim::kMillisecond;
  /// Digest-based repair: every interval, exchange digests with one random
  /// peer replica and back-fill whatever it is missing. Catches writes whose
  /// push outbox was lost to a crash. 0 disables (benchmarks use push-only
  /// anti-entropy).
  sim::Duration digest_sync_interval = 0;
  /// Use the two-round bucketed digest protocol (round 1: B bucket hashes;
  /// round 2: per-key digests for mismatched buckets only). False falls back
  /// to the flat all-keys digest.
  bool ae_bucketed_digest = true;
  /// False disables the anti-entropy push outboxes (writes propagate via
  /// digest repair only) — used by tests that exercise repair in isolation.
  bool ae_push_enabled = true;
  /// Max payload bytes per digest-repair reply batch (0 = uncapped).
  size_t ae_batch_max_bytes = 64 * 1024;
  /// Drop pending MAV writes older than the good version for their key
  /// (the "pending invalidation" optimization of Appendix B).
  bool gc_stale_pending = true;
  /// Max writes per anti-entropy batch.
  size_t ae_batch_max = 64;
  /// Key anti-entropy outboxes by (peer, logical shard): batches become
  /// shard-homogeneous and carry a shard tag, so the receiving server
  /// charges the batch header and the persistence group commit to the
  /// owning shard's executor lane instead of the global lane — only
  /// cross-shard control traffic (round-0 digests, locks, MAV notifies)
  /// stays global. Off by default: untagged batches keep the legacy wire
  /// format and lane charging byte-identical.
  bool ae_shard_lane_batching = false;
  /// Garbage-collect old versions beyond this many per key (0 = unlimited).
  /// Old versions fold into a single base Put, preserving visible values
  /// (Section 5.1.2: "older versions can be asynchronously garbage
  /// collected").
  size_t max_versions_per_key = 8;
  /// Checkpoint durable storage after this many eventual-path installs
  /// (0 = checkpoints are taken only via explicit CheckpointStorage()
  /// calls). Bounds crash-recovery replay to checkpoint + tail.
  size_t checkpoint_every_writes = 0;
};

/// Aggregate view over the dispatcher's own counters and every subsystem's
/// stats — the external monitoring surface (kept flat so tests and benches
/// sum servers field-wise).
struct ServerStats {
  uint64_t gets = 0;
  uint64_t gets_not_yet = 0;  ///< required-bound reads answered kNotYet
  uint64_t gets_from_pending = 0;
  uint64_t puts = 0;
  uint64_t scans = 0;
  uint64_t notifies = 0;
  uint64_t ae_batches_in = 0;
  uint64_t ae_records_in = 0;
  uint64_t ae_records_out = 0;
  uint64_t ae_batches_out = 0;      ///< push batches sent (first sends)
  uint64_t ae_retransmits = 0;      ///< unacked batches re-sent (backoff)
  uint64_t ae_dupes_suppressed = 0; ///< retransmit dupes dropped by dedupe
  uint64_t ae_dedupe_rotations = 0; ///< applied-batch set generation flips
  /// Shard-tagged anti-entropy batches whose header + group commit were
  /// charged to the owning shard's lane (vs. the global lane) — the
  /// amortization signal of shard-lane batching.
  uint64_t ae_shard_lane_batches = 0;
  /// Client envelope batches executed, and the operations they carried
  /// (client_batch_ops / client_batches = achieved group-commit factor).
  uint64_t client_batches = 0;
  uint64_t client_batch_ops = 0;
  uint64_t ae_digest_ticks = 0;
  uint64_t ae_digest_entries_out = 0;  ///< per-key digest entries shipped
  uint64_t ae_digest_bytes_out = 0;    ///< digest-protocol wire bytes sent
  uint64_t mav_promotions = 0;
  uint64_t stale_pending_dropped = 0;
  uint64_t locks_granted = 0;
  uint64_t locks_queued = 0;
  uint64_t lock_deaths = 0;  ///< wait-die aborts issued
  /// Placement-epoch routing corrections and late-gossip handling:
  uint64_t wrong_shard_replies = 0;   ///< client ops answered kWrongShard
  uint64_t forwarded_records = 0;     ///< unowned gossip re-pushed to owner
  /// Durable WAL group commits: one per applied anti-entropy batch and per
  /// client envelope batch carrying at least one put (the single wal_sync_us
  /// the cost table charges those paths). Group-commit amortization =
  /// installs / wal_group_commits.
  uint64_t wal_group_commits = 0;
  // Live-migration counters (see MigratorStats):
  uint64_t mig_snapshot_records_out = 0;
  uint64_t mig_snapshot_records_in = 0;
  uint64_t mig_catchup_records_in = 0;
  double busy_us = 0;        ///< total service time consumed, all lanes
  // ShardExecutor counters (see ShardExecutorStats):
  uint64_t exec_tasks = 0;       ///< classified tasks submitted
  uint64_t exec_dispatches = 0;  ///< cross-core shard-lane handoffs charged
  /// Busy microseconds per lane: [0, shards_per_server) the construction-
  /// time shard lanes, [shards_per_server] the global lane, then one lane
  /// per shard attached by live migration. Divide by elapsed time for
  /// per-lane utilization (the saturation signal — a hot shard or a
  /// saturated global lane shows up here long before total utilization
  /// reaches 1).
  std::vector<double> lane_busy_us;
  /// Point-in-time booked backlog per lane (same indexing as
  /// lane_busy_us): tasks whose service has not completed yet. The
  /// migration coordinator treats depth 0 on the moving shard's lane as
  /// its drain point; benches print it as the queueing signal.
  std::vector<uint64_t> lane_queue_depth;
  /// Microseconds each task waited for its lane and a core before service.
  Histogram queue_wait_us;

  /// Field list for obs::Registry::AddStats / obs::MergeStats: one line per
  /// field, visited as (name, member pointer). The static_assert below
  /// pins sizeof(ServerStats) to exactly the visited fields, so adding a
  /// field without listing it here fails the build instead of silently
  /// dropping out of TotalServerStats-style merges.
  template <typename V>
  static void VisitFields(V&& v) {
    v("gets", &ServerStats::gets);
    v("gets_not_yet", &ServerStats::gets_not_yet);
    v("gets_from_pending", &ServerStats::gets_from_pending);
    v("puts", &ServerStats::puts);
    v("scans", &ServerStats::scans);
    v("notifies", &ServerStats::notifies);
    v("ae_batches_in", &ServerStats::ae_batches_in);
    v("ae_records_in", &ServerStats::ae_records_in);
    v("ae_records_out", &ServerStats::ae_records_out);
    v("ae_batches_out", &ServerStats::ae_batches_out);
    v("ae_retransmits", &ServerStats::ae_retransmits);
    v("ae_dupes_suppressed", &ServerStats::ae_dupes_suppressed);
    v("ae_dedupe_rotations", &ServerStats::ae_dedupe_rotations);
    v("ae_shard_lane_batches", &ServerStats::ae_shard_lane_batches);
    v("client_batches", &ServerStats::client_batches);
    v("client_batch_ops", &ServerStats::client_batch_ops);
    v("ae_digest_ticks", &ServerStats::ae_digest_ticks);
    v("ae_digest_entries_out", &ServerStats::ae_digest_entries_out);
    v("ae_digest_bytes_out", &ServerStats::ae_digest_bytes_out);
    v("mav_promotions", &ServerStats::mav_promotions);
    v("stale_pending_dropped", &ServerStats::stale_pending_dropped);
    v("locks_granted", &ServerStats::locks_granted);
    v("locks_queued", &ServerStats::locks_queued);
    v("lock_deaths", &ServerStats::lock_deaths);
    v("wrong_shard_replies", &ServerStats::wrong_shard_replies);
    v("forwarded_records", &ServerStats::forwarded_records);
    v("wal_group_commits", &ServerStats::wal_group_commits);
    v("mig_snapshot_records_out", &ServerStats::mig_snapshot_records_out);
    v("mig_snapshot_records_in", &ServerStats::mig_snapshot_records_in);
    v("mig_catchup_records_in", &ServerStats::mig_catchup_records_in);
    v("busy_us", &ServerStats::busy_us);
    v("exec_tasks", &ServerStats::exec_tasks);
    v("exec_dispatches", &ServerStats::exec_dispatches);
    v("lane_busy_us", &ServerStats::lane_busy_us);
    v("lane_queue_depth", &ServerStats::lane_queue_depth);
    v("queue_wait_us", &ServerStats::queue_wait_us);
  }
};

/// Completeness guard for VisitFields: 33 8-byte scalars + 2 vectors + 1
/// Histogram, with no padding between 8-byte-aligned members. A new field
/// changes the size and trips this until VisitFields lists it.
static_assert(sizeof(ServerStats) ==
                  33 * sizeof(uint64_t) + 2 * sizeof(std::vector<double>) +
                      sizeof(Histogram),
              "ServerStats changed: update ServerStats::VisitFields (and the "
              "field count here) so generic merge/registration stay complete");

class ReplicaServer : public net::RpcNode {
 public:
  ReplicaServer(sim::Simulation& sim, net::Network& net, net::NodeId id,
                ServerOptions options, const Partitioner* partitioner);

  /// Loads previously persisted state (storage_dir mode). Call before the
  /// simulation starts or after a simulated crash.
  Status RecoverFromStorage();

  /// Simulates a crash: wipes all volatile state (good/pending/acks/locks/
  /// outboxes). Durable state on disk survives for RecoverFromStorage().
  void Crash();

  /// Snapshots every hosted shard's live versions into its durable
  /// checkpoint and truncates the superseded good-version history, so the
  /// next RecoverFromStorage replays checkpoint + tail instead of every
  /// version ever installed. No-op without a storage directory.
  Status CheckpointStorage();

  const ServerStats& stats() const;
  const version::ShardedStore& good() const { return good_; }
  size_t PendingCount() const { return mav_.PendingWriteCount(); }

  /// Subsystem views, for tests and diagnostics.
  const PersistenceManager& persistence() const { return persistence_; }
  const MavCoordinator& mav() const { return mav_; }
  const AntiEntropyEngine& anti_entropy() const { return anti_entropy_; }
  const LockManager& lock_manager() const { return locks_; }
  const ShardExecutor& executor() const { return executor_; }
  /// Live-migration mechanics; the RebalanceCoordinator's control surface.
  ShardMigrator& migrator() { return migrator_; }
  const ShardMigrator& migrator() const { return migrator_; }

  /// Executor lane of local slot `slot` (slots beyond the construction-time
  /// shard count skip over the global lane, which is pinned at index
  /// shards_per_server).
  size_t LaneOfSlot(size_t slot) const {
    return slot < options_.shards_per_server ? slot : slot + 1;
  }
  /// Booked backlog on the lane of logical shard `shard` (0 if not hosted)
  /// — the coordinator's drain-point probe.
  size_t ShardLaneQueueDepth(uint32_t shard) const {
    auto slot = good_.SlotOfLogical(shard);
    return slot ? executor_.QueueDepth(LaneOfSlot(*slot)) : 0;
  }

  /// Bootstrap/test hook: installs a version directly into the good set with
  /// no gossip, persistence, or service cost (dataset preloading).
  void InstallForTest(const WriteRecord& w) { good_.Apply(w); }

  /// Observability: attaches `tracer` to this server and its subsystems
  /// (executor queue-wait/execute spans, MAV ack-fan-in spans, WAL-commit /
  /// AE-apply / checkpoint events). nullptr detaches. Tracing records no
  /// simulation events and consumes no RNG, so attaching cannot perturb a
  /// deterministic run.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    executor_.set_tracer(tracer, id());
    mav_.set_tracer(tracer);
  }

  /// Fraction of this server's capacity (cores_per_server x elapsed)
  /// consumed so far. A saturated C-core server reads 1.0, not C.
  double UtilizationOver(sim::SimTime elapsed) const {
    return executor_.UtilizationOver(elapsed);
  }
  /// Fraction of elapsed time one lane (shard index, or shards_per_server
  /// for the global lane) was busy.
  double LaneUtilizationOver(size_t lane, sim::SimTime elapsed) const {
    return executor_.LaneUtilizationOver(lane, elapsed);
  }

 protected:
  void HandleMessage(const net::Envelope& env) override;

 private:
  void Process(const net::Envelope& env);
  /// Classifies one message into executor work: which lanes it occupies and
  /// for how long (the per-message-type ServiceCosts table). Returns a
  /// reference to `plan_scratch_`, reused per message so the dispatch hot
  /// path stays allocation-free at steady state.
  const std::vector<ShardExecutor::Work>& PlanFor(
      const net::Message& msg) const;
  /// Executor lane of `key`'s shard; the global lane for keys whose shard
  /// this server no longer hosts (their handling is a routing correction,
  /// not shard work).
  size_t LaneOf(const Key& key) const {
    auto slot = good_.TrySlotOfKey(key);
    return slot ? LaneOfSlot(*slot) : executor_.global_lane();
  }

  void HandleGet(const net::Envelope& env);
  void HandleScan(const net::Envelope& env);
  void HandlePut(const net::Envelope& env);
  void HandleClientBatch(const net::Envelope& env);

  /// Single-operation execution, shared by the plain RPC handlers and the
  /// batched envelope path so both count stats and route identically. An
  /// active `trace` threads the sampled transaction's context into the
  /// install pipeline (MAV notify fan-out, anti-entropy propagation).
  net::GetResponse DoGet(const net::GetRequest& req);
  net::PutResponse DoPut(const net::PutRequest& req,
                         const obs::TraceContext& trace = {});

  /// True when this server currently serves client operations on `key`: it
  /// owns the key's logical shard and the shard is not a migration staging
  /// copy. Implicit-placement servers serve every key.
  bool ServesKey(const Key& key) const {
    auto slot = good_.TrySlotOfKey(key);
    return slot.has_value() && !migrator_.IsStagingSlot(*slot);
  }
  /// Grows the executor so `slot` (a freshly attached staging shard) has a
  /// lane.
  void EnsureLaneForSlot(size_t slot);
  /// The logical shard tags the store currently hosts, in slot order
  /// (empty for implicit-placement stores).
  std::vector<uint32_t> CurrentOwned() const;
  /// Rewrites the durable placement manifest from the store's current
  /// ownership (no-op without a storage directory).
  void WriteManifestFromState();
  /// Builds the ShardedStore options for this server's configuration, with
  /// `owned` as the explicit slot layout (empty = implicit).
  version::ShardedStore::Options StoreOptions(
      std::vector<uint32_t> owned) const;

  /// Installs into the good set (eventual / Read Committed path). `origin`
  /// is the peer the write arrived from (net::kNoPeer for client writes);
  /// re-gossip excludes it so a 2-replica exchange does not echo every write
  /// straight back to its sender. Returns true if the version was new
  /// (duplicate anti-entropy deliveries return false and do nothing).
  bool InstallEventual(const WriteRecord& w, bool gossip,
                       net::NodeId origin = net::kNoPeer,
                       obs::TraceContext trace = {});
  /// Routes a record received via anti-entropy to the right install path.
  void InstallFromPeer(const WriteRecord& w, net::PutMode mode,
                       net::NodeId from, obs::TraceContext trace = {});
  void MaybeGcVersions(const Key& key);

  ServerOptions options_;
  const Partitioner* partitioner_;
  obs::Tracer* tracer_ = nullptr;
  mutable ServerStats stats_;  // mutable: stats() assembles subsystem counts
  ShardExecutor executor_;
  // PlanFor scratch space (capacity retained across messages).
  mutable std::vector<ShardExecutor::Work> plan_scratch_;
  mutable std::vector<double> shard_cost_scratch_;

  version::ShardedStore good_;
  PersistenceManager persistence_;
  size_t writes_since_checkpoint_ = 0;
  MavCoordinator mav_;
  AntiEntropyEngine anti_entropy_;
  LockManager locks_;
  ShardMigrator migrator_;
};

}  // namespace hat::server

#endif  // HAT_SERVER_REPLICA_SERVER_H_
