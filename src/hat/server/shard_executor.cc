#include "hat/server/shard_executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace hat::server {

ShardExecutor::ShardExecutor(sim::Simulation& sim, Options options)
    : sim_(sim), options_(options) {
  assert(options_.shards >= 1);
  assert(options_.cores >= 1);
  lane_free_.assign(options_.shards + 1, 0);
  core_free_.assign(options_.cores, 0);
  stats_.lane_busy_us.assign(options_.shards + 1, 0);
  lane_inflight_.resize(options_.shards + 1);
}

size_t ShardExecutor::AddLane() {
  lane_free_.push_back(0);
  stats_.lane_busy_us.push_back(0);
  lane_inflight_.emplace_back();
  return lane_free_.size() - 1;
}

size_t ShardExecutor::QueueDepth(size_t lane) const {
  std::deque<sim::SimTime>& q = lane_inflight_[lane];
  sim::SimTime now = sim_.Now();
  while (!q.empty() && q.front() <= now) q.pop_front();
  return q.size();
}

sim::SimTime ShardExecutor::Book(const Work& work,
                                 const obs::TraceContext& trace) {
  assert(work.lane < lane_free_.size());
  double cost = work.cost_us;
  // Cross-core dispatch: handing shard work to another core's queue is not
  // free. A single-core executor runs everything inline (and must reproduce
  // the old single-service-center numbers exactly), so it pays nothing.
  if (options_.cores > 1 && work.lane != global_lane()) {
    cost += options_.dispatch_us;
    stats_.dispatches++;
  }

  sim::SimTime now = sim_.Now();
  sim::SimTime desired = std::max(now, lane_free_[work.lane]);

  // Core choice (deterministic, lowest index on ties): prefer the
  // *latest*-free core that is still free by `desired` — the task cannot
  // start before its lane frontier anyway, so taking the tightest-fitting
  // core fills that core's idle gap and leaves earlier-free cores for
  // other lanes' tasks arriving in the meantime. Booking the earliest core
  // instead would strand its whole [free, desired) window behind a deep
  // lane queue and cap utilization well below the core count. Only when no
  // core is free by `desired` does the earliest one (and the wait for it)
  // apply.
  size_t core = core_free_.size();
  size_t earliest = 0;
  for (size_t i = 0; i < core_free_.size(); i++) {
    if (core_free_[i] <= desired &&
        (core == core_free_.size() || core_free_[i] > core_free_[core])) {
      core = i;
    }
    if (core_free_[i] < core_free_[earliest]) earliest = i;
  }
  if (core == core_free_.size()) core = earliest;

  sim::SimTime start = std::max(desired, core_free_[core]);
  sim::SimTime end =
      start + static_cast<sim::Duration>(std::llround(std::max(cost, 0.0)));
  lane_free_[work.lane] = end;
  core_free_[core] = end;

  // Queue-depth bookkeeping: completions are nondecreasing per lane (end ==
  // the new lane frontier), so the deque stays sorted; prune what already
  // finished to bound it by the in-flight count.
  std::deque<sim::SimTime>& q = lane_inflight_[work.lane];
  while (!q.empty() && q.front() <= now) q.pop_front();
  q.push_back(end);

  stats_.busy_us += cost;
  stats_.lane_busy_us[work.lane] += cost;
  stats_.queue_wait_us.Record(static_cast<double>(start - now));

  if (trace.active() && tracer_ != nullptr && tracer_->enabled()) {
    // Queue-wait is recorded even when zero-length so a traced request's
    // span tree always shows where it queued; execute carries the lane and
    // the chosen core.
    obs::Span wait;
    wait.trace_id = trace.trace_id;
    wait.span_id = tracer_->NewSpanId();
    wait.parent_id = trace.span_id;
    wait.kind = obs::SpanKind::kQueueWait;
    wait.node = trace_node_;
    wait.lane = static_cast<int32_t>(work.lane);
    wait.start_us = now;
    wait.end_us = start;
    tracer_->Record(wait);

    obs::Span exec;
    exec.trace_id = trace.trace_id;
    exec.span_id = tracer_->NewSpanId();
    exec.parent_id = trace.span_id;
    exec.kind = obs::SpanKind::kExecute;
    exec.node = trace_node_;
    exec.lane = static_cast<int32_t>(work.lane);
    exec.core = static_cast<int32_t>(core);
    exec.start_us = start;
    exec.end_us = end;
    tracer_->Record(exec);
  }
  return end;
}

sim::SimTime ShardExecutor::Submit(size_t lane, double cost_us,
                                   sim::Simulation::Callback done,
                                   const obs::TraceContext& trace) {
  stats_.tasks++;
  sim::SimTime end = Book(Work{lane, cost_us}, trace);
  if (done) sim_.At(end, std::move(done));
  return end;
}

sim::SimTime ShardExecutor::SubmitAll(const std::vector<Work>& plan,
                                      sim::Simulation::Callback done,
                                      const obs::TraceContext& trace) {
  stats_.tasks++;
  sim::SimTime end = sim_.Now();
  for (const Work& work : plan) end = std::max(end, Book(work, trace));
  if (done) sim_.At(end, std::move(done));
  return end;
}

void ShardExecutor::Reset() {
  std::fill(lane_free_.begin(), lane_free_.end(), sim_.Now());
  std::fill(core_free_.begin(), core_free_.end(), sim_.Now());
  for (auto& q : lane_inflight_) q.clear();
}

}  // namespace hat::server
