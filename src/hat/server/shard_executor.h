// ShardExecutor: a deterministic multi-lane queueing model for one server's
// service time, layered on the single-threaded sim::Simulation clock.
//
// PR 3 made the data plane's shards fully independent, but every request
// still serialized through one scalar busy-until frontier — a 16-shard
// server saturated exactly like a 1-shard one. The executor replaces the
// single service center with *lanes × cores*:
//
//  * one logical lane per local shard plus one global lane (lock table,
//    batch overhead, MAV notifies, cross-shard coordination);
//  * a pool of `cores` interchangeable execution slots.
//
// A task targeting lane `l` completes at
//
//     start = max(now, lane_free[l], earliest_core_free)
//     end   = start + cost
//
// so same-shard work serializes (its lane is a FIFO), cross-shard work
// overlaps up to the core count, and a single-core executor degenerates to
// exactly the old single-service-center model (the earliest core IS the old
// busy_until_). Scheduling is non-preemptive and processes tasks in arrival
// order with pure arithmetic on the virtual clock — a fixed seed still
// produces a bit-identical execution, which tests assert.
//
// The executor also owns the server's service-time accounting: total and
// per-lane busy microseconds, task/dispatch counts, and a queue-wait
// histogram (how long tasks waited for their lane or a core), the
// saturation signal fig3/fig6 print.

#ifndef HAT_SERVER_SHARD_EXECUTOR_H_
#define HAT_SERVER_SHARD_EXECUTOR_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "hat/common/histogram.h"
#include "hat/obs/trace.h"
#include "hat/sim/simulation.h"

namespace hat::server {

struct ShardExecutorStats {
  double busy_us = 0;  ///< total service time consumed, all lanes
  /// Busy microseconds per lane: [0, shards) the shard lanes, [shards] the
  /// global lane.
  std::vector<double> lane_busy_us;
  uint64_t tasks = 0;       ///< tasks submitted
  uint64_t dispatches = 0;  ///< shard-lane handoffs that paid dispatch cost
  /// Microseconds each task spent queued (arrival -> start of service).
  Histogram queue_wait_us;
};

class ShardExecutor {
 public:
  struct Options {
    /// Number of shard lanes (>= 1). Lane count is shards + 1 (global).
    size_t shards = 1;
    /// Execution slots shared by all lanes (>= 1). One core reproduces the
    /// single-service-center model exactly.
    size_t cores = 1;
    /// Cost of handing a task from the receive path to a shard lane's queue
    /// on another core (ServiceCosts::dispatch_us). Charged per shard-lane
    /// unit of work only when cores > 1 — a single-core server runs
    /// everything inline and pays no cross-core handoff.
    double dispatch_us = 0;
  };

  /// One classified unit of work: `cost_us` of service time on `lane`.
  struct Work {
    size_t lane = 0;
    double cost_us = 0;
  };

  ShardExecutor(sim::Simulation& sim, Options options);

  size_t shard_count() const { return options_.shards; }
  size_t cores() const { return options_.cores; }
  size_t lane_count() const { return lane_free_.size(); }
  /// The lane for work not owned by any single shard. Fixed at index
  /// `shards`; lanes added later (migrated-in shards) append after it.
  size_t global_lane() const { return options_.shards; }

  /// Adds one shard lane (live migration attaching a staged shard) and
  /// returns its index. Added lanes behave exactly like construction-time
  /// shard lanes (FIFO, dispatch-charged); they are never removed — a
  /// detached shard's lane simply goes idle, keeping indices stable.
  size_t AddLane();

  /// Number of booked tasks on `lane` whose service has not completed by
  /// the current virtual time — the lane's queue depth. O(1) amortized
  /// (lane bookings complete in FIFO order, so expired entries pop from the
  /// front). The migration coordinator uses depth 0 as a shard's drain
  /// point; benches print it as the backlog signal.
  size_t QueueDepth(size_t lane) const;

  /// Runs `cost_us` of service time on `lane`; `done` (may be null) fires
  /// when it completes. Returns the completion time. `trace`, when active
  /// and a tracer is attached, records queue-wait and execute spans.
  sim::SimTime Submit(size_t lane, double cost_us,
                      sim::Simulation::Callback done,
                      const obs::TraceContext& trace = {});

  /// Runs every unit concurrently (each serialized on its own lane, all
  /// sharing the core pool); `done` (may be null) fires when the last one
  /// completes. An empty plan completes immediately (at now). Returns the
  /// completion time.
  sim::SimTime SubmitAll(const std::vector<Work>& plan,
                         sim::Simulation::Callback done,
                         const obs::TraceContext& trace = {});

  /// Observability: spans record under node id `node`. nullptr disables.
  void set_tracer(obs::Tracer* tracer, uint32_t node) {
    tracer_ = tracer;
    trace_node_ = node;
  }

  /// Crash/recovery hook: every lane and core becomes free at the current
  /// virtual time, so post-crash work is not queued behind pre-crash
  /// bookings. Completion callbacks already scheduled on the simulator
  /// still fire (the owner processes in-flight messages against its wiped
  /// state, exactly as the old single-service-center model did on
  /// Crash()); only the busy frontiers reset. Stats survive, like every
  /// subsystem's.
  void Reset();

  const ShardExecutorStats& stats() const { return stats_; }

  /// Fraction of available capacity (cores x elapsed) consumed so far.
  double UtilizationOver(sim::SimTime elapsed) const {
    return elapsed == 0 ? 0
                        : stats_.busy_us / (static_cast<double>(options_.cores) *
                                            static_cast<double>(elapsed));
  }
  /// Fraction of elapsed time one lane was busy.
  double LaneUtilizationOver(size_t lane, sim::SimTime elapsed) const {
    return elapsed == 0 ? 0
                        : stats_.lane_busy_us[lane] /
                              static_cast<double>(elapsed);
  }

 private:
  /// Books one unit of work and returns its completion time (no callback).
  sim::SimTime Book(const Work& work, const obs::TraceContext& trace);

  sim::Simulation& sim_;
  Options options_;
  ShardExecutorStats stats_;
  obs::Tracer* tracer_ = nullptr;
  uint32_t trace_node_ = 0;
  std::vector<sim::SimTime> lane_free_;  ///< per-lane FIFO frontier
  std::vector<sim::SimTime> core_free_;  ///< per-core availability
  /// Completion times of in-flight bookings per lane, in booking order
  /// (nondecreasing — a lane is a FIFO). Mutable: QueueDepth prunes expired
  /// entries lazily; no simulation events are involved, so adding this
  /// bookkeeping cannot perturb event ordering.
  mutable std::vector<std::deque<sim::SimTime>> lane_inflight_;
};

}  // namespace hat::server

#endif  // HAT_SERVER_SHARD_EXECUTOR_H_
