#include "hat/server/replica_server.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "hat/version/wire.h"

namespace hat::server {

using net::Envelope;
using net::Message;

namespace {
constexpr std::string_view kGoodPrefix = "g/";
constexpr std::string_view kPendingPrefix = "p/";
constexpr size_t kAppliedBatchMemory = 4096;
}  // namespace

ReplicaServer::ReplicaServer(sim::Simulation& sim, net::Network& net,
                             net::NodeId id, ServerOptions options,
                             const Partitioner* partitioner)
    : net::RpcNode(sim, net, id),
      options_(std::move(options)),
      partitioner_(partitioner) {
  if (!options_.storage_dir.empty()) {
    auto store = storage::LocalStore::Open(options_.storage_dir);
    if (store.ok()) disk_ = std::move(store).value();
  }
  // Stagger recurring timers per server so deterministic runs do not
  // synchronize every server's background work on the same tick.
  sim::Duration offset = (id * 97) % options_.ae_flush_interval + 1;
  sim_.After(offset, [this]() { FlushOutboxes(); });
  sim::Duration roffset = (id * 131) % options_.renotify_interval + 1;
  sim_.After(roffset, [this]() { RenotifyTick(); });
  if (options_.digest_sync_interval > 0) {
    sim::Duration doffset = (id * 173) % options_.digest_sync_interval + 1;
    sim_.After(doffset, [this]() { DigestSyncTick(); });
  }
  rng_ = sim_.rng().Fork(0x5e53 + id);
}

size_t ReplicaServer::PendingCount() const {
  size_t n = 0;
  for (const auto& [ts, txn] : pending_txns_) n += txn.writes.size();
  return n;
}

// --------------------------------------------------------------------------
// Service-time queueing
// --------------------------------------------------------------------------

double ReplicaServer::CostOf(const Message& msg) const {
  const ServiceCosts& c = options_.costs;
  double bytes_kb = static_cast<double>(net::WireBytes(msg)) / 1024.0;
  double cost = c.per_kb_us * bytes_kb;
  if (std::holds_alternative<net::PingRequest>(msg)) {
    return c.ping_us;  // pings measure the network, not the server
  } else if (std::holds_alternative<net::GetRequest>(msg)) {
    cost += c.get_us;
  } else if (std::holds_alternative<net::ScanRequest>(msg)) {
    cost += c.scan_base_us;
  } else if (const auto* put = std::get_if<net::PutRequest>(&msg)) {
    cost += c.put_us;
    if (options_.durable) cost += c.wal_sync_us;
    if (put->mode == net::PutMode::kMav) {
      cost += c.mav_extra_put_us;
      cost += c.mav_metadata_per_kb_us *
              static_cast<double>(put->write.SibBytes()) / 1024.0;
      if (c.pending_contention_scale > 0) {
        cost *= 1.0 + static_cast<double>(PendingCount()) /
                          c.pending_contention_scale;
      }
    }
  } else if (std::holds_alternative<net::NotifyRequest>(msg)) {
    cost += c.notify_us;
  } else if (const auto* ae = std::get_if<net::AntiEntropyBatch>(&msg)) {
    cost += c.ae_batch_us +
            c.ae_record_us * static_cast<double>(ae->writes.size());
    if (options_.durable) cost += c.wal_sync_us;  // group commit per batch
    if (ae->mode == net::PutMode::kMav) {
      cost += c.mav_extra_put_us * static_cast<double>(ae->writes.size()) / 2;
      size_t sib_bytes = 0;
      for (const auto& w : ae->writes) sib_bytes += w.SibBytes();
      cost += c.mav_metadata_per_kb_us * static_cast<double>(sib_bytes) /
              1024.0;
    }
  } else if (const auto* digest = std::get_if<net::DigestRequest>(&msg)) {
    cost += c.ae_batch_us +
            0.2 * static_cast<double>(digest->latest.size());
  } else if (std::holds_alternative<net::LockRequest>(msg) ||
             std::holds_alternative<net::UnlockRequest>(msg)) {
    cost += c.lock_us;
  } else {
    cost += 1;  // acks etc.
  }
  return cost;
}

void ReplicaServer::HandleMessage(const Envelope& env) {
  double cost = CostOf(env.msg);
  stats_.busy_us += cost;
  sim::SimTime start = std::max(sim_.Now(), busy_until_);
  busy_until_ = start + static_cast<sim::Duration>(std::llround(cost));
  sim_.At(busy_until_, [this, env]() { Process(env); });
}

void ReplicaServer::Process(const Envelope& env) {
  if (std::holds_alternative<net::PingRequest>(env.msg)) {
    Reply(env, net::PingResponse{});
  } else if (std::holds_alternative<net::GetRequest>(env.msg)) {
    HandleGet(env);
  } else if (std::holds_alternative<net::ScanRequest>(env.msg)) {
    HandleScan(env);
  } else if (std::holds_alternative<net::PutRequest>(env.msg)) {
    HandlePut(env);
  } else if (const auto* notify = std::get_if<net::NotifyRequest>(&env.msg)) {
    HandleNotify(*notify);
  } else if (std::holds_alternative<net::AntiEntropyBatch>(env.msg)) {
    HandleAntiEntropy(env);
  } else if (const auto* ack = std::get_if<net::AntiEntropyAck>(&env.msg)) {
    inflight_.erase(ack->batch_id);
  } else if (std::holds_alternative<net::DigestRequest>(env.msg)) {
    HandleDigest(env);
  } else if (std::holds_alternative<net::LockRequest>(env.msg)) {
    HandleLock(env);
  } else if (std::holds_alternative<net::UnlockRequest>(env.msg)) {
    HandleUnlock(env);
  }
}

// --------------------------------------------------------------------------
// Reads
// --------------------------------------------------------------------------

void ReplicaServer::HandleGet(const Envelope& env) {
  const auto& req = std::get<net::GetRequest>(env.msg);
  stats_.gets++;
  net::GetResponse resp;

  auto fill = [&resp](const ReadVersion& rv) {
    resp.found = rv.found;
    resp.value = rv.value;
    resp.ts = rv.ts;
    resp.sibs = rv.sibs;
    resp.deps = rv.deps;
  };

  if (!req.required) {
    fill(good_.Read(req.key, req.bound));
    Reply(env, std::move(resp));
    return;
  }

  // Appendix B GET(k, ts_required): prefer a good version at or above the
  // bound; otherwise serve the exact pending version; otherwise ask the
  // client to retry (kNotYet).
  auto latest_good = good_.LatestTimestamp(req.key);
  if (latest_good && *latest_good >= *req.required) {
    fill(good_.Read(req.key, req.bound));
    Reply(env, std::move(resp));
    return;
  }
  auto by_key = pending_by_key_.find(req.key);
  if (by_key != pending_by_key_.end()) {
    auto exact = by_key->second.find(*req.required);
    if (exact != by_key->second.end()) {
      const WriteRecord& w = exact->second;
      resp.found = true;
      resp.value = w.value;
      resp.ts = w.ts;
      resp.sibs = w.sibs;
      resp.deps = w.deps;
      stats_.gets_from_pending++;
      Reply(env, std::move(resp));
      return;
    }
  }
  stats_.gets_not_yet++;
  resp.code = net::GetCode::kNotYet;
  Reply(env, std::move(resp));
}

void ReplicaServer::HandleScan(const Envelope& env) {
  const auto& req = std::get<net::ScanRequest>(env.msg);
  stats_.scans++;
  net::ScanResponse resp;
  for (auto& [key, rv] : good_.Scan(req.lo, req.hi, req.bound)) {
    net::ScanResponse::Item item;
    item.key = key;
    item.value = std::move(rv.value);
    item.ts = rv.ts;
    item.sibs = std::move(rv.sibs);
    resp.items.push_back(std::move(item));
  }
  // Post-hoc service charge for result size (volume known only now).
  double extra = options_.costs.scan_item_us *
                 static_cast<double>(resp.items.size());
  stats_.busy_us += extra;
  busy_until_ = std::max(busy_until_, sim_.Now()) +
                static_cast<sim::Duration>(std::llround(extra));
  Reply(env, std::move(resp));
}

// --------------------------------------------------------------------------
// Writes
// --------------------------------------------------------------------------

void ReplicaServer::HandlePut(const Envelope& env) {
  const auto& req = std::get<net::PutRequest>(env.msg);
  stats_.puts++;
  if (req.mode == net::PutMode::kEventual) {
    InstallEventual(req.write, /*gossip=*/true);
  } else {
    InstallMav(req.write, /*gossip=*/true);
  }
  Reply(env, net::PutResponse{true});
}

void ReplicaServer::PersistWrite(const WriteRecord& w, bool pending) {
  if (!disk_) return;
  std::string sk(pending ? kPendingPrefix : kGoodPrefix);
  sk += version::StorageKeyFor(w.key, w.ts);
  (void)disk_->Put(sk, version::EncodeWriteRecord(w));
}

void ReplicaServer::EraseePersistedPending(const WriteRecord& w) {
  if (!disk_) return;
  std::string sk(kPendingPrefix);
  sk += version::StorageKeyFor(w.key, w.ts);
  (void)disk_->Delete(sk);
}

void ReplicaServer::InstallEventual(const WriteRecord& w, bool gossip) {
  bool inserted = good_.Apply(w);
  if (!inserted) return;  // duplicate delivery (anti-entropy redundancy)
  PersistWrite(w, /*pending=*/false);
  MaybeGcVersions(w.key);
  if (gossip) EnqueueGossip(w, net::PutMode::kEventual, /*except=*/id());
}

void ReplicaServer::MaybeGcVersions(const Key& key) {
  size_t limit = options_.max_versions_per_key;
  if (limit == 0) return;
  if (good_.VersionCountFor(key) <= limit) return;
  // Convergence-safe GC: only versions older than the newest Put can be
  // dropped — a late write below a Put is shadowed by it on every replica,
  // so local pruning cannot make replicas diverge. Delta chains with no
  // newer Put are retained (a coordinated stability frontier would be
  // needed to fold them; Section 5.1.2's "asynchronously garbage
  // collected").
  //
  // Cost control: the common case (a Put within the newest `limit`
  // versions) is O(limit); deep scans of long delta chains are amortized.
  size_t count = good_.VersionCountFor(key);
  auto newest_put = good_.NewestPutWithin(key, limit);
  if (!newest_put) {
    if (count % 256 != 0) return;  // amortize deep walks on delta chains
    newest_put = good_.NewestPutTimestamp(key);
    if (!newest_put) return;
  }
  auto horizon = good_.NthNewestTimestamp(key, limit - 1);
  if (!horizon) return;
  good_.DropVersionsBefore(key, std::min(*horizon, *newest_put));
}

void ReplicaServer::InstallMav(const WriteRecord& w, bool gossip) {
  // Duplicate suppression: already promoted or already pending.
  if (good_.Contains(w.key, w.ts)) return;
  auto& per_key = pending_by_key_[w.key];
  if (per_key.count(w.ts)) return;

  // Pending invalidation (Appendix B optimization): a good version newer
  // than this write supersedes it for every read path, so the write itself
  // can be dropped — but we still ack so siblings can promote elsewhere.
  auto latest_good = good_.LatestTimestamp(w.key);
  bool stale = options_.gc_stale_pending && latest_good &&
               *latest_good > w.ts;
  if (stale) {
    stats_.stale_pending_dropped++;
  } else {
    per_key.emplace(w.ts, w);
  }
  if (per_key.empty()) pending_by_key_.erase(w.key);

  auto& txn = pending_txns_[w.ts];
  if (txn.sibs.empty()) {
    txn.sibs = w.sibs.empty() ? std::vector<Key>{w.key} : w.sibs;
    auto early = early_acks_.find(w.ts);
    if (early != early_acks_.end()) {
      txn.acks = std::move(early->second);
      early_acks_.erase(early);
    }
  }
  txn.writes.push_back(w);
  if (!stale) PersistWrite(w, /*pending=*/true);
  if (gossip) EnqueueGossip(w, net::PutMode::kMav, /*except=*/id());
  MaybeAck(w.ts);
  MaybePromote(w.ts);
}

// --------------------------------------------------------------------------
// MAV pending-stable machinery (Appendix B)
// --------------------------------------------------------------------------

std::set<net::NodeId> ReplicaServer::AckSetFor(
    const std::vector<Key>& sibs) const {
  std::set<net::NodeId> out;
  for (const auto& k : sibs) {
    for (net::NodeId r : partitioner_->ReplicasOf(k)) out.insert(r);
  }
  return out;
}

std::vector<Key> ReplicaServer::LocalKeysOf(
    const std::vector<Key>& sibs) const {
  std::vector<Key> out;
  for (const auto& k : sibs) {
    auto replicas = partitioner_->ReplicasOf(k);
    if (std::find(replicas.begin(), replicas.end(), id()) != replicas.end()) {
      out.push_back(k);
    }
  }
  return out;
}

void ReplicaServer::MaybeAck(const Timestamp& ts) {
  auto it = pending_txns_.find(ts);
  if (it == pending_txns_.end() || it->second.acked_by_self) return;
  PendingTxn& txn = it->second;
  // Ack once every sibling key this server replicates has arrived.
  std::vector<Key> local = LocalKeysOf(txn.sibs);
  for (const auto& k : local) {
    bool have = false;
    for (const auto& w : txn.writes) {
      if (w.key == k) {
        have = true;
        break;
      }
    }
    if (!have) return;
  }
  txn.acked_by_self = true;
  for (net::NodeId peer : AckSetFor(txn.sibs)) {
    if (peer == id()) {
      txn.acks.insert(id());
    } else {
      SendOneWay(peer, net::NotifyRequest{ts, id()});
    }
  }
}

void ReplicaServer::HandleNotify(const net::NotifyRequest& req) {
  stats_.notifies++;
  auto it = pending_txns_.find(req.ts);
  if (it == pending_txns_.end()) {
    if (promoted_.count(req.ts)) {
      // We already promoted this transaction and dropped its ack state; the
      // sender is catching up after a partition — answer so it can promote.
      if (req.sender != id()) {
        SendOneWay(req.sender, net::NotifyRequest{req.ts, id()});
      }
      return;
    }
    // The ack raced ahead of the write itself; remember it.
    if (early_acks_.size() > 100000) early_acks_.clear();  // backstop
    early_acks_[req.ts].insert(req.sender);
    return;
  }
  it->second.acks.insert(req.sender);
  MaybePromote(req.ts);
}

void ReplicaServer::MaybePromote(const Timestamp& ts) {
  auto it = pending_txns_.find(ts);
  if (it == pending_txns_.end()) return;
  PendingTxn& txn = it->second;
  std::set<net::NodeId> expected = AckSetFor(txn.sibs);
  for (net::NodeId n : expected) {
    if (!txn.acks.count(n)) return;
  }
  // Pending-stable everywhere: reveal.
  for (const auto& w : txn.writes) {
    if (good_.Apply(w)) PersistWrite(w, /*pending=*/false);
    MaybeGcVersions(w.key);
    EraseePersistedPending(w);
    auto by_key = pending_by_key_.find(w.key);
    if (by_key != pending_by_key_.end()) {
      by_key->second.erase(w.ts);
      if (by_key->second.empty()) pending_by_key_.erase(by_key);
    }
  }
  stats_.mav_promotions++;
  pending_txns_.erase(it);
  promoted_.insert(ts);
  promoted_fifo_.push_back(ts);
  if (promoted_fifo_.size() > 100000) {
    promoted_.erase(promoted_fifo_.front());
    promoted_fifo_.pop_front();
  }
}

void ReplicaServer::RenotifyTick() {
  // Liveness under partitions: keep re-broadcasting our ack for transactions
  // still pending so a healed network eventually promotes them.
  for (auto& [ts, txn] : pending_txns_) {
    if (!txn.acked_by_self) continue;
    for (net::NodeId peer : AckSetFor(txn.sibs)) {
      if (peer != id() && !txn.acks.count(peer)) {
        SendOneWay(peer, net::NotifyRequest{ts, id()});
      }
    }
  }
  sim_.After(options_.renotify_interval, [this]() { RenotifyTick(); });
}

// --------------------------------------------------------------------------
// Anti-entropy
// --------------------------------------------------------------------------

void ReplicaServer::EnqueueGossip(const WriteRecord& w, net::PutMode mode,
                                  net::NodeId except) {
  for (net::NodeId peer : partitioner_->ReplicasOf(w.key)) {
    if (peer == id() || peer == except) continue;
    outbox_[peer].push_back(OutboxItem{w, mode});
  }
}

void ReplicaServer::FlushOutboxes() {
  for (auto& [peer, queue] : outbox_) {
    while (!queue.empty()) {
      net::AntiEntropyBatch batch;
      batch.batch_id = (static_cast<uint64_t>(id()) << 40) | next_batch_id_++;
      batch.mode = queue.front().mode;
      while (!queue.empty() && queue.front().mode == batch.mode &&
             batch.writes.size() < options_.ae_batch_max) {
        batch.writes.push_back(std::move(queue.front().write));
        queue.pop_front();
      }
      stats_.ae_records_out += batch.writes.size();
      inflight_.emplace(
          batch.batch_id,
          InFlightBatch{peer, batch, sim_.Now(),
                        options_.ae_retry_interval});
      SendOneWay(peer, std::move(batch));
    }
  }
  // Retransmit stragglers (lost to partitions) with exponential backoff.
  constexpr sim::Duration kMaxBackoff = 8 * sim::kSecond;
  for (auto& [batch_id, flight] : inflight_) {
    if (sim_.Now() - flight.sent_at >= flight.backoff) {
      flight.sent_at = sim_.Now();
      flight.backoff = std::min(flight.backoff * 2, kMaxBackoff);
      SendOneWay(flight.peer, flight.batch);
    }
  }
  sim_.After(options_.ae_flush_interval, [this]() { FlushOutboxes(); });
}

void ReplicaServer::HandleAntiEntropy(const Envelope& env) {
  const auto& batch = std::get<net::AntiEntropyBatch>(env.msg);
  stats_.ae_batches_in++;
  SendOneWay(env.from, net::AntiEntropyAck{batch.batch_id});
  if (applied_batches_.count(batch.batch_id)) return;  // retransmit dupe
  applied_batches_.insert(batch.batch_id);
  applied_batches_fifo_.push_back(batch.batch_id);
  if (applied_batches_fifo_.size() > kAppliedBatchMemory) {
    applied_batches_.erase(applied_batches_fifo_.front());
    applied_batches_fifo_.pop_front();
  }
  for (const auto& w : batch.writes) {
    stats_.ae_records_in++;
    if (batch.mode == net::PutMode::kEventual) {
      InstallEventual(w, /*gossip=*/true);
    } else {
      InstallMav(w, /*gossip=*/true);
    }
  }
}

std::vector<net::NodeId> ReplicaServer::PeerReplicas() const {
  // Replicas share shards key-wise; with cluster-per-copy sharding, the peers
  // for every key this server holds are the same set. Derive them from any
  // key we store — or, absent data, from a probe of the partitioner using a
  // synthetic key is not possible, so fall back to scanning the digest.
  std::set<net::NodeId> peers;
  good_.ForEachVersion([this, &peers](const WriteRecord& w) {
    if (!peers.empty()) return;  // one key suffices: peer set is shard-wide
    for (net::NodeId r : partitioner_->ReplicasOf(w.key)) {
      if (r != id()) peers.insert(r);
    }
  });
  return std::vector<net::NodeId>(peers.begin(), peers.end());
}

void ReplicaServer::DigestSyncTick() {
  auto peers = PeerReplicas();
  if (!peers.empty()) {
    net::NodeId peer = peers[rng_.NextBelow(peers.size())];
    net::DigestRequest digest;
    digest.latest = good_.Digest();
    SendOneWay(peer, std::move(digest));
  }
  sim_.After(options_.digest_sync_interval, [this]() { DigestSyncTick(); });
}

void ReplicaServer::HandleDigest(const net::Envelope& env) {
  const auto& req = std::get<net::DigestRequest>(env.msg);
  // Send back every version the requester is missing, in bounded batches
  // (unacknowledged one-shot batches: the requester's next digest will
  // re-trigger anything lost).
  std::map<Key, Timestamp> theirs;
  for (const auto& [k, ts] : req.latest) theirs.emplace(k, ts);
  net::AntiEntropyBatch batch;
  batch.batch_id = (static_cast<uint64_t>(id()) << 40) | next_batch_id_++;
  auto flush = [this, &env, &batch]() {
    if (batch.writes.empty()) return;
    stats_.ae_records_out += batch.writes.size();
    SendOneWay(env.from, std::move(batch));
    batch = net::AntiEntropyBatch();
    batch.batch_id = (static_cast<uint64_t>(id()) << 40) | next_batch_id_++;
  };
  good_.ForEachVersion([&](const WriteRecord& w) {
    auto it = theirs.find(w.key);
    if (it != theirs.end() && w.ts <= it->second) return;  // they have newer
    batch.writes.push_back(w);
    if (batch.writes.size() >= options_.ae_batch_max) flush();
  });
  flush();

  // Reverse direction: if the initiator advertises data we lack, answer
  // with our own digest (one round only) so it pushes the difference back.
  if (req.reply_allowed) {
    bool missing = false;
    for (const auto& [k, ts] : req.latest) {
      auto ours = good_.LatestTimestamp(k);
      if (!ours || *ours < ts) {
        missing = true;
        break;
      }
    }
    if (missing) {
      net::DigestRequest mine;
      mine.latest = good_.Digest();
      mine.reply_allowed = false;
      SendOneWay(env.from, std::move(mine));
    }
  }
}

// --------------------------------------------------------------------------
// Lock service (strict 2PL with wait-die)
// --------------------------------------------------------------------------

void ReplicaServer::HandleLock(const Envelope& env) {
  const auto& req = std::get<net::LockRequest>(env.msg);
  LockState& state = locks_[req.key];

  auto grant = [&]() {
    if (req.exclusive) {
      state.s_holders.erase(req.txn);  // S->X upgrade
      state.x_holder = req.txn;
    } else {
      state.s_holders.insert(req.txn);
    }
    stats_.locks_granted++;
    Reply(env, net::LockResponse{/*granted=*/true, /*must_abort=*/false});
  };

  // Re-entrant / already-held cases.
  if (state.x_holder == req.txn) {
    grant();
    return;
  }
  if (!req.exclusive && state.s_holders.count(req.txn)) {
    grant();
    return;
  }

  // Conflicting transactions: current incompatible holders, plus queued
  // exclusive waiters (new shared requests must not overtake a waiting
  // writer — otherwise a contended upgrade starves forever behind an
  // ever-replenished reader population).
  std::set<Timestamp> conflicts;
  if (req.exclusive) {
    if (state.x_holder) conflicts.insert(*state.x_holder);
    for (const auto& s : state.s_holders) {
      if (s != req.txn) conflicts.insert(s);
    }
    // Sole-shared-holder upgrade is permitted.
    if (!state.x_holder && state.s_holders.size() == 1 &&
        state.s_holders.count(req.txn)) {
      conflicts.clear();
    }
  } else {
    if (state.x_holder) conflicts.insert(*state.x_holder);
  }
  for (const auto& w : state.waiters) {
    if (w.exclusive && w.txn != req.txn) conflicts.insert(w.txn);
  }
  if (conflicts.empty()) {
    grant();
    return;
  }

  // Wait-die: the requester may wait only if it is older (smaller
  // timestamp) than every conflicting transaction; otherwise it dies.
  bool older_than_all = req.txn < *conflicts.begin();
  if (older_than_all) {
    stats_.locks_queued++;
    state.waiters.push_back(Waiter{req.txn, req.exclusive, env});
  } else {
    stats_.lock_deaths++;
    Reply(env, net::LockResponse{/*granted=*/false, /*must_abort=*/true});
  }
}

void ReplicaServer::HandleUnlock(const Envelope& env) {
  const auto& req = std::get<net::UnlockRequest>(env.msg);
  for (const auto& key : req.keys) {
    auto it = locks_.find(key);
    if (it == locks_.end()) continue;
    LockState& state = it->second;
    if (state.x_holder == req.txn) state.x_holder.reset();
    state.s_holders.erase(req.txn);
    // Also purge this txn from the wait queue (abort cleanup).
    for (auto w = state.waiters.begin(); w != state.waiters.end();) {
      w = (w->txn == req.txn) ? state.waiters.erase(w) : std::next(w);
    }
    GrantWaiters(key);
    if (!state.x_holder && state.s_holders.empty() && state.waiters.empty()) {
      locks_.erase(it);
    }
  }
}

void ReplicaServer::GrantWaiters(const Key& key) {
  auto it = locks_.find(key);
  if (it == locks_.end()) return;
  LockState& state = it->second;
  while (!state.waiters.empty()) {
    Waiter& w = state.waiters.front();
    // Re-entrant compatibility: a waiter whose transaction already holds the
    // lock (e.g. a duplicate request after an RPC timeout raced with the
    // original grant) must be granted, not wedged behind itself.
    bool compatible;
    if (w.exclusive) {
      compatible = (!state.x_holder || *state.x_holder == w.txn) &&
                   (state.s_holders.empty() ||
                    (state.s_holders.size() == 1 &&
                     state.s_holders.count(w.txn)));
    } else {
      compatible = !state.x_holder || *state.x_holder == w.txn;
    }
    if (!compatible) break;
    if (w.exclusive) {
      state.s_holders.erase(w.txn);
      state.x_holder = w.txn;
    } else {
      state.s_holders.insert(w.txn);
    }
    stats_.locks_granted++;
    Reply(w.request, net::LockResponse{/*granted=*/true, false});
    state.waiters.pop_front();
    if (w.exclusive) break;  // X admits nobody else
  }
}

// --------------------------------------------------------------------------
// Durability / recovery
// --------------------------------------------------------------------------

void ReplicaServer::Crash() {
  good_ = version::VersionedStore();
  pending_by_key_.clear();
  pending_txns_.clear();
  early_acks_.clear();
  promoted_.clear();
  promoted_fifo_.clear();
  outbox_.clear();
  inflight_.clear();
  applied_batches_.clear();
  applied_batches_fifo_.clear();
  locks_.clear();
  busy_until_ = sim_.Now();
}

Status ReplicaServer::RecoverFromStorage() {
  if (!disk_) return Status::Unsupported("server has no storage directory");
  // Good (revealed) versions.
  HAT_RETURN_IF_ERROR(disk_->Scan(
      std::string(kGoodPrefix), std::string("g0"),
      [this](std::string_view sk, std::string_view value) {
        auto parsed = version::ParseStorageKey(sk.substr(kGoodPrefix.size()));
        if (!parsed) return;
        auto w = version::DecodeWriteRecord(parsed->first, value);
        if (w) good_.Apply(*w);
      }));
  // Pending (not yet stable) versions re-enter the MAV pipeline; acks will
  // be re-broadcast by MaybeAck/RenotifyTick.
  std::vector<WriteRecord> pending;
  HAT_RETURN_IF_ERROR(disk_->Scan(
      std::string(kPendingPrefix), std::string("p0"),
      [&pending](std::string_view sk, std::string_view value) {
        auto parsed =
            version::ParseStorageKey(sk.substr(kPendingPrefix.size()));
        if (!parsed) return;
        auto w = version::DecodeWriteRecord(parsed->first, value);
        if (w) pending.push_back(std::move(*w));
      }));
  for (const auto& w : pending) InstallMav(w, /*gossip=*/true);
  return Status::Ok();
}

}  // namespace hat::server
