#include "hat/server/replica_server.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "hat/version/wire.h"

namespace hat::server {

using net::Envelope;
using net::Message;

version::ShardedStore::Options ReplicaServer::StoreOptions(
    std::vector<uint32_t> owned) const {
  version::ShardedStore::Options store;
  store.shards = owned.empty() ? options_.shards_per_server : owned.size();
  store.digest_buckets = options_.digest_buckets;
  store.stride = options_.shard_placement_stride;
  // The modulus is the cluster-wide L, not a function of how many slots
  // this server holds (a post-migration shape can own more or fewer).
  store.num_logical_shards =
      options_.shards_per_server * options_.shard_placement_stride;
  store.logical_shards = std::move(owned);
  return store;
}

ReplicaServer::ReplicaServer(sim::Simulation& sim, net::Network& net,
                             net::NodeId id, ServerOptions options,
                             const Partitioner* partitioner)
    : net::RpcNode(sim, net, id),
      options_(std::move(options)),
      partitioner_(partitioner),
      executor_(sim_,
                ShardExecutor::Options{options_.shards_per_server,
                                       options_.cores_per_server,
                                       options_.costs.dispatch_us}),
      good_(StoreOptions(options_.owned_logical_shards)),
      persistence_(options_.storage_dir),
      mav_(sim_, id, partitioner_, good_, persistence_,
           MavCoordinator::Options{options_.gc_stale_pending,
                                   options_.renotify_interval},
           [this](net::NodeId to, Message m, obs::TraceContext t) {
             SendOneWay(to, std::move(m), t);
           },
           [this](const WriteRecord& w, net::NodeId origin,
                  obs::TraceContext t) {
             anti_entropy_.Enqueue(w, net::PutMode::kMav, origin, t);
           },
           [this](const Key& k) { MaybeGcVersions(k); }),
      anti_entropy_(
          sim_, id, partitioner_, good_,
          AntiEntropyEngine::Options{
              options_.ae_flush_interval, options_.ae_retry_interval,
              options_.digest_sync_interval, options_.ae_batch_max,
              options_.ae_batch_max_bytes, options_.ae_bucketed_digest,
              options_.ae_push_enabled, options_.ae_shard_lane_batching},
          [this](net::NodeId to, Message m, obs::TraceContext t) {
            SendOneWay(to, std::move(m), t);
          },
          [this](const WriteRecord& w, net::PutMode mode, net::NodeId from,
                 obs::TraceContext t) {
            InstallFromPeer(w, mode, from, t);
          }),
      locks_(
          [this](const Envelope& env, const net::LockResponse& resp) {
            Reply(env, resp);
          },
          options_.lock_policy),
      migrator_(
          sim_, good_,
          ShardMigrator::Options{options_.ae_batch_max,
                                 options_.ae_batch_max_bytes,
                                 options_.migration_chunk_timeout,
                                 options_.migration_catchup_interval},
          [this](net::NodeId to, Message m) { SendOneWay(to, std::move(m)); },
          [this](net::NodeId to, Message m, sim::Duration timeout,
                 ShardMigrator::RpcCallback cb) {
            Call(to, std::move(m), timeout, std::move(cb));
          },
          [this](const WriteRecord& w) {
            // Snapshot-chunk install: set-union into the staged shard plus
            // persistence, with no gossip (the records are replicated
            // state the other clusters already hold).
            if (!good_.OwnsKey(w.key)) return false;
            if (!good_.Apply(w)) return false;
            persistence_.PersistGood(good_.LogicalShardOfKey(w.key), w);
            return true;
          },
          [this](size_t slot) { EnsureLaneForSlot(slot); },
          [this]() { WriteManifestFromState(); },
          [this](uint32_t shard) { (void)persistence_.EraseShard(shard); }) {
  assert(options_.owned_logical_shards.empty() ||
         options_.owned_logical_shards.size() == options_.shards_per_server);
  if (persistence_.enabled()) {
    // Fail-fast layout guard: adopt a matching manifest's owned set (a
    // restart after migrations). An absent manifest is written fresh; a
    // mismatched or unreadable one is rewritten only while the keyspace is
    // empty — over live data it is left in place so recovery refuses
    // instead of replaying under the wrong layout.
    auto manifest = persistence_.ReadManifest();
    if (manifest.ok() &&
        manifest->shards_per_server == options_.shards_per_server &&
        manifest->stride == options_.shard_placement_stride) {
      if (!options_.owned_logical_shards.empty() &&
          manifest->owned != options_.owned_logical_shards) {
        good_ = version::ShardedStore(StoreOptions(manifest->owned));
        for (size_t s = options_.shards_per_server;
             s < good_.shard_count(); s++) {
          EnsureLaneForSlot(s);
        }
      }
    } else if (manifest.status().IsNotFound() ||
               !persistence_.HasShardData()) {
      WriteManifestFromState();
    }
  }
  mav_.Start();
  anti_entropy_.Start();
}

void ReplicaServer::EnsureLaneForSlot(size_t slot) {
  while (executor_.lane_count() <= LaneOfSlot(slot)) executor_.AddLane();
}

std::vector<uint32_t> ReplicaServer::CurrentOwned() const {
  std::vector<uint32_t> owned;
  if (!good_.explicit_placement()) return owned;
  for (size_t s = 0; s < good_.shard_count(); s++) {
    uint32_t tag = good_.LogicalTagOfSlot(s);
    if (tag != version::ShardedStore::kNoShard) owned.push_back(tag);
  }
  return owned;
}

void ReplicaServer::WriteManifestFromState() {
  if (!persistence_.enabled()) return;
  PersistenceManifest m;
  m.shards_per_server = static_cast<uint32_t>(options_.shards_per_server);
  m.stride = static_cast<uint32_t>(options_.shard_placement_stride);
  m.epoch = partitioner_ ? partitioner_->PlacementEpoch() : 0;
  m.owned = CurrentOwned();
  (void)persistence_.WriteManifest(m);
}

const ServerStats& ReplicaServer::stats() const {
  const MavStats& m = mav_.stats();
  stats_.gets_from_pending = m.gets_from_pending;
  stats_.notifies = m.notifies;
  stats_.mav_promotions = m.promotions;
  stats_.stale_pending_dropped = m.stale_pending_dropped;
  const AntiEntropyStats& ae = anti_entropy_.stats();
  stats_.ae_batches_in = ae.batches_in;
  stats_.ae_records_in = ae.records_in;
  stats_.ae_records_out = ae.records_out;
  stats_.ae_batches_out = ae.batches_out;
  stats_.ae_retransmits = ae.retransmits;
  stats_.ae_dupes_suppressed = ae.dupes_suppressed;
  stats_.ae_dedupe_rotations = ae.dedupe_rotations;
  stats_.ae_digest_ticks = ae.digest_ticks;
  stats_.ae_digest_entries_out = ae.digest_entries_out;
  stats_.ae_digest_bytes_out = ae.digest_bytes_out;
  const LockStats& l = locks_.stats();
  stats_.locks_granted = l.granted;
  stats_.locks_queued = l.queued;
  stats_.lock_deaths = l.deaths;
  const MigratorStats& mig = migrator_.stats();
  stats_.mig_snapshot_records_out = mig.snapshot_records_out;
  stats_.mig_snapshot_records_in = mig.snapshot_records_in;
  stats_.mig_catchup_records_in = mig.catchup_records_in;
  const ShardExecutorStats& ex = executor_.stats();
  stats_.busy_us = ex.busy_us;
  stats_.exec_tasks = ex.tasks;
  stats_.exec_dispatches = ex.dispatches;
  stats_.lane_busy_us = ex.lane_busy_us;
  stats_.lane_queue_depth.resize(executor_.lane_count());
  for (size_t lane = 0; lane < executor_.lane_count(); lane++) {
    stats_.lane_queue_depth[lane] = executor_.QueueDepth(lane);
  }
  stats_.queue_wait_us = ex.queue_wait_us;
  return stats_;
}

// --------------------------------------------------------------------------
// Service-time classification (the per-message-type ServiceCosts table)
// --------------------------------------------------------------------------

namespace {
/// Exhaustive visitor: every message type must appear here. Adding a type
/// to net::Message without classifying it is a compile error, not a silent
/// 1µs default.
template <class... Ts>
struct CostTable : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
CostTable(Ts...) -> CostTable<Ts...>;
}  // namespace

const std::vector<ShardExecutor::Work>& ReplicaServer::PlanFor(
    const Message& msg) const {
  const ServiceCosts& c = options_.costs;
  const size_t global = executor_.global_lane();
  const double kb = static_cast<double>(net::WireBytes(msg)) / 1024.0;

  plan_scratch_.clear();
  auto add = [this](size_t lane, double cost) {
    plan_scratch_.push_back({lane, cost});
  };
  // Responses are consumed by RpcNode::OnMessage and never dispatched here.
  auto never = [&](const char* what) {
    (void)what;
    assert(!"response message reached the server cost table");
    add(global, 0);
  };

  std::visit(
      CostTable{
          [&](const net::PingRequest&) {
            add(global, c.ping_us);  // pings measure the network
          },
          [&](const net::GetRequest& get) {
            add(LaneOf(get.key), c.get_us + c.per_kb_us * kb);
          },
          [&](const net::ScanRequest&) {
            // Fixed cost only: the per-item charge is added by HandleScan,
            // to each contributing shard's lane, once the result size is
            // known — so it delays the reply (and large scans cannot hide
            // behind an already-scheduled response).
            add(global, c.scan_base_us + c.per_kb_us * kb);
          },
          [&](const net::PutRequest& put) {
            double cost = c.put_us + c.per_kb_us * kb;
            if (options_.durable) cost += c.wal_sync_us;
            if (put.mode == net::PutMode::kMav) {
              // Both backend puts (install into pending, promotion's
              // pending -> good reveal) touch the same key, so both are
              // charged here, to the key's shard lane — identical totals
              // to the single-service-center model, which keeps C = 1
              // reproducing its numbers exactly.
              cost += c.mav_extra_put_us;
              cost += c.mav_metadata_per_kb_us *
                      static_cast<double>(put.write.SibBytes()) / 1024.0;
              if (c.pending_contention_scale > 0) {
                cost *= 1.0 + static_cast<double>(mav_.PendingWriteCount()) /
                                  c.pending_contention_scale;
              }
            }
            add(LaneOf(put.write.key), cost);
          },
          [&](const net::NotifyRequest&) {
            add(global, c.notify_us + c.per_kb_us * kb);
          },
          [&](const net::AntiEntropyBatch& batch) {
            // Batch overhead (and the group-commit WAL sync) lands on the
            // owning shard's lane when the batch is shard-tagged (shard-lane
            // batching: the whole batch IS that shard's work), and on the
            // global lane otherwise — untagged batches can span shards, so
            // their header is cross-shard coordination. Record application
            // is charged to each record's owning shard either way; the
            // accumulation is per *lane* (records of a shard this server no
            // longer hosts are forwarding work on the global lane).
            double overhead = c.ae_batch_us + c.per_kb_us * kb;
            if (options_.durable) overhead += c.wal_sync_us;
            size_t overhead_lane = global;
            if (batch.shard != net::kNoShardTag) {
              if (auto slot = good_.SlotOfLogical(batch.shard)) {
                overhead_lane = LaneOfSlot(*slot);
                stats_.ae_shard_lane_batches++;
              }
            }
            add(overhead_lane, overhead);
            shard_cost_scratch_.assign(executor_.lane_count(), 0);
            for (const auto& w : batch.writes) {
              double cost = c.ae_record_us;
              if (batch.mode == net::PutMode::kMav) {
                cost += c.mav_extra_put_us / 2;
                cost += c.mav_metadata_per_kb_us *
                        static_cast<double>(w.SibBytes()) / 1024.0;
              }
              shard_cost_scratch_[LaneOf(w.key)] += cost;
            }
            for (size_t lane = 0; lane < shard_cost_scratch_.size(); lane++) {
              if (shard_cost_scratch_[lane] > 0) {
                add(lane, shard_cost_scratch_[lane]);
              }
            }
          },
          [&](const net::AntiEntropyAck&) {
            add(global, c.ack_us + c.per_kb_us * kb);
          },
          [&](const net::DigestRequest& digest) {
            double cost = c.ae_batch_us + c.per_kb_us * kb +
                          0.2 * static_cast<double>(digest.latest.size());
            // Bucket-scoped requests walk (and back-fill from) one shard;
            // flat digests span the whole store. digest.shard is a logical
            // shard tag — resolve it to the hosting slot's lane.
            std::optional<size_t> slot =
                digest.buckets.empty() ? std::optional<size_t>()
                                       : good_.SlotOfLogical(digest.shard);
            add(slot ? LaneOfSlot(*slot) : global, cost);
          },
          [&](const net::BucketDigest& bd) {
            // Comparing B hashes is far cheaper than per-key processing.
            double cost = c.ae_batch_us + c.per_kb_us * kb +
                          0.02 * static_cast<double>(bd.hashes.size());
            auto slot = good_.SlotOfLogical(bd.shard);
            add(slot ? LaneOfSlot(*slot) : global, cost);
          },
          [&](const net::ShardDigest& sd) {
            add(global, c.ae_batch_us + c.per_kb_us * kb +
                            0.02 * static_cast<double>(sd.hashes.size()));
          },
          [&](const net::ShardSnapshotRequest& req) {
            // Freezing the outgoing shard's version set is a full shard
            // scan, charged to that shard's lane.
            auto slot = good_.SlotOfLogical(req.shard);
            double cost = c.ae_batch_us + c.per_kb_us * kb;
            if (slot) {
              cost += c.scan_item_us *
                      static_cast<double>(good_.shard(*slot).VersionCount());
              add(LaneOfSlot(*slot), cost);
            } else {
              add(global, cost);
            }
          },
          [&](const net::ShardSnapshotChunk& chunk) {
            // Chunk overhead like an anti-entropy batch; record application
            // charged to the staged (moving) shard's lane, so migration
            // work queues behind — and is queued behind by — that shard's
            // regular traffic instead of stalling the whole server.
            double overhead = c.ae_batch_us + c.per_kb_us * kb;
            if (options_.durable) overhead += c.wal_sync_us;
            add(global, overhead);
            if (!chunk.writes.empty()) {
              auto slot = good_.SlotOfLogical(chunk.shard);
              add(slot ? LaneOfSlot(*slot) : global,
                  c.ae_record_us * static_cast<double>(chunk.writes.size()));
            }
          },
          [&](const net::ClientBatchRequest& batch) {
            // One envelope header + (for durable installs) ONE WAL group
            // commit for the whole batch — the client-side amortization win.
            // Each op still pays its full get/put cost on its key's shard
            // lane, so batching shrinks per-op overhead, not per-op work.
            double overhead = c.client_batch_us + c.per_kb_us * kb;
            bool any_put = false;
            shard_cost_scratch_.assign(executor_.lane_count(), 0);
            for (const auto& op : batch.ops) {
              std::visit(
                  [&](const auto& o) {
                    using O = std::decay_t<decltype(o)>;
                    if constexpr (std::is_same_v<O, net::PutRequest>) {
                      any_put = true;
                      double cost = c.put_us;
                      if (o.mode == net::PutMode::kMav) {
                        cost += c.mav_extra_put_us;
                        cost += c.mav_metadata_per_kb_us *
                                static_cast<double>(o.write.SibBytes()) /
                                1024.0;
                        if (c.pending_contention_scale > 0) {
                          cost *= 1.0 +
                                  static_cast<double>(
                                      mav_.PendingWriteCount()) /
                                      c.pending_contention_scale;
                        }
                      }
                      shard_cost_scratch_[LaneOf(o.write.key)] += cost;
                    } else {
                      shard_cost_scratch_[LaneOf(o.key)] += c.get_us;
                    }
                  },
                  op);
            }
            if (options_.durable && any_put) overhead += c.wal_sync_us;
            add(global, overhead);
            for (size_t lane = 0; lane < shard_cost_scratch_.size(); lane++) {
              if (shard_cost_scratch_[lane] > 0) {
                add(lane, shard_cost_scratch_[lane]);
              }
            }
          },
          [&](const net::LockRequest&) {
            add(global, c.lock_us + c.per_kb_us * kb);
          },
          [&](const net::UnlockRequest&) {
            add(global, c.lock_us + c.per_kb_us * kb);
          },
          [&](const net::PingResponse&) { never("PingResponse"); },
          [&](const net::PutResponse&) { never("PutResponse"); },
          [&](const net::GetResponse&) { never("GetResponse"); },
          [&](const net::ScanResponse&) { never("ScanResponse"); },
          [&](const net::LockResponse&) { never("LockResponse"); },
          [&](const net::ShardSnapshotAck&) { never("ShardSnapshotAck"); },
          [&](const net::ClientBatchResponse&) {
            never("ClientBatchResponse");
          },
      },
      msg);
  return plan_scratch_;
}

void ReplicaServer::HandleMessage(const Envelope& env) {
  // env.trace (active only for sampled transactions) flows into the
  // executor so a traced request's queue-wait and execution are spans.
  executor_.SubmitAll(PlanFor(env.msg), [this, env]() { Process(env); },
                      env.trace);
}

void ReplicaServer::Process(const Envelope& env) {
  if (std::holds_alternative<net::PingRequest>(env.msg)) {
    Reply(env, net::PingResponse{});
  } else if (std::holds_alternative<net::GetRequest>(env.msg)) {
    HandleGet(env);
  } else if (std::holds_alternative<net::ScanRequest>(env.msg)) {
    HandleScan(env);
  } else if (std::holds_alternative<net::PutRequest>(env.msg)) {
    HandlePut(env);
  } else if (std::holds_alternative<net::ClientBatchRequest>(env.msg)) {
    HandleClientBatch(env);
  } else if (const auto* notify = std::get_if<net::NotifyRequest>(&env.msg)) {
    mav_.HandleNotify(*notify);
  } else if (const auto* batch = std::get_if<net::AntiEntropyBatch>(&env.msg)) {
    // All of a batch's installs share one durable group commit (matching
    // the single wal_sync_us the cost table charges the batch).
    if (options_.durable) stats_.wal_group_commits++;
    persistence_.GroupCommit(
        [&]() { anti_entropy_.HandleBatch(*batch, env.from, env.trace); });
    if (env.trace.active() && tracer_ != nullptr && tracer_->enabled()) {
      obs::Span s;
      s.trace_id = env.trace.trace_id;
      s.span_id = tracer_->NewSpanId();
      s.parent_id = env.trace.span_id;
      s.kind = obs::SpanKind::kAeApply;
      s.node = id();
      s.start_us = sim_.Now();
      s.end_us = sim_.Now();
      s.arg = batch->writes.size();
      tracer_->Record(s);
    }
  } else if (const auto* ack = std::get_if<net::AntiEntropyAck>(&env.msg)) {
    anti_entropy_.HandleAck(*ack);
  } else if (const auto* digest = std::get_if<net::DigestRequest>(&env.msg)) {
    anti_entropy_.HandleDigest(*digest, env.from);
  } else if (const auto* bd = std::get_if<net::BucketDigest>(&env.msg)) {
    anti_entropy_.HandleBucketDigest(*bd, env.from);
  } else if (const auto* sd = std::get_if<net::ShardDigest>(&env.msg)) {
    anti_entropy_.HandleShardDigest(*sd, env.from);
  } else if (const auto* lock = std::get_if<net::LockRequest>(&env.msg)) {
    locks_.Acquire(env, *lock);
  } else if (const auto* unlock = std::get_if<net::UnlockRequest>(&env.msg)) {
    locks_.Release(*unlock);
  } else if (const auto* sreq =
                 std::get_if<net::ShardSnapshotRequest>(&env.msg)) {
    migrator_.HandleSnapshotRequest(*sreq, env.from);
  } else if (const auto* chunk =
                 std::get_if<net::ShardSnapshotChunk>(&env.msg)) {
    Reply(env, migrator_.HandleChunk(*chunk));
  }
}

// --------------------------------------------------------------------------
// Reads
// --------------------------------------------------------------------------

net::GetResponse ReplicaServer::DoGet(const net::GetRequest& req) {
  stats_.gets++;
  net::GetResponse resp;

  if (!ServesKey(req.key)) {
    // The key's shard migrated away (or is still staging here): a
    // stale-epoch client must refresh its routing and retry at the owner.
    stats_.wrong_shard_replies++;
    resp.code = net::GetCode::kWrongShard;
    return resp;
  }

  auto fill = [&resp](const ReadVersion& rv) {
    resp.found = rv.found;
    resp.value = rv.value;
    resp.ts = rv.ts;
    resp.sibs = rv.sibs;
    resp.deps = rv.deps;
  };

  if (!req.required) {
    fill(good_.Read(req.key, req.bound));
    return resp;
  }

  // Appendix B GET(k, ts_required): prefer a good version at or above the
  // bound; otherwise serve the exact pending version; otherwise ask the
  // client to retry (kNotYet).
  auto latest_good = good_.LatestTimestamp(req.key);
  if (latest_good && *latest_good >= *req.required) {
    fill(good_.Read(req.key, req.bound));
    return resp;
  }
  if (const WriteRecord* w = mav_.PendingVersion(req.key, *req.required)) {
    resp.found = true;
    resp.value = w->value;
    resp.ts = w->ts;
    resp.sibs = w->sibs;
    resp.deps = w->deps;
    return resp;
  }
  stats_.gets_not_yet++;
  resp.code = net::GetCode::kNotYet;
  return resp;
}

void ReplicaServer::HandleGet(const Envelope& env) {
  Reply(env, DoGet(std::get<net::GetRequest>(env.msg)));
}

void ReplicaServer::HandleScan(const Envelope& env) {
  const auto& req = std::get<net::ScanRequest>(env.msg);
  stats_.scans++;
  net::ScanResponse resp;
  // Scatter-gather scans take each server's owned slots; a migrating shard
  // must be served by exactly one side or the merged result double-counts
  // its keys. Pre-cutover that is the source (the destination's copy is
  // staging); post-cutover it is the destination (the source still holds
  // the shard until the drain detaches it, but is no longer its replica
  // under the live placement).
  std::vector<char> skip(good_.shard_count(), 0);
  for (size_t s = 0; s < good_.shard_count(); s++) {
    if (migrator_.IsStagingSlot(s)) {
      skip[s] = 1;
      continue;
    }
    const WriteRecord* w = good_.shard(s).AnyRecord();
    if (w == nullptr || partitioner_ == nullptr) continue;
    auto replicas = partitioner_->ReplicasOf(w->key);
    if (std::find(replicas.begin(), replicas.end(), id()) == replicas.end()) {
      skip[s] = 1;  // draining: the shard's new owner serves it now
    }
  }
  std::vector<uint64_t> items_per_shard(good_.shard_count(), 0);
  good_.ScanVisitSharded(req.lo, req.hi, req.bound,
                         [&](size_t shard, const Key& key, ReadVersion rv) {
                           if (skip[shard]) return;
                           items_per_shard[shard]++;
                           net::ScanResponse::Item item;
                           item.key = key;
                           item.value = std::move(rv.value);
                           item.ts = rv.ts;
                           item.sibs = std::move(rv.sibs);
                           resp.items.push_back(std::move(item));
                         });
  // The per-item cost is part of the task that produces the reply: each
  // contributing shard's lane is charged for its items, and the response
  // leaves only when the last shard finishes — a 1000-item scan replies
  // later than a 1-item scan (with multiple cores, shards stream in
  // parallel).
  std::vector<ShardExecutor::Work> plan;
  for (size_t s = 0; s < items_per_shard.size(); s++) {
    if (items_per_shard[s] == 0) continue;
    plan.push_back({LaneOfSlot(s), options_.costs.scan_item_us *
                                       static_cast<double>(items_per_shard[s])});
  }
  executor_.SubmitAll(plan, [this, env, resp = std::move(resp)]() mutable {
    Reply(env, std::move(resp));
  });
}

// --------------------------------------------------------------------------
// Writes
// --------------------------------------------------------------------------

net::PutResponse ReplicaServer::DoPut(const net::PutRequest& req,
                                      const obs::TraceContext& trace) {
  stats_.puts++;
  if (!ServesKey(req.write.key)) {
    stats_.wrong_shard_replies++;
    return net::PutResponse{false, /*wrong_shard=*/true};
  }
  if (trace.active() && options_.durable && tracer_ != nullptr &&
      tracer_->enabled()) {
    // The WAL sync this install pays (wal_sync_us in the cost table) has
    // already elapsed as executor service time; mark the commit point.
    obs::Span s;
    s.trace_id = trace.trace_id;
    s.span_id = tracer_->NewSpanId();
    s.parent_id = trace.span_id;
    s.kind = obs::SpanKind::kWalCommit;
    s.node = id();
    s.lane = static_cast<int32_t>(LaneOf(req.write.key));
    s.start_us = sim_.Now();
    s.end_us = sim_.Now();
    tracer_->Record(s);
  }
  if (req.mode == net::PutMode::kEventual) {
    InstallEventual(req.write, /*gossip=*/true, net::kNoPeer, trace);
  } else {
    mav_.Install(req.write, /*gossip=*/true, net::kNoPeer, trace);
  }
  return net::PutResponse{true};
}

void ReplicaServer::HandlePut(const Envelope& env) {
  Reply(env, DoPut(std::get<net::PutRequest>(env.msg), env.trace));
}

void ReplicaServer::HandleClientBatch(const Envelope& env) {
  // Ops execute in arrival order through the same DoGet/DoPut paths as
  // plain RPCs (stats, wrong-shard detection, gossip, session guarantees
  // all identical); one reply carries every op's response, parallel to the
  // request's op list, and the client demuxes back to per-op callbacks.
  const auto& req = std::get<net::ClientBatchRequest>(env.msg);
  stats_.client_batches++;
  stats_.client_batch_ops += req.ops.size();
  net::ClientBatchResponse resp;
  resp.replies.reserve(req.ops.size());
  // One durable group commit spans every install in the envelope (matching
  // the single wal_sync_us the cost table charges the batch).
  bool any_put = false;
  persistence_.GroupCommit([&]() {
    for (const auto& op : req.ops) {
      std::visit(
          [&](const auto& o) {
            using O = std::decay_t<decltype(o)>;
            if constexpr (std::is_same_v<O, net::PutRequest>) {
              any_put = true;
              resp.replies.emplace_back(DoPut(o, env.trace));
            } else {
              resp.replies.emplace_back(DoGet(o));
            }
          },
          op);
    }
  });
  if (options_.durable && any_put) stats_.wal_group_commits++;
  Reply(env, std::move(resp));
}

bool ReplicaServer::InstallEventual(const WriteRecord& w, bool gossip,
                                    net::NodeId origin,
                                    obs::TraceContext trace) {
  bool inserted = good_.Apply(w);
  if (!inserted) return false;  // duplicate delivery (anti-entropy redundancy)
  persistence_.PersistGood(good_.LogicalShardOfKey(w.key), w);
  if (options_.checkpoint_every_writes != 0 && persistence_.enabled() &&
      ++writes_since_checkpoint_ >= options_.checkpoint_every_writes) {
    writes_since_checkpoint_ = 0;
    (void)CheckpointStorage();
  }
  MaybeGcVersions(w.key);
  if (gossip) anti_entropy_.Enqueue(w, net::PutMode::kEventual, origin, trace);
  return true;
}

void ReplicaServer::InstallFromPeer(const WriteRecord& w, net::PutMode mode,
                                    net::NodeId from, obs::TraceContext trace) {
  // `from` threads through to Enqueue's `except`: the sender already has the
  // write, so re-gossiping it back would only double anti-entropy traffic.
  auto slot = good_.TrySlotOfKey(w.key);
  if (!slot) {
    // Late gossip for a shard that migrated away: forward it to the new
    // owner through the placement-aware outbox (the current epoch's
    // ReplicasOf already routes to the destination) instead of dropping a
    // record the sender considers delivered.
    stats_.forwarded_records++;
    anti_entropy_.Enqueue(w, mode, from, trace);
    return;
  }
  if (mode == net::PutMode::kEventual) {
    // Records filling a staging (pre-cutover) copy are replicated state the
    // rest of the cluster already propagates — installing without re-gossip
    // avoids spraying the whole shard back out.
    bool staging = migrator_.IsStagingSlot(*slot);
    bool inserted = InstallEventual(w, /*gossip=*/!staging, from, trace);
    if (staging && inserted) migrator_.NoteStagingInstall();
  } else {
    mav_.Install(w, /*gossip=*/true, from, trace);
  }
}

void ReplicaServer::MaybeGcVersions(const Key& key) {
  size_t limit = options_.max_versions_per_key;
  if (limit == 0) return;
  if (good_.VersionCountFor(key) <= limit) return;
  // Convergence-safe GC: only versions older than the newest Put can be
  // dropped — a late write below a Put is shadowed by it on every replica,
  // so local pruning cannot make replicas diverge. Delta chains with no
  // newer Put are retained (a coordinated stability frontier would be
  // needed to fold them; Section 5.1.2's "asynchronously garbage
  // collected").
  //
  // Cost control: the common case (a Put within the newest `limit`
  // versions) is O(limit); deep scans of long delta chains are amortized.
  size_t count = good_.VersionCountFor(key);
  auto newest_put = good_.NewestPutWithin(key, limit);
  if (!newest_put) {
    if (count % 256 != 0) return;  // amortize deep walks on delta chains
    newest_put = good_.NewestPutTimestamp(key);
    if (!newest_put) return;
  }
  auto horizon = good_.NthNewestTimestamp(key, limit - 1);
  if (!horizon) return;
  good_.DropVersionsBefore(key, std::min(*horizon, *newest_put));
}

// --------------------------------------------------------------------------
// Durability / recovery
// --------------------------------------------------------------------------

void ReplicaServer::Crash() {
  // Ownership shape survives the crash — it is configuration, not data: a
  // migrated-in shard keeps its (now empty) slot so digest repair can
  // refill it even on a server with no durable storage, and routing (which
  // still points here) never strands the shard. The data itself is
  // restored by RecoverFromStorage or by anti-entropy.
  std::vector<uint32_t> owned = CurrentOwned();
  if (owned.empty()) owned = options_.owned_logical_shards;
  good_ = version::ShardedStore(StoreOptions(std::move(owned)));
  mav_.Clear();
  anti_entropy_.Clear();
  locks_.Clear();
  migrator_.Clear();
  // Frees the busy frontiers only. Messages already in service keep their
  // completion events and are processed against the wiped state — the same
  // semantics the scalar busy_until_ reset had (network-level retransmits,
  // not the executor, are what re-deliver lost work after a crash).
  executor_.Reset();
}

Status ReplicaServer::CheckpointStorage() {
  if (!persistence_.enabled()) {
    return Status::Unsupported("server has no storage directory");
  }
  uint64_t epoch = partitioner_ ? partitioner_->PlacementEpoch() : 0;
  // Checkpoints are keyed by *logical* shard id, matching PersistGood's
  // keyspace. Explicit placement checkpoints the hosted tags; implicit
  // placement hosts every logical shard, stride of them per slot.
  std::vector<uint32_t> owned = CurrentOwned();
  if (owned.empty()) {
    owned.reserve(good_.num_logical_shards());
    for (uint64_t l = 0; l < good_.num_logical_shards(); l++) {
      owned.push_back(static_cast<uint32_t>(l));
    }
  }
  size_t stride = good_.num_logical_shards() / good_.shard_count();
  for (uint32_t shard : owned) {
    size_t slot;
    if (good_.explicit_placement()) {
      auto s = good_.SlotOfLogical(shard);
      if (!s) continue;
      slot = *s;
    } else {
      slot = stride == 0 ? 0 : shard / stride;
    }
    Status status = persistence_.CheckpointShard(
        shard, epoch,
        [this, shard, slot](const std::function<void(const WriteRecord&)>&
                                sink) {
          // In explicit mode a slot holds exactly one logical shard and the
          // filter never rejects; in implicit mode the slot interleaves
          // `stride` logical shards and the filter splits them.
          good_.shard(slot).ForEachVersion([&](const WriteRecord& w) {
            if (good_.LogicalShardOfKey(w.key) == shard) sink(w);
          });
        });
    if (!status.ok()) return status;
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    // Timeline annotation, not part of any sampled txn (trace_id 0): marks
    // when this server paused to write checkpoint files.
    obs::Span s;
    s.kind = obs::SpanKind::kCheckpoint;
    s.node = id();
    s.start_us = sim_.Now();
    s.end_us = sim_.Now();
    s.arg = owned.size();
    tracer_->Record(s);
  }
  return Status::Ok();
}

Status ReplicaServer::RecoverFromStorage() {
  if (!persistence_.enabled()) {
    return Status::Unsupported("server has no storage directory");
  }
  // Fail-fast layout guard: the manifest records the layout the keyspace
  // was written under. Replaying under a different shards_per_server or
  // stride would scramble records across shards, so recovery refuses
  // instead (reshard by wiping the directory, not by reinterpreting live
  // data). The owned set, however, is *adopted*: a server that migrated
  // shards in or out before the crash recovers at its post-migration
  // shape.
  auto manifest = persistence_.ReadManifest();
  std::vector<uint32_t> owned;
  if (manifest.ok()) {
    if (manifest->shards_per_server != options_.shards_per_server ||
        manifest->stride != options_.shard_placement_stride) {
      return Status::Corruption(
          "persistence manifest mismatch: keyspace written under " +
          std::to_string(manifest->shards_per_server) + " shards/server, " +
          "stride " + std::to_string(manifest->stride) + "; server runs " +
          std::to_string(options_.shards_per_server) + "/" +
          std::to_string(options_.shard_placement_stride));
    }
    // (manifest->epoch is informational: a recovering server may lag or —
    // across full-deployment restarts, where the in-memory PlacementMap is
    // reborn at 0 — lead the cluster's epoch; neither blocks replaying
    // data whose layout matches.)
    owned = manifest->owned;
    if (!options_.owned_logical_shards.empty() && owned != CurrentOwned()) {
      good_ = version::ShardedStore(StoreOptions(owned));
      for (size_t s = 0; s < good_.shard_count(); s++) EnsureLaneForSlot(s);
    }
  } else if (manifest.status().IsNotFound()) {
    // Pre-manifest directory: its records were keyed by *local slot index*
    // (the historical keyspace), so replay those prefixes; records re-route
    // by key below.
    for (size_t s = 0; s < good_.shard_count(); s++) {
      owned.push_back(static_cast<uint32_t>(s));
    }
  } else {
    return manifest.status();  // unreadable manifest over live data: refuse
  }
  // Shard-by-shard replay of only the shards this server hosts. Good
  // (revealed) versions re-enter directly (re-routed by key, so records
  // land correctly even if the persisted shard tag ever disagrees);
  // pending (not yet stable) versions re-enter the MAV pipeline, whose
  // acks will be re-broadcast by MaybeAck/RenotifyTick.
  std::vector<uint64_t> replayed(executor_.lane_count(), 0);
  Status status = persistence_.Recover(
      owned,
      [this, &replayed](size_t, const WriteRecord& w) {
        if (!good_.OwnsKey(w.key)) return;  // stale record of a moved shard
        replayed[LaneOf(w.key)]++;
        good_.Apply(w);
      },
      [this, &replayed](size_t, const WriteRecord& w) {
        if (!good_.OwnsKey(w.key)) return;
        replayed[LaneOf(w.key)]++;
        mav_.Install(w, true);
      });
  if (!status.ok()) return status;
  // Replay is charged per shard lane: a recovering server is busy applying
  // its durable state, and with cores > 1 the shards replay in parallel, so
  // recovery time shrinks with the core count instead of serializing.
  for (size_t lane = 0; lane < replayed.size(); lane++) {
    if (replayed[lane] == 0) continue;
    executor_.Submit(lane,
                     static_cast<double>(replayed[lane]) * options_.costs.put_us,
                     nullptr);
  }
  return status;
}

}  // namespace hat::server
