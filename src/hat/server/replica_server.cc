#include "hat/server/replica_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "hat/version/wire.h"

namespace hat::server {

using net::Envelope;
using net::Message;

ReplicaServer::ReplicaServer(sim::Simulation& sim, net::Network& net,
                             net::NodeId id, ServerOptions options,
                             const Partitioner* partitioner)
    : net::RpcNode(sim, net, id),
      options_(std::move(options)),
      partitioner_(partitioner),
      good_(version::ShardedStore::Options{options_.shards_per_server,
                                           options_.digest_buckets,
                                           options_.shard_placement_stride}),
      persistence_(options_.storage_dir),
      mav_(sim_, id, partitioner_, good_, persistence_,
           MavCoordinator::Options{options_.gc_stale_pending,
                                   options_.renotify_interval},
           [this](net::NodeId to, Message m) { SendOneWay(to, std::move(m)); },
           [this](const WriteRecord& w, net::NodeId origin) {
             anti_entropy_.Enqueue(w, net::PutMode::kMav, origin);
           },
           [this](const Key& k) { MaybeGcVersions(k); }),
      anti_entropy_(
          sim_, id, partitioner_, good_,
          AntiEntropyEngine::Options{
              options_.ae_flush_interval, options_.ae_retry_interval,
              options_.digest_sync_interval, options_.ae_batch_max,
              options_.ae_batch_max_bytes, options_.ae_bucketed_digest,
              options_.ae_push_enabled},
          [this](net::NodeId to, Message m) { SendOneWay(to, std::move(m)); },
          [this](const WriteRecord& w, net::PutMode mode, net::NodeId from) {
            InstallFromPeer(w, mode, from);
          }),
      locks_(
          [this](const Envelope& env, const net::LockResponse& resp) {
            Reply(env, resp);
          },
          options_.lock_policy) {
  mav_.Start();
  anti_entropy_.Start();
}

const ServerStats& ReplicaServer::stats() const {
  const MavStats& m = mav_.stats();
  stats_.gets_from_pending = m.gets_from_pending;
  stats_.notifies = m.notifies;
  stats_.mav_promotions = m.promotions;
  stats_.stale_pending_dropped = m.stale_pending_dropped;
  const AntiEntropyStats& ae = anti_entropy_.stats();
  stats_.ae_batches_in = ae.batches_in;
  stats_.ae_records_in = ae.records_in;
  stats_.ae_records_out = ae.records_out;
  stats_.ae_digest_ticks = ae.digest_ticks;
  stats_.ae_digest_entries_out = ae.digest_entries_out;
  stats_.ae_digest_bytes_out = ae.digest_bytes_out;
  const LockStats& l = locks_.stats();
  stats_.locks_granted = l.granted;
  stats_.locks_queued = l.queued;
  stats_.lock_deaths = l.deaths;
  return stats_;
}

// --------------------------------------------------------------------------
// Service-time queueing
// --------------------------------------------------------------------------

double ReplicaServer::CostOf(const Message& msg) const {
  const ServiceCosts& c = options_.costs;
  double bytes_kb = static_cast<double>(net::WireBytes(msg)) / 1024.0;
  double cost = c.per_kb_us * bytes_kb;
  if (std::holds_alternative<net::PingRequest>(msg)) {
    return c.ping_us;  // pings measure the network, not the server
  } else if (std::holds_alternative<net::GetRequest>(msg)) {
    cost += c.get_us;
  } else if (std::holds_alternative<net::ScanRequest>(msg)) {
    cost += c.scan_base_us;
  } else if (const auto* put = std::get_if<net::PutRequest>(&msg)) {
    cost += c.put_us;
    if (options_.durable) cost += c.wal_sync_us;
    if (put->mode == net::PutMode::kMav) {
      cost += c.mav_extra_put_us;
      cost += c.mav_metadata_per_kb_us *
              static_cast<double>(put->write.SibBytes()) / 1024.0;
      if (c.pending_contention_scale > 0) {
        cost *= 1.0 + static_cast<double>(mav_.PendingWriteCount()) /
                          c.pending_contention_scale;
      }
    }
  } else if (std::holds_alternative<net::NotifyRequest>(msg)) {
    cost += c.notify_us;
  } else if (const auto* ae = std::get_if<net::AntiEntropyBatch>(&msg)) {
    cost += c.ae_batch_us +
            c.ae_record_us * static_cast<double>(ae->writes.size());
    if (options_.durable) cost += c.wal_sync_us;  // group commit per batch
    if (ae->mode == net::PutMode::kMav) {
      cost += c.mav_extra_put_us * static_cast<double>(ae->writes.size()) / 2;
      size_t sib_bytes = 0;
      for (const auto& w : ae->writes) sib_bytes += w.SibBytes();
      cost += c.mav_metadata_per_kb_us * static_cast<double>(sib_bytes) /
              1024.0;
    }
  } else if (const auto* digest = std::get_if<net::DigestRequest>(&msg)) {
    cost += c.ae_batch_us +
            0.2 * static_cast<double>(digest->latest.size());
  } else if (const auto* bd = std::get_if<net::BucketDigest>(&msg)) {
    // Comparing B hashes is far cheaper than per-key digest processing.
    cost += c.ae_batch_us + 0.02 * static_cast<double>(bd->hashes.size());
  } else if (const auto* sd = std::get_if<net::ShardDigest>(&msg)) {
    cost += c.ae_batch_us + 0.02 * static_cast<double>(sd->hashes.size());
  } else if (std::holds_alternative<net::LockRequest>(msg) ||
             std::holds_alternative<net::UnlockRequest>(msg)) {
    cost += c.lock_us;
  } else {
    cost += 1;  // acks etc.
  }
  return cost;
}

void ReplicaServer::HandleMessage(const Envelope& env) {
  double cost = CostOf(env.msg);
  stats_.busy_us += cost;
  sim::SimTime start = std::max(sim_.Now(), busy_until_);
  busy_until_ = start + static_cast<sim::Duration>(std::llround(cost));
  sim_.At(busy_until_, [this, env]() { Process(env); });
}

void ReplicaServer::Process(const Envelope& env) {
  if (std::holds_alternative<net::PingRequest>(env.msg)) {
    Reply(env, net::PingResponse{});
  } else if (std::holds_alternative<net::GetRequest>(env.msg)) {
    HandleGet(env);
  } else if (std::holds_alternative<net::ScanRequest>(env.msg)) {
    HandleScan(env);
  } else if (std::holds_alternative<net::PutRequest>(env.msg)) {
    HandlePut(env);
  } else if (const auto* notify = std::get_if<net::NotifyRequest>(&env.msg)) {
    mav_.HandleNotify(*notify);
  } else if (const auto* batch = std::get_if<net::AntiEntropyBatch>(&env.msg)) {
    anti_entropy_.HandleBatch(*batch, env.from);
  } else if (const auto* ack = std::get_if<net::AntiEntropyAck>(&env.msg)) {
    anti_entropy_.HandleAck(*ack);
  } else if (const auto* digest = std::get_if<net::DigestRequest>(&env.msg)) {
    anti_entropy_.HandleDigest(*digest, env.from);
  } else if (const auto* bd = std::get_if<net::BucketDigest>(&env.msg)) {
    anti_entropy_.HandleBucketDigest(*bd, env.from);
  } else if (const auto* sd = std::get_if<net::ShardDigest>(&env.msg)) {
    anti_entropy_.HandleShardDigest(*sd, env.from);
  } else if (const auto* lock = std::get_if<net::LockRequest>(&env.msg)) {
    locks_.Acquire(env, *lock);
  } else if (const auto* unlock = std::get_if<net::UnlockRequest>(&env.msg)) {
    locks_.Release(*unlock);
  }
}

// --------------------------------------------------------------------------
// Reads
// --------------------------------------------------------------------------

void ReplicaServer::HandleGet(const Envelope& env) {
  const auto& req = std::get<net::GetRequest>(env.msg);
  stats_.gets++;
  net::GetResponse resp;

  auto fill = [&resp](const ReadVersion& rv) {
    resp.found = rv.found;
    resp.value = rv.value;
    resp.ts = rv.ts;
    resp.sibs = rv.sibs;
    resp.deps = rv.deps;
  };

  if (!req.required) {
    fill(good_.Read(req.key, req.bound));
    Reply(env, std::move(resp));
    return;
  }

  // Appendix B GET(k, ts_required): prefer a good version at or above the
  // bound; otherwise serve the exact pending version; otherwise ask the
  // client to retry (kNotYet).
  auto latest_good = good_.LatestTimestamp(req.key);
  if (latest_good && *latest_good >= *req.required) {
    fill(good_.Read(req.key, req.bound));
    Reply(env, std::move(resp));
    return;
  }
  if (const WriteRecord* w = mav_.PendingVersion(req.key, *req.required)) {
    resp.found = true;
    resp.value = w->value;
    resp.ts = w->ts;
    resp.sibs = w->sibs;
    resp.deps = w->deps;
    Reply(env, std::move(resp));
    return;
  }
  stats_.gets_not_yet++;
  resp.code = net::GetCode::kNotYet;
  Reply(env, std::move(resp));
}

void ReplicaServer::HandleScan(const Envelope& env) {
  const auto& req = std::get<net::ScanRequest>(env.msg);
  stats_.scans++;
  net::ScanResponse resp;
  good_.ScanVisit(req.lo, req.hi, req.bound,
                  [&resp](const Key& key, ReadVersion rv) {
                    net::ScanResponse::Item item;
                    item.key = key;
                    item.value = std::move(rv.value);
                    item.ts = rv.ts;
                    item.sibs = std::move(rv.sibs);
                    resp.items.push_back(std::move(item));
                  });
  // Post-hoc service charge for result size (volume known only now).
  double extra = options_.costs.scan_item_us *
                 static_cast<double>(resp.items.size());
  stats_.busy_us += extra;
  busy_until_ = std::max(busy_until_, sim_.Now()) +
                static_cast<sim::Duration>(std::llround(extra));
  Reply(env, std::move(resp));
}

// --------------------------------------------------------------------------
// Writes
// --------------------------------------------------------------------------

void ReplicaServer::HandlePut(const Envelope& env) {
  const auto& req = std::get<net::PutRequest>(env.msg);
  stats_.puts++;
  if (req.mode == net::PutMode::kEventual) {
    InstallEventual(req.write, /*gossip=*/true);
  } else {
    mav_.Install(req.write, /*gossip=*/true);
  }
  Reply(env, net::PutResponse{true});
}

void ReplicaServer::InstallEventual(const WriteRecord& w, bool gossip,
                                    net::NodeId origin) {
  bool inserted = good_.Apply(w);
  if (!inserted) return;  // duplicate delivery (anti-entropy redundancy)
  persistence_.PersistGood(good_.ShardIndexOf(w.key), w);
  MaybeGcVersions(w.key);
  if (gossip) anti_entropy_.Enqueue(w, net::PutMode::kEventual, origin);
}

void ReplicaServer::InstallFromPeer(const WriteRecord& w, net::PutMode mode,
                                    net::NodeId from) {
  // `from` threads through to Enqueue's `except`: the sender already has the
  // write, so re-gossiping it back would only double anti-entropy traffic.
  if (mode == net::PutMode::kEventual) {
    InstallEventual(w, /*gossip=*/true, from);
  } else {
    mav_.Install(w, /*gossip=*/true, from);
  }
}

void ReplicaServer::MaybeGcVersions(const Key& key) {
  size_t limit = options_.max_versions_per_key;
  if (limit == 0) return;
  if (good_.VersionCountFor(key) <= limit) return;
  // Convergence-safe GC: only versions older than the newest Put can be
  // dropped — a late write below a Put is shadowed by it on every replica,
  // so local pruning cannot make replicas diverge. Delta chains with no
  // newer Put are retained (a coordinated stability frontier would be
  // needed to fold them; Section 5.1.2's "asynchronously garbage
  // collected").
  //
  // Cost control: the common case (a Put within the newest `limit`
  // versions) is O(limit); deep scans of long delta chains are amortized.
  size_t count = good_.VersionCountFor(key);
  auto newest_put = good_.NewestPutWithin(key, limit);
  if (!newest_put) {
    if (count % 256 != 0) return;  // amortize deep walks on delta chains
    newest_put = good_.NewestPutTimestamp(key);
    if (!newest_put) return;
  }
  auto horizon = good_.NthNewestTimestamp(key, limit - 1);
  if (!horizon) return;
  good_.DropVersionsBefore(key, std::min(*horizon, *newest_put));
}

// --------------------------------------------------------------------------
// Durability / recovery
// --------------------------------------------------------------------------

void ReplicaServer::Crash() {
  good_ = version::ShardedStore(version::ShardedStore::Options{
      options_.shards_per_server, options_.digest_buckets,
      options_.shard_placement_stride});
  mav_.Clear();
  anti_entropy_.Clear();
  locks_.Clear();
  busy_until_ = sim_.Now();
}

Status ReplicaServer::RecoverFromStorage() {
  // Shard-by-shard replay of only the shards this server hosts. Good
  // (revealed) versions re-enter directly (re-routed by key, so records
  // land correctly even if the persisted shard tag ever disagrees);
  // pending (not yet stable) versions re-enter the MAV pipeline, whose
  // acks will be re-broadcast by MaybeAck/RenotifyTick.
  return persistence_.Recover(
      good_.shard_count(),
      [this](size_t, const WriteRecord& w) { good_.Apply(w); },
      [this](size_t, const WriteRecord& w) { mav_.Install(w, true); });
}

}  // namespace hat::server
