#include "hat/server/lock_manager.h"

namespace hat::server {

void LockManager::Acquire(const net::Envelope& env,
                          const net::LockRequest& req) {
  LockState& state = locks_[req.key];

  auto grant = [&]() {
    if (req.exclusive) {
      state.s_holders.erase(req.txn);  // S->X upgrade
      state.x_holder = req.txn;
    } else {
      state.s_holders.insert(req.txn);
    }
    stats_.granted++;
    responder_(env, net::LockResponse{/*granted=*/true, /*must_abort=*/false});
  };

  // Re-entrant / already-held cases.
  if (state.x_holder == req.txn) {
    grant();
    return;
  }
  if (!req.exclusive && state.s_holders.count(req.txn)) {
    grant();
    return;
  }

  // Conflicting transactions: current incompatible holders, plus queued
  // exclusive waiters (new shared requests must not overtake a waiting
  // writer — otherwise a contended upgrade starves forever behind an
  // ever-replenished reader population).
  std::set<Timestamp> conflicts;
  if (req.exclusive) {
    if (state.x_holder) conflicts.insert(*state.x_holder);
    for (const auto& s : state.s_holders) {
      if (s != req.txn) conflicts.insert(s);
    }
    // Sole-shared-holder upgrade is permitted.
    if (!state.x_holder && state.s_holders.size() == 1 &&
        state.s_holders.count(req.txn)) {
      conflicts.clear();
    }
  } else {
    if (state.x_holder) conflicts.insert(*state.x_holder);
  }
  for (const auto& w : state.waiters) {
    if (w.exclusive && w.txn != req.txn) conflicts.insert(w.txn);
  }
  if (conflicts.empty()) {
    grant();
    return;
  }

  // No-wait: any conflict aborts the requester immediately. Wait-die: the
  // requester may wait only if it is older (smaller timestamp) than every
  // conflicting transaction; otherwise it dies.
  bool older_than_all = policy_ != LockPolicy::kNoWait &&
                        req.txn < *conflicts.begin();
  if (older_than_all) {
    stats_.queued++;
    state.waiters.push_back(Waiter{req.txn, req.exclusive, env});
  } else {
    stats_.deaths++;
    responder_(env, net::LockResponse{/*granted=*/false, /*must_abort=*/true});
  }
}

void LockManager::Release(const net::UnlockRequest& req) {
  for (const auto& key : req.keys) {
    auto it = locks_.find(key);
    if (it == locks_.end()) continue;
    LockState& state = it->second;
    if (state.x_holder == req.txn) state.x_holder.reset();
    state.s_holders.erase(req.txn);
    // Also purge this txn from the wait queue (abort cleanup).
    for (auto w = state.waiters.begin(); w != state.waiters.end();) {
      w = (w->txn == req.txn) ? state.waiters.erase(w) : std::next(w);
    }
    GrantWaiters(key);
    if (!state.x_holder && state.s_holders.empty() && state.waiters.empty()) {
      locks_.erase(it);
    }
  }
}

void LockManager::GrantWaiters(const Key& key) {
  auto it = locks_.find(key);
  if (it == locks_.end()) return;
  LockState& state = it->second;
  while (!state.waiters.empty()) {
    Waiter& w = state.waiters.front();
    // Re-entrant compatibility: a waiter whose transaction already holds the
    // lock (e.g. a duplicate request after an RPC timeout raced with the
    // original grant) must be granted, not wedged behind itself.
    bool compatible;
    if (w.exclusive) {
      compatible = (!state.x_holder || *state.x_holder == w.txn) &&
                   (state.s_holders.empty() ||
                    (state.s_holders.size() == 1 &&
                     state.s_holders.count(w.txn)));
    } else {
      compatible = !state.x_holder || *state.x_holder == w.txn;
    }
    if (!compatible) break;
    bool exclusive = w.exclusive;
    if (exclusive) {
      state.s_holders.erase(w.txn);
      state.x_holder = w.txn;
    } else {
      state.s_holders.insert(w.txn);
    }
    stats_.granted++;
    responder_(w.request, net::LockResponse{/*granted=*/true, false});
    state.waiters.pop_front();
    if (exclusive) break;  // X admits nobody else
  }
}

}  // namespace hat::server
