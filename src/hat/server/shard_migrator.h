// ShardMigrator: one server's mechanics for live logical-shard migration.
//
// A migration has a source role and a destination role, both hosted here
// (a server can be the source of one migration and the destination of
// another). The control plane (cluster::RebalanceCoordinator) starts and
// finishes phases through direct in-process calls — the moral equivalent
// of an operator's configuration service — while all bulk data moves as
// real network messages:
//
//  * Destination: StartPull attaches a *staging* slot for the incoming
//    shard (served to anti-entropy but not to clients) and asks the source
//    for a snapshot (ShardSnapshotRequest). Incoming ShardSnapshotChunk
//    requests are applied idempotently (version sets are unions, so a
//    crashed-and-restarted stream just re-applies) and acknowledged;
//    PromoteStaging flips the slot to serving at cutover.
//  * Source: on the snapshot request it freezes the shard's current
//    version set and streams it in bounded chunks, stop-and-wait through
//    the RPC layer (timeouts resend; an ok=false ack means the destination
//    restarted and this stream is dead). Once the frozen set is fully
//    acknowledged the source switches to catch-up: periodic
//    (shard, bucket)-scoped digest rounds against the destination — the
//    exact protocol anti-entropy already speaks — ship whatever arrived
//    after the freeze. FinishDrain (post-cutover, once the destination
//    holds a superset) detaches the slot, tombstones the shard's on-disk
//    keyspace, and leaves late gossip to the owner's forwarding path.
//
// The migrator owns no sockets: messages leave through SendFn/CallFn and
// records install through InstallFn, so it is constructible and fully
// drivable from a unit test without a ReplicaServer.

#ifndef HAT_SERVER_SHARD_MIGRATOR_H_
#define HAT_SERVER_SHARD_MIGRATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "hat/common/status.h"
#include "hat/net/message.h"
#include "hat/sim/simulation.h"
#include "hat/version/sharded_store.h"

namespace hat::server {

struct MigratorStats {
  uint64_t snapshot_records_out = 0;  ///< frozen records acknowledged by dest
  uint64_t snapshot_records_in = 0;   ///< chunk records newly applied
  uint64_t snapshot_chunks_out = 0;   ///< chunk sends (including resends)
  uint64_t snapshot_chunks_in = 0;
  uint64_t catchup_digests_out = 0;   ///< catch-up digest rounds initiated
  uint64_t catchup_records_in = 0;    ///< records applied into staging slots
                                      ///< outside the snapshot stream
};

class ShardMigrator {
 public:
  struct Options {
    /// Chunking discipline, normally ServerOptions::ae_batch_max{,_bytes}.
    size_t chunk_max_records = 64;
    size_t chunk_max_bytes = 64 * 1024;
    /// Stop-and-wait resend timeout for a snapshot chunk.
    sim::Duration chunk_timeout = 500 * sim::kMillisecond;
    /// Cadence of source-side catch-up digest rounds after the snapshot.
    sim::Duration catchup_interval = 50 * sim::kMillisecond;
  };
  /// Delivers a one-way message to a peer.
  using SendFn = std::function<void(net::NodeId, net::Message)>;
  /// Issues a request/response RPC (ReplicaServer::Call).
  using RpcCallback = std::function<void(Status, const net::Message*)>;
  using CallFn = std::function<void(net::NodeId, net::Message, sim::Duration,
                                    RpcCallback)>;
  /// Installs one snapshot record into the (already attached) staging
  /// shard: apply + persist, no gossip. Returns true if the version was
  /// new (dedupe keeps resent chunks out of the counters).
  using InstallFn = std::function<bool(const WriteRecord&)>;
  /// Owner hook after AttachShard returned `slot` (ensure an executor lane
  /// exists for it).
  using AttachHook = std::function<void(size_t slot)>;
  /// Owner hook after an ownership change (promote/detach): rewrite the
  /// durable placement manifest.
  using ManifestHook = std::function<void()>;
  /// Erases one logical shard's persisted keyspace (source tombstone).
  using TombstoneFn = std::function<void(uint32_t shard)>;

  ShardMigrator(sim::Simulation& sim, version::ShardedStore& good,
                Options options, SendFn send, CallFn call, InstallFn install,
                AttachHook on_attach, ManifestHook on_ownership_change,
                TombstoneFn tombstone);

  // ---- destination role ----------------------------------------------------

  /// Attaches a staging slot for `shard` and requests the snapshot from
  /// `source`. Restart-safe: a pull for the same shard under a new
  /// migration id supersedes the old session and re-applies idempotently.
  void StartPull(uint64_t migration_id, uint32_t shard, net::NodeId source);

  bool HasPullSession(uint64_t migration_id) const {
    return dests_.count(migration_id) > 0;
  }
  /// The snapshot stream's final chunk has been applied.
  bool PullComplete(uint64_t migration_id) const;

  /// Cutover: the staged shard starts serving clients; sessions for it are
  /// retired and the durable manifest is rewritten.
  void PromoteStaging(uint32_t shard);

  /// True while `shard` is attached but not yet serving (clients are
  /// answered kWrongShard; scans skip it; anti-entropy still fills it).
  bool IsStagingShard(uint32_t shard) const {
    return staging_.count(shard) > 0;
  }
  bool IsStagingSlot(size_t slot) const {
    return IsStagingShard(good_.LogicalTagOfSlot(slot));
  }

  /// Counts one record applied into a staging shard outside the snapshot
  /// stream (the catch-up volume the fig6 --migrate sweep reports).
  void NoteStagingInstall() { stats_.catchup_records_in++; }

  // ---- source role ---------------------------------------------------------

  /// Freezes the requested shard and starts streaming chunks to `from`.
  void HandleSnapshotRequest(const net::ShardSnapshotRequest& req,
                             net::NodeId from);

  /// Applies one snapshot chunk (destination side) and returns the ack to
  /// send back.
  net::ShardSnapshotAck HandleChunk(const net::ShardSnapshotChunk& chunk);

  bool HasSourceSession(uint64_t migration_id) const {
    return sources_.count(migration_id) > 0;
  }
  /// Every frozen record has been acknowledged (catch-up phase running).
  bool SnapshotFullySent(uint64_t migration_id) const;

  /// Starts catch-up digest rounds without a snapshot stream — the
  /// coordinator's restart path when a source crashed after its snapshot
  /// already completed (the destination holds the bulk; only the diff needs
  /// reconciling).
  void StartCatchupOnly(uint64_t migration_id, uint32_t shard,
                        net::NodeId dest);

  /// Post-cutover, destination confirmed superset: detach the slot,
  /// tombstone the on-disk keyspace, rewrite the manifest, retire the
  /// session.
  void FinishDrain(uint64_t migration_id);

  /// Abandons a source session (coordinator restarting under a new id).
  void CancelSource(uint64_t migration_id) { sources_.erase(migration_id); }

  // ---- shared --------------------------------------------------------------

  /// Drops all volatile migration state (crash). Stats survive. Staged
  /// slots are implicitly dropped with the owner's store rebuild; the
  /// coordinator restarts the affected migration.
  void Clear();

  const MigratorStats& stats() const { return stats_; }

 private:
  struct SourceSession {
    uint32_t shard = 0;
    net::NodeId dest = 0;
    std::vector<WriteRecord> frozen;
    size_t next_record = 0;
    uint32_t seq = 0;
    net::ShardSnapshotChunk inflight;
    bool fully_sent = false;
  };
  struct DestSession {
    uint32_t shard = 0;
    net::NodeId source = 0;
    bool done = false;
  };

  void SendNextChunk(uint64_t migration_id);
  void SendInflight(uint64_t migration_id);
  void StartCatchup(uint64_t migration_id);
  void CatchupTick(uint64_t migration_id);

  sim::Simulation& sim_;
  version::ShardedStore& good_;
  Options options_;
  SendFn send_;
  CallFn call_;
  InstallFn install_;
  AttachHook on_attach_;
  ManifestHook on_ownership_change_;
  TombstoneFn tombstone_;
  MigratorStats stats_;

  std::map<uint64_t, SourceSession> sources_;
  std::map<uint64_t, DestSession> dests_;
  std::set<uint32_t> staging_;  // logical shards attached but not serving
};

}  // namespace hat::server

#endif  // HAT_SERVER_SHARD_MIGRATOR_H_
