// Service-time model for replica servers.
//
// Each server is a ShardExecutor: per-shard lanes sharing
// ServerOptions::cores_per_server cores. Requests are classified per message
// type, routed to the owning shard's lane (or the global lane for
// cross-shard work), and consume CPU/IO time there. These per-operation
// demands generate the throughput phenomena the paper measures — saturation
// under client load (Figure 3), MAV's ~75% of eventual throughput
// in-datacenter, its decay with transaction length (Figure 4) and write
// fraction (Figure 5), and linear scale-out (Figure 6) — now both across
// servers and across cores within one.

#ifndef HAT_SERVER_SERVICE_COSTS_H_
#define HAT_SERVER_SERVICE_COSTS_H_

namespace hat::server {

/// All values in microseconds of server busy time. Calibrated so a 2x5
/// m1.xlarge-class deployment saturates near the paper's ~14-16k txns/s for
/// eventual (Figure 3A) with MAV at ~75% of that.
struct ServiceCosts {
  double get_us = 60;            ///< point read from the good set
  double put_us = 80;            ///< install one version
  double wal_sync_us = 60;       ///< synchronous durability (LevelDB/WAL)
  double mav_extra_put_us = 30;  ///< MAV's second backend put (pending->good)
  double per_kb_us = 3;          ///< marshalling / IO per KB of payload
  /// Extra cost per KB of MAV sibling metadata: the sibling list is written
  /// to the WAL, both backend puts, and every anti-entropy copy, so its
  /// effective IO amplification far exceeds a plain payload byte's
  /// ("[metadata] proportional to transaction length consume[s] IOPS and
  /// network bandwidth", Section 6.3). Drives Figure 4's MAV decay.
  double mav_metadata_per_kb_us = 60;
  double notify_us = 2;          ///< MAV pending-stable ack (batched)
  /// Per-envelope overhead of a batched client request (parse + demux).
  /// Each op inside still pays its full get/put cost; the batch amortizes
  /// this header and the WAL group commit across its ops.
  double client_batch_us = 10;
  double ae_record_us = 20;      ///< applying one anti-entropy record
  double ae_batch_us = 15;       ///< per-batch overhead (amortized by batching)
  double lock_us = 10;           ///< lock table operation
  double scan_base_us = 60;      ///< range read fixed cost
  double scan_item_us = 5;       ///< per item returned by a range read
  double ping_us = 1;
  double ack_us = 1;             ///< retiring an anti-entropy ack
  /// Handing one unit of shard work from the receive path to its lane's
  /// queue on another core (ShardExecutor). Charged only when
  /// cores_per_server > 1 — a single-core server runs everything inline, so
  /// C = 1 reproduces the pre-executor single-service-center numbers.
  double dispatch_us = 2;

  /// Models the LevelDB write-amplification / IOPS contention the paper
  /// observed for MAV at scale: put cost inflates with the size of the
  /// pending set (0 disables).
  double pending_contention_scale = 50000;
};

}  // namespace hat::server

#endif  // HAT_SERVER_SERVICE_COSTS_H_
