#include "hat/server/persistence_manager.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "hat/common/codec.h"
#include "hat/version/wire.h"

namespace hat::server {

namespace {
constexpr std::string_view kGoodKind = "g";
constexpr std::string_view kPendingKind = "p";
// Sorts between the "g/" and "p/" keyspaces, so record scans never see it.
constexpr std::string_view kManifestKey = "manifest";
constexpr uint32_t kManifestVersion = 1;

/// "g/002a/" — fixed-width hex keeps shard prefixes disjoint and ordered.
std::string ShardPrefix(std::string_view kind, size_t shard) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%s/%04zx/", std::string(kind).c_str(),
                shard);
  return buf;
}

/// Exclusive upper bound for a shard-prefix scan ('/' + 1 == '0').
std::string ShardPrefixEnd(std::string_view kind, size_t shard) {
  std::string end = ShardPrefix(kind, shard);
  end.back() = '0';
  return end;
}
}  // namespace

PersistenceManager::PersistenceManager(const std::string& dir) {
  if (dir.empty()) return;
  auto store = storage::LocalStore::Open(dir);
  if (store.ok()) disk_ = std::move(store).value();
}

const std::string& PersistenceManager::CachedPrefix(
    std::vector<std::string>& prefixes, std::string_view kind, size_t shard) {
  if (shard >= prefixes.size()) prefixes.resize(shard + 1);
  if (prefixes[shard].empty()) prefixes[shard] = ShardPrefix(kind, shard);
  return prefixes[shard];
}

void PersistenceManager::Persist(std::string_view kind,
                                 std::vector<std::string>& prefixes,
                                 size_t shard, const WriteRecord& w) {
  if (!disk_) return;
  std::string sk = CachedPrefix(prefixes, kind, shard);
  sk += version::StorageKeyFor(w.key, w.ts);
  (void)disk_->Put(sk, version::EncodeWriteRecord(w));
}

void PersistenceManager::PersistGood(size_t shard, const WriteRecord& w) {
  Persist(kGoodKind, good_prefixes_, shard, w);
}

void PersistenceManager::PersistPending(size_t shard, const WriteRecord& w) {
  Persist(kPendingKind, pending_prefixes_, shard, w);
}

void PersistenceManager::ErasePersistedPending(size_t shard,
                                               const WriteRecord& w) {
  if (!disk_) return;
  std::string sk = CachedPrefix(pending_prefixes_, kPendingKind, shard);
  sk += version::StorageKeyFor(w.key, w.ts);
  (void)disk_->Delete(sk);
}

Status PersistenceManager::WriteManifest(const PersistenceManifest& m) {
  if (!disk_) return Status::Ok();
  std::string encoded;
  PutFixed32(&encoded, kManifestVersion);
  PutFixed32(&encoded, m.shards_per_server);
  PutFixed32(&encoded, m.stride);
  PutFixed64(&encoded, m.epoch);
  PutVarint32(&encoded, static_cast<uint32_t>(m.owned.size()));
  for (uint32_t shard : m.owned) PutFixed32(&encoded, shard);
  return disk_->Put(kManifestKey, encoded);
}

Result<PersistenceManifest> PersistenceManager::ReadManifest() const {
  if (!disk_) return Status::Unsupported("server has no storage directory");
  auto raw = disk_->Get(kManifestKey);
  if (!raw.ok()) return raw.status();
  std::string_view in = raw.value();
  if (in.size() < 20 || DecodeFixed32(in.data()) != kManifestVersion) {
    return Status::Corruption("persistence manifest: bad header");
  }
  PersistenceManifest m;
  m.shards_per_server = DecodeFixed32(in.data() + 4);
  m.stride = DecodeFixed32(in.data() + 8);
  m.epoch = DecodeFixed64(in.data() + 12);
  in.remove_prefix(20);
  auto count = GetVarint32(&in);
  // Divide rather than multiply: `*count * 4` can wrap in 32 bits and let
  // a corrupt count through the guard.
  if (!count || in.size() / 4 < *count) {
    return Status::Corruption("persistence manifest: truncated owned set");
  }
  m.owned.reserve(*count);
  for (uint32_t i = 0; i < *count; i++) {
    m.owned.push_back(DecodeFixed32(in.data() + 4 * i));
  }
  return m;
}

bool PersistenceManager::HasShardData() const {
  if (!disk_) return false;
  bool found = false;
  for (std::string_view kind : {kGoodKind, kPendingKind}) {
    std::string lo(kind);
    lo += '/';
    std::string hi(kind);
    hi += '0';  // '/' + 1: upper bound of every "<kind>/..." key
    (void)disk_->Scan(lo, hi, [&found](std::string_view, std::string_view) {
      found = true;  // LocalStore::Scan has no early exit; cheap enough here
    });
    if (found) return true;
  }
  return false;
}

Status PersistenceManager::EraseShard(size_t shard) {
  if (!disk_) return Status::Ok();
  for (std::string_view kind : {kGoodKind, kPendingKind}) {
    // Collect first: deleting mutates the memtable mid-scan.
    std::vector<std::string> doomed;
    HAT_RETURN_IF_ERROR(disk_->Scan(
        ShardPrefix(kind, shard), ShardPrefixEnd(kind, shard),
        [&doomed](std::string_view sk, std::string_view) {
          doomed.emplace_back(sk);
        }));
    for (const auto& sk : doomed) HAT_RETURN_IF_ERROR(disk_->Delete(sk));
  }
  return Status::Ok();
}

Status PersistenceManager::RecoverShard(
    size_t shard, const std::function<void(const WriteRecord&)>& good,
    const std::function<void(const WriteRecord&)>& pending) {
  if (!disk_) return Status::Unsupported("server has no storage directory");
  const std::string good_prefix = ShardPrefix(kGoodKind, shard);
  HAT_RETURN_IF_ERROR(disk_->Scan(
      good_prefix, ShardPrefixEnd(kGoodKind, shard),
      [&good, &good_prefix](std::string_view sk, std::string_view value) {
        auto parsed = version::ParseStorageKey(sk.substr(good_prefix.size()));
        if (!parsed) return;
        auto w = version::DecodeWriteRecord(parsed->first, value);
        if (w) good(*w);
      }));
  // Buffer pending records: the callback typically re-enters the MAV
  // pipeline, which persists (writes to this store) — illegal mid-scan.
  const std::string pending_prefix = ShardPrefix(kPendingKind, shard);
  std::vector<WriteRecord> buffered;
  HAT_RETURN_IF_ERROR(disk_->Scan(
      pending_prefix, ShardPrefixEnd(kPendingKind, shard),
      [&buffered, &pending_prefix](std::string_view sk,
                                   std::string_view value) {
        auto parsed =
            version::ParseStorageKey(sk.substr(pending_prefix.size()));
        if (!parsed) return;
        auto w = version::DecodeWriteRecord(parsed->first, value);
        if (w) buffered.push_back(std::move(*w));
      }));
  for (const auto& w : buffered) pending(w);
  return Status::Ok();
}

Status PersistenceManager::Recover(
    size_t shard_count,
    const std::function<void(size_t shard, const WriteRecord&)>& good,
    const std::function<void(size_t shard, const WriteRecord&)>& pending) {
  if (!disk_) return Status::Unsupported("server has no storage directory");
  for (size_t s = 0; s < shard_count; s++) {
    HAT_RETURN_IF_ERROR(RecoverShard(
        s, [&good, s](const WriteRecord& w) { good(s, w); },
        [&pending, s](const WriteRecord& w) { pending(s, w); }));
  }
  return Status::Ok();
}

Status PersistenceManager::Recover(
    const std::vector<uint32_t>& shards,
    const std::function<void(size_t shard, const WriteRecord&)>& good,
    const std::function<void(size_t shard, const WriteRecord&)>& pending) {
  if (!disk_) return Status::Unsupported("server has no storage directory");
  for (uint32_t s : shards) {
    HAT_RETURN_IF_ERROR(RecoverShard(
        s, [&good, s](const WriteRecord& w) { good(s, w); },
        [&pending, s](const WriteRecord& w) { pending(s, w); }));
  }
  return Status::Ok();
}

}  // namespace hat::server
