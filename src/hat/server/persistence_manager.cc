#include "hat/server/persistence_manager.h"

#include <utility>
#include <vector>

#include "hat/version/wire.h"

namespace hat::server {

namespace {
constexpr std::string_view kGoodPrefix = "g/";
constexpr std::string_view kPendingPrefix = "p/";
// Exclusive upper bounds for prefix scans ('/' + 1 == '0').
constexpr std::string_view kGoodEnd = "g0";
constexpr std::string_view kPendingEnd = "p0";
}  // namespace

PersistenceManager::PersistenceManager(const std::string& dir) {
  if (dir.empty()) return;
  auto store = storage::LocalStore::Open(dir);
  if (store.ok()) disk_ = std::move(store).value();
}

void PersistenceManager::Persist(std::string_view prefix,
                                 const WriteRecord& w) {
  if (!disk_) return;
  std::string sk(prefix);
  sk += version::StorageKeyFor(w.key, w.ts);
  (void)disk_->Put(sk, version::EncodeWriteRecord(w));
}

void PersistenceManager::PersistGood(const WriteRecord& w) {
  Persist(kGoodPrefix, w);
}

void PersistenceManager::PersistPending(const WriteRecord& w) {
  Persist(kPendingPrefix, w);
}

void PersistenceManager::ErasePersistedPending(const WriteRecord& w) {
  if (!disk_) return;
  std::string sk(kPendingPrefix);
  sk += version::StorageKeyFor(w.key, w.ts);
  (void)disk_->Delete(sk);
}

Status PersistenceManager::Recover(
    const std::function<void(const WriteRecord&)>& good,
    const std::function<void(const WriteRecord&)>& pending) {
  if (!disk_) return Status::Unsupported("server has no storage directory");
  HAT_RETURN_IF_ERROR(disk_->Scan(
      std::string(kGoodPrefix), std::string(kGoodEnd),
      [&good](std::string_view sk, std::string_view value) {
        auto parsed = version::ParseStorageKey(sk.substr(kGoodPrefix.size()));
        if (!parsed) return;
        auto w = version::DecodeWriteRecord(parsed->first, value);
        if (w) good(*w);
      }));
  // Buffer pending records: the callback typically re-enters the MAV
  // pipeline, which persists (writes to this store) — illegal mid-scan.
  std::vector<WriteRecord> buffered;
  HAT_RETURN_IF_ERROR(disk_->Scan(
      std::string(kPendingPrefix), std::string(kPendingEnd),
      [&buffered](std::string_view sk, std::string_view value) {
        auto parsed =
            version::ParseStorageKey(sk.substr(kPendingPrefix.size()));
        if (!parsed) return;
        auto w = version::DecodeWriteRecord(parsed->first, value);
        if (w) buffered.push_back(std::move(*w));
      }));
  for (const auto& w : buffered) pending(w);
  return Status::Ok();
}

}  // namespace hat::server
