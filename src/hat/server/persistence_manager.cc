#include "hat/server/persistence_manager.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "hat/common/codec.h"
#include "hat/version/wire.h"

namespace hat::server {

namespace {
constexpr std::string_view kCheckpointKind = "c";
constexpr std::string_view kGoodKind = "g";
constexpr std::string_view kPendingKind = "p";
// Sorts between the "g/" and "p/" keyspaces, so record scans never see it.
constexpr std::string_view kManifestKey = "manifest";
constexpr uint32_t kManifestVersion = 1;
constexpr uint32_t kCheckpointMarkerVersion = 1;

/// "k/002a" — the marker committing shard 0x2a's checkpoint. The "k" kind
/// holds no records, so record scans never see markers.
std::string CheckpointMarkerKey(size_t shard) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k/%04zx", shard);
  return buf;
}

/// "g/002a/" — fixed-width hex keeps shard prefixes disjoint and ordered.
std::string ShardPrefix(std::string_view kind, size_t shard) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%s/%04zx/", std::string(kind).c_str(),
                shard);
  return buf;
}

/// Exclusive upper bound for a shard-prefix scan ('/' + 1 == '0').
std::string ShardPrefixEnd(std::string_view kind, size_t shard) {
  std::string end = ShardPrefix(kind, shard);
  end.back() = '0';
  return end;
}
}  // namespace

PersistenceManager::PersistenceManager(const std::string& dir) {
  if (dir.empty()) return;
  auto store = storage::LocalStore::Open(dir);
  if (store.ok()) disk_ = std::move(store).value();
}

const std::string& PersistenceManager::CachedPrefix(
    std::vector<std::string>& prefixes, std::string_view kind, size_t shard) {
  if (shard >= prefixes.size()) prefixes.resize(shard + 1);
  if (prefixes[shard].empty()) prefixes[shard] = ShardPrefix(kind, shard);
  return prefixes[shard];
}

void PersistenceManager::Persist(std::string_view kind,
                                 std::vector<std::string>& prefixes,
                                 size_t shard, const WriteRecord& w) {
  if (!disk_) return;
  std::string sk = CachedPrefix(prefixes, kind, shard);
  sk += version::StorageKeyFor(w.key, w.ts);
  (void)disk_->Put(sk, version::EncodeWriteRecord(w));
}

void PersistenceManager::PersistGood(size_t shard, const WriteRecord& w) {
  Persist(kGoodKind, good_prefixes_, shard, w);
}

void PersistenceManager::PersistPending(size_t shard, const WriteRecord& w) {
  Persist(kPendingKind, pending_prefixes_, shard, w);
}

void PersistenceManager::GroupCommit(const std::function<void()>& fn) {
  if (!disk_) {
    fn();
    return;
  }
  (void)disk_->GroupCommit([&fn]() {
    fn();
    return Status::Ok();
  });
}

uint64_t PersistenceManager::group_commits() const {
  return disk_ ? disk_->stats().group_commits : 0;
}

void PersistenceManager::ErasePersistedPending(size_t shard,
                                               const WriteRecord& w) {
  if (!disk_) return;
  std::string sk = CachedPrefix(pending_prefixes_, kPendingKind, shard);
  sk += version::StorageKeyFor(w.key, w.ts);
  (void)disk_->Delete(sk);
}

Status PersistenceManager::WriteManifest(const PersistenceManifest& m) {
  if (!disk_) return Status::Ok();
  std::string encoded;
  PutFixed32(&encoded, kManifestVersion);
  PutFixed32(&encoded, m.shards_per_server);
  PutFixed32(&encoded, m.stride);
  PutFixed64(&encoded, m.epoch);
  PutVarint32(&encoded, static_cast<uint32_t>(m.owned.size()));
  for (uint32_t shard : m.owned) PutFixed32(&encoded, shard);
  return disk_->Put(kManifestKey, encoded);
}

Result<PersistenceManifest> PersistenceManager::ReadManifest() const {
  if (!disk_) return Status::Unsupported("server has no storage directory");
  auto raw = disk_->Get(kManifestKey);
  if (!raw.ok()) return raw.status();
  std::string_view in = raw.value();
  if (in.size() < 20 || DecodeFixed32(in.data()) != kManifestVersion) {
    return Status::Corruption("persistence manifest: bad header");
  }
  PersistenceManifest m;
  m.shards_per_server = DecodeFixed32(in.data() + 4);
  m.stride = DecodeFixed32(in.data() + 8);
  m.epoch = DecodeFixed64(in.data() + 12);
  in.remove_prefix(20);
  auto count = GetVarint32(&in);
  // Divide rather than multiply: `*count * 4` can wrap in 32 bits and let
  // a corrupt count through the guard.
  if (!count || in.size() / 4 < *count) {
    return Status::Corruption("persistence manifest: truncated owned set");
  }
  m.owned.reserve(*count);
  for (uint32_t i = 0; i < *count; i++) {
    m.owned.push_back(DecodeFixed32(in.data() + 4 * i));
  }
  return m;
}

bool PersistenceManager::HasShardData() const {
  if (!disk_) return false;
  bool found = false;
  for (std::string_view kind : {kCheckpointKind, kGoodKind, kPendingKind}) {
    std::string lo(kind);
    lo += '/';
    std::string hi(kind);
    hi += '0';  // '/' + 1: upper bound of every "<kind>/..." key
    (void)disk_->Scan(lo, hi, [&found](std::string_view, std::string_view) {
      found = true;  // LocalStore::Scan has no early exit; cheap enough here
    });
    if (found) return true;
  }
  return false;
}

Status PersistenceManager::EraseShard(size_t shard) {
  if (!disk_) return Status::Ok();
  for (std::string_view kind : {kCheckpointKind, kGoodKind, kPendingKind}) {
    // Collect first: deleting mutates the memtable mid-scan.
    std::vector<std::string> doomed;
    HAT_RETURN_IF_ERROR(disk_->Scan(
        ShardPrefix(kind, shard), ShardPrefixEnd(kind, shard),
        [&doomed](std::string_view sk, std::string_view) {
          doomed.emplace_back(sk);
        }));
    for (const auto& sk : doomed) HAT_RETURN_IF_ERROR(disk_->Delete(sk));
  }
  return disk_->Delete(CheckpointMarkerKey(shard));
}

Status PersistenceManager::CheckpointShard(
    size_t shard, uint64_t epoch,
    const std::function<void(const std::function<void(const WriteRecord&)>&)>&
        for_each_live) {
  if (!disk_) return Status::Ok();
  // (0) Remember the previous checkpoint's keys; any not re-written below
  // belongs to a version that has since been GC'd and must go.
  std::vector<std::string> stale;
  const std::string cp_prefix = ShardPrefix(kCheckpointKind, shard);
  HAT_RETURN_IF_ERROR(disk_->Scan(
      cp_prefix, ShardPrefixEnd(kCheckpointKind, shard),
      [&stale](std::string_view sk, std::string_view) {
        stale.emplace_back(sk);
      }));
  std::sort(stale.begin(), stale.end());
  // (1) Write the snapshot. Keys are deterministic per (key, ts), so
  // re-writing a surviving version overwrites its previous checkpoint copy
  // in place.
  uint64_t records = 0;
  Status write_status = Status::Ok();
  std::vector<std::string> survived;  // stale keys re-written by this snapshot
  for_each_live([&](const WriteRecord& w) {
    if (!write_status.ok()) return;
    std::string sk = cp_prefix;
    sk += version::StorageKeyFor(w.key, w.ts);
    if (std::binary_search(stale.begin(), stale.end(), sk)) {
      survived.push_back(sk);
    }
    write_status = disk_->Put(sk, version::EncodeWriteRecord(w));
    records++;
  });
  HAT_RETURN_IF_ERROR(write_status);
  // (2) Drop checkpoint records whose versions died since the last one.
  std::sort(survived.begin(), survived.end());
  for (const std::string& sk : stale) {
    if (!std::binary_search(survived.begin(), survived.end(), sk)) {
      HAT_RETURN_IF_ERROR(disk_->Delete(sk));
    }
  }
  // (3) Commit: the marker is the only record recovery trusts to mean "the
  // snapshot under c/ is complete".
  std::string marker;
  PutFixed32(&marker, kCheckpointMarkerVersion);
  PutFixed64(&marker, epoch);
  PutFixed64(&marker, records);
  HAT_RETURN_IF_ERROR(disk_->Put(CheckpointMarkerKey(shard), marker));
  // (4) Truncate the good-version history the snapshot supersedes.
  std::vector<std::string> doomed;
  HAT_RETURN_IF_ERROR(disk_->Scan(
      ShardPrefix(kGoodKind, shard), ShardPrefixEnd(kGoodKind, shard),
      [&doomed](std::string_view sk, std::string_view) {
        doomed.emplace_back(sk);
      }));
  for (const auto& sk : doomed) HAT_RETURN_IF_ERROR(disk_->Delete(sk));
  // (5) Fold the deletes into the backing store's sorted runs so its own
  // recovery WAL truncates too — the on-disk footprint and the replay cost
  // both shrink to live data, not history.
  return disk_->Flush();
}

Result<CheckpointInfo> PersistenceManager::ReadCheckpointMarker(
    size_t shard) const {
  if (!disk_) return Status::Unsupported("server has no storage directory");
  auto raw = disk_->Get(CheckpointMarkerKey(shard));
  if (!raw.ok()) return raw.status();
  std::string_view in = raw.value();
  if (in.size() < 20 || DecodeFixed32(in.data()) != kCheckpointMarkerVersion) {
    return Status::Corruption("checkpoint marker: bad header");
  }
  CheckpointInfo info;
  info.epoch = DecodeFixed64(in.data() + 4);
  info.records = DecodeFixed64(in.data() + 12);
  return info;
}

Status PersistenceManager::RecoverShard(
    size_t shard, const std::function<void(const WriteRecord&)>& good,
    const std::function<void(const WriteRecord&)>& pending) {
  if (!disk_) return Status::Unsupported("server has no storage directory");
  // Checkpoint snapshot first, then the good tail written since it. Both
  // feed the same `good` sink: version insertion is idempotent per
  // (key, ts), so overlap from a crash mid-checkpoint is harmless.
  const std::string cp_prefix = ShardPrefix(kCheckpointKind, shard);
  HAT_RETURN_IF_ERROR(disk_->Scan(
      cp_prefix, ShardPrefixEnd(kCheckpointKind, shard),
      [this, &good, &cp_prefix](std::string_view sk, std::string_view value) {
        auto parsed = version::ParseStorageKey(sk.substr(cp_prefix.size()));
        if (!parsed) return;
        auto w = version::DecodeWriteRecord(parsed->first, value);
        if (!w) return;
        stats_.checkpoint_records++;
        good(*w);
      }));
  const std::string good_prefix = ShardPrefix(kGoodKind, shard);
  HAT_RETURN_IF_ERROR(disk_->Scan(
      good_prefix, ShardPrefixEnd(kGoodKind, shard),
      [this, &good, &good_prefix](std::string_view sk,
                                  std::string_view value) {
        auto parsed = version::ParseStorageKey(sk.substr(good_prefix.size()));
        if (!parsed) return;
        auto w = version::DecodeWriteRecord(parsed->first, value);
        if (!w) return;
        stats_.tail_records++;
        good(*w);
      }));
  // Buffer pending records: the callback typically re-enters the MAV
  // pipeline, which persists (writes to this store) — illegal mid-scan.
  const std::string pending_prefix = ShardPrefix(kPendingKind, shard);
  std::vector<WriteRecord> buffered;
  HAT_RETURN_IF_ERROR(disk_->Scan(
      pending_prefix, ShardPrefixEnd(kPendingKind, shard),
      [&buffered, &pending_prefix](std::string_view sk,
                                   std::string_view value) {
        auto parsed =
            version::ParseStorageKey(sk.substr(pending_prefix.size()));
        if (!parsed) return;
        auto w = version::DecodeWriteRecord(parsed->first, value);
        if (w) buffered.push_back(std::move(*w));
      }));
  stats_.pending_records += buffered.size();
  for (const auto& w : buffered) pending(w);
  return Status::Ok();
}

Status PersistenceManager::Recover(
    size_t shard_count,
    const std::function<void(size_t shard, const WriteRecord&)>& good,
    const std::function<void(size_t shard, const WriteRecord&)>& pending) {
  if (!disk_) return Status::Unsupported("server has no storage directory");
  stats_ = {};  // recover_stats() describes the most recent full recovery
  for (size_t s = 0; s < shard_count; s++) {
    HAT_RETURN_IF_ERROR(RecoverShard(
        s, [&good, s](const WriteRecord& w) { good(s, w); },
        [&pending, s](const WriteRecord& w) { pending(s, w); }));
  }
  return Status::Ok();
}

Status PersistenceManager::Recover(
    const std::vector<uint32_t>& shards,
    const std::function<void(size_t shard, const WriteRecord&)>& good,
    const std::function<void(size_t shard, const WriteRecord&)>& pending) {
  if (!disk_) return Status::Unsupported("server has no storage directory");
  stats_ = {};  // recover_stats() describes the most recent full recovery
  for (uint32_t s : shards) {
    HAT_RETURN_IF_ERROR(RecoverShard(
        s, [&good, s](const WriteRecord& w) { good(s, w); },
        [&pending, s](const WriteRecord& w) { pending(s, w); }));
  }
  return Status::Ok();
}

}  // namespace hat::server
