#include "hat/server/persistence_manager.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "hat/version/wire.h"

namespace hat::server {

namespace {
constexpr std::string_view kGoodKind = "g";
constexpr std::string_view kPendingKind = "p";

/// "g/002a/" — fixed-width hex keeps shard prefixes disjoint and ordered.
std::string ShardPrefix(std::string_view kind, size_t shard) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%s/%04zx/", std::string(kind).c_str(),
                shard);
  return buf;
}

/// Exclusive upper bound for a shard-prefix scan ('/' + 1 == '0').
std::string ShardPrefixEnd(std::string_view kind, size_t shard) {
  std::string end = ShardPrefix(kind, shard);
  end.back() = '0';
  return end;
}
}  // namespace

PersistenceManager::PersistenceManager(const std::string& dir) {
  if (dir.empty()) return;
  auto store = storage::LocalStore::Open(dir);
  if (store.ok()) disk_ = std::move(store).value();
}

const std::string& PersistenceManager::CachedPrefix(
    std::vector<std::string>& prefixes, std::string_view kind, size_t shard) {
  if (shard >= prefixes.size()) prefixes.resize(shard + 1);
  if (prefixes[shard].empty()) prefixes[shard] = ShardPrefix(kind, shard);
  return prefixes[shard];
}

void PersistenceManager::Persist(std::string_view kind,
                                 std::vector<std::string>& prefixes,
                                 size_t shard, const WriteRecord& w) {
  if (!disk_) return;
  std::string sk = CachedPrefix(prefixes, kind, shard);
  sk += version::StorageKeyFor(w.key, w.ts);
  (void)disk_->Put(sk, version::EncodeWriteRecord(w));
}

void PersistenceManager::PersistGood(size_t shard, const WriteRecord& w) {
  Persist(kGoodKind, good_prefixes_, shard, w);
}

void PersistenceManager::PersistPending(size_t shard, const WriteRecord& w) {
  Persist(kPendingKind, pending_prefixes_, shard, w);
}

void PersistenceManager::ErasePersistedPending(size_t shard,
                                               const WriteRecord& w) {
  if (!disk_) return;
  std::string sk = CachedPrefix(pending_prefixes_, kPendingKind, shard);
  sk += version::StorageKeyFor(w.key, w.ts);
  (void)disk_->Delete(sk);
}

Status PersistenceManager::RecoverShard(
    size_t shard, const std::function<void(const WriteRecord&)>& good,
    const std::function<void(const WriteRecord&)>& pending) {
  if (!disk_) return Status::Unsupported("server has no storage directory");
  const std::string good_prefix = ShardPrefix(kGoodKind, shard);
  HAT_RETURN_IF_ERROR(disk_->Scan(
      good_prefix, ShardPrefixEnd(kGoodKind, shard),
      [&good, &good_prefix](std::string_view sk, std::string_view value) {
        auto parsed = version::ParseStorageKey(sk.substr(good_prefix.size()));
        if (!parsed) return;
        auto w = version::DecodeWriteRecord(parsed->first, value);
        if (w) good(*w);
      }));
  // Buffer pending records: the callback typically re-enters the MAV
  // pipeline, which persists (writes to this store) — illegal mid-scan.
  const std::string pending_prefix = ShardPrefix(kPendingKind, shard);
  std::vector<WriteRecord> buffered;
  HAT_RETURN_IF_ERROR(disk_->Scan(
      pending_prefix, ShardPrefixEnd(kPendingKind, shard),
      [&buffered, &pending_prefix](std::string_view sk,
                                   std::string_view value) {
        auto parsed =
            version::ParseStorageKey(sk.substr(pending_prefix.size()));
        if (!parsed) return;
        auto w = version::DecodeWriteRecord(parsed->first, value);
        if (w) buffered.push_back(std::move(*w));
      }));
  for (const auto& w : buffered) pending(w);
  return Status::Ok();
}

Status PersistenceManager::Recover(
    size_t shard_count,
    const std::function<void(size_t shard, const WriteRecord&)>& good,
    const std::function<void(size_t shard, const WriteRecord&)>& pending) {
  if (!disk_) return Status::Unsupported("server has no storage directory");
  for (size_t s = 0; s < shard_count; s++) {
    HAT_RETURN_IF_ERROR(RecoverShard(
        s, [&good, s](const WriteRecord& w) { good(s, w); },
        [&pending, s](const WriteRecord& w) { pending(s, w); }));
  }
  return Status::Ok();
}

}  // namespace hat::server
