// Partitioning interface: who replicates a key, and which replica is its
// master. The paper's prototype is "partially replicated (hash-based
// partitioned)": each *cluster* holds a full copy of the database, sharded
// across its servers; a key's replicas are the servers holding its shard in
// every cluster (Section 6.3, "Configuration"). A server may itself host
// several logical shards (ServerOptions::shards_per_server): placement
// below the server level is the hosting server's own ShardedStore routing,
// so this interface stays server-granular.

#ifndef HAT_SERVER_PARTITIONER_H_
#define HAT_SERVER_PARTITIONER_H_

#include <vector>

#include "hat/net/topology.h"
#include "hat/version/types.h"

namespace hat::server {

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// All servers replicating `key` (one per cluster).
  virtual std::vector<net::NodeId> ReplicasOf(const Key& key) const = 0;

  /// The (randomly designated, deterministic) master replica for `key` —
  /// the serialization point used by master and locking modes.
  virtual net::NodeId MasterOf(const Key& key) const = 0;

  /// Current placement epoch (bumped by every live shard migration).
  /// Servers compare it against their durable manifest on recovery; fixed
  /// partitioners that never rebalance stay at 0.
  virtual uint64_t PlacementEpoch() const { return 0; }
};

}  // namespace hat::server

#endif  // HAT_SERVER_PARTITIONER_H_
