// LockManager: the strict two-phase-locking table of the Section 6.3
// "locking" baseline, with a pluggable deadlock-avoidance policy: wait-die
// (the default; older transactions queue, younger die) or no-wait (every
// conflicting request aborts immediately — no queue, no hold-and-wait, at
// the cost of more client retries under contention).
//
// The manager is a pure data structure over (key -> lock state): it holds no
// network or simulation references. Decisions are delivered through a
// Responder callback — immediately for grants and wait-die aborts, or later
// (from Release) for queued waiters — so the owner decides how responses
// travel (ReplicaServer replies over RPC; unit tests capture them directly).

#ifndef HAT_SERVER_LOCK_MANAGER_H_
#define HAT_SERVER_LOCK_MANAGER_H_

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "hat/net/message.h"
#include "hat/version/types.h"

namespace hat::server {

struct LockStats {
  uint64_t granted = 0;
  uint64_t queued = 0;
  uint64_t deaths = 0;  ///< wait-die / no-wait aborts issued
};

/// How a conflicting lock request is resolved.
enum class LockPolicy : uint8_t {
  /// Older (smaller-timestamp) requesters queue; younger ones abort.
  kWaitDie = 0,
  /// Every conflicting requester aborts immediately; nothing ever queues.
  kNoWait = 1,
};

class LockManager {
 public:
  using Responder =
      std::function<void(const net::Envelope&, const net::LockResponse&)>;

  explicit LockManager(Responder responder,
                       LockPolicy policy = LockPolicy::kWaitDie)
      : responder_(std::move(responder)), policy_(policy) {}

  /// Processes a lock request. Exactly one response is eventually issued per
  /// request: granted / must_abort now, or granted later when a queued
  /// waiter unblocks. `env` is retained for queued requests and handed back
  /// to the responder verbatim.
  void Acquire(const net::Envelope& env, const net::LockRequest& req);

  /// Releases every lock `req.txn` holds on `req.keys`, purges it from wait
  /// queues (abort cleanup), and grants newly compatible waiters.
  void Release(const net::UnlockRequest& req);

  /// Drops all lock state (crash). Stats survive, mirroring ServerStats.
  void Clear() { locks_.clear(); }

  const LockStats& stats() const { return stats_; }
  size_t LockedKeyCount() const { return locks_.size(); }

 private:
  struct Waiter {
    Timestamp txn;
    bool exclusive;
    net::Envelope request;  // replied to on grant
  };
  struct LockState {
    std::optional<Timestamp> x_holder;
    std::set<Timestamp> s_holders;
    std::deque<Waiter> waiters;
  };

  void GrantWaiters(const Key& key);

  Responder responder_;
  LockPolicy policy_;
  LockStats stats_;
  std::map<Key, LockState> locks_;
};

}  // namespace hat::server

#endif  // HAT_SERVER_LOCK_MANAGER_H_
