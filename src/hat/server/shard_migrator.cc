#include "hat/server/shard_migrator.h"

#include <utility>

namespace hat::server {

ShardMigrator::ShardMigrator(sim::Simulation& sim, version::ShardedStore& good,
                             Options options, SendFn send, CallFn call,
                             InstallFn install, AttachHook on_attach,
                             ManifestHook on_ownership_change,
                             TombstoneFn tombstone)
    : sim_(sim),
      good_(good),
      options_(options),
      send_(std::move(send)),
      call_(std::move(call)),
      install_(std::move(install)),
      on_attach_(std::move(on_attach)),
      on_ownership_change_(std::move(on_ownership_change)),
      tombstone_(std::move(tombstone)) {}

// ---------------------------------------------------------------------------
// Destination role
// ---------------------------------------------------------------------------

void ShardMigrator::StartPull(uint64_t migration_id, uint32_t shard,
                              net::NodeId source) {
  // A restarted migration supersedes any stale session for the same shard.
  for (auto it = dests_.begin(); it != dests_.end();) {
    it = it->second.shard == shard ? dests_.erase(it) : std::next(it);
  }
  size_t slot = good_.AttachShard(shard);
  if (on_attach_) on_attach_(slot);
  staging_.insert(shard);
  dests_.emplace(migration_id, DestSession{shard, source, false});
  send_(source, net::ShardSnapshotRequest{migration_id, shard});
}

bool ShardMigrator::PullComplete(uint64_t migration_id) const {
  auto it = dests_.find(migration_id);
  return it != dests_.end() && it->second.done;
}

net::ShardSnapshotAck ShardMigrator::HandleChunk(
    const net::ShardSnapshotChunk& chunk) {
  auto it = dests_.find(chunk.migration_id);
  if (it == dests_.end()) {
    // No such session (crash + restart): tell the source to stop streaming.
    return net::ShardSnapshotAck{chunk.migration_id, chunk.seq, false};
  }
  stats_.snapshot_chunks_in++;
  for (const WriteRecord& w : chunk.writes) {
    if (install_(w)) stats_.snapshot_records_in++;
  }
  if (chunk.done) it->second.done = true;
  return net::ShardSnapshotAck{chunk.migration_id, chunk.seq, true};
}

void ShardMigrator::PromoteStaging(uint32_t shard) {
  staging_.erase(shard);
  for (auto it = dests_.begin(); it != dests_.end();) {
    it = it->second.shard == shard ? dests_.erase(it) : std::next(it);
  }
  if (on_ownership_change_) on_ownership_change_();
}

// ---------------------------------------------------------------------------
// Source role
// ---------------------------------------------------------------------------

void ShardMigrator::HandleSnapshotRequest(const net::ShardSnapshotRequest& req,
                                          net::NodeId from) {
  auto slot = good_.SlotOfLogical(req.shard);
  if (!slot) return;  // we no longer host it; the coordinator will restart
  // A re-request under the same id (destination restarted before any chunk
  // arrived) re-freezes from scratch — chunk application is idempotent.
  SourceSession session;
  session.shard = req.shard;
  session.dest = from;
  good_.shard(*slot).ForEachVersion(
      [&session](const WriteRecord& w) { session.frozen.push_back(w); });
  sources_[req.migration_id] = std::move(session);
  SendNextChunk(req.migration_id);
}

void ShardMigrator::SendNextChunk(uint64_t migration_id) {
  auto it = sources_.find(migration_id);
  if (it == sources_.end()) return;
  SourceSession& s = it->second;
  net::ShardSnapshotChunk chunk;
  chunk.migration_id = migration_id;
  chunk.shard = s.shard;
  chunk.seq = s.seq;
  size_t bytes = 0;
  while (s.next_record < s.frozen.size() &&
         chunk.writes.size() < options_.chunk_max_records &&
         (chunk.writes.empty() || options_.chunk_max_bytes == 0 ||
          bytes < options_.chunk_max_bytes)) {
    bytes += net::WriteRecordWireBytes(s.frozen[s.next_record]);
    chunk.writes.push_back(s.frozen[s.next_record++]);
  }
  chunk.done = s.next_record >= s.frozen.size();
  s.inflight = std::move(chunk);
  SendInflight(migration_id);
}

void ShardMigrator::SendInflight(uint64_t migration_id) {
  auto it = sources_.find(migration_id);
  if (it == sources_.end()) return;
  SourceSession& s = it->second;
  stats_.snapshot_chunks_out++;
  uint32_t seq = s.seq;
  call_(s.dest, s.inflight, options_.chunk_timeout,
        [this, migration_id, seq](Status status, const net::Message* m) {
          auto it = sources_.find(migration_id);
          if (it == sources_.end()) return;  // cancelled / crashed
          SourceSession& s = it->second;
          if (s.seq != seq) return;  // stale callback of a superseded chunk
          if (!status.ok()) {
            // Timeout: stop-and-wait resend (application is idempotent).
            SendInflight(migration_id);
            return;
          }
          const auto* ack = std::get_if<net::ShardSnapshotAck>(m);
          if (ack == nullptr || !ack->ok) {
            // The destination no longer runs this migration; stop. The
            // coordinator restarts under a fresh id if still wanted.
            sources_.erase(it);
            return;
          }
          stats_.snapshot_records_out += s.inflight.writes.size();
          bool done = s.inflight.done;
          s.seq++;
          if (done) {
            s.fully_sent = true;
            s.frozen.clear();  // bulk shipped; free the frozen copy
            s.inflight = net::ShardSnapshotChunk{};
            StartCatchup(migration_id);
          } else {
            SendNextChunk(migration_id);
          }
        });
}

bool ShardMigrator::SnapshotFullySent(uint64_t migration_id) const {
  auto it = sources_.find(migration_id);
  return it != sources_.end() && it->second.fully_sent;
}

void ShardMigrator::StartCatchup(uint64_t migration_id) {
  sim_.After(options_.catchup_interval,
             [this, migration_id]() { CatchupTick(migration_id); });
}

void ShardMigrator::StartCatchupOnly(uint64_t migration_id, uint32_t shard,
                                     net::NodeId dest) {
  SourceSession session;
  session.shard = shard;
  session.dest = dest;
  session.fully_sent = true;
  sources_[migration_id] = std::move(session);
  StartCatchup(migration_id);
}

void ShardMigrator::CatchupTick(uint64_t migration_id) {
  auto it = sources_.find(migration_id);
  if (it == sources_.end()) return;  // drained or cancelled
  SourceSession& s = it->second;
  auto slot = good_.SlotOfLogical(s.shard);
  if (!slot) {
    sources_.erase(it);  // detached underneath us
    return;
  }
  // One (shard, bucket)-scoped digest round against the destination: it
  // answers with a bucket-scoped DigestRequest for mismatches and we
  // back-fill — the regular anti-entropy handlers do all the work.
  stats_.catchup_digests_out++;
  net::BucketDigest digest;
  digest.shard = s.shard;
  digest.hashes = good_.shard(*slot).BucketHashes();
  send_(s.dest, std::move(digest));
  StartCatchup(migration_id);
}

void ShardMigrator::FinishDrain(uint64_t migration_id) {
  auto it = sources_.find(migration_id);
  if (it == sources_.end()) return;
  uint32_t shard = it->second.shard;
  sources_.erase(it);
  good_.DetachShard(shard);
  if (tombstone_) tombstone_(shard);
  if (on_ownership_change_) on_ownership_change_();
}

void ShardMigrator::Clear() {
  sources_.clear();
  dests_.clear();
  staging_.clear();
}

}  // namespace hat::server
