#include "hat/server/mav_coordinator.h"

#include <algorithm>
#include <utility>

namespace hat::server {

namespace {
constexpr size_t kPromotedMemory = 100000;
constexpr size_t kEarlyAckBackstop = 100000;
}  // namespace

MavCoordinator::MavCoordinator(sim::Simulation& sim, net::NodeId id,
                               const Partitioner* partitioner,
                               version::ShardedStore& good,
                               PersistenceManager& persistence, Options options,
                               SendFn send, GossipFn gossip, GcFn gc_versions)
    : sim_(sim),
      id_(id),
      partitioner_(partitioner),
      good_(good),
      persistence_(persistence),
      options_(options),
      send_(std::move(send)),
      gossip_(std::move(gossip)),
      gc_versions_(std::move(gc_versions)) {}

void MavCoordinator::Start() {
  // Stagger the recurring timer per server so deterministic runs do not
  // synchronize every server's background work on the same tick.
  sim::Duration offset = (id_ * 131) % options_.renotify_interval + 1;
  sim_.After(offset, [this]() { RenotifyTick(); });
}

size_t MavCoordinator::PendingWriteCount() const {
  size_t n = 0;
  for (const auto& [ts, txn] : pending_txns_) n += txn.writes.size();
  return n;
}

const WriteRecord* MavCoordinator::PendingVersion(const Key& key,
                                                  const Timestamp& ts) {
  auto by_key = pending_by_key_.find(key);
  if (by_key == pending_by_key_.end()) return nullptr;
  auto exact = by_key->second.find(ts);
  if (exact == by_key->second.end()) return nullptr;
  stats_.gets_from_pending++;
  return &exact->second;
}

void MavCoordinator::Install(const WriteRecord& w, bool gossip,
                             net::NodeId origin, obs::TraceContext trace) {
  // A write for a shard this server no longer hosts (live migration) has
  // nothing to install here; the owner's copy runs the MAV protocol.
  if (!good_.OwnsKey(w.key)) return;
  // Duplicate suppression: already promoted or already pending.
  if (good_.Contains(w.key, w.ts)) return;
  auto& per_key = pending_by_key_[w.key];
  if (per_key.count(w.ts)) return;

  // Pending invalidation (Appendix B optimization): a good version newer
  // than this write supersedes it for every read path, so the write itself
  // can be dropped — but we still ack so siblings can promote elsewhere.
  auto latest_good = good_.LatestTimestamp(w.key);
  bool stale =
      options_.gc_stale_pending && latest_good && *latest_good > w.ts;
  if (stale) {
    stats_.stale_pending_dropped++;
  } else {
    per_key.emplace(w.ts, w);
  }
  if (per_key.empty()) pending_by_key_.erase(w.key);

  auto& txn = pending_txns_[w.ts];
  if (txn.sibs.empty()) {
    txn.sibs = w.sibs.empty() ? std::vector<Key>{w.key} : w.sibs;
    txn.installed_us = sim_.Now();
    auto early = early_acks_.find(w.ts);
    if (early != early_acks_.end()) {
      txn.acks = std::move(early->second);
      early_acks_.erase(early);
    }
  }
  if (trace.active() && !txn.trace.active()) txn.trace = trace;
  txn.writes.push_back(w);
  if (!stale) persistence_.PersistPending(good_.LogicalShardOfKey(w.key), w);
  if (gossip) gossip_(w, origin, trace);
  MaybeAck(w.ts);
  MaybePromote(w.ts);
}

std::set<net::NodeId> MavCoordinator::AckSetFor(
    const std::vector<Key>& sibs) const {
  std::set<net::NodeId> out;
  for (const auto& k : sibs) {
    for (net::NodeId r : partitioner_->ReplicasOf(k)) out.insert(r);
  }
  return out;
}

std::vector<Key> MavCoordinator::LocalKeysOf(
    const std::vector<Key>& sibs) const {
  std::vector<Key> out;
  for (const auto& k : sibs) {
    auto replicas = partitioner_->ReplicasOf(k);
    if (std::find(replicas.begin(), replicas.end(), id_) != replicas.end()) {
      out.push_back(k);
    }
  }
  return out;
}

void MavCoordinator::MaybeAck(const Timestamp& ts) {
  auto it = pending_txns_.find(ts);
  if (it == pending_txns_.end() || it->second.acked_by_self) return;
  PendingTxn& txn = it->second;
  // Ack once every sibling key this server replicates has arrived.
  std::vector<Key> local = LocalKeysOf(txn.sibs);
  for (const auto& k : local) {
    bool have = false;
    for (const auto& w : txn.writes) {
      if (w.key == k) {
        have = true;
        break;
      }
    }
    if (!have) return;
  }
  txn.acked_by_self = true;
  for (net::NodeId peer : AckSetFor(txn.sibs)) {
    if (peer == id_) {
      txn.acks.insert(id_);
    } else {
      send_(peer, net::NotifyRequest{ts, id_}, txn.trace);
    }
  }
}

void MavCoordinator::HandleNotify(const net::NotifyRequest& req) {
  stats_.notifies++;
  auto it = pending_txns_.find(req.ts);
  if (it == pending_txns_.end()) {
    if (promoted_.count(req.ts)) {
      // We already promoted this transaction and dropped its ack state; the
      // sender is catching up after a partition — answer so it can promote.
      if (req.sender != id_) {
        send_(req.sender, net::NotifyRequest{req.ts, id_}, {});
      }
      return;
    }
    // The ack raced ahead of the write itself; remember it.
    if (early_acks_.size() > kEarlyAckBackstop) early_acks_.clear();
    early_acks_[req.ts].insert(req.sender);
    return;
  }
  it->second.acks.insert(req.sender);
  MaybePromote(req.ts);
}

void MavCoordinator::MaybePromote(const Timestamp& ts) {
  auto it = pending_txns_.find(ts);
  if (it == pending_txns_.end()) return;
  PendingTxn& txn = it->second;
  std::set<net::NodeId> expected = AckSetFor(txn.sibs);
  for (net::NodeId n : expected) {
    if (!txn.acks.count(n)) return;
  }
  // Pending-stable everywhere: reveal. (Keys of a shard detached mid-flight
  // by live migration have no local copy to reveal into; their pending
  // entries are dropped with the shard.)
  for (const auto& w : txn.writes) {
    if (!good_.OwnsKey(w.key)) continue;
    size_t shard = good_.LogicalShardOfKey(w.key);
    if (good_.Apply(w)) persistence_.PersistGood(shard, w);
    gc_versions_(w.key);
    persistence_.ErasePersistedPending(shard, w);
    auto by_key = pending_by_key_.find(w.key);
    if (by_key != pending_by_key_.end()) {
      by_key->second.erase(w.ts);
      if (by_key->second.empty()) pending_by_key_.erase(by_key);
    }
  }
  stats_.promotions++;
  if (txn.trace.active() && tracer_ != nullptr && tracer_->enabled()) {
    // Ack fan-in: first install of the txn on this replica -> pending-stable.
    obs::Span s;
    s.trace_id = txn.trace.trace_id;
    s.span_id = tracer_->NewSpanId();
    s.parent_id = txn.trace.span_id;
    s.kind = obs::SpanKind::kMavAckWait;
    s.node = id_;
    s.start_us = txn.installed_us;
    s.end_us = sim_.Now();
    s.arg = txn.acks.size();
    tracer_->Record(s);
  }
  pending_txns_.erase(it);
  promoted_.insert(ts);
  promoted_fifo_.push_back(ts);
  if (promoted_fifo_.size() > kPromotedMemory) {
    promoted_.erase(promoted_fifo_.front());
    promoted_fifo_.pop_front();
  }
}

void MavCoordinator::RenotifyTick() {
  // Liveness under partitions: keep re-broadcasting our ack for transactions
  // still pending so a healed network eventually promotes them.
  for (auto& [ts, txn] : pending_txns_) {
    if (!txn.acked_by_self) continue;
    for (net::NodeId peer : AckSetFor(txn.sibs)) {
      if (peer != id_ && !txn.acks.count(peer)) {
        // Renotifies are background retransmits, not part of any one txn's
        // critical path; they go untraced.
        send_(peer, net::NotifyRequest{ts, id_}, {});
      }
    }
  }
  sim_.After(options_.renotify_interval, [this]() { RenotifyTick(); });
}

void MavCoordinator::Clear() {
  pending_by_key_.clear();
  pending_txns_.clear();
  early_acks_.clear();
  promoted_.clear();
  promoted_fifo_.clear();
}

}  // namespace hat::server
