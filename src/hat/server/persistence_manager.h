// PersistenceManager: write-through durability for one replica server.
//
// Installed (good) and not-yet-stable (MAV pending) versions are persisted
// under distinct per-shard keyspace prefixes in a hat::storage::LocalStore
// ("g/<shard>/..." and "p/<shard>/..."), so a crashed replica can rebuild
// both its visible state and its in-flight Appendix B pipeline from disk —
// shard by shard, replaying only the shards the server hosts. The shard
// component of the keyspace is the *logical* shard id (stable across live
// migration and independent of local slot numbering), and a manifest
// records the layout the keyspace was written under
// ({shards_per_server, placement stride, placement epoch, owned logical
// shards}): recovery validates the manifest against the server's current
// configuration and refuses to replay on mismatch instead of silently
// scrambling records across shards. Live migration reshards the keyspace
// explicitly — the destination persists the incoming shard under its
// logical prefix, the source EraseShard-tombstones its copy after cutover.
// When constructed without a directory the manager is disabled and every
// call is a no-op — benchmarks model durability purely as service time
// (ServiceCosts::wal_sync_us) without doing real IO.

#ifndef HAT_SERVER_PERSISTENCE_MANAGER_H_
#define HAT_SERVER_PERSISTENCE_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hat/common/result.h"
#include "hat/common/status.h"
#include "hat/storage/local_store.h"
#include "hat/version/types.h"

namespace hat::server {

/// Where a recovery's records came from — checkpoint vs WAL-tail vs pending.
/// Monotonic across RecoverShard calls; the recovery-time tests assert the
/// tail component stays proportional to writes-since-checkpoint, not total
/// history.
struct RecoverStats {
  uint64_t checkpoint_records = 0;
  uint64_t tail_records = 0;
  uint64_t pending_records = 0;
};

/// The durable marker a completed checkpoint leaves behind.
struct CheckpointInfo {
  uint64_t epoch = 0;    ///< placement epoch the snapshot was taken under
  uint64_t records = 0;  ///< live versions written into the checkpoint
};

/// The durable layout descriptor guarding the per-shard keyspace.
struct PersistenceManifest {
  uint32_t shards_per_server = 1;
  uint32_t stride = 1;
  /// Placement epoch at the last ownership change (informational — a
  /// recovering server may lag the cluster's epoch, but a manifest from the
  /// future is refused as corruption).
  uint64_t epoch = 0;
  /// Logical shard ids this server's keyspace holds, in slot order.
  std::vector<uint32_t> owned;
};

class PersistenceManager {
 public:
  /// Opens (or creates) a LocalStore rooted at `dir`. Empty `dir` disables
  /// persistence entirely.
  explicit PersistenceManager(const std::string& dir);

  /// True when writes actually reach disk.
  bool enabled() const { return disk_ != nullptr; }

  /// Persists a revealed (good-set) version under `shard`'s prefix
  /// (`shard` is the key's logical shard id).
  void PersistGood(size_t shard, const WriteRecord& w);

  /// Persists a pending (MAV, not yet stable) version under `shard`'s
  /// prefix.
  void PersistPending(size_t shard, const WriteRecord& w);

  /// Runs `fn` under a single WAL group commit: every record persisted
  /// inside pays one shared durability point instead of one sync each —
  /// the batched wire path's discipline for shard-homogeneous anti-entropy
  /// batches and client envelope batches. A no-op wrapper (fn still runs)
  /// when persistence is disabled.
  void GroupCommit(const std::function<void()>& fn);

  /// GroupCommit scopes completed so far (0 when persistence is disabled).
  uint64_t group_commits() const;

  /// Removes the pending copy of `w` once its transaction promoted.
  void ErasePersistedPending(size_t shard, const WriteRecord& w);

  // ---- layout manifest -----------------------------------------------------

  /// Writes (or rewrites) the layout manifest.
  Status WriteManifest(const PersistenceManifest& m);

  /// Reads the layout manifest; kNotFound when none was ever written.
  Result<PersistenceManifest> ReadManifest() const;

  /// True when any shard record (good or pending) exists on disk — the
  /// guard distinguishing "reshaping an empty store" (safe, manifest is
  /// rewritten) from "reshaping live data" (refused).
  bool HasShardData() const;

  /// Deletes every persisted record (good, pending, checkpoint, and the
  /// checkpoint marker) of one logical shard's keyspace — the source-side
  /// tombstone after migration cutover.
  Status EraseShard(size_t shard);

  // ---- checkpoints ---------------------------------------------------------

  /// Replaces `shard`'s good-version history with a snapshot of its live
  /// versions, bounding recovery replay to checkpoint + tail instead of
  /// every version ever installed. `for_each_live` is called once with a
  /// sink and must stream every live version of the shard into it (it runs
  /// before any delete, so the callback may read but not write this store).
  ///
  /// Crash-safe by write ordering: (1) snapshot records land under the
  /// checkpoint prefix, (2) stale checkpoint records from the previous
  /// checkpoint are deleted, (3) the marker commits the checkpoint, (4) the
  /// good-history prefix is truncated, (5) the backing store flushes so its
  /// own WAL truncates. A crash between any two steps recovers correctly
  /// because replay applies checkpoint records *then* the good tail, and
  /// version insertion is idempotent per (key, ts): a half-written snapshot
  /// alongside the untruncated history folds to the same state — a GC-folded
  /// synthetic Put shares its timestamp with the newest version it folded,
  /// so whichever copy replays first shadows the other identically.
  Status CheckpointShard(
      size_t shard, uint64_t epoch,
      const std::function<
          void(const std::function<void(const WriteRecord&)>&)>& for_each_live);

  /// Reads `shard`'s checkpoint marker; kNotFound when the shard was never
  /// checkpointed.
  Result<CheckpointInfo> ReadCheckpointMarker(size_t shard) const;

  /// Source breakdown of everything replayed so far (see RecoverStats).
  const RecoverStats& recover_stats() const { return stats_; }

  // ---- recovery ------------------------------------------------------------

  /// Replays one shard's durable state: its checkpoint snapshot (if any) and
  /// then its good-version tail are streamed to `good` (mid-scan — the good
  /// callback must NOT write back to this store), then its pending versions
  /// are streamed to `pending` in storage-key order. Pending callbacks run
  /// after the scans complete, so they may persist again (the MAV pipeline
  /// re-persists re-entering writes).
  Status RecoverShard(size_t shard,
                      const std::function<void(const WriteRecord&)>& good,
                      const std::function<void(const WriteRecord&)>& pending);

  /// Replays shards [0, shard_count): RecoverShard per shard, callbacks
  /// receiving the shard index each record was persisted under.
  Status Recover(
      size_t shard_count,
      const std::function<void(size_t shard, const WriteRecord&)>& good,
      const std::function<void(size_t shard, const WriteRecord&)>& pending);

  /// Replays exactly the listed logical shards (the manifest's owned set).
  Status Recover(
      const std::vector<uint32_t>& shards,
      const std::function<void(size_t shard, const WriteRecord&)>& good,
      const std::function<void(size_t shard, const WriteRecord&)>& pending);

 private:
  void Persist(std::string_view kind, std::vector<std::string>& prefixes,
               size_t shard, const WriteRecord& w);
  /// The cached "<kind>/<shard>/" storage prefix (built once per shard —
  /// the persist path runs per installed write and must not re-format it).
  static const std::string& CachedPrefix(std::vector<std::string>& prefixes,
                                         std::string_view kind, size_t shard);

  std::unique_ptr<storage::LocalStore> disk_;
  std::vector<std::string> good_prefixes_;
  std::vector<std::string> pending_prefixes_;
  RecoverStats stats_;
};

}  // namespace hat::server

#endif  // HAT_SERVER_PERSISTENCE_MANAGER_H_
