// PersistenceManager: write-through durability for one replica server.
//
// Installed (good) and not-yet-stable (MAV pending) versions are persisted
// under distinct per-shard keyspace prefixes in a hat::storage::LocalStore
// ("g/<shard>/..." and "p/<shard>/..."), so a crashed replica can rebuild
// both its visible state and its in-flight Appendix B pipeline from disk —
// shard by shard, replaying only the shards the server hosts. The shard
// index is part of the storage keyspace: it must be stable across restarts
// (reshard by wiping the directory, not by changing shards_per_server over
// live data). When constructed without a directory the manager is disabled
// and every call is a no-op — benchmarks model durability purely as service
// time (ServiceCosts::wal_sync_us) without doing real IO.

#ifndef HAT_SERVER_PERSISTENCE_MANAGER_H_
#define HAT_SERVER_PERSISTENCE_MANAGER_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hat/common/status.h"
#include "hat/storage/local_store.h"
#include "hat/version/types.h"

namespace hat::server {

class PersistenceManager {
 public:
  /// Opens (or creates) a LocalStore rooted at `dir`. Empty `dir` disables
  /// persistence entirely.
  explicit PersistenceManager(const std::string& dir);

  /// True when writes actually reach disk.
  bool enabled() const { return disk_ != nullptr; }

  /// Persists a revealed (good-set) version under `shard`'s prefix.
  void PersistGood(size_t shard, const WriteRecord& w);

  /// Persists a pending (MAV, not yet stable) version under `shard`'s
  /// prefix.
  void PersistPending(size_t shard, const WriteRecord& w);

  /// Removes the pending copy of `w` once its transaction promoted.
  void ErasePersistedPending(size_t shard, const WriteRecord& w);

  /// Replays one shard's durable state: its good versions are streamed to
  /// `good` (mid-scan — the good callback must NOT write back to this
  /// store), then its pending versions are streamed to `pending` in
  /// storage-key order. Pending callbacks run after the scans complete, so
  /// they may persist again (the MAV pipeline re-persists re-entering
  /// writes).
  Status RecoverShard(size_t shard,
                      const std::function<void(const WriteRecord&)>& good,
                      const std::function<void(const WriteRecord&)>& pending);

  /// Replays shards [0, shard_count): RecoverShard per shard, callbacks
  /// receiving the shard index each record was persisted under.
  Status Recover(
      size_t shard_count,
      const std::function<void(size_t shard, const WriteRecord&)>& good,
      const std::function<void(size_t shard, const WriteRecord&)>& pending);

 private:
  void Persist(std::string_view kind, std::vector<std::string>& prefixes,
               size_t shard, const WriteRecord& w);
  /// The cached "<kind>/<shard>/" storage prefix (built once per shard —
  /// the persist path runs per installed write and must not re-format it).
  static const std::string& CachedPrefix(std::vector<std::string>& prefixes,
                                         std::string_view kind, size_t shard);

  std::unique_ptr<storage::LocalStore> disk_;
  std::vector<std::string> good_prefixes_;
  std::vector<std::string> pending_prefixes_;
};

}  // namespace hat::server

#endif  // HAT_SERVER_PERSISTENCE_MANAGER_H_
