// PersistenceManager: write-through durability for one replica server.
//
// Installed (good) and not-yet-stable (MAV pending) versions are persisted
// under distinct key prefixes in a hat::storage::LocalStore, so a crashed
// replica can rebuild both its visible state and its in-flight Appendix B
// pipeline from disk. When constructed without a directory the manager is
// disabled and every call is a no-op — benchmarks model durability purely as
// service time (ServiceCosts::wal_sync_us) without doing real IO.

#ifndef HAT_SERVER_PERSISTENCE_MANAGER_H_
#define HAT_SERVER_PERSISTENCE_MANAGER_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "hat/common/status.h"
#include "hat/storage/local_store.h"
#include "hat/version/types.h"

namespace hat::server {

class PersistenceManager {
 public:
  /// Opens (or creates) a LocalStore rooted at `dir`. Empty `dir` disables
  /// persistence entirely.
  explicit PersistenceManager(const std::string& dir);

  /// True when writes actually reach disk.
  bool enabled() const { return disk_ != nullptr; }

  /// Persists a revealed (good-set) version.
  void PersistGood(const WriteRecord& w);

  /// Persists a pending (MAV, not yet stable) version.
  void PersistPending(const WriteRecord& w);

  /// Removes the pending copy of `w` once its transaction promoted.
  void ErasePersistedPending(const WriteRecord& w);

  /// Replays durable state: every good version is streamed to `good`
  /// (mid-scan — the good callback must NOT write back to this store), then
  /// every pending version is streamed to `pending` in storage-key order.
  /// Pending callbacks run after the scans complete, so they may persist
  /// again (the MAV pipeline re-persists re-entering writes).
  Status Recover(const std::function<void(const WriteRecord&)>& good,
                 const std::function<void(const WriteRecord&)>& pending);

 private:
  void Persist(std::string_view prefix, const WriteRecord& w);

  std::unique_ptr<storage::LocalStore> disk_;
};

}  // namespace hat::server

#endif  // HAT_SERVER_PERSISTENCE_MANAGER_H_
