// AntiEntropyEngine: replica-to-replica write propagation for one server.
//
// Two complementary mechanisms, both deterministic under the simulation:
//  * Reliable push — per-peer outboxes are flushed on a timer into
//    mode-homogeneous batches; unacknowledged batches retransmit with
//    exponential backoff, so partitions delay but never lose gossip.
//    Receivers dedupe batches by id (bounded FIFO memory).
//  * Digest pull — optionally, the engine periodically sends its per-key
//    latest-version digest to one random peer, which returns whatever the
//    sender is missing. Catches writes whose push outbox died with a crash.
//
// The engine owns no sockets and installs nothing itself: messages leave via
// a SendFn callback and incoming records are handed to an InstallFn, so the
// engine is constructible — and fully drivable — from a unit test without a
// ReplicaServer.

#ifndef HAT_SERVER_ANTI_ENTROPY_ENGINE_H_
#define HAT_SERVER_ANTI_ENTROPY_ENGINE_H_

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "hat/common/rng.h"
#include "hat/net/message.h"
#include "hat/server/partitioner.h"
#include "hat/sim/simulation.h"
#include "hat/version/versioned_store.h"

namespace hat::server {

struct AntiEntropyStats {
  uint64_t batches_in = 0;
  uint64_t records_in = 0;
  uint64_t records_out = 0;
};

class AntiEntropyEngine {
 public:
  struct Options {
    /// Outbox flush cadence.
    sim::Duration flush_interval = 5 * sim::kMillisecond;
    /// Retransmit unacknowledged batches after this long (doubles per retry).
    sim::Duration retry_interval = 250 * sim::kMillisecond;
    /// Digest exchange cadence; 0 disables (push-only anti-entropy).
    sim::Duration digest_sync_interval = 0;
    /// Max writes per batch.
    size_t batch_max = 64;
  };
  /// Delivers a one-way message to a peer.
  using SendFn = std::function<void(net::NodeId, net::Message)>;
  /// Installs one received record (dispatches on PutMode at the owner).
  using InstallFn = std::function<void(const WriteRecord&, net::PutMode)>;

  AntiEntropyEngine(sim::Simulation& sim, net::NodeId id,
                    const Partitioner* partitioner,
                    const version::VersionedStore& good, Options options,
                    SendFn send, InstallFn install);

  /// Schedules the flush (and, if enabled, digest) timers, staggered by node
  /// id. Call once.
  void Start();

  /// Queues `w` for push to every replica of its key except this node and
  /// `except` (the node it came from).
  void Enqueue(const WriteRecord& w, net::PutMode mode, net::NodeId except);

  /// Applies an incoming push batch (acks it, dedupes retransmits, installs
  /// each record through the InstallFn).
  void HandleBatch(const net::AntiEntropyBatch& batch, net::NodeId from);

  /// Retires the inflight batch an ack refers to.
  void HandleAck(const net::AntiEntropyAck& ack) {
    inflight_.erase(ack.batch_id);
  }

  /// Answers a peer's digest with the versions it is missing, and — on the
  /// initiating round — with our own digest when the peer has data we lack.
  void HandleDigest(const net::DigestRequest& req, net::NodeId from);

  /// Drops all volatile gossip state (crash). Stats survive.
  void Clear();

  const AntiEntropyStats& stats() const { return stats_; }

 private:
  void FlushTick();
  void DigestSyncTick();
  uint64_t NextBatchId() {
    return (static_cast<uint64_t>(id_) << 40) | next_batch_id_++;
  }
  /// All peer replicas this server shares any shard with.
  std::vector<net::NodeId> PeerReplicas() const;

  sim::Simulation& sim_;
  net::NodeId id_;
  const Partitioner* partitioner_;
  const version::VersionedStore& good_;
  Options options_;
  SendFn send_;
  InstallFn install_;
  AntiEntropyStats stats_;
  // Digest-sync peer selection. Seeded from the node id (not a shared
  // constant) so replicas pick different peers in lock-stepped runs, while
  // staying deterministic for a given topology.
  Rng rng_;

  struct OutboxItem {
    WriteRecord write;
    net::PutMode mode;
  };
  std::map<net::NodeId, std::deque<OutboxItem>> outbox_;
  struct InFlightBatch {
    net::NodeId peer;
    net::AntiEntropyBatch batch;
    sim::SimTime sent_at;
    /// Exponential backoff: doubles per retransmission (capped), so slow
    /// acks under load do not trigger duplicate-processing storms.
    sim::Duration backoff;
  };
  std::map<uint64_t, InFlightBatch> inflight_;
  uint64_t next_batch_id_ = 1;
  // Batches already applied (dedupe against retransmits), bounded FIFO.
  std::deque<uint64_t> applied_batches_fifo_;
  std::set<uint64_t> applied_batches_;
};

}  // namespace hat::server

#endif  // HAT_SERVER_ANTI_ENTROPY_ENGINE_H_
