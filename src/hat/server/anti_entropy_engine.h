// AntiEntropyEngine: replica-to-replica write propagation for one server.
//
// Two complementary mechanisms, both deterministic under the simulation:
//  * Reliable push — per-peer outboxes are flushed on a timer into
//    mode-homogeneous batches; unacknowledged batches retransmit with
//    exponential backoff, so partitions delay but never lose gossip.
//    Receivers dedupe batches by id (bounded generational memory).
//  * Digest pull — optionally, the engine periodically syncs with one random
//    peer. The default protocol is *sharded + bucketed*, scoped tighter at
//    each round: round 0 ships one roll-up hash per local shard
//    (ShardDigest); the receiver answers with that shard's B bucket hashes
//    for mismatched shards only (BucketDigest); the initiator replies with
//    per-key digests for mismatched buckets only (scoped DigestRequest);
//    the receiver back-fills just those keys from VersionsAfter. An in-sync
//    tick therefore costs S hashes, and a diff confined to one shard never
//    hashes or walks the cold shards. The flat per-key protocol remains
//    available (Options::bucketed_digest = false) and its responder also
//    uses the per-shard bucket hashes to skip matching regions of the
//    keyspace.
//
// The engine owns no sockets and installs nothing itself: messages leave via
// a SendFn callback and incoming records are handed to an InstallFn, so the
// engine is constructible — and fully drivable — from a unit test without a
// ReplicaServer.

#ifndef HAT_SERVER_ANTI_ENTROPY_ENGINE_H_
#define HAT_SERVER_ANTI_ENTROPY_ENGINE_H_

#include <deque>
#include <functional>
#include <map>
#include <unordered_set>
#include <vector>

#include "hat/common/rng.h"
#include "hat/net/message.h"
#include "hat/obs/trace_context.h"
#include "hat/server/partitioner.h"
#include "hat/sim/simulation.h"
#include "hat/version/sharded_store.h"

namespace hat::server {

struct AntiEntropyStats {
  uint64_t batches_in = 0;
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  /// Push batches sent (first transmissions, not retries) — records_out /
  /// batches_out is the achieved amortization factor.
  uint64_t batches_out = 0;
  /// Unacked inflight batches retransmitted (backoff expiries).
  uint64_t retransmits = 0;
  /// Incoming batches dropped as already-applied retransmit duplicates.
  uint64_t dupes_suppressed = 0;
  /// Times the applied-batch dedupe set filled and rotated generations.
  uint64_t dedupe_rotations = 0;
  /// Digest-sync rounds initiated.
  uint64_t digest_ticks = 0;
  /// Per-key digest entries shipped (both directions we sent). The bucketed
  /// protocol keeps this proportional to the diff; the flat protocol pays
  /// one entry per key per tick.
  uint64_t digest_entries_out = 0;
  /// Wire bytes of digest-protocol messages sent (hashes + entries).
  uint64_t digest_bytes_out = 0;
};

class AntiEntropyEngine {
 public:
  struct Options {
    /// Outbox flush cadence.
    sim::Duration flush_interval = 5 * sim::kMillisecond;
    /// Retransmit unacknowledged batches after this long (doubles per retry).
    sim::Duration retry_interval = 250 * sim::kMillisecond;
    /// Digest exchange cadence; 0 disables (push-only anti-entropy).
    sim::Duration digest_sync_interval = 0;
    /// Max writes per batch.
    size_t batch_max = 64;
    /// Max payload bytes per digest-repair reply batch (0 = uncapped).
    /// Batches flush when either cap is hit, so a repair of few huge values
    /// cannot emit one enormous message.
    size_t batch_max_bytes = 64 * 1024;
    /// Use the sharded bucketed digest protocol (round 0: per-shard roll-up
    /// hashes; round 1: bucket hashes for mismatched shards; round 2:
    /// per-key digests for mismatched buckets only). Defaults off at the
    /// engine layer to preserve the legacy flat wire protocol for direct
    /// users; ServerOptions turns it on for the replica data plane.
    bool bucketed_digest = false;
    /// False disables the push outboxes entirely (Enqueue becomes a no-op
    /// and no flush timer runs) — used to exercise digest repair alone.
    bool push_enabled = true;
    /// Key push outboxes by (peer, logical shard) instead of peer alone, so
    /// every batch is shard-homogeneous and carries its shard tag — letting
    /// the receiver charge the batch header and persistence group commit to
    /// the owning shard's executor lane instead of the global lane. Off by
    /// default: untagged batches keep the legacy wire format byte-identical.
    bool shard_lane_batching = false;
  };
  /// Delivers a one-way message to a peer. The trace context is active only
  /// for first-transmission push batches seeded by a traced write (the
  /// batch inherits the first traced item's context); acks, retransmits,
  /// and digest traffic go untraced.
  using SendFn =
      std::function<void(net::NodeId, net::Message, obs::TraceContext)>;
  /// Installs one received record (dispatches on PutMode at the owner).
  /// `from` is the peer the enclosing batch arrived from, so the owner's
  /// re-gossip can exclude it (echo suppression). The trace context is the
  /// enclosing batch's (active only for traced batches) so installs keep
  /// propagating the sampled transaction's identity.
  using InstallFn = std::function<void(const WriteRecord&, net::PutMode,
                                       net::NodeId from, obs::TraceContext)>;

  AntiEntropyEngine(sim::Simulation& sim, net::NodeId id,
                    const Partitioner* partitioner,
                    const version::ShardedStore& good, Options options,
                    SendFn send, InstallFn install);

  /// Schedules the flush (and, if enabled, digest) timers, staggered by node
  /// id. Call once.
  void Start();

  /// Queues `w` for push to every replica of its key except this node and
  /// `except` (the node it came from). An active `trace` rides along so the
  /// flushed batch joins the sampled transaction's span tree.
  void Enqueue(const WriteRecord& w, net::PutMode mode, net::NodeId except,
               obs::TraceContext trace = {});

  /// Applies an incoming push batch (acks it, dedupes retransmits, installs
  /// each record through the InstallFn). `trace` is the arriving envelope's
  /// context, handed through to each install.
  void HandleBatch(const net::AntiEntropyBatch& batch, net::NodeId from,
                   obs::TraceContext trace = {});

  /// Retires the inflight batch an ack refers to.
  void HandleAck(const net::AntiEntropyAck& ack) {
    inflight_.erase(ack.batch_id);
  }

  /// Answers a peer's digest with the versions it is missing, and — on the
  /// initiating round — with our own digest when the peer has data we lack.
  /// Scoped requests (req.buckets non-empty) are answered within those
  /// buckets of req.shard only; flat requests use the peer's recomputed
  /// per-shard bucket hashes to skip matching regions of the keyspace.
  void HandleDigest(const net::DigestRequest& req, net::NodeId from);

  /// Round 1 of sharded repair: compare the peer's bucket hashes for one
  /// shard with ours and reply with a bucket-scoped DigestRequest for
  /// mismatches.
  void HandleBucketDigest(const net::BucketDigest& digest, net::NodeId from);

  /// Round 0 of sharded repair: compare the initiator's per-shard roll-up
  /// hashes with ours and reply with our BucketDigest for each mismatched
  /// shard — cold shards drop out before any bucket hash is computed.
  void HandleShardDigest(const net::ShardDigest& digest, net::NodeId from);

  /// Drops all volatile gossip state (crash). Stats survive.
  void Clear();

  const AntiEntropyStats& stats() const { return stats_; }

  /// Test hook: position the batch-id counter (e.g. just below the 2^40
  /// wrap) to exercise id-composition edge cases without 2^40 flushes.
  void SetNextBatchIdForTest(uint64_t v) { next_batch_id_ = v; }

 private:
  void FlushTick();
  void DigestSyncTick();
  /// Sends `msg` to `from`, charging its wire size to the digest counters.
  void SendDigestMessage(net::NodeId to, net::Message msg, size_t entries);
  /// Streams every version the peer is missing within one (shard, bucket),
  /// given the peer's latest-ts entries, into `add`.
  void BackfillBucket(
      size_t shard, size_t bucket, const std::map<Key, Timestamp>& theirs,
      const std::function<void(const WriteRecord&)>& add) const;
  /// Batch ids are (node id << 40) | counter. The counter is masked to its
  /// 40-bit field: an unmasked increment past 2^40 would bleed into the
  /// node-id bits and collide with ANOTHER node's id space in the
  /// receivers' dedupe sets (silently dropping that node's fresh batches).
  /// Wrapping within our own field is harmless — a reused id only collides
  /// with one issued 2^40 batches ago, far outside the bounded generational
  /// dedupe memory (2 * kAppliedBatchMemory ids).
  static constexpr uint64_t kBatchCounterMask = (uint64_t{1} << 40) - 1;
  uint64_t NextBatchId() {
    return (static_cast<uint64_t>(id_) << 40) |
           (next_batch_id_++ & kBatchCounterMask);
  }
  /// All peer replicas this server shares any shard with.
  std::vector<net::NodeId> PeerReplicas() const;

  sim::Simulation& sim_;
  net::NodeId id_;
  const Partitioner* partitioner_;
  const version::ShardedStore& good_;
  Options options_;
  SendFn send_;
  InstallFn install_;
  AntiEntropyStats stats_;
  // Digest-sync peer selection. Seeded from the node id (not a shared
  // constant) so replicas pick different peers in lock-stepped runs, while
  // staying deterministic for a given topology.
  Rng rng_;

  struct OutboxItem {
    WriteRecord write;
    net::PutMode mode;
    obs::TraceContext trace;  // inactive unless the write was traced
  };
  /// Outboxes are keyed (peer, logical shard tag). With shard_lane_batching
  /// off every key maps to (peer, kNoShardTag) — one outbox per peer, the
  /// legacy topology — so flush order, batch boundaries, and batch ids are
  /// identical to the pre-tagging engine. With it on, each (peer, shard)
  /// pair drains independently into shard-homogeneous tagged batches.
  using OutboxKey = std::pair<net::NodeId, uint32_t>;
  std::map<OutboxKey, std::deque<OutboxItem>> outbox_;
  struct InFlightBatch {
    net::NodeId peer;
    net::AntiEntropyBatch batch;
    sim::SimTime sent_at;
    /// Exponential backoff: doubles per retransmission (capped), so slow
    /// acks under load do not trigger duplicate-processing storms.
    sim::Duration backoff;
  };
  std::map<uint64_t, InFlightBatch> inflight_;
  uint64_t next_batch_id_ = 1;
  // Batch ids already applied, for O(1) retransmit dedupe. Bounded by
  // generational rotation: when the current set fills, it becomes the
  // previous generation and a fresh set starts — recent ids (the ones
  // retransmits actually target) always stay resident, with no ordered
  // container or parallel FIFO to maintain.
  std::unordered_set<uint64_t> applied_batches_;
  std::unordered_set<uint64_t> applied_batches_prev_;
};

}  // namespace hat::server

#endif  // HAT_SERVER_ANTI_ENTROPY_ENGINE_H_
