// Adya-style transaction histories (paper Appendix A.1).
//
// A history is a set of transactions, each a sequence of read / write /
// predicate-read operations, plus the per-item version order. hatkv's version
// order is the timestamp order, so it is implicit. Histories are produced
// either by recording a live system execution (recorder.h) or by hand with
// HistoryBuilder (used by tests to encode the paper's example anomalies).

#ifndef HAT_ADYA_HISTORY_H_
#define HAT_ADYA_HISTORY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hat/version/types.h"

namespace hat::adya {

struct Operation {
  enum class Kind : uint8_t { kRead, kWrite, kPredicateRead };
  Kind kind = Kind::kRead;

  // kRead / kWrite
  Key key;
  /// For reads: the version observed (kInitialVersion for the initial /bot
  /// state). For writes: the version installed.
  Timestamp version;
  WriteKind write_kind = WriteKind::kPut;

  // kPredicateRead: range [lo, hi) and the observed version set.
  Key lo, hi;
  std::vector<std::pair<Key, Timestamp>> vset;
};

struct Transaction {
  /// Unique transaction identifier (the transaction timestamp).
  Timestamp id;
  uint32_t client_id = 0;
  /// 0 = no session; otherwise a globally unique session identifier.
  uint64_t session = 0;
  /// Commit order within the session (1, 2, ...).
  uint64_t session_seq = 0;
  bool committed = true;
  std::vector<Operation> ops;
};

class History {
 public:
  void Add(Transaction txn) { txns_.push_back(std::move(txn)); }
  const std::vector<Transaction>& txns() const { return txns_; }
  size_t size() const { return txns_.size(); }

 private:
  std::vector<Transaction> txns_;
};

/// Fluent construction of small histories (tests, examples). Transactions
/// are numbered; versions are referred to by writer transaction number
/// (0 = the initial version).
class HistoryBuilder {
 public:
  class TxnRef {
   public:
    TxnRef(HistoryBuilder* b, size_t idx) : b_(b), idx_(idx) {}
    /// Appends a write; the installed version is this transaction's id.
    TxnRef& Write(const Key& key);
    /// Appends a write of an increment (commutative delta).
    TxnRef& Delta(const Key& key);
    /// Appends a read observing the version written by `writer_txn`
    /// (0 = initial version).
    TxnRef& Read(const Key& key, uint64_t writer_txn);
    /// Appends a predicate read over [lo, hi) observing, for each listed
    /// key, the version written by the paired transaction number.
    TxnRef& PredicateRead(
        const Key& lo, const Key& hi,
        std::vector<std::pair<Key, uint64_t>> observed);
    /// Marks the transaction aborted.
    TxnRef& Aborted();
    /// Places the transaction in a session with the given commit sequence.
    TxnRef& InSession(uint64_t session, uint64_t seq);

   private:
    HistoryBuilder* b_;
    size_t idx_;
  };

  /// Creates (or returns, if already created) transaction number `n` (> 0).
  TxnRef Txn(uint64_t n);

  History Build() const;

 private:
  static Timestamp IdFor(uint64_t n) {
    return Timestamp{n, static_cast<uint32_t>(n)};
  }
  std::map<uint64_t, Transaction> txns_;
};

}  // namespace hat::adya

#endif  // HAT_ADYA_HISTORY_H_
