#include "hat/adya/phenomena.h"

#include <algorithm>
#include <map>
#include <set>

namespace hat::adya {

namespace {

std::string TsName(const Timestamp& ts) {
  return "T" + std::to_string(ts.logical) + "." +
         std::to_string(ts.client_id);
}

/// Largest version each committed transaction installed per key.
std::map<std::pair<Key, Timestamp>, bool> BuildFinalWriteSet(
    const History& h, std::map<Timestamp, const Transaction*>* by_id) {
  std::map<std::pair<Key, Timestamp>, bool> is_final;  // (key, version)
  for (const auto& t : h.txns()) {
    (*by_id)[t.id] = &t;
    std::map<Key, Timestamp> last;
    for (const auto& op : t.ops) {
      if (op.kind != Operation::Kind::kWrite) continue;
      is_final[{op.key, op.version}] = false;
      auto [it, ins] = last.emplace(op.key, op.version);
      if (!ins && op.version > it->second) it->second = op.version;
    }
    for (const auto& [k, v] : last) is_final[{k, v}] = true;
  }
  return is_final;
}

/// Which transaction id wrote a given version of a key (committed or not).
struct VersionIndex {
  // version timestamp -> writer transaction (versions inherit the writer's
  // client id, so the txn id is recoverable for system histories; for
  // hand-built histories version == txn id).
  std::map<std::pair<Key, Timestamp>, const Transaction*> writer;
  // committed final versions per key, sorted.
  std::map<Key, std::vector<Timestamp>> committed_order;

  const Transaction* WriterOf(const Key& k, const Timestamp& v) const {
    auto it = writer.find({k, v});
    return it == writer.end() ? nullptr : it->second;
  }
};

VersionIndex BuildVersionIndex(const History& h) {
  VersionIndex idx;
  for (const auto& t : h.txns()) {
    std::map<Key, Timestamp> final_per_key;
    for (const auto& op : t.ops) {
      if (op.kind != Operation::Kind::kWrite) continue;
      idx.writer[{op.key, op.version}] = &t;
      auto [it, ins] = final_per_key.emplace(op.key, op.version);
      if (!ins && op.version > it->second) it->second = op.version;
    }
    if (t.committed) {
      for (const auto& [k, v] : final_per_key) {
        idx.committed_order[k].push_back(v);
      }
    }
  }
  for (auto& [k, versions] : idx.committed_order) {
    std::sort(versions.begin(), versions.end());
  }
  return idx;
}

void AddWitness(PhenomenaReport* r, bool* flag, const std::string& text) {
  if (!*flag && r->witnesses.size() < 32) r->witnesses.push_back(text);
  *flag = true;
}

}  // namespace

std::string PhenomenaReport::Summary() const {
  std::string out;
  auto add = [&out](const char* name, bool present) {
    if (present) {
      if (!out.empty()) out += ", ";
      out += name;
    }
  };
  add("G0", g0);
  add("G1a", g1a);
  add("G1b", g1b);
  add("G1c", g1c);
  add("IMP", imp);
  add("PMP", pmp);
  add("OTV", otv);
  add("LostUpdate", lost_update);
  add("WriteSkew", write_skew);
  add("N-MR", n_mr);
  add("N-MW", n_mw);
  add("MRWD", mrwd);
  add("MYR", myr);
  return out.empty() ? "(none)" : out;
}

PhenomenaReport Analyze(const History& h) {
  PhenomenaReport r;
  std::map<Timestamp, const Transaction*> by_id;
  auto is_final = BuildFinalWriteSet(h, &by_id);
  VersionIndex vidx = BuildVersionIndex(h);

  Dsg dsg(h);
  std::string w;
  if (dsg.HasWriteDependencyCycle(&w)) AddWitness(&r, &r.g0, "G0 " + w);
  if (dsg.HasDependencyCycle(&w)) AddWitness(&r, &r.g1c, "G1c " + w);
  if (dsg.HasSingleItemAntiCycle(&w)) {
    AddWitness(&r, &r.lost_update, "LostUpdate " + w);
  }
  if (dsg.HasAntiDependencyCycle(&w)) {
    AddWitness(&r, &r.write_skew, "WriteSkew(G2-item) " + w);
  }
  if (dsg.HasAnyCycle(&w)) r.non_serializable = true;

  // --- direct (non-graph) detectors --------------------------------------
  for (const auto& t : h.txns()) {
    if (!t.committed) continue;

    // Per-key tracking inside the transaction.
    std::map<Key, Timestamp> first_read;        // for IMP
    std::set<Key> self_wrote;                   // own overwrites reset cuts
    // Writers whose effects this txn observed so far (for OTV).
    std::map<Timestamp, const Transaction*> observed;

    for (const auto& op : t.ops) {
      if (op.kind == Operation::Kind::kWrite) {
        self_wrote.insert(op.key);
        continue;
      }
      auto handle_read = [&](const Key& key, const Timestamp& version) {
        // G1a: read a version written by an aborted transaction.
        const Transaction* writer = vidx.WriterOf(key, version);
        if (writer && !writer->committed) {
          AddWitness(&r, &r.g1a,
                     "G1a " + TsName(t.id) + " read aborted " +
                         TsName(writer->id) + "'s write to " + key);
        }
        // G1b: read a non-final write of a committed transaction.
        if (writer && writer->committed && writer->id != t.id) {
          auto fin = is_final.find({key, version});
          if (fin != is_final.end() && !fin->second) {
            AddWitness(&r, &r.g1b,
                       "G1b " + TsName(t.id) + " read intermediate version " +
                           TsName(version) + " of " + key);
          }
        }
        // IMP: two reads of one item observing different versions, with no
        // own write in between.
        if (!self_wrote.count(key)) {
          auto [it, inserted] = first_read.emplace(key, version);
          if (!inserted && !(it->second == version)) {
            AddWitness(&r, &r.imp,
                       "IMP " + TsName(t.id) + " read two versions of " +
                           key);
          }
        }
        // OTV: having observed writer W, a later read of key y that W also
        // (finally) wrote must not return an older version.
        for (const auto& [wid, wtxn] : observed) {
          if (wid == t.id) continue;
          // W's final write to this key, if any.
          std::optional<Timestamp> w_final;
          for (const auto& wop : wtxn->ops) {
            if (wop.kind == Operation::Kind::kWrite && wop.key == key) {
              if (!w_final || wop.version > *w_final) w_final = wop.version;
            }
          }
          if (w_final && version < *w_final && !self_wrote.count(key)) {
            AddWitness(&r, &r.otv,
                       "OTV " + TsName(t.id) + " observed " + TsName(wid) +
                           " then read stale " + key);
          }
        }
        if (writer && writer->committed && writer->id != t.id) {
          observed.emplace(writer->id, writer);
        }
      };
      if (op.kind == Operation::Kind::kRead) {
        handle_read(op.key, op.version);
      } else {
        for (const auto& [k, v] : op.vset) handle_read(k, v);
      }
    }

    // PMP: overlapping predicate reads disagreeing inside the overlap.
    const std::vector<Operation>& ops = t.ops;
    for (size_t i = 0; i < ops.size(); i++) {
      if (ops[i].kind != Operation::Kind::kPredicateRead) continue;
      for (size_t j = i + 1; j < ops.size(); j++) {
        if (ops[j].kind != Operation::Kind::kPredicateRead) continue;
        Key olo = std::max(ops[i].lo, ops[j].lo);
        Key ohi = std::min(ops[i].hi, ops[j].hi);
        if (olo >= ohi) continue;
        auto slice = [&](const Operation& op) {
          std::map<Key, Timestamp> s;
          for (const auto& [k, v] : op.vset) {
            if (k >= olo && k < ohi && !self_wrote.count(k)) s[k] = v;
          }
          return s;
        };
        if (slice(ops[i]) != slice(ops[j])) {
          AddWitness(&r, &r.pmp,
                     "PMP " + TsName(t.id) +
                         " overlapping predicate reads disagree in [" + olo +
                         "," + ohi + ")");
        }
      }
    }
  }

  // --- session phenomena ---------------------------------------------------
  // Group committed transactions by session, ordered by session_seq.
  std::map<uint64_t, std::vector<const Transaction*>> sessions;
  for (const auto& t : h.txns()) {
    if (t.committed && t.session != 0) sessions[t.session].push_back(&t);
  }
  for (auto& [sid, txns] : sessions) {
    std::sort(txns.begin(), txns.end(),
              [](const Transaction* a, const Transaction* b) {
                return a->session_seq < b->session_seq;
              });
    std::map<Key, Timestamp> max_read;    // N-MR floor
    std::map<Key, Timestamp> own_write;   // MYR floor
    std::map<Key, Timestamp> last_write;  // N-MW per-item session order
    for (const Transaction* t : txns) {
      for (const auto& op : t->ops) {
        if (op.kind == Operation::Kind::kRead) {
          auto mr = max_read.find(op.key);
          if (mr != max_read.end() && op.version < mr->second) {
            AddWitness(&r, &r.n_mr,
                       "N-MR session " + std::to_string(sid) + " re-read " +
                           op.key + " older than before");
          }
          auto own = own_write.find(op.key);
          if (own != own_write.end() && op.version < own->second) {
            AddWitness(&r, &r.myr,
                       "MYR session " + std::to_string(sid) + " missed own "
                       "write to " + op.key);
          }
          auto& floor = max_read[op.key];
          if (op.version > floor) floor = op.version;
        } else if (op.kind == Operation::Kind::kWrite) {
          auto lw = last_write.find(op.key);
          if (lw != last_write.end() && op.version < lw->second) {
            AddWitness(&r, &r.n_mw,
                       "N-MW session " + std::to_string(sid) +
                           " wrote versions of " + op.key +
                           " against session order");
          } else {
            last_write[op.key] = op.version;
          }
          auto& floor = own_write[op.key];
          if (op.version > floor) floor = op.version;
        }
      }
    }
  }

  // MRWD (Writes Follow Reads violation): session S observed T1 (read any of
  // its writes) at or before committing T2; another transaction T3 observed
  // T2's write but read a key T1 finally wrote at an older version.
  struct SessionObservation {
    const Transaction* t2;           // transaction committed by the session
    std::set<Timestamp> seen_before; // writers observed up to and incl. t2
  };
  std::vector<SessionObservation> session_writes;
  for (auto& [sid, txns] : sessions) {
    std::set<Timestamp> seen;
    for (const Transaction* t : txns) {
      for (const auto& op : t->ops) {
        if (op.kind == Operation::Kind::kRead &&
            !(op.version == kInitialVersion)) {
          const Transaction* writer = vidx.WriterOf(op.key, op.version);
          if (writer && writer->committed) seen.insert(writer->id);
        }
      }
      bool writes = std::any_of(t->ops.begin(), t->ops.end(),
                                [](const Operation& op) {
                                  return op.kind == Operation::Kind::kWrite;
                                });
      if (writes && !seen.empty()) {
        session_writes.push_back(SessionObservation{t, seen});
      }
    }
  }
  for (const auto& obs : session_writes) {
    for (const auto& t1_id : obs.seen_before) {
      const Transaction* t1 = by_id.count(t1_id) ? by_id[t1_id] : nullptr;
      if (!t1 || t1->id == obs.t2->id) continue;
      // Keys T1 finally wrote.
      std::map<Key, Timestamp> t1_final;
      for (const auto& op : t1->ops) {
        if (op.kind != Operation::Kind::kWrite) continue;
        auto [it, ins] = t1_final.emplace(op.key, op.version);
        if (!ins && op.version > it->second) it->second = op.version;
      }
      if (t1_final.empty()) continue;
      // T3s that observed T2: once T2's effect is observed, *subsequent*
      // reads must reflect T1 (the session-guarantee "thereafter" reading;
      // earlier reads in T3's program order predate the observation and are
      // unconstrained, matching Terry et al. and the paper's server-side
      // reveal-after-dependencies mechanism).
      for (const auto& t3 : h.txns()) {
        if (!t3.committed || t3.id == obs.t2->id || t3.id == t1->id) continue;
        bool saw_t2 = false;
        for (const auto& op : t3.ops) {
          if (op.kind != Operation::Kind::kRead) continue;
          const Transaction* writer = vidx.WriterOf(op.key, op.version);
          if (writer == obs.t2) {
            saw_t2 = true;
            continue;
          }
          if (!saw_t2) continue;
          auto t1w = t1_final.find(op.key);
          if (t1w != t1_final.end() && op.version < t1w->second) {
            AddWitness(&r, &r.mrwd,
                       "MRWD " + TsName(t3.id) + " observed " +
                           TsName(obs.t2->id) + " but missed " +
                           TsName(t1->id) + "'s write to " + op.key);
          }
        }
      }
    }
  }

  return r;
}

}  // namespace hat::adya
