#include "hat/adya/dsg.h"

#include <algorithm>
#include <set>

namespace hat::adya {

std::string_view EdgeTypeName(EdgeType t) {
  switch (t) {
    case EdgeType::kWriteDepends: return "ww";
    case EdgeType::kReadDepends: return "wr";
    case EdgeType::kAntiDepends: return "rw";
    case EdgeType::kSession: return "si";
  }
  return "?";
}

namespace {
/// Final write version per (txn, key): the largest version the transaction
/// installed for the key (a transaction may install several under RU).
std::map<Key, Timestamp> FinalWrites(const Transaction& t) {
  std::map<Key, Timestamp> out;
  for (const auto& op : t.ops) {
    if (op.kind != Operation::Kind::kWrite) continue;
    auto [it, inserted] = out.emplace(op.key, op.version);
    if (!inserted && op.version > it->second) it->second = op.version;
  }
  return out;
}
}  // namespace

Dsg::Dsg(History history) : history_(std::move(history)) {
  for (const auto& t : history_.txns()) {
    if (!t.committed) continue;
    index_of_[t.id] = txns_.size();
    txns_.push_back(&t);
  }

  // Version order per key over committed final writes.
  for (size_t i = 0; i < txns_.size(); i++) {
    for (const auto& [key, version] : FinalWrites(*txns_[i])) {
      version_order_[key].push_back(version);
      writer_[{key, version}] = i;
    }
  }
  for (auto& [key, versions] : version_order_) {
    std::sort(versions.begin(), versions.end());
  }

  std::set<std::tuple<size_t, size_t, EdgeType, Key>> seen;
  auto add_edge = [this, &seen](size_t from, size_t to, EdgeType type,
                                const Key& item) {
    if (from == to) return;
    if (seen.emplace(from, to, type, item).second) {
      edges_.push_back(Edge{from, to, type, item});
    }
  };

  // ww edges: consecutive committed versions of each item.
  for (const auto& [key, versions] : version_order_) {
    for (size_t v = 0; v + 1 < versions.size(); v++) {
      add_edge(writer_.at({key, versions[v]}),
               writer_.at({key, versions[v + 1]}), EdgeType::kWriteDepends,
               key);
    }
  }

  auto next_version_writer =
      [this](const Key& key,
             const Timestamp& read) -> std::optional<size_t> {
    auto vo = version_order_.find(key);
    if (vo == version_order_.end()) return std::nullopt;
    auto next = std::upper_bound(vo->second.begin(), vo->second.end(), read);
    if (next == vo->second.end()) return std::nullopt;
    return writer_.at({key, *next});
  };

  // wr and rw edges from item reads and predicate reads.
  for (size_t i = 0; i < txns_.size(); i++) {
    auto handle_read = [&](const Key& key, const Timestamp& version) {
      if (!(version == kInitialVersion)) {
        auto w = writer_.find({key, version});
        if (w != writer_.end()) {
          add_edge(w->second, i, EdgeType::kReadDepends, key);
        } else {
          // The read observed an intermediate or aborted version; attribute
          // the wr edge to the committed transaction with that id, if any.
          auto t = index_of_.find(version);
          if (t != index_of_.end()) {
            add_edge(t->second, i, EdgeType::kReadDepends, key);
          }
        }
      }
      if (auto overwriter = next_version_writer(key, version)) {
        add_edge(i, *overwriter, EdgeType::kAntiDepends, key);
      }
    };
    for (const auto& op : txns_[i]->ops) {
      if (op.kind == Operation::Kind::kRead) {
        handle_read(op.key, op.version);
      } else if (op.kind == Operation::Kind::kPredicateRead) {
        for (const auto& [k, v] : op.vset) handle_read(k, v);
      }
    }
  }

  // Session edges: consecutive committed transactions of each session.
  std::map<uint64_t, std::vector<std::pair<uint64_t, size_t>>> sessions;
  for (size_t i = 0; i < txns_.size(); i++) {
    if (txns_[i]->session != 0) {
      sessions[txns_[i]->session].emplace_back(txns_[i]->session_seq, i);
    }
  }
  for (auto& [sid, seq] : sessions) {
    std::sort(seq.begin(), seq.end());
    for (size_t k = 0; k + 1 < seq.size(); k++) {
      add_edge(seq[k].second, seq[k + 1].second, EdgeType::kSession, "");
    }
  }
}

const std::vector<Timestamp>& Dsg::VersionOrder(const Key& key) const {
  static const std::vector<Timestamp> kEmpty;
  auto it = version_order_.find(key);
  return it == version_order_.end() ? kEmpty : it->second;
}

std::optional<size_t> Dsg::WriterOf(const Key& key,
                                    const Timestamp& version) const {
  auto it = writer_.find({key, version});
  if (it == writer_.end()) return std::nullopt;
  return it->second;
}

std::string Dsg::LabelOf(size_t idx) const {
  return "T" + std::to_string(txns_[idx]->id.logical) + "." +
         std::to_string(txns_[idx]->id.client_id);
}

bool Dsg::HasCycle(const std::function<bool(const Edge&)>& filter,
                   const std::function<bool(const Edge&)>& require,
                   std::string* witness) const {
  // Tarjan SCC over the filtered subgraph; a qualifying cycle exists iff some
  // SCC contains an edge (trivially true for any intra-SCC edge when the SCC
  // has >= 2 nodes) and, if `require` is set, at least one required edge has
  // both endpoints in the same SCC.
  size_t n = txns_.size();
  std::vector<std::vector<size_t>> adj(n);  // edge indices
  for (size_t e = 0; e < edges_.size(); e++) {
    if (filter(edges_[e])) adj[edges_[e].from].push_back(e);
  }

  std::vector<int> index(n, -1), low(n, 0), comp(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  int next_index = 0, next_comp = 0;

  // Iterative Tarjan.
  struct Frame {
    size_t v;
    size_t edge_pos;
  };
  for (size_t root = 0; root < n; root++) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge_pos < adj[f.v].size()) {
        const Edge& e = edges_[adj[f.v][f.edge_pos++]];
        size_t w = e.to;
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        size_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
        if (low[v] == index[v]) {
          while (true) {
            size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = next_comp;
            if (w == v) break;
          }
          next_comp++;
        }
      }
    }
  }

  // Count intra-SCC filtered edges per component.
  std::vector<bool> has_cycle(next_comp, false);
  std::vector<bool> has_required(next_comp, false);
  std::vector<const Edge*> witness_edge(next_comp, nullptr);
  for (const auto& e : edges_) {
    if (!filter(e)) continue;
    if (comp[e.from] != comp[e.to]) continue;
    // An intra-SCC edge implies a cycle through it (SCC is strongly
    // connected), including self-loop-free two-node cycles.
    has_cycle[comp[e.from]] = true;
    if (!require || require(e)) {
      has_required[comp[e.from]] = true;
      if (!witness_edge[comp[e.from]]) witness_edge[comp[e.from]] = &e;
    }
  }
  for (int c = 0; c < next_comp; c++) {
    if (has_cycle[c] && (!require || has_required[c])) {
      if (witness && witness_edge[c]) {
        const Edge& e = *witness_edge[c];
        *witness = "cycle through " + LabelOf(e.from) + " -" +
                   std::string(EdgeTypeName(e.type)) +
                   (e.item.empty() ? "" : "(" + e.item + ")") + "-> " +
                   LabelOf(e.to);
      }
      return true;
    }
  }
  return false;
}

bool Dsg::HasWriteDependencyCycle(std::string* witness) const {
  return HasCycle(
      [](const Edge& e) { return e.type == EdgeType::kWriteDepends; },
      nullptr, witness);
}

bool Dsg::HasDependencyCycle(std::string* witness) const {
  return HasCycle(
      [](const Edge& e) {
        return e.type == EdgeType::kWriteDepends ||
               e.type == EdgeType::kReadDepends;
      },
      nullptr, witness);
}

bool Dsg::HasAntiDependencyCycle(std::string* witness) const {
  return HasCycle(
      [](const Edge& e) { return e.type != EdgeType::kSession; },
      [](const Edge& e) { return e.type == EdgeType::kAntiDepends; },
      witness);
}

bool Dsg::HasSingleItemAntiCycle(std::string* witness) const {
  // Lost Update (Def. 38): a cycle whose edges are all on one item, with at
  // least one anti-dependency edge.
  std::set<Key> items;
  for (const auto& e : edges_) {
    if (e.type == EdgeType::kAntiDepends) items.insert(e.item);
  }
  for (const auto& item : items) {
    bool found = HasCycle(
        [&item](const Edge& e) {
          return e.type != EdgeType::kSession && e.item == item;
        },
        [](const Edge& e) { return e.type == EdgeType::kAntiDepends; },
        witness);
    if (found) return true;
  }
  return false;
}

bool Dsg::HasAnyCycle(std::string* witness) const {
  return HasCycle(
      [](const Edge& e) { return e.type != EdgeType::kSession; }, nullptr,
      witness);
}

}  // namespace hat::adya
