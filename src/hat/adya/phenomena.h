// Phenomenon detectors for the anomalies of paper Appendix A.3
// (Definitions 16-41) and the isolation/consistency level predicates built
// from them. This is the machine-checkable core of the paper's taxonomy:
// tests run live workloads under each configuration and assert that exactly
// the phenomena the level must prohibit are absent.

#ifndef HAT_ADYA_PHENOMENA_H_
#define HAT_ADYA_PHENOMENA_H_

#include <string>
#include <vector>

#include "hat/adya/dsg.h"
#include "hat/adya/history.h"

namespace hat::adya {

struct PhenomenaReport {
  // ACID isolation phenomena.
  bool g0 = false;          ///< Write Cycles (Dirty Write)
  bool g1a = false;         ///< Aborted Reads
  bool g1b = false;         ///< Intermediate Reads
  bool g1c = false;         ///< Circular Information Flow
  bool imp = false;         ///< Item-Many-Preceders (no Item Cut)
  bool pmp = false;         ///< Predicate-Many-Preceders (no Predicate Cut)
  bool otv = false;         ///< Observed Transaction Vanishes (no MAV)
  bool lost_update = false; ///< Def. 38
  bool write_skew = false;  ///< G2-item, Def. 39
  bool non_serializable = false;  ///< any DSG cycle

  // Session phenomena.
  bool n_mr = false;   ///< Non-monotonic Reads
  bool n_mw = false;   ///< Non-monotonic Writes
  bool mrwd = false;   ///< Missing Read-Write Dependency (no WFR)
  bool myr = false;    ///< Missing Your Writes (no RYW)

  /// Human-readable witnesses for each detected phenomenon.
  std::vector<std::string> witnesses;

  // --- isolation level predicates (Definitions 17, 21, 23, 25, 27, 40, 41)
  bool ReadUncommitted() const { return !g0; }
  bool ReadCommitted() const { return !g0 && !g1a && !g1b && !g1c; }
  bool ItemCut() const { return !imp; }
  bool PredicateCut() const { return !pmp; }
  bool MonotonicAtomicView() const { return ReadCommitted() && !otv; }
  bool SnapshotIsolation() const {
    return ReadCommitted() && !pmp && !otv && !lost_update;
  }
  bool RepeatableRead() const { return ReadCommitted() && !write_skew; }
  bool Serializable() const {
    return !g1a && !g1b && !non_serializable;
  }

  // --- session guarantee predicates (Definitions 29, 31, 33, 35-37)
  bool MonotonicReads() const { return !n_mr; }
  bool MonotonicWrites() const { return !n_mw; }
  bool WritesFollowReads() const { return !mrwd; }
  bool ReadYourWrites() const { return !myr; }
  bool Pram() const { return !n_mr && !n_mw && !myr; }
  bool Causal() const { return Pram() && !mrwd; }

  std::string Summary() const;
};

/// Runs every detector over the history.
PhenomenaReport Analyze(const History& history);

}  // namespace hat::adya

#endif  // HAT_ADYA_PHENOMENA_H_
