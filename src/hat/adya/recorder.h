// HistoryRecorder: builds an Adya history from a live hatkv execution by
// implementing the client::TxnObserver hook. Attach one recorder to every
// client in a workload, run it, then Finish() and Analyze() the history.

#ifndef HAT_ADYA_RECORDER_H_
#define HAT_ADYA_RECORDER_H_

#include <map>

#include "hat/adya/history.h"
#include "hat/client/observer.h"

namespace hat::adya {

class HistoryRecorder : public client::TxnObserver {
 public:
  void OnBegin(const Timestamp& txn, uint32_t client_id, uint32_t session_id,
               uint64_t session_seq) override {
    Transaction t;
    t.id = txn;
    t.client_id = client_id;
    // Globally unique session id: one client never reuses a session number.
    t.session = (static_cast<uint64_t>(client_id) << 20) | session_id;
    t.session_seq = session_seq;
    open_[txn] = std::move(t);
  }

  void OnRead(const Timestamp& txn, const Key& key,
              const ReadVersion& version) override {
    auto it = open_.find(txn);
    if (it == open_.end()) return;
    Operation op;
    op.kind = Operation::Kind::kRead;
    op.key = key;
    op.version = version.found ? version.ts : kInitialVersion;
    it->second.ops.push_back(std::move(op));
  }

  void OnScan(const Timestamp& txn, const Key& lo, const Key& hi,
              const std::vector<client::ScanItem>& items) override {
    auto it = open_.find(txn);
    if (it == open_.end()) return;
    Operation op;
    op.kind = Operation::Kind::kPredicateRead;
    op.lo = lo;
    op.hi = hi;
    for (const auto& item : items) op.vset.emplace_back(item.key, item.ts);
    it->second.ops.push_back(std::move(op));
  }

  void OnFinish(const Timestamp& txn, client::TxnOutcome outcome,
                const std::vector<WriteRecord>& installed) override {
    auto it = open_.find(txn);
    if (it == open_.end()) return;
    Transaction t = std::move(it->second);
    open_.erase(it);
    // Failed (timed-out) transactions may have installed a subset of their
    // writes; treating them as committed is the conservative choice for
    // anomaly checking — their versions are legitimately visible.
    t.committed = outcome != client::TxnOutcome::kAborted;
    for (const auto& w : installed) {
      Operation op;
      op.kind = Operation::Kind::kWrite;
      op.key = w.key;
      op.version = w.ts;
      op.write_kind = w.kind;
      t.ops.push_back(std::move(op));
    }
    // Drop transactions that did nothing observable.
    if (!t.ops.empty()) history_.Add(std::move(t));
  }

  /// Finalizes and returns the recorded history. Open transactions are
  /// discarded.
  History Finish() {
    open_.clear();
    return std::move(history_);
  }

 private:
  std::map<Timestamp, Transaction> open_;
  History history_;
};

}  // namespace hat::adya

#endif  // HAT_ADYA_RECORDER_H_
