#include "hat/adya/history.h"

namespace hat::adya {

HistoryBuilder::TxnRef HistoryBuilder::Txn(uint64_t n) {
  auto it = txns_.find(n);
  if (it == txns_.end()) {
    Transaction t;
    t.id = IdFor(n);
    t.client_id = static_cast<uint32_t>(n);
    it = txns_.emplace(n, std::move(t)).first;
  }
  // Stable index: we address transactions by number through the map.
  return TxnRef(this, n);
}

HistoryBuilder::TxnRef& HistoryBuilder::TxnRef::Write(const Key& key) {
  Operation op;
  op.kind = Operation::Kind::kWrite;
  op.key = key;
  op.version = IdFor(idx_);
  b_->txns_[idx_].ops.push_back(std::move(op));
  return *this;
}

HistoryBuilder::TxnRef& HistoryBuilder::TxnRef::Delta(const Key& key) {
  Operation op;
  op.kind = Operation::Kind::kWrite;
  op.key = key;
  op.version = IdFor(idx_);
  op.write_kind = WriteKind::kDelta;
  b_->txns_[idx_].ops.push_back(std::move(op));
  return *this;
}

HistoryBuilder::TxnRef& HistoryBuilder::TxnRef::Read(const Key& key,
                                                     uint64_t writer_txn) {
  Operation op;
  op.kind = Operation::Kind::kRead;
  op.key = key;
  op.version = writer_txn == 0 ? kInitialVersion : IdFor(writer_txn);
  b_->txns_[idx_].ops.push_back(std::move(op));
  return *this;
}

HistoryBuilder::TxnRef& HistoryBuilder::TxnRef::PredicateRead(
    const Key& lo, const Key& hi,
    std::vector<std::pair<Key, uint64_t>> observed) {
  Operation op;
  op.kind = Operation::Kind::kPredicateRead;
  op.lo = lo;
  op.hi = hi;
  for (auto& [k, n] : observed) {
    op.vset.emplace_back(k, n == 0 ? kInitialVersion : IdFor(n));
  }
  b_->txns_[idx_].ops.push_back(std::move(op));
  return *this;
}

HistoryBuilder::TxnRef& HistoryBuilder::TxnRef::Aborted() {
  b_->txns_[idx_].committed = false;
  return *this;
}

HistoryBuilder::TxnRef& HistoryBuilder::TxnRef::InSession(uint64_t session,
                                                          uint64_t seq) {
  b_->txns_[idx_].session = session;
  b_->txns_[idx_].session_seq = seq;
  return *this;
}

History HistoryBuilder::Build() const {
  History h;
  for (const auto& [n, txn] : txns_) h.Add(txn);
  return h;
}

}  // namespace hat::adya
