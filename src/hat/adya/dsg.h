// Direct Serialization Graph (Adya; paper Appendix A.2).
//
// Nodes are committed transactions; labeled edges capture write-write
// (ww), write-read (wr), item-anti (rw) and session dependencies. Phenomenon
// detectors (phenomena.h) query cycles over edge-type subsets.

#ifndef HAT_ADYA_DSG_H_
#define HAT_ADYA_DSG_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hat/adya/history.h"

namespace hat::adya {

enum class EdgeType : uint8_t {
  kWriteDepends = 0,  ///< ww: installs the next version of an item
  kReadDepends = 1,   ///< wr: reads a version the source installed
  kAntiDepends = 2,   ///< rw: source read a version; target installed next
  kSession = 3,       ///< si: source precedes target in a session
};

std::string_view EdgeTypeName(EdgeType t);

struct Edge {
  size_t from = 0;  ///< index into Dsg::txns
  size_t to = 0;
  EdgeType type = EdgeType::kWriteDepends;
  Key item;  ///< empty for session edges
};

class Dsg {
 public:
  /// Builds the DSG of the committed transactions in `history`.
  /// Version order per item = timestamp order of committed final writes.
  /// The graph owns a copy of the history, so temporaries are safe.
  explicit Dsg(History history);

  const std::vector<const Transaction*>& txns() const { return txns_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Committed final version order of an item (ascending timestamps).
  const std::vector<Timestamp>& VersionOrder(const Key& key) const;

  /// The transaction index that installed (key, version) as its final
  /// write, if any.
  std::optional<size_t> WriterOf(const Key& key,
                                 const Timestamp& version) const;

  /// True if the subgraph of edges accepted by `filter` contains a cycle;
  /// if `require` is provided, the cycle must include at least one edge
  /// accepted by it. Outputs one witness cycle description.
  bool HasCycle(const std::function<bool(const Edge&)>& filter,
                const std::function<bool(const Edge&)>& require,
                std::string* witness) const;

  /// Convenience wrappers over HasCycle.
  bool HasWriteDependencyCycle(std::string* witness) const;      // G0
  bool HasDependencyCycle(std::string* witness) const;           // G1c
  bool HasAntiDependencyCycle(std::string* witness) const;       // G2-item
  bool HasSingleItemAntiCycle(std::string* witness) const;       // Lost Update
  bool HasAnyCycle(std::string* witness) const;  // non-serializable

  /// Human-readable transaction label ("T<logical>").
  std::string LabelOf(size_t idx) const;

 private:
  History history_;
  std::vector<const Transaction*> txns_;
  std::vector<Edge> edges_;
  std::map<Key, std::vector<Timestamp>> version_order_;
  std::map<std::pair<Key, Timestamp>, size_t> writer_;
  std::map<Timestamp, size_t> index_of_;
};

}  // namespace hat::adya

#endif  // HAT_ADYA_DSG_H_
