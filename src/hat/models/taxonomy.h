// The paper's taxonomy as a queryable data structure: the consistency /
// isolation models of Table 3, their availability classes, the reasons
// unavailable models are unavailable, and the partial order of Figure 2.

#ifndef HAT_MODELS_TAXONOMY_H_
#define HAT_MODELS_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hat::models {

/// Every model discussed in Table 3 / Figure 2.
enum class Model : uint8_t {
  kReadUncommitted = 0,     // RU
  kReadCommitted,           // RC
  kItemCutIsolation,        // I-CI
  kPredicateCutIsolation,   // P-CI
  kMonotonicAtomicView,     // MAV
  kMonotonicReads,          // MR
  kMonotonicWrites,         // MW
  kWritesFollowReads,       // WFR
  kReadYourWrites,          // RYW
  kPram,                    // PRAM
  kCausal,                  // Causal
  kCursorStability,         // CS
  kSnapshotIsolation,       // SI
  kRepeatableRead,          // RR (Adya PL-2.99 / Gray / Berenson)
  kOneCopySerializability,  // 1SR
  kRecency,                 // recency bounds
  kSafe,                    // safe register
  kRegular,                 // regular register
  kLinearizability,         // linearizable register
  kStrongOneCopySerializability,  // Strong-1SR
};
inline constexpr int kNumModels = 20;

/// Table 3's availability classes.
enum class Availability : uint8_t {
  kHighlyAvailable = 0,
  kSticky = 1,
  kUnavailable = 2,
};

/// Why an unavailable model is unavailable (Table 3's dagger/ddagger/oplus).
struct UnavailabilityCause {
  bool prevents_lost_update = false;  // †
  bool prevents_write_skew = false;   // ‡
  bool requires_recency = false;      // ⊕
};

std::string_view ModelShortName(Model m);   // "RC", "MAV", ...
std::string_view ModelLongName(Model m);    // "Read Committed", ...
Availability AvailabilityOf(Model m);       // Table 3
UnavailabilityCause CauseOf(Model m);
std::string_view AvailabilityName(Availability a);

/// All models, in enum order.
std::vector<Model> AllModels();

/// Direct (Hasse) edges of Figure 2: weaker -> stronger.
std::vector<std::pair<Model, Model>> StrengthEdges();

/// True if `stronger` is at or above `weaker` in Figure 2's partial order
/// (reflexive transitive closure of StrengthEdges()).
bool Entails(Model stronger, Model weaker);

/// True if neither entails the other (the models can be combined; the
/// availability of the combination is the worst of the two).
bool Incomparable(Model a, Model b);

/// Availability of a combination of models (the least available member).
Availability CombinedAvailability(const std::vector<Model>& models);

/// The number of distinct HAT configurations depicted in Figure 2
/// ("the diagram depicts 144 possible HAT combinations"): choices of
/// isolation chain {RU, RC, MAV} x cut {none, I-CI, P-CI} x the four
/// independent session guarantees (excluding the RYW/sticky axis collapses
/// PRAM/causal into the session flags).
int HatCombinationCount();

/// Verifies the partial order is acyclic and availability is monotone
/// (nothing highly available sits above a sticky/unavailable model).
/// Returns an empty string when consistent, else a description.
std::string ValidateTaxonomy();

}  // namespace hat::models

#endif  // HAT_MODELS_TAXONOMY_H_
