#include "hat/models/survey.h"

namespace hat::models {

std::string_view SurveyLevelName(SurveyLevel level) {
  switch (level) {
    case SurveyLevel::kReadCommitted: return "RC";
    case SurveyLevel::kRepeatableRead: return "RR";
    case SurveyLevel::kSnapshotIsolation: return "SI";
    case SurveyLevel::kSerializability: return "S";
    case SurveyLevel::kCursorStability: return "CS";
    case SurveyLevel::kConsistentRead: return "CR";
    case SurveyLevel::kDepends: return "Depends";
  }
  return "?";
}

const std::vector<SurveyEntry>& IsolationSurvey() {
  using L = SurveyLevel;
  static const std::vector<SurveyEntry> kSurvey = {
      {"Actian Ingres 10.0/10S", L::kSerializability, L::kSerializability},
      {"Aerospike", L::kReadCommitted, L::kReadCommitted},
      {"Akiban Persistit", L::kSnapshotIsolation, L::kSnapshotIsolation},
      {"Clustrix CLX 4100", L::kRepeatableRead, L::kRepeatableRead},
      {"Greenplum 4.1", L::kReadCommitted, L::kSerializability},
      {"IBM DB2 10 for z/OS", L::kCursorStability, L::kSerializability},
      {"IBM Informix 11.50", L::kDepends, L::kSerializability},
      {"MySQL 5.6", L::kRepeatableRead, L::kSerializability},
      {"MemSQL 1b", L::kReadCommitted, L::kReadCommitted},
      {"MS SQL Server 2012", L::kReadCommitted, L::kSerializability},
      {"NuoDB", L::kConsistentRead, L::kConsistentRead},
      {"Oracle 11g", L::kReadCommitted, L::kSnapshotIsolation},
      {"Oracle Berkeley DB", L::kSerializability, L::kSerializability},
      {"Oracle Berkeley DB JE", L::kRepeatableRead, L::kSerializability},
      {"Postgres 9.2.2", L::kReadCommitted, L::kSerializability},
      {"SAP HANA", L::kReadCommitted, L::kSnapshotIsolation},
      {"ScaleDB 1.02", L::kReadCommitted, L::kReadCommitted},
      {"VoltDB", L::kSerializability, L::kSerializability},
  };
  return kSurvey;
}

SurveyStats ComputeSurveyStats() {
  SurveyStats stats;
  for (const auto& e : IsolationSurvey()) {
    stats.total++;
    if (e.default_level == SurveyLevel::kSerializability) {
      stats.serializable_by_default++;
    }
    if (e.maximum_level != SurveyLevel::kSerializability) {
      stats.serializable_unavailable++;
    }
  }
  return stats;
}

}  // namespace hat::models
