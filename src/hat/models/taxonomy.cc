#include "hat/models/taxonomy.h"

#include <array>
#include <queue>

namespace hat::models {

namespace {
struct ModelInfo {
  Model model;
  std::string_view short_name;
  std::string_view long_name;
  Availability availability;
  UnavailabilityCause cause;
};

constexpr std::array<ModelInfo, kNumModels> kModels = {{
    {Model::kReadUncommitted, "RU", "Read Uncommitted",
     Availability::kHighlyAvailable, {}},
    {Model::kReadCommitted, "RC", "Read Committed",
     Availability::kHighlyAvailable, {}},
    {Model::kItemCutIsolation, "I-CI", "Item Cut Isolation",
     Availability::kHighlyAvailable, {}},
    {Model::kPredicateCutIsolation, "P-CI", "Predicate Cut Isolation",
     Availability::kHighlyAvailable, {}},
    {Model::kMonotonicAtomicView, "MAV", "Monotonic Atomic View",
     Availability::kHighlyAvailable, {}},
    {Model::kMonotonicReads, "MR", "Monotonic Reads",
     Availability::kHighlyAvailable, {}},
    {Model::kMonotonicWrites, "MW", "Monotonic Writes",
     Availability::kHighlyAvailable, {}},
    {Model::kWritesFollowReads, "WFR", "Writes Follow Reads",
     Availability::kHighlyAvailable, {}},
    {Model::kReadYourWrites, "RYW", "Read Your Writes",
     Availability::kSticky, {}},
    {Model::kPram, "PRAM", "PRAM", Availability::kSticky, {}},
    {Model::kCausal, "Causal", "Causal consistency", Availability::kSticky,
     {}},
    {Model::kCursorStability, "CS", "Cursor Stability",
     Availability::kUnavailable, {.prevents_lost_update = true}},
    {Model::kSnapshotIsolation, "SI", "Snapshot Isolation",
     Availability::kUnavailable, {.prevents_lost_update = true}},
    {Model::kRepeatableRead, "RR", "Repeatable Read",
     Availability::kUnavailable,
     {.prevents_lost_update = true, .prevents_write_skew = true}},
    {Model::kOneCopySerializability, "1SR", "One-Copy Serializability",
     Availability::kUnavailable,
     {.prevents_lost_update = true, .prevents_write_skew = true}},
    {Model::kRecency, "Recency", "Recency bounds",
     Availability::kUnavailable, {.requires_recency = true}},
    {Model::kSafe, "Safe", "Safe register", Availability::kUnavailable,
     {.requires_recency = true}},
    {Model::kRegular, "Regular", "Regular register",
     Availability::kUnavailable, {.requires_recency = true}},
    {Model::kLinearizability, "Linearizable", "Linearizability",
     Availability::kUnavailable, {.requires_recency = true}},
    {Model::kStrongOneCopySerializability, "Strong-1SR",
     "Strong One-Copy Serializability", Availability::kUnavailable,
     {.prevents_lost_update = true,
      .prevents_write_skew = true,
      .requires_recency = true}},
}};

const ModelInfo& InfoOf(Model m) {
  return kModels[static_cast<size_t>(m)];
}
}  // namespace

std::string_view ModelShortName(Model m) { return InfoOf(m).short_name; }
std::string_view ModelLongName(Model m) { return InfoOf(m).long_name; }
Availability AvailabilityOf(Model m) { return InfoOf(m).availability; }
UnavailabilityCause CauseOf(Model m) { return InfoOf(m).cause; }

std::string_view AvailabilityName(Availability a) {
  switch (a) {
    case Availability::kHighlyAvailable: return "HA";
    case Availability::kSticky: return "Sticky";
    case Availability::kUnavailable: return "Unavailable";
  }
  return "?";
}

std::vector<Model> AllModels() {
  std::vector<Model> out;
  out.reserve(kNumModels);
  for (const auto& info : kModels) out.push_back(info.model);
  return out;
}

std::vector<std::pair<Model, Model>> StrengthEdges() {
  using M = Model;
  // Figure 2 Hasse diagram, weaker -> stronger.
  return {
      // isolation chain
      {M::kReadUncommitted, M::kReadCommitted},
      {M::kReadCommitted, M::kMonotonicAtomicView},
      {M::kMonotonicAtomicView, M::kCausal},  // causal = Adya PL-2L >= MAV
      {M::kReadCommitted, M::kCursorStability},
      {M::kCursorStability, M::kRepeatableRead},
      {M::kCursorStability, M::kSnapshotIsolation},
      // cut isolation chain
      {M::kItemCutIsolation, M::kPredicateCutIsolation},
      {M::kItemCutIsolation, M::kRepeatableRead},
      {M::kPredicateCutIsolation, M::kSnapshotIsolation},
      // serializability
      {M::kRepeatableRead, M::kOneCopySerializability},
      {M::kSnapshotIsolation, M::kOneCopySerializability},
      {M::kOneCopySerializability, M::kStrongOneCopySerializability},
      // session guarantees
      {M::kMonotonicReads, M::kPram},
      {M::kMonotonicWrites, M::kPram},
      {M::kReadYourWrites, M::kPram},
      {M::kPram, M::kCausal},
      {M::kWritesFollowReads, M::kCausal},
      {M::kCausal, M::kStrongOneCopySerializability},
      // recency / register chain
      {M::kRecency, M::kSafe},
      {M::kSafe, M::kRegular},
      {M::kRegular, M::kLinearizability},
      {M::kLinearizability, M::kStrongOneCopySerializability},
  };
}

namespace {
// Reachability matrix over the strength edges (stronger reachable FROM
// weaker); computed once.
const std::array<std::array<bool, kNumModels>, kNumModels>& Reachability() {
  static const auto matrix = [] {
    std::array<std::array<bool, kNumModels>, kNumModels> reach{};
    std::array<std::vector<int>, kNumModels> adj;
    for (auto [weaker, stronger] : StrengthEdges()) {
      adj[static_cast<int>(weaker)].push_back(static_cast<int>(stronger));
    }
    for (int s = 0; s < kNumModels; s++) {
      std::queue<int> q;
      q.push(s);
      reach[s][s] = true;
      while (!q.empty()) {
        int v = q.front();
        q.pop();
        for (int w : adj[v]) {
          if (!reach[s][w]) {
            reach[s][w] = true;
            q.push(w);
          }
        }
      }
    }
    return reach;
  }();
  return matrix;
}
}  // namespace

bool Entails(Model stronger, Model weaker) {
  // `stronger` entails `weaker` iff stronger is reachable from weaker.
  return Reachability()[static_cast<int>(weaker)][static_cast<int>(stronger)];
}

bool Incomparable(Model a, Model b) {
  return !Entails(a, b) && !Entails(b, a);
}

Availability CombinedAvailability(const std::vector<Model>& models) {
  Availability worst = Availability::kHighlyAvailable;
  for (Model m : models) {
    Availability a = AvailabilityOf(m);
    if (static_cast<int>(a) > static_cast<int>(worst)) worst = a;
  }
  return worst;
}

int HatCombinationCount() {
  // Figure 2 depicts 144 HAT combinations: 3 isolation choices (RU, RC, MAV)
  // x 3 cut choices (none, I-CI, P-CI) x 2^4 subsets of the session
  // guarantees {MR, MW, WFR, RYW}.
  constexpr int kIsolation = 3;
  constexpr int kCut = 3;
  constexpr int kSessionSubsets = 1 << 4;
  return kIsolation * kCut * kSessionSubsets;
}

std::string ValidateTaxonomy() {
  // Acyclicity: Entails both ways would mean a cycle.
  for (Model a : AllModels()) {
    for (Model b : AllModels()) {
      if (a == b) continue;
      if (Entails(a, b) && Entails(b, a)) {
        return std::string("cycle between ") +
               std::string(ModelShortName(a)) + " and " +
               std::string(ModelShortName(b));
      }
    }
  }
  // Availability monotone along strength: a stronger model is never more
  // available than one it entails.
  for (Model strong : AllModels()) {
    for (Model weak : AllModels()) {
      if (strong == weak || !Entails(strong, weak)) continue;
      if (static_cast<int>(AvailabilityOf(strong)) <
          static_cast<int>(AvailabilityOf(weak))) {
        return std::string(ModelShortName(strong)) + " entails " +
               std::string(ModelShortName(weak)) +
               " but claims better availability";
      }
    }
  }
  return "";
}

}  // namespace hat::models
