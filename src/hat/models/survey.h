// Table 2: default and maximum isolation levels of the 18 ACID / "NewSQL"
// databases the paper surveyed (as of January 2013), encoded verbatim.

#ifndef HAT_MODELS_SURVEY_H_
#define HAT_MODELS_SURVEY_H_

#include <string_view>
#include <vector>

namespace hat::models {

/// Isolation levels appearing in the survey.
enum class SurveyLevel : uint8_t {
  kReadCommitted,     // RC
  kRepeatableRead,    // RR
  kSnapshotIsolation, // SI
  kSerializability,   // S
  kCursorStability,   // CS
  kConsistentRead,    // CR
  kDepends,           // "Depends"
};

std::string_view SurveyLevelName(SurveyLevel level);

struct SurveyEntry {
  std::string_view database;
  SurveyLevel default_level;
  SurveyLevel maximum_level;
};

/// The 18 rows of Table 2.
const std::vector<SurveyEntry>& IsolationSurvey();

/// Headline statistics the paper reports: how many of the surveyed systems
/// default to serializability, and how many cannot provide it at all.
struct SurveyStats {
  int total = 0;
  int serializable_by_default = 0;
  int serializable_unavailable = 0;  ///< S not offered even as an option
};
SurveyStats ComputeSurveyStats();

}  // namespace hat::models

#endif  // HAT_MODELS_SURVEY_H_
