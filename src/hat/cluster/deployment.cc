#include "hat/cluster/deployment.h"

#include <cassert>

#include "hat/common/rng.h"

namespace hat::cluster {

DeploymentOptions DeploymentOptions::SingleDatacenter() {
  DeploymentOptions opts;
  opts.clusters = {{net::Region::kVirginia, 0}, {net::Region::kVirginia, 1}};
  return opts;
}

DeploymentOptions DeploymentOptions::TwoRegions() {
  DeploymentOptions opts;
  opts.clusters = {{net::Region::kVirginia, 0}, {net::Region::kOregon, 0}};
  return opts;
}

DeploymentOptions DeploymentOptions::FiveRegions() {
  DeploymentOptions opts;
  opts.clusters = {{net::Region::kVirginia, 0},
                   {net::Region::kCalifornia, 0},
                   {net::Region::kOregon, 0},
                   {net::Region::kIreland, 0},
                   {net::Region::kTokyo, 0}};
  return opts;
}

Deployment::Deployment(sim::Simulation& sim, DeploymentOptions options)
    : sim_(sim),
      options_(std::move(options)),
      placement_(static_cast<int>(options_.clusters.size()),
                 options_.servers_per_cluster,
                 static_cast<int>(options_.server.shards_per_server)) {
  assert(!options_.clusters.empty());
  assert(options_.servers_per_cluster > 0);
  assert(options_.server.shards_per_server > 0);
  assert(options_.server.cores_per_server > 0);
  // Compose server- and shard-level hash placement (see file comment):
  // every server routes a key to local shard (Fnv1a64(key) % L) / stride.
  options_.server.shard_placement_stride =
      static_cast<size_t>(options_.servers_per_cluster);

  net::Topology topology(options_.latency);
  for (const auto& spec : options_.clusters) {
    for (int s = 0; s < options_.servers_per_cluster; s++) {
      topology.AddNode(net::Location{spec.region, spec.az,
                                     static_cast<uint16_t>(s)});
    }
  }
  network_ = std::make_unique<net::Network>(sim_, std::move(topology));

  for (size_t c = 0; c < options_.clusters.size(); c++) {
    for (int s = 0; s < options_.servers_per_cluster; s++) {
      net::NodeId id = ServerId(static_cast<int>(c), s);
      server::ServerOptions server_options = options_.server;
      // Each server knows exactly which logical shards it hosts (the
      // epoch-0 placement), enabling kWrongShard detection once shards
      // start moving.
      server_options.owned_logical_shards =
          placement_.OwnedBy(static_cast<int>(c), s);
      if (!server_options.storage_dir.empty()) {
        server_options.storage_dir += "/server-" + std::to_string(id);
      }
      servers_.push_back(std::make_unique<server::ReplicaServer>(
          sim_, *network_, id, std::move(server_options), this));
    }
  }
}

Deployment::~Deployment() = default;

int Deployment::ShardOf(const Key& key) const {
  return static_cast<int>(Fnv1a64(key.data(), key.size()) %
                          static_cast<uint64_t>(options_.servers_per_cluster));
}

int Deployment::LogicalShardOf(const Key& key) const {
  return static_cast<int>(Fnv1a64(key.data(), key.size()) %
                          static_cast<uint64_t>(NumLogicalShards()));
}

net::NodeId Deployment::ServerId(int cluster, int shard) const {
  return static_cast<net::NodeId>(cluster * options_.servers_per_cluster +
                                  shard);
}

net::NodeId Deployment::ReplicaInCluster(const Key& key, int cluster) const {
  return ServerId(cluster, placement_.Owner(cluster, LogicalShardOf(key)));
}

std::vector<net::NodeId> Deployment::ReplicasOf(const Key& key) const {
  std::vector<net::NodeId> out;
  int logical = LogicalShardOf(key);
  out.reserve(options_.clusters.size());
  for (size_t c = 0; c < options_.clusters.size(); c++) {
    int cluster = static_cast<int>(c);
    out.push_back(ServerId(cluster, placement_.Owner(cluster, logical)));
  }
  return out;
}

net::NodeId Deployment::MasterOf(const Key& key) const {
  // "Randomly designated" master cluster, deterministic per key: hash with a
  // salt independent of the shard hash.
  uint64_t h = Fnv1a64(key.data(), key.size()) * 0x9e3779b97f4a7c15ULL;
  int cluster =
      static_cast<int>((h >> 32) % static_cast<uint64_t>(NumClusters()));
  return ServerId(cluster, placement_.Owner(cluster, LogicalShardOf(key)));
}

std::vector<net::NodeId> Deployment::ClusterServers(int cluster) const {
  std::vector<net::NodeId> out;
  for (int s = 0; s < options_.servers_per_cluster; s++) {
    out.push_back(ServerId(cluster, s));
  }
  return out;
}

client::TxnClient& Deployment::AddClient(client::ClientOptions options) {
  assert(options.home_cluster >= 0 && options.home_cluster < NumClusters());
  const ClusterSpec& spec = options_.clusters[options.home_cluster];
  net::NodeId id = network_->topology().AddNode(net::Location{
      spec.region, spec.az,
      static_cast<uint16_t>(1000 + clients_.size())});
  clients_.push_back(std::make_unique<client::TxnClient>(
      sim_, *network_, id, options, this));
  client_cluster_.push_back(options.home_cluster);
  client_ids_.push_back(id);
  client::TxnClient& client = *clients_.back();
  if (tracer_) client.set_tracer(tracer_.get());
  if (registry_) RegisterClientMetrics(client);
  return client;
}

server::ServerStats Deployment::TotalServerStats() const {
  // Generic field-for-field merge driven by ServerStats::VisitFields — a
  // new stats field is aggregated here the moment it passes the VisitFields
  // static_assert, with no per-field line to forget.
  server::ServerStats total;
  for (const auto& s : servers_) obs::MergeStats(total, s->stats());
  return total;
}

client::ClientStats Deployment::TotalClientStats() const {
  client::ClientStats total;
  for (const auto& c : clients_) obs::MergeStats(total, c->stats());
  return total;
}

void Deployment::EnableObservability(const ObsConfig& config) {
  if (config.tracing && !tracer_) {
    obs::Tracer::Options topts;
    topts.ring_capacity = config.trace_ring_capacity;
    topts.sample_every = config.trace_sample_every;
    tracer_ = std::make_unique<obs::Tracer>(topts);
    tracer_->set_enabled(true);
    network_->set_tracer(tracer_.get());
    for (auto& srv : servers_) srv->set_tracer(tracer_.get());
    for (auto& cli : clients_) cli->set_tracer(tracer_.get());
  }
  if (config.sampling && !registry_) {
    registry_ = std::make_unique<obs::Registry>();
    for (auto& srv : servers_) RegisterServerMetrics(*srv);
    for (auto& cli : clients_) RegisterClientMetrics(*cli);
    obs::Sampler::Options sopts;
    sopts.period = config.sample_period;
    sampler_ = std::make_unique<obs::Sampler>(sim_, *registry_, sopts);
    sampler_->Start();
  }
}

void Deployment::RegisterServerMetrics(const server::ReplicaServer& srv) {
  const server::ReplicaServer* s = &srv;
  auto id = static_cast<int32_t>(srv.id());
  registry_->AddStats<server::ServerStats>(
      "server.", obs::MetricLabels{id, -1, "server"},
      [s]() -> const server::ServerStats& { return s->stats(); });
  // Per-lane fields, with the lane label the generic path cannot infer.
  // Lane count is fixed at construction (shards_per_server + global lane).
  size_t lanes = srv.stats().lane_busy_us.size();
  for (size_t lane = 0; lane < lanes; lane++) {
    obs::MetricLabels labels{id, static_cast<int32_t>(lane), "exec"};
    registry_->AddCounter("server.lane_busy_us", labels, [s, lane]() {
      return s->stats().lane_busy_us[lane];
    });
    registry_->AddGauge("server.lane_queue_depth", labels, [s, lane]() {
      return static_cast<double>(s->stats().lane_queue_depth[lane]);
    });
  }
}

void Deployment::RegisterClientMetrics(const client::TxnClient& cli) {
  const client::TxnClient* c = &cli;
  registry_->AddStats<client::ClientStats>(
      "client.", obs::MetricLabels{static_cast<int32_t>(cli.id()), -1,
                                   "client"},
      [c]() -> const client::ClientStats& { return c->stats(); });
}

void Deployment::PartitionClusters(int a, int b) {
  auto nodes_of = [this](int cluster) {
    std::vector<net::NodeId> nodes = ClusterServers(cluster);
    for (size_t i = 0; i < client_ids_.size(); i++) {
      if (client_cluster_[i] == cluster) nodes.push_back(client_ids_[i]);
    }
    return nodes;
  };
  for (net::NodeId x : nodes_of(a)) {
    for (net::NodeId y : nodes_of(b)) network_->CutLink(x, y);
  }
}

void Deployment::IsolateCluster(int a) {
  std::set<net::NodeId> group;
  for (net::NodeId id : ClusterServers(a)) group.insert(id);
  for (size_t i = 0; i < client_ids_.size(); i++) {
    if (client_cluster_[i] == a) group.insert(client_ids_[i]);
  }
  network_->SetPartitions({group});
}

void Deployment::Heal() { network_->HealAll(); }

}  // namespace hat::cluster
