#include "hat/cluster/deployment.h"

#include <cassert>

#include "hat/common/rng.h"

namespace hat::cluster {

DeploymentOptions DeploymentOptions::SingleDatacenter() {
  DeploymentOptions opts;
  opts.clusters = {{net::Region::kVirginia, 0}, {net::Region::kVirginia, 1}};
  return opts;
}

DeploymentOptions DeploymentOptions::TwoRegions() {
  DeploymentOptions opts;
  opts.clusters = {{net::Region::kVirginia, 0}, {net::Region::kOregon, 0}};
  return opts;
}

DeploymentOptions DeploymentOptions::FiveRegions() {
  DeploymentOptions opts;
  opts.clusters = {{net::Region::kVirginia, 0},
                   {net::Region::kCalifornia, 0},
                   {net::Region::kOregon, 0},
                   {net::Region::kIreland, 0},
                   {net::Region::kTokyo, 0}};
  return opts;
}

Deployment::Deployment(sim::Simulation& sim, DeploymentOptions options)
    : sim_(sim),
      options_(std::move(options)),
      placement_(static_cast<int>(options_.clusters.size()),
                 options_.servers_per_cluster,
                 static_cast<int>(options_.server.shards_per_server)) {
  assert(!options_.clusters.empty());
  assert(options_.servers_per_cluster > 0);
  assert(options_.server.shards_per_server > 0);
  assert(options_.server.cores_per_server > 0);
  // Compose server- and shard-level hash placement (see file comment):
  // every server routes a key to local shard (Fnv1a64(key) % L) / stride.
  options_.server.shard_placement_stride =
      static_cast<size_t>(options_.servers_per_cluster);

  net::Topology topology(options_.latency);
  for (const auto& spec : options_.clusters) {
    for (int s = 0; s < options_.servers_per_cluster; s++) {
      topology.AddNode(net::Location{spec.region, spec.az,
                                     static_cast<uint16_t>(s)});
    }
  }
  network_ = std::make_unique<net::Network>(sim_, std::move(topology));

  for (size_t c = 0; c < options_.clusters.size(); c++) {
    for (int s = 0; s < options_.servers_per_cluster; s++) {
      net::NodeId id = ServerId(static_cast<int>(c), s);
      server::ServerOptions server_options = options_.server;
      // Each server knows exactly which logical shards it hosts (the
      // epoch-0 placement), enabling kWrongShard detection once shards
      // start moving.
      server_options.owned_logical_shards =
          placement_.OwnedBy(static_cast<int>(c), s);
      if (!server_options.storage_dir.empty()) {
        server_options.storage_dir += "/server-" + std::to_string(id);
      }
      servers_.push_back(std::make_unique<server::ReplicaServer>(
          sim_, *network_, id, std::move(server_options), this));
    }
  }
}

Deployment::~Deployment() = default;

int Deployment::ShardOf(const Key& key) const {
  return static_cast<int>(Fnv1a64(key.data(), key.size()) %
                          static_cast<uint64_t>(options_.servers_per_cluster));
}

int Deployment::LogicalShardOf(const Key& key) const {
  return static_cast<int>(Fnv1a64(key.data(), key.size()) %
                          static_cast<uint64_t>(NumLogicalShards()));
}

net::NodeId Deployment::ServerId(int cluster, int shard) const {
  return static_cast<net::NodeId>(cluster * options_.servers_per_cluster +
                                  shard);
}

net::NodeId Deployment::ReplicaInCluster(const Key& key, int cluster) const {
  return ServerId(cluster, placement_.Owner(cluster, LogicalShardOf(key)));
}

std::vector<net::NodeId> Deployment::ReplicasOf(const Key& key) const {
  std::vector<net::NodeId> out;
  int logical = LogicalShardOf(key);
  out.reserve(options_.clusters.size());
  for (size_t c = 0; c < options_.clusters.size(); c++) {
    int cluster = static_cast<int>(c);
    out.push_back(ServerId(cluster, placement_.Owner(cluster, logical)));
  }
  return out;
}

net::NodeId Deployment::MasterOf(const Key& key) const {
  // "Randomly designated" master cluster, deterministic per key: hash with a
  // salt independent of the shard hash.
  uint64_t h = Fnv1a64(key.data(), key.size()) * 0x9e3779b97f4a7c15ULL;
  int cluster =
      static_cast<int>((h >> 32) % static_cast<uint64_t>(NumClusters()));
  return ServerId(cluster, placement_.Owner(cluster, LogicalShardOf(key)));
}

std::vector<net::NodeId> Deployment::ClusterServers(int cluster) const {
  std::vector<net::NodeId> out;
  for (int s = 0; s < options_.servers_per_cluster; s++) {
    out.push_back(ServerId(cluster, s));
  }
  return out;
}

client::TxnClient& Deployment::AddClient(client::ClientOptions options) {
  assert(options.home_cluster >= 0 && options.home_cluster < NumClusters());
  const ClusterSpec& spec = options_.clusters[options.home_cluster];
  net::NodeId id = network_->topology().AddNode(net::Location{
      spec.region, spec.az,
      static_cast<uint16_t>(1000 + clients_.size())});
  clients_.push_back(std::make_unique<client::TxnClient>(
      sim_, *network_, id, options, this));
  client_cluster_.push_back(options.home_cluster);
  client_ids_.push_back(id);
  return *clients_.back();
}

server::ServerStats Deployment::TotalServerStats() const {
  server::ServerStats total;
  for (const auto& s : servers_) {
    const auto& st = s->stats();
    total.gets += st.gets;
    total.gets_not_yet += st.gets_not_yet;
    total.gets_from_pending += st.gets_from_pending;
    total.puts += st.puts;
    total.scans += st.scans;
    total.notifies += st.notifies;
    total.ae_batches_in += st.ae_batches_in;
    total.ae_records_in += st.ae_records_in;
    total.ae_records_out += st.ae_records_out;
    total.ae_batches_out += st.ae_batches_out;
    total.ae_retransmits += st.ae_retransmits;
    total.ae_dupes_suppressed += st.ae_dupes_suppressed;
    total.ae_dedupe_rotations += st.ae_dedupe_rotations;
    total.ae_shard_lane_batches += st.ae_shard_lane_batches;
    total.client_batches += st.client_batches;
    total.client_batch_ops += st.client_batch_ops;
    total.ae_digest_ticks += st.ae_digest_ticks;
    total.ae_digest_entries_out += st.ae_digest_entries_out;
    total.ae_digest_bytes_out += st.ae_digest_bytes_out;
    total.mav_promotions += st.mav_promotions;
    total.stale_pending_dropped += st.stale_pending_dropped;
    total.locks_granted += st.locks_granted;
    total.locks_queued += st.locks_queued;
    total.lock_deaths += st.lock_deaths;
    total.wrong_shard_replies += st.wrong_shard_replies;
    total.forwarded_records += st.forwarded_records;
    total.mig_snapshot_records_out += st.mig_snapshot_records_out;
    total.mig_snapshot_records_in += st.mig_snapshot_records_in;
    total.mig_catchup_records_in += st.mig_catchup_records_in;
    total.busy_us += st.busy_us;
    total.exec_tasks += st.exec_tasks;
    total.exec_dispatches += st.exec_dispatches;
    if (total.lane_busy_us.size() < st.lane_busy_us.size()) {
      total.lane_busy_us.resize(st.lane_busy_us.size(), 0);
    }
    for (size_t i = 0; i < st.lane_busy_us.size(); i++) {
      total.lane_busy_us[i] += st.lane_busy_us[i];
    }
    if (total.lane_queue_depth.size() < st.lane_queue_depth.size()) {
      total.lane_queue_depth.resize(st.lane_queue_depth.size(), 0);
    }
    for (size_t i = 0; i < st.lane_queue_depth.size(); i++) {
      total.lane_queue_depth[i] += st.lane_queue_depth[i];
    }
    total.queue_wait_us.Merge(st.queue_wait_us);
  }
  return total;
}

void Deployment::PartitionClusters(int a, int b) {
  auto nodes_of = [this](int cluster) {
    std::vector<net::NodeId> nodes = ClusterServers(cluster);
    for (size_t i = 0; i < client_ids_.size(); i++) {
      if (client_cluster_[i] == cluster) nodes.push_back(client_ids_[i]);
    }
    return nodes;
  };
  for (net::NodeId x : nodes_of(a)) {
    for (net::NodeId y : nodes_of(b)) network_->CutLink(x, y);
  }
}

void Deployment::IsolateCluster(int a) {
  std::set<net::NodeId> group;
  for (net::NodeId id : ClusterServers(a)) group.insert(id);
  for (size_t i = 0; i < client_ids_.size(); i++) {
    if (client_cluster_[i] == a) group.insert(client_ids_[i]);
  }
  network_->SetPartitions({group});
}

void Deployment::Heal() { network_->HealAll(); }

}  // namespace hat::cluster
