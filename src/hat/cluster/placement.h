// Epoch-versioned shard placement and the live-migration control plane.
//
// PlacementMap is the source of truth for logical-shard -> server
// assignment inside each cluster copy. Epoch 0 reproduces the historical
// implicit placement bit-for-bit — logical shard l lives on server slot
// l % servers_per_cluster — so a deployment that never rebalances routes
// exactly as before. Every reassignment bumps a single monotonically
// increasing epoch; routers (clients via client::Routing, servers via
// server::Partitioner) consult the live map, and a server that receives an
// operation for a shard it no longer hosts answers kWrongShard so stale
// routing self-corrects (the paper's HAT guarantees are unaffected:
// operations retry at the new owner, no coordination on the read/write
// path is introduced).
//
// RebalanceCoordinator drives one live migration of a logical shard
// between two servers of one cluster while the workload keeps running:
//
//   kSnapshot  destination attaches a staging slot and pulls the shard's
//              frozen version set in bounded ShardSnapshotChunk batches
//              (idempotent set-union: crash recovery just restarts the
//              stream);
//   kCatchup   the source re-runs the (shard, bucket)-scoped digest
//              protocol against the destination until the destination
//              holds a superset of the source's shard and the source's
//              shard lane has drained (ShardExecutor queue depth 0 — the
//              deterministic "quiet point");
//   cutover    destination's staging slot is promoted to serving, the
//              placement epoch bumps (routing flips atomically on the
//              simulation's virtual clock);
//   kDrain     stragglers that were in flight to the source keep applying
//              there and one more digest round ships them across; once the
//              source's shard is again a subset of the destination's, the
//              source detaches the slot, tombstones its on-disk keyspace,
//              and forwards any late anti-entropy records to the new
//              owner.
//
// The coordinator is control plane only: it schedules simulation events
// and calls in-process control hooks on the two servers (the moral
// equivalent of an operator's configuration service); all bulk data moves
// as real network messages whose service time is charged to the moving
// shard's executor lane.

#ifndef HAT_CLUSTER_PLACEMENT_H_
#define HAT_CLUSTER_PLACEMENT_H_

#include <cstdint>
#include <vector>

#include "hat/sim/simulation.h"

namespace hat::cluster {

class Deployment;

/// Logical-shard -> server-slot assignment for every cluster copy, with a
/// deployment-wide epoch that bumps on every reassignment.
class PlacementMap {
 public:
  PlacementMap() : PlacementMap(1, 1, 1) {}
  /// Epoch-0 map: in every cluster, logical shard l is owned by slot
  /// l % servers_per_cluster (identical to the historical stride
  /// arithmetic).
  PlacementMap(int clusters, int servers_per_cluster, int shards_per_server);

  uint64_t epoch() const { return epoch_; }
  int clusters() const { return static_cast<int>(owner_.size()); }
  int servers_per_cluster() const { return servers_per_cluster_; }
  int num_logical_shards() const { return num_logical_shards_; }

  /// Server slot hosting `logical_shard` inside `cluster`.
  int Owner(int cluster, int logical_shard) const {
    return owner_[cluster][logical_shard];
  }

  /// All logical shards `slot` hosts in `cluster`, ascending. At epoch 0
  /// this is {slot, slot + spc, slot + 2*spc, ...} — the stride layout.
  std::vector<uint32_t> OwnedBy(int cluster, int slot) const;

  /// Reassigns one logical shard and bumps the epoch. Returns the new
  /// epoch. No-op (epoch unchanged) if `slot` already owns the shard.
  uint64_t SetOwner(int cluster, int logical_shard, int slot);

 private:
  int servers_per_cluster_;
  int num_logical_shards_;
  uint64_t epoch_ = 0;
  std::vector<std::vector<int>> owner_;  // [cluster][logical shard] -> slot
};

/// Progress counters of one migration, printed by the fig6 --migrate sweep.
struct MigrationStats {
  uint64_t snapshot_records = 0;   ///< records shipped in the bulk phase
  uint64_t catchup_records = 0;    ///< records shipped by digest catch-up
  uint64_t restarts = 0;           ///< crash-triggered stream restarts
  uint64_t cutover_epoch = 0;      ///< placement epoch after the flip
  sim::SimTime started_at = 0;
  sim::SimTime cutover_at = 0;     ///< routing flipped (0 until it happens)
  sim::SimTime finished_at = 0;    ///< source detached (0 until done)
};

/// Drives one live shard migration against a Deployment (see file comment
/// for the state machine). Construct, ScheduleMigration(), run the
/// simulation; Done() reports completion and stats() the shipped volumes.
class RebalanceCoordinator {
 public:
  struct Options {
    /// State-machine poll cadence.
    sim::Duration poll_interval = 20 * sim::kMillisecond;
    /// Catch-up phase bound: under sustained write traffic the source never
    /// quiesces, so after this long the cutover is forced with bounded lag
    /// — safe, because routing flips traffic away from the source and the
    /// drain phase still requires the destination to hold a superset
    /// before the source detaches (no operation is lost; reads at the
    /// destination may briefly trail by one catch-up round, which eventual
    /// consistency permits).
    sim::Duration max_catchup_wait = 600 * sim::kMillisecond;
  };

  explicit RebalanceCoordinator(Deployment& deployment)
      : RebalanceCoordinator(deployment, Options()) {}
  RebalanceCoordinator(Deployment& deployment, Options options);

  /// Migration state machine phases (see file comment); exposed for tests
  /// and diagnostics.
  enum class Phase { kIdle, kSnapshot, kCatchup, kDrain, kDone };
  Phase phase() const { return phase_; }

  /// Schedules `logical_shard` of `cluster` to move to server slot
  /// `to_slot` at virtual time `at`. One migration per coordinator.
  void ScheduleMigration(int cluster, uint32_t logical_shard, int to_slot,
                         sim::SimTime at);

  /// The logical shard with the highest executor-lane busy time across
  /// `cluster`'s servers — the natural pick for a hot-shard drain.
  uint32_t PickHottestShard(int cluster) const;

  bool Done() const { return phase_ == Phase::kDone; }
  const MigrationStats& stats() const { return stats_; }

 private:
  void Start();
  void Tick();
  /// Crash recovery: abandon the current stream and start a fresh one
  /// under a new migration id — a full snapshot pull (destination lost its
  /// staged copy) or catch-up rounds only (destination still holds the
  /// bulk; the source re-reconciles the diff).
  void RestartStream(bool full_snapshot);
  /// Every (key, ts) of the source's copy of the shard is present at the
  /// destination (the cutover / detach safety condition).
  bool SourceSubsetOfDest() const;

  Deployment& deployment_;
  Options options_;
  Phase phase_ = Phase::kIdle;
  MigrationStats stats_;

  int cluster_ = 0;
  uint32_t shard_ = 0;
  int from_slot_ = 0;
  int to_slot_ = 0;
  uint64_t migration_id_ = 0;
  uint64_t next_migration_id_ = 0;
  sim::SimTime catchup_started_ = 0;
  /// When the current stream (re)started — crash detection waits out a
  /// grace period from here before declaring a peer dead.
  sim::SimTime last_restart_ = 0;
};

}  // namespace hat::cluster

#endif  // HAT_CLUSTER_PLACEMENT_H_
