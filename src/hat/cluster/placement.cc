#include "hat/cluster/placement.h"

#include <cassert>

#include "hat/cluster/deployment.h"
#include "hat/server/replica_server.h"

namespace hat::cluster {

// ---------------------------------------------------------------------------
// PlacementMap
// ---------------------------------------------------------------------------

PlacementMap::PlacementMap(int clusters, int servers_per_cluster,
                           int shards_per_server)
    : servers_per_cluster_(servers_per_cluster),
      num_logical_shards_(servers_per_cluster * shards_per_server) {
  assert(clusters > 0 && servers_per_cluster > 0 && shards_per_server > 0);
  owner_.resize(clusters);
  for (auto& cluster : owner_) {
    cluster.resize(num_logical_shards_);
    for (int l = 0; l < num_logical_shards_; l++) {
      cluster[l] = l % servers_per_cluster_;  // the epoch-0 stride layout
    }
  }
}

std::vector<uint32_t> PlacementMap::OwnedBy(int cluster, int slot) const {
  std::vector<uint32_t> out;
  for (int l = 0; l < num_logical_shards_; l++) {
    if (owner_[cluster][l] == slot) out.push_back(static_cast<uint32_t>(l));
  }
  return out;
}

uint64_t PlacementMap::SetOwner(int cluster, int logical_shard, int slot) {
  assert(slot >= 0 && slot < servers_per_cluster_);
  if (owner_[cluster][logical_shard] == slot) return epoch_;
  owner_[cluster][logical_shard] = slot;
  return ++epoch_;
}

// ---------------------------------------------------------------------------
// RebalanceCoordinator
// ---------------------------------------------------------------------------

namespace {
/// Declaring a crashed peer: how long a phase may show no session before
/// the coordinator restarts the stream. Comfortably above an intra-cluster
/// round trip plus service time, far below any test's settle window.
constexpr sim::Duration kRestartGrace = 500 * sim::kMillisecond;
}  // namespace

RebalanceCoordinator::RebalanceCoordinator(Deployment& deployment,
                                           Options options)
    : deployment_(deployment), options_(options) {}

void RebalanceCoordinator::ScheduleMigration(int cluster,
                                             uint32_t logical_shard,
                                             int to_slot, sim::SimTime at) {
  assert(phase_ == Phase::kIdle && "one migration per coordinator");
  cluster_ = cluster;
  shard_ = logical_shard;
  to_slot_ = to_slot;
  deployment_.simulation().At(at, [this]() { Start(); });
}

uint32_t RebalanceCoordinator::PickHottestShard(int cluster) const {
  uint32_t best = 0;
  double best_busy = -1;
  for (int s = 0; s < deployment_.ServersPerCluster(); s++) {
    const auto& server = deployment_.server(deployment_.ServerId(cluster, s));
    const auto& stats = server.stats();
    for (size_t slot = 0; slot < server.good().shard_count(); slot++) {
      uint32_t tag = server.good().LogicalTagOfSlot(slot);
      if (tag == version::ShardedStore::kNoShard) continue;
      size_t lane = server.LaneOfSlot(slot);
      double busy =
          lane < stats.lane_busy_us.size() ? stats.lane_busy_us[lane] : 0;
      if (busy > best_busy) {
        best_busy = busy;
        best = tag;
      }
    }
  }
  return best;
}

namespace {
server::ReplicaServer& ServerAt(Deployment& d, int cluster, int slot) {
  return d.server(d.ServerId(cluster, slot));
}
}  // namespace

void RebalanceCoordinator::Start() {
  sim::Simulation& sim = deployment_.simulation();
  stats_.started_at = sim.Now();
  from_slot_ = deployment_.placement().Owner(cluster_, shard_);
  if (from_slot_ == to_slot_) {  // nothing to move
    phase_ = Phase::kDone;
    stats_.finished_at = sim.Now();
    return;
  }
  migration_id_ = ++next_migration_id_;
  last_restart_ = sim.Now();
  ServerAt(deployment_, cluster_, to_slot_)
      .migrator()
      .StartPull(migration_id_, shard_,
                 deployment_.ServerId(cluster_, from_slot_));
  phase_ = Phase::kSnapshot;
  sim.After(options_.poll_interval, [this]() { Tick(); });
}

bool RebalanceCoordinator::SourceSubsetOfDest() const {
  const auto& src =
      ServerAt(deployment_, cluster_, from_slot_).good();
  const auto& dst = ServerAt(deployment_, cluster_, to_slot_).good();
  auto slot = src.SlotOfLogical(shard_);
  if (!slot) return true;  // already detached: nothing left to lose
  auto dst_slot = dst.SlotOfLogical(shard_);
  if (!dst_slot) return false;  // dest lost its staging copy
  // Fast path: identical shard roll-up hashes mean identical (key, latest)
  // sets — the digest protocol's own equality notion — so the per-version
  // walk is only paid while the two copies actually differ.
  if (src.ShardTopHash(*slot) == dst.ShardTopHash(*dst_slot)) return true;
  bool subset = true;
  src.shard(*slot).ForEachVersion([&](const WriteRecord& w) {
    if (!subset || dst.Contains(w.key, w.ts)) return;
    // Version GC makes literal set-equality too strict: the destination may
    // have dropped versions older than its newest Put for the key — the
    // convergence-safe rule every replica already applies. A source version
    // strictly below such a Put is shadowed on every replica and carries no
    // information; only an unshadowed missing version blocks the handoff.
    auto newest_put = dst.NewestPutTimestamp(w.key);
    if (!newest_put || w.ts > *newest_put) subset = false;
  });
  return subset;
}

void RebalanceCoordinator::RestartStream(bool full_snapshot) {
  auto& src = ServerAt(deployment_, cluster_, from_slot_);
  auto& dst = ServerAt(deployment_, cluster_, to_slot_);
  src.migrator().CancelSource(migration_id_);
  stats_.restarts++;
  migration_id_ = ++next_migration_id_;
  last_restart_ = deployment_.simulation().Now();
  if (full_snapshot) {
    dst.migrator().StartPull(migration_id_, shard_,
                             deployment_.ServerId(cluster_, from_slot_));
    phase_ = Phase::kSnapshot;
  } else {
    src.migrator().StartCatchupOnly(migration_id_, shard_,
                                    deployment_.ServerId(cluster_, to_slot_));
  }
}

void RebalanceCoordinator::Tick() {
  sim::Simulation& sim = deployment_.simulation();
  auto& src = ServerAt(deployment_, cluster_, from_slot_);
  auto& dst = ServerAt(deployment_, cluster_, to_slot_);

  switch (phase_) {
    case Phase::kIdle:
    case Phase::kDone:
      return;

    case Phase::kSnapshot: {
      if (!dst.migrator().HasPullSession(migration_id_)) {
        // Destination crashed: its staging slot and session are gone.
        // Restart the stream under a fresh id — chunk application is an
        // idempotent set-union, so replaying from scratch is safe.
        RestartStream(/*full_snapshot=*/true);
      } else if (dst.migrator().PullComplete(migration_id_)) {
        // Bulk shipped; the source is already running catch-up digests.
        phase_ = Phase::kCatchup;
        catchup_started_ = sim.Now();
      } else if (!src.migrator().HasSourceSession(migration_id_) &&
                 sim.Now() - last_restart_ > kRestartGrace) {
        // Source crashed before finishing the stream (its frozen snapshot
        // is volatile). Re-request: the recovered source re-freezes from
        // its durable state.
        RestartStream(/*full_snapshot=*/true);
      }
      break;
    }

    case Phase::kCatchup: {
      if (!dst.migrator().IsStagingShard(shard_)) {
        // Pre-cutover the destination must hold the shard as a staging
        // copy; only a crash (migrator state wiped) clears that. Cutover —
        // even forced — would flip routing onto a server whose copy is
        // gone, so restart the stream instead. (Slot presence is not the
        // signal: Crash() preserves the ownership shape.)
        RestartStream(/*full_snapshot=*/true);
        break;
      }
      if (!src.migrator().HasSourceSession(migration_id_) &&
          sim.Now() - last_restart_ > kRestartGrace) {
        // Source crashed after its snapshot completed: the destination
        // already holds the bulk, so reconcile the diff only.
        RestartStream(/*full_snapshot=*/false);
        break;
      }
      // Cutover point: destination holds a superset of the source's shard
      // AND the source's shard lane has drained (queue depth 0 — no booked
      // work that could still mutate the shard is in flight on it). Under
      // sustained traffic that window may never open, so after
      // max_catchup_wait the flip is forced with bounded lag — the drain
      // phase's strict subset check before detach is what guarantees no
      // record is lost either way.
      bool quiet = SourceSubsetOfDest() && src.ShardLaneQueueDepth(shard_) == 0;
      bool forced = sim.Now() - catchup_started_ > options_.max_catchup_wait;
      if (quiet || forced) {
        dst.migrator().PromoteStaging(shard_);
        stats_.cutover_epoch =
            deployment_.placement().SetOwner(cluster_, shard_, to_slot_);
        stats_.cutover_at = sim.Now();
        phase_ = Phase::kDrain;
      }
      break;
    }

    case Phase::kDrain: {
      if (!src.migrator().HasSourceSession(migration_id_) &&
          sim.Now() - last_restart_ > kRestartGrace) {
        // Post-cutover source crash: the destination owns and serves the
        // shard; only the source's straggler reconciliation restarts.
        RestartStream(/*full_snapshot=*/false);
        break;
      }
      // Stragglers routed before the epoch bump keep applying at the
      // source; the catch-up digests ship them across. Once the source is
      // a subset again and its lane has drained, it can let go.
      if (SourceSubsetOfDest() && src.ShardLaneQueueDepth(shard_) == 0) {
        src.migrator().FinishDrain(migration_id_);
        stats_.snapshot_records =
            dst.migrator().stats().snapshot_records_in;
        stats_.catchup_records = dst.migrator().stats().catchup_records_in;
        stats_.finished_at = sim.Now();
        phase_ = Phase::kDone;
        return;
      }
      break;
    }
  }
  sim.After(options_.poll_interval, [this]() { Tick(); });
}

}  // namespace hat::cluster
