// Deployment: builds a complete simulated hatkv installation.
//
// Mirrors the paper's experimental configuration (Section 6.3): the database
// is deployed in clusters — disjoint sets of servers each holding a single,
// fully replicated copy of the data, sharded across the cluster's servers —
// typically one cluster per datacenter. A key's replicas are the servers
// owning its hash shard, one per cluster; its master is a deterministically
// "random" cluster's replica.
//
// Each cluster's copy is split into L = servers_per_cluster x
// shards_per_server *logical shards*: a key's logical shard is
// Fnv1a64(key) % L, the server hosting it is logical_shard %
// servers_per_cluster (identical to the classic Fnv1a64(key) %
// servers_per_cluster — raising shards_per_server never moves keys between
// servers), and the hosting server stores it in local shard
// logical_shard / servers_per_cluster of its ShardedStore. The deployment
// wires ServerOptions::shard_placement_stride so every server's local
// routing agrees with this placement.

#ifndef HAT_CLUSTER_DEPLOYMENT_H_
#define HAT_CLUSTER_DEPLOYMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "hat/client/routing.h"
#include "hat/client/txn_client.h"
#include "hat/cluster/placement.h"
#include "hat/net/network.h"
#include "hat/obs/registry.h"
#include "hat/obs/sampler.h"
#include "hat/obs/trace.h"
#include "hat/server/replica_server.h"
#include "hat/sim/simulation.h"

namespace hat::cluster {

/// Opt-in observability for a deployment (EnableObservability). Both halves
/// default off: a deployment without them schedules no extra simulation
/// events and its runs stay figure-identical to an uninstrumented build.
struct ObsConfig {
  /// Distributed tracing: sample every trace_sample_every-th transaction
  /// per client into per-node span rings (export with obs::WriteChromeTrace).
  bool tracing = false;
  uint64_t trace_sample_every = 1;
  size_t trace_ring_capacity = 1 << 15;
  /// Metrics sampling: snapshot every registered metric each sample_period
  /// of sim time (export with obs::WriteMetricsJson). Scheduling the sampler
  /// adds simulation events, so this knob — not tracing — is what perturbs
  /// event interleaving-sensitive comparisons.
  bool sampling = false;
  sim::Duration sample_period = 10 * sim::kMillisecond;
};

struct ClusterSpec {
  net::Region region = net::Region::kVirginia;
  uint8_t az = 0;
};

struct DeploymentOptions {
  std::vector<ClusterSpec> clusters;
  int servers_per_cluster = 5;
  server::ServerOptions server;
  net::LatencyOptions latency;

  /// Paper configuration helpers ------------------------------------------

  /// Figure 3A: two clusters within a single datacenter region (distinct
  /// AZs of us-east).
  static DeploymentOptions SingleDatacenter();
  /// Figure 3B: clusters in Virginia and Oregon.
  static DeploymentOptions TwoRegions();
  /// Figure 3C: the five lowest-communication-cost EC2 regions.
  static DeploymentOptions FiveRegions();
};

class Deployment : public server::Partitioner, public client::Routing {
 public:
  Deployment(sim::Simulation& sim, DeploymentOptions options);
  ~Deployment();

  // --- Partitioner / Routing ----------------------------------------------
  std::vector<net::NodeId> ReplicasOf(const Key& key) const override;
  net::NodeId MasterOf(const Key& key) const override;
  int NumClusters() const override {
    return static_cast<int>(options_.clusters.size());
  }
  net::NodeId ReplicaInCluster(const Key& key, int cluster) const override;
  uint64_t PlacementEpoch() const override { return placement_.epoch(); }

  /// Epoch-versioned logical-shard -> server assignment, the routing source
  /// of truth (epoch 0 reproduces the classic stride arithmetic). The
  /// mutable accessor is the RebalanceCoordinator's cutover hook.
  const PlacementMap& placement() const { return placement_; }
  PlacementMap& placement() { return placement_; }

  // --- accessors ------------------------------------------------------------
  sim::Simulation& simulation() { return sim_; }
  net::Network& network() { return *network_; }
  int ServersPerCluster() const { return options_.servers_per_cluster; }
  int ShardsPerServer() const {
    return static_cast<int>(options_.server.shards_per_server);
  }
  int CoresPerServer() const {
    return static_cast<int>(options_.server.cores_per_server);
  }
  /// Logical shards per cluster copy (servers_per_cluster x
  /// shards_per_server).
  int NumLogicalShards() const {
    return options_.servers_per_cluster * ShardsPerServer();
  }
  /// The epoch-0 server-level shard of `key` within a cluster:
  /// LogicalShardOf(key) % ServersPerCluster(). Live routing goes through
  /// the PlacementMap (ReplicaInCluster); this hash slot only diverges from
  /// it for shards a migration has moved.
  int ShardOf(const Key& key) const;
  /// The logical shard of `key` within a cluster copy.
  int LogicalShardOf(const Key& key) const;
  /// The local shard index `key` occupies inside its hosting server's
  /// ShardedStore.
  int LocalShardOf(const Key& key) const {
    return LogicalShardOf(key) / options_.servers_per_cluster;
  }
  net::NodeId ServerId(int cluster, int shard) const;
  server::ReplicaServer& server(net::NodeId id) { return *servers_.at(id); }
  const server::ReplicaServer& server(net::NodeId id) const {
    return *servers_.at(id);
  }
  size_t ServerCount() const { return servers_.size(); }

  /// All node ids of one cluster's servers.
  std::vector<net::NodeId> ClusterServers(int cluster) const override;

  /// Creates a client colocated with `home_cluster` (same AZ). The client is
  /// owned by the deployment.
  client::TxnClient& AddClient(client::ClientOptions options);

  /// Aggregate server stats across the deployment.
  server::ServerStats TotalServerStats() const;
  /// Aggregate client stats across every AddClient'd client.
  client::ClientStats TotalClientStats() const;

  // --- observability --------------------------------------------------------
  /// Builds the tracer and/or metrics registry+sampler per `config` and
  /// wires them through the network, every server, and every client
  /// (including clients added later). Call once, before Run.
  void EnableObservability(const ObsConfig& config);
  /// Null until EnableObservability enables the corresponding half.
  obs::Tracer* tracer() { return tracer_.get(); }
  obs::Registry* registry() { return registry_.get(); }
  obs::Sampler* sampler() { return sampler_.get(); }

  // --- partition helpers ----------------------------------------------------
  /// Partitions cluster `a` away from cluster `b` (all links between them).
  void PartitionClusters(int a, int b);
  /// Splits the world into {cluster a (+its clients)} vs everyone else.
  void IsolateCluster(int a);
  void Heal();

 private:
  /// Registers one server's metrics (AddStats over ServerStats plus the
  /// per-lane vector fields, where the lane label is known).
  void RegisterServerMetrics(const server::ReplicaServer& srv);
  void RegisterClientMetrics(const client::TxnClient& cli);

  sim::Simulation& sim_;
  DeploymentOptions options_;
  PlacementMap placement_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<server::ReplicaServer>> servers_;  // by NodeId
  std::vector<std::unique_ptr<client::TxnClient>> clients_;
  std::vector<int> client_cluster_;  // home cluster per client, for partitions
  std::vector<net::NodeId> client_ids_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::Registry> registry_;
  std::unique_ptr<obs::Sampler> sampler_;
};

}  // namespace hat::cluster

#endif  // HAT_CLUSTER_DEPLOYMENT_H_
