// LocalStore: the embedded local key-value store each replica server uses for
// durability (the role LevelDB plays in the paper's prototype, Section 6.3).
//
// Architecture: WAL + in-memory memtable + immutable sorted runs.
//   Put/Delete  -> WAL append (+ optional sync) -> memtable
//   memtable full -> flushed to a new sorted run (table file)
//   Get         -> memtable, then runs newest-to-oldest
//   Compact()   -> merges all runs into one
//   Open()      -> loads runs listed on disk, replays WAL into memtable
// Deletes are tombstones so that a delete in a newer run shadows older runs.

#ifndef HAT_STORAGE_LOCAL_STORE_H_
#define HAT_STORAGE_LOCAL_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hat/common/result.h"
#include "hat/storage/table.h"
#include "hat/storage/wal.h"

namespace hat::storage {

struct LocalStoreOptions {
  /// Sync the WAL on every write (the paper's servers are durable: they
  /// synchronously write before responding).
  bool sync_writes = true;
  /// Flush the memtable to a sorted run after this many bytes.
  size_t memtable_flush_bytes = 4 << 20;
};

struct LocalStoreStats {
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t gets = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t wal_records_replayed = 0;
  /// GroupCommit scopes completed (each replaced its writes' individual
  /// WAL syncs with one trailing sync).
  uint64_t group_commits = 0;
};

class LocalStore {
 public:
  /// Opens (or creates) a store rooted at directory `dir`, replaying the WAL.
  static Result<std::unique_ptr<LocalStore>> Open(const std::string& dir,
                                                  LocalStoreOptions options = {});

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  Result<std::string> Get(std::string_view key) const;  // kNotFound if absent

  /// In-order scan over live (non-tombstoned) entries with key in [lo, hi);
  /// empty hi = +inf.
  Status Scan(std::string_view lo, std::string_view hi,
              const std::function<void(std::string_view key,
                                       std::string_view value)>& fn) const;

  /// Forces the memtable to a sorted run.
  Status Flush();

  /// Runs `fn` with per-write WAL syncs suppressed, then syncs the WAL once
  /// — the group-commit discipline: a batch of writes pays one durability
  /// point instead of one per record. Crash semantics are those of one
  /// atomic-prefix append: a crash mid-scope loses a suffix of the batch
  /// (torn-record replay), exactly as individual syncs could lose unsynced
  /// writes. Nestable (inner scopes defer to the outermost sync).
  Status GroupCommit(const std::function<Status()>& fn);

  /// Merges all runs (and drops tombstones shadowing nothing).
  Status Compact();

  size_t run_count() const { return runs_.size(); }
  const LocalStoreStats& stats() const { return stats_; }

 private:
  LocalStore(std::string dir, LocalStoreOptions options)
      : dir_(std::move(dir)), options_(options) {}

  Status Write(std::string_view key, std::optional<std::string_view> value);
  Status MaybeFlush();
  std::string RunPath(uint64_t number) const;

  std::string dir_;
  LocalStoreOptions options_;
  std::optional<WalWriter> wal_;
  // memtable: nullopt value = tombstone.
  std::map<std::string, std::optional<std::string>, std::less<>> memtable_;
  size_t memtable_bytes_ = 0;
  /// Nesting depth of active GroupCommit scopes (0 = sync per write).
  size_t group_depth_ = 0;
  std::vector<TableReader> runs_;  // oldest first
  uint64_t next_run_number_ = 1;
  mutable LocalStoreStats stats_;  // gets counted from const reads

  static constexpr char kTombstoneTag = 0;
  static constexpr char kValueTag = 1;
};

}  // namespace hat::storage

#endif  // HAT_STORAGE_LOCAL_STORE_H_
