// Immutable sorted-run table files (a simplified SSTable).
//
// Layout:
//   data:   repeated [varint klen][key][varint vlen][value]   (sorted by key)
//   index:  repeated [varint klen][key][fixed64 offset]        (every Nth key)
//   footer: [fixed64 index_offset][fixed64 entry_count]
//           [fixed32 masked crc of index][fixed64 magic]
// Readers keep the sparse index in memory; a point lookup binary-searches the
// index then scans at most `kIndexInterval` entries.

#ifndef HAT_STORAGE_TABLE_H_
#define HAT_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hat/common/result.h"

namespace hat::storage {

inline constexpr uint64_t kTableMagic = 0x6861746b76544231ULL;  // "hatkvTB1"
inline constexpr int kIndexInterval = 16;

/// Streams sorted entries into a table file. Keys must be added in strictly
/// increasing order.
class TableBuilder {
 public:
  static Result<TableBuilder> Create(const std::string& path);

  TableBuilder(TableBuilder&&) = default;
  TableBuilder& operator=(TableBuilder&&) = default;

  Status Add(std::string_view key, std::string_view value);

  /// Writes index + footer and closes the file.
  Status Finish();

  uint64_t entries() const { return entries_; }

 private:
  explicit TableBuilder(std::string path) : path_(std::move(path)) {}
  std::string path_;
  std::string buffer_;  // whole data section buffered, then written once
  std::string index_;
  std::string last_key_;
  uint64_t entries_ = 0;
  bool finished_ = false;
};

/// Reads a table file. The sparse index is loaded eagerly; data is read
/// on demand.
class TableReader {
 public:
  static Result<TableReader> Open(const std::string& path);

  TableReader(TableReader&&) = default;
  TableReader& operator=(TableReader&&) = default;

  /// Point lookup.
  Result<std::string> Get(std::string_view key) const;  // kNotFound if absent

  /// In-order iteration over entries with key in [lo, hi); empty hi = +inf.
  Status Scan(std::string_view lo, std::string_view hi,
              const std::function<void(std::string_view key,
                                       std::string_view value)>& fn) const;

  /// Iterates all entries in order.
  Status ScanAll(const std::function<void(std::string_view key,
                                          std::string_view value)>& fn) const {
    return Scan("", "", fn);
  }

  uint64_t entries() const { return entry_count_; }
  const std::string& path() const { return path_; }

 private:
  explicit TableReader(std::string path) : path_(std::move(path)) {}
  std::string path_;
  std::string data_;  // data section held in memory (tables are modest)
  std::vector<std::pair<std::string, uint64_t>> index_;
  uint64_t entry_count_ = 0;
};

}  // namespace hat::storage

#endif  // HAT_STORAGE_TABLE_H_
