#include "hat/storage/table.h"

#include <algorithm>
#include <fstream>

#include "hat/common/codec.h"
#include "hat/common/crc32.h"

namespace hat::storage {

Result<TableBuilder> TableBuilder::Create(const std::string& path) {
  TableBuilder b(path);
  // Eagerly verify the location is writable.
  std::ofstream probe(path, std::ios::binary | std::ios::trunc);
  if (!probe.good()) return Status::IoError("cannot create table: " + path);
  return b;
}

Status TableBuilder::Add(std::string_view key, std::string_view value) {
  if (finished_) return Status::InternalError("Add after Finish");
  if (entries_ > 0 && key <= last_key_) {
    return Status::InvalidArgument("table keys must be strictly increasing");
  }
  if (entries_ % kIndexInterval == 0) {
    PutLengthPrefixed(&index_, key);
    PutFixed64(&index_, buffer_.size());
  }
  PutLengthPrefixed(&buffer_, key);
  PutLengthPrefixed(&buffer_, value);
  last_key_.assign(key);
  entries_++;
  return Status::Ok();
}

Status TableBuilder::Finish() {
  if (finished_) return Status::InternalError("double Finish");
  finished_ = true;
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  if (!out.good()) return Status::IoError("cannot write table: " + path_);
  uint64_t index_offset = buffer_.size();
  out.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  out.write(index_.data(), static_cast<std::streamsize>(index_.size()));
  std::string footer;
  PutFixed64(&footer, index_offset);
  PutFixed64(&footer, entries_);
  PutFixed32(&footer, MaskCrc(Crc32c(index_)));
  PutFixed64(&footer, kTableMagic);
  out.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  out.flush();
  if (!out.good()) return Status::IoError("table finish failed: " + path_);
  return Status::Ok();
}

Result<TableReader> TableReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) return Status::IoError("cannot open table: " + path);
  auto file_size = static_cast<uint64_t>(in.tellg());
  constexpr uint64_t kFooterSize = 8 + 8 + 4 + 8;
  if (file_size < kFooterSize) {
    return Status::Corruption("table too small: " + path);
  }
  std::string footer(kFooterSize, '\0');
  in.seekg(static_cast<std::streamoff>(file_size - kFooterSize));
  in.read(footer.data(), static_cast<std::streamsize>(kFooterSize));
  uint64_t index_offset = DecodeFixed64(footer.data());
  uint64_t entry_count = DecodeFixed64(footer.data() + 8);
  uint32_t index_crc = UnmaskCrc(DecodeFixed32(footer.data() + 16));
  uint64_t magic = DecodeFixed64(footer.data() + 20);
  if (magic != kTableMagic) {
    return Status::Corruption("bad table magic: " + path);
  }
  if (index_offset > file_size - kFooterSize) {
    return Status::Corruption("bad index offset: " + path);
  }

  TableReader r(path);
  r.entry_count_ = entry_count;
  r.data_.resize(index_offset);
  in.seekg(0);
  in.read(r.data_.data(), static_cast<std::streamsize>(index_offset));
  std::string index(file_size - kFooterSize - index_offset, '\0');
  in.read(index.data(), static_cast<std::streamsize>(index.size()));
  if (!in.good()) return Status::IoError("short table read: " + path);
  if (Crc32c(index) != index_crc) {
    return Status::Corruption("index checksum mismatch: " + path);
  }

  std::string_view cursor(index);
  while (!cursor.empty()) {
    auto key = GetLengthPrefixed(&cursor);
    if (!key || cursor.size() < 8) {
      return Status::Corruption("truncated index entry: " + path);
    }
    uint64_t offset = DecodeFixed64(cursor.data());
    cursor.remove_prefix(8);
    r.index_.emplace_back(std::string(*key), offset);
  }
  return r;
}

Result<std::string> TableReader::Get(std::string_view key) const {
  if (index_.empty()) return Status::NotFound();
  // Last index entry with key <= target.
  auto it = std::upper_bound(
      index_.begin(), index_.end(), key,
      [](std::string_view k, const auto& e) { return k < e.first; });
  if (it == index_.begin()) return Status::NotFound();
  --it;
  std::string_view cursor(data_);
  cursor.remove_prefix(it->second);
  for (int i = 0; i < kIndexInterval && !cursor.empty(); i++) {
    auto k = GetLengthPrefixed(&cursor);
    auto v = k ? GetLengthPrefixed(&cursor) : std::nullopt;
    if (!k || !v) return Status::Corruption("truncated entry: " + path_);
    if (*k == key) return std::string(*v);
    if (*k > key) break;
  }
  return Status::NotFound();
}

Status TableReader::Scan(
    std::string_view lo, std::string_view hi,
    const std::function<void(std::string_view, std::string_view)>& fn) const {
  std::string_view cursor(data_);
  if (!lo.empty() && !index_.empty()) {
    auto it = std::upper_bound(
        index_.begin(), index_.end(), lo,
        [](std::string_view k, const auto& e) { return k < e.first; });
    if (it != index_.begin()) --it;
    cursor.remove_prefix(it->second);
  }
  while (!cursor.empty()) {
    auto k = GetLengthPrefixed(&cursor);
    auto v = k ? GetLengthPrefixed(&cursor) : std::nullopt;
    if (!k || !v) return Status::Corruption("truncated entry: " + path_);
    if (!hi.empty() && *k >= hi) break;
    if (*k >= lo) fn(*k, *v);
  }
  return Status::Ok();
}

}  // namespace hat::storage
