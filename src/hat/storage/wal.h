// Write-ahead log with CRC-framed records.
//
// Record format (LevelDB-inspired, simplified to unfragmented records):
//   [4 bytes masked CRC32C of payload][4 bytes little-endian length][payload]
// Replay stops cleanly at the first torn/corrupt record, which models crash
// recovery: a partially-written tail is discarded, all fully-synced records
// survive.

#ifndef HAT_STORAGE_WAL_H_
#define HAT_STORAGE_WAL_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <string_view>

#include "hat/common/result.h"

namespace hat::storage {

class WalWriter {
 public:
  /// Opens (creating or appending to) the log at `path`.
  static Result<WalWriter> Open(const std::string& path);

  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  /// Appends one record. Returns bytes written on success.
  Status Append(std::string_view payload);

  /// Flushes buffered data to the OS (our durability point; the simulator
  /// charges fsync cost separately).
  Status Sync();

  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  explicit WalWriter(std::string path) : path_(std::move(path)) {}
  std::string path_;
  std::unique_ptr<std::ofstream> out_;
  uint64_t bytes_written_ = 0;
};

/// Replays every intact record in order. Returns the number of records
/// recovered; stops (without error) at the first corrupt/torn record.
/// A missing file recovers zero records.
Result<uint64_t> WalReplay(
    const std::string& path,
    const std::function<void(std::string_view payload)>& apply);

}  // namespace hat::storage

#endif  // HAT_STORAGE_WAL_H_
