#include "hat/storage/local_store.h"

#include <algorithm>
#include <filesystem>

#include "hat/common/codec.h"

namespace hat::storage {

namespace fs = std::filesystem;

namespace {
constexpr std::string_view kWalName = "wal.log";
constexpr std::string_view kRunPrefix = "run-";
constexpr std::string_view kRunSuffix = ".tbl";

// WAL payload: [tag][varint klen][key][value...]; tombstones have no value.
std::string EncodeWalRecord(std::string_view key,
                            std::optional<std::string_view> value) {
  std::string rec;
  rec.push_back(value ? 1 : 0);
  PutLengthPrefixed(&rec, key);
  if (value) rec.append(value->data(), value->size());
  return rec;
}

// Table values carry a tag byte so tombstones survive flushes.
std::string EncodeTableValue(const std::optional<std::string>& value) {
  std::string v;
  v.push_back(value ? 1 : 0);
  if (value) v.append(*value);
  return v;
}
}  // namespace

std::string LocalStore::RunPath(uint64_t number) const {
  return dir_ + "/" + std::string(kRunPrefix) + std::to_string(number) +
         std::string(kRunSuffix);
}

Result<std::unique_ptr<LocalStore>> LocalStore::Open(
    const std::string& dir, LocalStoreOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create dir: " + dir);

  auto store =
      std::unique_ptr<LocalStore>(new LocalStore(dir, options));

  // Load existing runs in number order.
  std::vector<uint64_t> numbers;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind(kRunPrefix, 0) == 0 &&
        name.size() > kRunPrefix.size() + kRunSuffix.size()) {
      std::string num = name.substr(
          kRunPrefix.size(),
          name.size() - kRunPrefix.size() - kRunSuffix.size());
      numbers.push_back(std::stoull(num));
    }
  }
  std::sort(numbers.begin(), numbers.end());
  for (uint64_t n : numbers) {
    HAT_ASSIGN_OR_RETURN(TableReader reader,
                         TableReader::Open(store->RunPath(n)));
    store->runs_.push_back(std::move(reader));
    store->next_run_number_ = std::max(store->next_run_number_, n + 1);
  }

  // Replay WAL into the memtable.
  std::string wal_path = dir + "/" + std::string(kWalName);
  HAT_ASSIGN_OR_RETURN(
      uint64_t replayed,
      WalReplay(wal_path, [&store](std::string_view payload) {
        if (payload.empty()) return;
        char tag = payload[0];
        std::string_view rest = payload.substr(1);
        auto key = GetLengthPrefixed(&rest);
        if (!key) return;
        if (tag == 1) {
          store->memtable_[std::string(*key)] = std::string(rest);
          store->memtable_bytes_ += key->size() + rest.size();
        } else {
          store->memtable_[std::string(*key)] = std::nullopt;
          store->memtable_bytes_ += key->size();
        }
      }));
  store->stats_.wal_records_replayed = replayed;

  HAT_ASSIGN_OR_RETURN(WalWriter wal, WalWriter::Open(wal_path));
  store->wal_ = std::move(wal);
  return store;
}

Status LocalStore::Write(std::string_view key,
                         std::optional<std::string_view> value) {
  HAT_RETURN_IF_ERROR(wal_->Append(EncodeWalRecord(key, value)));
  if (options_.sync_writes && group_depth_ == 0) {
    HAT_RETURN_IF_ERROR(wal_->Sync());
  }
  if (value) {
    memtable_[std::string(key)] = std::string(*value);
    memtable_bytes_ += key.size() + value->size();
  } else {
    memtable_[std::string(key)] = std::nullopt;
    memtable_bytes_ += key.size();
  }
  return MaybeFlush();
}

Status LocalStore::Put(std::string_view key, std::string_view value) {
  stats_.puts++;
  return Write(key, value);
}

Status LocalStore::GroupCommit(const std::function<Status()>& fn) {
  group_depth_++;
  Status status = fn();
  group_depth_--;
  // One trailing durability point for the whole scope; the outermost scope
  // syncs even after a failed body so whatever prefix was appended is
  // durable (matching the per-write discipline's partial-failure state).
  if (group_depth_ == 0 && options_.sync_writes) {
    Status sync = wal_->Sync();
    if (status.ok()) status = sync;
    stats_.group_commits++;
  }
  return status;
}

Status LocalStore::Delete(std::string_view key) {
  stats_.deletes++;
  return Write(key, std::nullopt);
}

Result<std::string> LocalStore::Get(std::string_view key) const {
  stats_.gets++;
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    if (!it->second) return Status::NotFound();
    return *it->second;
  }
  for (auto run = runs_.rbegin(); run != runs_.rend(); ++run) {
    auto result = run->Get(key);
    if (result.ok()) {
      const std::string& tagged = result.value();
      if (tagged.empty() || tagged[0] == kTombstoneTag) {
        return Status::NotFound();
      }
      return tagged.substr(1);
    }
    if (!result.status().IsNotFound()) return result.status();
  }
  return Status::NotFound();
}

Status LocalStore::Scan(
    std::string_view lo, std::string_view hi,
    const std::function<void(std::string_view, std::string_view)>& fn) const {
  // Merge memtable + runs; newest source wins per key.
  std::map<std::string, std::optional<std::string>> merged;
  for (const auto& run : runs_) {  // oldest first; later inserts overwrite
    HAT_RETURN_IF_ERROR(
        run.Scan(lo, hi, [&merged](std::string_view k, std::string_view v) {
          if (v.empty() || v[0] == kTombstoneTag) {
            merged[std::string(k)] = std::nullopt;
          } else {
            merged[std::string(k)] = std::string(v.substr(1));
          }
        }));
  }
  for (auto it = memtable_.lower_bound(lo); it != memtable_.end(); ++it) {
    if (!hi.empty() && it->first >= hi) break;
    merged[it->first] = it->second;
  }
  for (const auto& [k, v] : merged) {
    if (v) fn(k, *v);
  }
  return Status::Ok();
}

Status LocalStore::MaybeFlush() {
  if (memtable_bytes_ < options_.memtable_flush_bytes) return Status::Ok();
  return Flush();
}

Status LocalStore::Flush() {
  if (memtable_.empty()) return Status::Ok();
  stats_.flushes++;
  uint64_t number = next_run_number_++;
  HAT_ASSIGN_OR_RETURN(TableBuilder builder,
                       TableBuilder::Create(RunPath(number)));
  for (const auto& [k, v] : memtable_) {
    HAT_RETURN_IF_ERROR(builder.Add(k, EncodeTableValue(v)));
  }
  HAT_RETURN_IF_ERROR(builder.Finish());
  HAT_ASSIGN_OR_RETURN(TableReader reader, TableReader::Open(RunPath(number)));
  runs_.push_back(std::move(reader));
  memtable_.clear();
  memtable_bytes_ = 0;
  // The WAL's contents are now durable in the run; start a fresh log.
  std::string wal_path = dir_ + "/" + std::string(kWalName);
  wal_.reset();
  std::error_code ec;
  fs::remove(wal_path, ec);
  HAT_ASSIGN_OR_RETURN(WalWriter wal, WalWriter::Open(wal_path));
  wal_ = std::move(wal);
  return Status::Ok();
}

Status LocalStore::Compact() {
  HAT_RETURN_IF_ERROR(Flush());
  if (runs_.size() <= 1) return Status::Ok();
  stats_.compactions++;
  // Merge all runs: newest wins; drop tombstones entirely (single level).
  std::map<std::string, std::string> live;
  std::map<std::string, bool> dead;
  for (const auto& run : runs_) {
    HAT_RETURN_IF_ERROR(run.ScanAll([&](std::string_view k,
                                        std::string_view v) {
      if (v.empty() || v[0] == kTombstoneTag) {
        live.erase(std::string(k));
        dead[std::string(k)] = true;
      } else {
        live[std::string(k)] = std::string(v.substr(1));
        dead.erase(std::string(k));
      }
    }));
  }
  uint64_t number = next_run_number_++;
  HAT_ASSIGN_OR_RETURN(TableBuilder builder,
                       TableBuilder::Create(RunPath(number)));
  for (const auto& [k, v] : live) {
    HAT_RETURN_IF_ERROR(
        builder.Add(k, EncodeTableValue(std::optional<std::string>(v))));
  }
  HAT_RETURN_IF_ERROR(builder.Finish());

  std::vector<std::string> old_paths;
  old_paths.reserve(runs_.size());
  for (const auto& run : runs_) old_paths.push_back(run.path());
  runs_.clear();
  HAT_ASSIGN_OR_RETURN(TableReader reader, TableReader::Open(RunPath(number)));
  runs_.push_back(std::move(reader));
  std::error_code ec;
  for (const auto& p : old_paths) fs::remove(p, ec);
  return Status::Ok();
}

}  // namespace hat::storage
