#include "hat/storage/wal.h"

#include <filesystem>
#include <vector>

#include "hat/common/codec.h"
#include "hat/common/crc32.h"

namespace hat::storage {

Result<WalWriter> WalWriter::Open(const std::string& path) {
  WalWriter w(path);
  w.out_ = std::make_unique<std::ofstream>(
      path, std::ios::binary | std::ios::app);
  if (!w.out_->good()) {
    return Status::IoError("cannot open WAL: " + path);
  }
  return w;
}

Status WalWriter::Append(std::string_view payload) {
  std::string header;
  PutFixed32(&header, MaskCrc(Crc32c(payload)));
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  out_->write(header.data(), static_cast<std::streamsize>(header.size()));
  out_->write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out_->good()) return Status::IoError("WAL append failed: " + path_);
  bytes_written_ += header.size() + payload.size();
  return Status::Ok();
}

Status WalWriter::Sync() {
  out_->flush();
  if (!out_->good()) return Status::IoError("WAL sync failed: " + path_);
  return Status::Ok();
}

Result<uint64_t> WalReplay(
    const std::string& path,
    const std::function<void(std::string_view payload)>& apply) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return uint64_t{0};
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::IoError("cannot open WAL for replay: " + path);

  uint64_t records = 0;
  std::vector<char> payload;
  char header[8];
  while (true) {
    in.read(header, 8);
    if (in.gcount() < 8) break;  // clean EOF or torn header
    uint32_t expected_crc = UnmaskCrc(DecodeFixed32(header));
    uint32_t len = DecodeFixed32(header + 4);
    if (len > (1u << 30)) break;  // implausible length => corrupt tail
    payload.resize(len);
    in.read(payload.data(), len);
    if (static_cast<uint32_t>(in.gcount()) < len) break;  // torn record
    if (Crc32c(payload.data(), len) != expected_crc) break;  // corrupt
    apply(std::string_view(payload.data(), len));
    records++;
  }
  return records;
}

}  // namespace hat::storage
