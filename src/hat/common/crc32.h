// CRC-32 (Castagnoli polynomial, as used by LevelDB/RocksDB log formats),
// software table-driven implementation. Used to frame WAL records and table
// blocks in hat::storage.

#ifndef HAT_COMMON_CRC32_H_
#define HAT_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hat {

/// Computes CRC-32C over `data`, continuing from `init` (pass 0 to start).
uint32_t Crc32c(const void* data, size_t len, uint32_t init = 0);

inline uint32_t Crc32c(std::string_view s, uint32_t init = 0) {
  return Crc32c(s.data(), s.size(), init);
}

/// Masked CRC as stored on disk. Storing raw CRCs of data that itself
/// contains CRCs weakens error detection (LevelDB convention).
uint32_t MaskCrc(uint32_t crc);
uint32_t UnmaskCrc(uint32_t masked);

}  // namespace hat

#endif  // HAT_COMMON_CRC32_H_
