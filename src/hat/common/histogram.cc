#include "hat/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hat {

Histogram::Histogram() : buckets_(1, 0) {}

int Histogram::BucketFor(double value) const {
  if (value < 1.0) return 0;
  // bucket index = log(value) * buckets-per-decade / ln(10), + 1 so that
  // bucket 0 is reserved for [0, 1).
  return 1 + static_cast<int>(std::log10(value) * kBucketsPerDecade);
}

double Histogram::BucketValue(int bucket) const {
  if (bucket == 0) return 0.5;
  // Geometric midpoint of the bucket's range.
  double lo = std::pow(10.0, static_cast<double>(bucket - 1) /
                                 kBucketsPerDecade);
  double hi = std::pow(10.0, static_cast<double>(bucket) / kBucketsPerDecade);
  return std::sqrt(lo * hi);
}

void Histogram::Record(double value) { RecordMany(value, 1); }

void Histogram::RecordMany(double value, uint64_t n) {
  if (n == 0) return;
  if (value < 0) value = 0;
  int b = BucketFor(value);
  if (static_cast<size_t>(b) >= buckets_.size()) buckets_.resize(b + 1, 0);
  buckets_[b] += n;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += n;
  sum_ += value * static_cast<double>(n);
  sum_sq_ += value * value * static_cast<double>(n);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t i = 0; i < other.buckets_.size(); i++) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

Histogram Histogram::DeltaSince(const Histogram& prev) const {
  Histogram out;
  if (count_ <= prev.count_) return out;  // empty window
  out.buckets_.assign(buckets_.size(), 0);
  int first = -1, last = -1;
  for (size_t i = 0; i < buckets_.size(); i++) {
    uint64_t before = i < prev.buckets_.size() ? prev.buckets_[i] : 0;
    uint64_t d = buckets_[i] >= before ? buckets_[i] - before : 0;
    out.buckets_[i] = d;
    if (d > 0) {
      if (first < 0) first = static_cast<int>(i);
      last = static_cast<int>(i);
    }
  }
  if (first < 0) return Histogram();
  out.count_ = count_ - prev.count_;
  out.sum_ = sum_ - prev.sum_;
  out.sum_sq_ = sum_sq_ - prev.sum_sq_;
  // The window's exact extremes are not recoverable from cumulative state;
  // use the representative values of the outermost non-empty delta buckets.
  out.min_ = BucketValue(first);
  out.max_ = BucketValue(last);
  return out;
}

void Histogram::Reset() {
  buckets_.assign(1, 0);
  count_ = 0;
  sum_ = sum_sq_ = min_ = max_ = 0;
}

double Histogram::min() const { return count_ ? min_ : 0; }
double Histogram::max() const { return count_ ? max_ : 0; }

double Histogram::Mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0;
}

double Histogram::Stddev() const {
  if (count_ == 0) return 0;
  double mean = Mean();
  double var = sum_sq_ / static_cast<double>(count_) - mean * mean;
  return var > 0 ? std::sqrt(var) : 0;
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (target >= count_) target = count_ - 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); b++) {
    seen += buckets_[b];
    if (seen > target) {
      double v = BucketValue(static_cast<int>(b));
      return std::clamp(v, min(), max());
    }
  }
  return max_;
}

std::vector<std::pair<double, double>> Histogram::Cdf() const {
  std::vector<std::pair<double, double>> out;
  if (count_ == 0) return out;
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); b++) {
    if (buckets_[b] == 0) continue;
    seen += buckets_[b];
    out.emplace_back(BucketValue(static_cast<int>(b)),
                     static_cast<double>(seen) / static_cast<double>(count_));
  }
  return out;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f",
                static_cast<unsigned long long>(count_), Mean(),
                Percentile(0.50), Percentile(0.95), Percentile(0.99), max());
  return buf;
}

}  // namespace hat
