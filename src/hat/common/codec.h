// Little-endian fixed-width and varint encoders used by the storage engine's
// on-disk formats and by numeric (delta/counter) values in hat::version.

#ifndef HAT_COMMON_CODEC_H_
#define HAT_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>

namespace hat {

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);  // assumes little-endian host (x86/ARM64 LE)
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Varint32/64 (LEB128), as in protobuf / LevelDB.
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);

/// Parses a varint from the front of *input, advancing it. Returns
/// std::nullopt on truncated/overlong input.
std::optional<uint32_t> GetVarint32(std::string_view* input);
std::optional<uint64_t> GetVarint64(std::string_view* input);

/// Length-prefixed string (varint32 length + bytes).
void PutLengthPrefixed(std::string* dst, std::string_view s);
std::optional<std::string_view> GetLengthPrefixed(std::string_view* input);

/// Encodes an int64 counter value as an 8-byte string (used for Delta
/// writes); DecodeInt64Value tolerates non-numeric payloads by returning
/// nullopt.
std::string EncodeInt64Value(int64_t v);
std::optional<int64_t> DecodeInt64Value(std::string_view s);

}  // namespace hat

#endif  // HAT_COMMON_CODEC_H_
