// Little-endian fixed-width and varint encoders used by the storage engine's
// on-disk formats and by numeric (delta/counter) values in hat::version.

#ifndef HAT_COMMON_CODEC_H_
#define HAT_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hat {

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);  // assumes little-endian host (x86/ARM64 LE)
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Varint32/64 (LEB128), as in protobuf / LevelDB.
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);

/// Parses a varint from the front of *input, advancing it. Returns
/// std::nullopt on truncated or overlong input. These primitives are
/// wire-facing (net::Codec frames cross trust boundaries), so decoding is
/// strict: encodings longer than the value needs (trailing zero padding such
/// as 80 00 for 0), encodings whose final byte carries bits beyond the
/// integer width, and runs of more than 5 (32-bit) / 10 (64-bit) bytes are
/// all rejected — every value has exactly one accepted encoding, the one
/// PutVarint produces.
std::optional<uint32_t> GetVarint32(std::string_view* input);
std::optional<uint64_t> GetVarint64(std::string_view* input);

/// Encoded length of a varint64 (varint32 embeds identically).
inline constexpr size_t VarintLength(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    n++;
  }
  return n;
}

/// Length-prefixed string (varint32 length + bytes).
void PutLengthPrefixed(std::string* dst, std::string_view s);
std::optional<std::string_view> GetLengthPrefixed(std::string_view* input);

/// Varint-count-prefixed arrays, the aggregate primitives of the wire codec:
/// small integers (shard ids, digest bucket indices) as varints, full-entropy
/// 64-bit words (digest hashes) as fixed64. Get* appends onto *out and
/// rejects counts larger than the remaining input could possibly hold.
void PutVarint32Array(std::string* dst, const uint32_t* v, size_t n);
bool GetVarint32Array(std::string_view* input, std::vector<uint32_t>* out);
void PutFixed64Array(std::string* dst, const uint64_t* v, size_t n);
bool GetFixed64Array(std::string_view* input, std::vector<uint64_t>* out);

/// Encodes an int64 counter value as an 8-byte string (used for Delta
/// writes); DecodeInt64Value tolerates non-numeric payloads by returning
/// nullopt.
std::string EncodeInt64Value(int64_t v);
std::optional<int64_t> DecodeInt64Value(std::string_view s);

}  // namespace hat

#endif  // HAT_COMMON_CODEC_H_
