#include "hat/common/crc32.h"

#include <array>

namespace hat {
namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // reflected CRC-32C (Castagnoli)

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int k = 0; k < 8; k++) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t init) {
  const auto& table = Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~init;
  for (size_t i = 0; i < len; i++) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t MaskCrc(uint32_t crc) {
  // Rotate right 15 bits and add a constant (LevelDB's masking scheme).
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace hat
