#include "hat/common/rng.h"

#include <cassert>

namespace hat {

namespace {
inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift with rejection for unbiased sampling.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NextGaussian() {
  // Box-Muller; draw until u1 > 0 to avoid log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextLognormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

Rng Rng::Fork(uint64_t label) {
  // Mix the label with fresh output so forks with different labels are
  // independent and a fork does not replay the parent stream.
  return Rng(NextUint64() ^ Fnv1a64(label));
}

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) sum += 1.0 / std::pow(i, theta);
  return sum;
}
}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  // Gray et al., "Quickly generating billion-record synthetic databases".
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace hat
