// Deterministic pseudo-random number generation and the sampling
// distributions the experiments need (uniform, zipfian as used by YCSB,
// lognormal latency jitter, exponential service times).
//
// Everything in hatkv that needs randomness takes an explicit Rng&; there is
// no global RNG. Identical seeds yield identical experiment output.

#ifndef HAT_COMMON_RNG_H_
#define HAT_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace hat {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
/// seeded via splitmix64. Fast, high-quality, and fully deterministic.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed);

  /// Uniform on [0, 2^64).
  uint64_t NextUint64();

  /// Uniform on [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform on [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform on [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Exponential with the given mean (mean > 0).
  double NextExponential(double mean);

  /// Standard normal via Box-Muller (no cached spare; deterministic).
  double NextGaussian();

  /// Lognormal: exp(N(mu, sigma^2)).
  double NextLognormal(double mu, double sigma);

  /// Derives an independent child generator (stable for a given label).
  Rng Fork(uint64_t label);

 private:
  uint64_t s_[4];
};

/// Zipfian generator over [0, n) with parameter theta, using the
/// Gray et al. rejection-free method popularized by YCSB. theta in (0,1);
/// YCSB default is 0.99. Values are *not* scrambled; callers that want
/// scattered hot keys should hash the output.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta);

  /// Number of items.
  uint64_t n() const { return n_; }

  uint64_t Next(Rng& rng);

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

/// FNV-1a 64-bit hash; used to scramble zipfian ranks and to shard keys.
/// Inline: keys are short (tens of bytes) and this sits on the storage hot
/// path, where the call overhead rivals the hash itself.
inline uint64_t Fnv1a64(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; i++) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}
inline uint64_t Fnv1a64(uint64_t v) { return Fnv1a64(&v, sizeof(v)); }

}  // namespace hat

#endif  // HAT_COMMON_RNG_H_
