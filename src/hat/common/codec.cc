#include "hat/common/codec.h"

namespace hat {

void PutVarint32(std::string* dst, uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

namespace {
template <typename T, int kMaxBytes>
std::optional<T> GetVarintImpl(std::string_view* input) {
  constexpr int kBits = static_cast<int>(sizeof(T)) * 8;
  T result = 0;
  int shift = 0;
  const size_t limit =
      input->size() < static_cast<size_t>(kMaxBytes) ? input->size()
                                                     : kMaxBytes;
  for (size_t i = 0; i < limit; i++) {
    const unsigned char byte = static_cast<unsigned char>((*input)[i]);
    if (!(byte & 0x80)) {
      // Final byte. Strict decoding: reject overlong encodings — trailing
      // zero padding (a canonical encoding never ends in a 0x00 group) and
      // final-byte bits past the integer width (they would be shifted out
      // silently, aliasing distinct inputs onto one value).
      if (i > 0 && byte == 0) return std::nullopt;
      if (kBits - shift < 7 && (byte >> (kBits - shift)) != 0) {
        return std::nullopt;
      }
      input->remove_prefix(i + 1);
      return result | static_cast<T>(byte & 0x7f) << shift;
    }
    result |= static_cast<T>(byte & 0x7f) << shift;
    shift += 7;
  }
  return std::nullopt;  // truncated, or more continuation bytes than fit
}
}  // namespace

std::optional<uint32_t> GetVarint32(std::string_view* input) {
  return GetVarintImpl<uint32_t, 5>(input);
}

std::optional<uint64_t> GetVarint64(std::string_view* input) {
  return GetVarintImpl<uint64_t, 10>(input);
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

std::optional<std::string_view> GetLengthPrefixed(std::string_view* input) {
  auto len = GetVarint32(input);
  if (!len || *len > input->size()) return std::nullopt;
  std::string_view out = input->substr(0, *len);
  input->remove_prefix(*len);
  return out;
}

void PutVarint32Array(std::string* dst, const uint32_t* v, size_t n) {
  PutVarint32(dst, static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; i++) PutVarint32(dst, v[i]);
}

bool GetVarint32Array(std::string_view* input, std::vector<uint32_t>* out) {
  auto n = GetVarint32(input);
  if (!n || *n > input->size()) return false;  // each element is >= 1 byte
  out->reserve(out->size() + *n);
  for (uint32_t i = 0; i < *n; i++) {
    auto v = GetVarint32(input);
    if (!v) return false;
    out->push_back(*v);
  }
  return true;
}

void PutFixed64Array(std::string* dst, const uint64_t* v, size_t n) {
  PutVarint32(dst, static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; i++) PutFixed64(dst, v[i]);
}

bool GetFixed64Array(std::string_view* input, std::vector<uint64_t>* out) {
  auto n = GetVarint32(input);
  if (!n || *n > input->size() / 8) return false;
  out->reserve(out->size() + *n);
  for (uint32_t i = 0; i < *n; i++) {
    out->push_back(DecodeFixed64(input->data()));
    input->remove_prefix(8);
  }
  return true;
}

std::string EncodeInt64Value(int64_t v) {
  std::string s;
  PutFixed64(&s, static_cast<uint64_t>(v));
  return s;
}

std::optional<int64_t> DecodeInt64Value(std::string_view s) {
  if (s.size() != 8) return std::nullopt;
  return static_cast<int64_t>(DecodeFixed64(s.data()));
}

}  // namespace hat
