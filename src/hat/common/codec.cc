#include "hat/common/codec.h"

namespace hat {

void PutVarint32(std::string* dst, uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

namespace {
template <typename T, int kMaxBytes>
std::optional<T> GetVarintImpl(std::string_view* input) {
  T result = 0;
  int shift = 0;
  size_t i = 0;
  for (; i < input->size() && i < kMaxBytes; i++) {
    unsigned char byte = static_cast<unsigned char>((*input)[i]);
    result |= static_cast<T>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) {
      input->remove_prefix(i + 1);
      return result;
    }
    shift += 7;
  }
  return std::nullopt;  // truncated or overlong
}
}  // namespace

std::optional<uint32_t> GetVarint32(std::string_view* input) {
  return GetVarintImpl<uint32_t, 5>(input);
}

std::optional<uint64_t> GetVarint64(std::string_view* input) {
  return GetVarintImpl<uint64_t, 10>(input);
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

std::optional<std::string_view> GetLengthPrefixed(std::string_view* input) {
  auto len = GetVarint32(input);
  if (!len || *len > input->size()) return std::nullopt;
  std::string_view out = input->substr(0, *len);
  input->remove_prefix(*len);
  return out;
}

std::string EncodeInt64Value(int64_t v) {
  std::string s;
  PutFixed64(&s, static_cast<uint64_t>(v));
  return s;
}

std::optional<int64_t> DecodeInt64Value(std::string_view s) {
  if (s.size() != 8) return std::nullopt;
  return static_cast<int64_t>(DecodeFixed64(s.data()));
}

}  // namespace hat
